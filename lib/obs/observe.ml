(** Unified observability exports: one schema-versioned metrics document
    joining {!Ilp.Stats} (the paper's Table I totals) with
    {!Runtime.Metrics.snapshot} and the traced per-phase wall times, plus
    the human [--profile] summary table.

    The solver section mirrors the [Ilp.Stats] record field-for-field so
    the JSON totals are exactly what [--verbose] prints — no re-derivation
    from trace events (which can drop under ring overwrite). *)

module J = Trace_json

let schema = "mpsoc-par/metrics/v1"

let num i = J.Num (float_of_int i)

(* ---- environment metadata ----------------------------------------- *)

let git_rev () =
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let rev = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when rev <> "" -> Some rev
    | _ -> None
  with _ -> None

let utc_timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(** Provenance block shared by the metrics document and the bench
    report: schema/git/compiler/host facts that make runs comparable
    across commits and machines. *)
let run_metadata () =
  [
    ("git_rev", match git_rev () with Some r -> J.Str r | None -> J.Null);
    ("ocaml_version", J.Str Sys.ocaml_version);
    ("host_domains", num (Domain.recommended_domain_count ()));
    ("generated_utc", J.Str (utc_timestamp ()));
  ]

(* ---- sections ------------------------------------------------------ *)

let solver_json (st : Ilp.Stats.t) : J.t =
  J.Obj
    [
      ("ilps", num st.Ilp.Stats.ilps);
      ("vars", num st.Ilp.Stats.vars);
      ("constrs", num st.Ilp.Stats.constrs);
      ("solve_time_s", J.Num st.Ilp.Stats.solve_time_s);
      ("bb_nodes", num st.Ilp.Stats.bb_nodes);
      ("pivots", num st.Ilp.Stats.pivots);
      ("presolve_fixed", num st.Ilp.Stats.presolve_fixed);
      ("presolve_rows", num st.Ilp.Stats.presolve_rows);
      ("cuts", num st.Ilp.Stats.cuts);
      ("cache_hits", num st.Ilp.Stats.cache_hits);
      ("heuristic_solves", num st.Ilp.Stats.heuristic_solves);
      ("heur_time_s", J.Num st.Ilp.Stats.heur_time_s);
      ( "engine_wins",
        J.Obj
          [
            ("heuristic", num st.Ilp.Stats.wins_heuristic);
            ("exact", num st.Ilp.Stats.wins_exact);
          ] );
      ("quality_gap_max", J.Num st.Ilp.Stats.quality_gap_max);
      ( "degraded",
        J.Obj
          [
            ("incumbent", num st.Ilp.Stats.deg_incumbent);
            ("lp_round", num st.Ilp.Stats.deg_lp_round);
            ("greedy", num st.Ilp.Stats.deg_greedy);
            ("seq_fallback", num st.Ilp.Stats.deg_seq);
          ] );
    ]

let runtime_json (s : Runtime.Metrics.snapshot) : J.t =
  let int_arr a = J.List (Array.to_list (Array.map num a)) in
  J.Obj
    [
      ("domains", num s.Runtime.Metrics.domains);
      ("wall_s", J.Num s.Runtime.Metrics.wall_s);
      ("steps", num s.Runtime.Metrics.n_steps);
      ("forks", num s.Runtime.Metrics.n_forks);
      ("inline_forks", num s.Runtime.Metrics.n_inline_forks);
      ("tasks_spawned", num s.Runtime.Metrics.n_tasks_spawned);
      ("steals", num s.Runtime.Metrics.n_steals);
      ("sends", num s.Runtime.Metrics.n_sends);
      ("recvs", num s.Runtime.Metrics.n_recvs);
      ("bytes_sent", num s.Runtime.Metrics.n_bytes_sent);
      ("merges", num s.Runtime.Metrics.n_merges);
      ("splits", num s.Runtime.Metrics.n_splits);
      ("seq_fallbacks", num s.Runtime.Metrics.n_seq_fallbacks);
      ( "worker_busy_s",
        J.List
          (Array.to_list
             (Array.map (fun b -> J.Num b) s.Runtime.Metrics.worker_busy_s)) );
      ("worker_tasks", int_arr s.Runtime.Metrics.worker_tasks);
      ("worker_steals", int_arr s.Runtime.Metrics.worker_steals);
    ]

let cache_json (c : Cache.Store.counters) : J.t =
  J.Obj
    [
      ("schema", J.Str Cache.Store.schema);
      ("hits", num c.Cache.Store.hits);
      ("misses", num c.Cache.Store.misses);
      ("hit_rate", J.Num (Cache.Store.hit_rate c));
      ("evictions", num c.Cache.Store.evictions);
      ("corrupt", num c.Cache.Store.corrupt);
      ("stale", num c.Cache.Store.stale);
      ("entries", num c.Cache.Store.entries);
      ("bytes", num c.Cache.Store.bytes);
    ]

let phases_json (phases : (string * float) list) : J.t =
  J.Obj (List.map (fun (n, s) -> (n, J.Num s)) phases)

(* Recorder self-description: how complete is the trace itself?  A
   nonzero [dropped_spans] means ring overwrite ate events and phase /
   span-derived numbers undercount. *)
let trace_json (c : Trace.collected) : J.t =
  J.Obj
    [
      ("events", num (List.length c.Trace.events));
      ("domains", num (List.length c.Trace.domains));
      ("dropped_spans", num c.Trace.dropped);
      ("span_s", J.Num c.Trace.span_s);
    ]

(** Per-phase wall seconds from a trace collection (category ["phase"]). *)
let phases_of_events events = Trace.span_totals ~cat:"phase" events

(** The unified document.  [stats] is required — solver totals are the
    one section every flow has; the rest attaches when available.
    [sections] appends caller-built sections (e.g. the serve daemon's
    ["server"] block) without [Observe] having to know their shape. *)
let metrics_doc ~generated_by ?phases ?runtime ?cache ?trace ?(sections = [])
    ?wall_s (stats : Ilp.Stats.t) : J.t =
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  J.Obj
    ([ ("schema", J.Str schema); ("generated_by", J.Str generated_by) ]
    @ run_metadata ()
    @ opt "wall_s" wall_s (fun w -> J.Num w)
    @ [ ("solver", solver_json stats) ]
    @ opt "cache" cache cache_json
    @ opt "phases" phases phases_json
    @ opt "runtime" runtime runtime_json
    @ opt "trace" trace trace_json
    @ sections)

(* ---- output -------------------------------------------------------- *)

(* [path = "-"] writes to stdout. *)
let write_json ~path (doc : J.t) =
  let s = J.to_string ~pretty:true doc ^ "\n" in
  if path = "-" then print_string s
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc s)
  end

(* ---- the --profile table ------------------------------------------- *)

let top_solves ?(n = 10) (events : Trace.event list) =
  let xs =
    List.filter (fun (e : Trace.event) -> e.Trace.cat = "ilp" && e.Trace.ph = Trace.X) events
  in
  let sorted =
    List.stable_sort
      (fun (a : Trace.event) (b : Trace.event) ->
        compare b.Trace.dur_us a.Trace.dur_us)
      xs
  in
  List.filteri (fun i _ -> i < n) sorted

let arg_str args key =
  match List.assoc_opt key args with
  | Some (Trace.Str s) -> s
  | Some (Trace.Int i) -> string_of_int i
  | Some (Trace.Float f) -> Printf.sprintf "%g" f
  | Some (Trace.Bool b) -> string_of_bool b
  | None -> "-"

(** The [--profile] summary: per-phase wall times (with an [other] row so
    the column sums to the total), solver totals in the paper's Table I
    shape, and the slowest individual ILP solves from the trace. *)
let profile_table ppf ?runtime ?(dropped = 0) ~wall_s
    ~(events : Trace.event list) (st : Ilp.Stats.t) =
  let phases = phases_of_events events in
  let covered = List.fold_left (fun a (_, s) -> a +. s) 0. phases in
  let pct s = if wall_s > 0. then 100. *. s /. wall_s else 0. in
  Format.fprintf ppf "@[<v>";
  if dropped > 0 then
    Format.fprintf ppf
      "WARNING: trace ring overflowed, %d event(s) dropped — phase and \
       solve numbers below undercount (rerun with a larger --trace ring \
       capacity)@,"
      dropped;
  Format.fprintf ppf "== profile: phases (wall %.3f s) ==@," wall_s;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "  %-14s %9.3f s  %5.1f%%@," name s (pct s))
    phases;
  Format.fprintf ppf "  %-14s %9.3f s  %5.1f%%@," "(other)"
    (Float.max 0. (wall_s -. covered))
    (pct (Float.max 0. (wall_s -. covered)));
  Format.fprintf ppf "== solver totals (Table I shape) ==@,";
  Format.fprintf ppf "  #ILPs %d  #vars %d  #constrs %d  solve %.3f s@,"
    st.Ilp.Stats.ilps st.Ilp.Stats.vars st.Ilp.Stats.constrs
    st.Ilp.Stats.solve_time_s;
  Format.fprintf ppf
    "  B&B nodes %d  pivots %d  cuts %d  presolve %d fixed / %d rows@,"
    st.Ilp.Stats.bb_nodes st.Ilp.Stats.pivots st.Ilp.Stats.cuts
    st.Ilp.Stats.presolve_fixed st.Ilp.Stats.presolve_rows;
  Format.fprintf ppf
    "  cache hits %d  degraded: %d incumbent / %d lp-round / %d \
     greedy / %d seq@,"
    st.Ilp.Stats.cache_hits st.Ilp.Stats.deg_incumbent
    st.Ilp.Stats.deg_lp_round st.Ilp.Stats.deg_greedy st.Ilp.Stats.deg_seq;
  if st.Ilp.Stats.heuristic_solves > 0 then
    Format.fprintf ppf
      "  heuristic solves %d (%.3f s)  race wins: %d heuristic / %d exact  \
       max gap %.2f%%@,"
      st.Ilp.Stats.heuristic_solves st.Ilp.Stats.heur_time_s
      st.Ilp.Stats.wins_heuristic st.Ilp.Stats.wins_exact
      (100. *. st.Ilp.Stats.quality_gap_max);
  (match runtime with
  | None -> ()
  | Some (s : Runtime.Metrics.snapshot) ->
      Format.fprintf ppf "== runtime ==@,";
      Format.fprintf ppf
        "  domains %d  tasks %d  steals %d  sends/recvs %d/%d  steps %d@,"
        s.Runtime.Metrics.domains s.Runtime.Metrics.n_tasks_spawned
        s.Runtime.Metrics.n_steals s.Runtime.Metrics.n_sends
        s.Runtime.Metrics.n_recvs s.Runtime.Metrics.n_steps);
  (match top_solves events with
  | [] -> ()
  | top ->
      Format.fprintf ppf "== slowest ILP solves ==@,";
      List.iter
        (fun (e : Trace.event) ->
          Format.fprintf ppf
            "  %-18s %8.2f ms  vars %-4s constrs %-4s nodes %-5s pivots %-6s \
             cuts %-3s %s%s@,"
            e.Trace.name (e.Trace.dur_us /. 1e3)
            (arg_str e.Trace.args "vars")
            (arg_str e.Trace.args "constrs")
            (arg_str e.Trace.args "nodes")
            (arg_str e.Trace.args "pivots")
            (arg_str e.Trace.args "cuts")
            (arg_str e.Trace.args "status")
            (if arg_str e.Trace.args "cached" = "true" then " (cached)" else ""))
        top);
  Format.fprintf ppf "@]"
