(** Unified observability exports: the schema-versioned metrics document
    joining {!Ilp.Stats}, {!Runtime.Metrics.snapshot} and traced phase
    times, plus the human [--profile] table. *)

val schema : string
(** Current document schema id ("mpsoc-par/metrics/v1"). *)

val run_metadata : unit -> (string * Trace_json.t) list
(** Provenance fields: git rev (null outside a checkout), OCaml version,
    recommended domain count, UTC timestamp. *)

val solver_json : Ilp.Stats.t -> Trace_json.t
(** Field-for-field JSON mirror of the [Ilp.Stats] record. *)

val runtime_json : Runtime.Metrics.snapshot -> Trace_json.t

val cache_json : Cache.Store.counters -> Trace_json.t
(** Persistent solve-cache counters (the document's ["cache"] section). *)

val phases_of_events : Trace.event list -> (string * float) list
(** Per-phase wall seconds (category ["phase"] spans). *)

val trace_json : Trace.collected -> Trace_json.t
(** Recorder self-description (the document's ["trace"] section):
    event/domain counts, [dropped_spans] lost to ring overwrite, and the
    armed wall span. *)

val metrics_doc :
  generated_by:string ->
  ?phases:(string * float) list ->
  ?runtime:Runtime.Metrics.snapshot ->
  ?cache:Cache.Store.counters ->
  ?trace:Trace.collected ->
  ?sections:(string * Trace_json.t) list ->
  ?wall_s:float ->
  Ilp.Stats.t ->
  Trace_json.t
(** [sections] appends caller-built top-level sections (e.g. the serve
    daemon's ["server"] block) after the standard ones.  [trace] attaches
    the recorder self-description ({!trace_json}). *)

val write_json : path:string -> Trace_json.t -> unit
(** Pretty-printed with a trailing newline; [path = "-"] is stdout. *)

val top_solves : ?n:int -> Trace.event list -> Trace.event list
(** The [n] slowest ILP solves (category ["ilp"] X events), slowest
    first. *)

val profile_table :
  Format.formatter ->
  ?runtime:Runtime.Metrics.snapshot ->
  ?dropped:int ->
  wall_s:float ->
  events:Trace.event list ->
  Ilp.Stats.t ->
  unit
(** [dropped] (from {!Trace.collected.dropped}) prepends a ring-overflow
    warning when positive: the table's numbers undercount. *)
