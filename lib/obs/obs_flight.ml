(** Flight recorder: a bounded ring of recent structured lifecycle
    events (admit / start / complete / reject / crash / wedge / restart
    / ...), kept even when tracing is disarmed, so a post-mortem never
    depends on having armed [--trace] in advance.

    Cost argument: unlike the trace probes — which guard nanosecond-hot
    paths (simplex pivots, deque operations) and therefore must be free
    when disarmed — flight events mark request- and process-lifecycle
    edges that occur at most a few times per request.  One mutex-guarded
    ring write (a small record allocation and an array store) per such
    edge is noise next to the socket I/O surrounding it, so the recorder
    is always on; the allocation-free-disarmed invariant applies to the
    trace probes, not to this ring.

    The ring overwrites oldest ([seq] counts everything ever recorded,
    so drops are visible as a gap).  {!dump} rewrites the whole ring as
    one JSONL file — dumps are rare (crash, wedge, restart-budget
    exhaustion, explicit [dump] op), so rewriting beats appending: the
    file is always a self-consistent snapshot, never a half-written
    tail. *)

module J = Trace_json

type event = {
  t_s : float;  (** absolute wall time ({!Trace.now_s}) *)
  seq : int;  (** monotonic, 0-based; gaps never occur, drops do *)
  kind : string;
  fields : (string * J.t) list;
}

type t = {
  mu : Mutex.t;
  ring : event option array;
  mutable seq : int;  (** next sequence number = events ever recorded *)
}

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  { mu = Mutex.create (); ring = Array.make (max 16 capacity) None; seq = 0 }

let capacity t = Array.length t.ring

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let record t ?(fields = []) kind =
  let now = Trace.now_s () in
  locked t @@ fun () ->
  t.ring.(t.seq mod Array.length t.ring) <-
    Some { t_s = now; seq = t.seq; kind; fields };
  t.seq <- t.seq + 1

let recorded t = locked t @@ fun () -> t.seq
let size t = locked t @@ fun () -> min t.seq (Array.length t.ring)

(** Retained events, oldest first. *)
let events t : event list =
  locked t @@ fun () ->
  let cap = Array.length t.ring in
  let first = max 0 (t.seq - cap) in
  let acc = ref [] in
  for i = t.seq - 1 downto first do
    match t.ring.(i mod cap) with Some e -> acc := e :: !acc | None -> ()
  done;
  !acc

let event_json (e : event) : J.t =
  J.Obj
    ([
       ("t_s", J.Num e.t_s);
       ("seq", J.Num (float_of_int e.seq));
       ("kind", J.Str e.kind);
     ]
    @ e.fields)

(** Overwrite [path] with the retained events as JSONL (one compact
    object per line, ascending [seq]).  Errors are reported, not raised:
    dump sites are failure paths already. *)
let dump t ~path : (int, string) result =
  let evs = events t in
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e -> output_string oc (J.to_string (event_json e) ^ "\n"))
          evs)
  with
  | () -> Ok (List.length evs)
  | exception Sys_error m -> Error m
