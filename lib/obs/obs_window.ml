(** Sliding-window latency/throughput aggregator for the live [stats]
    op: a ring of fixed-width time buckets, each holding a count, a sum,
    a max and a 1-2-5 histogram, plus a cumulative total since creation.

    A sample recorded at wall time [now] lands in bucket
    [floor (now / bucket_s)]; the ring keeps the most recent [buckets]
    epochs, so a window summary over the last [k] seconds is the sum of
    [ceil (k / bucket_s)] live buckets — O(buckets) and allocation-light,
    never a scan of raw samples.  Stale slots are lazily reset when their
    epoch comes around again, so an idle window costs nothing.

    Recording and summarizing are mutex-guarded (samples arrive from
    executor worker domains, summaries from the event loop).  Merging
    works on immutable {!snap} values: union-sum cells by epoch, keep
    only epochs within the ring span of the newest epoch present —
    deterministic and associative (exactly for counts, maxes and
    histograms; up to float rounding for the mean), which the qcheck
    suite checks.

    Histogram percentiles are bucket upper bounds (the overflow bucket
    reports the observed max), so a reported pXX is an upper bound on
    the exact nearest-rank percentile the {!Serve.Latency} recorder
    would compute from the same samples — also property-checked. *)

module J = Trace_json

(* Same 1-2-5 bounds as lib/serve/latency's histogram (duplicated here:
   obs sits below serve in the library graph). *)
let bucket_bounds_ms =
  [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. ]

let bounds = Array.of_list bucket_bounds_ms
let n_hist = Array.length bounds + 1 (* + overflow slot *)

type cell = {
  mutable count : int;
  mutable sum_s : float;
  mutable max_s : float;
  hist : int array;  (** [n_hist] slots, last = overflow *)
}

let new_cell () = { count = 0; sum_s = 0.; max_s = 0.; hist = Array.make n_hist 0 }

let reset_cell c =
  c.count <- 0;
  c.sum_s <- 0.;
  c.max_s <- 0.;
  Array.fill c.hist 0 n_hist 0

let hist_slot dt_s =
  let ms = dt_s *. 1e3 in
  let rec go i = if i >= Array.length bounds then i else if ms <= bounds.(i) then i else go (i + 1) in
  go 0

let add_cell c dt_s =
  c.count <- c.count + 1;
  c.sum_s <- c.sum_s +. dt_s;
  if dt_s > c.max_s then c.max_s <- dt_s;
  let i = hist_slot dt_s in
  c.hist.(i) <- c.hist.(i) + 1

let blend ~into (c : cell) =
  into.count <- into.count + c.count;
  into.sum_s <- into.sum_s +. c.sum_s;
  if c.max_s > into.max_s then into.max_s <- c.max_s;
  Array.iteri (fun i n -> into.hist.(i) <- into.hist.(i) + n) c.hist

type t = {
  mu : Mutex.t;
  bucket_s : float;
  ring : cell array;
  epochs : int array;  (** epoch held in each slot; [-1] = empty *)
  total : cell;
}

let default_bucket_s = 5.
let default_buckets = 60 (* 5 s x 60 = a 5-minute ring *)

let create ?(bucket_s = default_bucket_s) ?(buckets = default_buckets) () =
  let n = max 1 buckets in
  {
    mu = Mutex.create ();
    bucket_s = (if bucket_s > 0. then bucket_s else default_bucket_s);
    ring = Array.init n (fun _ -> new_cell ());
    epochs = Array.make n (-1);
    total = new_cell ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let epoch_of t now = int_of_float (Float.floor (now /. t.bucket_s))

let record t ~now dt_s =
  locked t @@ fun () ->
  let e = epoch_of t now in
  let i = e mod Array.length t.ring in
  if t.epochs.(i) <> e then begin
    reset_cell t.ring.(i);
    t.epochs.(i) <- e
  end;
  add_cell t.ring.(i) dt_s;
  add_cell t.total dt_s

(* ---- summaries ----------------------------------------------------- *)

type summary = {
  count : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

let empty_summary =
  { count = 0; mean_ms = 0.; max_ms = 0.; p50_ms = 0.; p90_ms = 0.; p99_ms = 0. }

(* Nearest-rank over histogram buckets: the answer is the matched
   bucket's upper bound (the overflow bucket reports the observed max,
   the only finite bound it has). *)
let hist_percentile (c : cell) p =
  if c.count = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int c.count)) in
    let rank = max 1 rank in
    let acc = ref 0 and ans = ref (c.max_s *. 1e3) in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= rank then begin
             ans := (if i < Array.length bounds then bounds.(i) else c.max_s *. 1e3);
             raise Exit
           end)
         c.hist
     with Exit -> ());
    !ans
  end

let cell_summary (c : cell) =
  if c.count = 0 then empty_summary
  else
    {
      count = c.count;
      mean_ms = 1e3 *. c.sum_s /. float_of_int c.count;
      max_ms = 1e3 *. c.max_s;
      p50_ms = hist_percentile c 50.;
      p90_ms = hist_percentile c 90.;
      p99_ms = hist_percentile c 99.;
    }

(* Sum of the live cells with epochs in (e_now - k, e_now]. *)
let window_cell t ~now ~last_s =
  let e = epoch_of t now in
  let n = Array.length t.ring in
  let k = min n (max 1 (int_of_float (ceil (last_s /. t.bucket_s)))) in
  let acc = new_cell () in
  Array.iteri
    (fun i ep -> if ep > e - k && ep <= e then blend ~into:acc t.ring.(i))
    t.epochs;
  acc

let summary t ~now ~last_s =
  locked t @@ fun () -> cell_summary (window_cell t ~now ~last_s)

let total t = locked t @@ fun () -> cell_summary t.total

let summary_json (s : summary) : J.t =
  J.Obj
    [
      ("count", J.Num (float_of_int s.count));
      ("mean_ms", J.Num s.mean_ms);
      ("max_ms", J.Num s.max_ms);
      ("p50_ms", J.Num s.p50_ms);
      ("p90_ms", J.Num s.p90_ms);
      ("p99_ms", J.Num s.p99_ms);
    ]

(** The standard 1m / 5m / total triple the [stats] op reports. *)
let windows_json t ~now : J.t =
  J.Obj
    [
      ("1m", summary_json (summary t ~now ~last_s:60.));
      ("5m", summary_json (summary t ~now ~last_s:300.));
      ("total", summary_json (total t));
    ]

(* ---- snapshots & merge --------------------------------------------- *)

type snap = {
  s_bucket_s : float;
  s_span : int;  (** ring length: epochs retained around the newest *)
  cells : (int * cell) list;  (** (epoch, data), ascending epoch *)
  s_total : cell;
}

let copy_cell (c : cell) = { c with hist = Array.copy c.hist }

let snapshot t : snap =
  locked t @@ fun () ->
  let cells = ref [] in
  Array.iteri
    (fun i ep -> if ep >= 0 then cells := (ep, copy_cell t.ring.(i)) :: !cells)
    t.epochs;
  {
    s_bucket_s = t.bucket_s;
    s_span = Array.length t.ring;
    cells = List.sort (fun (a, _) (b, _) -> compare a b) !cells;
    s_total = copy_cell t.total;
  }

(** Union-sum cells by epoch, then retain only epochs within the ring
    span of the newest epoch present.  Associative and commutative (the
    qcheck suite verifies associativity), so partial aggregates from
    several sources merge in any order. *)
let merge (a : snap) (b : snap) : snap =
  if a.s_bucket_s <> b.s_bucket_s || a.s_span <> b.s_span then
    invalid_arg "Obs_window.merge: mismatched bucket width or span";
  let tbl : (int, cell) Hashtbl.t = Hashtbl.create 64 in
  let feed (e, c) =
    match Hashtbl.find_opt tbl e with
    | Some into -> blend ~into c
    | None -> Hashtbl.add tbl e (copy_cell c)
  in
  List.iter feed a.cells;
  List.iter feed b.cells;
  let cells =
    Hashtbl.fold (fun e c acc -> (e, c) :: acc) tbl []
    |> List.sort (fun (x, _) (y, _) -> compare x y)
  in
  let newest = List.fold_left (fun m (e, _) -> max m e) min_int cells in
  let cells = List.filter (fun (e, _) -> e > newest - a.s_span) cells in
  let total = new_cell () in
  blend ~into:total a.s_total;
  blend ~into:total b.s_total;
  { s_bucket_s = a.s_bucket_s; s_span = a.s_span; cells; s_total = total }

let snap_total (s : snap) = cell_summary s.s_total

let snap_summary (s : snap) ~last_s =
  match s.cells with
  | [] -> empty_summary
  | cells ->
      let newest = List.fold_left (fun m (e, _) -> max m e) min_int cells in
      let k = min s.s_span (max 1 (int_of_float (ceil (last_s /. s.s_bucket_s)))) in
      let acc = new_cell () in
      List.iter (fun (e, c) -> if e > newest - k then blend ~into:acc c) cells;
      cell_summary acc
