(** Sliding-window latency/throughput aggregator: rotating fixed-width
    time buckets (count / sum / max / 1-2-5 histogram per bucket) plus a
    cumulative total.  Mutex-guarded — safe to record from executor
    domains while the event loop summarizes.  See the .ml header for the
    window and merge semantics. *)

type t

val bucket_bounds_ms : float list
(** Histogram bucket upper bounds, identical to
    [Serve.Latency.bucket_bounds_ms] (duplicated: obs sits below serve). *)

val create : ?bucket_s:float -> ?buckets:int -> unit -> t
(** Default: 60 buckets of 5 s — a 5-minute ring, so both the 1m and 5m
    windows of {!windows_json} are fully covered. *)

val record : t -> now:float -> float -> unit
(** [record t ~now dt_s] files a sample of [dt_s] seconds under wall
    time [now] (from {!Trace.now_s}). *)

type summary = {
  count : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;  (** histogram upper bound, not exact — see .ml *)
  p90_ms : float;
  p99_ms : float;
}

val summary : t -> now:float -> last_s:float -> summary
(** Aggregate over the buckets covering the last [last_s] seconds
    (clamped to the ring span). *)

val total : t -> summary
(** Cumulative since {!create}. *)

val summary_json : summary -> Trace_json.t

val windows_json : t -> now:float -> Trace_json.t
(** [{ "1m": summary, "5m": summary, "total": summary }] — the triple
    the [stats] op reports per op and per outcome. *)

(** {2 Immutable snapshots and deterministic merge} *)

type snap

val snapshot : t -> snap

val merge : snap -> snap -> snap
(** Union-sum cells by epoch, retaining only epochs within the ring span
    of the newest epoch present.  Associative; raises [Invalid_argument]
    on mismatched bucket width or span. *)

val snap_summary : snap -> last_s:float -> summary
(** Window summary of a snapshot, anchored at its newest epoch. *)

val snap_total : snap -> summary
