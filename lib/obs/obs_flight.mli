(** Bounded ring of recent structured lifecycle events, recorded even
    with tracing disarmed and dumped as JSONL on crash / wedge /
    restart-budget exhaustion or an explicit [dump] op.  Mutex-guarded;
    see the .ml header for the always-on cost argument. *)

type event = {
  t_s : float;  (** absolute wall time ({!Trace.now_s}) *)
  seq : int;  (** monotonic, 0-based; a gap at the front = overwritten *)
  kind : string;
  fields : (string * Trace_json.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 events (clamped to at least 16). *)

val record : t -> ?fields:(string * Trace_json.t) list -> string -> unit
(** [record t kind] appends an event stamped with {!Trace.now_s},
    overwriting the oldest when full. *)

val events : t -> event list
(** Retained events, oldest first. *)

val event_json : event -> Trace_json.t

val recorded : t -> int
(** Events ever recorded (= next [seq]); [recorded - size] were
    overwritten. *)

val size : t -> int
(** Events currently retained. *)

val capacity : t -> int

val dump : t -> path:string -> (int, string) result
(** Overwrite [path] with the retained ring as JSONL; returns the number
    of lines written, or the [Sys_error] message. *)
