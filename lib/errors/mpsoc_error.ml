type phase =
  | Cli
  | Frontend
  | Profile
  | Graph
  | Parallelize
  | Implement
  | Execute
  | Platform

type kind =
  | Invalid_input
  | Resource_limit
  | Timeout
  | Deadlock of { waiting_tasks : string list }
  | Fault_injected of string
  | Internal

type t = {
  phase : phase;
  kind : kind;
  message : string;
  location : string option;
  advice : string option;
}

exception Error of t

let make ?location ?advice ~phase ~kind message =
  { phase; kind; message; location; advice }

let raise_error ?location ?advice ~phase ~kind message =
  raise (Error (make ?location ?advice ~phase ~kind message))

let phase_name = function
  | Cli -> "cli"
  | Frontend -> "frontend"
  | Profile -> "profile"
  | Graph -> "htg"
  | Parallelize -> "parallelize"
  | Implement -> "implement"
  | Execute -> "execute"
  | Platform -> "platform"

let kind_name = function
  | Invalid_input -> "invalid input"
  | Resource_limit -> "resource limit"
  | Timeout -> "timeout"
  | Deadlock _ -> "deadlock"
  | Fault_injected p -> Printf.sprintf "injected fault at %s" p
  | Internal -> "internal error"

let pp ppf t =
  Fmt.pf ppf "@[<v>error [%s] %s: %s" (phase_name t.phase) (kind_name t.kind)
    t.message;
  (match t.kind with
  | Deadlock { waiting_tasks } when waiting_tasks <> [] ->
      Fmt.pf ppf "@,  waiting tasks: %s" (String.concat ", " waiting_tasks)
  | _ -> ());
  (match t.location with
  | Some l -> Fmt.pf ppf "@,  at: %s" l
  | None -> ());
  (match t.advice with
  | Some a -> Fmt.pf ppf "@,  hint: %s" a
  | None -> ());
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t

let exit_code t =
  match t.kind with
  | Invalid_input | Resource_limit -> 3
  | Timeout | Deadlock _ -> 4
  | Fault_injected _ | Internal -> 1

let () =
  Printexc.register_printer (function
    | Error t -> Some (to_string t)
    | _ -> None)
