(** Structured errors for the whole flow.

    Every phase of the pipeline — CLI argument handling, the Mini-C
    frontend, profiling, HTG construction, parallelization, task-program
    implementation, and execution — reports failures as a value of {!t}
    threaded through [Result], so the CLI can honour a fixed exit-code
    contract (see {!exit_code}) and callers embedding the library never
    have to catch stringly-typed exceptions.

    {!exception-Error} exists for the few construction-time helpers
    (e.g. [Platform.Desc.make]) whose signatures are not [Result]-shaped;
    the [Result]-returning entry points catch it at phase boundaries. *)

type phase =
  | Cli
  | Frontend
  | Profile
  | Graph  (** hierarchical task graph construction *)
  | Parallelize
  | Implement
  | Execute
  | Platform

type kind =
  | Invalid_input  (** malformed source, platform file, or argument *)
  | Resource_limit  (** a configured budget (steps, nodes, …) ran out *)
  | Timeout  (** the [--timeout] wall-clock deadline expired *)
  | Deadlock of { waiting_tasks : string list }
      (** the watchdog found tasks blocked on receives with no runnable
          producer left *)
  | Fault_injected of string  (** an armed {!Fault} probe fired (point name) *)
  | Internal  (** invariant violation: a bug, not a user error *)

type t = {
  phase : phase;
  kind : kind;
  message : string;
  location : string option;
      (** offending name/position, e.g. a class name or [file:line] *)
  advice : string option;  (** one-line hint on how to fix or work around *)
}

exception Error of t

val make :
  ?location:string -> ?advice:string -> phase:phase -> kind:kind -> string -> t

val raise_error :
  ?location:string -> ?advice:string -> phase:phase -> kind:kind -> string -> 'a
(** [make] then [raise (Error _)]. *)

val phase_name : phase -> string

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering: phase, message, location, advice. *)

val to_string : t -> string

val exit_code : t -> int
(** CLI contract: 3 for [Invalid_input]/[Resource_limit], 4 for
    [Timeout]/[Deadlock], 1 for [Fault_injected]/[Internal].  (0 = ok and
    2 = degraded-but-valid are decided by the CLI from the solution
    record, not from an error.) *)
