(** Live-telemetry client for the serve daemon: polls the [stats] op
    (schema [mpsoc-par/stats/v1]) and renders a top-style text snapshot
    or raw JSON, one document per poll. *)

type config = {
  socket_path : string;
  interval_s : float;  (** sleep between polls *)
  count : int;  (** polls before exiting; [0] = forever *)
  json : bool;  (** raw stats body (one JSON object per poll) *)
}

val default_config : config
(** One poll, 2 s interval, table output. *)

val run : config -> int
(** Poll and print.  Returns [0] after [count] successful polls, [1] as
    soon as a poll fails (daemon gone, non-[ok] answer).  Raises
    {!Mpsoc_error.Error} ([Invalid_input]) when the socket does not
    accept connections at all. *)
