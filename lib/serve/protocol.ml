(** Wire protocol of the serve daemon (schema [mpsoc-par/serve/v3]).

    Transport: length-prefixed frames — a 4-byte big-endian payload
    length followed by that many bytes of JSON.  Length prefixes make
    the stream self-delimiting without scanning, so a slow or malicious
    client can never stall the parser, and the decoder rejects any
    frame announcing more than {!max_frame} bytes before buffering it.

    Requests and responses are JSON objects carrying a [schema] field;
    the response [code] mirrors the CLI exit-code contract (0 ok /
    2 degraded / 3 invalid input, overload or drain rejection /
    4 timeout or deadlock / 1 fault or internal), so a remote client
    observes exactly the statuses a local CLI run would exit with. *)

module J = Trace_json

(* v2 over v1: a [health] op (liveness/readiness with per-worker
   executor status and restart counters) and a per-request [fault_plan]
   field armed on the executor worker that runs the job (chaos tests).
   v3 over v2: a [stats] op (live sliding-window telemetry, schema
   mpsoc-par/stats/v1, answered inline by the event loop) and a [dump]
   op (flight-recorder JSONL dump on demand); worker-run responses also
   gain [request_id] and [server_timing] body fields. *)
let schema = "mpsoc-par/serve/v3"

(** Hard cap on a frame's JSON payload.  Large enough for any source
    file the flow accepts, small enough that a garbage length prefix
    (e.g. someone piping an HTTP request at the socket) is rejected
    immediately instead of waiting on gigabytes that never arrive. *)
let max_frame = 4 * 1024 * 1024

(* ---- requests ------------------------------------------------------ *)

type op = Parallelize | Execute | Status | Health | Drain | Stats | Dump

let op_name = function
  | Parallelize -> "parallelize"
  | Execute -> "execute"
  | Status -> "status"
  | Health -> "health"
  | Drain -> "drain"
  | Stats -> "stats"
  | Dump -> "dump"

let op_of_name = function
  | "parallelize" -> Some Parallelize
  | "execute" -> Some Execute
  | "status" -> Some Status
  | "health" -> Some Health
  | "drain" -> Some Drain
  | "stats" -> Some Stats
  | "dump" -> Some Dump
  | _ -> None

type request = {
  id : string;  (** client-chosen correlation id, echoed in the response *)
  op : op;
  target : string;  (** benchmark name or server-side source path *)
  platform : string;  (** preset name or server-side description file *)
  approach : string;  (** ["hetero"] (default) or ["homo"] *)
  deadline_s : float;
      (** per-request watchdog deadline; [0.] accepts the server default *)
  fault_plan : string;
      (** fault-plan spec armed (domain-locally) on the executor worker
          that runs this job; [""] = none.  Chaos testing only: the plan
          affects this request alone — an injected crash kills the
          worker, never the daemon *)
}

let request ?(id = "") ?(target = "") ?(platform = "platform-a-accel")
    ?(approach = "hetero") ?(deadline_s = 0.) ?(fault_plan = "") op =
  { id; op; target; platform; approach; deadline_s; fault_plan }

let request_json (r : request) : J.t =
  J.Obj
    ([
       ("schema", J.Str schema);
       ("id", J.Str r.id);
       ("op", J.Str (op_name r.op));
       ("target", J.Str r.target);
       ("platform", J.Str r.platform);
       ("approach", J.Str r.approach);
       ("deadline_s", J.Num r.deadline_s);
     ]
    @ if r.fault_plan = "" then [] else [ ("fault_plan", J.Str r.fault_plan) ])

let str_field ?(default = "") j name =
  match J.member name j with
  | Some (J.Str s) -> s
  | Some _ | None -> default

let num_field ?(default = 0.) j name =
  match J.member name j with Some (J.Num n) -> n | Some _ | None -> default

let request_of_json (j : J.t) : (request, string) result =
  match j with
  | J.Obj _ -> (
      match str_field j "schema" with
      | s when s <> schema ->
          Error
            (Printf.sprintf "unsupported schema %S (this server speaks %s)" s
               schema)
      | _ -> (
          match op_of_name (str_field j "op") with
          | None ->
              Error
                (Printf.sprintf
                   "unknown op %S (ops: parallelize, execute, status, health, \
                    drain, stats, dump)"
                   (str_field j "op"))
          | Some op ->
              Ok
                {
                  id = str_field j "id";
                  op;
                  target = str_field j "target";
                  platform =
                    str_field ~default:"platform-a-accel" j "platform";
                  approach = str_field ~default:"hetero" j "approach";
                  deadline_s = num_field j "deadline_s";
                  fault_plan = str_field j "fault_plan";
                }))
  | _ -> Error "request is not a JSON object"

let parse_request (payload : string) : (request, string) result =
  match J.parse payload with
  | j -> request_of_json j
  | exception J.Parse_error m -> Error ("bad JSON: " ^ m)

(* ---- responses ----------------------------------------------------- *)

type status =
  | Ok_
  | Degraded
  | Invalid
  | Resource_limit
  | Timeout
  | Deadlock
  | Fault
  | Internal
  | Overloaded  (** admission queue full — retry later *)
  | Draining  (** server is shutting down — resubmit elsewhere *)

let all_statuses =
  [
    Ok_;
    Degraded;
    Invalid;
    Resource_limit;
    Timeout;
    Deadlock;
    Fault;
    Internal;
    Overloaded;
    Draining;
  ]

let status_name = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Invalid -> "invalid"
  | Resource_limit -> "resource-limit"
  | Timeout -> "timeout"
  | Deadlock -> "deadlock"
  | Fault -> "fault"
  | Internal -> "internal"
  | Overloaded -> "overloaded"
  | Draining -> "draining"

let status_of_name n =
  List.find_opt (fun s -> status_name s = n) all_statuses

(** The CLI exit-code contract, applied to responses.  [Overloaded] and
    [Draining] are typed rejections of a valid request — resource-class
    (3), like [Resource_limit], not server faults. *)
let status_code = function
  | Ok_ -> 0
  | Degraded -> 2
  | Invalid | Resource_limit | Overloaded | Draining -> 3
  | Timeout | Deadlock -> 4
  | Fault | Internal -> 1

let status_of_error (e : Mpsoc_error.t) =
  match e.Mpsoc_error.kind with
  | Mpsoc_error.Invalid_input -> Invalid
  | Mpsoc_error.Resource_limit -> Resource_limit
  | Mpsoc_error.Timeout -> Timeout
  | Mpsoc_error.Deadlock _ -> Deadlock
  | Mpsoc_error.Fault_injected _ -> Fault
  | Mpsoc_error.Internal -> Internal

type response = {
  id : string;
  status : status;
  message : string;  (** human diagnostic; [""] when none *)
  body : (string * J.t) list;  (** op-specific payload *)
}

let response ?(message = "") ?(body = []) ~id status =
  { id; status; message; body }

let of_error ~id (e : Mpsoc_error.t) =
  response ~id (status_of_error e) ~message:(Mpsoc_error.to_string e)

let response_json (r : response) : J.t =
  J.Obj
    ([
       ("schema", J.Str schema);
       ("id", J.Str r.id);
       ("status", J.Str (status_name r.status));
       ("code", J.Num (float_of_int (status_code r.status)));
     ]
    @ (if r.message = "" then [] else [ ("message", J.Str r.message) ])
    @ r.body)

let response_of_json (j : J.t) : (response, string) result =
  match j with
  | J.Obj fields -> (
      if str_field j "schema" <> schema then
        Error (Printf.sprintf "unsupported schema %S" (str_field j "schema"))
      else
        match status_of_name (str_field j "status") with
        | None -> Error (Printf.sprintf "unknown status %S" (str_field j "status"))
        | Some status ->
            let known = [ "schema"; "id"; "status"; "code"; "message" ] in
            Ok
              {
                id = str_field j "id";
                status;
                message = str_field j "message";
                body =
                  List.filter (fun (k, _) -> not (List.mem k known)) fields;
              })
  | _ -> Error "response is not a JSON object"

let parse_response (payload : string) : (response, string) result =
  match J.parse payload with
  | j -> response_of_json j
  | exception J.Parse_error m -> Error ("bad JSON: " ^ m)

(* ---- framing ------------------------------------------------------- *)

let frame (payload : string) : string =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg
      (Printf.sprintf "Protocol.frame: payload of %d bytes exceeds max %d" n
         max_frame);
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

(** Incremental frame decoder: feed arbitrary byte chunks, pop complete
    payloads.  Total on any input — a length prefix that is negative or
    exceeds {!max_frame} yields [`Error] (the connection must be
    dropped; resynchronisation inside a corrupt stream is impossible). *)
type decoder = {
  mutable buf : Bytes.t;
  mutable len : int;  (** live bytes in [buf], starting at 0 *)
  mutable dead : string option;  (** sticky framing error *)
}

let decoder () = { buf = Bytes.create 4096; len = 0; dead = None }

let feed d (s : string) =
  match d.dead with
  | Some _ -> ()  (* the stream is unrecoverable; drop further input *)
  | None ->
      let n = String.length s in
      let need = d.len + n in
      if Bytes.length d.buf < need then begin
        let cap = max need (2 * Bytes.length d.buf) in
        let nb = Bytes.create cap in
        Bytes.blit d.buf 0 nb 0 d.len;
        d.buf <- nb
      end;
      Bytes.blit_string s 0 d.buf d.len n;
      d.len <- need

let next d : [ `Frame of string | `Awaiting | `Error of string ] =
  match d.dead with
  | Some m -> `Error m
  | None ->
      if d.len < 4 then `Awaiting
      else
        let n = Int32.to_int (Bytes.get_int32_be d.buf 0) in
        if n < 0 || n > max_frame then begin
          let m =
            Printf.sprintf "bad frame length %d (max %d)" n max_frame
          in
          d.dead <- Some m;
          `Error m
        end
        else if d.len < 4 + n then `Awaiting
        else begin
          let payload = Bytes.sub_string d.buf 4 n in
          let rest = d.len - (4 + n) in
          Bytes.blit d.buf (4 + n) d.buf 0 rest;
          d.len <- rest;
          `Frame payload
        end

(* ---- blocking fd helpers (clients and tests) ----------------------- *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd (payload : string) =
  let f = frame payload in
  write_all fd (Bytes.unsafe_of_string f) 0 (String.length f)

(** Read exactly [n] bytes; [None] on EOF at a frame boundary (offset
    0), raises [End_of_file] on EOF mid-frame. *)
let read_exact fd n : string option =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Some (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> if off = 0 then None else raise End_of_file
      | k -> go (off + k)
  in
  go 0

let read_frame fd : [ `Frame of string | `Eof | `Error of string ] =
  match read_exact fd 4 with
  | None -> `Eof
  | Some hdr -> (
      let n = Int32.to_int (String.get_int32_be hdr 0) in
      if n < 0 || n > max_frame then
        `Error (Printf.sprintf "bad frame length %d (max %d)" n max_frame)
      else
        match read_exact fd n with
        | Some payload -> `Frame payload
        | None -> `Error "eof inside a frame"
        | exception End_of_file -> `Error "eof inside a frame")
  | exception End_of_file -> `Error "eof inside a frame header"

let write_request fd (r : request) =
  write_frame fd (J.to_string (request_json r))

let write_response fd (r : response) =
  write_frame fd (J.to_string (response_json r))

let read_response fd : [ `Response of response | `Eof | `Error of string ] =
  match read_frame fd with
  | `Eof -> `Eof
  | `Error m -> `Error m
  | `Frame payload -> (
      match parse_response payload with
      | Ok r -> `Response r
      | Error m -> `Error m)
