(** The resident parallelization server: a [select]-driven event loop
    over a Unix-domain (and optional TCP) listener speaking the
    {!Protocol} frames, one executor domain multiplexing every client's
    jobs onto shared solver state (taskpool, persistent store, hot
    per-platform {!Ilp.Memo}), a bounded client-fair {!Admission}
    queue, per-request watchdog deadlines, and graceful drain on
    SIGTERM/SIGINT or a [drain] request. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  queue_max : int;
  default_deadline_s : float;
      (** applied when a request carries none; [0.] = none *)
  drain_grace_s : float;  (** force-stop this long after drain starts *)
  cfg : Parcore.Config.t;  (** solver/runtime knobs shared by every job *)
}

val default_config : config

val run : config -> int
(** Serve until drained.  Returns the process exit code: [0] after a
    clean drain (all admitted jobs answered, cache index flushed,
    trace/metrics written), [4] when the drain exceeded
    [drain_grace_s] and the server force-stopped. *)
