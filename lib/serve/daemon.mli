(** The resident parallelization server: a [select]-driven event loop
    over a Unix-domain (and optional TCP) listener speaking the
    {!Protocol} frames, a {!Supervisor}-managed pool of executor worker
    domains (each with its own private taskpool) multiplexing every
    client's jobs over shared thread-safe solver state (persistent
    store, hot per-platform single-flight {!Ilp.Memo}), a bounded
    client-fair {!Admission} queue, per-request watchdog deadlines, and
    graceful drain on SIGTERM/SIGINT or a [drain] request.

    A worker that crashes or wedges is abandoned and restarted within a
    bounded budget; its in-flight request is answered with a typed
    [internal]/[timeout] response, so one poisoned request never takes
    the daemon or other in-flight requests with it. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  queue_max : int;
  default_deadline_s : float;
      (** applied when a request carries none; [0.] = none *)
  drain_grace_s : float;  (** force-stop this long after drain starts *)
  executors : int;  (** supervised executor workers (≥ 1); default 2 *)
  restart_budget : int;
      (** total executor restarts before the daemon gives up and drains
          with exit code 1 *)
  wedge_grace_s : float;
      (** slack past a request deadline before its worker is declared
          wedged and abandoned *)
  flight_path : string option;
      (** flight-recorder dump file (written on worker crash/wedge/
          restart, budget exhaustion, or a [dump] request); [None] =
          [socket_path ^ ".flight.jsonl"] *)
  memo_stall_s : float;
      (** reservation age before the monitor reports a stalled
          single-flight memo reservation (the zombie hazard); default
          5 s *)
  cfg : Parcore.Config.t;  (** solver/runtime knobs shared by every job *)
}

val default_config : config

val run : config -> int
(** Serve until drained.  Returns the process exit code: [0] after a
    clean drain (all admitted jobs answered, cache index flushed,
    trace/metrics written), [1] when the executor restart budget was
    exhausted (the daemon drained first), [4] when the drain exceeded
    [drain_grace_s] and the server force-stopped.  Refuses to start
    (typed invalid-input error) when another daemon is live on
    [socket_path]. *)
