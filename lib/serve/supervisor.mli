(** Crash-only supervision of a pool of executor worker domains.

    Spawns [workers] incarnations looping [take → run → answer] over a
    job source.  OCaml domains cannot be killed, so a crashed worker (an
    exception escaping [run]) or a wedged one (no answer past its job's
    deadline plus a grace period) is {e abandoned} — its in-flight job
    is answered with a typed failure via a per-job answer-exactly-once
    CAS token — and a fresh incarnation is spawned on the slot, gated by
    per-slot exponential backoff and a global restart budget.  Spending
    the budget fires [on_exhausted] once and stops all restarts.

    {!check}, {!status_json}, {!stop}, and the counters must be called
    from a single domain (the daemon's event loop). *)

type config = {
  workers : int;  (** slots (≥ 1) *)
  restart_budget : int;  (** total restarts before giving up *)
  backoff_base_s : float;  (** first-restart delay per slot *)
  backoff_cap_s : float;  (** per-slot delay ceiling *)
  wedge_grace_s : float;
      (** slack past a job's deadline before the monitor declares the
          worker wedged *)
}

val default_config : config
(** 2 workers, budget 8, backoff 0.05 s doubling to 2 s, grace 1 s. *)

type ('ctx, 'job, 'resp) hooks = {
  take : unit -> 'job option;
      (** blocking job source; [None] = drained, exit normally *)
  worker_init : int -> 'ctx;
      (** build the per-incarnation context {e on the worker domain}
          (e.g. its private taskpool); a raise here counts as a crash *)
  worker_exit : 'ctx -> unit;
      (** release the context on normal or abandoned exit; {e not}
          called on crash (the context's state is unknown — leak it) *)
  run : 'ctx -> 'job -> 'resp;
      (** execute one job; expected to return typed failures and let
          only worker-killing faults escape *)
  deadline : 'job -> float;  (** absolute deadline; [infinity] = none *)
  answer : 'job -> 'resp -> unit;  (** deliver; called exactly once per job *)
  crashed : 'job -> exn -> 'resp;  (** response for a job killed by a crash *)
  wedged : 'job -> 'resp;  (** response for a job whose worker wedged *)
  on_exhausted : unit -> unit;  (** restart budget spent; fired once *)
  describe : 'job -> string;  (** label for health/trace output *)
  wake : unit -> unit;  (** poke the monitor's event loop *)
  note : event:string -> worker:int -> unit;
      (** lifecycle edge observer (["executor.spawn"] / [".restart"] /
          [".crash"] / [".wedge"] / [".exhausted"] / [".exit"]), called
          on the monitor domain regardless of tracing — the daemon's
          flight recorder hangs off this.  [worker = -1] for
          process-wide events (budget exhaustion). *)
}

type ('ctx, 'job, 'resp) t

val start : config -> ('ctx, 'job, 'resp) hooks -> ('ctx, 'job, 'resp) t
(** Spawn the initial incarnation of every slot. *)

val check : ('ctx, 'job, 'resp) t -> now:float -> unit
(** One monitor pass: detect wedges (answering their jobs), detect
    crashes, and spawn pending restarts whose backoff window closed.
    Call periodically from the event loop (the daemon's select tick). *)

val active : ('ctx, 'job, 'resp) t -> int
(** Slots whose current incarnation is running and not abandoned. *)

val drained : ('ctx, 'job, 'resp) t -> bool
(** Every slot exited normally or will never restart. *)

val restarts : ('ctx, 'job, 'resp) t -> int
val wedges : ('ctx, 'job, 'resp) t -> int
val crashes : ('ctx, 'job, 'resp) t -> int
val exhausted : ('ctx, 'job, 'resp) t -> bool

val status_json : ('ctx, 'job, 'resp) t -> Trace_json.t
(** Per-worker [{worker, state, restarts, inflight}] list; states are
    [idle], [busy], [wedged], [restarting], [crashed], [exited], [dead]. *)

val stop : ('ctx, 'job, 'resp) t -> unit
(** Join every incarnation whose loop has exited; leak the rest (wedged
    workers still asleep die with the process). *)
