(** Load generator for the serve daemon ([mpsoc-par loadgen]).

    Replays a target list against a running server at a configured
    offered rate and concurrency, then writes a latency-percentile
    report (schema [mpsoc-par/loadgen/v1]) suitable for the benchmark
    directory, next to [BENCH_parallelize.json].

    Pacing is open-loop on a single global schedule: request [i] is
    due at [t0 + i/qps] regardless of which worker sends it, so the
    offered rate stays fixed even when the server slows down — queueing
    then shows up as latency and [overloaded] rejections, which is
    exactly what the report is for.  Each worker domain owns one
    connection and blocks for each response (per-connection closed
    loop, cross-connection open loop).

    The report doubles as a correctness check: every response's
    solution digest is compared per target, and a target answering two
    different digests — which determinism forbids — fails the run. *)

module P = Protocol
module J = Trace_json

type config = {
  socket_path : string;
  targets : string list;
  platform : string;
  approach : string;
  op : P.op;  (** {!P.Parallelize} (default) or {!P.Execute} *)
  qps : float;  (** offered request rate; [0.] = as fast as possible *)
  concurrency : int;  (** worker connections *)
  requests : int;  (** total requests across all workers *)
  deadline_s : float;  (** per-request deadline sent to the server; [0.] = server default *)
  report_path : string option;  (** [None] = no report file; ["-"] = stdout *)
}

let default_config =
  {
    socket_path = "mpsoc-par.sock";
    targets = [];
    platform = "platform-a-accel";
    approach = "hetero";
    op = P.Parallelize;
    qps = 2.;
    concurrency = 2;
    requests = 10;
    deadline_s = 0.;
    report_path = None;
  }

(** Per-worker tallies, merged after the joins. *)
type wres = {
  samples : float list;  (** per-response end-to-end seconds *)
  statuses : (string * int) list;  (** response-status name -> count *)
  digests : (string * string) list;  (** (target, digest) pairs observed *)
  transport_errors : int;
}

let bump statuses name =
  let n = match List.assoc_opt name statuses with Some n -> n | None -> 0 in
  (name, n + 1) :: List.remove_assoc name statuses

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (code, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:path
       ~advice:"is `mpsoc-par serve` running on this socket?"
       ("cannot connect: " ^ Unix.error_message code));
  fd

let worker (cfg : config) ~t0 ~(next : int Atomic.t) () : wres =
  let fd = connect cfg.socket_path in
  let targets = Array.of_list cfg.targets in
  let rec loop acc =
    let i = Atomic.fetch_and_add next 1 in
    if i >= cfg.requests then acc
    else begin
      (* global open-loop schedule: request i is due at t0 + i/qps *)
      if cfg.qps > 0. then begin
        let due = t0 +. (float_of_int i /. cfg.qps) in
        let wait = due -. Trace.now_s () in
        if wait > 0. then Unix.sleepf wait
      end;
      let target = targets.(i mod Array.length targets) in
      let req =
        P.request
          ~id:(Printf.sprintf "load-%d" i)
          ~target ~platform:cfg.platform ~approach:cfg.approach
          ~deadline_s:cfg.deadline_s cfg.op
      in
      let sent = Trace.now_s () in
      match
        P.write_request fd req;
        P.read_response fd
      with
      | exception Unix.Unix_error _ ->
          { acc with transport_errors = acc.transport_errors + 1 }
      | `Eof | `Error _ ->
          { acc with transport_errors = acc.transport_errors + 1 }
      | `Response r ->
          let dt = Trace.now_s () -. sent in
          let digests =
            match List.assoc_opt "digest" r.P.body with
            | Some (J.Str d) -> (target, d) :: acc.digests
            | _ -> acc.digests
          in
          loop
            {
              acc with
              samples = dt :: acc.samples;
              statuses = bump acc.statuses (P.status_name r.P.status);
              digests;
            }
    end
  in
  let r =
    try
      loop { samples = []; statuses = []; digests = []; transport_errors = 0 }
    with Mpsoc_error.Error _ as e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  r

(** Per-target digest sets; a target with more than one distinct digest
    violates the determinism contract. *)
let digest_check (pairs : (string * string) list) :
    (string * string list) list * bool =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (t, d) ->
      let ds = Option.value (Hashtbl.find_opt tbl t) ~default:[] in
      if not (List.mem d ds) then Hashtbl.replace tbl t (d :: ds))
    pairs;
  let per_target =
    Hashtbl.fold (fun t ds acc -> (t, List.rev ds) :: acc) tbl []
    |> List.sort compare
  in
  (per_target, List.for_all (fun (_, ds) -> List.length ds <= 1) per_target)

let run (cfg : config) : int =
  if cfg.targets = [] then
    Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input
      "loadgen needs at least one TARGET";
  if cfg.requests <= 0 then
    Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input
      "loadgen needs --requests > 0";
  (* fail fast on a bad target before opening the flood *)
  List.iter
    (fun t ->
      match Benchsuite.Suite.resolve t with
      | Ok _ -> ()
      | Error e -> raise (Mpsoc_error.Error e))
    cfg.targets;
  let t0 = Trace.now_s () in
  let next = Atomic.make 0 in
  let workers =
    List.init
      (max 1 cfg.concurrency)
      (fun _ -> Domain.spawn (worker cfg ~t0 ~next))
  in
  let results = List.map Domain.join workers in
  let wall_s = Trace.now_s () -. t0 in
  (* merge the per-worker tallies *)
  let lat = Latency.create () in
  List.iter
    (fun r -> List.iter (Latency.record lat) r.samples)
    results;
  let statuses =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (name, n) ->
            let m =
              match List.assoc_opt name acc with Some m -> m | None -> 0
            in
            (name, m + n) :: List.remove_assoc name acc)
          acc r.statuses)
      [] results
    |> List.sort compare
  in
  let transport_errors =
    List.fold_left (fun a r -> a + r.transport_errors) 0 results
  in
  let count name =
    match List.assoc_opt name statuses with Some n -> n | None -> 0
  in
  let completed = Latency.count lat in
  let rejected = count "overloaded" + count "draining" in
  let per_target, digests_ok =
    digest_check (List.concat_map (fun r -> r.digests) results)
  in
  let summary = Latency.summarize lat in
  let ok = transport_errors = 0 && digests_ok in
  let report =
    J.Obj
      [
        ("schema", J.Str "mpsoc-par/loadgen/v1");
        ("socket", J.Str cfg.socket_path);
        ("op", J.Str (P.op_name cfg.op));
        ("platform", J.Str cfg.platform);
        ("approach", J.Str cfg.approach);
        ("targets", J.List (List.map (fun t -> J.Str t) cfg.targets));
        ("offered_qps", J.Num cfg.qps);
        ("concurrency", J.Num (float_of_int cfg.concurrency));
        ("requests", J.Num (float_of_int cfg.requests));
        ("wall_s", J.Num wall_s);
        ("completed", J.Num (float_of_int completed));
        ( "throughput_rps",
          J.Num (if wall_s > 0. then float_of_int completed /. wall_s else 0.)
        );
        ( "statuses",
          J.Obj
            (List.map
               (fun (name, n) -> (name, J.Num (float_of_int n)))
               statuses) );
        ("rejected", J.Num (float_of_int rejected));
        ( "rejection_rate",
          J.Num
            (if cfg.requests > 0 then
               float_of_int rejected /. float_of_int cfg.requests
             else 0.) );
        ("transport_errors", J.Num (float_of_int transport_errors));
        ("latency", Latency.summary_json summary);
        ("latency_histogram_ms", Latency.histogram_json lat);
        ( "digests",
          J.Obj
            (List.map
               (fun (t, ds) -> (t, J.List (List.map (fun d -> J.Str d) ds)))
               per_target) );
        ("digests_consistent", J.Bool digests_ok);
        ("ok", J.Bool ok);
      ]
  in
  Option.iter (fun path -> Observe.write_json ~path report) cfg.report_path;
  Fmt.epr
    "loadgen: %d/%d completed in %.2f s (%.2f rps) — p50 %.1f ms, p90 %.1f \
     ms, p99 %.1f ms; %d rejected, %d transport error(s)%s@."
    completed cfg.requests wall_s
    (if wall_s > 0. then float_of_int completed /. wall_s else 0.)
    summary.Latency.p50_ms summary.Latency.p90_ms summary.Latency.p99_ms
    rejected transport_errors
    (if digests_ok then "" else "; DIGEST MISMATCH");
  if ok then 0 else 1
