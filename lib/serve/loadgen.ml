(** Load generator for the serve daemon ([mpsoc-par loadgen]).

    Replays a target list against a running server at a configured
    offered rate and concurrency, then writes a latency-percentile
    report (schema [mpsoc-par/loadgen/v3]) suitable for the benchmark
    directory, next to [BENCH_parallelize.json].  v3 folds the server's
    per-response [server_timing] breakdown (queue-wait / solve /
    serialize seconds) into the report, so client-observed latency can
    be split into server queueing, server compute, and everything else
    (transport + client scheduling).

    Pacing is open-loop on a single global schedule: request [i] is
    due at [t0 + i/qps] regardless of which worker sends it, so the
    offered rate stays fixed even when the server slows down — queueing
    then shows up as latency and [overloaded] rejections, which is
    exactly what the report is for.  Each worker domain owns one
    connection and blocks for each response (per-connection closed
    loop, cross-connection open loop).

    Retries: a typed [overloaded] rejection or a transport failure
    (connection reset, refused, framing error) is retried up to
    [retry_max] times with capped exponential backoff and {e full
    jitter} — sleep ~ uniform(0, min(cap, base·2^attempt)) — drawn from
    a per-worker deterministic LCG, so runs are reproducible and
    retrying workers do not stampede in lockstep.  [draining] is not
    retried: the server said it will never accept, so the client should
    go elsewhere.

    Chaos mix: with [fault_specs] set, every [fault_every]-th request
    carries a fault plan (cycling through the specs) that the daemon
    arms on the executor worker running that job.  Faulted requests are
    expected to come back with typed error statuses and are excluded
    from the digest-consistency check.

    The report doubles as a correctness check: every non-faulted
    response's solution digest is compared per target, and a target
    answering two different digests — which determinism forbids — fails
    the run. *)

module P = Protocol
module J = Trace_json

type config = {
  socket_path : string;
  targets : string list;
  platform : string;
  approach : string;
  op : P.op;  (** {!P.Parallelize} (default) or {!P.Execute} *)
  qps : float;  (** offered request rate; [0.] = as fast as possible *)
  concurrency : int;  (** worker connections *)
  requests : int;  (** total requests across all workers *)
  deadline_s : float;  (** per-request deadline sent to the server; [0.] = server default *)
  retry_max : int;  (** retries per request on [overloaded]/transport *)
  retry_base_s : float;  (** backoff window for the first retry *)
  retry_cap_s : float;  (** backoff window ceiling *)
  fault_specs : string list;
      (** fault-plan specs cycled over faulted requests; [[]] = none *)
  fault_every : int;
      (** arm a fault plan on every n-th request; [0] = never *)
  report_path : string option;  (** [None] = no report file; ["-"] = stdout *)
}

let default_config =
  {
    socket_path = "mpsoc-par.sock";
    targets = [];
    platform = "platform-a-accel";
    approach = "hetero";
    op = P.Parallelize;
    qps = 2.;
    concurrency = 2;
    requests = 10;
    deadline_s = 0.;
    retry_max = 3;
    retry_base_s = 0.05;
    retry_cap_s = 1.;
    fault_specs = [];
    fault_every = 0;
    report_path = None;
  }

(** Per-worker tallies, merged after the joins. *)
type wres = {
  samples : float list;  (** per-response end-to-end seconds (last attempt) *)
  statuses : (string * int) list;  (** final response-status name -> count *)
  digests : (string * string) list;
      (** (target, digest) pairs observed on {e non-faulted} requests *)
  transport_errors : int;  (** requests that failed transport after retries *)
  retries : int;  (** extra attempts across all requests *)
  retry_wait_s : float;  (** total backoff sleep *)
  faulted : int;  (** requests sent with a fault plan *)
  timed : int;  (** responses that carried a [server_timing] breakdown *)
  srv_queue_s : float;  (** summed server-side queue-wait seconds *)
  srv_solve_s : float;  (** summed server-side solve seconds *)
  srv_serialize_s : float;  (** summed server-side serialize seconds *)
}

let bump statuses name =
  let n = match List.assoc_opt name statuses with Some n -> n | None -> 0 in
  (name, n + 1) :: List.remove_assoc name statuses

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (code, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:path
       ~advice:"is `mpsoc-par serve` running on this socket?"
       ("cannot connect: " ^ Unix.error_message code));
  fd

(* Deterministic per-worker jitter source (same LCG family as
   {!Fault.generate}); no Stdlib.Random so runs are reproducible. *)
let mk_jitter seed =
  let s = ref ((seed * 2654435761) land 0x3FFFFFFF) in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !s /. 1073741824. (* uniform [0, 1) *)

(** The fault spec carried by request [i]; [""] = clean. *)
let fault_for (cfg : config) i =
  if cfg.fault_specs = [] || cfg.fault_every <= 0 then ""
  else if i mod cfg.fault_every <> 0 then ""
  else
    List.nth cfg.fault_specs
      (i / cfg.fault_every mod List.length cfg.fault_specs)

let worker (cfg : config) ~widx ~t0 ~(next : int Atomic.t) () : wres =
  (* the first connect fails fast (bad socket path is a user error);
     later reconnects are part of the retry loop *)
  let fdr = ref (Some (connect cfg.socket_path)) in
  let kill_fd () =
    Option.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      !fdr;
    fdr := None
  in
  let get_fd () =
    match !fdr with
    | Some fd -> Some fd
    | None -> (
        match connect cfg.socket_path with
        | fd ->
            fdr := Some fd;
            Some fd
        | exception Mpsoc_error.Error _ -> None)
  in
  let jitter = mk_jitter (widx + 1) in
  (* full jitter: uniform over the capped exponential window *)
  let backoff k =
    Float.min cfg.retry_cap_s (cfg.retry_base_s *. (2. ** float_of_int k))
    *. jitter ()
  in
  (* one request, with retries; [`Done (resp, last_attempt_s, retries,
     wait_s)] or [`Failed (retries, wait_s)] when transport never
     recovered *)
  let send req =
    let rec attempt k retries wait_s =
      let again () =
        let w = backoff k in
        Unix.sleepf w;
        attempt (k + 1) (retries + 1) (wait_s +. w)
      in
      match get_fd () with
      | None -> if k < cfg.retry_max then again () else `Failed (retries, wait_s)
      | Some fd -> (
          let sent = Trace.now_s () in
          match
            P.write_request fd req;
            P.read_response fd
          with
          | `Response r when r.P.status = P.Overloaded && k < cfg.retry_max ->
              again ()
          | `Response r -> `Done (r, Trace.now_s () -. sent, retries, wait_s)
          | `Eof | `Error _ ->
              kill_fd ();
              if k < cfg.retry_max then again ()
              else `Failed (retries, wait_s)
          | exception Unix.Unix_error _ ->
              kill_fd ();
              if k < cfg.retry_max then again ()
              else `Failed (retries, wait_s))
    in
    attempt 0 0 0.
  in
  let targets = Array.of_list cfg.targets in
  let rec loop acc =
    let i = Atomic.fetch_and_add next 1 in
    if i >= cfg.requests then acc
    else begin
      (* global open-loop schedule: request i is due at t0 + i/qps *)
      if cfg.qps > 0. then begin
        let due = t0 +. (float_of_int i /. cfg.qps) in
        let wait = due -. Trace.now_s () in
        if wait > 0. then Unix.sleepf wait
      end;
      let target = targets.(i mod Array.length targets) in
      let fault_plan = fault_for cfg i in
      let req =
        P.request
          ~id:(Printf.sprintf "load-%d" i)
          ~target ~platform:cfg.platform ~approach:cfg.approach
          ~deadline_s:cfg.deadline_s ~fault_plan cfg.op
      in
      let acc =
        { acc with faulted = (acc.faulted + if fault_plan = "" then 0 else 1) }
      in
      match send req with
      | `Failed (retries, wait_s) ->
          loop
            {
              acc with
              transport_errors = acc.transport_errors + 1;
              retries = acc.retries + retries;
              retry_wait_s = acc.retry_wait_s +. wait_s;
            }
      | `Done (r, dt, retries, wait_s) ->
          let digests =
            (* faulted requests may legitimately return degraded or
               error bodies; only clean responses feed the
               determinism check *)
            match List.assoc_opt "digest" r.P.body with
            | Some (J.Str d) when fault_plan = "" ->
                (target, d) :: acc.digests
            | _ -> acc.digests
          in
          (* fold the server's own timing breakdown when it sent one
             (worker-run responses do; inline/crash answers do not) *)
          let acc =
            match List.assoc_opt "server_timing" r.P.body with
            | Some (J.Obj tf) ->
                let f name =
                  match List.assoc_opt name tf with
                  | Some (J.Num v) -> v
                  | _ -> 0.
                in
                {
                  acc with
                  timed = acc.timed + 1;
                  srv_queue_s = acc.srv_queue_s +. f "queue_wait_s";
                  srv_solve_s = acc.srv_solve_s +. f "solve_s";
                  srv_serialize_s = acc.srv_serialize_s +. f "serialize_s";
                }
            | _ -> acc
          in
          loop
            {
              acc with
              samples = dt :: acc.samples;
              statuses = bump acc.statuses (P.status_name r.P.status);
              digests;
              retries = acc.retries + retries;
              retry_wait_s = acc.retry_wait_s +. wait_s;
            }
    end
  in
  let empty =
    {
      samples = [];
      statuses = [];
      digests = [];
      transport_errors = 0;
      retries = 0;
      retry_wait_s = 0.;
      faulted = 0;
      timed = 0;
      srv_queue_s = 0.;
      srv_solve_s = 0.;
      srv_serialize_s = 0.;
    }
  in
  let r =
    try loop empty
    with Mpsoc_error.Error _ as e ->
      kill_fd ();
      raise e
  in
  kill_fd ();
  r

(** Per-target digest sets; a target with more than one distinct digest
    violates the determinism contract. *)
let digest_check (pairs : (string * string) list) :
    (string * string list) list * bool =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (t, d) ->
      let ds = Option.value (Hashtbl.find_opt tbl t) ~default:[] in
      if not (List.mem d ds) then Hashtbl.replace tbl t (d :: ds))
    pairs;
  let per_target =
    Hashtbl.fold (fun t ds acc -> (t, List.rev ds) :: acc) tbl []
    |> List.sort compare
  in
  (per_target, List.for_all (fun (_, ds) -> List.length ds <= 1) per_target)

type result = {
  completed : int;
  wall_s : float;
  throughput_rps : float;
  latency : Latency.summary;
  statuses : (string * int) list;
  rejected : int;
  transport_errors : int;
  retries : int;
  retry_wait_s : float;
  faulted : int;
  digests : (string * string list) list;
  digests_consistent : bool;
  report : J.t;
}

let run_result (cfg : config) : result =
  if cfg.targets = [] then
    Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input
      "loadgen needs at least one TARGET";
  if cfg.requests <= 0 then
    Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input
      "loadgen needs --requests > 0";
  (* fail fast on a bad target or fault spec before opening the flood *)
  List.iter
    (fun t ->
      match Benchsuite.Suite.resolve t with
      | Ok _ -> ()
      | Error e -> raise (Mpsoc_error.Error e))
    cfg.targets;
  List.iter
    (fun spec ->
      match Fault.of_spec spec with
      | Ok _ -> ()
      | Error m ->
          Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:spec
            ("bad fault spec: " ^ m))
    cfg.fault_specs;
  let t0 = Trace.now_s () in
  let next = Atomic.make 0 in
  let workers =
    List.init
      (max 1 cfg.concurrency)
      (fun widx -> Domain.spawn (worker cfg ~widx ~t0 ~next))
  in
  let results = List.map Domain.join workers in
  let wall_s = Trace.now_s () -. t0 in
  (* merge the per-worker tallies *)
  let lat = Latency.create () in
  List.iter
    (fun (r : wres) -> List.iter (Latency.record lat) r.samples)
    results;
  let statuses =
    List.fold_left
      (fun acc (r : wres) ->
        List.fold_left
          (fun acc (name, n) ->
            let m =
              match List.assoc_opt name acc with Some m -> m | None -> 0
            in
            (name, m + n) :: List.remove_assoc name acc)
          acc r.statuses)
      [] results
    |> List.sort compare
  in
  let sum f = List.fold_left (fun a (r : wres) -> a + f r) 0 results in
  let sumf f = List.fold_left (fun a (r : wres) -> a +. f r) 0. results in
  let transport_errors = sum (fun (r : wres) -> r.transport_errors) in
  let retries = sum (fun (r : wres) -> r.retries) in
  let faulted = sum (fun (r : wres) -> r.faulted) in
  let retry_wait_s = sumf (fun (r : wres) -> r.retry_wait_s) in
  let timed = sum (fun (r : wres) -> r.timed) in
  let srv_queue_s = sumf (fun (r : wres) -> r.srv_queue_s) in
  let srv_solve_s = sumf (fun (r : wres) -> r.srv_solve_s) in
  let srv_serialize_s = sumf (fun (r : wres) -> r.srv_serialize_s) in
  let count name =
    match List.assoc_opt name statuses with Some n -> n | None -> 0
  in
  let completed = Latency.count lat in
  let rejected = count "overloaded" + count "draining" in
  let per_target, digests_ok =
    digest_check (List.concat_map (fun (r : wres) -> r.digests) results)
  in
  let summary = Latency.summarize lat in
  let ok = transport_errors = 0 && digests_ok in
  let fnum n = J.Num (float_of_int n) in
  let report =
    J.Obj
      [
        ("schema", J.Str "mpsoc-par/loadgen/v3");
        ("socket", J.Str cfg.socket_path);
        ("op", J.Str (P.op_name cfg.op));
        ("platform", J.Str cfg.platform);
        ("approach", J.Str cfg.approach);
        ("targets", J.List (List.map (fun t -> J.Str t) cfg.targets));
        ("offered_qps", J.Num cfg.qps);
        ("concurrency", fnum cfg.concurrency);
        ("requests", fnum cfg.requests);
        ("wall_s", J.Num wall_s);
        ("completed", fnum completed);
        ( "throughput_rps",
          J.Num (if wall_s > 0. then float_of_int completed /. wall_s else 0.)
        );
        ( "statuses",
          J.Obj (List.map (fun (name, n) -> (name, fnum n)) statuses) );
        ("rejected", fnum rejected);
        ( "rejection_rate",
          J.Num
            (if cfg.requests > 0 then
               float_of_int rejected /. float_of_int cfg.requests
             else 0.) );
        ("transport_errors", fnum transport_errors);
        ("retry_max", fnum cfg.retry_max);
        ("retries", fnum retries);
        ("retry_wait_s", J.Num retry_wait_s);
        ("faulted_requests", fnum faulted);
        ( "fault_specs",
          J.List (List.map (fun s -> J.Str s) cfg.fault_specs) );
        ("latency", Latency.summary_json summary);
        ("latency_histogram_ms", Latency.histogram_json lat);
        (* server-side breakdown of the client-observed latency; the
           residual (client latency − queue − solve − serialize) is
           transport plus client-side scheduling *)
        ( "server_timing",
          let mean s = if timed > 0 then s /. float_of_int timed else 0. in
          J.Obj
            [
              ("responses_with_timing", fnum timed);
              ("queue_wait_s_total", J.Num srv_queue_s);
              ("solve_s_total", J.Num srv_solve_s);
              ("serialize_s_total", J.Num srv_serialize_s);
              ("queue_wait_s_mean", J.Num (mean srv_queue_s));
              ("solve_s_mean", J.Num (mean srv_solve_s));
              ("serialize_s_mean", J.Num (mean srv_serialize_s));
            ] );
        ( "digests",
          J.Obj
            (List.map
               (fun (t, ds) -> (t, J.List (List.map (fun d -> J.Str d) ds)))
               per_target) );
        ("digests_consistent", J.Bool digests_ok);
        ("ok", J.Bool ok);
      ]
  in
  {
    completed;
    wall_s;
    throughput_rps =
      (if wall_s > 0. then float_of_int completed /. wall_s else 0.);
    latency = summary;
    statuses;
    rejected;
    transport_errors;
    retries;
    retry_wait_s;
    faulted;
    digests = per_target;
    digests_consistent = digests_ok;
    report;
  }

let run (cfg : config) : int =
  let r = run_result cfg in
  Option.iter (fun path -> Observe.write_json ~path r.report) cfg.report_path;
  Fmt.epr
    "loadgen: %d/%d completed in %.2f s (%.2f rps) — p50 %.1f ms, p90 %.1f \
     ms, p99 %.1f ms; %d rejected, %d retried, %d faulted, %d transport \
     error(s)%s@."
    r.completed cfg.requests r.wall_s r.throughput_rps
    r.latency.Latency.p50_ms r.latency.Latency.p90_ms r.latency.Latency.p99_ms
    r.rejected r.retries r.faulted r.transport_errors
    (if r.digests_consistent then "" else "; DIGEST MISMATCH");
  if r.transport_errors = 0 && r.digests_consistent then 0 else 1
