(** Latency sample recorder: exact nearest-rank percentiles over all
    recorded samples (seconds in, milliseconds out).  Not thread-safe;
    callers serialize. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int

val percentile : float array -> float -> float
(** Nearest-rank percentile of an already-sorted array ([p] in
    [0..100]); [0.] when empty. *)

type summary = {
  count : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

val summarize : t -> summary
val summary_json : summary -> Trace_json.t

val histogram_json : t -> Trace_json.t
(** Fixed 1-2-5 bucket counts in milliseconds (["le_10ms"], ...,
    ["gt_5000ms"]) — the metrics document's request-latency histogram. *)
