(** The resident parallelization server ([mpsoc-par serve]).

    One process, three kinds of actors:

    - the {b event loop} (the calling domain): a [select]-driven
      reactor over the Unix-domain (and optional TCP) listeners, all
      client connections, and a self-pipe.  It owns every socket —
      accepting, incremental frame decoding, response writes — and
      answers [status]/[drain] inline so they never queue behind solves;
    - the {b executor} (one spawned domain): pulls parallelize/execute
      jobs from the {!Admission} queue and runs them on shared solver
      state — one {!Taskpool.Pool}, one persistent {!Cache.Store}, and
      one hot in-memory {!Ilp.Memo} per platform view — so a repeat
      request is answered from memory with zero fresh ILP solves;
    - the {b watchdog contract}: each job carries an absolute deadline.
      A job whose deadline passes while queued is answered [timeout]
      without running; an [execute] job passes its remaining budget to
      the runtime watchdog, whose typed verdicts map onto response
      codes exactly as they map onto CLI exit codes.

    Jobs from concurrent clients are multiplexed, not raced: the
    executor serializes solver work (the taskpool parallelizes {e
    inside} each job), which both preserves the solver's determinism
    story — responses are bit-identical to single-shot CLI runs — and
    keeps the admission queue the single point of back-pressure.

    Shutdown (SIGTERM, SIGINT, or a [drain] request) is a graceful
    drain: listeners close, queued and in-flight jobs finish, new
    requests are rejected with the typed [draining] status, the cache
    index is flushed, and the trace/metrics exports are written.  A
    drain that exceeds the grace period force-stops with exit code 4
    (the timeout code). *)

module P = Protocol
module J = Trace_json

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  queue_max : int;
  default_deadline_s : float;  (** applied when a request carries none; 0 = none *)
  drain_grace_s : float;  (** force-stop this long after drain starts *)
  cfg : Parcore.Config.t;  (** solver/runtime knobs shared by every job *)
}

let default_config =
  {
    socket_path = "mpsoc-par.sock";
    tcp_port = None;
    queue_max = 64;
    default_deadline_s = 0.;
    drain_grace_s = 30.;
    cfg = Parcore.Config.default;
  }

(* ---- jobs and shared state ----------------------------------------- *)

type job = {
  conn_id : int;
  req : P.request;
  submitted_s : float;
  deadline_abs : float;  (** absolute {!Trace.now_s} time; [infinity] = none *)
}

(** Cumulative server counters; every field is guarded by [smu] (the
    event loop reads them for [status] while the executor writes). *)
type stats = {
  smu : Mutex.t;
  started_s : float;
  lat : Latency.t;  (** end-to-end seconds per executor-completed request *)
  solver : Ilp.Stats.t;
  mutable completed : int;
  mutable failed : int;  (** completed with a non-0/2 code *)
  mutable timed_out : int;  (** deadline expired while queued *)
}

(** Solver state shared across every request of the process lifetime. *)
type engine = {
  pool : Taskpool.Pool.t option;
  store : Cache.Store.t option;
  memos : (string, Ilp.Memo.t) Hashtbl.t;
      (** hot in-memory memo per platform view (the memo's disk backing
          is salted per view, so memos must not be shared across views) *)
  emu : Mutex.t;
}

let memo_for engine (view : Platform.Desc.t) : Ilp.Memo.t =
  let key = Platform.Desc.show view in
  Mutex.lock engine.emu;
  let m =
    match Hashtbl.find_opt engine.memos key with
    | Some m -> m
    | None ->
        let backing =
          Option.map
            (fun s ->
              Cache.Store.backing s ~salt:(Cache.Store.salt ~context:key))
            engine.store
        in
        let m = Ilp.Memo.create ?backing () in
        Hashtbl.replace engine.memos key m;
        m
  in
  Mutex.unlock engine.emu;
  m

(* ---- request execution (runs on the executor domain) --------------- *)

let resolve_platform_result (s : string) : (Platform.Desc.t, Mpsoc_error.t) result
    =
  match Platform.Presets.find s with
  | Some p -> Ok p
  | None ->
      if Sys.file_exists s then Platform.Parse.of_file_result s
      else
        Error
          (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:s
             ~advice:"see `mpsoc-par list` for preset names"
             (Printf.sprintf
                "unknown platform %S (preset names: %s; or a description file)"
                s
                (String.concat ", " (List.map fst Platform.Presets.all))))

let approach_of_string = function
  | "hetero" | "heterogeneous" -> Ok Parcore.Parallelize.Heterogeneous
  | "homo" | "homogeneous" -> Ok Parcore.Parallelize.Homogeneous
  | s ->
      Error
        (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:s
           (Printf.sprintf "unknown approach %S (approaches: hetero, homo)" s))

let num i = J.Num (float_of_int i)

(** The response fields every successful solve reports: enough for a
    client to diff against a single-shot CLI run ([digest], [speedup])
    and to see the warm-path contract ([ilps] = 0, [memo_hits] > 0 on a
    repeat request). *)
let solve_body ~name ~(out : Parcore.Parallelize.outcome) () =
  let algo = out.Parcore.Parallelize.algo in
  let st = algo.Parcore.Algorithm.stats in
  [
    ("target", J.Str name);
    ("approach", J.Str (Parcore.Parallelize.approach_name out.Parcore.Parallelize.approach));
    ("platform", J.Str out.Parcore.Parallelize.platform.Platform.Desc.name);
    ("speedup", J.Num (Parcore.Parallelize.speedup out));
    ("digest", J.Str (Parcore.Algorithm.digest algo));
    ("ilps", num st.Ilp.Stats.ilps);
    ("memo_hits", num st.Ilp.Stats.cache_hits);
    ("solve_time_s", J.Num st.Ilp.Stats.solve_time_s);
    ("wall_s", J.Num algo.Parcore.Algorithm.wall_time_s);
    ( "degradation",
      match Parcore.Algorithm.degradation algo with
      | Some d -> J.Str d
      | None -> J.Null );
  ]

let ( let* ) = Result.bind

let compile_result ~name src : (Minic.Ast.program, Mpsoc_error.t) result =
  match Minic.Frontend.compile src with
  | prog -> Ok prog
  | exception Minic.Frontend.Error e ->
      Error
        (Mpsoc_error.make ~phase:Frontend ~kind:Invalid_input ~location:name
           (Minic.Frontend.error_to_string e))

(** One parallelize/execute job on the shared engine.  Every failure
    comes back as a typed protocol response, never an exception. *)
let run_job cfg engine stats (job : job) : P.response =
  let req = job.req in
  let id = req.id in
  let now = Trace.now_s () in
  if now > job.deadline_abs then
    P.response ~id P.Timeout
      ~message:
        (Printf.sprintf
           "deadline expired after %.3f s in the admission queue"
           (now -. job.submitted_s))
  else
    let solved =
      let* platform = resolve_platform_result req.P.platform in
      let* approach = approach_of_string req.P.approach in
      let* name, src = Benchsuite.Suite.resolve req.P.target in
      (* the memo must match the view Algorithm 1 will actually solve
         (homogeneous runs solve the class-blind view) *)
      let view =
        match approach with
        | Parcore.Parallelize.Heterogeneous -> platform
        | Parcore.Parallelize.Homogeneous ->
            Platform.Desc.homogeneous_view platform
      in
      let memo = memo_for engine view in
      let* prog = compile_result ~name src in
      let* out =
        Parcore.Parallelize.run_program_result ~cfg ?pool:engine.pool
          ?store:engine.store ~memo ~approach ~platform prog
      in
      Ok (name, prog, out)
    in
    match solved with
    | Error e -> P.of_error ~id e
    | Ok (name, prog, out) -> (
        let algo = out.Parcore.Parallelize.algo in
        Mutex.lock stats.smu;
        Ilp.Stats.merge ~into:stats.solver algo.Parcore.Algorithm.stats;
        Mutex.unlock stats.smu;
        let ok_status, message =
          match Parcore.Algorithm.degradation algo with
          | Some d ->
              ( P.Degraded,
                d ^ " — solver budget ran out; the solution is valid but \
                     possibly sub-optimal" )
          | None -> (P.Ok_, "")
        in
        match req.P.op with
        | P.Parallelize ->
            P.response ~id ok_status ~message
              ~body:(solve_body ~name ~out ())
        | P.Execute -> (
            (* remaining budget goes to the runtime watchdog; an armed
               deadline always bounds the execution phase *)
            let timeout_s =
              if job.deadline_abs = infinity then cfg.Parcore.Config.timeout_s
              else Float.max 0.001 (job.deadline_abs -. Trace.now_s ())
            in
            match
              Runtime.Exec.run_result ~max_steps:cfg.Parcore.Config.max_steps
                ~timeout_s prog out.Parcore.Parallelize.htg
                algo.Parcore.Algorithm.root
            with
            | Error e -> P.of_error ~id e
            | Ok r ->
                let ret =
                  match r.Runtime.Exec.ret with
                  | Some v -> J.Str (Fmt.str "%a" Interp.Value.pp v)
                  | None -> J.Null
                in
                P.response ~id ok_status ~message
                  ~body:
                    (solve_body ~name ~out ()
                    @ [
                        ("result", ret);
                        ("steps", num r.Runtime.Exec.steps);
                        ( "exec_wall_s",
                          J.Num r.Runtime.Exec.metrics.Runtime.Metrics.wall_s
                        );
                        ( "exec_domains",
                          num r.Runtime.Exec.metrics.Runtime.Metrics.domains );
                      ]))
        | P.Status | P.Drain -> assert false (* answered by the event loop *))

(* ---- the server ----------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : P.decoder;
  outq : string Queue.t;  (** encoded frames awaiting write *)
  mutable out_off : int;  (** bytes of the head frame already written *)
  mutable closing : bool;  (** close once [outq] drains *)
}

type t = {
  config : config;
  queue : job Admission.t;
  stats : stats;
  engine : engine;
  conns : (int, conn) Hashtbl.t;
  outbox : (int * P.response) Queue.t;  (** executor -> event loop *)
  omu : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable listeners : Unix.file_descr list;
  mutable draining : bool;
  mutable drain_started_s : float;
  exec_done : bool Atomic.t;
  want_drain : bool Atomic.t;  (** set from the signal handler *)
}

let wake t =
  (* best-effort: the pipe being full already guarantees a wakeup *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let server_json t : J.t =
  let q = Admission.counters t.queue in
  Mutex.lock t.stats.smu;
  let completed = t.stats.completed
  and failed = t.stats.failed
  and timed_out = t.stats.timed_out
  and lat_summary = Latency.summarize t.stats.lat
  and lat_hist = Latency.histogram_json t.stats.lat in
  Mutex.unlock t.stats.smu;
  J.Obj
    [
      ("uptime_s", J.Num (Trace.now_s () -. t.stats.started_s));
      ("state", J.Str (if t.draining then "draining" else "accepting"));
      ("queue_depth", num (Admission.depth t.queue));
      ("queue_max", num t.config.queue_max);
      ("connections", num (Hashtbl.length t.conns));
      ("accepted", num q.Admission.accepted);
      ("rejected_overloaded", num q.Admission.rej_overloaded);
      ("rejected_draining", num q.Admission.rej_draining);
      ("completed", num completed);
      ("failed", num failed);
      ("timed_out", num timed_out);
      ("latency", Latency.summary_json lat_summary);
      ("latency_histogram_ms", lat_hist);
    ]

let send_response (c : conn) (r : P.response) =
  Queue.push (P.frame (J.to_string (P.response_json r))) c.outq

let close_conn t (c : conn) =
  Hashtbl.remove t.conns c.cid;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(** Write as much queued output as the socket accepts right now. *)
let rec flush_conn t (c : conn) =
  match Queue.peek_opt c.outq with
  | None -> if c.closing then close_conn t c
  | Some s -> (
      let len = String.length s - c.out_off in
      match Unix.write_substring c.fd s c.out_off len with
      | n when n = len ->
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          flush_conn t c
      | n -> c.out_off <- c.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error _ -> close_conn t c)

let begin_drain t ~reason =
  if not t.draining then begin
    t.draining <- true;
    t.drain_started_s <- Trace.now_s ();
    Admission.drain t.queue;
    Trace.instant ~cat:"server" "drain" ~args:[ ("reason", Trace.Str reason) ];
    Fmt.epr "serve: draining (%s): %d queued job(s), %d connection(s)@."
      reason
      (Admission.depth t.queue)
      (Hashtbl.length t.conns);
    (* stop accepting: close the listeners and remove the socket file so
       new clients fail fast instead of queueing on a dying server *)
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
    t.listeners <- [];
    (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ())
  end

(** One decoded request frame from connection [c]. *)
let handle_request t (c : conn) payload =
  match P.parse_request payload with
  | Error m ->
      (* protocol error: answer once, then drop the connection — after
         a framing/JSON error the stream has no trustworthy boundary *)
      send_response c (P.response ~id:"" P.Invalid ~message:m);
      c.closing <- true
  | Ok req -> (
      match req.P.op with
      | P.Status ->
          send_response c
            (P.response ~id:req.P.id P.Ok_ ~body:[ ("server", server_json t) ])
      | P.Drain ->
          begin_drain t ~reason:"drain request";
          send_response c
            (P.response ~id:req.P.id P.Ok_
               ~body:[ ("state", J.Str "draining") ])
      | P.Parallelize | P.Execute -> (
          let now = Trace.now_s () in
          let deadline_s =
            if req.P.deadline_s > 0. then req.P.deadline_s
            else t.config.default_deadline_s
          in
          let job =
            {
              conn_id = c.cid;
              req;
              submitted_s = now;
              deadline_abs =
                (if deadline_s > 0. then now +. deadline_s else infinity);
            }
          in
          match Admission.submit t.queue ~client:c.cid job with
          | Admission.Accepted ->
              Trace.instant ~cat:"server" "accept"
                ~args:
                  [
                    ("target", Trace.Str req.P.target);
                    ("queue_depth", Trace.Int (Admission.depth t.queue));
                  ]
          | Admission.Overloaded ->
              Trace.instant ~cat:"server" "reject.overloaded";
              send_response c
                (P.response ~id:req.P.id P.Overloaded
                   ~message:
                     (Printf.sprintf
                        "admission queue full (%d jobs); retry later"
                        t.config.queue_max))
          | Admission.Draining ->
              Trace.instant ~cat:"server" "reject.draining";
              send_response c
                (P.response ~id:req.P.id P.Draining
                   ~message:"server is draining; no new jobs accepted")))

let handle_readable t (c : conn) =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t c
  | n ->
      P.feed c.dec (Bytes.sub_string buf 0 n);
      let rec drain_frames () =
        if not c.closing then
          match P.next c.dec with
          | `Frame payload ->
              handle_request t c payload;
              drain_frames ()
          | `Awaiting -> ()
          | `Error m ->
              send_response c (P.response ~id:"" P.Invalid ~message:m);
              c.closing <- true
      in
      drain_frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t c

(* ---- the executor domain ------------------------------------------- *)

let record_result t (job : job) (resp : P.response) =
  let dt = Trace.now_s () -. job.submitted_s in
  Mutex.lock t.stats.smu;
  t.stats.completed <- t.stats.completed + 1;
  (match P.status_code resp.P.status with
  | 0 | 2 -> ()
  | _ -> t.stats.failed <- t.stats.failed + 1);
  if resp.P.status = P.Timeout then t.stats.timed_out <- t.stats.timed_out + 1;
  Latency.record t.stats.lat dt;
  Mutex.unlock t.stats.smu

let executor t () =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()  (* drained and empty *)
    | Some job ->
        let resp =
          Trace.span_k ~cat:"server"
            (fun () ->
              Printf.sprintf "req.%s.%s"
                (P.op_name job.req.P.op)
                job.req.P.target)
            (fun () ->
              match run_job t.config.cfg t.engine t.stats job with
              | r -> r
              | exception e ->
                  (* a bug in the flow must not kill the server *)
                  P.response ~id:job.req.P.id P.Internal
                    ~message:("uncaught exception: " ^ Printexc.to_string e))
        in
        record_result t job resp;
        Mutex.lock t.omu;
        Queue.push (job.conn_id, resp) t.outbox;
        Mutex.unlock t.omu;
        wake t;
        loop ()
  in
  loop ();
  Atomic.set t.exec_done true;
  wake t

(* ---- listeners ------------------------------------------------------ *)

let listen_unix path =
  (* replace a stale socket file from a previous crash; refuse to
     clobber anything that is not a socket *)
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ ->
      Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:path
        "socket path exists and is not a socket"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

(* ---- main entry ------------------------------------------------------ *)

let run (config : config) : int =
  let cfg = config.cfg in
  let armed =
    cfg.Parcore.Config.trace_file <> None
    || cfg.Parcore.Config.metrics_file <> None
    || cfg.Parcore.Config.profile
  in
  if armed then Trace.start ();
  let jobs_n =
    if cfg.Parcore.Config.jobs = 0 then Domain.recommended_domain_count ()
    else max 1 cfg.Parcore.Config.jobs
  in
  let pool =
    if jobs_n > 1 then Some (Taskpool.Pool.create ~domains:jobs_n ()) else None
  in
  let store =
    match cfg.Parcore.Config.cache_dir with
    | None -> None
    | Some dir ->
        Some
          (Cache.Store.open_ ~max_mb:cfg.Parcore.Config.cache_max_mb ~dir ())
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      config;
      queue = Admission.create ~max:config.queue_max;
      stats =
        {
          smu = Mutex.create ();
          started_s = Trace.now_s ();
          lat = Latency.create ();
          solver = Ilp.Stats.create ();
          completed = 0;
          failed = 0;
          timed_out = 0;
        };
      engine =
        { pool; store; memos = Hashtbl.create 4; emu = Mutex.create () };
      conns = Hashtbl.create 16;
      outbox = Queue.create ();
      omu = Mutex.create ();
      wake_r;
      wake_w;
      listeners = [];
      draining = false;
      drain_started_s = 0.;
      exec_done = Atomic.make false;
      want_drain = Atomic.make false;
    }
  in
  t.listeners <-
    (listen_unix config.socket_path
    :: (match config.tcp_port with
       | Some port -> [ listen_tcp port ]
       | None -> []));
  (* SIGTERM/SIGINT request a drain; the handler only flips an atomic
     and pokes the pipe, everything else happens on the event loop *)
  let on_signal _ =
    Atomic.set t.want_drain true;
    wake t
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fmt.epr "serve: listening on %s%s (jobs %d, queue %d%s)@."
    config.socket_path
    (match config.tcp_port with
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
    | None -> "")
    jobs_n config.queue_max
    (match cfg.Parcore.Config.cache_dir with
    | Some d -> ", cache " ^ d
    | None -> "");
  let exec_domain = Domain.spawn (executor t) in
  let next_cid = ref 0 in
  let exit_code = ref 0 in
  (* ---- event loop ---- *)
  let finished () =
    t.draining
    && Atomic.get t.exec_done
    && Mutex.protect t.omu (fun () -> Queue.is_empty t.outbox)
    && Hashtbl.fold (fun _ c acc -> acc && Queue.is_empty c.outq) t.conns true
  in
  let deliver_outbox () =
    let pending =
      Mutex.protect t.omu (fun () ->
          let l = List.of_seq (Queue.to_seq t.outbox) in
          Queue.clear t.outbox;
          l)
    in
    List.iter
      (fun (cid, resp) ->
        match Hashtbl.find_opt t.conns cid with
        | Some c -> send_response c resp
        | None -> () (* client went away; drop the response *))
      pending
  in
  (try
     while not (finished ()) do
       if Atomic.get t.want_drain then begin_drain t ~reason:"signal";
       (* force-stop a drain that overstays the grace period *)
       if
         t.draining
         && Trace.now_s () -. t.drain_started_s > config.drain_grace_s
       then begin
         Fmt.epr "serve: drain exceeded %.1f s grace; force-stopping@."
           config.drain_grace_s;
         exit_code := 4;
         raise Exit
       end;
       let reads =
         (t.wake_r :: t.listeners)
         @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns []
       in
       let writes =
         Hashtbl.fold
           (fun _ c acc ->
             if Queue.is_empty c.outq then acc else c.fd :: acc)
           t.conns []
       in
       match Unix.select reads writes [] 0.5 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, writable, _ ->
           if List.mem t.wake_r readable then begin
             let b = Bytes.create 256 in
             try
               while Unix.read t.wake_r b 0 256 > 0 do
                 ()
               done
             with Unix.Unix_error _ -> ()
           end;
           deliver_outbox ();
           List.iter
             (fun lfd ->
               if List.mem lfd readable then
                 match Unix.accept lfd with
                 | fd, _ ->
                     Unix.set_nonblock fd;
                     incr next_cid;
                     let c =
                       {
                         fd;
                         cid = !next_cid;
                         dec = P.decoder ();
                         outq = Queue.create ();
                         out_off = 0;
                         closing = false;
                       }
                     in
                     Hashtbl.replace t.conns c.cid c;
                     Trace.instant ~cat:"server" "connect"
                       ~args:[ ("conn", Trace.Int c.cid) ]
                 | exception Unix.Unix_error _ -> ())
             t.listeners;
           (* snapshot: handlers mutate the table *)
           let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
           List.iter
             (fun c -> if List.mem c.fd readable then handle_readable t c)
             cs;
           let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
           List.iter
             (fun c ->
               if
                 List.mem c.fd writable
                 || (not (Queue.is_empty c.outq))
                 || c.closing
               then flush_conn t c)
             cs
     done
   with Exit -> ());
  (* ---- shutdown ---- *)
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  (* the executor exits once the queue drains; on a force-stop it may
     still be mid-solve, in which case joining would hang past the
     grace deadline — only join on clean drains *)
  if Atomic.get t.exec_done then Domain.join exec_domain;
  Option.iter Taskpool.Pool.shutdown t.engine.pool;
  Option.iter Cache.Store.close t.engine.store;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigpipe prev_pipe;
  let q = Admission.counters t.queue in
  Fmt.epr
    "serve: stopped after %.1f s — %d accepted, %d completed, %d rejected \
     (%d overloaded, %d draining)@."
    (Trace.now_s () -. t.stats.started_s)
    q.Admission.accepted t.stats.completed
    (q.Admission.rej_overloaded + q.Admission.rej_draining)
    q.Admission.rej_overloaded q.Admission.rej_draining;
  if armed then begin
    let wall_s = Trace.now_s () -. t.stats.started_s in
    match Trace.stop () with
    | None -> ()
    | Some c ->
        Option.iter
          (fun path -> Trace_chrome.write ~path c)
          cfg.Parcore.Config.trace_file;
        Option.iter
          (fun path ->
            Observe.write_json ~path
              (Observe.metrics_doc ~generated_by:"mpsoc-par serve"
                 ~phases:(Observe.phases_of_events c.Trace.events)
                 ?cache:(Option.map Cache.Store.counters t.engine.store)
                 ~sections:[ ("server", server_json t) ]
                 ~wall_s t.stats.solver))
          cfg.Parcore.Config.metrics_file;
        if cfg.Parcore.Config.profile then
          Fmt.epr "%t@." (fun ppf ->
              Observe.profile_table ppf ~wall_s ~events:c.Trace.events
                t.stats.solver)
  end;
  !exit_code
