(** The resident parallelization server ([mpsoc-par serve]).

    One process, three kinds of actors:

    - the {b event loop} (the calling domain): a [select]-driven
      reactor over the Unix-domain (and optional TCP) listeners, all
      client connections, and a self-pipe.  It owns every socket —
      accepting, incremental frame decoding, response writes — and
      answers [status]/[health]/[drain] inline so they never queue
      behind solves.  It doubles as the supervisor's monitor, running
      {!Supervisor.check} every select tick;
    - the {b executor pool} ([executors] supervised domains): each
      worker pulls parallelize/execute jobs from the {!Admission} queue
      and runs them on its {e own} {!Taskpool.Pool} (one pool admits one
      external caller at a time) over shared, thread-safe solver state —
      one persistent {!Cache.Store} and one hot single-flight
      {!Ilp.Memo} per platform view — so a repeat request is answered
      from memory with zero fresh ILP solves.  A worker that crashes or
      wedges is abandoned and restarted by the {!Supervisor} (bounded
      budget, exponential backoff); its in-flight request is answered
      with a typed [internal]/[timeout] — one bad request never kills
      the daemon or other in-flight requests;
    - the {b watchdog contract}: each job carries an absolute deadline.
      A job whose deadline passes while queued is answered [timeout]
      without running; an [execute] job passes its remaining budget to
      the runtime watchdog, whose typed verdicts map onto response
      codes exactly as they map onto CLI exit codes.

    Determinism: workers never share a taskpool and the memo is
    single-flight, so each job's solve is the same computation a
    single-shot CLI run performs — responses stay bit-identical to CLI
    output even with concurrent executors.  The admission queue remains
    the single point of back-pressure.

    Shutdown (SIGTERM, SIGINT, or a [drain] request) is a graceful
    drain: listeners close, queued and in-flight jobs finish, new
    requests are rejected with the typed [draining] status, the cache
    index is flushed, and the trace/metrics exports are written.  A
    drain that exceeds the grace period force-stops with exit code 4
    (the timeout code). *)

module P = Protocol
module J = Trace_json

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  queue_max : int;
  default_deadline_s : float;  (** applied when a request carries none; 0 = none *)
  drain_grace_s : float;  (** force-stop this long after drain starts *)
  executors : int;  (** supervised executor workers (≥ 1) *)
  restart_budget : int;  (** total executor restarts before the daemon drains *)
  wedge_grace_s : float;
      (** slack past a request deadline before its worker is declared
          wedged and abandoned *)
  flight_path : string option;
      (** flight-recorder dump file; [None] = [socket_path ^
          ".flight.jsonl"] *)
  memo_stall_s : float;
      (** reservation age before the monitor reports a single-flight
          memo stall (the zombie hazard) *)
  cfg : Parcore.Config.t;  (** solver/runtime knobs shared by every job *)
}

let default_config =
  {
    socket_path = "mpsoc-par.sock";
    tcp_port = None;
    queue_max = 64;
    default_deadline_s = 0.;
    drain_grace_s = 30.;
    executors = 2;
    restart_budget = 8;
    wedge_grace_s = 1.;
    flight_path = None;
    memo_stall_s = 5.;
    cfg = Parcore.Config.default;
  }

(* ---- jobs and shared state ----------------------------------------- *)

type job = {
  conn_id : int;
  rid : string;
      (** server-assigned request id (admission order + the client's
          correlation id when it sent one); the job's {!Trace.with_tag}
          tag on the executor, and the [request_id] body field *)
  req : P.request;
  submitted_s : float;
  deadline_abs : float;  (** absolute {!Trace.now_s} time; [infinity] = none *)
  fault_plan : Fault.plan option;
      (** armed domain-locally on the worker for this job only (chaos) *)
}

(** Cumulative server counters; every field is guarded by [smu] (the
    event loop reads them for [status] while the executor writes). *)
type stats = {
  smu : Mutex.t;
  started_s : float;
  lat : Latency.t;  (** end-to-end seconds per executor-completed request *)
  solver : Ilp.Stats.t;
  windows : (string, Obs_window.t) Hashtbl.t;
      (** sliding latency windows keyed ["all"], per op name, and per
          outcome class (["ok"] / ["error"]) — the [stats] op's payload *)
  statuses : (string, int) Hashtbl.t;  (** completions per status name *)
  w_jobs : int array;  (** per-executor-slot completed jobs *)
  w_busy_s : float array;  (** per-executor-slot seconds inside jobs *)
  mutable completed : int;
  mutable failed : int;  (** completed with a non-0/2 code *)
  mutable timed_out : int;  (** all [Timeout] responses (queue + solve) *)
  mutable timed_out_queue : int;  (** deadline expired while still queued *)
  mutable timed_out_solve : int;
      (** watchdog/wedge timeouts while the solve was running *)
}

(** Solver state shared across every request of the process lifetime.
    Everything here is safe to share across concurrent executor workers:
    the store takes its own lock and the memo is single-flight.  The
    taskpool is deliberately {e not} here — pools admit one external
    caller at a time, so each worker owns a private one. *)
type engine = {
  store : Cache.Store.t option;
  memos : (string, Ilp.Memo.t) Hashtbl.t;
      (** hot in-memory memo per platform view (the memo's disk backing
          is salted per view, so memos must not be shared across views) *)
  emu : Mutex.t;
}

let memo_for engine (view : Platform.Desc.t) : Ilp.Memo.t =
  let key = Platform.Desc.show view in
  Mutex.lock engine.emu;
  let m =
    match Hashtbl.find_opt engine.memos key with
    | Some m -> m
    | None ->
        let backing =
          Option.map
            (fun s ->
              Cache.Store.backing s ~salt:(Cache.Store.salt ~context:key))
            engine.store
        in
        let m = Ilp.Memo.create ?backing () in
        Hashtbl.replace engine.memos key m;
        m
  in
  Mutex.unlock engine.emu;
  m

(* ---- request execution (runs on the executor domain) --------------- *)

let resolve_platform_result (s : string) : (Platform.Desc.t, Mpsoc_error.t) result
    =
  match Platform.Presets.find s with
  | Some p -> Ok p
  | None ->
      if Sys.file_exists s then Platform.Parse.of_file_result s
      else
        Error
          (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:s
             ~advice:"see `mpsoc-par list` for preset names"
             (Printf.sprintf
                "unknown platform %S (preset names: %s; or a description file)"
                s
                (String.concat ", " (List.map fst Platform.Presets.all))))

let approach_of_string = function
  | "hetero" | "heterogeneous" -> Ok Parcore.Parallelize.Heterogeneous
  | "homo" | "homogeneous" -> Ok Parcore.Parallelize.Homogeneous
  | s ->
      Error
        (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:s
           (Printf.sprintf "unknown approach %S (approaches: hetero, homo)" s))

let num i = J.Num (float_of_int i)

(** The response fields every successful solve reports: enough for a
    client to diff against a single-shot CLI run ([digest], [speedup])
    and to see the warm-path contract ([ilps] = 0, [memo_hits] > 0 on a
    repeat request). *)
let solve_body ~name ~(out : Parcore.Parallelize.outcome) () =
  let algo = out.Parcore.Parallelize.algo in
  let st = algo.Parcore.Algorithm.stats in
  [
    ("target", J.Str name);
    ("approach", J.Str (Parcore.Parallelize.approach_name out.Parcore.Parallelize.approach));
    ("platform", J.Str out.Parcore.Parallelize.platform.Platform.Desc.name);
    ("speedup", J.Num (Parcore.Parallelize.speedup out));
    ("digest", J.Str (Parcore.Algorithm.digest algo));
    ("ilps", num st.Ilp.Stats.ilps);
    ("memo_hits", num st.Ilp.Stats.cache_hits);
    ("solve_time_s", J.Num st.Ilp.Stats.solve_time_s);
    ("wall_s", J.Num algo.Parcore.Algorithm.wall_time_s);
    ( "degradation",
      match Parcore.Algorithm.degradation algo with
      | Some d -> J.Str d
      | None -> J.Null );
  ]

let ( let* ) = Result.bind

let compile_result ~name src : (Minic.Ast.program, Mpsoc_error.t) result =
  match Minic.Frontend.compile src with
  | prog -> Ok prog
  | exception Minic.Frontend.Error e ->
      Error
        (Mpsoc_error.make ~phase:Frontend ~kind:Invalid_input ~location:name
           (Minic.Frontend.error_to_string e))

(** One parallelize/execute job on the shared engine, parallelizing
    inside the job on [pool] (the calling worker's private pool).  Every
    failure comes back as a typed protocol response, never an
    exception. *)
let run_job cfg engine stats ?pool (job : job) : P.response =
  let req = job.req in
  let id = req.id in
  let now = Trace.now_s () in
  if now > job.deadline_abs then
    (* [timeout_cause] lets the metrics split queue expiry from watchdog
       timeouts during a solve — two different capacity problems *)
    P.response ~id P.Timeout
      ~message:
        (Printf.sprintf
           "deadline expired after %.3f s in the admission queue"
           (now -. job.submitted_s))
      ~body:[ ("timeout_cause", J.Str "queue") ]
  else
    let solved =
      let* platform = resolve_platform_result req.P.platform in
      let* approach = approach_of_string req.P.approach in
      let* name, src = Benchsuite.Suite.resolve req.P.target in
      (* the memo must match the view Algorithm 1 will actually solve
         (homogeneous runs solve the class-blind view) *)
      let view =
        match approach with
        | Parcore.Parallelize.Heterogeneous -> platform
        | Parcore.Parallelize.Homogeneous ->
            Platform.Desc.homogeneous_view platform
      in
      (* a caller-supplied memo is used unconditionally by the flow, so
         honour [solve_cache = false] here: without it every request
         re-solves from scratch (the saturation bench relies on this) *)
      let memo =
        if cfg.Parcore.Config.solve_cache then Some (memo_for engine view)
        else None
      in
      let* prog = compile_result ~name src in
      let* out =
        Parcore.Parallelize.run_program_result ~cfg ?pool ?store:engine.store
          ?memo ~approach ~platform prog
      in
      Ok (name, prog, out)
    in
    match solved with
    | Error e -> P.of_error ~id e
    | Ok (name, prog, out) -> (
        let algo = out.Parcore.Parallelize.algo in
        Mutex.lock stats.smu;
        Ilp.Stats.merge ~into:stats.solver algo.Parcore.Algorithm.stats;
        Mutex.unlock stats.smu;
        let ok_status, message =
          match Parcore.Algorithm.degradation algo with
          | Some d ->
              ( P.Degraded,
                d ^ " — solver budget ran out; the solution is valid but \
                     possibly sub-optimal" )
          | None -> (P.Ok_, "")
        in
        match req.P.op with
        | P.Parallelize ->
            P.response ~id ok_status ~message
              ~body:(solve_body ~name ~out ())
        | P.Execute -> (
            (* remaining budget goes to the runtime watchdog; an armed
               deadline always bounds the execution phase *)
            let timeout_s =
              if job.deadline_abs = infinity then cfg.Parcore.Config.timeout_s
              else Float.max 0.001 (job.deadline_abs -. Trace.now_s ())
            in
            match
              Runtime.Exec.run_result ~max_steps:cfg.Parcore.Config.max_steps
                ~timeout_s prog out.Parcore.Parallelize.htg
                algo.Parcore.Algorithm.root
            with
            | Error e -> P.of_error ~id e
            | Ok r ->
                let ret =
                  match r.Runtime.Exec.ret with
                  | Some v -> J.Str (Fmt.str "%a" Interp.Value.pp v)
                  | None -> J.Null
                in
                P.response ~id ok_status ~message
                  ~body:
                    (solve_body ~name ~out ()
                    @ [
                        ("result", ret);
                        ("steps", num r.Runtime.Exec.steps);
                        ( "exec_wall_s",
                          J.Num r.Runtime.Exec.metrics.Runtime.Metrics.wall_s
                        );
                        ( "exec_domains",
                          num r.Runtime.Exec.metrics.Runtime.Metrics.domains );
                      ]))
        | P.Status | P.Health | P.Drain | P.Stats | P.Dump ->
            assert false (* answered by the event loop *))

(* ---- the server ----------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : P.decoder;
  outq : string Queue.t;  (** encoded frames awaiting write *)
  mutable out_off : int;  (** bytes of the head frame already written *)
  mutable closing : bool;  (** close once [outq] drains *)
}

(** Per-incarnation executor context, built on the worker domain. *)
type exec_ctx = {
  worker_pool : Taskpool.Pool.t option;
  worker_idx : int;  (** supervisor slot, for per-worker utilization *)
}

type t = {
  config : config;
  queue : job Admission.t;
  stats : stats;
  engine : engine;
  conns : (int, conn) Hashtbl.t;
  flight : Obs_flight.t;  (** always-on lifecycle ring (even disarmed) *)
  outbox : (int * P.response) Queue.t;  (** executors -> event loop *)
  omu : Mutex.t;
  mutable rid_seq : int;  (** admission counter for request ids (event loop) *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable listeners : Unix.file_descr list;
  mutable draining : bool;
  mutable drain_started_s : float;
  mutable sup : (exec_ctx, job, P.response) Supervisor.t option;
      (** [Some] for the whole event-loop lifetime (set right after
          construction; the hooks close over [t]) *)
  want_drain : bool Atomic.t;  (** set from the signal handler *)
  mutable exit_code : int;
}

let wake t =
  (* best-effort: the pipe being full already guarantees a wakeup *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let flight_file t =
  match t.config.flight_path with
  | Some p -> p
  | None -> t.config.socket_path ^ ".flight.jsonl"

(** Dump the flight ring (rare: crash/wedge/restart/exhaustion or an
    explicit [dump] op).  Each dump rewrites the whole file, so after a
    crash-then-restart sequence the file holds both events. *)
let dump_flight t ~reason =
  let path = flight_file t in
  match Obs_flight.dump t.flight ~path with
  | Ok n ->
      Fmt.epr "serve: flight recorder dumped %d event(s) to %s (%s)@." n path
        reason;
      Ok n
  | Error m ->
      Fmt.epr "serve: flight recorder dump to %s failed: %s@." path m;
      Error m

(** Aggregate hit/miss/stall/cancel totals over the per-platform-view
    memos. *)
let memo_totals t =
  Mutex.lock t.engine.emu;
  let totals =
    Hashtbl.fold
      (fun _ m (h, d, mi, st, ca) ->
        ( h + Ilp.Memo.hits m,
          d + Ilp.Memo.disk_hits m,
          mi + Ilp.Memo.misses m,
          st + Ilp.Memo.stall_count m,
          ca + Ilp.Memo.cancelled_count m ))
      t.engine.memos (0, 0, 0, 0, 0)
  in
  Mutex.unlock t.engine.emu;
  totals

let server_json t : J.t =
  let q = Admission.counters t.queue in
  Mutex.lock t.stats.smu;
  let completed = t.stats.completed
  and failed = t.stats.failed
  and timed_out = t.stats.timed_out
  and timed_out_queue = t.stats.timed_out_queue
  and timed_out_solve = t.stats.timed_out_solve
  and lat_summary = Latency.summarize t.stats.lat
  and lat_hist = Latency.histogram_json t.stats.lat in
  Mutex.unlock t.stats.smu;
  let _, _, _, memo_stalls, memo_cancelled = memo_totals t in
  J.Obj
    ([
       ("uptime_s", J.Num (Trace.now_s () -. t.stats.started_s));
       ("state", J.Str (if t.draining then "draining" else "accepting"));
       ("queue_depth", num (Admission.depth t.queue));
       ("queue_max", num t.config.queue_max);
       ("connections", num (Hashtbl.length t.conns));
       ("accepted", num q.Admission.accepted);
       ("rejected_overloaded", num q.Admission.rej_overloaded);
       ("rejected_draining", num q.Admission.rej_draining);
       ("completed", num completed);
       ("failed", num failed);
       ("timed_out", num timed_out);
       ("timed_out_queue", num timed_out_queue);
       ("timed_out_solve", num timed_out_solve);
       ("memo_stalls", num memo_stalls);
       ("memo_cancelled", num memo_cancelled);
       ("latency", Latency.summary_json lat_summary);
       ("latency_histogram_ms", lat_hist);
     ]
    @
    match t.sup with
    | None -> []
    | Some sup ->
        [
          ("executors", Supervisor.status_json sup);
          ("active_workers", num (Supervisor.active sup));
          ("executor_restarts", num (Supervisor.restarts sup));
          ("executor_crashes", num (Supervisor.crashes sup));
          ("executor_wedges", num (Supervisor.wedges sup));
        ])

(* ---- the stats op (schema mpsoc-par/stats/v1) ----------------------- *)

let stats_schema = "mpsoc-par/stats/v1"

(** Per-worker supervisor rows joined with the utilization tallies. *)
let workers_json t sup uptime_s : J.t =
  Mutex.lock t.stats.smu;
  let jobs = Array.copy t.stats.w_jobs
  and busy = Array.copy t.stats.w_busy_s in
  Mutex.unlock t.stats.smu;
  match Supervisor.status_json sup with
  | J.List rows ->
      J.List
        (List.map
           (function
             | J.Obj fields as row -> (
                 match List.assoc_opt "worker" fields with
                 | Some (J.Num n)
                   when int_of_float n >= 0
                        && int_of_float n < Array.length jobs ->
                     let i = int_of_float n in
                     let u =
                       if uptime_s > 0. then busy.(i) /. uptime_s else 0.
                     in
                     J.Obj
                       (fields
                       @ [
                           ("jobs", num jobs.(i));
                           ("busy_s", J.Num busy.(i));
                           ("utilization", J.Num u);
                         ])
                 | _ -> row)
             | row -> row)
           rows)
  | other -> other

(** The live-telemetry snapshot, answered inline by the event loop so it
    is available even while every executor is mid-solve. *)
let stats_body t : (string * J.t) list =
  let now = Trace.now_s () in
  let uptime_s = now -. t.stats.started_s in
  let q = Admission.counters t.queue in
  Mutex.lock t.stats.smu;
  let completed = t.stats.completed
  and failed = t.stats.failed
  and timed_out = t.stats.timed_out
  and timed_out_queue = t.stats.timed_out_queue
  and timed_out_solve = t.stats.timed_out_solve
  and statuses =
    Hashtbl.fold (fun k v acc -> (k, num v) :: acc) t.stats.statuses []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  and window_keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.stats.windows []
    |> List.sort compare
  in
  Mutex.unlock t.stats.smu;
  let window key =
    Mutex.lock t.stats.smu;
    let w = Hashtbl.find_opt t.stats.windows key in
    Mutex.unlock t.stats.smu;
    match w with
    | Some w -> Obs_window.windows_json w ~now
    | None -> J.Null
  in
  let mh, md, mm, mst, mca = memo_totals t in
  let hit_rate =
    let tot = float_of_int (mh + md + mm) in
    if tot = 0. then 0. else float_of_int (mh + md) /. tot
  in
  [
    ("stats_schema", J.Str stats_schema);
    ("uptime_s", J.Num uptime_s);
    ("state", J.Str (if t.draining then "draining" else "accepting"));
    ( "queue",
      J.Obj
        [
          ("depth", num (Admission.depth t.queue));
          ("max", num t.config.queue_max);
        ] );
    ( "counters",
      J.Obj
        [
          ("accepted", num q.Admission.accepted);
          ("rejected_overloaded", num q.Admission.rej_overloaded);
          ("rejected_draining", num q.Admission.rej_draining);
          ("completed", num completed);
          ("failed", num failed);
          ("timed_out", num timed_out);
          ("timed_out_queue", num timed_out_queue);
          ("timed_out_solve", num timed_out_solve);
        ] );
    ("statuses", J.Obj statuses);
    ( "latency",
      J.Obj
        (("all", window "all")
        :: List.filter_map
             (fun k -> if k = "all" then None else Some (k, window k))
             window_keys) );
    ( "memo",
      J.Obj
        [
          ("hits", num mh);
          ("disk_hits", num md);
          ("misses", num mm);
          ("hit_rate", J.Num hit_rate);
          ("stalls", num mst);
          ("cancelled", num mca);
        ] );
  ]
  @ (match t.engine.store with
    | Some s -> [ ("cache", Observe.cache_json (Cache.Store.counters s)) ]
    | None -> [])
  @ (match t.sup with
    | None -> []
    | Some sup ->
        [
          ("workers", workers_json t sup uptime_s);
          ("executor_restarts", num (Supervisor.restarts sup));
          ("executor_crashes", num (Supervisor.crashes sup));
          ("executor_wedges", num (Supervisor.wedges sup));
        ])
  @ [
      ( "flight",
        J.Obj
          [
            ("size", num (Obs_flight.size t.flight));
            ("recorded", num (Obs_flight.recorded t.flight));
            ("capacity", num (Obs_flight.capacity t.flight));
            ("path", J.Str (flight_file t));
          ] );
      ("trace", J.Obj [ ("armed", J.Bool (Trace.enabled ())) ]);
    ]

let send_response (c : conn) (r : P.response) =
  Queue.push (P.frame (J.to_string (P.response_json r))) c.outq

let close_conn t (c : conn) =
  Hashtbl.remove t.conns c.cid;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(** Write as much queued output as the socket accepts right now. *)
let rec flush_conn t (c : conn) =
  match Queue.peek_opt c.outq with
  | None -> if c.closing then close_conn t c
  | Some s -> (
      let len = String.length s - c.out_off in
      match Unix.write_substring c.fd s c.out_off len with
      | n when n = len ->
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          flush_conn t c
      | n -> c.out_off <- c.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error _ -> close_conn t c)

let begin_drain t ~reason =
  if not t.draining then begin
    t.draining <- true;
    t.drain_started_s <- Trace.now_s ();
    Admission.drain t.queue;
    Trace.instant ~cat:"server" "drain" ~args:[ ("reason", Trace.Str reason) ];
    Obs_flight.record t.flight "drain" ~fields:[ ("reason", J.Str reason) ];
    Fmt.epr "serve: draining (%s): %d queued job(s), %d connection(s)@."
      reason
      (Admission.depth t.queue)
      (Hashtbl.length t.conns);
    (* stop accepting: close the listeners and remove the socket file so
       new clients fail fast instead of queueing on a dying server *)
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
    t.listeners <- [];
    (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ())
  end

(** One decoded request frame from connection [c]. *)
let handle_request t (c : conn) payload =
  match P.parse_request payload with
  | Error m ->
      (* protocol error: answer once, then drop the connection — after
         a framing/JSON error the stream has no trustworthy boundary *)
      send_response c (P.response ~id:"" P.Invalid ~message:m);
      c.closing <- true
  | Ok req -> (
      match req.P.op with
      | P.Status ->
          send_response c
            (P.response ~id:req.P.id P.Ok_ ~body:[ ("server", server_json t) ])
      | P.Health ->
          (* liveness is implied by the answer; readiness means new work
             would actually run: admission open and ≥ 1 healthy worker *)
          let active =
            match t.sup with Some s -> Supervisor.active s | None -> 0
          in
          send_response c
            (P.response ~id:req.P.id P.Ok_
               ~body:
                 ([
                    ("live", J.Bool true);
                    ("ready", J.Bool ((not t.draining) && active > 0));
                    ( "state",
                      J.Str (if t.draining then "draining" else "accepting")
                    );
                    ("queue_depth", num (Admission.depth t.queue));
                    ("active_workers", num active);
                  ]
                 @
                 match t.sup with
                 | None -> []
                 | Some s ->
                     [
                       ("executors", Supervisor.status_json s);
                       ("restarts", num (Supervisor.restarts s));
                       ("crashes", num (Supervisor.crashes s));
                       ("wedges", num (Supervisor.wedges s));
                       ("exhausted", J.Bool (Supervisor.exhausted s));
                     ]))
      | P.Drain ->
          begin_drain t ~reason:"drain request";
          send_response c
            (P.response ~id:req.P.id P.Ok_
               ~body:[ ("state", J.Str "draining") ])
      | P.Stats ->
          send_response c (P.response ~id:req.P.id P.Ok_ ~body:(stats_body t))
      | P.Dump -> (
          match dump_flight t ~reason:"dump request" with
          | Ok n ->
              send_response c
                (P.response ~id:req.P.id P.Ok_
                   ~body:
                     [
                       ("path", J.Str (flight_file t)); ("events", num n);
                     ])
          | Error m ->
              send_response c (P.response ~id:req.P.id P.Internal ~message:m))
      | P.Parallelize | P.Execute -> (
          match
            if req.P.fault_plan = "" then Ok None
            else Result.map Option.some (Fault.of_spec req.P.fault_plan)
          with
          | Error m ->
              send_response c
                (P.response ~id:req.P.id P.Invalid
                   ~message:("bad fault_plan: " ^ m))
          | Ok fault_plan -> (
          let now = Trace.now_s () in
          let deadline_s =
            if req.P.deadline_s > 0. then req.P.deadline_s
            else t.config.default_deadline_s
          in
          (* server-assigned request id: admission order, qualified by
             the client's correlation id when it sent one.  Assigned on
             the event loop, so it is a total order over admissions. *)
          t.rid_seq <- t.rid_seq + 1;
          let rid =
            if req.P.id = "" then Printf.sprintf "r%d" t.rid_seq
            else Printf.sprintf "%s#r%d" req.P.id t.rid_seq
          in
          let job =
            {
              conn_id = c.cid;
              rid;
              req;
              submitted_s = now;
              deadline_abs =
                (if deadline_s > 0. then now +. deadline_s else infinity);
              fault_plan;
            }
          in
          match Admission.submit t.queue ~client:c.cid job with
          | Admission.Accepted ->
              Trace.instant ~cat:"server" "accept"
                ~args:
                  [
                    ("req", Trace.Str rid);
                    ("target", Trace.Str req.P.target);
                    ("queue_depth", Trace.Int (Admission.depth t.queue));
                  ];
              Obs_flight.record t.flight "admit"
                ~fields:
                  [
                    ("rid", J.Str rid);
                    ("op", J.Str (P.op_name req.P.op));
                    ("target", J.Str req.P.target);
                    ("conn", num c.cid);
                    ("queue_depth", num (Admission.depth t.queue));
                  ]
          | Admission.Overloaded ->
              Trace.instant ~cat:"server" "reject.overloaded";
              Obs_flight.record t.flight "reject.overloaded"
                ~fields:[ ("rid", J.Str rid); ("conn", num c.cid) ];
              send_response c
                (P.response ~id:req.P.id P.Overloaded
                   ~message:
                     (Printf.sprintf
                        "admission queue full (%d jobs); retry later"
                        t.config.queue_max))
          | Admission.Draining ->
              Trace.instant ~cat:"server" "reject.draining";
              Obs_flight.record t.flight "reject.draining"
                ~fields:[ ("rid", J.Str rid); ("conn", num c.cid) ];
              send_response c
                (P.response ~id:req.P.id P.Draining
                   ~message:"server is draining; no new jobs accepted"))))

let handle_readable t (c : conn) =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t c
  | n ->
      P.feed c.dec (Bytes.sub_string buf 0 n);
      let rec drain_frames () =
        if not c.closing then
          match P.next c.dec with
          | `Frame payload ->
              handle_request t c payload;
              drain_frames ()
          | `Awaiting -> ()
          | `Error m ->
              send_response c (P.response ~id:"" P.Invalid ~message:m);
              c.closing <- true
      in
      drain_frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t c

(* ---- the supervised executor pool ----------------------------------- *)

(** Which phase a [Timeout] response timed out in: ["queue"] (deadline
    expired before any worker picked the job up) or ["solve"] (watchdog
    or wedge while running) — two different capacity problems. *)
let timeout_cause (resp : P.response) =
  match List.assoc_opt "timeout_cause" resp.P.body with
  | Some (J.Str s) -> s
  | _ -> "solve"

(* call with [smu] held *)
let win t key =
  match Hashtbl.find_opt t.stats.windows key with
  | Some w -> w
  | None ->
      let w = Obs_window.create () in
      Hashtbl.replace t.stats.windows key w;
      w

let record_result t (job : job) (resp : P.response) =
  let now = Trace.now_s () in
  let dt = now -. job.submitted_s in
  let code = P.status_code resp.P.status in
  let sname = P.status_name resp.P.status in
  Mutex.lock t.stats.smu;
  t.stats.completed <- t.stats.completed + 1;
  (match code with 0 | 2 -> () | _ -> t.stats.failed <- t.stats.failed + 1);
  if resp.P.status = P.Timeout then begin
    t.stats.timed_out <- t.stats.timed_out + 1;
    match timeout_cause resp with
    | "queue" -> t.stats.timed_out_queue <- t.stats.timed_out_queue + 1
    | _ -> t.stats.timed_out_solve <- t.stats.timed_out_solve + 1
  end;
  Latency.record t.stats.lat dt;
  let outcome = if code = 0 || code = 2 then "ok" else "error" in
  List.iter
    (fun key -> Obs_window.record (win t key) ~now dt)
    [ "all"; P.op_name job.req.P.op; outcome ];
  Hashtbl.replace t.stats.statuses sname
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.stats.statuses sname));
  Mutex.unlock t.stats.smu;
  Obs_flight.record t.flight "complete"
    ~fields:
      [
        ("rid", J.Str job.rid); ("status", J.Str sname); ("dt_s", J.Num dt);
      ]

let describe_job (job : job) =
  Printf.sprintf "req.%s.%s" (P.op_name job.req.P.op) job.req.P.target

(** Run one job on an executor worker.  The [serve.exec] probe sits
    {e inside} the job's domain-local fault plan but {e outside} the
    per-job exception guard: an injected [Raise] there escapes and kills
    the worker (exercising supervisor crash-restart) while any flow bug
    is still converted to a typed [internal] response. *)
let exec_job t (ctx : exec_ctx) (job : job) : P.response =
  let t_start = Trace.now_s () in
  Obs_flight.record t.flight "start"
    ~fields:[ ("rid", J.Str job.rid); ("worker", num ctx.worker_idx) ];
  let guarded () =
    Trace.span_k ~cat:"server"
      (fun () -> describe_job job)
      (fun () ->
        match run_job t.config.cfg t.engine t.stats ?pool:ctx.worker_pool job with
        | r -> r
        | exception e ->
            (* a bug in the flow must not kill the worker *)
            P.response ~id:job.req.P.id P.Internal
              ~message:("uncaught exception: " ^ Printexc.to_string e))
  in
  (* the request id tags every span/instant the solve emits on this
     domain (and, via the taskpool, on pool workers it fans out to); an
     injected crash escapes through [with_tag], which restores the tag *)
  let resp =
    Trace.with_tag job.rid (fun () ->
        match job.fault_plan with
        | None ->
            Fault.point "serve.exec";
            guarded ()
        | Some plan ->
            Fault.with_plan_local plan (fun () ->
                Fault.point "serve.exec";
                guarded ()))
  in
  let t_done = Trace.now_s () in
  Mutex.lock t.stats.smu;
  if ctx.worker_idx >= 0 && ctx.worker_idx < Array.length t.stats.w_jobs
  then begin
    t.stats.w_jobs.(ctx.worker_idx) <- t.stats.w_jobs.(ctx.worker_idx) + 1;
    t.stats.w_busy_s.(ctx.worker_idx) <-
      t.stats.w_busy_s.(ctx.worker_idx) +. (t_done -. t_start)
  end;
  Mutex.unlock t.stats.smu;
  (* measured on the response body before the timing fields are appended
     — a lower bound, but the event loop's actual write is the same
     serialization plus framing *)
  let serialize_s =
    let s0 = Trace.now_s () in
    ignore (J.to_string (P.response_json resp));
    Trace.now_s () -. s0
  in
  {
    resp with
    P.body =
      resp.P.body
      @ [
          ("request_id", J.Str job.rid);
          ( "server_timing",
            J.Obj
              [
                ("queue_wait_s", J.Num (t_start -. job.submitted_s));
                ("solve_s", J.Num (t_done -. t_start));
                ("serialize_s", J.Num serialize_s);
              ] );
        ];
  }

(** Per-worker taskpool size: the configured [jobs] knob applies to each
    worker's private pool (workers never share one). *)
let worker_jobs cfg =
  if cfg.Parcore.Config.jobs = 0 then Domain.recommended_domain_count ()
  else max 1 cfg.Parcore.Config.jobs

let supervisor_hooks t : (exec_ctx, job, P.response) Supervisor.hooks =
  {
    Supervisor.take = (fun () -> Admission.take t.queue);
    worker_init =
      (fun idx ->
        let jobs_n = worker_jobs t.config.cfg in
        {
          worker_pool =
            (if jobs_n > 1 then Some (Taskpool.Pool.create ~domains:jobs_n ())
             else None);
          worker_idx = idx;
        });
    worker_exit = (fun ctx -> Option.iter Taskpool.Pool.shutdown ctx.worker_pool);
    run = (fun ctx job -> exec_job t ctx job);
    deadline = (fun job -> job.deadline_abs);
    answer =
      (fun job resp ->
        record_result t job resp;
        Mutex.lock t.omu;
        Queue.push (job.conn_id, resp) t.outbox;
        Mutex.unlock t.omu;
        wake t);
    crashed =
      (fun job e ->
        P.response ~id:job.req.P.id P.Internal
          ~message:
            ("executor worker crashed on this request: "
            ^ Printexc.to_string e)
          ~body:[ ("request_id", J.Str job.rid) ]);
    wedged =
      (fun job ->
        (* The abandoned worker may die holding single-flight memo
           reservations (its domain is tagged with this request's id);
           peers blocked on those keys would wait forever.  Cancelling
           the request's reservations wakes them to re-solve.  If the
           zombie later wakes and fills anyway, it publishes the same
           deterministic solution — harmless. *)
        Mutex.lock t.engine.emu;
        let cancelled =
          Hashtbl.fold
            (fun _ m acc -> acc + Ilp.Memo.cancel_owned m ~req:job.rid)
            t.engine.memos 0
        in
        Mutex.unlock t.engine.emu;
        if cancelled > 0 then begin
          Obs_flight.record t.flight "memo.cancel"
            ~fields:
              [
                ("request_id", J.Str job.rid);
                ("reservations", num cancelled);
              ];
          Fmt.epr
            "serve: released %d memo reservation(s) held by abandoned \
             request %s@."
            cancelled job.rid
        end;
        P.response ~id:job.req.P.id P.Timeout
          ~message:
            "executor worker wedged past the request deadline and was \
             abandoned"
          ~body:
            [
              ("timeout_cause", J.Str "solve");
              ("request_id", J.Str job.rid);
              ("memo_cancelled", num cancelled);
            ]);
    on_exhausted =
      (fun () ->
        t.exit_code <- 1;
        begin_drain t ~reason:"executor restart budget exhausted");
    describe = describe_job;
    wake = (fun () -> wake t);
    note =
      (fun ~event ~worker ->
        Obs_flight.record t.flight event ~fields:[ ("worker", num worker) ];
        (* a crash/wedge/restart is exactly when the ring's history is
           worth keeping; each dump rewrites the file, so the final one
           (after the restart) holds the whole sequence *)
        match event with
        | "executor.crash" | "executor.wedge" | "executor.restart"
        | "executor.exhausted" ->
            ignore (dump_flight t ~reason:event)
        | _ -> ());
  }

(* ---- listeners ------------------------------------------------------ *)

(** [true] iff something is still accepting connections on [path].  A
    stale socket file from a crashed daemon refuses the connect
    ([ECONNREFUSED]); a live daemon accepts it.  Anything else (e.g. a
    permission error) counts as live — when in doubt, do not clobber. *)
let socket_live path =
  let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception Unix.Unix_error _ -> true)

let listen_unix path =
  (* replace a stale socket file from a previous crash, but never
     clobber a live daemon's socket or anything that is not a socket *)
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      if socket_live path then
        Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:path
          ~advice:
            "stop the running daemon first, or serve on a different --socket"
          "another daemon is already listening on this socket"
      else Unix.unlink path
  | _ ->
      Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:path
        "socket path exists and is not a socket"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

(* ---- main entry ------------------------------------------------------ *)

let run (config : config) : int =
  let cfg = config.cfg in
  let armed =
    cfg.Parcore.Config.trace_file <> None
    || cfg.Parcore.Config.metrics_file <> None
    || cfg.Parcore.Config.profile
  in
  if armed then Trace.start ();
  let store =
    match cfg.Parcore.Config.cache_dir with
    | None -> None
    | Some dir ->
        Some
          (Cache.Store.open_ ~max_mb:cfg.Parcore.Config.cache_max_mb ~dir ())
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      config;
      queue = Admission.create ~max:config.queue_max;
      stats =
        {
          smu = Mutex.create ();
          started_s = Trace.now_s ();
          lat = Latency.create ();
          solver = Ilp.Stats.create ();
          windows = Hashtbl.create 8;
          statuses = Hashtbl.create 8;
          w_jobs = Array.make (max 1 config.executors) 0;
          w_busy_s = Array.make (max 1 config.executors) 0.;
          completed = 0;
          failed = 0;
          timed_out = 0;
          timed_out_queue = 0;
          timed_out_solve = 0;
        };
      engine = { store; memos = Hashtbl.create 4; emu = Mutex.create () };
      conns = Hashtbl.create 16;
      flight = Obs_flight.create ();
      outbox = Queue.create ();
      omu = Mutex.create ();
      rid_seq = 0;
      wake_r;
      wake_w;
      listeners = [];
      draining = false;
      drain_started_s = 0.;
      sup = None;
      want_drain = Atomic.make false;
      exit_code = 0;
    }
  in
  (* fatal-path cleanup: whatever way the process exits — force-stop,
     uncaught exception, Stdlib.exit from a signal-less crash — the
     socket file must not outlive us as a live-looking stub and the
     cache index must hit disk.  Normal shutdown runs this inline and
     the [at_exit] copy becomes a no-op. *)
  let cleanup_done = ref false in
  let cleanup () =
    if not !cleanup_done then begin
      cleanup_done := true;
      (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
      Option.iter
        (fun s -> try Cache.Store.close s with _ -> ())
        t.engine.store
    end
  in
  t.listeners <-
    (listen_unix config.socket_path
    :: (match config.tcp_port with
       | Some port -> [ listen_tcp port ]
       | None -> []));
  (* registered only after [listen_unix] succeeded: if we refused to
     clobber a live daemon's socket above, exiting must not unlink it *)
  at_exit cleanup;
  (* SIGTERM/SIGINT request a drain; the handler only flips an atomic
     and pokes the pipe, everything else happens on the event loop *)
  let on_signal _ =
    Atomic.set t.want_drain true;
    wake t
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fmt.epr "serve: listening on %s%s (%d executor(s) x jobs %d, queue %d%s)@."
    config.socket_path
    (match config.tcp_port with
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
    | None -> "")
    (max 1 config.executors)
    (worker_jobs cfg) config.queue_max
    (match cfg.Parcore.Config.cache_dir with
    | Some d -> ", cache " ^ d
    | None -> "");
  let sup =
    Supervisor.start
      {
        Supervisor.workers = config.executors;
        restart_budget = config.restart_budget;
        backoff_base_s = Supervisor.default_config.Supervisor.backoff_base_s;
        backoff_cap_s = Supervisor.default_config.Supervisor.backoff_cap_s;
        wedge_grace_s = config.wedge_grace_s;
      }
      (supervisor_hooks t)
  in
  t.sup <- Some sup;
  let next_cid = ref 0 in
  (* ---- event loop ---- *)
  let finished () =
    t.draining
    && Supervisor.drained sup
    && Mutex.protect t.omu (fun () -> Queue.is_empty t.outbox)
    && Hashtbl.fold (fun _ c acc -> acc && Queue.is_empty c.outq) t.conns true
  in
  (* with every worker gone for good (budget exhausted) nobody will ever
     take the remaining queued jobs: answer them [internal] so the drain
     can complete instead of timing out the grace period.  [take] does
     not block here — the drain valve is closed, so an empty queue
     returns [None] immediately. *)
  let flush_orphans () =
    if t.draining && Supervisor.exhausted sup && Supervisor.active sup = 0 then
      let rec drop () =
        match Admission.take t.queue with
        | None -> ()
        | Some job ->
            let resp =
              P.response ~id:job.req.P.id P.Internal
                ~message:
                  "no executor workers left (restart budget exhausted)"
            in
            record_result t job resp;
            Mutex.lock t.omu;
            Queue.push (job.conn_id, resp) t.outbox;
            Mutex.unlock t.omu;
            drop ()
      in
      drop ()
  in
  let deliver_outbox () =
    let pending =
      Mutex.protect t.omu (fun () ->
          let l = List.of_seq (Queue.to_seq t.outbox) in
          Queue.clear t.outbox;
          l)
    in
    List.iter
      (fun (cid, resp) ->
        match Hashtbl.find_opt t.conns cid with
        | Some c -> send_response c resp
        | None -> () (* client went away; drop the response *))
      pending
  in
  (try
     while not (finished ()) do
       if Atomic.get t.want_drain then begin_drain t ~reason:"signal";
       (* monitor pass: wedge/crash detection and backoff-gated restarts *)
       Supervisor.check sup ~now:(Trace.now_s ());
       (* zombie-reservation watch: a wedged worker holds its
          single-flight memo reservation forever while peers block on
          it — surface each stalled reservation once, naming the owner *)
       let memos =
         Mutex.protect t.engine.emu (fun () ->
             Hashtbl.fold (fun _ m acc -> m :: acc) t.engine.memos [])
       in
       List.iter
         (fun m ->
           List.iter
             (fun (s : Ilp.Memo.stall) ->
               Fmt.epr
                 "serve: memo reservation stalled %.1f s: key %s held by %s@."
                 s.Ilp.Memo.age_s s.Ilp.Memo.key s.Ilp.Memo.s_owner;
               Obs_flight.record t.flight "memo.stall"
                 ~fields:
                   [
                     ("key", J.Str s.Ilp.Memo.key);
                     ("owner", J.Str s.Ilp.Memo.s_owner);
                     ("age_s", J.Num s.Ilp.Memo.age_s);
                   ])
             (Ilp.Memo.stalled ~threshold_s:config.memo_stall_s m
                ~now:(Trace.now_s ())))
         memos;
       flush_orphans ();
       (* force-stop a drain that overstays the grace period *)
       if
         t.draining
         && Trace.now_s () -. t.drain_started_s > config.drain_grace_s
       then begin
         Fmt.epr "serve: drain exceeded %.1f s grace; force-stopping@."
           config.drain_grace_s;
         t.exit_code <- 4;
         raise Exit
       end;
       let reads =
         (t.wake_r :: t.listeners)
         @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns []
       in
       let writes =
         Hashtbl.fold
           (fun _ c acc ->
             if Queue.is_empty c.outq then acc else c.fd :: acc)
           t.conns []
       in
       match Unix.select reads writes [] 0.5 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, writable, _ ->
           if List.mem t.wake_r readable then begin
             let b = Bytes.create 256 in
             try
               while Unix.read t.wake_r b 0 256 > 0 do
                 ()
               done
             with Unix.Unix_error _ -> ()
           end;
           deliver_outbox ();
           List.iter
             (fun lfd ->
               if List.mem lfd readable then
                 match Unix.accept lfd with
                 | fd, _ ->
                     Unix.set_nonblock fd;
                     incr next_cid;
                     let c =
                       {
                         fd;
                         cid = !next_cid;
                         dec = P.decoder ();
                         outq = Queue.create ();
                         out_off = 0;
                         closing = false;
                       }
                     in
                     Hashtbl.replace t.conns c.cid c;
                     Trace.instant ~cat:"server" "connect"
                       ~args:[ ("conn", Trace.Int c.cid) ]
                 | exception Unix.Unix_error _ -> ())
             t.listeners;
           (* snapshot: handlers mutate the table *)
           let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
           List.iter
             (fun c -> if List.mem c.fd readable then handle_readable t c)
             cs;
           let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
           List.iter
             (fun c ->
               if
                 List.mem c.fd writable
                 || (not (Queue.is_empty c.outq))
                 || c.closing
               then flush_conn t c)
             cs
     done
   with Exit -> ());
  (* ---- shutdown ---- *)
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (* join workers that exited; a force-stopped drain may leave some
     mid-solve (or wedged asleep) — those are leaked, joining them would
     hang past the grace deadline *)
  Supervisor.stop sup;
  cleanup ();
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigpipe prev_pipe;
  let q = Admission.counters t.queue in
  Fmt.epr
    "serve: stopped after %.1f s — %d accepted, %d completed, %d rejected \
     (%d overloaded, %d draining), %d executor restart(s)@."
    (Trace.now_s () -. t.stats.started_s)
    q.Admission.accepted t.stats.completed
    (q.Admission.rej_overloaded + q.Admission.rej_draining)
    q.Admission.rej_overloaded q.Admission.rej_draining
    (Supervisor.restarts sup);
  if armed then begin
    let wall_s = Trace.now_s () -. t.stats.started_s in
    match Trace.stop () with
    | None -> ()
    | Some c ->
        Option.iter
          (fun path -> Trace_chrome.write ~path c)
          cfg.Parcore.Config.trace_file;
        Option.iter
          (fun path ->
            Observe.write_json ~path
              (Observe.metrics_doc ~generated_by:"mpsoc-par serve"
                 ~phases:(Observe.phases_of_events c.Trace.events)
                 ?cache:(Option.map Cache.Store.counters t.engine.store)
                 ~trace:c
                 ~sections:[ ("server", server_json t) ]
                 ~wall_s t.stats.solver))
          cfg.Parcore.Config.metrics_file;
        if cfg.Parcore.Config.profile then
          Fmt.epr "%t@." (fun ppf ->
              Observe.profile_table ppf ~wall_s ~dropped:c.Trace.dropped
                ~events:c.Trace.events t.stats.solver)
  end;
  t.exit_code
