(** Bounded, client-fair admission queue with a drain state machine.

    Admission control is what keeps a resident daemon honest under
    overload: instead of buffering unboundedly (latency grows without
    limit, memory too) the queue holds at most [max] jobs in total and
    rejects the rest with a typed [Overloaded] verdict the client can
    act on (back off, retry elsewhere).

    Fairness is round-robin between clients, not FIFO over arrivals:
    each client id owns a private FIFO and {!take} serves the client
    queues in rotation, so one connection blasting requests cannot
    starve an interactive one — with [k] active clients each is
    guaranteed every [k]-th service slot regardless of arrival order.

    Drain is a one-way valve ([Accepting -> Draining]): after {!drain},
    submissions are rejected with [Draining] but everything already
    admitted is still served; {!take} returns [None] only once the
    queue is empty, which is the consumer's signal to exit.  This is
    exactly the SIGTERM story — finish what you accepted, take nothing
    new, terminate. *)

type verdict = Accepted | Overloaded | Draining

type 'a t = {
  mu : Mutex.t;
  cond : Condition.t;
  max : int;
  queues : (int, 'a Queue.t) Hashtbl.t;  (** per-client FIFOs *)
  rr : int Queue.t;  (** client ids with pending work, service order *)
  mutable depth : int;  (** total queued jobs across clients *)
  mutable draining : bool;
  mutable n_accepted : int;
  mutable n_rej_overloaded : int;
  mutable n_rej_draining : int;
}

let create ~max =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    max;
    queues = Hashtbl.create 16;
    rr = Queue.create ();
    depth = 0;
    draining = false;
    n_accepted = 0;
    n_rej_overloaded = 0;
    n_rej_draining = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let submit t ~client job : verdict =
  locked t @@ fun () ->
  if t.draining then begin
    t.n_rej_draining <- t.n_rej_draining + 1;
    Draining
  end
  else if t.depth >= t.max then begin
    t.n_rej_overloaded <- t.n_rej_overloaded + 1;
    Overloaded
  end
  else begin
    let q =
      match Hashtbl.find_opt t.queues client with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace t.queues client q;
          q
    in
    if Queue.is_empty q then Queue.push client t.rr;
    Queue.push job q;
    t.depth <- t.depth + 1;
    t.n_accepted <- t.n_accepted + 1;
    Condition.signal t.cond;
    Accepted
  end

let take t : 'a option =
  locked t @@ fun () ->
  while t.depth = 0 && not t.draining do
    Condition.wait t.cond t.mu
  done;
  if t.depth = 0 then None (* draining and empty: consumer exits *)
  else begin
    let client = Queue.pop t.rr in
    let q = Hashtbl.find t.queues client in
    let job = Queue.pop q in
    (* back of the rotation — the next client with work is served first *)
    if not (Queue.is_empty q) then Queue.push client t.rr
    else Hashtbl.remove t.queues client;
    t.depth <- t.depth - 1;
    Some job
  end

let drain t =
  locked t @@ fun () ->
  t.draining <- true;
  Condition.broadcast t.cond

let draining t = locked t @@ fun () -> t.draining
let depth t = locked t @@ fun () -> t.depth

type counters = { accepted : int; rej_overloaded : int; rej_draining : int }

let counters t =
  locked t @@ fun () ->
  {
    accepted = t.n_accepted;
    rej_overloaded = t.n_rej_overloaded;
    rej_draining = t.n_rej_draining;
  }
