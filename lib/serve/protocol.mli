(** Wire protocol of the serve daemon (schema [mpsoc-par/serve/v3]):
    length-prefixed JSON frames — a 4-byte big-endian payload length
    followed by that many bytes of JSON.  Response codes mirror the CLI
    exit-code contract (0 ok / 2 degraded / 3 invalid-overloaded-draining
    / 4 timeout-deadlock / 1 fault-internal). *)

module J = Trace_json

val schema : string
(** ["mpsoc-par/serve/v3"].  v2 added the [health] op and the optional
    per-request [fault_plan] field; v3 adds the [stats] op (live
    sliding-window telemetry, schema mpsoc-par/stats/v1) and the [dump]
    op (flight-recorder JSONL dump), both answered inline by the event
    loop even while every executor is busy. *)

val max_frame : int
(** Hard cap on a frame's JSON payload in bytes; a length prefix
    announcing more is a framing error, not a large allocation. *)

(** {2 Requests} *)

type op =
  | Parallelize
  | Execute
  | Status
  | Health
  | Drain
  | Stats  (** live telemetry snapshot, answered inline (never queued) *)
  | Dump  (** dump the flight-recorder ring as JSONL, answered inline *)

val op_name : op -> string
val op_of_name : string -> op option

type request = {
  id : string;  (** client-chosen correlation id, echoed in the response *)
  op : op;
  target : string;  (** benchmark name or server-side source path *)
  platform : string;  (** preset name or server-side description file *)
  approach : string;  (** ["hetero"] (default) or ["homo"] *)
  deadline_s : float;
      (** per-request watchdog deadline; [0.] accepts the server default *)
  fault_plan : string;
      (** fault-plan spec armed domain-locally on the executor worker
          that runs this job; [""] = none (chaos testing only) *)
}

val request :
  ?id:string ->
  ?target:string ->
  ?platform:string ->
  ?approach:string ->
  ?deadline_s:float ->
  ?fault_plan:string ->
  op ->
  request

val request_json : request -> J.t
val request_of_json : J.t -> (request, string) result
val parse_request : string -> (request, string) result

(** {2 Responses} *)

type status =
  | Ok_
  | Degraded
  | Invalid
  | Resource_limit
  | Timeout
  | Deadlock
  | Fault
  | Internal
  | Overloaded  (** admission queue full — retry later *)
  | Draining  (** server is shutting down — resubmit elsewhere *)

val all_statuses : status list
val status_name : status -> string
val status_of_name : string -> status option

val status_code : status -> int
(** The CLI exit-code contract applied to responses; [Overloaded] and
    [Draining] are typed resource-class rejections (3). *)

val status_of_error : Mpsoc_error.t -> status

type response = {
  id : string;
  status : status;
  message : string;  (** human diagnostic; [""] when none *)
  body : (string * J.t) list;  (** op-specific payload *)
}

val response :
  ?message:string -> ?body:(string * J.t) list -> id:string -> status -> response

val of_error : id:string -> Mpsoc_error.t -> response
val response_json : response -> J.t
val response_of_json : J.t -> (response, string) result
val parse_response : string -> (response, string) result

(** {2 Framing} *)

val frame : string -> string
(** Prepend the 4-byte big-endian length.  Raises [Invalid_argument] on
    a payload over {!max_frame}. *)

(** Incremental frame decoder: {!feed} arbitrary byte chunks, pop
    complete payloads with {!next}.  Total on any input — a length
    prefix that is negative or exceeds {!max_frame} yields [`Error],
    sticky: the stream cannot be resynchronised and must be dropped. *)
type decoder

val decoder : unit -> decoder
val feed : decoder -> string -> unit
val next : decoder -> [ `Frame of string | `Awaiting | `Error of string ]

(** {2 Blocking helpers} (clients and tests; the daemon uses {!decoder}) *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> [ `Frame of string | `Eof | `Error of string ]
val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit
val read_response :
  Unix.file_descr -> [ `Response of response | `Eof | `Error of string ]
