(** Bounded, client-fair admission queue with a one-way drain valve.

    At most [max] jobs are queued in total; beyond that {!submit}
    returns [Overloaded].  Service order is round-robin between client
    ids (each owns a private FIFO), so one busy connection cannot
    starve another.  After {!drain}, submissions are rejected with
    [Draining] but admitted jobs are still served; {!take} returns
    [None] once the queue is empty — the consumer's signal to exit.
    Domain-safe. *)

type verdict = Accepted | Overloaded | Draining

type 'a t

val create : max:int -> 'a t

val submit : 'a t -> client:int -> 'a -> verdict

val take : 'a t -> 'a option
(** Blocks until a job is available; [None] iff draining and empty. *)

val drain : 'a t -> unit
val draining : 'a t -> bool
val depth : 'a t -> int

type counters = { accepted : int; rej_overloaded : int; rej_draining : int }

val counters : 'a t -> counters
