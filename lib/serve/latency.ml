(** Latency sample recorder shared by the daemon's metrics section and
    the loadgen report: exact percentiles over all recorded samples.

    Requests through one server process number in the thousands, not
    millions, so keeping every sample and sorting once at summary time
    is both exact and cheap — no bucketing error to explain away when
    two reports are compared.  Not thread-safe; callers serialize. *)

type t = {
  mutable samples : float array;  (** seconds; live prefix of [n] *)
  mutable n : int;
}

let create () = { samples = Array.make 256 0.; n = 0 }

let record t (s : float) =
  if t.n >= Array.length t.samples then begin
    let bigger = Array.make (2 * Array.length t.samples) 0. in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- s;
  t.n <- t.n + 1

let count t = t.n

(** Nearest-rank percentile of a sorted array ([p] in [0..100]). *)
let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

type summary = {
  count : int;
  mean_ms : float;
  max_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

let summarize t : summary =
  let sorted = Array.sub t.samples 0 t.n in
  Array.sort compare sorted;
  let total = Array.fold_left ( +. ) 0. sorted in
  let ms s = 1e3 *. s in
  {
    count = t.n;
    mean_ms = (if t.n = 0 then 0. else ms (total /. float_of_int t.n));
    max_ms = (if t.n = 0 then 0. else ms sorted.(t.n - 1));
    p50_ms = ms (percentile sorted 50.);
    p90_ms = ms (percentile sorted 90.);
    p99_ms = ms (percentile sorted 99.);
  }

let summary_json (s : summary) : Trace_json.t =
  Trace_json.Obj
    [
      ("count", Trace_json.Num (float_of_int s.count));
      ("mean_ms", Trace_json.Num s.mean_ms);
      ("max_ms", Trace_json.Num s.max_ms);
      ("p50_ms", Trace_json.Num s.p50_ms);
      ("p90_ms", Trace_json.Num s.p90_ms);
      ("p99_ms", Trace_json.Num s.p99_ms);
    ]

(* fixed 1-2-5 bucket boundaries in milliseconds; the last bucket is
   open-ended *)
let bucket_bounds_ms =
  [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. ]

let histogram_json t : Trace_json.t =
  let counts = Array.make (List.length bucket_bounds_ms + 1) 0 in
  for i = 0 to t.n - 1 do
    let ms = 1e3 *. t.samples.(i) in
    let rec slot k = function
      | [] -> k
      | b :: rest -> if ms <= b then k else slot (k + 1) rest
    in
    let k = slot 0 bucket_bounds_ms in
    counts.(k) <- counts.(k) + 1
  done;
  let labels =
    List.map (fun b -> Printf.sprintf "le_%gms" b) bucket_bounds_ms
    @ [ "gt_5000ms" ]
  in
  Trace_json.Obj
    (List.mapi
       (fun i l -> (l, Trace_json.Num (float_of_int counts.(i))))
       labels)
