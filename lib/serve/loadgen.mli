(** Load generator for the serve daemon: open-loop paced request replay
    over [concurrency] connections, capped-exponential full-jitter
    retries on [overloaded]/transport failures, an optional per-request
    fault-plan mix for chaos runs, a latency-percentile report (schema
    [mpsoc-par/loadgen/v3], folding the server's per-response
    [server_timing] queue-wait/solve/serialize breakdown), and a
    per-target solution-digest consistency check over non-faulted
    responses. *)

type config = {
  socket_path : string;
  targets : string list;
  platform : string;
  approach : string;
  op : Protocol.op;  (** {!Protocol.Parallelize} or {!Protocol.Execute} *)
  qps : float;  (** offered request rate; [0.] = as fast as possible *)
  concurrency : int;  (** worker connections (one domain each) *)
  requests : int;  (** total requests across all workers *)
  deadline_s : float;
      (** per-request deadline sent to the server; [0.] = server default *)
  retry_max : int;
      (** retries per request on [overloaded] or transport failure
          (reconnecting); [draining] is never retried *)
  retry_base_s : float;  (** backoff window for the first retry *)
  retry_cap_s : float;  (** backoff window ceiling *)
  fault_specs : string list;
      (** fault-plan specs (see {!Fault.of_spec}) cycled over faulted
          requests; [[]] = no fault injection *)
  fault_every : int;
      (** arm a fault plan on every n-th request; [0] = never *)
  report_path : string option;  (** [None] = no file; ["-"] = stdout *)
}

val default_config : config
(** qps 2, concurrency 2, 10 requests, 3 retries (50 ms base, 1 s cap),
    no faults. *)

(** Merged run outcome (all workers joined). *)
type result = {
  completed : int;
  wall_s : float;
  throughput_rps : float;
  latency : Latency.summary;
  statuses : (string * int) list;  (** final status name -> count *)
  rejected : int;  (** final [overloaded] + [draining] counts *)
  transport_errors : int;  (** requests that never got a response *)
  retries : int;  (** extra attempts across all requests *)
  retry_wait_s : float;  (** total backoff sleep across workers *)
  faulted : int;  (** requests sent carrying a fault plan *)
  digests : (string * string list) list;
      (** per-target distinct digests (non-faulted responses only) *)
  digests_consistent : bool;
  report : Trace_json.t;  (** the full [mpsoc-par/loadgen/v3] document *)
}

val run_result : config -> result
(** Drive the load and return the merged tallies without writing the
    report file or printing.  Raises {!Mpsoc_error.Error}
    ([Invalid_input]) on an unknown target, bad fault spec, empty
    target list, or unreachable socket. *)

val run : config -> int
(** {!run_result}, plus the report file and a summary line on stderr.
    Returns the process exit code: [0] when every request got a
    response (after retries) and per-target digests were consistent;
    [1] on residual transport errors or a digest mismatch.  Typed
    server rejections ([overloaded]/[draining]) and faulted requests'
    error statuses are reported, not failures. *)
