(** Load generator for the serve daemon: open-loop paced request replay
    over [concurrency] connections, a latency-percentile report
    (schema [mpsoc-par/loadgen/v1]), and a per-target solution-digest
    consistency check. *)

type config = {
  socket_path : string;
  targets : string list;
  platform : string;
  approach : string;
  op : Protocol.op;  (** {!Protocol.Parallelize} or {!Protocol.Execute} *)
  qps : float;  (** offered request rate; [0.] = as fast as possible *)
  concurrency : int;  (** worker connections (one domain each) *)
  requests : int;  (** total requests across all workers *)
  deadline_s : float;
      (** per-request deadline sent to the server; [0.] = server default *)
  report_path : string option;  (** [None] = no file; ["-"] = stdout *)
}

val default_config : config

val run : config -> int
(** Returns the process exit code: [0] when every request got a
    response over an intact connection and per-target digests were
    consistent; [1] on transport errors or a digest mismatch.  Typed
    server rejections ([overloaded]/[draining]) are reported, not
    failures.  Raises {!Mpsoc_error.Error} ([Invalid_input]) on an
    unknown target, empty target list, or unreachable socket. *)
