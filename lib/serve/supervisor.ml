(** Crash-only supervision of a pool of executor worker domains.

    The supervisor owns [workers] slots.  Each slot runs one {e
    incarnation}: a spawned domain looping [take → run → answer] over
    the job source.  Incarnations are disposable — OCaml domains cannot
    be killed, so a worker that crashes (an exception escaping
    {!hooks.run}) or wedges (no answer past its job's deadline plus a
    grace period) is {e abandoned} and a fresh incarnation is spawned on
    the slot.  Abandoned-but-still-running domains are leaked: they
    notice the [abandoned] flag after their current job, release their
    context, and exit; ones stuck forever die with the process.

    Restarts are budgeted: each costs one unit of a global budget, and
    each slot backs off exponentially ([base · 2^(n-1)], capped) between
    its own restarts so a hot crash loop cannot spin the supervisor.
    When the budget runs out, {!hooks.on_exhausted} fires exactly once
    and no further incarnations are spawned — the process is expected to
    drain and exit.

    Per-job answer exactness: every job carries a CAS token; whoever
    flips it — the worker completing the run, the worker's crash
    handler, or the monitor declaring a wedge — is the one that calls
    {!hooks.answer}, so a request is answered exactly once even when a
    wedged worker eventually wakes up and finishes.

    Threading: {!check}, {!status_json}, {!stop} and the counters must
    be called from one domain (the daemon's event loop).  Workers
    communicate with the monitor only through atomics. *)

module J = Trace_json

type config = {
  workers : int;  (** slots (≥ 1) *)
  restart_budget : int;  (** total restarts before giving up *)
  backoff_base_s : float;  (** first-restart delay per slot *)
  backoff_cap_s : float;  (** per-slot delay ceiling *)
  wedge_grace_s : float;
      (** slack past a job's deadline before the monitor declares the
          worker wedged *)
}

let default_config =
  {
    workers = 2;
    restart_budget = 8;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.;
    wedge_grace_s = 1.;
  }

type ('ctx, 'job, 'resp) hooks = {
  take : unit -> 'job option;
      (** blocking job source; [None] = drained, exit normally *)
  worker_init : int -> 'ctx;
      (** build the per-incarnation context {e on the worker domain}
          (e.g. its private taskpool); a raise here counts as a crash *)
  worker_exit : 'ctx -> unit;
      (** release the context on normal or abandoned exit; {e not}
          called on crash (the context's state is unknown — leak it) *)
  run : 'ctx -> 'job -> 'resp;
      (** execute one job; expected to return typed failures and let
          only worker-killing faults escape *)
  deadline : 'job -> float;  (** absolute deadline; [infinity] = none *)
  answer : 'job -> 'resp -> unit;  (** deliver; called exactly once per job *)
  crashed : 'job -> exn -> 'resp;  (** response for a job killed by a crash *)
  wedged : 'job -> 'resp;  (** response for a job whose worker wedged *)
  on_exhausted : unit -> unit;  (** restart budget spent; fired once *)
  describe : 'job -> string;  (** label for health/trace output *)
  wake : unit -> unit;  (** poke the monitor's event loop *)
  note : event:string -> worker:int -> unit;
      (** lifecycle edge observer (["executor.spawn"] / [".restart"] /
          [".crash"] / [".wedge"] / [".exhausted"] / [".exit"]), called
          on the monitor domain regardless of tracing — the daemon's
          flight recorder hangs off this.  [worker = -1] for
          process-wide events (budget exhaustion). *)
}

type 'job inflight = {
  job : 'job;
  deadline : float;
  answered : bool Atomic.t;  (** the answer-exactly-once CAS token *)
}

type 'job incarnation = {
  alive : bool Atomic.t;  (** loop still running (set last on any exit) *)
  normal : bool Atomic.t;  (** exited because the job source drained *)
  abandoned : bool Atomic.t;  (** monitor gave up; exit after current job *)
  inflight : 'job inflight option Atomic.t;
  crash : exn option Atomic.t;  (** the exception that killed the loop *)
}

type ('ctx, 'job) slot = {
  idx : int;
  mutable inc : 'job incarnation;
  mutable domain : unit Domain.t option;
  mutable restarts : int;  (** restarts of this slot (backoff exponent) *)
  mutable pending_restart : bool;
  mutable next_restart_s : float;  (** backoff gate for the pending restart *)
  mutable dead : bool;  (** budget spent; slot will never run again *)
  mutable zombies : ('job incarnation * unit Domain.t) list;
      (** abandoned incarnations; joined at {!stop} if they exited *)
}

type ('ctx, 'job, 'resp) t = {
  config : config;
  hooks : ('ctx, 'job, 'resp) hooks;
  slots : ('ctx, 'job) slot array;
  mutable restarts_total : int;
  mutable wedges_total : int;
  mutable crashes_total : int;
  mutable exhausted : bool;
}

let num i = J.Num (float_of_int i)

(* ---- the worker side ------------------------------------------------ *)

let fresh_incarnation () =
  {
    alive = Atomic.make true;
    normal = Atomic.make false;
    abandoned = Atomic.make false;
    inflight = Atomic.make None;
    crash = Atomic.make None;
  }

(** The body of one incarnation.  Runs on its own domain; never lets an
    exception escape (the domain handle must stay joinable). *)
let incarnation_body (sup : ('ctx, 'job, 'resp) t) (slot : ('ctx, 'job) slot)
    (inc : 'job incarnation) () =
  let hooks = sup.hooks in
  let finish ~normal =
    Atomic.set inc.normal normal;
    Atomic.set inc.alive false;
    hooks.wake ()
  in
  let crash e =
    Atomic.set inc.crash (Some e);
    Fmt.epr "serve: executor %d crashed: %s@." slot.idx (Printexc.to_string e);
    finish ~normal:false
  in
  match hooks.worker_init slot.idx with
  | exception e -> crash e
  | ctx -> (
      let rec loop () =
        if Atomic.get inc.abandoned then ()
        else
          match hooks.take () with
          | None -> Atomic.set inc.normal true
          | Some job ->
              let infl =
                { job; deadline = hooks.deadline job; answered = Atomic.make false }
              in
              Atomic.set inc.inflight (Some infl);
              (match hooks.run ctx job with
              | resp ->
                  Atomic.set inc.inflight None;
                  (* the monitor may have declared us wedged and answered
                     already; exactly one side wins the token *)
                  if Atomic.compare_and_set infl.answered false true then
                    hooks.answer job resp
              | exception e ->
                  Atomic.set inc.inflight None;
                  if Atomic.compare_and_set infl.answered false true then
                    hooks.answer job (hooks.crashed job e);
                  raise e);
              loop ()
      in
      match loop () with
      | () ->
          (* normal drain or abandoned-and-woke-up: context is sound *)
          (try hooks.worker_exit ctx
           with e ->
             Fmt.epr "serve: executor %d exit cleanup failed: %s@." slot.idx
               (Printexc.to_string e));
          finish ~normal:(Atomic.get inc.normal)
      | exception e -> crash e (* context leaked deliberately *))

let spawn_incarnation sup slot ~event =
  let inc = fresh_incarnation () in
  slot.inc <- inc;
  slot.domain <- Some (Domain.spawn (incarnation_body sup slot inc));
  if Trace.enabled () then
    Trace.instant ~cat:"server" event ~args:[ ("worker", Trace.Int slot.idx) ];
  sup.hooks.note ~event ~worker:slot.idx

(* ---- the monitor side (event-loop domain only) ---------------------- *)

let start (config : config) hooks =
  let config = { config with workers = max 1 config.workers } in
  let sup =
    {
      config;
      hooks;
      slots =
        Array.init config.workers (fun idx ->
            {
              idx;
              inc = fresh_incarnation ();
              domain = None;
              restarts = 0;
              pending_restart = false;
              next_restart_s = 0.;
              dead = false;
              zombies = [];
            });
      restarts_total = 0;
      wedges_total = 0;
      crashes_total = 0;
      exhausted = false;
    }
  in
  Array.iter (fun slot -> spawn_incarnation sup slot ~event:"executor.spawn")
    sup.slots;
  sup

(** Charge one restart to the budget and open the slot's backoff window;
    fires [on_exhausted] (once) instead when the budget is spent. *)
let schedule_restart sup slot ~now =
  if not sup.exhausted then begin
    if sup.restarts_total >= sup.config.restart_budget then begin
      sup.exhausted <- true;
      Fmt.epr
        "serve: executor restart budget (%d) exhausted; no further restarts@."
        sup.config.restart_budget;
      if Trace.enabled () then
        Trace.instant ~cat:"server" "executor.exhausted"
          ~args:[ ("budget", Trace.Int sup.config.restart_budget) ];
      sup.hooks.note ~event:"executor.exhausted" ~worker:(-1);
      sup.hooks.on_exhausted ()
    end
    else begin
      sup.restarts_total <- sup.restarts_total + 1;
      slot.restarts <- slot.restarts + 1;
      let n = slot.restarts in
      let delay =
        Float.min sup.config.backoff_cap_s
          (sup.config.backoff_base_s *. (2. ** float_of_int (n - 1)))
      in
      slot.pending_restart <- true;
      slot.next_restart_s <- now +. delay
    end
  end;
  if sup.exhausted then slot.dead <- true

let check sup ~now =
  Array.iter
    (fun slot ->
      if not slot.dead then begin
        let inc = slot.inc in
        (* wedge: mid-job, past deadline + grace, still unanswered *)
        (if Atomic.get inc.alive && not (Atomic.get inc.abandoned) then
           match Atomic.get inc.inflight with
           | Some infl
             when infl.deadline < infinity
                  && now > infl.deadline +. sup.config.wedge_grace_s
                  && not (Atomic.get infl.answered) ->
               if Atomic.compare_and_set infl.answered false true then begin
                 Atomic.set inc.abandoned true;
                 sup.wedges_total <- sup.wedges_total + 1;
                 Fmt.epr
                   "serve: executor %d wedged on %s (%.1f s past deadline); \
                    abandoning@."
                   slot.idx
                   (sup.hooks.describe infl.job)
                   (now -. infl.deadline);
                 if Trace.enabled () then
                   Trace.instant ~cat:"server" "executor.wedge"
                     ~args:[ ("worker", Trace.Int slot.idx) ];
                 sup.hooks.note ~event:"executor.wedge" ~worker:slot.idx;
                 sup.hooks.answer infl.job (sup.hooks.wedged infl.job);
                 schedule_restart sup slot ~now
               end
           | _ -> ());
        (* crash: the loop died without draining and nobody scheduled a
           replacement yet (abandoned incarnations were charged at wedge
           time) *)
        let inc = slot.inc in
        if
          (not (Atomic.get inc.alive))
          && (not (Atomic.get inc.normal))
          && (not (Atomic.get inc.abandoned))
          && not slot.pending_restart
        then begin
          sup.crashes_total <- sup.crashes_total + 1;
          if Trace.enabled () then
            Trace.instant ~cat:"server" "executor.crash"
              ~args:[ ("worker", Trace.Int slot.idx) ];
          sup.hooks.note ~event:"executor.crash" ~worker:slot.idx;
          schedule_restart sup slot ~now
        end;
        (* restart once the backoff window closes *)
        if slot.pending_restart && not slot.dead && now >= slot.next_restart_s
        then begin
          slot.pending_restart <- false;
          (match slot.domain with
          | Some d -> slot.zombies <- (slot.inc, d) :: slot.zombies
          | None -> ());
          spawn_incarnation sup slot ~event:"executor.restart"
        end
      end)
    sup.slots

let active sup =
  Array.fold_left
    (fun acc slot ->
      let inc = slot.inc in
      if
        (not slot.dead)
        && Atomic.get inc.alive
        && not (Atomic.get inc.abandoned)
      then acc + 1
      else acc)
    0 sup.slots

(** Every slot is finished: exited normally, or never going to restart.
    A slot mid-backoff is {e not} drained — its replacement must still
    run (it exits immediately once the job source reports empty). *)
let drained sup =
  Array.for_all
    (fun slot ->
      slot.dead
      || (not slot.pending_restart)
         && (not (Atomic.get slot.inc.alive))
         && Atomic.get slot.inc.normal)
    sup.slots

let restarts sup = sup.restarts_total
let wedges sup = sup.wedges_total
let crashes sup = sup.crashes_total
let exhausted sup = sup.exhausted

let slot_state slot =
  let inc = slot.inc in
  if slot.dead then "dead"
  else if slot.pending_restart then "restarting"
  else if Atomic.get inc.alive then
    if Atomic.get inc.abandoned then "wedged"
    else
      match Atomic.get inc.inflight with Some _ -> "busy" | None -> "idle"
  else if Atomic.get inc.normal then "exited"
  else "crashed"

let status_json sup : J.t =
  J.List
    (Array.to_list sup.slots
    |> List.map (fun slot ->
           J.Obj
             [
               ("worker", num slot.idx);
               ("state", J.Str (slot_state slot));
               ("restarts", num slot.restarts);
               ( "inflight",
                 match Atomic.get slot.inc.inflight with
                 | Some infl -> J.Str (sup.hooks.describe infl.job)
                 | None -> J.Null );
             ]))

(** Join every incarnation whose loop has exited (their domain functions
    return promptly).  Still-running domains — wedged workers asleep in
    an injected delay — are leaked; they die with the process. *)
let stop sup =
  Array.iter
    (fun slot ->
      let joinable =
        (match slot.domain with
        | Some d when not (Atomic.get slot.inc.alive) -> [ d ]
        | _ -> [])
        @ List.filter_map
            (fun (inc, d) ->
              if Atomic.get inc.alive then None else Some d)
            slot.zombies
      in
      List.iter Domain.join joinable;
      if Trace.enabled () then
        Trace.instant ~cat:"server" "executor.exit"
          ~args:[ ("worker", Trace.Int slot.idx) ];
      sup.hooks.note ~event:"executor.exit" ~worker:slot.idx)
    sup.slots
