(** Live-telemetry client for the serve daemon ([mpsoc-par observe]).

    Polls the [stats] op (schema [mpsoc-par/stats/v1]) over the daemon's
    socket and renders a top-style text snapshot — counters, sliding
    latency windows (1m/5m/total), memo and cache hit rates, per-worker
    utilization, flight-recorder occupancy — or, with [json] set, the
    raw stats body, one JSON object per poll (so a shell pipeline can
    [jq] it).  The [stats] op is answered inline by the event loop, so
    the snapshot arrives even while every executor is mid-solve. *)

module P = Protocol
module J = Trace_json

type config = {
  socket_path : string;
  interval_s : float;  (** sleep between polls *)
  count : int;  (** polls before exiting; [0] = forever *)
  json : bool;  (** raw stats body instead of the table *)
}

let default_config =
  { socket_path = "mpsoc-par.sock"; interval_s = 2.; count = 1; json = false }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (code, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Mpsoc_error.raise_error ~phase:Cli ~kind:Invalid_input ~location:path
       ~advice:"is `mpsoc-par serve` running on this socket?"
       ("cannot connect: " ^ Unix.error_message code));
  fd

(* tolerant accessors: a field the server does not send renders as 0 /
   "" instead of failing the whole snapshot *)
let fnum j name = match J.member name j with Some (J.Num v) -> v | _ -> 0.
let fint j name = int_of_float (fnum j name)

let fstr j name =
  match J.member name j with Some (J.Str s) -> s | _ -> ""

let pp_summary ppf (label, s) =
  Format.fprintf ppf "  %-18s %7d %8.1f %8.1f %8.1f %8.1f %8.1f@," label
    (fint s "count") (fnum s "mean_ms") (fnum s "p50_ms") (fnum s "p90_ms")
    (fnum s "p99_ms") (fnum s "max_ms")

let render ppf (body : J.t) =
  let counters =
    Option.value (J.member "counters" body) ~default:(J.Obj [])
  in
  let queue = Option.value (J.member "queue" body) ~default:(J.Obj []) in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "state %s, up %.1f s@," (fstr body "state")
    (fnum body "uptime_s");
  Format.fprintf ppf
    "queue %d/%d   accepted %d   completed %d (%d failed, %d timed out: %d \
     queue / %d solve)   rejected %d overloaded + %d draining@,"
    (fint queue "depth") (fint queue "max") (fint counters "accepted")
    (fint counters "completed") (fint counters "failed")
    (fint counters "timed_out") (fint counters "timed_out_queue")
    (fint counters "timed_out_solve")
    (fint counters "rejected_overloaded")
    (fint counters "rejected_draining");
  (match J.member "statuses" body with
  | Some (J.Obj fields) when fields <> [] ->
      Format.fprintf ppf "statuses: %s@,"
        (String.concat ", "
           (List.map
              (fun (name, v) ->
                Printf.sprintf "%s %d" name
                  (match v with J.Num n -> int_of_float n | _ -> 0))
              fields))
  | _ -> ());
  (match J.member "latency" body with
  | Some (J.Obj keys) ->
      Format.fprintf ppf "latency (ms)         %7s %8s %8s %8s %8s %8s@,"
        "count" "mean" "p50" "p90" "p99" "max";
      List.iter
        (fun (key, windows) ->
          match windows with
          | J.Obj ws ->
              List.iter
                (fun (wname, s) -> pp_summary ppf (key ^ " " ^ wname, s))
                ws
          | _ -> ())
        keys
  | _ -> ());
  (match J.member "memo" body with
  | Some m ->
      Format.fprintf ppf
        "memo: %d hits + %d disk / %d misses (%.1f%% hit rate), %d \
         stall(s), %d cancelled@,"
        (fint m "hits") (fint m "disk_hits") (fint m "misses")
        (100. *. fnum m "hit_rate")
        (fint m "stalls") (fint m "cancelled")
  | None -> ());
  (match J.member "workers" body with
  | Some (J.List rows) ->
      Format.fprintf ppf "workers:              %7s %8s %8s %8s %8s@," "state"
        "jobs" "busy_s" "util" "restarts";
      List.iter
        (fun row ->
          Format.fprintf ppf "  worker %-12d %7s %8d %8.2f %7.1f%% %8d@,"
            (fint row "worker") (fstr row "state") (fint row "jobs")
            (fnum row "busy_s")
            (100. *. fnum row "utilization")
            (fint row "restarts"))
        rows;
      Format.fprintf ppf
        "executor restarts %d, crashes %d, wedges %d@,"
        (fint body "executor_restarts")
        (fint body "executor_crashes")
        (fint body "executor_wedges")
  | _ -> ());
  (match J.member "flight" body with
  | Some f ->
      Format.fprintf ppf "flight: %d/%d event(s) (%d recorded) -> %s@,"
        (fint f "size") (fint f "capacity") (fint f "recorded") (fstr f "path")
  | None -> ());
  (match J.member "trace" body with
  | Some tr ->
      Format.fprintf ppf "trace armed: %b@,"
        (match J.member "armed" tr with Some (J.Bool b) -> b | _ -> false)
  | None -> ());
  Format.fprintf ppf "@]"

(** One stats round trip on a fresh connection (the daemon is select
    driven; short-lived connections are cheap and keep this client
    stateless across daemon restarts). *)
let fetch (cfg : config) : (J.t, string) result =
  let fd = connect cfg.socket_path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        P.write_request fd (P.request ~id:"observe" P.Stats);
        P.read_response fd
      with
      | `Response r when r.P.status = P.Ok_ -> Ok (J.Obj r.P.body)
      | `Response r ->
          Error
            (Printf.sprintf "stats request answered %s: %s"
               (P.status_name r.P.status) r.P.message)
      | `Eof -> Error "connection closed before the stats response"
      | `Error m -> Error m
      | exception Unix.Unix_error (code, _, _) ->
          Error (Unix.error_message code))

let run (cfg : config) : int =
  let rec go i =
    match fetch cfg with
    | Error m ->
        Fmt.epr "observe: %s@." m;
        1
    | Ok body ->
        if cfg.json then Fmt.pr "%s@." (J.to_string body)
        else Fmt.pr "%t@." (fun ppf -> render ppf body);
        if cfg.count > 0 && i + 1 >= cfg.count then 0
        else begin
          Unix.sleepf cfg.interval_s;
          go (i + 1)
        end
  in
  go 0
