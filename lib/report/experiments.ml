(** Experiment drivers regenerating the paper's evaluation artifacts:
    Figures 7(a)/(b) and 8(a)/(b) (speedup per benchmark, homogeneous [6]
    vs. heterogeneous, on platforms A and B in the accelerator and
    slower-cores scenarios) and Table I (ILP statistics).  Results are
    memoized per (benchmark, platform, approach) so the four figures and
    the table share parallelization runs. *)

module P = Parcore.Parallelize

type run = {
  bench : Benchsuite.Suite.t;
  platform : Platform.Desc.t;
  approach : P.approach;
  outcome : P.outcome;
  speedup : float;
}

type ctx = {
  cfg : Parcore.Config.t;
  verbose : bool;
  compiled : (string, Minic.Ast.program * Interp.Profile.t) Hashtbl.t;
  runs : (string * string * string, run) Hashtbl.t;
}

let create ?(cfg = Parcore.Config.default) ?(verbose = true) () =
  { cfg; verbose; compiled = Hashtbl.create 16; runs = Hashtbl.create 64 }

let compiled ctx (b : Benchsuite.Suite.t) =
  match Hashtbl.find_opt ctx.compiled b.Benchsuite.Suite.name with
  | Some v -> v
  | None ->
      let prog = Benchsuite.Suite.compile b in
      let profile = (Interp.Eval.run prog).Interp.Eval.profile in
      let v = (prog, profile) in
      Hashtbl.replace ctx.compiled b.Benchsuite.Suite.name v;
      v

let approach_key = function
  | P.Heterogeneous -> "hetero"
  | P.Homogeneous -> "homo"

(** Parallelize [bench] for [platform] with [approach] (memoized). *)
let run ctx (b : Benchsuite.Suite.t) (platform : Platform.Desc.t)
    (approach : P.approach) : run =
  let key =
    (b.Benchsuite.Suite.name, platform.Platform.Desc.name, approach_key approach)
  in
  match Hashtbl.find_opt ctx.runs key with
  | Some r -> r
  | None ->
      let prog, profile = compiled ctx b in
      if ctx.verbose then
        Printf.eprintf "  [%s] %s on %s ...%!" (approach_key approach)
          b.Benchsuite.Suite.name platform.Platform.Desc.name;
      let outcome =
        P.run_program ~cfg:ctx.cfg ~profile ~approach ~platform prog
      in
      let speedup = P.speedup outcome in
      if ctx.verbose then
        Printf.eprintf " speedup %.2fx (%.1fs, %d ILPs)\n%!" speedup
          outcome.P.algo.Parcore.Algorithm.wall_time_s
          outcome.P.algo.Parcore.Algorithm.stats.Ilp.Stats.ilps;
      let r = { bench = b; platform; approach; outcome; speedup } in
      Hashtbl.replace ctx.runs key r;
      r

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8                                                     *)
(* ------------------------------------------------------------------ *)

type figure_row = { fbench : string; homo : float; hetero : float }

type figure = {
  fig_id : string;
  fig_title : string;
  fig_platform : Platform.Desc.t;
  theoretical : float;
  frows : figure_row list;
}

let figure ctx ~id ~title (platform : Platform.Desc.t) : figure =
  let frows =
    List.map
      (fun b ->
        let homo = (run ctx b platform P.Homogeneous).speedup in
        let hetero = (run ctx b platform P.Heterogeneous).speedup in
        { fbench = b.Benchsuite.Suite.name; homo; hetero })
      Benchsuite.Suite.all
  in
  {
    fig_id = id;
    fig_title = title;
    fig_platform = platform;
    theoretical = Platform.Desc.theoretical_speedup platform;
    frows;
  }

let fig7a ctx =
  figure ctx ~id:"fig7a"
    ~title:"Figure 7(a): Platform A (100/250/500/500 MHz), accelerator scenario"
    Platform.Presets.platform_a_accel

let fig7b ctx =
  figure ctx ~id:"fig7b"
    ~title:"Figure 7(b): Platform A (100/250/500/500 MHz), slower-cores scenario"
    Platform.Presets.platform_a_slow

let fig8a ctx =
  figure ctx ~id:"fig8a"
    ~title:"Figure 8(a): Platform B (200/200/500/500 MHz), accelerator scenario"
    Platform.Presets.platform_b_accel

let fig8b ctx =
  figure ctx ~id:"fig8b"
    ~title:"Figure 8(b): Platform B (200/200/500/500 MHz), slower-cores scenario"
    Platform.Presets.platform_b_slow

let average f rows =
  List.fold_left (fun acc r -> acc +. f r) 0. rows
  /. float_of_int (max 1 (List.length rows))

let render_figure (f : figure) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%s\n%s\n\n" f.fig_title
    (String.make (String.length f.fig_title) '='));
  let series =
    [
      {
        Barchart.label = "homogeneous [6]";
        values = List.map (fun r -> (r.fbench, r.homo)) f.frows;
      };
      {
        Barchart.label = "heterogeneous";
        values = List.map (fun r -> (r.fbench, r.hetero)) f.frows;
      };
    ]
  in
  Buffer.add_string buf (Barchart.render ~limit:f.theoretical series);
  Buffer.add_string buf
    (Printf.sprintf
       "\naverage: homogeneous %.2fx, heterogeneous %.2fx (theoretical max %.2fx)\n"
       (average (fun r -> r.homo) f.frows)
       (average (fun r -> r.hetero) f.frows)
       f.theoretical);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  tbench : string;
  homo_time_s : float;
  homo_ilps : int;
  homo_vars : int;
  homo_constrs : int;
  het_time_s : float;
  het_ilps : int;
  het_vars : int;
  het_constrs : int;
}

(** Table I statistics are collected from the parallelization runs on
    platform A in the accelerator scenario (shared with Figure 7a). *)
let table1 ctx : table1_row list =
  List.map
    (fun b ->
      let platform = Platform.Presets.platform_a_accel in
      let h = run ctx b platform P.Homogeneous in
      let t = run ctx b platform P.Heterogeneous in
      let hs = h.outcome.P.algo.Parcore.Algorithm.stats in
      let ts = t.outcome.P.algo.Parcore.Algorithm.stats in
      {
        tbench = b.Benchsuite.Suite.name;
        homo_time_s = h.outcome.P.algo.Parcore.Algorithm.wall_time_s;
        homo_ilps = hs.Ilp.Stats.ilps;
        homo_vars = hs.Ilp.Stats.vars;
        homo_constrs = hs.Ilp.Stats.constrs;
        het_time_s = t.outcome.P.algo.Parcore.Algorithm.wall_time_s;
        het_ilps = ts.Ilp.Stats.ilps;
        het_vars = ts.Ilp.Stats.vars;
        het_constrs = ts.Ilp.Stats.constrs;
      })
    Benchsuite.Suite.all

let render_table1 (rows : table1_row list) : string =
  let ratio a b = if a = 0 then nan else float_of_int b /. float_of_int a in
  let avg f =
    List.fold_left (fun acc r -> acc +. f r) 0. rows
    /. float_of_int (max 1 (List.length rows))
  in
  let data_rows =
    List.map
      (fun r ->
        [
          r.tbench;
          Table.fmt_time_mmss r.homo_time_s;
          Table.fmt_int r.homo_ilps;
          Table.fmt_int r.homo_vars;
          Table.fmt_int r.homo_constrs;
          Table.fmt_time_mmss r.het_time_s;
          Table.fmt_int r.het_ilps;
          Table.fmt_int r.het_vars;
          Table.fmt_int r.het_constrs;
          Table.fmt_factor (r.het_time_s /. Float.max 0.01 r.homo_time_s);
          Table.fmt_factor (ratio r.homo_ilps r.het_ilps);
          Table.fmt_factor (ratio r.homo_vars r.het_vars);
          Table.fmt_factor (ratio r.homo_constrs r.het_constrs);
        ])
      rows
  in
  let avg_row =
    [
      "average";
      Table.fmt_time_mmss (avg (fun r -> r.homo_time_s));
      Table.fmt_int (int_of_float (avg (fun r -> float_of_int r.homo_ilps)));
      Table.fmt_int (int_of_float (avg (fun r -> float_of_int r.homo_vars)));
      Table.fmt_int (int_of_float (avg (fun r -> float_of_int r.homo_constrs)));
      Table.fmt_time_mmss (avg (fun r -> r.het_time_s));
      Table.fmt_int (int_of_float (avg (fun r -> float_of_int r.het_ilps)));
      Table.fmt_int (int_of_float (avg (fun r -> float_of_int r.het_vars)));
      Table.fmt_int (int_of_float (avg (fun r -> float_of_int r.het_constrs)));
      Table.fmt_factor
        (avg (fun r -> r.het_time_s /. Float.max 0.01 r.homo_time_s));
      Table.fmt_factor (avg (fun r -> ratio r.homo_ilps r.het_ilps));
      Table.fmt_factor (avg (fun r -> ratio r.homo_vars r.het_vars));
      Table.fmt_factor (avg (fun r -> ratio r.homo_constrs r.het_constrs));
    ]
  in
  let header = "Table I: statistics of the ILP-based parallelization algorithms" in
  Printf.sprintf "%s\n%s\n\n%s" header
    (String.make (String.length header) '=')
    (Table.render
       [
         Table.col ~align:Table.Left "Benchmark";
         Table.col "hom Time";
         Table.col "hom #ILPs";
         Table.col "hom #Var";
         Table.col "hom #Constr";
         Table.col "het Time";
         Table.col "het #ILPs";
         Table.col "het #Var";
         Table.col "het #Constr";
         Table.col "fT";
         Table.col "fILPs";
         Table.col "fVar";
         Table.col "fConstr";
       ]
       (data_rows @ [ avg_row ]))

(* ------------------------------------------------------------------ *)
(* E6 ablation: what the mapping and the loop splitting contribute     *)
(* ------------------------------------------------------------------ *)

type ablation_row = {
  abench : string;
  full : float;  (** full heterogeneous approach *)
  no_split : float;  (** loop-iteration granularity disabled *)
  no_premap : float;  (** class tags dropped at implementation time *)
}

let ablation ctx (platform : Platform.Desc.t) : ablation_row list =
  List.map
    (fun b ->
      let prog, profile = compiled ctx b in
      let full = (run ctx b platform P.Heterogeneous).speedup in
      let no_split_cfg =
        { ctx.cfg with Parcore.Config.enable_loop_split = false }
      in
      let o2 =
        P.run_program ~cfg:no_split_cfg ~profile ~approach:P.Heterogeneous
          ~platform prog
      in
      let no_split = P.speedup o2 in
      (* same solution as full, but implemented ignoring the class tags *)
      let o3 = run ctx b platform P.Heterogeneous in
      let program_oblivious =
        Parcore.Implement.realize ~mode:Parcore.Implement.Oblivious platform
          o3.outcome.P.htg o3.outcome.P.algo.Parcore.Algorithm.root
      in
      let no_premap =
        Sim.Engine.run platform o3.outcome.P.seq_program
        /. Sim.Engine.run platform program_oblivious
      in
      { abench = b.Benchsuite.Suite.name; full; no_split; no_premap })
    Benchsuite.Suite.all

let render_ablation (rows : ablation_row list) : string =
  let header =
    "E6 ablation (platform A, accelerator): heterogeneous speedup decomposition"
  in
  Printf.sprintf "%s\n%s\n\n%s" header
    (String.make (String.length header) '=')
    (Table.render
       [
         Table.col ~align:Table.Left "Benchmark";
         Table.col "full";
         Table.col "no loop split";
         Table.col "no pre-mapping";
       ]
       (List.map
          (fun r ->
            [
              r.abench;
              Table.fmt_float r.full ^ "x";
              Table.fmt_float r.no_split ^ "x";
              Table.fmt_float r.no_premap ^ "x";
            ])
          rows))

(* ------------------------------------------------------------------ *)
(* E8: energy accounting (the paper's future-work objective)           *)
(* ------------------------------------------------------------------ *)

type energy_row = {
  ebench : string;
  seq_uj : float;
  homo_uj : float;
  het_uj : float;
  seq_edp : float;  (** energy-delay product, uJ * ms *)
  homo_edp : float;
  het_edp : float;
}

let energy_table ctx (platform : Platform.Desc.t) : energy_row list =
  List.map
    (fun b ->
      let h = run ctx b platform P.Homogeneous in
      let t = run ctx b platform P.Heterogeneous in
      let seq_m =
        Sim.Engine.run_metrics platform t.outcome.P.seq_program
      in
      let homo_m = Sim.Engine.run_metrics platform h.outcome.P.program in
      let het_m = Sim.Engine.run_metrics platform t.outcome.P.program in
      let edp (m : Sim.Engine.metrics) =
        m.Sim.Engine.energy_uj *. m.Sim.Engine.makespan_us /. 1000.
      in
      {
        ebench = b.Benchsuite.Suite.name;
        seq_uj = seq_m.Sim.Engine.energy_uj;
        homo_uj = homo_m.Sim.Engine.energy_uj;
        het_uj = het_m.Sim.Engine.energy_uj;
        seq_edp = edp seq_m;
        homo_edp = edp homo_m;
        het_edp = edp het_m;
      })
    Benchsuite.Suite.all

let render_energy (rows : energy_row list) : string =
  let header =
    "E8 energy (platform A, accelerator): active energy and energy-delay \
     product"
  in
  Printf.sprintf "%s\n%s\n\n%s" header
    (String.make (String.length header) '=')
    (Table.render
       [
         Table.col ~align:Table.Left "Benchmark";
         Table.col "seq uJ";
         Table.col "homo uJ";
         Table.col "het uJ";
         Table.col "seq EDP";
         Table.col "homo EDP";
         Table.col "het EDP";
       ]
       (List.map
          (fun r ->
            [
              r.ebench;
              Table.fmt_float ~decimals:0 r.seq_uj;
              Table.fmt_float ~decimals:0 r.homo_uj;
              Table.fmt_float ~decimals:0 r.het_uj;
              Table.fmt_float ~decimals:0 r.seq_edp;
              Table.fmt_float ~decimals:0 r.homo_edp;
              Table.fmt_float ~decimals:0 r.het_edp;
            ])
          rows))
