(** ASCII horizontal bar charts — the textual rendering of the paper's
    Figures 7 and 8 (two bars per benchmark: homogeneous [6] vs. the new
    heterogeneous approach, plus the theoretical-limit marker). *)

type series = { label : string; values : (string * float) list }

(** Render grouped bars: for every key, one bar per series.  [limit] draws
    a reference line value (the theoretical maximum speedup). *)
let render ?(width = 44) ?limit (series : series list) : string =
  let keys =
    match series with [] -> [] | s :: _ -> List.map fst s.values
  in
  let max_value =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc (_, v) -> Float.max acc v) acc s.values)
      (match limit with Some l -> l | None -> 0.)
      series
  in
  let max_value = Float.max max_value 1e-9 in
  let label_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 0 series
  in
  let key_width = List.fold_left (fun acc k -> max acc (String.length k)) 0 keys in
  let buf = Buffer.create 2048 in
  let bar v =
    let n = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
    String.make (max 0 (min width n)) '#'
  in
  List.iter
    (fun key ->
      List.iteri
        (fun i s ->
          let v = try List.assoc key s.values with Not_found -> nan in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s |%-*s| %5.2fx\n" key_width
               (if i = 0 then key else "")
               label_width s.label width (bar v) v))
        series;
      Buffer.add_char buf '\n')
    keys;
  (match limit with
  | Some l ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %-*s  %s^ theoretical limit %.2fx\n" key_width ""
           label_width ""
           (String.make
              (max 0 (int_of_float (Float.round (l /. max_value *. float_of_int width))))
              ' ')
           l)
  | None -> ());
  Buffer.contents buf
