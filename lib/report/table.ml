(** Minimal ASCII table renderer for the experiment reports. *)

type align = Left | Right

type column = { header : string; align : align }

let col ?(align = Right) header = { header; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

(** Render [columns] and [rows] into a boxed ASCII table. *)
let render (columns : column list) (rows : string list list) : string =
  let cols = Array.of_list columns in
  let widths =
    Array.map (fun c -> String.length c.header) cols
  in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < Array.length widths then
            widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        if i < Array.length widths then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf (pad cols.(i).align widths.(i) cell);
          Buffer.add_string buf " |"
        end)
      cells;
    Buffer.add_char buf '\n'
  in
  sep ();
  emit_row (List.map (fun c -> c.header) (Array.to_list cols));
  sep ();
  List.iter emit_row rows;
  sep ();
  Buffer.contents buf

let fmt_float ?(decimals = 2) f =
  if Float.is_nan f then "-" else Printf.sprintf "%.*f" decimals f

let fmt_factor f =
  if Float.is_nan f then "-" else Printf.sprintf "%.1fx" f

let fmt_int n =
  (* thousands separators, as in the paper's Table I *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 && c <> '-' then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_time_mmss seconds =
  let total = int_of_float (Float.round seconds) in
  Printf.sprintf "%02d:%02d" (total / 60) (total mod 60)
