(** Shared-interconnect communication model: a transfer of [b] bytes costs
    [startup + b * per_byte] microseconds; the bus is serial, so
    concurrent transfers queue in the simulator. *)

type t = { startup_us : float; per_byte_us : float }

val show : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val make : startup_us:float -> per_byte_us:float -> t

(** Cost in microseconds of transferring [bytes] bytes. *)
val transfer_us : t -> int -> float

(** The paper's evaluation setup: 0.5 us per-transfer synchronization and
    800 MB/s effective shared-L2 bandwidth. *)
val default : t
