(** A processor class: a set of identical processing units of the target
    heterogeneous MPSoC (e.g. "the two Cortex-A15 at 500 MHz").  The
    parallelizer maps tasks to classes, not to individual units — exactly
    the granularity the paper's ILP model uses. *)

type t = {
  name : string;
  freq_mhz : float;  (** clock frequency *)
  cpi : float;  (** cycles-per-abstract-instruction multiplier; 1.0 for the
                    reference pipeline.  Allows modelling same-ISA cores
                    with different micro-architectures, cf. big.LITTLE *)
  count : int;  (** number of identical units of this class *)
  power_mw : float;
      (** active power of one unit.  Defaults to a DVFS-style curve
          [P = 20 mW * (f/100MHz)^1.5], under which fast cores burn more
          energy per cycle — the big.LITTLE tradeoff.  Used by the
          simulator's energy accounting (the "energy consumption"
          objective the paper names as future work). *)
}
[@@deriving show, eq]

let default_power_mw ~freq_mhz = 20. *. Float.pow (freq_mhz /. 100.) 1.5

let invalid ~name msg =
  Mpsoc_error.raise_error ~location:name ~phase:Mpsoc_error.Platform
    ~kind:Mpsoc_error.Invalid_input msg

let make ?(cpi = 1.0) ?power_mw ~name ~freq_mhz ~count () =
  if not (Float.is_finite freq_mhz) || freq_mhz <= 0. then
    invalid ~name (Printf.sprintf "freq_mhz must be finite and > 0, got %g" freq_mhz);
  if not (Float.is_finite cpi) || cpi <= 0. then
    invalid ~name (Printf.sprintf "cpi must be finite and > 0, got %g" cpi);
  if count < 1 then
    invalid ~name (Printf.sprintf "count must be >= 1, got %d" count);
  let power_mw =
    match power_mw with
    | Some p when (not (Float.is_finite p)) || p <= 0. ->
        invalid ~name (Printf.sprintf "power_mw must be finite and > 0, got %g" p)
    | Some p -> p
    | None -> default_power_mw ~freq_mhz
  in
  { name; freq_mhz; cpi; count; power_mw }

(** Effective speed in abstract cycles per microsecond. *)
let speed t = t.freq_mhz /. t.cpi

(** Time in microseconds to execute [cycles] abstract cycles on one unit of
    this class. *)
let time_us t cycles = cycles *. t.cpi /. t.freq_mhz

(** Energy in microjoules to keep one unit busy for [us] microseconds. *)
let energy_uj t us = t.power_mw *. us /. 1000.
