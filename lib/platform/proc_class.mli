(** A processor class: a set of identical processing units of the target
    heterogeneous MPSoC (e.g. "the two Cortex-A15 at 500 MHz").  The
    parallelizer maps tasks to classes, not to individual units. *)

type t = {
  name : string;
  freq_mhz : float;
  cpi : float;
      (** cycles-per-abstract-instruction multiplier; 1.0 for the
          reference pipeline *)
  count : int;  (** number of identical units of this class *)
  power_mw : float;  (** active power of one unit *)
}

val show : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Default DVFS-style power curve [P = 20 mW * (f/100MHz)^1.5]. *)
val default_power_mw : freq_mhz:float -> float

val make :
  ?cpi:float ->
  ?power_mw:float ->
  name:string ->
  freq_mhz:float ->
  count:int ->
  unit ->
  t

(** Effective speed in abstract cycles per microsecond. *)
val speed : t -> float

(** Time in microseconds for [cycles] abstract cycles on one unit. *)
val time_us : t -> float -> float

(** Energy in microjoules for [us] microseconds of busy time. *)
val energy_uj : t -> float -> float
