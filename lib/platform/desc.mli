(** Target platform description (the MACCv2-style description of the
    paper's tool flow): processor classes, a communication model, the task
    creation overhead, and the designation of the {e main} class — the
    class executing the sequential parts of the application and the
    baseline for speedup measurements. *)

type t = {
  name : string;
  classes : Proc_class.t array;
  main_class : int;  (** index into [classes] *)
  comm : Comm.t;
  tco_us : float;  (** task creation overhead, microseconds per task *)
}

val show : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val make :
  ?comm:Comm.t ->
  ?tco_us:float ->
  name:string ->
  classes:Proc_class.t list ->
  main_class:int ->
  unit ->
  t

val num_classes : t -> int
val proc_class : t -> int -> Proc_class.t
val main : t -> Proc_class.t
val total_units : t -> int
val units_per_class : t -> int array
val class_index : t -> string -> int option

(** [sum_i count_i * speed_i / speed_main] — the dashed line of the
    paper's Figures 7 and 8. *)
val theoretical_speedup : t -> float

(** Time in microseconds for [cycles] abstract cycles on class [cls]. *)
val time_us : t -> cls:int -> float -> float

(** The class-blind view a homogeneous parallelizer has of the machine:
    one class, all units, main-class speed. *)
val homogeneous_view : t -> t

(** Switch the main class (scenario I vs. II). *)
val with_main_class : t -> main_class:int -> t

val pp_summary : Format.formatter -> t -> unit
