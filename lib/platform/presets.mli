(** The evaluation platforms of the paper (Section VI) plus extra presets.

    Platform (A): ARM cores at 100 (1x), 250 (1x) and 500 MHz (2x).
    Platform (B): two 200 MHz + two 500 MHz cores (≈ big.LITTLE's 2.5x).
    Scenario I ("accelerator"): the main processor is a slow core.
    Scenario II ("slower cores"): the main processor is a fast core. *)

val platform_a_accel : Desc.t  (** limit 13.5x *)

val platform_a_slow : Desc.t  (** limit 2.7x *)

val platform_b_accel : Desc.t  (** limit 7x *)

val platform_b_slow : Desc.t  (** limit 2.8x *)

(** 4 LITTLE + 4 big cores, for the examples. *)
val biglittle : Desc.t

(** A homogeneous quad-core, for sanity baselines in tests. *)
val quad_homog : Desc.t

val all : (string * Desc.t) list
val find : string -> Desc.t option
