(** Target platform description, the substitute for the MACCv2-style
    description of [Pyka et al., LCTES 2010] the paper consumes.

    A platform is a set of processor classes, a communication model, a task
    creation overhead, and the designation of the *main* processor class —
    the class executing the sequential parts of the application and the
    baseline for all speedup measurements (Section VI of the paper). *)

type t = {
  name : string;
  classes : Proc_class.t array;
  main_class : int;  (** index into [classes] *)
  comm : Comm.t;
  tco_us : float;  (** task creation overhead, microseconds per task *)
}
[@@deriving show, eq]

let invalid ?location ?advice msg =
  Mpsoc_error.raise_error ?location ?advice ~phase:Mpsoc_error.Platform
    ~kind:Mpsoc_error.Invalid_input msg

let make ?(comm = Comm.default) ?(tco_us = 2.0) ~name ~classes ~main_class () =
  let classes = Array.of_list classes in
  if Array.length classes = 0 then
    invalid ~location:name ~advice:"declare at least one `class' entry"
      "platform has no processor classes";
  if main_class < 0 || main_class >= Array.length classes then
    invalid ~location:name
      ~advice:"main_class must name one of the declared classes"
      (Printf.sprintf "main_class index %d out of range (have %d classes)"
         main_class (Array.length classes));
  if not (Float.is_finite tco_us) || tco_us < 0. then
    invalid ~location:name ~advice:"tco_us must be a finite value >= 0"
      (Printf.sprintf "invalid task creation overhead %g us" tco_us);
  let names = Array.to_list (Array.map (fun c -> c.Proc_class.name) classes) in
  (match
     List.filter
       (fun n -> List.length (List.filter (String.equal n) names) > 1)
       (List.sort_uniq String.compare names)
   with
  | [] -> ()
  | dup :: _ ->
      invalid ~location:dup ~advice:"give every processor class a unique name"
        (Printf.sprintf "duplicate processor class name %S" dup));
  { name; classes; main_class; comm; tco_us }

let num_classes t = Array.length t.classes
let proc_class t c = t.classes.(c)
let main t = t.classes.(t.main_class)

(** Total number of processing units. *)
let total_units t =
  Array.fold_left (fun acc c -> acc + c.Proc_class.count) 0 t.classes

(** Units per class as an array indexed like [classes]. *)
let units_per_class t = Array.map (fun c -> c.Proc_class.count) t.classes

(** Index of the class named [name]. *)
let class_index t name =
  let rec go i =
    if i >= Array.length t.classes then None
    else if String.equal t.classes.(i).Proc_class.name name then Some i
    else go (i + 1)
  in
  go 0

(** Theoretical maximum speedup over sequential execution on the main
    class, [sum_i count_i * speed_i / speed_main] — the dashed line of the
    paper's Figures 7 and 8. *)
let theoretical_speedup t =
  let total =
    Array.fold_left
      (fun acc c -> acc +. (float_of_int c.Proc_class.count *. Proc_class.speed c))
      0. t.classes
  in
  total /. Proc_class.speed (main t)

(** Time in microseconds for [cycles] abstract cycles on class [c]. *)
let time_us t ~cls cycles = Proc_class.time_us t.classes.(cls) cycles

(** A copy of the platform where every unit belongs to a single class that
    behaves like the main class — the view a *homogeneous* parallelizer
    (the paper's baseline [6]) has of the machine. *)
let homogeneous_view t =
  let main_c = main t in
  let merged =
    {
      main_c with
      Proc_class.name = main_c.Proc_class.name ^ "_homog";
      count = total_units t;
    }
  in
  { t with
    name = t.name ^ " (homogeneous view)";
    classes = [| merged |];
    main_class = 0;
  }

(** Switch which class is the main one (used for scenario I vs II). *)
let with_main_class t ~main_class =
  if main_class < 0 || main_class >= Array.length t.classes then
    invalid ~location:t.name
      ~advice:"pick a main class index within the declared classes"
      (Printf.sprintf "with_main_class: index %d out of range (have %d classes)"
         main_class (Array.length t.classes));
  { t with main_class }

let pp_summary ppf t =
  Fmt.pf ppf "%s: " t.name;
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "%s%dx%s@%.0fMHz%s" (if i > 0 then ", " else "")
        c.Proc_class.count c.Proc_class.name c.Proc_class.freq_mhz
        (if i = t.main_class then " (main)" else ""))
    t.classes;
  Fmt.pf ppf "; tco=%.1fus, bus=%.1fus+%.4fus/B" t.tco_us t.comm.Comm.startup_us
    t.comm.Comm.per_byte_us
