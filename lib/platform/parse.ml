(** Parser for a small textual platform description format, the stand-in
    for the MACCv2 XML descriptions used by the paper's tool flow.

    Format (one directive per line, '#' comments):
    {v
      platform my-soc
      class little freq 1000 cpi 1.6 count 4
      class big    freq 1800 count 4 main
      bus startup 2.0 per_byte 0.005
      tco 2.0
    v}
    Exactly one class must carry the [main] marker. *)

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type accum = {
  mutable name : string;
  mutable classes : (Proc_class.t * bool) list;  (** class, is_main *)
  mutable comm : Comm.t;
  mutable tco : float;
}

let parse_class_line words lineno =
  let rec fields = function
    | [] -> []
    | [ "main" ] -> [ ("main", "true") ]
    | "main" :: rest -> ("main", "true") :: fields rest
    | k :: v :: rest -> (k, v) :: fields rest
    | [ k ] -> err "line %d: missing value for %s" lineno k
  in
  match words with
  | name :: rest ->
      let kvs = fields rest in
      let get_float k default =
        match List.assoc_opt k kvs with
        | None -> default
        | Some v -> (
            match float_of_string_opt v with
            | Some f -> f
            | None -> err "line %d: bad number %s for %s" lineno v k)
      in
      let freq = get_float "freq" 0. in
      if (not (Float.is_finite freq)) || freq <= 0. then
        err "line %d: class %s needs a finite freq > 0" lineno name;
      let cpi = get_float "cpi" 1.0 in
      if (not (Float.is_finite cpi)) || cpi <= 0. then
        err "line %d: class %s needs a finite cpi > 0" lineno name;
      let count_f = get_float "count" 1. in
      (* [int_of_float nan] is 0 and a huge count would blow up the ILP
         model size, so bound-check before converting *)
      if
        (not (Float.is_finite count_f))
        || count_f < 1.
        || count_f > 65536.
        || Float.rem count_f 1. <> 0.
      then err "line %d: class %s needs an integer count in [1, 65536]" lineno name;
      let count = int_of_float count_f in
      let power = get_float "power" 0. in
      if not (Float.is_finite power) then
        err "line %d: class %s has a non-finite power" lineno name;
      let is_main = List.mem_assoc "main" kvs in
      let pc =
        if power > 0. then
          Proc_class.make ~name ~freq_mhz:freq ~cpi ~count ~power_mw:power ()
        else Proc_class.make ~name ~freq_mhz:freq ~cpi ~count ()
      in
      (pc, is_main)
  | [] -> err "line %d: class needs a name" lineno

(** Parse a platform description from a string. *)
let of_string src : Desc.t =
  let acc =
    { name = "unnamed"; classes = []; comm = Comm.default; tco = 2.0 }
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some k -> String.sub line 0 k
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> String.length w > 0)
      in
      match words with
      | [] -> ()
      | "platform" :: rest -> acc.name <- String.concat " " rest
      | "class" :: rest ->
          acc.classes <- acc.classes @ [ parse_class_line rest lineno ]
      | [ "bus"; "startup"; s; "per_byte"; p ] -> (
          match (float_of_string_opt s, float_of_string_opt p) with
          | Some s, Some p -> acc.comm <- Comm.make ~startup_us:s ~per_byte_us:p
          | _ -> err "line %d: bad bus parameters" lineno)
      | [ "tco"; v ] -> (
          match float_of_string_opt v with
          | Some f when Float.is_finite f && f >= 0. -> acc.tco <- f
          | _ -> err "line %d: bad tco value" lineno)
      | w :: _ -> err "line %d: unknown directive %s" lineno w)
    lines;
  if List.length acc.classes = 0 then err "no processor classes declared";
  let mains =
    List.mapi (fun i (_, m) -> (i, m)) acc.classes
    |> List.filter snd |> List.map fst
  in
  let main_class =
    match mains with
    | [ i ] -> i
    | [] -> err "no class is marked main"
    | _ -> err "multiple classes are marked main"
  in
  Desc.make ~name:acc.name
    ~classes:(List.map fst acc.classes)
    ~main_class ~comm:acc.comm ~tco_us:acc.tco ()

let of_file path =
  Fault.point "platform.io";
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)

let wrap_errors f =
  match f () with
  | desc -> Ok desc
  | exception Error msg ->
      Error
        (Mpsoc_error.make ~phase:Mpsoc_error.Platform
           ~kind:Mpsoc_error.Invalid_input
           ~advice:
             "see `platform', `class', `bus' and `tco' directives in the docs"
           msg)
  | exception Mpsoc_error.Error e -> Error e
  | exception Sys_error msg ->
      Error
        (Mpsoc_error.make ~phase:Mpsoc_error.Platform
           ~kind:Mpsoc_error.Invalid_input
           ~advice:"check the platform file path and permissions" msg)
  | exception Fault.Injected { point; _ } ->
      Error
        (Mpsoc_error.make ~phase:Mpsoc_error.Platform
           ~kind:(Mpsoc_error.Fault_injected point) "injected platform I/O fault")

let of_string_result src = wrap_errors (fun () -> of_string src)
let of_file_result path = wrap_errors (fun () -> of_file path)

(** Render a platform back into the textual format ([of_string] inverse). *)
let to_string (p : Desc.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "platform %s\n" p.Desc.name);
  Array.iteri
    (fun i (c : Proc_class.t) ->
      Buffer.add_string buf
        (Printf.sprintf "class %s freq %g cpi %g count %d power %g%s\n" c.name
           c.freq_mhz c.cpi c.count c.power_mw
           (if i = p.Desc.main_class then " main" else "")))
    p.Desc.classes;
  Buffer.add_string buf
    (Printf.sprintf "bus startup %g per_byte %g\n" p.Desc.comm.Comm.startup_us
       p.Desc.comm.Comm.per_byte_us);
  Buffer.add_string buf (Printf.sprintf "tco %g\n" p.Desc.tco_us);
  Buffer.contents buf
