(** Parser for the textual platform description format (the stand-in for
    the MACCv2 descriptions of the paper's tool flow):

    {v
      platform my-soc
      class little freq 1000 cpi 1.6 count 4 power 150
      class big   freq 1800 count 4 main
      bus startup 0.5 per_byte 0.00125
      tco 2.0
    v}

    Exactly one class must carry the [main] marker; [cpi], [count] and
    [power] are optional per class. *)

exception Error of string

val of_string : string -> Desc.t
val of_file : string -> Desc.t

val of_string_result : string -> (Desc.t, Mpsoc_error.t) result
(** Like {!of_string} but never raises: parse errors, invalid platform
    values and injected I/O faults come back as {!Mpsoc_error.t}. *)

val of_file_result : string -> (Desc.t, Mpsoc_error.t) result
(** Like {!of_string_result} for a file; also catches [Sys_error]. *)

(** Render a platform back into the textual format. *)
val to_string : Desc.t -> string
