(** The two evaluation platforms of the paper (Section VI) plus a
    big.LITTLE-style preset for the examples.

    Platform (A): four ARM cores at 100 MHz (1x), 250 MHz (1x) and
    500 MHz (2x) — "large performance variances".
    Platform (B): two 200 MHz and two 500 MHz cores — approximately the
    2.5x discrepancy of ARM big.LITTLE.

    Scenario I ("accelerator"): the main processor is a *slow* core and the
    faster units are accelerators.  Scenario II ("slower cores"): the main
    processor is a *fast* core and the slower units were added e.g. for
    power or thermal reasons. *)

let mk_class = Proc_class.make

(** Platform (A), scenario I: main = the 100 MHz core.
    Theoretical speedup limit (1*100 + 1*250 + 2*500)/100 = 13.5x. *)
let platform_a_accel =
  Desc.make ~name:"A/accelerator"
    ~classes:
      [
        mk_class ~name:"arm100" ~freq_mhz:100. ~count:1 ();
        mk_class ~name:"arm250" ~freq_mhz:250. ~count:1 ();
        mk_class ~name:"arm500" ~freq_mhz:500. ~count:2 ();
      ]
    ~main_class:0 ()

(** Platform (A), scenario II: main = a 500 MHz core.
    Theoretical limit (1*100 + 1*250 + 2*500)/500 = 2.7x. *)
let platform_a_slow =
  { (Desc.with_main_class platform_a_accel ~main_class:2) with
    Desc.name = "A/slower-cores" }

(** Platform (B), scenario I: main = a 200 MHz core.
    Theoretical limit (2*200 + 2*500)/200 = 7x. *)
let platform_b_accel =
  Desc.make ~name:"B/accelerator"
    ~classes:
      [
        mk_class ~name:"arm200" ~freq_mhz:200. ~count:2 ();
        mk_class ~name:"arm500" ~freq_mhz:500. ~count:2 ();
      ]
    ~main_class:0 ()

(** Platform (B), scenario II: main = a 500 MHz core.
    Theoretical limit (2*200 + 2*500)/500 = 2.8x. *)
let platform_b_slow =
  { (Desc.with_main_class platform_b_accel ~main_class:1) with
    Desc.name = "B/slower-cores" }

(** ARM big.LITTLE-style preset for examples: 4 LITTLE (A7-like, slower and
    higher CPI) + 4 big (A15-like). *)
let biglittle =
  Desc.make ~name:"big.LITTLE"
    ~classes:
      [
        mk_class ~name:"little" ~freq_mhz:1000. ~cpi:1.6 ~count:4 ();
        mk_class ~name:"big" ~freq_mhz:1800. ~cpi:1.0 ~count:4 ();
      ]
    ~main_class:1 ()

(** A homogeneous quad-core, for sanity baselines in tests. *)
let quad_homog =
  Desc.make ~name:"quad-homogeneous"
    ~classes:[ mk_class ~name:"core" ~freq_mhz:400. ~count:4 () ]
    ~main_class:0 ()

let all =
  [
    ("platform-a-accel", platform_a_accel);
    ("platform-a-slow", platform_a_slow);
    ("platform-b-accel", platform_b_accel);
    ("platform-b-slow", platform_b_slow);
    ("biglittle", biglittle);
    ("quad-homog", quad_homog);
  ]

let find name = List.assoc_opt name all
