(** Shared-interconnect communication model: a high-performance bus with a
    level-2 cache shared by all cores (the configuration the paper
    evaluates).  A transfer of [b] bytes between two tasks on different
    processing units costs [startup + b * per_byte] microseconds; the bus
    is a serial resource, so concurrent transfers queue (modelled by the
    simulator's bus process). *)

type t = {
  startup_us : float;  (** per-transfer synchronization/arbitration cost *)
  per_byte_us : float;  (** inverse bandwidth *)
}
[@@deriving show, eq]

let make ~startup_us ~per_byte_us =
  if startup_us < 0. || per_byte_us < 0. then
    invalid_arg "Comm.make: negative cost";
  { startup_us; per_byte_us }

(** Cost in microseconds of transferring [bytes] bytes. *)
let transfer_us t bytes = t.startup_us +. (float_of_int bytes *. t.per_byte_us)

(** Default bus, matching the paper's evaluation setup ("all cores are
    connected with a level 2 cache on a high performance bus to enable
    fast memory accesses for shared data"): 0.5 us per-transfer
    synchronization and 800 MB/s effective shared-L2 bandwidth
    (0.00125 us/byte). *)
let default = { startup_us = 0.5; per_byte_us = 0.00125 }
