(** UTDSP [latnrm_32]: 32nd-order normalized lattice filter.  The lattice
    recurrence is strictly sequential in both the sample and the stage
    dimension, so the only options for the parallelizer are offloading the
    chain to a faster class (scenario I) and splitting the windowing /
    normalization stages — with sizeable arrays moving between stages,
    this is one of the paper's communication-bound weak cases. *)

let name = "latnrm_32"
let description = "32nd-order normalized lattice filter, 4096 samples"

let source =
  {|
/* latnrm_32: normalized lattice filter */
float x[4096];
float w[4096];
float y[4096];
float out[4096];
float ck[32];
float cv[32];

int main() {
  int i;
  int n;
  int chk;
  float energy;

  for (i = 0; i < 32; i = i + 1) {
    ck[i] = 0.05 + 0.01 * (i % 7);
    cv[i] = 0.9 - 0.02 * (i % 5);
  }
  for (i = 0; i < 4096; i = i + 1) {
    x[i] = sin(i * 0.013) * 0.7 + ((i * 11) % 19) * 0.02;
  }

  /* windowing: DOALL */
  for (n = 0; n < 4096; n = n + 1) {
    w[n] = x[n] * (0.54 - 0.46 * cos(n * 0.0015339808));
  }

  /* normalized lattice: sequential recurrence over samples and stages */
  {
    float st[32];
    int k;
    for (k = 0; k < 32; k = k + 1) {
      st[k] = 0.0;
    }
    for (n = 0; n < 4096; n = n + 1) {
      float f;
      float b;
      f = w[n];
      b = w[n];
      for (k = 0; k < 32; k = k + 1) {
        float fnext;
        fnext = f - ck[k] * st[k];
        b = st[k] + ck[k] * fnext;
        st[k] = b * cv[k];
        f = fnext;
      }
      y[n] = f;
    }
  }

  /* energy: sequential reduction */
  energy = 0.0;
  for (n = 0; n < 4096; n = n + 1) {
    energy = energy + y[n] * y[n];
  }
  energy = sqrt(energy / 4096.0) + 0.001;

  /* normalization: DOALL */
  for (n = 0; n < 4096; n = n + 1) {
    out[n] = y[n] / energy;
  }

  chk = 0;
  for (n = 0; n < 4096; n = n + 16) {
    chk = chk + (int) (out[n] * 100.0);
  }
  return chk;
}
|}
