(** The boundary value problem from the paper's evaluation: iterative
    Jacobi relaxation of a 1-D two-point boundary value problem.  The
    outer time loop carries a dependence; both inner sweeps are DOALL with
    a fresh fork per sweep — the kernel the paper reports 11-12x on. *)

let name = "boundary_value"
let description = "1-D boundary value problem, Jacobi relaxation (50 sweeps)"

let source =
  {|
/* boundary value problem: u'' = f with Dirichlet boundaries */
float u[4098];
float unew[4098];
float f[4098];

int main() {
  int i;
  int t;
  int chk;

  for (i = 0; i < 4098; i = i + 1) {
    u[i] = 0.0;
    f[i] = 0.001 * ((i % 37) - 18);
  }
  u[0] = 1.0;
  u[4097] = -1.0;
  unew[0] = 1.0;
  unew[4097] = -1.0;

  for (t = 0; t < 50; t = t + 1) {
    for (i = 1; i < 4097; i = i + 1) {
      unew[i] = 0.5 * (u[i - 1] + u[i + 1]) - f[i];
    }
    for (i = 1; i < 4097; i = i + 1) {
      u[i] = unew[i];
    }
  }

  chk = 0;
  for (i = 0; i < 4098; i = i + 16) {
    chk = chk + (int) (u[i] * 1000.0);
  }
  return chk;
}
|}
