(** UTDSP [edge_detect]: Sobel gradient magnitude with thresholding over a
    256x256 image (258x258 with a halo).  The row loop is DOALL. *)

let name = "edge_detect"
let description = "Sobel edge detection, 256x256 image"

let source =
  {|
/* edge_detect: Sobel operator + threshold */
float img[258][258];
float mag[258][258];

int main() {
  int i;
  int j;
  int chk;

  for (i = 0; i < 258; i = i + 1) {
    for (j = 0; j < 258; j = j + 1) {
      img[i][j] = ((i * 17 + j * 31) % 64) * 0.03 + ((i * j) % 7) * 0.1;
    }
  }

  for (i = 1; i < 257; i = i + 1) {
    for (j = 1; j < 257; j = j + 1) {
      float gx;
      float gy;
      float g;
      gx = img[i - 1][j + 1] + 2.0 * img[i][j + 1] + img[i + 1][j + 1]
         - img[i - 1][j - 1] - 2.0 * img[i][j - 1] - img[i + 1][j - 1];
      gy = img[i + 1][j - 1] + 2.0 * img[i + 1][j] + img[i + 1][j + 1]
         - img[i - 1][j - 1] - 2.0 * img[i - 1][j] - img[i - 1][j + 1];
      g = fabs(gx) + fabs(gy);
      if (g > 2.0) {
        mag[i][j] = 1.0;
      } else {
        mag[i][j] = g * 0.5;
      }
    }
  }

  chk = 0;
  for (i = 1; i < 257; i = i + 8) {
    for (j = 1; j < 257; j = j + 8) {
      chk = chk + (int) (mag[i][j] * 4.0);
    }
  }
  return chk;
}
|}
