(** UTDSP [filterbank]: an 8-channel analysis filterbank (64-tap FIR per
    channel) followed by a recombination stage.  The channel loop is
    DOALL with heavy per-channel work — the largest kernel of the suite. *)

let name = "filterbank"
let description = "8-channel 64-tap filterbank over 2048 samples"

let source =
  {|
/* filterbank: 8 channels x 64-tap FIR + recombination */
float x[2112];
float h[8][64];
float sub[8][2048];
float out[2048];

int main() {
  int ch;
  int n;
  int chk;

  for (n = 0; n < 2112; n = n + 1) {
    x[n] = sin(n * 0.021) * 0.6 + ((n * 7) % 41) * 0.01;
  }
  for (ch = 0; ch < 8; ch = ch + 1) {
    for (n = 0; n < 64; n = n + 1) {
      h[ch][n] = cos(n * (0.02 + ch * 0.015)) * 0.015;
    }
  }

  /* analysis: DOALL over channels */
  for (ch = 0; ch < 8; ch = ch + 1) {
    int m;
    for (m = 0; m < 2048; m = m + 1) {
      float acc;
      int k;
      acc = 0.0;
      for (k = 0; k < 64; k = k + 1) {
        acc = acc + h[ch][k] * x[m + k];
      }
      sub[ch][m] = acc;
    }
  }

  /* recombination: DOALL over samples */
  for (n = 0; n < 2048; n = n + 1) {
    float s;
    int c2;
    s = 0.0;
    for (c2 = 0; c2 < 8; c2 = c2 + 1) {
      s = s + sub[c2][n];
    }
    out[n] = s * 0.125;
  }

  chk = 0;
  for (n = 0; n < 2048; n = n + 16) {
    chk = chk + (int) (out[n] * 1000.0);
  }
  return chk;
}
|}
