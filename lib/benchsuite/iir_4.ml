(** UTDSP [iir_4]: cascade of four direct-form-II biquad sections applied
    to eight independent channels.  The per-sample recurrence serializes a
    channel; the channel loop is DOALL (8 iterations). *)

let name = "iir_4"
let description = "4-section IIR biquad cascade, 8 channels x 4096 samples"

let source =
  {|
/* iir_4: 4-section biquad cascade */
float x[8][4096];
float y[8][4096];
float cb0[4];
float cb1[4];
float cb2[4];
float ca1[4];
float ca2[4];

int main() {
  int ch;
  int i;
  int s;
  int chk;

  for (s = 0; s < 4; s = s + 1) {
    cb0[s] = 0.2 + s * 0.01;
    cb1[s] = 0.3 - s * 0.02;
    cb2[s] = 0.1 + s * 0.005;
    ca1[s] = 0.4 - s * 0.03;
    ca2[s] = 0.1 + s * 0.01;
  }
  for (ch = 0; ch < 8; ch = ch + 1) {
    for (i = 0; i < 4096; i = i + 1) {
      x[ch][i] = ((i * 29 + ch * 101) % 128) * 0.01 - 0.64;
    }
  }

  for (ch = 0; ch < 8; ch = ch + 1) {
    float z0[4];
    float z1[4];
    int n;
    int sec;
    for (sec = 0; sec < 4; sec = sec + 1) {
      z0[sec] = 0.0;
      z1[sec] = 0.0;
    }
    for (n = 0; n < 4096; n = n + 1) {
      float v;
      v = x[ch][n];
      for (sec = 0; sec < 4; sec = sec + 1) {
        float w;
        w = v - ca1[sec] * z0[sec] - ca2[sec] * z1[sec];
        v = cb0[sec] * w + cb1[sec] * z0[sec] + cb2[sec] * z1[sec];
        z1[sec] = z0[sec];
        z0[sec] = w;
      }
      y[ch][n] = v;
    }
  }

  chk = 0;
  for (ch = 0; ch < 8; ch = ch + 1) {
    for (i = 0; i < 4096; i = i + 32) {
      chk = chk + (int) (y[ch][i] * 50.0);
    }
  }
  return chk;
}
|}
