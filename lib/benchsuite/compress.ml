(** UTDSP [compress]: DCT-based image compression.  A 128x128 image stored
    block-major (256 blocks of 8x8) is transformed by a separable 2-D DCT
    and quantized; the per-block loop is DOALL.  Exercises user-defined
    functions in the hot loop (the inliner's by-name propagation keeps the
    block index visible to the loop analyses). *)

let name = "compress"
let description = "DCT image compression, 256 blocks of 8x8"

let source =
  {|
/* compress: block DCT + quantization */
float img[256][8][8];
float tmp[256][8][8];
float coef[256][8][8];
float cosm[8][8];
int qout[256][8][8];

/* one DCT pass over the rows of block blk: b[blk] = cm * a[blk] */
void dct_rows(float a[256][8][8], float b[256][8][8], float cm[8][8], int blk) {
  int u;
  int yy;
  for (u = 0; u < 8; u = u + 1) {
    for (yy = 0; yy < 8; yy = yy + 1) {
      float s;
      int xx;
      s = 0.0;
      for (xx = 0; xx < 8; xx = xx + 1) {
        s = s + cm[u][xx] * a[blk][xx][yy];
      }
      b[blk][u][yy] = s;
    }
  }
}

/* second pass over columns: c[blk] = b[blk] * cm^T */
void dct_cols(float b[256][8][8], float c[256][8][8], float cm[8][8], int blk) {
  int u;
  int v;
  for (u = 0; u < 8; u = u + 1) {
    for (v = 0; v < 8; v = v + 1) {
      float s;
      int xx;
      s = 0.0;
      for (xx = 0; xx < 8; xx = xx + 1) {
        s = s + b[blk][u][xx] * cm[v][xx];
      }
      c[blk][u][v] = s;
    }
  }
}

int main() {
  int blk;
  int i;
  int j;
  int chk;

  /* DCT basis */
  for (i = 0; i < 8; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      cosm[i][j] = cos((2 * j + 1) * i * 0.19634954) * 0.5;
    }
  }
  /* synthetic image, index-derived */
  for (blk = 0; blk < 256; blk = blk + 1) {
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        img[blk][i][j] = ((blk * 7 + i * 13 + j * 29) % 256) - 128.0;
      }
    }
  }

  /* per-block 2-D DCT and quantization */
  for (blk = 0; blk < 256; blk = blk + 1) {
    int u;
    int v;
    dct_rows(img, tmp, cosm, blk);
    dct_cols(tmp, coef, cosm, blk);
    for (u = 0; u < 8; u = u + 1) {
      for (v = 0; v < 8; v = v + 1) {
        float q;
        q = 1.0 + (u + v) * 2.0;
        qout[blk][u][v] = (int) (coef[blk][u][v] / q);
      }
    }
  }

  chk = 0;
  for (blk = 0; blk < 256; blk = blk + 8) {
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        chk = chk + qout[blk][i][j] % 16;
      }
    }
  }
  return chk;
}
|}
