(** UTDSP [fir_256]: 256-tap finite impulse response filter over a 2048
    sample signal.  The output loop is DOALL (the accumulator is a
    per-iteration private), so the parallelizer can split its iteration
    range across processor classes. *)

let name = "fir_256"
let description = "256-tap FIR filter, 2048 output samples"

let source =
  {|
/* fir_256: 256-tap FIR filter */
float x[2304];
float c[256];
float y[2048];

int main() {
  int i;
  int n;
  int seed;
  int chk;

  /* deterministic input signal (LCG) - inherently sequential init */
  seed = 7;
  for (i = 0; i < 2304; i = i + 1) {
    seed = (seed * 1103 + 12345) % 65536;
    x[i] = (seed - 32768) * 0.0001;
  }
  /* coefficients from a closed form - parallelizable init */
  for (i = 0; i < 256; i = i + 1) {
    c[i] = sin(0.01 * i) * 0.01 + 0.002;
  }

  /* the filter itself: y[n] = sum_k c[k] * x[n+k] */
  for (n = 0; n < 2048; n = n + 1) {
    float acc;
    int k;
    acc = 0.0;
    for (k = 0; k < 256; k = k + 1) {
      acc = acc + c[k] * x[n + k];
    }
    y[n] = acc;
  }

  chk = 0;
  for (n = 0; n < 2048; n = n + 16) {
    chk = chk + (int) (y[n] * 100.0);
  }
  return chk;
}
|}
