(** The benchmark suite of the paper's evaluation (Section VI): the UTDSP
    kernels plus the boundary value problem, rewritten in Mini-C with the
    dependence structure of the originals (DOALL-dominated vs.
    recurrence-dominated vs. communication-bound). *)

type t = { name : string; description : string; source : string }

let all : t list =
  [
    { name = Adpcm_enc.name; description = Adpcm_enc.description; source = Adpcm_enc.source };
    { name = Boundary_value.name; description = Boundary_value.description; source = Boundary_value.source };
    { name = Compress.name; description = Compress.description; source = Compress.source };
    { name = Edge_detect.name; description = Edge_detect.description; source = Edge_detect.source };
    { name = Filterbank.name; description = Filterbank.description; source = Filterbank.source };
    { name = Fir_256.name; description = Fir_256.description; source = Fir_256.source };
    { name = Iir_4.name; description = Iir_4.description; source = Iir_4.source };
    { name = Latnrm_32.name; description = Latnrm_32.description; source = Latnrm_32.source };
    { name = Mult_10.name; description = Mult_10.description; source = Mult_10.source };
    { name = Spectral.name; description = Spectral.description; source = Spectral.source };
  ]

let names = List.map (fun b -> b.name) all
let find name = List.find_opt (fun b -> String.equal b.name name) all

(** Compile a benchmark through the full frontend (parse, check, inline). *)
let compile (b : t) : Minic.Ast.program = Minic.Frontend.compile b.source
