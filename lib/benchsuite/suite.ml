(** The benchmark suite of the paper's evaluation (Section VI): the UTDSP
    kernels plus the boundary value problem, rewritten in Mini-C with the
    dependence structure of the originals (DOALL-dominated vs.
    recurrence-dominated vs. communication-bound). *)

type t = { name : string; description : string; source : string }

let all : t list =
  [
    { name = Adpcm_enc.name; description = Adpcm_enc.description; source = Adpcm_enc.source };
    { name = Boundary_value.name; description = Boundary_value.description; source = Boundary_value.source };
    { name = Compress.name; description = Compress.description; source = Compress.source };
    { name = Edge_detect.name; description = Edge_detect.description; source = Edge_detect.source };
    { name = Filterbank.name; description = Filterbank.description; source = Filterbank.source };
    { name = Fir_256.name; description = Fir_256.description; source = Fir_256.source };
    { name = Iir_4.name; description = Iir_4.description; source = Iir_4.source };
    { name = Latnrm_32.name; description = Latnrm_32.description; source = Latnrm_32.source };
    { name = Mult_10.name; description = Mult_10.description; source = Mult_10.source };
    { name = Spectral.name; description = Spectral.description; source = Spectral.source };
  ]

let names = List.map (fun b -> b.name) all
let find name = List.find_opt (fun b -> String.equal b.name name) all

(** Compile a benchmark through the full frontend (parse, check, inline). *)
let compile (b : t) : Minic.Ast.program = Minic.Frontend.compile b.source

(** Resolve a CLI/serve TARGET: an existing Mini-C file path wins, then a
    suite benchmark name.  The error of an unknown target lists every
    available benchmark name, so a typo is diagnosed in one round trip
    (the serve daemon returns this message verbatim to remote clients,
    which cannot run [mpsoc-par list] against the server's suite). *)
let resolve (target : string) : (string * string, Mpsoc_error.t) result =
  if Sys.file_exists target then (
    let ic = open_in_bin target in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | src -> Ok (target, src)
        | exception Sys_error m ->
            Error
              (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:target
                 ("cannot read target file: " ^ m))))
  else
    match find target with
    | Some b -> Ok (b.name, b.source)
    | None ->
        Error
          (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:target
             ~advice:"see `mpsoc-par list` for benchmark names"
             (Printf.sprintf
                "%S is neither a file nor a suite benchmark (benchmarks: %s)"
                target
                (String.concat ", " names)))
