(** UTDSP [spectral]: spectral estimation via autocorrelation and a direct
    DFT periodogram.  A pipeline of stages with data flowing between them:
    window -> autocorrelation (DOALL over lags) -> DFT (DOALL over
    frequency bins) -> sequential peak search. *)

let name = "spectral"
let description = "spectral estimation: autocorrelation + 128-bin periodogram"

let source =
  {|
/* spectral: autocorrelation + periodogram */
float x[2048];
float w[2048];
float r[128];
float psd[128];

int main() {
  int n;
  int lag;
  int k;
  int chk;
  float peak;
  int peak_idx;

  for (n = 0; n < 2048; n = n + 1) {
    x[n] = sin(n * 0.05) + 0.5 * sin(n * 0.11) + ((n * 17) % 23) * 0.01;
  }

  /* windowing: DOALL */
  for (n = 0; n < 2048; n = n + 1) {
    w[n] = x[n] * (0.5 - 0.5 * cos(n * 0.0030679616));
  }

  /* autocorrelation: DOALL over lags */
  for (lag = 0; lag < 128; lag = lag + 1) {
    float acc;
    int m;
    acc = 0.0;
    for (m = 0; m < 1920; m = m + 1) {
      acc = acc + w[m] * w[m + lag];
    }
    r[lag] = acc / 1920.0;
  }

  /* periodogram via direct DFT of the autocorrelation: DOALL over bins */
  for (k = 0; k < 128; k = k + 1) {
    float re;
    float im;
    int m;
    re = 0.0;
    im = 0.0;
    for (m = 0; m < 128; m = m + 1) {
      float ang;
      ang = 0.049087385 * k * m;
      re = re + r[m] * cos(ang);
      im = im - r[m] * sin(ang);
    }
    psd[k] = re * re + im * im;
  }

  /* peak search: sequential reduction */
  peak = 0.0;
  peak_idx = 0;
  for (k = 0; k < 128; k = k + 1) {
    if (psd[k] > peak) {
      peak = psd[k];
      peak_idx = k;
    }
  }

  chk = peak_idx * 1000;
  for (k = 0; k < 128; k = k + 1) {
    chk = chk + (int) (psd[k] * 10.0);
  }
  return chk;
}
|}
