(** UTDSP [adpcm_enc]: adaptive differential PCM encoder.  Four
    independent channels; within a channel the predictor state makes the
    sample loop strictly sequential, so task-level parallelism comes from
    the coarse channel loop (DOALL with only 4 iterations — a stress test
    for coarse-grained balancing on heterogeneous classes). *)

let name = "adpcm_enc"
let description = "ADPCM encoder, 4 channels x 4096 samples"

let source =
  {|
/* adpcm_enc: 4-channel ADPCM encoder */
float x[4][4096];
int code[4][4096];

int main() {
  int ch;
  int i;
  int chk;

  for (ch = 0; ch < 4; ch = ch + 1) {
    for (i = 0; i < 4096; i = i + 1) {
      x[ch][i] = sin(i * (0.01 + ch * 0.003)) * 0.8
               + ((i * 13 + ch * 7) % 32) * 0.01;
    }
  }

  for (ch = 0; ch < 4; ch = ch + 1) {
    float pred;
    float step;
    int n;
    pred = 0.0;
    step = 0.02;
    for (n = 0; n < 4096; n = n + 1) {
      float diff;
      float dq;
      int q;
      diff = x[ch][n] - pred;
      q = 0;
      if (diff < 0.0) {
        q = 8;
        diff = 0.0 - diff;
      }
      if (diff >= step) {
        q = q + 4;
        diff = diff - step;
      }
      if (diff >= step * 0.5) {
        q = q + 2;
        diff = diff - step * 0.5;
      }
      if (diff >= step * 0.25) {
        q = q + 1;
      }
      code[ch][n] = q;
      /* inverse quantize and update the predictor */
      dq = step * ((q & 7) * 0.25 + 0.125);
      if (q >= 8) {
        pred = pred - dq;
      } else {
        pred = pred + dq;
      }
      /* step adaptation with clamping */
      if ((q & 7) >= 4) {
        step = step * 1.1;
      } else {
        step = step * 0.98;
      }
      if (step < 0.001) {
        step = 0.001;
      }
      if (step > 1.0) {
        step = 1.0;
      }
    }
  }

  chk = 0;
  for (ch = 0; ch < 4; ch = ch + 1) {
    for (i = 0; i < 4096; i = i + 32) {
      chk = chk + code[ch][i];
    }
  }
  return chk;
}
|}
