(** UTDSP [mult_10]: 10x10 matrix multiplication, run over a batch of 200
    matrix pairs (the realistic embedded use: a stream of small blocks).
    The batch loop is DOALL — one of the paper's best-scaling kernels. *)

let name = "mult_10"
let description = "batched 10x10 matrix multiplication (200 pairs)"

let source =
  {|
/* mult_10: batched 10x10 matrix multiply */
float ma[200][10][10];
float mb[200][10][10];
float mc[200][10][10];

int main() {
  int bi;
  int i;
  int j;
  int chk;

  /* index-derived init: fully parallel */
  for (bi = 0; bi < 200; bi = bi + 1) {
    for (i = 0; i < 10; i = i + 1) {
      for (j = 0; j < 10; j = j + 1) {
        ma[bi][i][j] = ((bi * 31 + i * 7 + j * 3) % 17) * 0.25 - 2.0;
        mb[bi][i][j] = ((bi * 13 + i * 5 + j * 11) % 23) * 0.125 - 1.5;
      }
    }
  }

  /* mc = ma * mb per batch element */
  for (bi = 0; bi < 200; bi = bi + 1) {
    int r;
    int cc;
    for (r = 0; r < 10; r = r + 1) {
      for (cc = 0; cc < 10; cc = cc + 1) {
        float acc;
        int k;
        acc = 0.0;
        for (k = 0; k < 10; k = k + 1) {
          acc = acc + ma[bi][r][k] * mb[bi][k][cc];
        }
        mc[bi][r][cc] = acc;
      }
    }
  }

  chk = 0;
  for (bi = 0; bi < 200; bi = bi + 1) {
    for (i = 0; i < 10; i = i + 1) {
      chk = chk + (int) (mc[bi][i][i] * 10.0);
    }
  }
  return chk;
}
|}
