(** The benchmark suite of the paper's evaluation: the UTDSP kernels plus
    the boundary value problem, rewritten in Mini-C with the dependence
    structure of the originals. *)

type t = { name : string; description : string; source : string }

val all : t list
val names : string list
val find : string -> t option

(** Compile a benchmark through the full frontend. *)
val compile : t -> Minic.Ast.program
