(** The benchmark suite of the paper's evaluation: the UTDSP kernels plus
    the boundary value problem, rewritten in Mini-C with the dependence
    structure of the originals. *)

type t = { name : string; description : string; source : string }

val all : t list
val names : string list
val find : string -> t option

(** Compile a benchmark through the full frontend. *)
val compile : t -> Minic.Ast.program

(** Resolve a TARGET argument — an existing Mini-C file path, else a
    benchmark name — to [(display_name, source)].  The unknown-target
    error lists every available benchmark name. *)
val resolve : string -> (string * string, Mpsoc_error.t) result
