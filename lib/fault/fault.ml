type action = Raise | Delay_s of float | Exhaust

type rule = { point : string; at_hit : int; action : action }

type plan = { label : string; rules : rule list }

exception Injected of { point : string; hit : int }

(* Armed state: the plan plus a mutex-protected hit counter per probe
   point.  The fast path ([point] with nothing armed) is a single
   Atomic.get; the armed path takes a mutex, which is fine — probes sit
   on paths that are orders of magnitude more expensive than a lock. *)
type state = {
  plan : plan;
  mutex : Mutex.t;
  hits : (string, int ref) Hashtbl.t;
}

let current : state option Atomic.t = Atomic.make None

(* Domain-local plans: armed on one domain only, so concurrent executor
   workers of the serve daemon can each run a different per-request plan
   without racing on the global slot.  [local_count] keeps the disarmed
   fast path cheap: when it is 0 (the common case) probes never touch
   domain-local storage. *)
let local_count : int Atomic.t = Atomic.make 0

let local_key : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let arm plan =
  Atomic.set current
    (Some { plan; mutex = Mutex.create (); hits = Hashtbl.create 8 })

let disarm () = Atomic.set current None

let with_plan plan f =
  arm plan;
  Fun.protect ~finally:disarm f

let with_plan_local plan f =
  let slot = Domain.DLS.get local_key in
  let saved = !slot in
  slot := Some { plan; mutex = Mutex.create (); hits = Hashtbl.create 8 };
  Atomic.incr local_count;
  Fun.protect
    ~finally:(fun () ->
      slot := saved;
      Atomic.decr local_count)
    f

(* The state a probe on this domain observes: the domain-local plan wins
   over the process-global one. *)
let observed () : state option =
  match
    if Atomic.get local_count > 0 then !(Domain.DLS.get local_key) else None
  with
  | Some _ as local -> local
  | None -> Atomic.get current

let armed () =
  match observed () with None -> None | Some s -> Some s.plan

(* Count a hit for [pt] and return the rules of [pt] that fire at this
   hit count ([Exhaust] rules fire at and after their hit count). *)
let hit st pt =
  Mutex.lock st.mutex;
  let r =
    match Hashtbl.find_opt st.hits pt with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add st.hits pt r;
        r
  in
  incr r;
  let n = !r in
  Mutex.unlock st.mutex;
  n

let point pt =
  match observed () with
  | None -> ()
  | Some st ->
      if List.exists (fun ru -> ru.point = pt) st.plan.rules then begin
        let n = hit st pt in
        List.iter
          (fun ru ->
            if ru.point = pt && n = ru.at_hit then
              match ru.action with
              | Raise -> raise (Injected { point = pt; hit = n })
              | Delay_s s -> if s > 0. then Unix.sleepf s
              | Exhaust -> ())
          st.plan.rules
      end

let exhausted pt =
  match observed () with
  | None -> false
  | Some st ->
      if
        List.exists
          (fun ru -> ru.point = pt && ru.action = Exhaust)
          st.plan.rules
      then begin
        let n = hit st pt in
        List.exists
          (fun ru -> ru.point = pt && ru.action = Exhaust && n >= ru.at_hit)
          st.plan.rules
      end
      else false

(* The flow-level probes {!generate} draws from.  Frozen: adding a point
   here would change every seeded plan and with it the committed chaos
   suite's 440 cases. *)
let generated_points =
  [
    "frontend.parse";
    "platform.io";
    "simplex.pivot";
    "ilp.budget";
    "pool.spawn";
    "channel.recv";
  ]

(* All documented probe points accepted by {!of_spec}.  [serve.exec]
   sits in the serve daemon's executor-worker loop, outside the
   per-request exception guard: a [Raise] there kills the worker domain
   (the supervisor's crash-restart test hook) and a [Delay_s] wedges it
   past its heartbeat. *)
let known_points = generated_points @ [ "serve.exec" ]

(* -- plan specs ---------------------------------------------------- *)

let action_to_string = function
  | Raise -> "raise"
  | Exhaust -> "exhaust"
  | Delay_s s -> Printf.sprintf "delay:%g" s

let to_spec p =
  String.concat ","
    (List.map
       (fun r ->
         Printf.sprintf "%s@%d=%s" r.point r.at_hit (action_to_string r.action))
       p.rules)

(* Small LCG; good enough for plan generation and fully deterministic
   across platforms (no dependence on Stdlib.Random state). *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

let generate ~seed =
  let next = lcg (seed * 2654435761) in
  let npts = List.length generated_points in
  let nrules = 1 + next 3 in
  let rules =
    List.init nrules (fun _ ->
        let point = List.nth generated_points (next npts) in
        let at_hit = 1 + next 40 in
        let action =
          (* weight towards Raise; Delay kept short so chaos runs stay
             fast but still exercise timeout paths *)
          match next 10 with
          | 0 | 1 -> Exhaust
          | 2 -> Delay_s (0.01 *. float_of_int (1 + next 20))
          | _ -> Raise
        in
        { point; at_hit; action })
  in
  { label = Printf.sprintf "seed:%d" seed; rules }

let parse_rule s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "rule %S: expected point@hit=action" s)
  | Some i -> (
      let point = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest '=' with
      | None -> Error (Printf.sprintf "rule %S: missing =action" s)
      | Some j -> (
          let hit_s = String.sub rest 0 j in
          let act_s = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt hit_s with
          | None | Some 0 ->
              Error (Printf.sprintf "rule %S: bad hit count %S" s hit_s)
          | Some at_hit when at_hit < 0 ->
              Error (Printf.sprintf "rule %S: bad hit count %S" s hit_s)
          | Some at_hit -> (
              if not (List.mem point known_points) then
                Error
                  (Printf.sprintf "rule %S: unknown point %S (known: %s)" s
                     point
                     (String.concat " " known_points))
              else
                match act_s with
                | "raise" -> Ok { point; at_hit; action = Raise }
                | "exhaust" -> Ok { point; at_hit; action = Exhaust }
                | _ -> (
                    match String.index_opt act_s ':' with
                    | Some k when String.sub act_s 0 k = "delay" -> (
                        let d =
                          String.sub act_s (k + 1)
                            (String.length act_s - k - 1)
                        in
                        match float_of_string_opt d with
                        | Some f when f >= 0. && Float.is_finite f ->
                            Ok { point; at_hit; action = Delay_s f }
                        | _ ->
                            Error
                              (Printf.sprintf "rule %S: bad delay %S" s d))
                    | _ ->
                        Error
                          (Printf.sprintf
                             "rule %S: unknown action %S (raise, exhaust, \
                              delay:SECONDS)"
                             s act_s)))))

let of_spec spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty fault-plan spec"
  else
    let rec go acc = function
      | [] -> Ok { label = spec; rules = List.rev acc }
      | p :: rest -> (
          match String.index_opt p ':' with
          | Some i when String.sub p 0 i = "seed" -> (
              match
                int_of_string_opt
                  (String.sub p (i + 1) (String.length p - i - 1))
              with
              | Some n -> go (List.rev_append (generate ~seed:n).rules acc) rest
              | None -> Error (Printf.sprintf "bad seed in %S" p))
          | _ -> (
              match parse_rule p with
              | Ok r -> go (r :: acc) rest
              | Error e -> Error e))
    in
    go [] parts
