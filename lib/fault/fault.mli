(** Deterministic fault injection for chaos testing.

    A {!plan} arms a set of named probe points sprinkled through the code
    base ({!point} calls).  Each rule fires at a chosen hit count of its
    probe and either raises {!Injected}, sleeps for a fixed delay, or —
    for budget-style probes queried via {!exhausted} — reports the budget
    as spent from that hit on.

    When no plan is armed (the default), every probe is a single
    [Atomic.get] returning immediately: production code pays nothing.

    Plans are process-global; {!with_plan} scopes arming to a callback so
    test harnesses can run many plans in sequence.  Hit counting is
    thread-safe and deterministic for a deterministic probe sequence. *)

type action =
  | Raise  (** raise {!Injected} at the chosen hit *)
  | Delay_s of float  (** sleep that many seconds at the chosen hit *)
  | Exhaust
      (** make {!exhausted} return [true] from the chosen hit onwards;
          ignored by {!point} *)

type rule = { point : string; at_hit : int; action : action }

type plan = { label : string; rules : rule list }

exception Injected of { point : string; hit : int }
(** Raised by an armed [Raise] rule.  Chaos harnesses treat an escape of
    this exception past the top-level [Result] API as a bug. *)

val arm : plan -> unit
(** Arm [plan], resetting all hit counters.  Replaces any armed plan. *)

val disarm : unit -> unit

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] arms [p], runs [f ()], and disarms afterwards even if
    [f] raises. *)

val with_plan_local : plan -> (unit -> 'a) -> 'a
(** Like {!with_plan}, but the plan is visible only to probes running on
    the {e calling domain} — concurrent domains can each arm a different
    plan without racing on the global slot (the serve daemon arms
    per-request plans on its executor workers this way).  A domain-local
    plan shadows the global one on its domain.  Nesting restores the
    previous local plan on exit.  Note: probes executed by {e other}
    domains (e.g. taskpool workers spawned for [jobs > 1]) do not see
    the caller's local plan — arm local plans on the domain that runs
    the probes (the serve chaos path runs with [jobs = 1]). *)

val armed : unit -> plan option
(** The plan probes on the calling domain currently observe: its
    domain-local plan if one is armed, else the global one. *)

val point : string -> unit
(** Probe.  No-op unless a plan with a rule for this point is armed. *)

val exhausted : string -> bool
(** Budget probe: [true] iff an armed [Exhaust] rule for this point has
    reached its hit count.  Counts a hit on every call while armed. *)

val known_points : string list
(** Documented probe points, for spec validation.  Includes
    [serve.exec], the serve daemon's executor-worker loop hook: a
    [Raise] there escapes the per-request guard and kills the worker
    domain (exercising supervisor crash-restart); a [Delay_s] wedges
    the worker past its heartbeat. *)

val generated_points : string list
(** The subset of {!known_points} that {!generate} draws rules from —
    frozen at the original six flow probes so seeded plans (and the
    committed chaos suite) are stable across releases. *)

val of_spec : string -> (plan, string) result
(** Parse a plan from a compact spec:
    [point\@hit=action(,point\@hit=action)*] where action is [raise],
    [exhaust], or [delay:SECONDS] — e.g.
    ["channel.recv@3=raise,ilp.budget@100=exhaust"].  The special entry
    [seed:N] expands to {!generate}[ ~seed:N]'s rules. *)

val generate : seed:int -> plan
(** Deterministic pseudo-random plan: 1–3 rules over {!known_points}
    with hit counts in [1, 40]. *)

val to_spec : plan -> string
