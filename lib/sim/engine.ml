(** Discrete-event evaluation of a parallel program on an MPSoC platform
    (the stand-in for the paper's cycle-accurate CoMET runs).

    Per fork entry the engine schedules tasks event-style: the main task
    spawns each sibling (paying the task-creation overhead sequentially),
    tasks start once their incoming transfers arrive, the shared bus is a
    serial resource arbitrated in task order, and join edges bring results
    back to the main task.  Identical entries of the same fork are
    simulated once and multiplied — entries are back-to-back repetitions
    of the same schedule, so the makespan is linear in them. *)

type metrics = {
  makespan_us : float;
  busy_us : float array;  (** per processor class, summed over its units *)
  energy_uj : float;  (** active energy of all cores (busy time x power) *)
  bus_busy_us : float;
  spawned_tasks : float;  (** total task creations over the program *)
  transfers : float;  (** total bus transactions *)
  bytes : float;  (** total bytes moved *)
}

let zero_metrics pf =
  {
    makespan_us = 0.;
    busy_us = Array.make (Platform.Desc.num_classes pf) 0.;
    energy_uj = 0.;
    bus_busy_us = 0.;
    spawned_tasks = 0.;
    transfers = 0.;
    bytes = 0.;
  }

type span = {
  sp_label : string;
  sp_class : int;  (** processor class (-1 for the bus) *)
  sp_start : float;  (** absolute us *)
  sp_finish : float;
}

type acc = {
  pf : Platform.Desc.t;
  mutable m_busy : float array;
  mutable m_bus : float;
  mutable m_spawns : float;
  mutable m_transfers : float;
  mutable m_bytes : float;
  mutable spans : span list;  (** recorded when [record] is set *)
  record : bool ref;  (** shared cell so it can be toggled mid-traversal *)
}

(** Time of [node] executed on class [cls] (total us), starting at
    absolute time [t0] (used only for span recording).  Accumulates busy
    time and bus statistics into [acc]. *)
let rec node_time acc ~cls ~t0 (n : Prog.node) : float =
  match n with
  | Prog.Work w ->
      let t = Platform.Desc.time_us acc.pf ~cls w.Prog.cycles in
      acc.m_busy.(cls) <- acc.m_busy.(cls) +. t;
      if !(acc.record) && t > 0. then
        acc.spans <-
          { sp_label = w.Prog.wlabel; sp_class = cls; sp_start = t0;
            sp_finish = t0 +. t }
          :: acc.spans;
      t
  | Prog.Seq l ->
      List.fold_left
        (fun s x -> s +. node_time acc ~cls ~t0:(t0 +. s) x)
        0. l
  | Prog.Fork f -> fork_time acc ~cls ~t0 f

and fork_time acc ~cls ~t0 (f : Prog.fork) : float =
  let entries = Float.max f.Prog.entries 1. in
  let k = Array.length f.Prog.tasks in
  if k = 0 then 0.
  else begin
    let comm = acc.pf.Platform.Desc.comm in
    let tco = acc.pf.Platform.Desc.tco_us in
    (* per-entry execution time of each task's body *)
    (* body spans are recorded later with proper offsets; measure silently *)
    let saved_record = !(acc.record) in
    acc.record := false;
    let exec =
      Array.map
        (fun (t : Prog.task) ->
          let cls_t = if t.Prog.tclass >= 0 then t.Prog.tclass else cls in
          node_time acc ~cls:cls_t ~t0:0. t.Prog.body /. entries)
        f.Prog.tasks
    in
    acc.record := saved_record;
    (* spawn: the main task creates siblings sequentially at entry start *)
    let n_spawned = ref 0 in
    let spawn_ready = Array.make k 0. in
    for t = 1 to k - 1 do
      incr n_spawned;
      spawn_ready.(t) <- float_of_int !n_spawned *. tco
    done;
    acc.m_spawns <- acc.m_spawns +. (entries *. float_of_int !n_spawned);
    let main_start = float_of_int !n_spawned *. tco in
    (* forward scheduling in task order; shared bus is a serial resource *)
    let start = Array.make k 0. in
    let finish = Array.make k 0. in
    let bus_free = ref 0. in
    let transfer_arrival = Array.make k 0. in
    (* join arrivals into task 0 processed after all tasks finish *)
    let deps_fwd, deps_join =
      (* self-deps are meaningless: drop them rather than charging the bus *)
      List.filter (fun (d : Prog.dep) -> d.Prog.ddst <> d.Prog.dsrc) f.Prog.deps
      |> List.partition (fun (d : Prog.dep) -> d.Prog.ddst > d.Prog.dsrc)
    in
    let do_transfer (d : Prog.dep) ready =
      let per_entry_bytes = d.Prog.bytes /. entries in
      let per_entry_transfers = d.Prog.transfers /. entries in
      let dur =
        (comm.Platform.Comm.startup_us *. per_entry_transfers)
        +. (per_entry_bytes *. comm.Platform.Comm.per_byte_us)
      in
      let s = Float.max ready !bus_free in
      bus_free := s +. dur;
      acc.m_bus <- acc.m_bus +. (entries *. dur);
      acc.m_transfers <- acc.m_transfers +. d.Prog.transfers;
      acc.m_bytes <- acc.m_bytes +. d.Prog.bytes;
      s +. dur
    in
    for t = 0 to k - 1 do
      let ready = if t = 0 then main_start else spawn_ready.(t) in
      start.(t) <- Float.max ready transfer_arrival.(t);
      finish.(t) <- start.(t) +. exec.(t);
      (* emit this task's outgoing forward transfers *)
      List.iter
        (fun (d : Prog.dep) ->
          if d.Prog.dsrc = t then begin
            let ready = if d.Prog.at_start then 0. else finish.(t) in
            let arr = do_transfer d ready in
            transfer_arrival.(d.Prog.ddst) <-
              Float.max transfer_arrival.(d.Prog.ddst) arr
          end)
        deps_fwd
    done;
    (* join: results return to the main task over the bus *)
    let join_done =
      List.fold_left
        (fun acc_t (d : Prog.dep) ->
          let arr = do_transfer d finish.(d.Prog.dsrc) in
          Float.max acc_t arr)
        0. deps_join
    in
    let makespan_entry =
      Array.fold_left Float.max join_done finish
    in
    if !(acc.record) then
      (* record the first entry's schedule as spans *)
      Array.iteri
        (fun t (tk : Prog.task) ->
          let cls_t = if tk.Prog.tclass >= 0 then tk.Prog.tclass else cls in
          if exec.(t) > 0. then
            acc.spans <-
              {
                sp_label = Printf.sprintf "%s.t%d" f.Prog.flabel t;
                sp_class = cls_t;
                sp_start = t0 +. start.(t);
                sp_finish = t0 +. finish.(t);
              }
              :: acc.spans)
        f.Prog.tasks;
    entries *. makespan_entry
  end

(** Simulate the program; the top level runs on the platform's main
    class. *)
let run_metrics (pf : Platform.Desc.t) (p : Prog.node) : metrics =
  let acc =
    {
      pf;
      m_busy = Array.make (Platform.Desc.num_classes pf) 0.;
      m_bus = 0.;
      m_spawns = 0.;
      m_transfers = 0.;
      m_bytes = 0.;
      spans = [];
      record = ref false;
    }
  in
  let makespan = node_time acc ~cls:pf.Platform.Desc.main_class ~t0:0. p in
  let energy = ref 0. in
  Array.iteri
    (fun c busy ->
      energy :=
        !energy +. Platform.Proc_class.energy_uj pf.Platform.Desc.classes.(c) busy)
    acc.m_busy;
  {
    makespan_us = makespan;
    busy_us = acc.m_busy;
    energy_uj = !energy;
    bus_busy_us = acc.m_bus;
    spawned_tasks = acc.m_spawns;
    transfers = acc.m_transfers;
    bytes = acc.m_bytes;
  }

(** Makespan only. *)
let run pf p = (run_metrics pf p).makespan_us

(** Speedup of [parallel] over [sequential] on [pf]. *)
let speedup pf ~sequential ~parallel = run pf sequential /. run pf parallel

(** Record the top-level schedule (first entry of every fork reached
    without crossing another fork) as labelled spans, for Gantt-style
    rendering. *)
let trace (pf : Platform.Desc.t) (p : Prog.node) : span list =
  let acc =
    {
      pf;
      m_busy = Array.make (Platform.Desc.num_classes pf) 0.;
      m_bus = 0.;
      m_spawns = 0.;
      m_transfers = 0.;
      m_bytes = 0.;
      spans = [];
      record = ref true;
    }
  in
  ignore (node_time acc ~cls:pf.Platform.Desc.main_class ~t0:0. p);
  List.rev acc.spans

(** Render a trace as an ASCII Gantt chart ([width] columns). *)
let gantt ?(width = 60) (pf : Platform.Desc.t) (spans : span list) : string =
  match spans with
  | [] -> "(empty trace)\n"
  | _ ->
      let horizon =
        List.fold_left (fun m s -> Float.max m s.sp_finish) 0. spans
      in
      let horizon = Float.max horizon 1e-9 in
      let buf = Buffer.create 1024 in
      let label_w =
        List.fold_left (fun m s -> max m (String.length s.sp_label)) 10 spans
      in
      List.iter
        (fun s ->
          let c0 =
            int_of_float (s.sp_start /. horizon *. float_of_int width)
          in
          let c1 =
            max (c0 + 1)
              (int_of_float (s.sp_finish /. horizon *. float_of_int width))
          in
          let cls_name =
            if s.sp_class >= 0 && s.sp_class < Platform.Desc.num_classes pf
            then (Platform.Desc.proc_class pf s.sp_class).Platform.Proc_class.name
            else "bus"
          in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-8s |%s%s%s| %.1f-%.1fus\n" label_w
               s.sp_label cls_name
               (String.make (min c0 width) ' ')
               (String.make (max 0 (min c1 width - min c0 width)) '#')
               (String.make (max 0 (width - min c1 width)) ' ')
               s.sp_start s.sp_finish))
        spans;
      Buffer.add_string buf
        (Printf.sprintf "%-*s %-8s  total horizon %.1f us\n" label_w "" ""
           horizon);
      Buffer.contents buf
