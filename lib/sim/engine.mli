(** Discrete-event evaluation of a parallel program on an MPSoC platform —
    the stand-in for the paper's cycle-accurate CoMET runs.

    Per fork entry: the main task spawns each sibling sequentially (paying
    the task-creation overhead), tasks start once their incoming transfers
    arrive, the shared bus is a serial resource arbitrated in task order,
    and join edges bring results back to the main task.  Identical entries
    of a fork are simulated once and multiplied. *)

type metrics = {
  makespan_us : float;
  busy_us : float array;  (** per processor class, summed over its units *)
  energy_uj : float;  (** active energy of all cores (busy time x power) *)
  bus_busy_us : float;
  spawned_tasks : float;  (** total task creations over the program *)
  transfers : float;  (** total bus transactions *)
  bytes : float;  (** total bytes moved *)
}

val zero_metrics : Platform.Desc.t -> metrics

(** Simulate the program (top level runs on the platform's main class)
    and return the full metrics. *)
val run_metrics : Platform.Desc.t -> Prog.node -> metrics

(** Makespan only, in microseconds. *)
val run : Platform.Desc.t -> Prog.node -> float

(** Speedup of [parallel] over [sequential] on the platform. *)
val speedup : Platform.Desc.t -> sequential:Prog.node -> parallel:Prog.node -> float

(** A scheduled interval of core activity, for Gantt-style rendering. *)
type span = {
  sp_label : string;
  sp_class : int;  (** processor class *)
  sp_start : float;  (** absolute us *)
  sp_finish : float;
}

(** Record the top-level schedule (first entry of every fork reached
    without crossing another fork) as labelled spans. *)
val trace : Platform.Desc.t -> Prog.node -> span list

(** Render a trace as an ASCII Gantt chart ([width] columns). *)
val gantt : ?width:int -> Platform.Desc.t -> span list -> string
