(** Executable parallel-program representation — what the parallelizer's
    "implement" stage produces and the MPSoC simulator runs.

    The tree mirrors the chosen solution hierarchy.  [Work] leaves carry
    total abstract cycles (whole program run); the executing core's class
    turns cycles into time.  [Fork] nodes are fork-join regions executed
    [entries] times back-to-back: per entry, task 0 (the main task)
    continues on the caller's core while the other tasks run on their own
    cores, exchanging data over the shared bus according to [deps]. *)

type node =
  | Work of work
  | Seq of node list
  | Fork of fork

and work = { wlabel : string; cycles : float (* total, whole program *) }

and fork = {
  flabel : string;
  entries : float;  (** times the region executes over the program *)
  tasks : task array;  (** index 0 = the main task *)
  deps : dep list;
}

and task = {
  tclass : int;  (** processor class executing this task *)
  body : node;  (** total-cycle accounting like everywhere else *)
}

and dep = {
  dsrc : int;
  ddst : int;  (** task indices; [ddst = 0] with [dsrc > 0] is a join edge *)
  bytes : float;  (** total payload over the program run *)
  transfers : float;  (** number of bus transactions over the program run *)
  at_start : bool;
      (** data is ready when the fork is entered (live-in distribution)
          rather than when the source task finishes *)
}

let work ?(label = "work") cycles = Work { wlabel = label; cycles }

let rec total_cycles = function
  | Work w -> w.cycles
  | Seq l -> List.fold_left (fun acc n -> acc +. total_cycles n) 0. l
  | Fork f ->
      Array.fold_left (fun acc t -> acc +. total_cycles t.body) 0. f.tasks

(** Number of Fork regions in the tree. *)
let rec fork_count = function
  | Work _ -> 0
  | Seq l -> List.fold_left (fun acc n -> acc + fork_count n) 0 l
  | Fork f ->
      1 + Array.fold_left (fun acc t -> acc + fork_count t.body) 0 f.tasks

(** Maximum number of simultaneously live tasks (nesting-aware). *)
let rec max_width = function
  | Work _ -> 1
  | Seq l -> List.fold_left (fun acc n -> max acc (max_width n)) 1 l
  | Fork f ->
      Array.fold_left (fun acc t -> acc + max_width t.body) 0 f.tasks

let rec pp ?(indent = 0) ppf n =
  let pad = String.make (2 * indent) ' ' in
  match n with
  | Work w -> Fmt.pf ppf "%swork %s (%.0f cycles)@." pad w.wlabel w.cycles
  | Seq l ->
      Fmt.pf ppf "%sseq@." pad;
      List.iter (pp ~indent:(indent + 1) ppf) l
  | Fork f ->
      Fmt.pf ppf "%sfork %s x%.0f (%d tasks)@." pad f.flabel f.entries
        (Array.length f.tasks);
      Array.iteri
        (fun i t ->
          Fmt.pf ppf "%s  task %d on class %d:@." pad i t.tclass;
          pp ~indent:(indent + 2) ppf t.body)
        f.tasks;
      List.iter
        (fun d ->
          Fmt.pf ppf "%s  dep %d->%d %.0fB x%.0f@." pad d.dsrc d.ddst d.bytes
            d.transfers)
        f.deps
