(** Executable parallel-program representation — what the parallelizer's
    implement stage produces and the MPSoC simulator runs.  [Work] leaves
    carry total abstract cycles; [Fork] nodes are fork-join regions
    executed [entries] times, task 0 being the main task on the caller's
    core. *)

type node = Work of work | Seq of node list | Fork of fork

and work = { wlabel : string; cycles : float (* total, whole program *) }

and fork = {
  flabel : string;
  entries : float;  (** times the region executes over the program *)
  tasks : task array;  (** index 0 = the main task *)
  deps : dep list;
}

and task = {
  tclass : int;  (** processor class executing this task *)
  body : node;
}

and dep = {
  dsrc : int;
  ddst : int;  (** task indices; [ddst = 0] with [dsrc > 0] is a join edge *)
  bytes : float;  (** total payload over the program run *)
  transfers : float;  (** number of bus transactions over the program run *)
  at_start : bool;
      (** data is ready when the fork is entered (live-in distribution)
          rather than when the source task finishes *)
}

val work : ?label:string -> float -> node
val total_cycles : node -> float
val fork_count : node -> int

(** Maximum number of simultaneously live tasks (nesting-aware). *)
val max_width : node -> int

val pp : ?indent:int -> Format.formatter -> node -> unit
