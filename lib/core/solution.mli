(** Parallel solution candidates (paper Section III-B): every AHTG node
    accumulates a set of candidates, each tagged with the processor class
    of its main task and annotated with modelled execution time and the
    extra processing units it allocates per class (the paper's
    [USEDPROCS]). *)

(** How far down the solver degradation ladder a candidate was produced.
    [Exact] and [Incumbent] come from branch & bound (proved optimum vs
    best incumbent at a limit); the later rungs are engaged only when the
    search ran out of budget with no incumbent at all (or a fault was
    injected into the solver). *)
type degradation =
  | Exact  (** ILP proved optimal (or construction needs no solver) *)
  | Incumbent  (** budget ran out; best branch & bound incumbent *)
  | Lp_round  (** rounded LP relaxation, feasibility re-checked *)
  | Greedy  (** greedy list-scheduling over processor classes *)
  | Seq_fallback  (** the always-feasible sequential solution *)
  | Heuristic
      (** portfolio list-scheduler / GA schedule, feasibility-checked
          against the exact model; declared last so historical
          constructor tags (and pure-ILP solution digests) are stable,
          but ranked right after [Exact] *)

type t = {
  node_id : int;  (** AHTG node this candidate belongs to *)
  main_class : int;  (** the paper's candidate tag *)
  time_us : float;  (** modelled total execution time of the node *)
  extra_units : int array;  (** per class, beyond the main task's unit *)
  degrade : degradation;
  kind : kind;
}

and kind =
  | Seq of t array
      (** sequential on [main_class]; for hierarchical nodes the array
          holds the (sequential, same-class) choice per child *)
  | Par of par
  | Split of split
  | Pipeline of pipeline

and par = {
  assignment : int array;  (** child index -> task index *)
  task_class : int array;  (** task index -> processor class (-1 unused) *)
  child_choice : t array;  (** chosen candidate per child *)
  par_time_breakdown : breakdown;
}

and split = {
  chunk_iters : float array;  (** iterations per entry assigned to task t *)
  split_class : int array;  (** task index -> processor class *)
}

and pipeline = {
  stage_of : int array;  (** child index -> stage index *)
  stage_class : int array;  (** stage index -> class (-1 unused) *)
  bottleneck_us : float;  (** per-iteration time of the slowest stage *)
}

and breakdown = { exec_us : float; comm_us : float; spawn_us : float }

val no_breakdown : breakdown

(** Total processing units consumed: the main unit plus all extras. *)
val total_units : t -> int

(** Number of tasks (1 for sequential candidates). *)
val num_tasks : t -> int

val is_sequential : t -> bool

val degradation_rank : degradation -> int
(** 0 for [Exact], 1 for [Heuristic], … 5 for [Seq_fallback]; monotone
    in severity. *)

val degradation_name : degradation -> string

val worst_degradation : t -> degradation
(** Worst level anywhere in the candidate's choice tree — the level the
    whole solution must be reported at (drives the CLI's exit code 2). *)

(** A fork/join partition of a hierarchical node's children over a dense
    task index space: [owner.(n)] is the task executing child [n], task 0
    is the main task (always present), [classes.(t)] the declared
    processor class of task [t] ([-1]: run on the caller's class).  The
    runtime-consumable form of a candidate's task structure. *)
type partition = { owner : int array; classes : int array }

(** The dense partition of a [Par] or [Pipeline] candidate; [None] for
    sequential and split candidates. *)
val partition : t -> partition option

(** Dense partition of a raw (child -> task, task -> class) assignment. *)
val partition_of_assignment : int array -> int array -> partition

val kind_str : t -> string
val pp : Format.formatter -> t -> unit

(** Candidates of one node grouped by main class: [set.(c)] lists class
    [c]'s candidates; the sequential candidate is always present. *)
type set = t list array

(** Pareto-prune on (total units, time), keeping at most [max_keep]
    survivors including the extremes. *)
val prune : max_keep:int -> t list -> t list

(** The sequential candidate of class [c] (raises if absent). *)
val seq_of : set -> int -> t

val all : set -> t list

(** Best candidate overall by modelled time. *)
val best : set -> t
