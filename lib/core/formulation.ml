(** The heterogeneous partitioning-and-mapping ILP (paper Section IV).

    One instance parallelizes one hierarchical AHTG node: it maps child
    nodes to newly created tasks (Eq. 1-2), picks one previously computed
    parallel solution candidate per child (Eq. 3-4), tracks predecessor
    relations induced by dependence edges (Eq. 5-7), accumulates task and
    critical-path costs with task-creation and communication overhead
    (Eq. 8-9), keeps the task graph cycle-free via topologically ordered
    task ids (Eq. 10), minimizes the completion time of the main task that
    owns the Communication-In/Out nodes (Eq. 11), and couples everything
    with a task-to-processor-class mapping under per-class unit budgets
    (Eq. 12-18).

    Deviations from the paper's notation, all behaviour-preserving:
    - the Communication-In/Out nodes are pinned to task 0 (the main task),
      whose class is the sweep's [seqPC]; the objective is task 0's path;
    - products like [x AND p] in Eq. 8/14 are linearized with one big-M
      constraint per (n,t[,c]) instead of one auxiliary variable per
      product — fewer variables, same polytope on the integer points;
    - Eq. 10 is imposed on consecutive children of the fixed topological
      order, which implies it for all pairs by transitivity;
    - tasks carry a [used] indicator so that empty tasks consume neither
      time (Eq. 8) nor processing units (Eq. 13/16). *)

open Ilp

type input = {
  node : Htg.Node.t;
  child_sets : Solution.set array;
  pf : Platform.Desc.t;
  seq_class : int;  (** class of the main task for this sweep iteration *)
  budget : int;  (** upper bound on allocatable processing units *)
  cfg : Config.t;
}

type edge_info = {
  e_src : int;  (** child index; -1 for Comm-In *)
  e_dst : int;  (** child index; -2 for Comm-Out *)
  e_cost_us : float;  (** full transfer cost if the edge is cut *)
  e_is_flow : bool;
}

let comm_in = -1
let comm_out = -2

let edge_infos (inp : input) : edge_info list =
  let node = inp.node in
  let comm = inp.pf.Platform.Desc.comm in
  let ntrans src dst =
    match (src, dst) with
    | Htg.Node.EChild i, Htg.Node.EChild j ->
        Float.min node.Htg.Node.children.(i).Htg.Node.exec_count
          node.Htg.Node.children.(j).Htg.Node.exec_count
    | _ -> node.Htg.Node.exec_count
  in
  List.filter_map
    (fun (e : Htg.Node.edge) ->
      let src =
        match e.Htg.Node.src with
        | Htg.Node.EChild i -> i
        | Htg.Node.EIn -> comm_in
        | Htg.Node.EOut -> comm_out
      in
      let dst =
        match e.Htg.Node.dst with
        | Htg.Node.EChild i -> i
        | Htg.Node.EOut -> comm_out
        | Htg.Node.EIn -> comm_in
      in
      if src = dst then None
      else
        let cost =
          match e.Htg.Node.kind with
          | Htg.Node.Flow ->
              (comm.Platform.Comm.startup_us *. ntrans e.Htg.Node.src e.Htg.Node.dst)
              +. (float_of_int e.Htg.Node.bytes *. comm.Platform.Comm.per_byte_us)
          | Htg.Node.Order -> 0.
        in
        Some
          {
            e_src = src;
            e_dst = dst;
            e_cost_us = cost;
            e_is_flow = (match e.Htg.Node.kind with Htg.Node.Flow -> true | _ -> false);
          })
    node.Htg.Node.edges

(** Variable ids of one instance, for extraction and warm starts. *)
type vars = {
  x : Model.var array array;  (** x.(n).(t) *)
  p : Model.var array array array;  (** p.(n).(c).(s) *)
  pred : Model.var array array;  (** pred.(t).(u), only t<u valid *)
  map_tc : Model.var array array;  (** map.(t).(c) *)
  used : Model.var array;
  cost : Model.var array;
  contrib : Model.var array array;  (** contrib.(n).(t) *)
  accum : Model.var array;
  commcost : Model.var array;
  procsused : Model.var array array;  (** procsused.(t).(c) *)
  cut : (int * Model.var array) list;  (** edge idx in flow list -> per task *)
  exectime : Model.var;
}

type instance = {
  model : Model.t;
  vars : vars;
  ntasks : int;
  cands : Solution.t array array array;  (** cands.(n).(c) = candidates *)
  flow_edges : edge_info array;
  all_edges : edge_info list;
  header_us : float;
  tco_total : float;
}

let build (inp : input) : instance option =
  let node = inp.node in
  let pf = inp.pf in
  let cfg = inp.cfg in
  let k = Array.length node.Htg.Node.children in
  let nclasses = Platform.Desc.num_classes pf in
  let total_units = Platform.Desc.total_units pf in
  let ntasks = min (min inp.budget k) total_units in
  if ntasks < 2 || k < 2 then None
  else begin
    let cands =
      Array.map
        (fun set -> Array.map Array.of_list set)
        inp.child_sets
    in
    let m = Model.create ~name:(Printf.sprintf "par-node-%d" node.Htg.Node.id) () in
    let open Lin_expr in
    (* ---- decision variables ---- *)
    let x =
      Array.init k (fun n ->
          Array.init ntasks (fun t ->
              Model.bool_var ~priority:30 m (Printf.sprintf "x_%d_%d" n t)))
    in
    let p =
      Array.init k (fun n ->
          Array.init nclasses (fun c ->
              Array.init
                (Array.length cands.(n).(c))
                (fun s -> Model.bool_var ~priority:10 m (Printf.sprintf "p_%d_%d_%d" n c s))))
    in
    let pred =
      Array.init ntasks (fun t ->
          Array.init ntasks (fun u ->
              if t < u then Model.bool_var m (Printf.sprintf "pred_%d_%d" t u)
              else -1))
    in
    let map_tc =
      Array.init ntasks (fun t ->
          Array.init nclasses (fun c ->
              Model.bool_var ~priority:20 m (Printf.sprintf "map_%d_%d" t c)))
    in
    let used =
      Array.init ntasks (fun t -> Model.bool_var ~priority:20 m (Printf.sprintf "used_%d" t))
    in
    let cost =
      Array.init ntasks (fun t -> Model.cont_var m (Printf.sprintf "cost_%d" t))
    in
    let contrib =
      Array.init k (fun n ->
          Array.init ntasks (fun t ->
              Model.cont_var m (Printf.sprintf "ctr_%d_%d" n t)))
    in
    let accum =
      Array.init ntasks (fun t -> Model.cont_var m (Printf.sprintf "acc_%d" t))
    in
    let commcost =
      Array.init ntasks (fun t -> Model.cont_var m (Printf.sprintf "comm_%d" t))
    in
    let procsused =
      Array.init ntasks (fun t ->
          Array.init nclasses (fun c ->
              Model.cont_var m (Printf.sprintf "pu_%d_%d" t c)))
    in
    let exectime = Model.cont_var m "exectime" in
    let all_edges = edge_infos inp in
    let flow_edges =
      Array.of_list
        (List.filter
           (fun e -> e.e_is_flow && e.e_cost_us > 0. && e.e_src >= 0 && e.e_dst >= 0)
           all_edges)
    in
    let cut =
      List.init (Array.length flow_edges) (fun ei ->
          ( ei,
            Array.init ntasks (fun t ->
                Model.bool_var m (Printf.sprintf "cut_%d_%d" ei t)) ))
    in
    (* ---- constants ---- *)
    let costs n c s = cands.(n).(c).(s).Solution.time_us in
    let max_cost n =
      let mx = ref 0. in
      Array.iteri
        (fun c arr ->
          Array.iteri (fun s _ -> mx := Float.max !mx (costs n c s)) arr)
        cands.(n);
      !mx
    in
    let ec = node.Htg.Node.exec_count in
    let tco_total = ec *. pf.Platform.Desc.tco_us in
    let header_cycles =
      Float.max 0.
        (node.Htg.Node.total_cycles
        -. Array.fold_left
             (fun acc c -> acc +. c.Htg.Node.total_cycles)
             0. node.Htg.Node.children)
    in
    let header_us = Platform.Desc.time_us pf ~cls:inp.seq_class header_cycles in
    let sum_comm =
      List.fold_left (fun acc e -> acc +. e.e_cost_us) 0. all_edges
    in
    let big_m =
      Array.fold_left ( +. )
        (header_us +. (float_of_int ntasks *. tco_total) +. sum_comm +. 1.)
        (Array.init k max_cost |> Array.map (fun x -> x))
    in
    (* ---- Eq 2: each child in exactly one task ---- *)
    for n = 0 to k - 1 do
      Model.eq ~name:(Printf.sprintf "eq2_n%d" n) m
        (sum (List.init ntasks (fun t -> term x.(n).(t))))
        (constant 1.)
    done;
    (* ---- Eq 4: exactly one candidate per child ---- *)
    for n = 0 to k - 1 do
      let terms = ref [] in
      Array.iter
        (fun arr -> Array.iter (fun v -> terms := term v :: !terms) arr)
        p.(n);
      Model.eq ~name:(Printf.sprintf "eq4_n%d" n) m (sum !terms) (constant 1.)
    done;
    (* ---- used task indicators ---- *)
    for t = 0 to ntasks - 1 do
      for n = 0 to k - 1 do
        Model.ge
          ~name:(Printf.sprintf "used_t%d_n%d" t n)
          m (term used.(t)) (term x.(n).(t))
      done
    done;
    (* task 0 is the main task: always used *)
    Model.eq ~name:"main_used" m (term used.(0)) (constant 1.);
    (* ---- Eq 5/6: predecessor relations from dependence edges ---- *)
    List.iter
      (fun e ->
        if e.e_src >= 0 && e.e_dst >= 0 then
          for t = 0 to ntasks - 1 do
            for u = t + 1 to ntasks - 1 do
              Model.ge
                ~name:(Printf.sprintf "eq6_e%d%d_t%d_u%d" e.e_src e.e_dst t u)
                m
                (term pred.(t).(u))
                (add_const (-1.) (add (term x.(e.e_src).(t)) (term x.(e.e_dst).(u))))
            done
          done
        else if e.e_src = comm_in && e.e_dst >= 0 then
          (* Comm-In lives in task 0: data flows 0 -> task of dst *)
          for u = 1 to ntasks - 1 do
            Model.ge
              ~name:(Printf.sprintf "eq6_in_%d_u%d" e.e_dst u)
              m
              (term pred.(0).(u))
              (term x.(e.e_dst).(u))
          done)
      all_edges;
    (* ---- Eq 10: cycle-freedom / symmetry breaking on consecutive
       children of the topological order ---- *)
    let taskid n = sum (List.init ntasks (fun t -> term ~coef:(float_of_int t) x.(n).(t))) in
    for n = 0 to k - 2 do
      Model.ge ~name:(Printf.sprintf "eq10_%d" n) m (taskid (n + 1)) (taskid n)
    done;
    (* ---- lexicographic symmetry breaking ([Config.ilp_symmetry]) ----
       Eq 10 orders task ids along the children but still admits gaps and
       used-but-empty tasks; any such solution has an equivalent compact
       relabeling of identical cost.  Two families of rows pick the
       compact representative and complete the task-label
       canonicalization:
       - contiguity: the used non-main tasks form a prefix;
       - no empty used tasks: a task marked used must hold a child
         (task 0 is exempt — the main task is always used). *)
    if cfg.Config.ilp_symmetry then begin
      for t = 1 to ntasks - 2 do
        Model.ge
          ~name:(Printf.sprintf "sym_contig_%d" t)
          m (term used.(t))
          (term used.(t + 1))
      done;
      for t = 1 to ntasks - 1 do
        Model.le
          ~name:(Printf.sprintf "sym_nonempty_%d" t)
          m (term used.(t))
          (sum (List.init k (fun n -> term x.(n).(t))))
      done;
      (* per-class lex order for provably interchangeable classes: two
         non-main classes whose unit counts match and whose candidate
         sets are identical under swapping the pair's roles describe the
         same hardware twice; prefer the lower index.  The test is
         deliberately conservative — heterogeneous platforms (distinct
         candidate times) never trigger it, so adding the rows cannot
         perturb their search. *)
      let units = Platform.Desc.units_per_class inp.pf in
      let swap c c' i = if i = c then c' else if i = c' then c else i in
      let cand_swap_eq c c' (a : Solution.t) (b : Solution.t) =
        a.Solution.time_us = b.Solution.time_us
        && Array.length a.Solution.extra_units
           = Array.length b.Solution.extra_units
        && Array.for_all Fun.id
             (Array.mapi
                (fun i u -> u = b.Solution.extra_units.(swap c c' i))
                a.Solution.extra_units)
      in
      let interchangeable c c' =
        c <> inp.seq_class && c' <> inp.seq_class
        && units.(c) = units.(c')
        && Array.for_all
             (fun per_child ->
               Array.length per_child.(c) = Array.length per_child.(c')
               && Array.for_all Fun.id
                    (Array.mapi
                       (fun s a -> cand_swap_eq c c' a per_child.(c').(s))
                       per_child.(c)))
             cands
      in
      for c = 0 to nclasses - 2 do
        if interchangeable c (c + 1) then
          Model.ge
            ~name:(Printf.sprintf "sym_class_%d_%d" c (c + 1))
            m
            (sum (List.init ntasks (fun t -> term map_tc.(t).(c))))
            (sum (List.init ntasks (fun t -> term map_tc.(t).(c + 1))))
      done
    end;
    (* ---- conflicts: loop-carried recurrences stay in one task ---- *)
    List.iter
      (fun (a, b) ->
        for t = 0 to ntasks - 1 do
          Model.eq
            ~name:(Printf.sprintf "conflict_%d_%d_t%d" a b t)
            m (term x.(a).(t)) (term x.(b).(t))
        done)
      node.Htg.Node.conflicts;
    (* ---- Eq 8: task costs ---- *)
    for n = 0 to k - 1 do
      let pick_cost =
        let terms = ref [] in
        Array.iteri
          (fun c arr ->
            Array.iteri
              (fun s v -> terms := term ~coef:(costs n c s) v :: !terms)
              arr)
          p.(n);
        sum !terms
      in
      for t = 0 to ntasks - 1 do
        (* contrib(n,t) >= sum_cs COSTS*p - M*(1 - x(n,t)) *)
        Model.ge
          ~name:(Printf.sprintf "eq8ctr_n%d_t%d" n t)
          m
          (term contrib.(n).(t))
          (add_const (-.max_cost n)
             (add pick_cost (term ~coef:(max_cost n) x.(n).(t))))
      done;
      (* work conservation: tightens the LP relaxation considerably (for
         integer points it is implied by the big-M constraints above) *)
      Model.ge
        ~name:(Printf.sprintf "eq8cons_n%d" n)
        m
        (sum (List.init ntasks (fun t -> term contrib.(n).(t))))
        pick_cost
    done;
    for t = 0 to ntasks - 1 do
      let base =
        if t = 0 then add_const header_us (term ~coef:tco_total used.(t))
        else term ~coef:tco_total used.(t)
      in
      Model.ge
        ~name:(Printf.sprintf "eq8_t%d" t)
        m (term cost.(t))
        (add base (sum (List.init k (fun n -> term contrib.(n).(t)))))
    done;
    (* ---- communication costs charged to the producing task ---- *)
    List.iteri
      (fun ei (_, cvars) ->
        let e = flow_edges.(ei) in
        for t = 0 to ntasks - 1 do
          (* cut(e,t) >= x(src,t) - x(dst,t) *)
          Model.ge
            ~name:(Printf.sprintf "cut_e%d_t%d" ei t)
            m (term cvars.(t))
            (sub (term x.(e.e_src).(t)) (term x.(e.e_dst).(t)))
        done)
      cut;
    for t = 0 to ntasks - 1 do
      let cut_terms =
        List.map
          (fun (ei, cvars) -> term ~coef:flow_edges.(ei).e_cost_us cvars.(t))
          cut
      in
      let in_terms =
        if t = 0 then
          (* Comm-In transfers to children outside task 0 are charged to
             task 0 (the producer of the inputs) *)
          List.filter_map
            (fun e ->
              if e.e_src = comm_in && e.e_dst >= 0 && e.e_cost_us > 0. then
                Some (add_const e.e_cost_us (term ~coef:(-.e.e_cost_us) x.(e.e_dst).(0)))
              else None)
            all_edges
        else []
      in
      Model.ge
        ~name:(Printf.sprintf "commdef_t%d" t)
        m (term commcost.(t))
        (sum (cut_terms @ in_terms))
    done;
    (* ---- Eq 9: critical path ---- *)
    for t = 0 to ntasks - 1 do
      Model.ge ~name:(Printf.sprintf "eq9base_t%d" t) m (term accum.(t)) (term cost.(t));
      for u = t + 1 to ntasks - 1 do
        (* accum(u) >= cost(u) + accum(t) + commcost(t) - M(1 - pred(t,u)) *)
        Model.ge
          ~name:(Printf.sprintf "eq9_t%d_u%d" t u)
          m (term accum.(u))
          (add_const (-.big_m)
             (sum
                [
                  term cost.(u);
                  term accum.(t);
                  term commcost.(t);
                  term ~coef:big_m pred.(t).(u);
                ]))
      done
    done;
    (* ---- Eq 11: objective = completion of the main task's join ---- *)
    for t = 0 to ntasks - 1 do
      let out_terms =
        if t = 0 then []
        else
          List.filter_map
            (fun e ->
              if e.e_dst = comm_out && e.e_src >= 0 && e.e_cost_us > 0. then
                Some (term ~coef:e.e_cost_us x.(e.e_src).(t))
              else None)
            all_edges
      in
      Model.ge
        ~name:(Printf.sprintf "eq11_t%d" t)
        m (term exectime)
        (sum (term accum.(t) :: term commcost.(t) :: out_terms))
    done;
    (* the shared bus is a serial resource: no schedule can finish before
       all inter-task traffic has been carried *)
    Model.ge ~name:"bus_bound" m (term exectime)
      (sum (List.init ntasks (fun t -> term commcost.(t))));
    Model.set_objective m Model.Minimize (term exectime);
    (* ---- Eq 12/13: task-to-class mapping ---- *)
    for t = 0 to ntasks - 1 do
      Model.eq
        ~name:(Printf.sprintf "eq13_t%d" t)
        m
        (sum (List.init nclasses (fun c -> term map_tc.(t).(c))))
        (term used.(t))
    done;
    (* pin the main task to seqPC *)
    Model.eq ~name:"pin_main" m (term map_tc.(0).(inp.seq_class)) (constant 1.);
    (* ---- Eq 14: processing units consumed by inner solutions ---- *)
    for t = 0 to ntasks - 1 do
      for c = 0 to nclasses - 1 do
        for n = 0 to k - 1 do
          let used_terms = ref [] in
          let maxu = ref 0. in
          Array.iteri
            (fun c' arr ->
              Array.iteri
                (fun s v ->
                  let u =
                    float_of_int cands.(n).(c').(s).Solution.extra_units.(c)
                  in
                  maxu := Float.max !maxu u;
                  if u > 0. then used_terms := term ~coef:u v :: !used_terms)
                arr)
            p.(n);
          if !maxu > 0. then
            Model.ge
              ~name:(Printf.sprintf "eq14_t%d_c%d_n%d" t c n)
              m
              (term procsused.(t).(c))
              (add_const (-. !maxu)
                 (add (sum !used_terms) (term ~coef:(!maxu) x.(n).(t))))
        done
      done
    done;
    (* valid inequality tightening the relaxation: whichever task child n
       lands in, that task's inner usage of class c is at least the usage
       of n's chosen candidate, so the global sum is too.  For integer
       points this is implied by Eq 14; fractionally it stops the LP from
       both spreading children over many tasks and picking inner-parallel
       candidates beyond the unit budget. *)
    for n = 0 to k - 1 do
      for c = 0 to nclasses - 1 do
        let used_terms = ref [] in
        let any = ref false in
        Array.iteri
          (fun c' arr ->
            Array.iteri
              (fun s v ->
                let u = float_of_int cands.(n).(c').(s).Solution.extra_units.(c) in
                if u > 0. then begin
                  any := true;
                  used_terms := term ~coef:u v :: !used_terms
                end)
              arr)
          p.(n);
        if !any then
          Model.ge
            ~name:(Printf.sprintf "capcut_n%d_c%d" n c)
            m
            (sum (List.init ntasks (fun t -> term procsused.(t).(c))))
            (sum !used_terms)
      done
    done;
    (* ---- Eq 15/16: per-class unit budget ---- *)
    for c = 0 to nclasses - 1 do
      Model.le
        ~name:(Printf.sprintf "eq16_c%d" c)
        m
        (sum
           (List.init ntasks (fun t -> term map_tc.(t).(c))
           @ List.init ntasks (fun t -> term procsused.(t).(c))))
        (constant (float_of_int (Platform.Desc.units_per_class pf).(c)))
    done;
    (* global budget from the sweep *)
    let all_units =
      sum
        (List.concat
           (List.init ntasks (fun t ->
                List.init nclasses (fun c ->
                    add (term map_tc.(t).(c)) (term procsused.(t).(c))))))
    in
    Model.le ~name:"budget" m all_units (constant (float_of_int inp.budget));
    (* ---- Eq 17/18: candidate class must match the task's class ---- *)
    for n = 0 to k - 1 do
      for t = 0 to ntasks - 1 do
        for c = 0 to nclasses - 1 do
          let p_sum = sum (Array.to_list (Array.map term p.(n).(c))) in
          (* x(n,t) & map(t,c) => candidate of class c chosen *)
          Model.ge
            ~name:(Printf.sprintf "eq18a_n%d_t%d_c%d" n t c)
            m p_sum
            (add_const (-1.) (add (term x.(n).(t)) (term map_tc.(t).(c))));
          (* x(n,t) & candidate of class c => task t on class c *)
          Model.ge
            ~name:(Printf.sprintf "eq18b_n%d_t%d_c%d" n t c)
            m
            (term map_tc.(t).(c))
            (add_const (-1.) (add (term x.(n).(t)) p_sum))
        done
      done
    done;
    Some
      {
        model = m;
        vars =
          {
            x;
            p;
            pred;
            map_tc;
            used;
            cost;
            contrib;
            accum;
            commcost;
            procsused;
            cut;
            exectime;
          };
        ntasks;
        cands;
        flow_edges;
        all_edges;
        header_us;
        tco_total;
      }
  end

(* ------------------------------------------------------------------ *)
(* Warm start: everything sequential in the main task                  *)
(* ------------------------------------------------------------------ *)

(** All children in the main task on [seqPC]; each child greedily takes
    its fastest candidate of that class whose inner processor usage fits
    the per-class and global budgets (usage is shared across sequential
    children, Eq. 14's max semantics).  Falls back to the sequential
    candidate per child, so it is always feasible — this seeds branch &
    bound with a strong incumbent. *)
let hierarchical_warm_start (inp : input) (inst : instance) : float array =
  let k = Array.length inp.node.Htg.Node.children in
  let nclasses = Platform.Desc.num_classes inp.pf in
  let units = Platform.Desc.units_per_class inp.pf in
  let w = Array.make (Model.num_vars inst.model) 0. in
  let v = inst.vars in
  let set var value = w.(var) <- value in
  let cur_max = Array.make nclasses 0 in
  let fits (cand : Solution.t) =
    let new_max =
      Array.init nclasses (fun c -> max cur_max.(c) cand.Solution.extra_units.(c))
    in
    let per_class_ok = ref true in
    Array.iteri
      (fun c m ->
        let need = m + if c = inp.seq_class then 1 else 0 in
        if need > units.(c) then per_class_ok := false)
      new_max;
    let total = 1 + Array.fold_left ( + ) 0 new_max in
    if !per_class_ok && total <= inp.budget then Some new_max else None
  in
  let total = ref (inst.header_us +. inst.tco_total) in
  for n = 0 to k - 1 do
    set v.x.(n).(0) 1.;
    let arr = inst.cands.(n).(inp.seq_class) in
    (* fastest fitting candidate; the sequential one always fits *)
    let best = ref (-1) in
    let best_max = ref cur_max in
    Array.iteri
      (fun s cand ->
        match fits cand with
        | Some new_max ->
            if !best < 0 || cand.Solution.time_us < arr.(!best).Solution.time_us
            then begin
              best := s;
              best_max := new_max
            end
        | None -> ())
      arr;
    let s =
      if !best >= 0 then !best
      else begin
        (* defensive: locate the sequential candidate *)
        let rec go i =
          if i >= Array.length arr then 0
          else if Solution.is_sequential arr.(i) then i
          else go (i + 1)
        in
        go 0
      end
    in
    if !best >= 0 then Array.blit !best_max 0 cur_max 0 nclasses;
    set v.p.(n).(inp.seq_class).(s) 1.;
    let cost_n = arr.(s).Solution.time_us in
    set v.contrib.(n).(0) cost_n;
    total := !total +. cost_n
  done;
  for c = 0 to nclasses - 1 do
    set v.procsused.(0).(c) (float_of_int cur_max.(c))
  done;
  set v.used.(0) 1.;
  set v.map_tc.(0).(inp.seq_class) 1.;
  set v.cost.(0) !total;
  set v.accum.(0) !total;
  set v.exectime !total;
  w

(* ------------------------------------------------------------------ *)
(* Greedy incumbent seed                                               *)
(* ------------------------------------------------------------------ *)

(** Evaluate the full model point implied by a parallel schedule [pk]:
    discrete variables come straight from the schedule's assignment; each
    continuous variable takes the minimal value its rows allow, in task
    order.  The construction is best-effort: a schedule the model rejects
    (e.g. a conflict pair split across chunks, or a candidate not in this
    instance's sets) yields [None] or an infeasible point — callers must
    check [Model.feasible] before trusting the point.  This is the shared
    schedule-to-model bridge of the greedy incumbent seed and of every
    heuristic-engine schedule (PR 10 portfolio). *)
let par_point (inp : input) (inst : instance) (pk : Solution.par) :
    float array option =
      let k = Array.length inp.node.Htg.Node.children in
      let nclasses = Platform.Desc.num_classes inp.pf in
      let v = inst.vars in
      let assignment = pk.Solution.assignment in
      let task_class = pk.Solution.task_class in
      let gtasks = Array.length task_class in
      if
        Array.length assignment <> k
        || gtasks > inst.ntasks
        || Array.exists (fun t -> t < 0 || t >= inst.ntasks) assignment
      then None
      else begin
        let w = Array.make (Model.num_vars inst.model) 0. in
        let set var value = w.(var) <- value in
        let class_of t =
          if t = 0 then inp.seq_class
          else if t < gtasks && task_class.(t) >= 0 then task_class.(t)
          else inp.seq_class
        in
        (* x and p; remember the picked candidate per child *)
        let picked = Array.make k None in
        let ok = ref true in
        for n = 0 to k - 1 do
          let t = assignment.(n) in
          set v.x.(n).(t) 1.;
          let c = class_of t in
          let chosen = pk.Solution.child_choice.(n) in
          let arr = inst.cands.(n).(c) in
          let s = ref (-1) in
          Array.iteri (fun i cand -> if !s < 0 && cand == chosen then s := i) arr;
          if !s < 0 then
            (* structural fallback: the sequential candidate of the class *)
            Array.iteri
              (fun i cand ->
                if !s < 0 && Solution.is_sequential cand then s := i)
              arr;
          match !s with
          | -1 -> ok := false
          | s ->
              set v.p.(n).(c).(s) 1.;
              picked.(n) <- Some arr.(s)
        done;
        if not !ok then None
        else begin
          let pick n =
            match picked.(n) with Some c -> c | None -> assert false
          in
          (* used / map_tc *)
          let used_t = Array.make inst.ntasks false in
          used_t.(0) <- true;
          Array.iter (fun t -> used_t.(t) <- true) assignment;
          for t = 0 to inst.ntasks - 1 do
            if used_t.(t) then begin
              set v.used.(t) 1.;
              set v.map_tc.(t).(class_of t) 1.
            end
          done;
          (* pred: minimal setting — exactly the pairs some edge forces *)
          List.iter
            (fun e ->
              if e.e_src >= 0 && e.e_dst >= 0 then begin
                let t = assignment.(e.e_src) and u = assignment.(e.e_dst) in
                if t < u then set v.pred.(t).(u) 1.
              end
              else if e.e_src = comm_in && e.e_dst >= 0 then begin
                let u = assignment.(e.e_dst) in
                if u > 0 then set v.pred.(0).(u) 1.
              end)
            inst.all_edges;
          (* cut indicators and communication cost per producing task *)
          let comm_t = Array.make inst.ntasks 0. in
          List.iter
            (fun (ei, cvars) ->
              let e = inst.flow_edges.(ei) in
              let ts = assignment.(e.e_src) and td = assignment.(e.e_dst) in
              if ts <> td then begin
                set cvars.(ts) 1.;
                comm_t.(ts) <- comm_t.(ts) +. e.e_cost_us
              end)
            v.cut;
          List.iter
            (fun e ->
              if
                e.e_src = comm_in && e.e_dst >= 0 && e.e_cost_us > 0.
                && assignment.(e.e_dst) <> 0
              then comm_t.(0) <- comm_t.(0) +. e.e_cost_us)
            inst.all_edges;
          for t = 0 to inst.ntasks - 1 do
            set v.commcost.(t) comm_t.(t)
          done;
          (* contrib / cost *)
          let cost_t = Array.make inst.ntasks 0. in
          for n = 0 to k - 1 do
            let cn = (pick n).Solution.time_us in
            set v.contrib.(n).(assignment.(n)) cn;
            cost_t.(assignment.(n)) <- cost_t.(assignment.(n)) +. cn
          done;
          for t = 0 to inst.ntasks - 1 do
            let base =
              (if t = 0 then inst.header_us else 0.)
              +. if used_t.(t) then inst.tco_total else 0.
            in
            cost_t.(t) <- cost_t.(t) +. base;
            set v.cost.(t) cost_t.(t)
          done;
          (* accum in task order (pred pairs only go low -> high) *)
          let accum_t = Array.make inst.ntasks 0. in
          for u = 0 to inst.ntasks - 1 do
            let a = ref cost_t.(u) in
            for t = 0 to u - 1 do
              if t < u && w.(v.pred.(t).(u)) > 0.5 then
                a := Float.max !a (cost_t.(u) +. accum_t.(t) +. comm_t.(t))
            done;
            accum_t.(u) <- !a;
            set v.accum.(u) !a
          done;
          (* inner processor usage: Eq 14 max semantics per task *)
          for t = 0 to inst.ntasks - 1 do
            for c = 0 to nclasses - 1 do
              let mx = ref 0 in
              for n = 0 to k - 1 do
                if assignment.(n) = t then
                  mx := max !mx (pick n).Solution.extra_units.(c)
              done;
              if !mx > 0 then set v.procsused.(t).(c) (float_of_int !mx)
            done
          done;
          (* exectime: Eq 11 over all tasks, plus the bus bound *)
          let ex = ref 0. in
          for t = 0 to inst.ntasks - 1 do
            let out = ref 0. in
            if t > 0 then
              List.iter
                (fun e ->
                  if
                    e.e_dst = comm_out && e.e_src >= 0 && e.e_cost_us > 0.
                    && assignment.(e.e_src) = t
                  then out := !out +. e.e_cost_us)
                inst.all_edges;
            ex := Float.max !ex (accum_t.(t) +. comm_t.(t) +. !out)
          done;
          ex := Float.max !ex (Array.fold_left ( +. ) 0. comm_t);
          set v.exectime !ex;
          Some w
        end
      end

(** Model point of the greedy list schedule ([Config.ilp_seed_incumbent]):
    a {e multi-task} incumbent complementing the sequential
    {!hierarchical_warm_start}, fed to branch & bound as an extra start
    (its own feasibility check filters rejected points). *)
let greedy_seed (inp : input) (inst : instance) : float array option =
  let edges3 =
    List.map (fun e -> (e.e_src, e.e_dst, e.e_cost_us)) inst.all_edges
  in
  match
    Degrade.greedy ~node:inp.node ~child_sets:inp.child_sets ~pf:inp.pf
      ~seq_class:inp.seq_class ~budget:inp.budget ~edges:edges3 ()
  with
  | Some { Solution.kind = Solution.Par pk; _ } -> par_point inp inst pk
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let extract (inp : input) (inst : instance) (out : Solver.outcome) :
    Solution.t option =
  match out.Solver.x with
  | None -> None
  | Some sol ->
      let value var = sol.(var) in
      let bval var = sol.(var) > 0.5 in
      let k = Array.length inp.node.Htg.Node.children in
      let nclasses = Platform.Desc.num_classes inp.pf in
      let v = inst.vars in
      let assignment =
        Array.init k (fun n ->
            let t = ref 0 in
            for u = 0 to inst.ntasks - 1 do
              if bval v.x.(n).(u) then t := u
            done;
            !t)
      in
      let task_class =
        Array.init inst.ntasks (fun t ->
            if not (bval v.used.(t)) then -1
            else begin
              let cls = ref inp.seq_class in
              for c = 0 to nclasses - 1 do
                if bval v.map_tc.(t).(c) then cls := c
              done;
              !cls
            end)
      in
      let child_choice =
        Array.init k (fun n ->
            let chosen = ref None in
            Array.iteri
              (fun c arr ->
                Array.iteri
                  (fun s var -> if bval var then chosen := Some inst.cands.(n).(c).(s))
                  arr)
              v.p.(n);
            match !chosen with
            | Some s -> s
            | None -> inst.cands.(n).(inp.seq_class).(0))
      in
      (* extra units: each used non-main task's own unit + per task the
         max inner usage over its children (Eq 14 semantics) *)
      let extra = Array.make nclasses 0 in
      for t = 0 to inst.ntasks - 1 do
        if task_class.(t) >= 0 then begin
          if t > 0 then extra.(task_class.(t)) <- extra.(task_class.(t)) + 1;
          for c = 0 to nclasses - 1 do
            let mx = ref 0 in
            for n = 0 to k - 1 do
              if assignment.(n) = t then
                mx := max !mx child_choice.(n).Solution.extra_units.(c)
            done;
            extra.(c) <- extra.(c) + !mx
          done
        end
      done;
      let time_us = value v.exectime in
      Some
        {
          Solution.node_id = inp.node.Htg.Node.id;
          main_class = inp.seq_class;
          time_us;
          extra_units = extra;
          degrade = Solution.Exact;
          kind =
            Solution.Par
              {
                Solution.assignment;
                task_class;
                child_choice;
                par_time_breakdown = Solution.no_breakdown;
              };
        }

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let is_int_kind = function Model.Bool | Model.Int -> true | Model.Cont -> false

(** Second rung: solve the root LP relaxation once, round the integer
    variables, and accept the point only if it satisfies the full model.
    The fabricated outcome carries [Feasible] so downstream sweep chaining
    treats it like an incumbent-quality result (no [known_lb] proof). *)
let lp_round (inp : input) (inst : instance) :
    (Solution.t * Solver.outcome) option =
  match Simplex.solve_counted inst.model with
  | Simplex.Optimal { x; _ }, _ ->
      let y = Array.copy x in
      for v = 0 to Model.num_vars inst.model - 1 do
        if is_int_kind (Model.var_info inst.model v).Model.kind then
          y.(v) <- Float.round y.(v)
      done;
      if not (Model.feasible inst.model (fun v -> y.(v))) then None
      else begin
        let obj = Model.objective_value inst.model (fun v -> y.(v)) in
        let out =
          {
            Solver.status = Branch_bound.Feasible;
            x = Some y;
            obj;
            nodes = 0;
            time_s = 0.;
            incumbents = [];
          }
        in
        Option.map
          (fun r -> ({ r with Solution.degrade = Solution.Lp_round }, out))
          (extract inp inst out)
      end
  | (Simplex.Infeasible | Simplex.Unbounded | Simplex.Stalled), _ -> None
  | exception Fault.Injected _ ->
      (* the relaxation's pivots hit the same probes branch & bound did;
         give up on this rung and let the caller fall to greedy *)
      None

(** Rungs below best-incumbent, tried in order: LP rounding, greedy list
    scheduling, and finally [None] — the node then keeps its sequential
    candidate only (recorded as a seq-fallback in [stats]). *)
let degrade_ladder ?stats (inp : input) (inst : instance) :
    (Solution.t * Solver.outcome) option =
  let record level =
    (match stats with Some s -> Stats.record_degraded s level | None -> ());
    if Trace.enabled () then
      Trace.instant ~cat:"ilp" "degrade"
        ~args:
          [
            ("node", Trace.Int inp.node.Htg.Node.id);
            ( "rung",
              Trace.Str
                (match level with
                | `Incumbent -> "incumbent"
                | `Lp_round -> "lp_round"
                | `Greedy -> "greedy"
                | `Seq_fallback -> "seq_fallback") );
          ]
  in
  match lp_round inp inst with
  | Some r ->
      record `Lp_round;
      Some r
  | None -> (
      let edges =
        List.map (fun e -> (e.e_src, e.e_dst, e.e_cost_us)) inst.all_edges
      in
      match
        Degrade.greedy ~node:inp.node ~child_sets:inp.child_sets ~pf:inp.pf
          ~seq_class:inp.seq_class ~budget:inp.budget ~edges ()
      with
      | Some r ->
          record `Greedy;
          let out =
            {
              Solver.status = Branch_bound.Feasible;
              x = None;
              obj = r.Solution.time_us;
              nodes = 0;
              time_s = 0.;
              incumbents = [];
            }
          in
          Some (r, out)
      | None ->
          record `Seq_fallback;
          None)

(** Run branch & bound on an already-built instance and classify the
    outcome.  Solver limits and injected solver faults never lose the
    subproblem: results are tagged with their {!Solution.degradation}
    level and {!degrade_ladder} supplies a constructive fallback.  Shared
    by the classic exact path ({!solve_ext}) and the portfolio driver,
    which passes a reduced work limit and the heuristic incumbent as an
    extra start. *)
let solve_built ?stats ?cache (inp : input) (inst : instance) ~options
    ~warm_start ~extra_starts : (Solution.t * Solver.outcome) option =
  match
    Solver.solve ~options ~warm_start ~extra_starts ?cache ?stats inst.model
  with
  | out -> (
      match out.Solver.status with
      | Branch_bound.Optimal ->
          Option.map (fun r -> (r, out)) (extract inp inst out)
      | Branch_bound.Feasible -> (
          match extract inp inst out with
          | Some r ->
              (match stats with
              | Some s -> Stats.record_degraded s `Incumbent
              | None -> ());
              if Trace.enabled () then
                Trace.instant ~cat:"ilp" "degrade"
                  ~args:
                    [
                      ("node", Trace.Int inp.node.Htg.Node.id);
                      ("rung", Trace.Str "incumbent");
                    ];
              Some ({ r with Solution.degrade = Solution.Incumbent }, out)
          | None -> None)
      | Branch_bound.Infeasible | Branch_bound.Unbounded -> None
      | Branch_bound.Limit -> degrade_ladder ?stats inp inst)
  | exception Fault.Injected _ -> degrade_ladder ?stats inp inst

(** Build and solve one ILPPAR instance.  Returns [None] when the node has
    fewer than two children or the budget admits no parallelism.  [prev]
    is the outcome of the preceding (larger-budget) solve of the same
    sweep, chained into a lower bound and warm starts (see {!Sweep}). *)
let solve_ext ?stats ?cache ?prev (inp : input) :
    (Solution.t * Solver.outcome) option =
  match build inp with
  | None -> None
  | Some inst ->
      let options = Sweep.chain_options inp.cfg prev in
      let warm = hierarchical_warm_start inp inst in
      let extra_starts =
        Sweep.chain_starts inp.cfg prev ~num_vars:(Model.num_vars inst.model)
      in
      (* greedy incumbent seeding: append the multi-task greedy schedule
         as a starting point, after the chained trail so chained points
         keep their historical precedence in the incumbent race *)
      let extra_starts =
        if inp.cfg.Config.ilp_seed_incumbent then
          extra_starts
          @ (match greedy_seed inp inst with Some y -> [ y ] | None -> [])
        else extra_starts
      in
      solve_built ?stats ?cache inp inst ~options ~warm_start:warm
        ~extra_starts

let solve ?stats ?cache (inp : input) : Solution.t option =
  Option.map fst (solve_ext ?stats ?cache inp)

(** The full decreasing-budget ILPPAR sweep for one (node, class), with
    cross-budget chaining; candidates in discovery order. *)
let sweep ?stats ?cache ~total_units (inp : input) : Solution.t list =
  Sweep.run ~total_units ~solve:(fun ~budget ~prev ->
      solve_ext ?stats ?cache ?prev { inp with budget })
