(** Human-readable annotation output: the parallel specification and the
    task-to-processor-class pre-mapping the paper's tool emits for the
    ATOMIUM/MPA tools (or as an OpenMP extension).  We render both as one
    pragma-style report keyed to AHTG node labels. *)

let class_name (pf : Platform.Desc.t) c =
  if c >= 0 && c < Platform.Desc.num_classes pf then
    (Platform.Desc.proc_class pf c).Platform.Proc_class.name
  else "?"

let rec emit buf pf ~indent (node : Htg.Node.t) (sol : Solution.t) =
  let pad = String.make (2 * indent) ' ' in
  match sol.Solution.kind with
  | Solution.Seq _ ->
      Buffer.add_string buf
        (Printf.sprintf "%s// %s: sequential on %s (%.1f us)\n" pad
           node.Htg.Node.label
           (class_name pf sol.Solution.main_class)
           sol.Solution.time_us)
  | Solution.Split sp ->
      let total = Array.fold_left ( +. ) 0. sp.Solution.chunk_iters in
      Buffer.add_string buf
        (Printf.sprintf "%s#pragma par split %s  // %.1f us\n" pad
           node.Htg.Node.label sol.Solution.time_us);
      Array.iteri
        (fun t iters ->
          if iters > 0. then
            Buffer.add_string buf
              (Printf.sprintf "%s  task %d on %s: %.0f/%.0f iterations\n" pad t
                 (class_name pf sp.Solution.split_class.(t))
                 iters total))
        sp.Solution.chunk_iters
  | Solution.Pipeline p ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s#pragma par pipeline %s  // %.1f us, bottleneck %.2f us/iter\n"
           pad node.Htg.Node.label sol.Solution.time_us
           p.Solution.bottleneck_us);
      Array.iteri
        (fun t cls ->
          if cls >= 0 then begin
            Buffer.add_string buf
              (Printf.sprintf "%s  stage %d on %s: statements" pad t
                 (class_name pf cls));
            Array.iteri
              (fun n st -> if st = t then Buffer.add_string buf (Printf.sprintf " %d" n))
              p.Solution.stage_of;
            Buffer.add_string buf "\n"
          end)
        p.Solution.stage_class
  | Solution.Par p ->
      Buffer.add_string buf
        (Printf.sprintf "%s#pragma par region %s  // %.1f us\n" pad
           node.Htg.Node.label sol.Solution.time_us);
      let ntasks = Array.length p.Solution.task_class in
      for t = 0 to ntasks - 1 do
        if p.Solution.task_class.(t) >= 0 then begin
          Buffer.add_string buf
            (Printf.sprintf "%s  task %d on %s:\n" pad t
               (class_name pf p.Solution.task_class.(t)));
          Array.iteri
            (fun n tt ->
              if tt = t then
                emit buf pf ~indent:(indent + 2)
                  node.Htg.Node.children.(n)
                  p.Solution.child_choice.(n))
            p.Solution.assignment
        end
      done

(** Render the chosen solution as an annotated parallel specification. *)
let specification (pf : Platform.Desc.t) (htg : Htg.Node.t) (sol : Solution.t) :
    string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "// parallel specification for platform: %s\n"
       (Fmt.str "%a" Platform.Desc.pp_summary pf));
  emit buf pf ~indent:0 htg sol;
  Buffer.contents buf

(** The pre-mapping specification: a flat list of (task path, class). *)
let pre_mapping (pf : Platform.Desc.t) (htg : Htg.Node.t) (sol : Solution.t) :
    (string * string) list =
  let out = ref [] in
  let rec go path (node : Htg.Node.t) (s : Solution.t) =
    match s.Solution.kind with
    | Solution.Seq _ -> ()
    | Solution.Split sp ->
        Array.iteri
          (fun t iters ->
            if iters > 0. then
              out :=
                ( Printf.sprintf "%s/%s.chunk%d" path node.Htg.Node.label t,
                  class_name pf sp.Solution.split_class.(t) )
                :: !out)
          sp.Solution.chunk_iters
    | Solution.Pipeline p ->
        Array.iteri
          (fun t cls ->
            if cls >= 0 then
              out :=
                ( Printf.sprintf "%s/%s.stage%d" path node.Htg.Node.label t,
                  class_name pf cls )
                :: !out)
          p.Solution.stage_class
    | Solution.Par p ->
        Array.iteri
          (fun t cls ->
            if cls >= 0 then
              out :=
                ( Printf.sprintf "%s/%s.task%d" path node.Htg.Node.label t,
                  class_name pf cls )
                :: !out)
          p.Solution.task_class;
        Array.iteri
          (fun n tt ->
            ignore tt;
            go
              (Printf.sprintf "%s/%s" path node.Htg.Node.label)
              node.Htg.Node.children.(n)
              p.Solution.child_choice.(n))
          p.Solution.assignment
  in
  go "" htg sol;
  List.rev !out
