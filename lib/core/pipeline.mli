(** Software pipelining of sequential loops — the parallelism type the
    paper names as future work, implemented as an opt-in extension
    ([Config.enable_pipeline]).  Body statements are partitioned into
    contiguous stages that overlap across iterations; the stage
    partitioning and stage-to-class mapping is a small ILP minimizing the
    bottleneck stage's per-iteration time.  Handoffs are batched into
    FIFO blocks of {!handoff_batch} iterations. *)

type input = {
  node : Htg.Node.t;  (** a sequential (non-DOALL) loop node *)
  pf : Platform.Desc.t;
  seq_class : int;
  budget : int;
  cfg : Config.t;
}

val handoff_batch : float

(** [None] when the node is not a pipelineable loop, the budget admits no
    parallelism, or no multi-stage partition beats one stage. *)
val solve : ?stats:Ilp.Stats.t -> input -> Solution.t option
