(** Software pipelining of sequential loops — the parallelism type the
    paper names as future work, implemented as an opt-in extension
    ([Config.enable_pipeline]).  Body statements are partitioned into
    contiguous stages that overlap across iterations; the stage
    partitioning and stage-to-class mapping is a small ILP minimizing the
    bottleneck stage's per-iteration time.  Handoffs are batched into
    FIFO blocks of {!handoff_batch} iterations. *)

type input = {
  node : Htg.Node.t;  (** a sequential (non-DOALL) loop node *)
  pf : Platform.Desc.t;
  seq_class : int;
  budget : int;
  cfg : Config.t;
}

val handoff_batch : float

(** [None] when the node is not a pipelineable loop, the budget admits no
    parallelism, or no multi-stage partition beats one stage.  [cache]
    memoizes the solve on the model's structural fingerprint. *)
val solve : ?stats:Ilp.Stats.t -> ?cache:Ilp.Memo.t -> input -> Solution.t option

(** Like {!solve} but also returns the raw solver outcome; [prev] chains
    the preceding (larger-budget) outcome of the same sweep (see
    {!Sweep}). *)
val solve_ext :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  ?prev:Ilp.Solver.outcome ->
  input ->
  (Solution.t * Ilp.Solver.outcome) option

(** The decreasing-budget pipelining sweep for one (node, class) —
    [input.budget] is ignored, the sweep starts at [total_units]. *)
val sweep :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  total_units:int ->
  input ->
  Solution.t list
