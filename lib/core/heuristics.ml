(** Heuristic scheduling engine of the solver portfolio.

    Produces good-but-unproven schedules for the same ILPPAR subproblem
    {!Formulation.build} models, without running branch & bound: a family
    of AMTHA-style balanced list schedules (one per task count) refined
    by a small seeded genetic algorithm, in the spirit of evolutionary
    mapping heuristics for heterogeneous MPSoCs.

    Every schedule is expressed as a {!Solution.par} over contiguous
    chunks of the topological child order — so the paper's cycle-freedom
    constraint (Eq. 10) holds by construction — bridged to a full model
    point with {!Formulation.par_point} and accepted only if
    [Ilp.Model.feasible] holds on the {e exact} model.  Quality is thus
    measured with the exact objective; only optimality is forgone.

    Determinism: candidate generation is pure, the GA uses a private
    linear-congruential generator seeded from the subproblem shape (never
    wall clock or [Stdlib.Random]), and memoized answers are single-flight
    — results are bit-identical at any worker count. *)

open Ilp

(* ---- deterministic pseudo-randomness (Java-style 48-bit LCG) ---- *)

let mask48 = (1 lsl 48) - 1

let lcg_seed ~node_id ~seq_class ~budget ~ntasks : int ref =
  ref
    ((node_id * 2654435761) lxor (seq_class * 40503)
     lxor (budget * 65599) lxor (ntasks * 97) lxor 0x5DEECE66D
    land mask48)

let lcg_next st =
  st := ((!st * 0x5DEECE66D) + 0xB) land mask48;
  !st

(** Uniform-ish int in [0, n); 0 when [n <= 0]. *)
let rand_int st n = if n <= 0 then 0 else lcg_next st lsr 16 mod n

(* ---- schedules as genomes ---- *)

(** A fork/join schedule over contiguous chunks of the child order:
    chunk [j] holds children [cut.(j-1) .. cut.(j) - 1] (with implicit
    outer boundaries 0 and [k]); [cls.(j)] is chunk [j]'s processor
    class, [cls.(0)] always the sweep's main class.  [cut] is strictly
    increasing, so every chunk is non-empty and task ids are dense. *)
type genome = { cut : int array; cls : int array }

let assignment_of_genome ~k (g : genome) : int array =
  let m = Array.length g.cls in
  let a = Array.make k 0 in
  let j = ref 0 in
  for n = 0 to k - 1 do
    while !j < m - 1 && n >= g.cut.(!j) do
      incr j
    done;
    a.(n) <- !j
  done;
  a

(** Chunk boundaries balancing the children's sequential cost on the
    main class, clamped so every chunk keeps at least one child. *)
let balanced_cut ~k ~m (cost : int -> float) : int array =
  let pre = Array.make (k + 1) 0. in
  for n = 0 to k - 1 do
    pre.(n + 1) <- pre.(n) +. cost n
  done;
  let grand = pre.(k) in
  let cut = Array.make (m - 1) 0 in
  let prev = ref 0 in
  for j = 1 to m - 1 do
    let target = float_of_int j *. grand /. float_of_int m in
    let i = ref (!prev + 1) in
    while !i < k - (m - 1 - j) && pre.(!i) < target do
      incr i
    done;
    let i = max (!prev + 1) (min !i (k - (m - j))) in
    cut.(j - 1) <- i;
    prev := i
  done;
  cut

(** Classes for [m] chunks: the main chunk keeps [seq_class]; the others
    greedily take the fastest classes with free units (deterministic
    tie-break on the class index), as {!Degrade.greedy} does.  [None]
    when the platform cannot host [m] tasks at all. *)
let greedy_classes (pf : Platform.Desc.t) ~seq_class ~m : int array option =
  let nclasses = Platform.Desc.num_classes pf in
  let avail = Array.copy (Platform.Desc.units_per_class pf) in
  avail.(seq_class) <- avail.(seq_class) - 1;
  let order =
    List.init nclasses Fun.id
    |> List.sort (fun a b ->
           match
             compare
               (Platform.Proc_class.speed (Platform.Desc.proc_class pf b))
               (Platform.Proc_class.speed (Platform.Desc.proc_class pf a))
           with
           | 0 -> compare a b
           | c -> c)
  in
  let cls = Array.make m seq_class in
  let ok = ref true in
  for t = 1 to m - 1 do
    match List.find_opt (fun c -> avail.(c) > 0) order with
    | Some c ->
        avail.(c) <- avail.(c) - 1;
        cls.(t) <- c
    | None -> ok := false
  done;
  if !ok then Some cls else None

(* ---- candidate selection under the unit budgets ---- *)

(** Chosen candidate per child for a bare (assignment, class) schedule:
    start from every child's sequential candidate of its task's class and
    greedily upgrade, child by child, to the fastest candidate that still
    fits the per-class unit budgets and the sweep's global budget under
    Eq. 14's max-per-task inner-usage semantics.  [None] when the bare
    schedule already overcommits a class (the GA may propose that). *)
let choose_children (inp : Formulation.input) (inst : Formulation.instance)
    ~(assignment : int array) ~(task_class : int array) :
    Solution.t array option =
  let k = Array.length assignment in
  let nclasses = Platform.Desc.num_classes inp.pf in
  let units = Platform.Desc.units_per_class inp.pf in
  let ntasks = Array.length task_class in
  let class_count = Array.make nclasses 0 in
  Array.iter
    (fun c -> if c >= 0 then class_count.(c) <- class_count.(c) + 1)
    task_class;
  let base_ok = ref (ntasks <= inp.budget) in
  Array.iteri
    (fun c cnt -> if cnt > units.(c) then base_ok := false)
    class_count;
  if not !base_ok then None
  else begin
    let inner = Array.make_matrix ntasks nclasses 0 in
    let col_inner = Array.make nclasses 0 in
    let total_inner = ref 0 in
    let choice =
      Array.init k (fun n ->
          Solution.seq_of inp.child_sets.(n) task_class.(assignment.(n)))
    in
    for n = 0 to k - 1 do
      let t = assignment.(n) in
      let cls = task_class.(t) in
      let arr = inst.Formulation.cands.(n).(cls) in
      let best = ref None in
      Array.iter
        (fun (cand : Solution.t) ->
          let fits = ref true in
          let extra = ref 0 in
          for c = 0 to nclasses - 1 do
            let d = max 0 (cand.Solution.extra_units.(c) - inner.(t).(c)) in
            extra := !extra + d;
            if class_count.(c) + col_inner.(c) + d > units.(c) then
              fits := false
          done;
          if ntasks + !total_inner + !extra > inp.budget then fits := false;
          if
            !fits
            && (match !best with
               | None -> true
               | Some (b : Solution.t) ->
                   cand.Solution.time_us < b.Solution.time_us)
          then best := Some cand)
        arr;
      match !best with
      | Some cand ->
          choice.(n) <- cand;
          for c = 0 to nclasses - 1 do
            let d = max 0 (cand.Solution.extra_units.(c) - inner.(t).(c)) in
            if d > 0 then begin
              inner.(t).(c) <- cand.Solution.extra_units.(c);
              col_inner.(c) <- col_inner.(c) + d;
              total_inner := !total_inner + d
            end
          done
      | None -> ()
    done;
    Some choice
  end

(* ---- evaluation on the exact model ---- *)

(** Evaluate a genome as a full model point: exact objective on success,
    [None] when the schedule is rejected (class overuse, or the model's
    own feasibility check fails — e.g. a conflict pair split apart). *)
let eval_genome (inp : Formulation.input) (inst : Formulation.instance)
    (g : genome) : (float array * float) option =
  let k = Array.length inp.node.Htg.Node.children in
  let assignment = assignment_of_genome ~k g in
  match choose_children inp inst ~assignment ~task_class:g.cls with
  | None -> None
  | Some child_choice -> (
      let pk =
        {
          Solution.assignment;
          task_class = g.cls;
          child_choice;
          par_time_breakdown = Solution.no_breakdown;
        }
      in
      match Formulation.par_point inp inst pk with
      | None -> None
      | Some w ->
          if Model.feasible inst.Formulation.model (fun v -> w.(v)) then
            Some (w, Model.objective_value inst.Formulation.model (fun v -> w.(v)))
          else None)

(* ---- the GA refiner ---- *)

let mutate st ~k ~nclasses (g : genome) : genome =
  let m = Array.length g.cls in
  let g' = { cut = Array.copy g.cut; cls = Array.copy g.cls } in
  (match rand_int st 3 with
  | 0 when m >= 2 ->
      (* move one chunk boundary by one child *)
      let j = rand_int st (m - 1) in
      let lo = if j = 0 then 1 else g'.cut.(j - 1) + 1 in
      let hi = if j = m - 2 then k - 1 else g'.cut.(j + 1) - 1 in
      let v = g'.cut.(j) + if rand_int st 2 = 0 then -1 else 1 in
      if v >= lo && v <= hi then g'.cut.(j) <- v
  | 1 when m >= 2 ->
      (* reassign one extra chunk's class (eval rejects overuse) *)
      let t = 1 + rand_int st (m - 1) in
      g'.cls.(t) <- rand_int st nclasses
  | _ ->
      if m >= 3 then begin
        (* swap the classes of two extra chunks *)
        let a = 1 + rand_int st (m - 1) and b = 1 + rand_int st (m - 1) in
        let tmp = g'.cls.(a) in
        g'.cls.(a) <- g'.cls.(b);
        g'.cls.(b) <- tmp
      end);
  g'

let crossover st ~k (a : genome) (b : genome) : genome option =
  let m = Array.length a.cls in
  if Array.length b.cls <> m || m < 2 then None
  else begin
    let pt = 1 + rand_int st (m - 1) in
    let cls = Array.init m (fun i -> if i < pt then a.cls.(i) else b.cls.(i)) in
    let cut =
      Array.init (m - 1) (fun j -> if j < pt - 1 then a.cut.(j) else b.cut.(j))
    in
    (* repair monotonicity; reject if the tail no longer fits *)
    let ok = ref true in
    for j = 0 to m - 2 do
      let lo = if j = 0 then 1 else cut.(j - 1) + 1 in
      if cut.(j) < lo then cut.(j) <- lo;
      if cut.(j) > k - (m - 1 - j) then ok := false
    done;
    if !ok then Some { cut; cls } else None
  end

(* total order on evaluated genomes: objective first, then the genome
   itself — ties never depend on arrival order, keeping the GA
   deterministic *)
let cmp_eval (g1, (_, o1)) (g2, (_, o2)) =
  match compare (o1 : float) o2 with 0 -> compare g1 g2 | c -> c

let ga_generations = 6
let ga_elite = 4
let ga_offspring_per_elite = 2

let refine st (inp : Formulation.input) (inst : Formulation.instance)
    ~(pool : (genome * (float array * float)) list) :
    (genome * (float array * float)) list =
  let k = Array.length inp.node.Htg.Node.children in
  let nclasses = Platform.Desc.num_classes inp.pf in
  let seen = Hashtbl.create 64 in
  List.iter (fun (g, _) -> Hashtbl.replace seen g ()) pool;
  let pop = ref (List.sort cmp_eval pool) in
  for _gen = 1 to ga_generations do
    let elite = List.filteri (fun i _ -> i < ga_elite) !pop in
    let proposals =
      List.concat_map
        (fun (g, _) ->
          List.init ga_offspring_per_elite (fun _ ->
              mutate st ~k ~nclasses g))
        elite
      @
      match elite with
      | (g1, _) :: (g2, _) :: _ -> (
          match crossover st ~k g1 g2 with Some g -> [ g ] | None -> [])
      | _ -> []
    in
    let fresh =
      List.filter_map
        (fun g ->
          if Hashtbl.mem seen g then None
          else begin
            Hashtbl.replace seen g ();
            Option.map (fun e -> (g, e)) (eval_genome inp inst g)
          end)
        proposals
    in
    if fresh <> [] then pop := List.sort cmp_eval (elite @ fresh)
  done;
  !pop

(* ---- the engine ---- *)

let compute (inp : Formulation.input) (inst : Formulation.instance) :
    (float array * float) option =
  let k = Array.length inp.node.Htg.Node.children in
  let cost_of n =
    (Solution.seq_of inp.child_sets.(n) inp.seq_class).Solution.time_us
  in
  (* one balanced list schedule per feasible task count *)
  let pool =
    List.filter_map
      (fun m ->
        match greedy_classes inp.pf ~seq_class:inp.seq_class ~m with
        | None -> None
        | Some cls ->
            let g = { cut = balanced_cut ~k ~m cost_of; cls } in
            Option.map (fun e -> (g, e)) (eval_genome inp inst g))
      (List.init (max 0 (inst.Formulation.ntasks - 1)) (fun i -> i + 2))
  in
  let st =
    lcg_seed ~node_id:inp.node.Htg.Node.id ~seq_class:inp.seq_class
      ~budget:inp.budget ~ntasks:inst.Formulation.ntasks
  in
  let pool = if pool = [] then pool else refine st inp inst ~pool in
  (* the sequential warm start is the always-feasible baseline: the
     engine can be no worse than everything-in-the-main-task *)
  let warm = Formulation.hierarchical_warm_start inp inst in
  let warm_eval =
    if Model.feasible inst.Formulation.model (fun v -> warm.(v)) then
      Some
        (warm, Model.objective_value inst.Formulation.model (fun v -> warm.(v)))
    else None
  in
  let best =
    List.fold_left
      (fun acc (_, (w, o)) ->
        match acc with
        | Some (_, bo) when bo <= o -> acc
        | _ -> Some (w, o))
      warm_eval pool
  in
  best

(** Best heuristic point of one built instance: the model point and its
    exact-model objective.  Memoized (under the ["heuristic"] engine
    fingerprint, so it can never replay as an exact answer) and recorded
    in [stats] as a heuristic solve or a cache hit. *)
let best_point ?stats ?cache (inp : Formulation.input)
    (inst : Formulation.instance) : (float array * float) option =
  let model = inst.Formulation.model in
  let t0 = Clock.now_s () in
  let result, cached =
    match cache with
    | None -> (compute inp inst, false)
    | Some c -> (
        let key = Memo.fingerprint ~engine:"heuristic" model in
        match Memo.find_or_reserve ~engine:"heuristic" c key with
        | `Hit sol -> (
            ( (match sol.Branch_bound.x with
              (* cached points are shared: copy before handing the array
                 to branch & bound as a start *)
              | Some w -> Some (Array.copy w, sol.Branch_bound.obj)
              | None -> None),
              true ))
        | `Reserved -> (
            match compute inp inst with
            | Some (w, obj) ->
                Memo.fill ~engine:"heuristic" c key
                  {
                    Branch_bound.status = Branch_bound.Feasible;
                    x = Some w;
                    obj;
                    nodes = 0;
                    pivots = 0;
                    cuts = 0;
                    incumbents = [];
                  };
                (Some (Array.copy w, obj), false)
            | None ->
                Memo.fill ~engine:"heuristic" c key
                  {
                    Branch_bound.status = Branch_bound.Infeasible;
                    x = None;
                    obj = nan;
                    nodes = 0;
                    pivots = 0;
                    cuts = 0;
                    incumbents = [];
                  };
                (None, false)
            | exception e ->
                Memo.cancel c key;
                raise e))
  in
  let time_s = Clock.now_s () -. t0 in
  (match stats with
  | Some s ->
      if cached then Stats.record_cache_hit s
      else Stats.record_heuristic s ~time_s
  | None -> ());
  if Trace.enabled () then
    Trace.complete ~cat:"ilp" ~t0_s:t0 (Model.name model)
      ~args:
        [
          ("engine", Trace.Str "heuristic");
          ("vars", Trace.Int (Model.num_vars model));
          ("constrs", Trace.Int (Model.num_constraints model));
          ("status", Trace.Str (if result = None then "infeasible" else "feasible"));
          ("cached", Trace.Bool cached);
        ];
  result

(** Solve one subproblem purely heuristically ([--solver=heuristic]):
    the best heuristic schedule extracted as a candidate tagged
    {!Solution.Heuristic}, with a fabricated [Feasible] outcome so the
    sweep's budget chaining works unchanged.  [None] when no feasible
    point was found (the node keeps its sequential candidate). *)
let solve ?stats ?cache (inp : Formulation.input)
    (inst : Formulation.instance) : (Solution.t * Solver.outcome) option =
  match best_point ?stats ?cache inp inst with
  | None -> None
  | Some (w, obj) ->
      let out =
        {
          Solver.status = Branch_bound.Feasible;
          x = Some w;
          obj;
          nodes = 0;
          time_s = 0.;
          incumbents = [];
        }
      in
      Option.map
        (fun r -> ({ r with Solution.degrade = Solution.Heuristic }, out))
        (Formulation.extract inp inst out)
