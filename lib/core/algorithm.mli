(** The global parallelization algorithm (paper Algorithm 1): bottom-up
    over the AHTG, running the partitioning-and-mapping ILP once per
    processor class and per decreasing processor budget, collecting tagged
    parallel solution candidates per node; DOALL loops additionally
    receive iteration-splitting candidates.  Sets are Pareto-pruned per
    class with the per-class sequential candidate always retained (which
    guarantees feasibility of every parent ILP). *)

type result = {
  root_set : Solution.set;
  root : Solution.t;
      (** best candidate whose main class is the platform's main class —
          the one Algorithm 1 line 4 implements *)
  sets : (int, Solution.set) Hashtbl.t;  (** per AHTG node id *)
  stats : Ilp.Stats.t;
  wall_time_s : float;
  disk_cache : Cache.Store.counters option;
      (** persistent-cache traffic of this run ([None] without a store) *)
  solver : Config.solver;
      (** engine the run used ([Config.solver]); {!degradation} judges
          the root's tag against this mode's acceptable tier *)
}

(** Sequential candidate of a node on a class (children, if any, use their
    sequential candidates of the same class). *)
val seq_candidate :
  (int, Solution.set) Hashtbl.t ->
  Platform.Desc.t ->
  Htg.Node.t ->
  int ->
  Solution.t

(** Run Algorithm 1.  With [cfg.jobs > 1] (or [= 0], meaning the
    recommended domain count), sibling subtrees and the independent
    (class, sweep-kind) budget sweeps run as tasks on a domain pool —
    [pool] reuses an existing one, otherwise the run creates and shuts
    down its own.  Chosen solutions (and their [time_us]) are
    bit-identical at any [jobs] value; see the implementation notes on
    why.  [cfg.solve_cache] memoizes structurally identical ILPs within
    the run; [store] (or [cfg.cache_dir], which opens a run-private one)
    adds the persistent cross-run tier under the same single-flight memo,
    so a warm run answers every solve from disk, bit-identically.
    [memo] shares one in-memory solve cache across runs (server mode
    keeps a hot memo per platform); it takes precedence over
    [cfg.solve_cache], and its backing tier must have been created with
    this platform's salt. *)
val parallelize :
  ?cfg:Config.t ->
  ?stats:Ilp.Stats.t ->
  ?pool:Taskpool.Pool.t ->
  ?store:Cache.Store.t ->
  ?memo:Ilp.Memo.t ->
  Platform.Desc.t ->
  Htg.Node.t ->
  result

val digest : result -> string
(** Canonical hex digest of everything the run decided (root solution,
    root candidate set, every node's candidate set in node-id order).
    Two runs chose bit-identical solutions iff their digests match; the
    batch CLI prints it per target and the serve protocol returns it
    per request. *)

val degradation : result -> string option
(** [Some name] iff the run must be reported degraded-but-valid (CLI
    exit 2 / serve status [degraded]): the chosen solution carries a
    degradation tag, or the solver ladder engaged during the sweep. *)
