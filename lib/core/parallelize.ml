(** End-to-end parallelization pipeline (paper Fig. 6):
    source → frontend → profiling ("target simulation") → AHTG →
    ILP parallelization → implementation for the MPSoC simulator.

    [Heterogeneous] is the paper's contribution; [Homogeneous] reproduces
    the baseline [Cordes et al., CODES+ISSS 2010]: the same machinery run
    against the class-blind view of the platform, with the resulting tasks
    placed on physical cores by a class-oblivious mapping stage. *)

type approach = Heterogeneous | Homogeneous

let approach_name = function
  | Heterogeneous -> "heterogeneous"
  | Homogeneous -> "homogeneous"

type outcome = {
  approach : approach;
  platform : Platform.Desc.t;
  htg : Htg.Node.t;
  algo : Algorithm.result;
  program : Sim.Prog.node;  (** parallel program realized on the platform *)
  seq_program : Sim.Prog.node;  (** sequential baseline on the main core *)
  profile : Interp.Profile.t;
}

(** Parallelize an already-compiled (inlined) program.  [profile] lets
    callers reuse one profiling run across platforms and approaches. *)
let run_program ?(cfg = Config.default) ?profile ~approach
    ~(platform : Platform.Desc.t) (prog : Minic.Ast.program) : outcome =
  let profile =
    match profile with
    | Some p -> p
    | None ->
        (Interp.Eval.run ~max_steps:cfg.Config.max_steps prog)
          .Interp.Eval.profile
  in
  let htg = Htg.Build.build ~max_children:cfg.Config.max_children prog profile in
  let view =
    match approach with
    | Heterogeneous -> platform
    | Homogeneous -> Platform.Desc.homogeneous_view platform
  in
  let algo = Algorithm.parallelize ~cfg view htg in
  let mode =
    match approach with
    | Heterogeneous -> Implement.Pre_mapped
    | Homogeneous -> Implement.Oblivious
  in
  let program = Implement.realize ~mode platform htg algo.Algorithm.root in
  let seq_program = Implement.realize_sequential htg in
  { approach; platform; htg; algo; program; seq_program; profile }

(** Parallelize from source text. *)
let run ?cfg ~approach ~platform (src : string) : outcome =
  run_program ?cfg ~approach ~platform (Minic.Frontend.compile src)

(** Simulated speedup of the outcome over sequential execution on the
    platform's main core. *)
let speedup (o : outcome) : float =
  Sim.Engine.speedup o.platform ~sequential:o.seq_program ~parallel:o.program

let metrics (o : outcome) = Sim.Engine.run_metrics o.platform o.program
