(** End-to-end parallelization pipeline (paper Fig. 6):
    source → frontend → profiling ("target simulation") → AHTG →
    ILP parallelization → implementation for the MPSoC simulator.

    [Heterogeneous] is the paper's contribution; [Homogeneous] reproduces
    the baseline [Cordes et al., CODES+ISSS 2010]: the same machinery run
    against the class-blind view of the platform, with the resulting tasks
    placed on physical cores by a class-oblivious mapping stage. *)

type approach = Heterogeneous | Homogeneous

let approach_name = function
  | Heterogeneous -> "heterogeneous"
  | Homogeneous -> "homogeneous"

type outcome = {
  approach : approach;
  platform : Platform.Desc.t;
  htg : Htg.Node.t;
  algo : Algorithm.result;
  program : Sim.Prog.node;  (** parallel program realized on the platform *)
  seq_program : Sim.Prog.node;  (** sequential baseline on the main core *)
  profile : Interp.Profile.t;
}

(** Parallelize an already-compiled (inlined) program.  [profile] lets
    callers reuse one profiling run across platforms and approaches;
    [pool] and [store] likewise share a taskpool and persistent solve
    cache across many invocations (batch mode). *)
let run_program ?(cfg = Config.default) ?profile ?pool ?store ?memo ~approach
    ~(platform : Platform.Desc.t) (prog : Minic.Ast.program) : outcome =
  let profile =
    match profile with
    | Some p -> p
    | None ->
        Trace.span ~cat:"phase" "profile" (fun () ->
            (Interp.Eval.run ~max_steps:cfg.Config.max_steps prog)
              .Interp.Eval.profile)
  in
  let htg =
    Trace.span ~cat:"phase" "htg" (fun () ->
        Htg.Build.build ~max_children:cfg.Config.max_children prog profile)
  in
  let view =
    match approach with
    | Heterogeneous -> platform
    | Homogeneous -> Platform.Desc.homogeneous_view platform
  in
  let algo =
    Trace.span ~cat:"phase" "parallelize" (fun () ->
        Algorithm.parallelize ~cfg ?pool ?store ?memo view htg)
  in
  let mode =
    match approach with
    | Heterogeneous -> Implement.Pre_mapped
    | Homogeneous -> Implement.Oblivious
  in
  let program, seq_program =
    Trace.span ~cat:"phase" "implement" (fun () ->
        ( Implement.realize ~mode platform htg algo.Algorithm.root,
          Implement.realize_sequential htg ))
  in
  { approach; platform; htg; algo; program; seq_program; profile }

(** Parallelize from source text. *)
let run ?cfg ?pool ?store ?memo ~approach ~platform (src : string) : outcome =
  run_program ?cfg ?pool ?store ?memo ~approach ~platform
    (Trace.span ~cat:"phase" "frontend" (fun () -> Minic.Frontend.compile src))

(* ---- Result-threaded pipeline -------------------------------------- *)

(* Run one phase, mapping every failure mode the flow can legitimately hit
   to a typed error tagged with that phase.  [Frontend.Error] keeps its
   own phase tag regardless of where it surfaces (it can only originate in
   the frontend). *)
let wrap phase f =
  match f () with
  | v -> Ok v
  | exception Mpsoc_error.Error e -> Error e
  | exception Minic.Frontend.Error e ->
      Error
        (Mpsoc_error.make ~phase:Mpsoc_error.Frontend ~kind:Invalid_input
           (Minic.Frontend.error_to_string e))
  | exception Interp.Eval.Step_limit_exceeded n ->
      Error
        (Mpsoc_error.make ~phase ~kind:Resource_limit ~advice:"raise --max-steps"
           (Printf.sprintf
              "the program did not terminate within %d interpreted statements" n))
  | exception Interp.Eval.Runtime_error m ->
      Error (Mpsoc_error.make ~phase ~kind:Invalid_input ("runtime error: " ^ m))
  | exception Fault.Injected { point; hit } ->
      Error
        (Mpsoc_error.make ~phase
           ~kind:(Fault_injected point)
           (Printf.sprintf "armed fault plan fired on hit %d" hit))

let ( let* ) = Result.bind

let run_program_result ?(cfg = Config.default) ?profile ?pool ?store ?memo
    ~approach ~(platform : Platform.Desc.t) (prog : Minic.Ast.program) :
    (outcome, Mpsoc_error.t) result =
  let* profile =
    match profile with
    | Some p -> Ok p
    | None ->
        wrap Mpsoc_error.Profile (fun () ->
            Trace.span ~cat:"phase" "profile" (fun () ->
                (Interp.Eval.run ~max_steps:cfg.Config.max_steps prog)
                  .Interp.Eval.profile))
  in
  let* htg =
    wrap Mpsoc_error.Graph (fun () ->
        Trace.span ~cat:"phase" "htg" (fun () ->
            Htg.Build.build ~max_children:cfg.Config.max_children prog profile))
  in
  let view =
    match approach with
    | Heterogeneous -> platform
    | Homogeneous -> Platform.Desc.homogeneous_view platform
  in
  let* algo =
    wrap Mpsoc_error.Parallelize (fun () ->
        Trace.span ~cat:"phase" "parallelize" (fun () ->
            Algorithm.parallelize ~cfg ?pool ?store ?memo view htg))
  in
  let mode =
    match approach with
    | Heterogeneous -> Implement.Pre_mapped
    | Homogeneous -> Implement.Oblivious
  in
  let* program, seq_program =
    wrap Mpsoc_error.Implement (fun () ->
        Trace.span ~cat:"phase" "implement" (fun () ->
            ( Implement.realize ~mode platform htg algo.Algorithm.root,
              Implement.realize_sequential htg )))
  in
  Ok { approach; platform; htg; algo; program; seq_program; profile }

let run_result ?cfg ?pool ?store ?memo ~approach ~platform (src : string) :
    (outcome, Mpsoc_error.t) result =
  let* prog =
    wrap Mpsoc_error.Frontend (fun () ->
        Trace.span ~cat:"phase" "frontend" (fun () -> Minic.Frontend.compile src))
  in
  run_program_result ?cfg ?pool ?store ?memo ~approach ~platform prog

(** Simulated speedup of the outcome over sequential execution on the
    platform's main core. *)
let speedup (o : outcome) : float =
  Sim.Engine.speedup o.platform ~sequential:o.seq_program ~parallel:o.program

let metrics (o : outcome) = Sim.Engine.run_metrics o.platform o.program
