(** Solver-free rung of the degradation ladder: greedy list scheduling of
    a node's children over the processor classes, used by
    {!Formulation.solve_ext} when branch & bound ran out of budget with no
    incumbent (or a fault was injected into the solver).  See
    {!Solution.degradation}. *)

val greedy :
  node:Htg.Node.t ->
  child_sets:Solution.set array ->
  pf:Platform.Desc.t ->
  seq_class:int ->
  budget:int ->
  edges:(int * int * float) list ->
  unit ->
  Solution.t option
(** Greedy candidate for one (node, class, budget) subproblem, or [None]
    when no parallelism fits.  Children are packed into contiguous chunks
    in child (= topological) order — so task ids stay non-decreasing
    along every dependence edge (Eq. 10) — chunks are balanced on the
    children's sequential cost, extra tasks take the fastest free units,
    and every child runs its own sequential candidate of its task's
    class.  [edges] lists dependence edges as [(src, dst, cost_us)] with
    negative indices for the Communication-In/Out pseudo-nodes; the
    modelled time conservatively charges every cut edge. *)
