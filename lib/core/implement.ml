(** Implementation stage: turn the chosen solution candidate into an
    executable parallel program for the MPSoC simulator (the role the
    ATOMIUM/MPA transformation plays in the paper's tool flow, Fig. 6).

    Two realization modes:
    - [realize]: classes chosen by the heterogeneous ILP are used as-is
      (the pre-mapping specification of the paper);
    - [realize_oblivious]: ignores the solution's class tags — as the
      output of a class-oblivious (homogeneous) tool would be placed by a
      mapping stage, tasks greedily take the fastest remaining physical
      units, the main task staying on the platform's main core.  On a
      heterogeneous machine some tasks inevitably land on slow cores,
      which is exactly the effect the paper's Figures 7(b)/8(b) show. *)

type mode =
  | Pre_mapped  (** trust the solution's task-to-class mapping *)
  | Oblivious  (** ignore it; allocate fastest-first from the real pool *)

(* multiset of free units per class, mutated during a traversal *)
type pool = int array

let make_pool (pf : Platform.Desc.t) ~exclude_main : pool =
  let units = Array.copy (Platform.Desc.units_per_class pf) in
  if exclude_main then
    units.(pf.Platform.Desc.main_class) <-
      units.(pf.Platform.Desc.main_class) - 1;
  units

(** Fastest class (by effective speed) with a free unit; falls back to the
    main class if the pool is exhausted (over-subscription guard). *)
let take_fastest (pf : Platform.Desc.t) (pool : pool) : int =
  let best = ref (-1) in
  let best_speed = ref neg_infinity in
  Array.iteri
    (fun c n ->
      if n > 0 then begin
        let s = Platform.Proc_class.speed pf.Platform.Desc.classes.(c) in
        if s > !best_speed then begin
          best_speed := s;
          best := c
        end
      end)
    pool;
  if !best >= 0 then begin
    pool.(!best) <- pool.(!best) - 1;
    !best
  end
  else pf.Platform.Desc.main_class

let release (pool : pool) c = if c >= 0 then pool.(c) <- pool.(c) + 1

(* ------------------------------------------------------------------ *)
(* Dependence edges -> simulator deps                                  *)
(* ------------------------------------------------------------------ *)

let deps_of_edges (node : Htg.Node.t) (assignment : int array) : Sim.Prog.dep list
    =
  let tbl : (int * int * bool, float * float) Hashtbl.t = Hashtbl.create 16 in
  let add ?(at_start = false) src dst bytes transfers =
    if src <> dst then begin
      let key = (src, dst, at_start) in
      let b, tr =
        match Hashtbl.find_opt tbl key with Some v -> v | None -> (0., 0.)
      in
      Hashtbl.replace tbl key (b +. bytes, tr +. transfers)
    end
  in
  let children = node.Htg.Node.children in
  List.iter
    (fun (e : Htg.Node.edge) ->
      let bytes = float_of_int e.Htg.Node.bytes in
      match (e.Htg.Node.src, e.Htg.Node.dst) with
      | Htg.Node.EChild i, Htg.Node.EChild j ->
          let transfers =
            Float.min children.(i).Htg.Node.exec_count
              children.(j).Htg.Node.exec_count
          in
          let b, tr =
            match e.Htg.Node.kind with
            | Htg.Node.Flow -> (bytes, transfers)
            | Htg.Node.Order -> (0., 0.)
          in
          add assignment.(i) assignment.(j) b tr
      | Htg.Node.EIn, Htg.Node.EChild j ->
          (* live-in data exists when the region starts *)
          if e.Htg.Node.kind = Htg.Node.Flow then
            add ~at_start:true 0 assignment.(j) bytes node.Htg.Node.exec_count
      | Htg.Node.EChild i, Htg.Node.EOut ->
          if e.Htg.Node.kind = Htg.Node.Flow then
            add assignment.(i) 0 bytes node.Htg.Node.exec_count
      | _ -> ())
    node.Htg.Node.edges;
  Hashtbl.fold
    (fun (src, dst, at_start) (bytes, transfers) acc ->
      (* forward or join-to-main only; anything else would be a cycle and
         cannot be produced by the Eq-10-constrained ILP *)
      if dst > src || dst = 0 then
        { Sim.Prog.dsrc = src; ddst = dst; bytes; transfers; at_start } :: acc
      else
        (* would be a dependence cycle; Eq 10 makes it unreachable *)
        invalid_arg
          (Printf.sprintf
             "Implement.deps_of_edges: backward dependence %d -> %d violates               the topological task ordering"
             src dst))
    tbl []
  |> List.sort (fun a b ->
         compare (a.Sim.Prog.dsrc, a.Sim.Prog.ddst) (b.Sim.Prog.dsrc, b.Sim.Prog.ddst))

(* ------------------------------------------------------------------ *)
(* Realization                                                         *)
(* ------------------------------------------------------------------ *)

let rec realize_node ~mode (pf : Platform.Desc.t) (pool : pool)
    (node : Htg.Node.t) (sol : Solution.t) ~cur_cls : Sim.Prog.node =
  match sol.Solution.kind with
  | Solution.Seq _ ->
      Sim.Prog.work ~label:node.Htg.Node.label node.Htg.Node.total_cycles
  | Solution.Split sp -> realize_split ~mode pf pool node sp ~cur_cls
  | Solution.Par p -> realize_par ~mode pf pool node p ~cur_cls
  | Solution.Pipeline p -> realize_pipeline ~mode pf pool node p ~cur_cls

and task_class ~mode pf pool ~cur_cls ~is_main declared =
  if is_main then cur_cls
  else
    match mode with
    | Pre_mapped -> declared
    | Oblivious -> take_fastest pf pool

and realize_split ~mode pf pool (node : Htg.Node.t) (sp : Solution.split)
    ~cur_cls : Sim.Prog.node =
  let total_iters = Array.fold_left ( +. ) 0. sp.Solution.chunk_iters in
  if total_iters <= 0. then
    Sim.Prog.work ~label:node.Htg.Node.label node.Htg.Node.total_cycles
  else begin
    (* task 0 is always materialized: it spawns the chunks and hosts the
       join, even when the ILP gave the (slow) main core zero iterations *)
    let used =
      0
      :: List.filter
           (fun t -> t > 0 && sp.Solution.chunk_iters.(t) > 0.)
           (List.init (Array.length sp.Solution.chunk_iters) (fun t -> t))
    in
    let taken = ref [] in
    let tasks =
      Array.of_list
        (List.mapi
           (fun idx t ->
             let cls =
               task_class ~mode pf pool ~cur_cls ~is_main:(idx = 0)
                 sp.Solution.split_class.(t)
             in
             if idx > 0 then taken := cls :: !taken;
             let share = sp.Solution.chunk_iters.(t) /. total_iters in
             {
               Sim.Prog.tclass = cls;
               body =
                 Sim.Prog.work
                   ~label:(Printf.sprintf "%s.chunk%d" node.Htg.Node.label t)
                   (share *. node.Htg.Node.total_cycles);
             })
           used)
    in
    let deps =
      List.concat
        (List.mapi
           (fun idx t ->
             if idx = 0 then []
             else begin
               let share = sp.Solution.chunk_iters.(t) /. total_iters in
               let inb = share *. float_of_int node.Htg.Node.live_in_bytes in
               let outb = share *. float_of_int node.Htg.Node.live_out_bytes in
               [
                 {
                   Sim.Prog.dsrc = 0;
                   ddst = idx;
                   bytes = inb;
                   transfers = node.Htg.Node.exec_count;
                   at_start = true;
                 };
                 {
                   Sim.Prog.dsrc = idx;
                   ddst = 0;
                   bytes = outb;
                   transfers = node.Htg.Node.exec_count;
                   at_start = false;
                 };
               ]
             end)
           used)
    in
    let fork =
      Sim.Prog.Fork
        {
          Sim.Prog.flabel = node.Htg.Node.label ^ ".split";
          entries = node.Htg.Node.exec_count;
          tasks;
          deps;
        }
    in
    List.iter (release pool) !taken;
    fork
  end

and realize_par ~mode pf pool (node : Htg.Node.t) (p : Solution.par) ~cur_cls :
    Sim.Prog.node =
  let k = Array.length node.Htg.Node.children in
  (* dense partition: task slots the ILP left unused are compressed away *)
  let part =
    Solution.partition_of_assignment p.Solution.assignment p.Solution.task_class
  in
  let header_cycles =
    Float.max 0.
      (node.Htg.Node.total_cycles
      -. Array.fold_left
           (fun acc c -> acc +. c.Htg.Node.total_cycles)
           0. node.Htg.Node.children)
  in
  let taken = ref [] in
  let tasks =
    Array.mapi
      (fun idx declared ->
        let cls =
          task_class ~mode pf pool ~cur_cls ~is_main:(idx = 0)
            (if declared >= 0 then declared else cur_cls)
        in
        if idx > 0 then taken := cls :: !taken;
        let body_children =
          List.filter_map
            (fun n ->
              if part.Solution.owner.(n) = idx then
                Some
                  (realize_node ~mode pf pool node.Htg.Node.children.(n)
                     p.Solution.child_choice.(n) ~cur_cls:cls)
              else None)
            (List.init k (fun n -> n))
        in
        let body_children =
          if idx = 0 && header_cycles > 0. then
            Sim.Prog.work ~label:(node.Htg.Node.label ^ ".ctrl") header_cycles
            :: body_children
          else body_children
        in
        { Sim.Prog.tclass = cls; body = Sim.Prog.Seq body_children })
      part.Solution.classes
  in
  let deps = deps_of_edges node part.Solution.owner in
  let fork =
    Sim.Prog.Fork
      {
        Sim.Prog.flabel = node.Htg.Node.label;
        entries = node.Htg.Node.exec_count;
        tasks;
        deps;
      }
  in
  List.iter (release pool) !taken;
  fork

and realize_pipeline ~mode pf pool (node : Htg.Node.t) (p : Solution.pipeline)
    ~cur_cls : Sim.Prog.node =
  (* stages overlap across iterations: tasks carry their whole stage work
     and run concurrently.  The pipeline fill ((stages-1) iterations of
     the bottleneck) is neglected — a relative error below
     stages/iterations, and the candidate's modelled time (which upper
     levels see) does include it. *)
  (* stage 0 is always materialized as the main/coordinator task, even
     when the ILP left it empty (all work on faster classes) *)
  let stages =
    0
    :: List.filter
         (fun t -> t > 0 && p.Solution.stage_class.(t) >= 0)
         (List.init (Array.length p.Solution.stage_class) (fun t -> t))
  in
  let k = Array.length node.Htg.Node.children in
  let stage_cycles t =
    let sum = ref 0. in
    for n = 0 to k - 1 do
      if p.Solution.stage_of.(n) = t then
        sum := !sum +. node.Htg.Node.children.(n).Htg.Node.total_cycles
    done;
    !sum
  in
  let header_cycles =
    Float.max 0.
      (node.Htg.Node.total_cycles
      -. Array.fold_left
           (fun acc c -> acc +. c.Htg.Node.total_cycles)
           0. node.Htg.Node.children)
  in
  let taken = ref [] in
  let tasks =
    Array.of_list
      (List.mapi
         (fun idx t ->
           let cls =
             task_class ~mode pf pool ~cur_cls ~is_main:(idx = 0)
               p.Solution.stage_class.(t)
           in
           if idx > 0 then taken := cls :: !taken;
           let cycles = stage_cycles t in
           let cycles = if idx = 0 then cycles +. header_cycles else cycles in
           {
             Sim.Prog.tclass = cls;
             body =
               Sim.Prog.work
                 ~label:(Printf.sprintf "%s.stage%d" node.Htg.Node.label t)
                 cycles;
           })
         stages)
  in
  (* per-stage handoff: total bytes of edges crossing stage boundaries *)
  let index_of = Hashtbl.create 8 in
  List.iteri (fun idx t -> Hashtbl.replace index_of t idx) stages;
  let deps = ref [] in
  List.iter
    (fun (e : Htg.Node.edge) ->
      match (e.Htg.Node.src, e.Htg.Node.dst, e.Htg.Node.kind) with
      | Htg.Node.EChild i, Htg.Node.EChild j, Htg.Node.Flow ->
          let si = p.Solution.stage_of.(i) and sj = p.Solution.stage_of.(j) in
          if si <> sj then begin
            let ii = Hashtbl.find index_of si and jj = Hashtbl.find index_of sj in
            (* handoffs stream with the iterations: at_start so stages
               overlap; the byte volume still occupies the bus *)
            let raw_transfers =
              Float.min node.Htg.Node.children.(i).Htg.Node.exec_count
                node.Htg.Node.children.(j).Htg.Node.exec_count
            in
            deps :=
              {
                Sim.Prog.dsrc = min ii jj;
                ddst = max ii jj;
                bytes = float_of_int e.Htg.Node.bytes;
                (* handoffs are batched into FIFO blocks *)
                transfers = Float.max 1. (raw_transfers /. 32.);
                at_start = true;
              }
              :: !deps
          end
      | _ -> ())
    node.Htg.Node.edges;
  let fork =
    Sim.Prog.Fork
      {
        Sim.Prog.flabel = node.Htg.Node.label ^ ".pipeline";
        entries = node.Htg.Node.exec_count;
        tasks;
        deps = List.rev !deps;
      }
  in
  List.iter (release pool) !taken;
  fork

(** Realize [sol] (a candidate of [node]) for execution on [pf]. *)
let realize ?(mode = Pre_mapped) (pf : Platform.Desc.t) (node : Htg.Node.t)
    (sol : Solution.t) : Sim.Prog.node =
  let pool = make_pool pf ~exclude_main:true in
  realize_node ~mode pf pool node sol ~cur_cls:pf.Platform.Desc.main_class

(** Purely sequential realization (the measurement baseline). *)
let realize_sequential (node : Htg.Node.t) : Sim.Prog.node =
  Sim.Prog.work ~label:"sequential" node.Htg.Node.total_cycles
