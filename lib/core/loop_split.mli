(** Iteration-range splitting for DOALL loops — the paper's "loop
    iterations" granularity level, phrased as a small ILP so the same
    solver balances chunk sizes across processor classes (minimize the
    slowest chunk's time plus its communication share and spawn
    overhead). *)

type input = {
  node : Htg.Node.t;  (** must satisfy [Htg.Node.is_doall] *)
  pf : Platform.Desc.t;
  seq_class : int;
  budget : int;
  cfg : Config.t;
}

(** Per-iteration body cost in abstract cycles (loop control amortized). *)
val iter_cycles : Htg.Node.t -> float

(** [None] for non-DOALL nodes or budgets without parallelism.  [cache]
    memoizes the solve on the model's structural fingerprint. *)
val solve : ?stats:Ilp.Stats.t -> ?cache:Ilp.Memo.t -> input -> Solution.t option

(** Like {!solve} but also returns the raw solver outcome; [prev] chains
    the preceding (larger-budget) outcome of the same sweep (see
    {!Sweep}). *)
val solve_ext :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  ?prev:Ilp.Solver.outcome ->
  input ->
  (Solution.t * Ilp.Solver.outcome) option

(** The decreasing-budget splitting sweep for one (node, class) —
    [input.budget] is ignored, the sweep starts at [total_units]. *)
val sweep :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  total_units:int ->
  input ->
  Solution.t list
