(** Iteration-range splitting for DOALL loops — the paper's "loop
    iterations" granularity level, phrased as a small ILP so the same
    solver balances chunk sizes across processor classes (minimize the
    slowest chunk's time plus its communication share and spawn
    overhead). *)

type input = {
  node : Htg.Node.t;  (** must satisfy [Htg.Node.is_doall] *)
  pf : Platform.Desc.t;
  seq_class : int;
  budget : int;
  cfg : Config.t;
}

(** Per-iteration body cost in abstract cycles (loop control amortized). *)
val iter_cycles : Htg.Node.t -> float

(** [None] for non-DOALL nodes or budgets without parallelism. *)
val solve : ?stats:Ilp.Stats.t -> input -> Solution.t option
