(** Iteration-range splitting for DOALL loops — the paper's "loop
    iterations" granularity level, phrased as a (small) ILP so that the
    same solver machinery balances chunk sizes across processor classes.

    Given a DOALL loop with [n] iterations per entry and per-iteration
    body cost [w] cycles, the ILP chooses how many iterations each task
    executes and which class each task runs on, minimizing the slowest
    task's time plus its share of communication and the spawn overhead:

    minimize  T
    s.t.      sum_t iters(t) = n
              iters(t) <= n * used(t)
              sum_c map(t,c) = used(t)          (map(0,seqPC) = 1)
              sum_t map(t,c) <= NUMPROCS_c
              T >= iters(t)*W_c - M(1-map(t,c)) + comm_share(t) + spawn(t)

    The chunks are contiguous ranges in task order, so the transformation
    is a plain loop-bound rewrite at implementation time. *)

open Ilp

type input = {
  node : Htg.Node.t;  (** must satisfy [Htg.Node.is_doall] *)
  pf : Platform.Desc.t;
  seq_class : int;
  budget : int;
  cfg : Config.t;
}

(** Per-iteration body cost in abstract cycles (loop control amortized). *)
let iter_cycles (node : Htg.Node.t) =
  match node.Htg.Node.kind with
  | Htg.Node.Loop { iters_per_entry; _ } when iters_per_entry > 0. ->
      Htg.Node.cycles_per_entry node /. iters_per_entry
  | _ -> 0.

let solve_ext ?stats ?cache ?prev (inp : input) :
    (Solution.t * Solver.outcome) option =
  let node = inp.node in
  match node.Htg.Node.kind with
  | Htg.Node.Loop { doall = true; iters_per_entry; _ }
    when iters_per_entry >= 2. ->
      let pf = inp.pf in
      let nclasses = Platform.Desc.num_classes pf in
      let units = Platform.Desc.units_per_class pf in
      let total_units = Platform.Desc.total_units pf in
      let ntasks =
        min inp.cfg.Config.max_split_tasks
          (min inp.budget
             (min total_units (int_of_float iters_per_entry)))
      in
      if ntasks < 2 then None
      else begin
        let n_iters = iters_per_entry in
        let w_cycles = iter_cycles node in
        let w_us c = Platform.Desc.time_us pf ~cls:c w_cycles in
        let ec = node.Htg.Node.exec_count in
        (* per-entry communication bytes proportional to the chunk share *)
        let bytes_per_iter =
          float_of_int (node.Htg.Node.live_in_bytes + node.Htg.Node.live_out_bytes)
          /. Float.max 1. (ec *. n_iters)
        in
        let comm = pf.Platform.Desc.comm in
        let comm_per_iter_us =
          bytes_per_iter *. comm.Platform.Comm.per_byte_us
        in
        let startup_us = comm.Platform.Comm.startup_us in
        let tco_us = pf.Platform.Desc.tco_us in
        let m = Model.create ~name:(Printf.sprintf "split-node-%d" node.Htg.Node.id) () in
        let open Lin_expr in
        let iters =
          Array.init ntasks (fun t ->
              Model.int_var ~ub:n_iters ~priority:10 m (Printf.sprintf "iters_%d" t))
        in
        let map_tc =
          Array.init ntasks (fun t ->
              Array.init nclasses (fun c ->
                  Model.bool_var ~priority:20 m (Printf.sprintf "map_%d_%d" t c)))
        in
        let used =
          Array.init ntasks (fun t -> Model.bool_var ~priority:20 m (Printf.sprintf "used_%d" t))
        in
        let makespan = Model.cont_var m "makespan" in
        (* partition the iteration space *)
        Model.eq ~name:"part" m
          (sum (List.init ntasks (fun t -> term iters.(t))))
          (constant n_iters);
        for t = 0 to ntasks - 1 do
          Model.le
            ~name:(Printf.sprintf "gate_%d" t)
            m (term iters.(t))
            (term ~coef:n_iters used.(t));
          Model.eq
            ~name:(Printf.sprintf "map1_%d" t)
            m
            (sum (List.init nclasses (fun c -> term map_tc.(t).(c))))
            (term used.(t))
        done;
        Model.eq ~name:"main_used" m (term used.(0)) (constant 1.);
        Model.eq ~name:"pin_main" m (term map_tc.(0).(inp.seq_class)) (constant 1.);
        for c = 0 to nclasses - 1 do
          Model.le
            ~name:(Printf.sprintf "units_%d" c)
            m
            (sum (List.init ntasks (fun t -> term map_tc.(t).(c))))
            (constant (float_of_int units.(c)))
        done;
        Model.le ~name:"budget" m
          (sum (List.init ntasks (fun t -> term used.(t))))
          (constant (float_of_int inp.budget));
        (* makespan: per-class gated work + comm + spawn overhead *)
        let slow_w = Array.fold_left (fun acc c -> Float.max acc (Platform.Proc_class.time_us c w_cycles)) 0. pf.Platform.Desc.classes in
        let big_m = (n_iters *. (slow_w +. comm_per_iter_us)) +. startup_us +. tco_us +. 1. in
        for t = 0 to ntasks - 1 do
          for c = 0 to nclasses - 1 do
            let spawn = if t = 0 then 0. else tco_us +. startup_us in
            Model.ge
              ~name:(Printf.sprintf "mk_%d_%d" t c)
              m (term makespan)
              (add_const (spawn -. big_m)
                 (sum
                    [
                      term ~coef:(w_us c +. comm_per_iter_us) iters.(t);
                      term ~coef:big_m map_tc.(t).(c);
                    ]))
          done
        done;
        (* shared-bus serialization: every non-main chunk's input and
           output traffic (proportional to its iterations) plus two
           startups per used remote task must fit under the makespan *)
        Model.ge ~name:"bus_bound" m (term makespan)
          (sum
             (List.concat
                (List.init ntasks (fun t ->
                     if t = 0 then []
                     else
                       [
                         term ~coef:comm_per_iter_us iters.(t);
                         term ~coef:(2. *. startup_us) used.(t);
                       ]))));
        Model.set_objective m Model.Minimize (term makespan);
        (* warm start: everything on the main task *)
        let warm = Array.make (Model.num_vars m) 0. in
        warm.(iters.(0)) <- n_iters;
        warm.(used.(0)) <- 1.;
        warm.(map_tc.(0).(inp.seq_class)) <- 1.;
        warm.(makespan) <- n_iters *. (w_us inp.seq_class +. comm_per_iter_us);
        let options = Sweep.chain_options inp.cfg prev in
        let extra_starts =
          Sweep.chain_starts inp.cfg prev ~num_vars:(Model.num_vars m)
        in
        match
          Solver.solve ~options ~warm_start:warm ~extra_starts ?cache ?stats m
        with
        | exception Fault.Injected _ ->
            (* splitting candidates are optional extras on top of the
               ILPPAR sweep; under an injected solver fault just skip *)
            None
        | out ->
        match (out.Solver.status, out.Solver.x) with
        | (Branch_bound.Optimal | Branch_bound.Feasible), Some sol ->
            let chunk_iters = Array.init ntasks (fun t -> Float.round sol.(iters.(t))) in
            let split_class =
              Array.init ntasks (fun t ->
                  if sol.(used.(t)) > 0.5 then begin
                    let cls = ref inp.seq_class in
                    for c = 0 to nclasses - 1 do
                      if sol.(map_tc.(t).(c)) > 0.5 then cls := c
                    done;
                    !cls
                  end
                  else -1)
            in
            let extra = Array.make nclasses 0 in
            for t = 1 to ntasks - 1 do
              if split_class.(t) >= 0 then
                extra.(split_class.(t)) <- extra.(split_class.(t)) + 1
            done;
            (* total node time = header + EC * per-entry makespan *)
            let header_us =
              Platform.Desc.time_us pf ~cls:inp.seq_class
                (Float.max 0.
                   (node.Htg.Node.total_cycles
                   -. (Htg.Node.cycles_per_entry node *. ec)))
            in
            ignore header_us;
            let time_us = ec *. out.Solver.obj in
            let degrade =
              match out.Solver.status with
              | Branch_bound.Optimal -> Solution.Exact
              | _ ->
                  (match stats with
                  | Some s -> Ilp.Stats.record_degraded s `Incumbent
                  | None -> ());
                  Solution.Incumbent
            in
            Some
              ( {
                  Solution.node_id = node.Htg.Node.id;
                  main_class = inp.seq_class;
                  time_us;
                  extra_units = extra;
                  degrade;
                  kind = Solution.Split { Solution.chunk_iters; split_class };
                },
                out )
        | _ -> None
      end
  | _ -> None

let solve ?stats ?cache (inp : input) : Solution.t option =
  Option.map fst (solve_ext ?stats ?cache inp)

(** The decreasing-budget splitting sweep for one (node, class), with
    cross-budget chaining; candidates in discovery order. *)
let sweep ?stats ?cache ~total_units (inp : input) : Solution.t list =
  Sweep.run ~total_units ~solve:(fun ~budget ~prev ->
      solve_ext ?stats ?cache ?prev { inp with budget })
