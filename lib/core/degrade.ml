(** Lower rungs of the solver degradation ladder.

    When branch & bound exhausts its budget without finding any incumbent
    (or a fault is injected into the solver), {!Formulation.solve_ext}
    falls back to constructive heuristics instead of discarding the
    subproblem.  This module holds the solver-free rung: greedy list
    scheduling of a node's children over the processor classes, in the
    spirit of heuristic mappers like AMTHA — always cheap, never optimal,
    tagged [Solution.Greedy] so the degradation is visible end to end.

    The construction preserves the structural invariants the implement
    stage relies on: children are packed into {e contiguous} chunks in
    child (= topological) order, so task ids are non-decreasing along
    every dependence edge (the paper's Eq. 10), and every child runs its
    own {e sequential} candidate of the task's class, so no nested
    resources beyond the task's unit are consumed. *)

(** Greedy candidate for one (node, class, budget) subproblem, or [None]
    when no parallelism fits (fewer than two non-empty chunks, or the
    budget/platform admits no extra task).  [edges] lists the node's
    dependence edges as [(src, dst, cost_us)] with negative indices for
    the Communication-In/Out pseudo-nodes; the modelled time
    conservatively charges {e every} cut edge. *)
let greedy ~(node : Htg.Node.t) ~(child_sets : Solution.set array)
    ~(pf : Platform.Desc.t) ~seq_class ~budget
    ~(edges : (int * int * float) list) () : Solution.t option =
  let k = Array.length node.Htg.Node.children in
  let nclasses = Platform.Desc.num_classes pf in
  if k < 2 || budget < 2 then None
  else begin
    (* units still free for extra tasks (the main task occupies one unit
       of [seq_class]) *)
    let avail = Array.copy (Platform.Desc.units_per_class pf) in
    avail.(seq_class) <- avail.(seq_class) - 1;
    let free = Array.fold_left ( + ) 0 avail in
    let m = min k (min budget (free + 1)) in
    if m < 2 then None
    else begin
      (* contiguous chunks balanced on the children's sequential cost on
         [seq_class]; zero-cost children may leave chunks empty *)
      let cost_of n =
        (Solution.seq_of child_sets.(n) seq_class).Solution.time_us
      in
      let total = ref 0. in
      for n = 0 to k - 1 do
        total := !total +. cost_of n
      done;
      let grand = !total in
      if grand <= 0. || not (Float.is_finite grand) then None
      else begin
        let prefix = ref 0. in
        let chunk_of =
          Array.init k (fun n ->
              let c =
                min (m - 1) (int_of_float (!prefix /. grand *. float_of_int m))
              in
              prefix := !prefix +. cost_of n;
              c)
        in
        (* compress used chunks to dense task ids (order-preserving, so
           Eq. 10 still holds); chunk 0 always owns child 0 *)
        let used = Array.make m false in
        Array.iter (fun c -> used.(c) <- true) chunk_of;
        let dense = Array.make m (-1) in
        let next = ref 0 in
        for c = 0 to m - 1 do
          if used.(c) then begin
            dense.(c) <- !next;
            incr next
          end
        done;
        let ntasks = !next in
        if ntasks < 2 then None
        else begin
          let assignment = Array.map (fun c -> dense.(c)) chunk_of in
          (* classes: the main task keeps [seq_class]; extra tasks grab
             the fastest still-free units, deterministic tie-break on the
             class index *)
          let order =
            List.init nclasses Fun.id
            |> List.sort (fun a b ->
                   match
                     compare
                       (Platform.Proc_class.speed (Platform.Desc.proc_class pf b))
                       (Platform.Proc_class.speed (Platform.Desc.proc_class pf a))
                   with
                   | 0 -> compare a b
                   | c -> c)
          in
          let task_class = Array.make ntasks (-1) in
          task_class.(0) <- seq_class;
          for t = 1 to ntasks - 1 do
            match List.find_opt (fun c -> avail.(c) > 0) order with
            | Some c ->
                avail.(c) <- avail.(c) - 1;
                task_class.(t) <- c
            | None -> ()
          done;
          if Array.exists (fun c -> c < 0) task_class then None
          else begin
            let child_choice =
              Array.init k (fun n ->
                  Solution.seq_of child_sets.(n) task_class.(assignment.(n)))
            in
            (* conservative makespan: header on the main class, one task
               creation per extra task, the slowest task, and every cut
               edge's full transfer cost *)
            let header_cycles =
              Float.max 0.
                (node.Htg.Node.total_cycles
                -. Array.fold_left
                     (fun acc c -> acc +. c.Htg.Node.total_cycles)
                     0. node.Htg.Node.children)
            in
            let header_us =
              Platform.Desc.time_us pf ~cls:seq_class header_cycles
            in
            let tco =
              node.Htg.Node.exec_count *. pf.Platform.Desc.tco_us
              *. float_of_int (ntasks - 1)
            in
            let task_time = Array.make ntasks 0. in
            Array.iteri
              (fun n choice ->
                let t = assignment.(n) in
                task_time.(t) <- task_time.(t) +. choice.Solution.time_us)
              child_choice;
            let slowest = Array.fold_left Float.max 0. task_time in
            let comm =
              List.fold_left
                (fun acc (src, dst, cost) ->
                  let task_of i = if i < 0 then 0 else assignment.(i) in
                  if task_of src <> task_of dst then acc +. cost else acc)
                0. edges
            in
            let time_us = header_us +. tco +. slowest +. comm in
            if not (Float.is_finite time_us) then None
            else begin
              let extra = Array.make nclasses 0 in
              for t = 1 to ntasks - 1 do
                extra.(task_class.(t)) <- extra.(task_class.(t)) + 1
              done;
              Some
                {
                  Solution.node_id = node.Htg.Node.id;
                  main_class = seq_class;
                  time_us;
                  extra_units = extra;
                  degrade = Solution.Greedy;
                  kind =
                    Solution.Par
                      {
                        Solution.assignment;
                        task_class;
                        child_choice;
                        par_time_breakdown = Solution.no_breakdown;
                      };
                }
            end
          end
        end
      end
    end
  end
