(** Per-node solver portfolio ([Config.solver]).

    Dispatches each ILPPAR subproblem to one of three engines:

    - [Ilp]: the classic exact path, delegated verbatim to
      {!Formulation.solve_ext} — results (and every byte feeding the
      solution digest) are identical to a build without this module;
    - [Heuristic]: the list-scheduler/GA engine ({!Heuristics}) alone —
      no branch & bound anywhere, candidates tagged
      {!Solution.Heuristic};
    - [Portfolio]: the heuristic runs first and its makespan seeds branch
      & bound as an incumbent (an extra start appended after the sweep's
      chained trail), while the exact search runs under the reduced
      deterministic budget [Config.portfolio_work_limit].  The better
      answer wins; which engine won, and the quality gap the heuristic
      left when it lost, are recorded in {!Ilp.Stats} and as a
      ["portfolio.race"] trace instant.

    Everything downstream (budget sweep, candidate pruning, degradation
    accounting) is engine-agnostic; determinism at any [--jobs] follows
    from the engines' own determinism. *)

open Ilp

(* Race bookkeeping: the exact engine "won" only if it strictly improved
   on the heuristic incumbent (ties go to the heuristic — its answer
   survived the exact search). *)
let record_race ?stats (inp : Formulation.input) ~heur_obj ~exact_obj =
  let eps = 1e-9 in
  let exact_won = exact_obj < heur_obj -. eps in
  let gap =
    if exact_won && exact_obj > eps then (heur_obj -. exact_obj) /. exact_obj
    else 0.
  in
  (match stats with
  | Some s ->
      Stats.record_race s
        ~winner:(if exact_won then `Exact else `Heuristic)
        ~quality_gap:gap
  | None -> ());
  if Trace.enabled () then
    Trace.instant ~cat:"ilp" "portfolio.race"
      ~args:
        [
          ("node", Trace.Int inp.Formulation.node.Htg.Node.id);
          ("winner", Trace.Str (if exact_won then "exact" else "heuristic"));
          ("heur_obj", Trace.Float heur_obj);
          ("exact_obj", Trace.Float exact_obj);
          ("quality_gap", Trace.Float gap);
        ]

let heuristic_result (inp : Formulation.input) (inst : Formulation.instance)
    (w : float array) (obj : float) : (Solution.t * Solver.outcome) option =
  let out =
    {
      Solver.status = Branch_bound.Feasible;
      x = Some w;
      obj;
      nodes = 0;
      time_s = 0.;
      incumbents = [];
    }
  in
  Option.map
    (fun r -> ({ r with Solution.degrade = Solution.Heuristic }, out))
    (Formulation.extract inp inst out)

let solve_ext ?stats ?cache ?prev (inp : Formulation.input) :
    (Solution.t * Solver.outcome) option =
  match inp.Formulation.cfg.Config.solver with
  | Config.Ilp -> Formulation.solve_ext ?stats ?cache ?prev inp
  | Config.Heuristic -> (
      match Formulation.build inp with
      | None -> None
      | Some inst -> Heuristics.solve ?stats ?cache inp inst)
  | Config.Portfolio -> (
      match Formulation.build inp with
      | None -> None
      | Some inst -> (
          let cfg = inp.Formulation.cfg in
          let heur = Heuristics.best_point ?stats ?cache inp inst in
          (* the race's determinism lever is the reduced work budget, itself
             deterministic (simplex work units, not wall clock); it is
             applied inside {!Sweep.chain_options} so the Split/Pipe
             auxiliary sweeps run under the same bound *)
          let options = Sweep.chain_options cfg prev in
          let warm = Formulation.hierarchical_warm_start inp inst in
          let extra_starts =
            Sweep.chain_starts cfg prev
              ~num_vars:(Model.num_vars inst.Formulation.model)
          in
          (* the heuristic incumbent enters the race last, after the
             chained trail, as the seeded lower-priority start *)
          let extra_starts =
            extra_starts
            @ match heur with Some (w, _) -> [ w ] | None -> []
          in
          let exact =
            Formulation.solve_built ?stats ?cache inp inst ~options
              ~warm_start:warm ~extra_starts
          in
          match (exact, heur) with
          | Some ((r, out) as res), Some (w, hobj) ->
              record_race ?stats inp ~heur_obj:hobj ~exact_obj:out.Solver.obj;
              (* keep the strictly better answer: a ladder fallback can be
                 worse than the heuristic point it never saw *)
              if r.Solution.time_us > hobj +. 1e-9 then
                heuristic_result inp inst w hobj
              else Some res
          | Some res, None -> Some res
          | None, Some (w, hobj) -> heuristic_result inp inst w hobj
          | None, None -> None))

let solve ?stats ?cache (inp : Formulation.input) : Solution.t option =
  Option.map fst (solve_ext ?stats ?cache inp)

(** The full decreasing-budget sweep for one (node, class) under the
    configured engine; candidates in discovery order.  With
    [Config.solver = Ilp] this is {!Formulation.sweep} exactly. *)
let sweep ?stats ?cache ~total_units (inp : Formulation.input) :
    Solution.t list =
  Sweep.run ~total_units ~solve:(fun ~budget ~prev ->
      solve_ext ?stats ?cache ?prev { inp with Formulation.budget })
