(** Shared driver for the decreasing-budget solve sweeps of Algorithm 1
    (lines 14-20): ILPPAR, loop splitting and pipelining all run the same
    loop — solve at budget [i], keep the candidate, continue at one unit
    less than the candidate actually used.

    Centralizing the loop here also centralizes the cross-budget warm
    starts ([Config.sweep_warm_start]):

    - the models of one sweep differ only in the budget, and a smaller
      budget only shrinks the feasible set, so the previous (larger)
      budget's {e proven} optimum is a valid lower bound [known_lb] on the
      next optimum — branch & bound can stop with a proof as soon as its
      incumbent is within the optimality gap of it;
    - the previous solve's improving-incumbent trail is passed as extra
      starting points; early incumbents often use few units and remain
      feasible at the reduced budget (infeasible ones are filtered by the
      solver).  Points are only forwarded while the variable layout is
      unchanged (same variable count ⇒ same task count ⇒ same layout,
      since all three model builders lay variables out identically for a
      given task count). *)

open Ilp

(** Per-solve options derived from the configuration, plus the [known_lb]
    chained from the previous solve of the sweep (minimize-sense models
    only — all three generators minimize a makespan). *)
let chain_options (cfg : Config.t) (prev : Solver.outcome option) :
    Branch_bound.options =
  let base =
    {
      Branch_bound.default_options with
      Branch_bound.time_limit_s = cfg.Config.ilp_time_limit_s;
      node_limit = cfg.Config.ilp_node_limit;
      work_limit =
        (* in portfolio mode the reduced deterministic budget bounds every
           branch & bound in the run — the ILPPAR race (which has the
           heuristic incumbent as a floor) and the Split/Pipe auxiliary
           sweeps (which keep their own greedy seeds); the quality gate in
           CI holds the resulting makespans to the exact ones *)
        (if
           cfg.Config.solver = Config.Portfolio
           && cfg.Config.portfolio_work_limit > 0.
         then cfg.Config.portfolio_work_limit
         else if cfg.Config.ilp_work_limit > 0. then cfg.Config.ilp_work_limit
         else infinity);
      hard_work_limit =
        cfg.Config.solver = Config.Portfolio
        && cfg.Config.portfolio_work_limit > 0.;
      gap_rel = cfg.Config.ilp_gap_rel;
      (* acceleration toggles ride in the options so they salt the
         {!Ilp.Memo} fingerprint: flipping one can never replay a cached
         search made under another toggle set *)
      presolve = cfg.Config.ilp_presolve;
      cut_rounds = (if cfg.Config.ilp_cuts then 4 else 0);
      (* root-only separation: in-dive rounds re-solve the relaxation
         mid-dive, and measured on the evaluation suite the extra pivots
         cost more than the tightened bounds saved (platform B regressed
         ~50% wall).  The mechanism stays available via
         {!Branch_bound.options.cut_every} for callers that want it. *)
      cut_every = 0;
    }
  in
  match prev with
  | Some o when cfg.Config.sweep_warm_start && o.Solver.status = Branch_bound.Optimal
    ->
      (* the previous incumbent is within the gap of its true optimum, so
         true_opt_prev >= o.obj - tol; with the smaller budget the optimum
         can only grow *)
      let tol =
        Float.max base.Branch_bound.gap_abs
          (base.Branch_bound.gap_rel *. Float.abs o.Solver.obj)
      in
      { base with Branch_bound.known_lb = o.Solver.obj -. tol }
  | _ -> base

(** Incumbent trail of the previous solve, usable as starting points when
    the variable layout is unchanged. *)
let chain_starts (cfg : Config.t) (prev : Solver.outcome option) ~num_vars :
    float array list =
  match prev with
  | Some o when cfg.Config.sweep_warm_start ->
      List.filter (fun y -> Array.length y = num_vars) o.Solver.incumbents
  | _ -> []

(** The sweep loop.  [solve ~budget ~prev] solves one instance; the
    driver chains outcomes and returns the kept candidates in discovery
    order (largest budget first). *)
let run ~total_units
    ~(solve :
       budget:int ->
       prev:Solver.outcome option ->
       (Solution.t * Solver.outcome) option) : Solution.t list =
  let acc = ref [] in
  let prev = ref None in
  let i = ref total_units in
  while !i > 1 do
    let budget = !i in
    let solved =
      (* one span per budget step; the warm-start provenance rides along
         (the per-ILP detail lives in the solver's own X event) *)
      Trace.span_k ~cat:"sweep"
        (fun () -> Printf.sprintf "budget=%d" budget)
        (fun () -> solve ~budget ~prev:!prev)
    in
    match solved with
    | Some (r, out) ->
        acc := r :: !acc;
        prev := Some out;
        i := Solution.total_units r - 1
    | None -> i := 0
  done;
  List.rev !acc
