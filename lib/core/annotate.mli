(** Human-readable annotation output: the parallel specification and the
    task-to-processor-class pre-mapping the paper's tool emits for the
    ATOMIUM/MPA tools (or as an OpenMP extension). *)

(** Render the chosen solution as a pragma-style parallel specification. *)
val specification : Platform.Desc.t -> Htg.Node.t -> Solution.t -> string

(** The pre-mapping specification: (task path, class name) pairs. *)
val pre_mapping :
  Platform.Desc.t -> Htg.Node.t -> Solution.t -> (string * string) list
