(** Tuning knobs of the parallelization algorithm. *)

(** Which solve engine maps each HTG node: the exact ILP (default,
    bit-identical to earlier releases), the heuristic-seeded portfolio
    (heuristic incumbent + reduced-budget exact), or the pure heuristic
    (list scheduler + seeded GA, no exact solver). *)
type solver = Ilp | Portfolio | Heuristic

type t = {
  max_candidates_per_class : int;
      (** cap on parallel candidates kept per (node, class) after Pareto
          pruning; the per-class sequential candidate is always kept *)
  ilp_time_limit_s : float;
      (** wall budget per generated ILP (monotonic clock); a safety net —
          for bit-reproducible runs the deterministic [ilp_work_limit]
          should be the binding limit *)
  ilp_node_limit : int;  (** branch & bound node budget per ILP *)
  ilp_work_limit : float;
      (** deterministic solve budget per ILP in simplex work units
          (tableau cells touched): machine- and schedule-independent,
          identical termination at any [jobs] value; [0.] disables *)
  max_children : int;  (** AHTG coalescing bound *)
  min_parallel_gain : float;
      (** a parallel candidate must beat the same-class sequential time by
          this factor to be kept *)
  max_split_tasks : int;  (** cap on tasks for DOALL iteration splitting *)
  enable_loop_split : bool;
      (** expose the "loop iterations" granularity level; disabling it is
          the E6 ablation *)
  enable_pipeline : bool;
      (** extract pipeline-parallel candidates from sequential loops — the
          paper's future-work extension, off by default *)
  ilp_gap_rel : float;
      (** relative optimality gap accepted by branch & bound *)
  max_steps : int;
      (** interpreted-statement budget for the profiling run *)
  jobs : int;
      (** worker domains for the solve engine: [1] = historical
          sequential driver (default), [0] = recommended domain count.
          Chosen solutions are bit-identical at any value *)
  solve_cache : bool;
      (** memoize ILP solves on a structural fingerprint; single-flight,
          deterministic results and hit counts *)
  sweep_warm_start : bool;
      (** chain budget-sweep solves: previous proven optimum as a known
          lower bound + incumbent trail as warm starts; disable to
          reproduce the pre-cache solver behaviour exactly *)
  timeout_s : float;
      (** global wall-clock deadline for executing an extracted parallel
          program ([--timeout]): past it, the runtime watchdog cancels
          the run and reports a typed timeout (or deadlock) error instead
          of hanging; [0.] (the default) disables the watchdog *)
  trace_file : string option;
      (** Chrome trace-event JSON destination ([--trace]; ["-"] =
          stdout); arms the {!Trace} recorder *)
  metrics_file : string option;
      (** unified metrics JSON destination ([--metrics]; ["-"] = stdout) *)
  profile : bool;
      (** print the human per-phase/solver profile table ([--profile]) *)
  cache_dir : string option;
      (** root of the persistent cross-run solve cache ([--cache-dir]);
          [None] (the default) keeps the cache purely in-memory *)
  cache_max_mb : int;
      (** LRU size cap of the persistent cache in MiB ([--cache-max-mb]) *)
  ilp_presolve : bool;
      (** run the {!Ilp.Presolve} reductions before each branch & bound
          search ([--presolve]); solutions are lifted back, so results
          and cache keys are unchanged at the caller boundary *)
  ilp_symmetry : bool;
      (** add lexicographic symmetry-breaking rows to each formulation
          ([--symmetry]) *)
  ilp_cuts : bool;
      (** separate knapsack cover cuts on the budget rows at the root
          ([--cuts]) *)
  ilp_seed_incumbent : bool;
      (** prime each solve's incumbent with the greedy list schedule
          ([--seed-incumbent]) *)
  solver : solver;
      (** solve engine per HTG node ([--solver]); default [Ilp] *)
  portfolio_work_limit : float;
      (** deterministic branch & bound budget per solve under
          [Portfolio], in simplex work units; [0.] disables the cap *)
}

val default : t

(** Faster, slightly less exhaustive settings for unit tests. *)
val fast : t
