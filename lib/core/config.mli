(** Tuning knobs of the parallelization algorithm. *)

type t = {
  max_candidates_per_class : int;
      (** cap on parallel candidates kept per (node, class) after Pareto
          pruning; the per-class sequential candidate is always kept *)
  ilp_time_limit_s : float;  (** wall budget per generated ILP *)
  ilp_node_limit : int;  (** branch & bound node budget per ILP *)
  max_children : int;  (** AHTG coalescing bound *)
  min_parallel_gain : float;
      (** a parallel candidate must beat the same-class sequential time by
          this factor to be kept *)
  max_split_tasks : int;  (** cap on tasks for DOALL iteration splitting *)
  enable_loop_split : bool;
      (** expose the "loop iterations" granularity level; disabling it is
          the E6 ablation *)
  enable_pipeline : bool;
      (** extract pipeline-parallel candidates from sequential loops — the
          paper's future-work extension, off by default *)
  ilp_gap_rel : float;
      (** relative optimality gap accepted by branch & bound *)
  max_steps : int;
      (** interpreted-statement budget for the profiling run *)
}

val default : t

(** Faster, slightly less exhaustive settings for unit tests. *)
val fast : t
