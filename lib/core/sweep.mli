(** Shared driver for the decreasing-budget solve sweeps of Algorithm 1
    (ILPPAR, loop splitting, pipelining), including the cross-budget warm
    starts: previous proven optimum as a [known_lb], previous incumbent
    trail as extra starting points ([Config.sweep_warm_start]). *)

open Ilp

(** Per-solve options from the configuration plus the chained [known_lb]
    (all sweep models minimize a makespan). *)
val chain_options : Config.t -> Solver.outcome option -> Branch_bound.options

(** Incumbent trail of the previous solve, filtered to points whose
    variable layout matches the new instance. *)
val chain_starts :
  Config.t -> Solver.outcome option -> num_vars:int -> float array list

(** [run ~total_units ~solve] drives one sweep: solve at budget [i], keep
    the candidate, continue at one unit below what it used.  Returns kept
    candidates in discovery order (largest budget first). *)
val run :
  total_units:int ->
  solve:
    (budget:int ->
    prev:Solver.outcome option ->
    (Solution.t * Solver.outcome) option) ->
  Solution.t list
