(** Software pipelining of sequential loops — the parallelism type the
    paper defers to future work ("we intend to extend our heterogeneous
    parallelization framework to be able to extract other types of
    parallelism as well, like, e.g., pipeline parallelism").  Implemented
    here as an opt-in extension ({!Config.t}[.enable_pipeline], default
    off so the reproduction of the paper's figures is unaffected).

    A sequential loop whose body statements form a chain can still run in
    parallel if the statements are partitioned into {e contiguous stages}
    that overlap across iterations: iteration [i] of stage [s] runs
    concurrently with iteration [i+1] of stage [s-1].  Loop-carried
    variables are fine as long as every statement touching one stays in a
    single stage (our conflict pairs).  Throughput is set by the slowest
    stage, so the stage partitioning and the stage-to-class mapping is —
    once again — a small ILP:

    minimize  B   (bottleneck: per-iteration time of the slowest stage)
    s.t.      each child in exactly one stage (contiguous in body order)
              conflict pairs co-located
              each used stage mapped to one class; per-class unit budget
              B >= stage_work(t, c) + handoff(t) - M (1 - map(t, c))

    The candidate's modelled time is
    [entries * ((iters + stages - 1) * B + spawn)], i.e. fill + steady
    state. *)

open Ilp

type input = {
  node : Htg.Node.t;  (** a sequential (non-DOALL) loop node *)
  pf : Platform.Desc.t;
  seq_class : int;
  budget : int;
  cfg : Config.t;
}

(** Stage handoffs are batched into FIFO blocks of this many iterations
    (as MPA-style pipeline implementations do), amortizing the per-transfer
    synchronization cost; the pipeline fill grows accordingly. *)
let handoff_batch = 32.

let solve_ext ?stats ?cache ?prev (inp : input) :
    (Solution.t * Solver.outcome) option =
  let node = inp.node in
  match node.Htg.Node.kind with
  | Htg.Node.Loop { doall = false; iters_per_entry; _ }
    when iters_per_entry >= 4. && Array.length node.Htg.Node.children >= 2 ->
      let pf = inp.pf in
      let cfg = inp.cfg in
      let k = Array.length node.Htg.Node.children in
      let nclasses = Platform.Desc.num_classes pf in
      let units = Platform.Desc.units_per_class pf in
      let nstages =
        min cfg.Config.max_split_tasks
          (min inp.budget (min k (Platform.Desc.total_units pf)))
      in
      if nstages < 2 then None
      else begin
        let ec = node.Htg.Node.exec_count in
        let iters = iters_per_entry in
        (* per-iteration cycles of child n *)
        let periter_cycles n =
          let c = node.Htg.Node.children.(n) in
          if c.Htg.Node.exec_count <= 0. then 0.
          else c.Htg.Node.total_cycles /. (ec *. iters)
        in
        let periter_us n cls =
          Platform.Desc.time_us pf ~cls (periter_cycles n)
        in
        (* per-iteration handoff cost if edge (i,j) crosses stages *)
        let comm = pf.Platform.Desc.comm in
        let edge_periter_us =
          List.filter_map
            (fun (e : Htg.Node.edge) ->
              match (e.Htg.Node.src, e.Htg.Node.dst, e.Htg.Node.kind) with
              | Htg.Node.EChild i, Htg.Node.EChild j, Htg.Node.Flow ->
                  let transfers =
                    Float.min node.Htg.Node.children.(i).Htg.Node.exec_count
                      node.Htg.Node.children.(j).Htg.Node.exec_count
                  in
                  let total_us =
                    (comm.Platform.Comm.startup_us *. transfers /. handoff_batch)
                    +. (float_of_int e.Htg.Node.bytes
                       *. comm.Platform.Comm.per_byte_us)
                  in
                  Some ((i, j), total_us /. (ec *. iters))
              | _ -> None)
            node.Htg.Node.edges
        in
        let m = Model.create ~name:(Printf.sprintf "pipe-node-%d" node.Htg.Node.id) () in
        let open Lin_expr in
        let y =
          Array.init k (fun n ->
              Array.init nstages (fun t ->
                  Model.bool_var ~priority:30 m (Printf.sprintf "y_%d_%d" n t)))
        in
        let map_tc =
          Array.init nstages (fun t ->
              Array.init nclasses (fun c ->
                  Model.bool_var ~priority:20 m (Printf.sprintf "map_%d_%d" t c)))
        in
        let used =
          Array.init nstages (fun t ->
              Model.bool_var ~priority:20 m (Printf.sprintf "used_%d" t))
        in
        let cut =
          List.map
            (fun ((i, j), cus) ->
              ((i, j), cus, Array.init nstages (fun t ->
                   Model.bool_var m (Printf.sprintf "cut_%d_%d_%d" i j t))))
            edge_periter_us
        in
        let bottleneck = Model.cont_var m "bottleneck" in
        (* each child in exactly one stage *)
        for n = 0 to k - 1 do
          Model.eq ~name:(Printf.sprintf "one_%d" n) m
            (sum (List.init nstages (fun t -> term y.(n).(t))))
            (constant 1.)
        done;
        (* contiguity / no backward flow: stage ids monotone in body order *)
        let stageid n =
          sum (List.init nstages (fun t -> term ~coef:(float_of_int t) y.(n).(t)))
        in
        for n = 0 to k - 2 do
          Model.ge ~name:(Printf.sprintf "mono_%d" n) m (stageid (n + 1)) (stageid n)
        done;
        (* conflicts: carried variables stay within one stage *)
        List.iter
          (fun (a, b) ->
            for t = 0 to nstages - 1 do
              Model.eq
                ~name:(Printf.sprintf "confl_%d_%d_%d" a b t)
                m (term y.(a).(t)) (term y.(b).(t))
            done)
          node.Htg.Node.conflicts;
        (* stage usage and class mapping *)
        for t = 0 to nstages - 1 do
          for n = 0 to k - 1 do
            Model.ge ~name:(Printf.sprintf "use_%d_%d" t n) m (term used.(t))
              (term y.(n).(t))
          done;
          Model.eq
            ~name:(Printf.sprintf "map1_%d" t)
            m
            (sum (List.init nclasses (fun c -> term map_tc.(t).(c))))
            (term used.(t))
        done;
        Model.eq ~name:"main_used" m (term used.(0)) (constant 1.);
        Model.eq ~name:"pin_main" m (term map_tc.(0).(inp.seq_class)) (constant 1.);
        for c = 0 to nclasses - 1 do
          Model.le
            ~name:(Printf.sprintf "units_%d" c)
            m
            (sum (List.init nstages (fun t -> term map_tc.(t).(c))))
            (constant (float_of_int units.(c)))
        done;
        Model.le ~name:"budget" m
          (sum (List.init nstages (fun t -> term used.(t))))
          (constant (float_of_int inp.budget));
        (* cut indicators *)
        List.iter
          (fun ((i, j), _, cvars) ->
            for t = 0 to nstages - 1 do
              Model.ge
                ~name:(Printf.sprintf "cut_%d_%d_%d" i j t)
                m (term cvars.(t))
                (sub (term y.(i).(t)) (term y.(j).(t)))
            done)
          cut;
        (* bottleneck per stage and class *)
        let slowest_cls =
          let w = ref 0. in
          for c = 0 to nclasses - 1 do
            let total = ref 0. in
            for n = 0 to k - 1 do
              total := !total +. periter_us n c
            done;
            w := Float.max !w !total
          done;
          !w
        in
        let total_comm =
          List.fold_left (fun acc ((_, _), cus, _) -> acc +. cus) 0. cut
        in
        let big_m = slowest_cls +. total_comm +. 1. in
        for t = 0 to nstages - 1 do
          for c = 0 to nclasses - 1 do
            let work_terms =
              List.init k (fun n -> term ~coef:(periter_us n c) y.(n).(t))
            in
            let comm_terms =
              List.map (fun ((_, _), cus, cvars) -> term ~coef:cus cvars.(t)) cut
            in
            Model.ge
              ~name:(Printf.sprintf "bneck_%d_%d" t c)
              m (term bottleneck)
              (add_const (-.big_m)
                 (sum (term ~coef:big_m map_tc.(t).(c) :: work_terms @ comm_terms)))
          done
        done;
        (* shared-bus serialization: all stage handoffs of one iteration
           share the bus *)
        Model.ge ~name:"bus_bound" m (term bottleneck)
          (sum
             (List.concat_map
                (fun ((_, _), cus, cvars) ->
                  List.init nstages (fun t -> term ~coef:cus cvars.(t)))
                cut));
        Model.set_objective m Model.Minimize (term bottleneck);
        (* warm start: everything in stage 0 on the main class *)
        let warm = Array.make (Model.num_vars m) 0. in
        for n = 0 to k - 1 do
          warm.(y.(n).(0)) <- 1.
        done;
        warm.(used.(0)) <- 1.;
        warm.(map_tc.(0).(inp.seq_class)) <- 1.;
        warm.(bottleneck) <-
          List.fold_left ( +. ) 0.
            (List.init k (fun n -> periter_us n inp.seq_class));
        let options = Sweep.chain_options cfg prev in
        let extra_starts =
          Sweep.chain_starts cfg prev ~num_vars:(Model.num_vars m)
        in
        match
          Solver.solve ~options ~warm_start:warm ~extra_starts ?cache ?stats m
        with
        | exception Fault.Injected _ ->
            (* pipelining candidates are optional extras on top of the
               ILPPAR sweep; under an injected solver fault just skip *)
            None
        | out ->
        match (out.Solver.status, out.Solver.x) with
        | (Branch_bound.Optimal | Branch_bound.Feasible), Some sol ->
            let stage_of =
              Array.init k (fun n ->
                  let st = ref 0 in
                  for t = 0 to nstages - 1 do
                    if sol.(y.(n).(t)) > 0.5 then st := t
                  done;
                  !st)
            in
            let stage_class =
              Array.init nstages (fun t ->
                  if sol.(used.(t)) > 0.5
                     && Array.exists (fun so -> so = t) stage_of
                  then begin
                    let cls = ref inp.seq_class in
                    for c = 0 to nclasses - 1 do
                      if sol.(map_tc.(t).(c)) > 0.5 then cls := c
                    done;
                    !cls
                  end
                  else -1)
            in
            let n_used =
              Array.fold_left (fun a c -> if c >= 0 then a + 1 else a) 0
                stage_class
            in
            if n_used < 2 then None
            else begin
              (* recompute the exact bottleneck from the extracted partition *)
              let stage_time t =
                let w = ref 0. in
                Array.iteri
                  (fun n st ->
                    if st = t then w := !w +. periter_us n stage_class.(t))
                  stage_of;
                List.iter
                  (fun ((i, j), cus, _) ->
                    if stage_of.(i) = t && stage_of.(j) <> t then w := !w +. cus)
                  cut;
                !w
              in
              let b =
                let mx = ref 0. in
                Array.iteri
                  (fun t c -> if c >= 0 then mx := Float.max !mx (stage_time t))
                  stage_class;
                !mx
              in
              let spawn_us =
                float_of_int (n_used - 1) *. pf.Platform.Desc.tco_us
              in
              let fill_iters = float_of_int (n_used - 1) *. handoff_batch in
              let time_us =
                ec *. (((iters +. fill_iters) *. b) +. spawn_us)
              in
              let extra = Array.make nclasses 0 in
              Array.iteri
                (fun t c -> if t > 0 && c >= 0 then extra.(c) <- extra.(c) + 1)
                stage_class;
              let degrade =
                match out.Solver.status with
                | Branch_bound.Optimal -> Solution.Exact
                | _ ->
                    (match stats with
                    | Some s -> Ilp.Stats.record_degraded s `Incumbent
                    | None -> ());
                    Solution.Incumbent
              in
              Some
                ( {
                    Solution.node_id = node.Htg.Node.id;
                    main_class = inp.seq_class;
                    time_us;
                    extra_units = extra;
                    degrade;
                    kind =
                      Solution.Pipeline
                        { Solution.stage_of; stage_class; bottleneck_us = b };
                  },
                  out )
            end
        | _ -> None
      end
  | _ -> None

let solve ?stats ?cache (inp : input) : Solution.t option =
  Option.map fst (solve_ext ?stats ?cache inp)

(** The decreasing-budget pipelining sweep for one (node, class), with
    cross-budget chaining; candidates in discovery order. *)
let sweep ?stats ?cache ~total_units (inp : input) : Solution.t list =
  Sweep.run ~total_units ~solve:(fun ~budget ~prev ->
      solve_ext ?stats ?cache ?prev { inp with budget })
