(** The heterogeneous partitioning-and-mapping ILP (paper Section IV,
    Equations 1-18) for one hierarchical AHTG node: maps child nodes to
    tasks, picks one previously computed candidate per child, tracks
    predecessor relations, accumulates critical-path costs with creation
    and communication overhead, and couples everything with a
    task-to-processor-class mapping under per-class unit budgets.  See
    the implementation header for the (behaviour-preserving) deviations
    from the paper's notation. *)

type input = {
  node : Htg.Node.t;
  child_sets : Solution.set array;
  pf : Platform.Desc.t;
  seq_class : int;  (** class of the main task for this sweep iteration *)
  budget : int;  (** upper bound on allocatable processing units *)
  cfg : Config.t;
}

(** Variable ids of one instance, for extraction and warm starts. *)
type vars = {
  x : Ilp.Model.var array array;  (** x.(n).(t) *)
  p : Ilp.Model.var array array array;  (** p.(n).(c).(s) *)
  pred : Ilp.Model.var array array;  (** pred.(t).(u), only t<u valid *)
  map_tc : Ilp.Model.var array array;  (** map.(t).(c) *)
  used : Ilp.Model.var array;
  cost : Ilp.Model.var array;
  contrib : Ilp.Model.var array array;  (** contrib.(n).(t) *)
  accum : Ilp.Model.var array;
  commcost : Ilp.Model.var array;
  procsused : Ilp.Model.var array array;  (** procsused.(t).(c) *)
  cut : (int * Ilp.Model.var array) list;
      (** edge idx in flow list -> per task *)
  exectime : Ilp.Model.var;
}

type edge_info = {
  e_src : int;  (** child index; -1 for Comm-In *)
  e_dst : int;  (** child index; -2 for Comm-Out *)
  e_cost_us : float;  (** full transfer cost if the edge is cut *)
  e_is_flow : bool;
}

type instance = {
  model : Ilp.Model.t;
  vars : vars;
  ntasks : int;
  cands : Solution.t array array array;  (** cands.(n).(c) = candidates *)
  flow_edges : edge_info array;
  all_edges : edge_info list;
  header_us : float;
  tco_total : float;
}

(** Build one ILPPAR instance; [None] when the node has fewer than two
    children or the budget admits no parallelism. *)
val build : input -> instance option

(** All children in the main task on [seqPC], greedily upgraded to their
    fastest fitting candidates — a complete, always-feasible model point
    that seeds branch & bound and anchors the heuristic engine. *)
val hierarchical_warm_start : input -> instance -> float array

(** Full model point implied by a parallel schedule (assignment, task
    classes, child choices).  Best-effort: callers must check
    [Ilp.Model.feasible] before trusting the point.  Shared bridge of the
    greedy incumbent seed and the heuristic engine's schedules. *)
val par_point : input -> instance -> Solution.par -> float array option

(** Decode a solver outcome's point into a candidate solution (tagged
    [Exact]; callers retag degraded results). *)
val extract : input -> instance -> Ilp.Solver.outcome -> Solution.t option

(** Run branch & bound on a built instance and classify the outcome;
    limits and injected faults fall down the degradation ladder. *)
val solve_built :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  input ->
  instance ->
  options:Ilp.Branch_bound.options ->
  warm_start:float array ->
  extra_starts:float array list ->
  (Solution.t * Ilp.Solver.outcome) option

(** Rungs below best-incumbent, tried in order: LP rounding, greedy list
    scheduling, then [None] (seq-fallback, recorded in [stats]). *)
val degrade_ladder :
  ?stats:Ilp.Stats.t ->
  input ->
  instance ->
  (Solution.t * Ilp.Solver.outcome) option

(** Build and solve one ILPPAR instance.  [None] when the node has fewer
    than two children or the budget admits no parallelism; otherwise the
    extracted candidate (tagged [seq_class]), even if only the warm-start
    incumbent survived the solver limits.  [cache] memoizes the solve on
    the model's structural fingerprint. *)
val solve : ?stats:Ilp.Stats.t -> ?cache:Ilp.Memo.t -> input -> Solution.t option

(** Like {!solve} but also returns the raw solver outcome; [prev] chains
    the preceding (larger-budget) outcome of the same sweep into a lower
    bound and warm starts (see {!Sweep}). *)
val solve_ext :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  ?prev:Ilp.Solver.outcome ->
  input ->
  (Solution.t * Ilp.Solver.outcome) option

(** The full decreasing-budget ILPPAR sweep for one (node, class) —
    [input.budget] is ignored, the sweep starts at [total_units] — with
    cross-budget chaining; candidates in discovery order. *)
val sweep :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  total_units:int ->
  input ->
  Solution.t list
