(** The heterogeneous partitioning-and-mapping ILP (paper Section IV,
    Equations 1-18) for one hierarchical AHTG node: maps child nodes to
    tasks, picks one previously computed candidate per child, tracks
    predecessor relations, accumulates critical-path costs with creation
    and communication overhead, and couples everything with a
    task-to-processor-class mapping under per-class unit budgets.  See
    the implementation header for the (behaviour-preserving) deviations
    from the paper's notation. *)

type input = {
  node : Htg.Node.t;
  child_sets : Solution.set array;
  pf : Platform.Desc.t;
  seq_class : int;  (** class of the main task for this sweep iteration *)
  budget : int;  (** upper bound on allocatable processing units *)
  cfg : Config.t;
}

(** Build and solve one ILPPAR instance.  [None] when the node has fewer
    than two children or the budget admits no parallelism; otherwise the
    extracted candidate (tagged [seq_class]), even if only the warm-start
    incumbent survived the solver limits.  [cache] memoizes the solve on
    the model's structural fingerprint. *)
val solve : ?stats:Ilp.Stats.t -> ?cache:Ilp.Memo.t -> input -> Solution.t option

(** Like {!solve} but also returns the raw solver outcome; [prev] chains
    the preceding (larger-budget) outcome of the same sweep into a lower
    bound and warm starts (see {!Sweep}). *)
val solve_ext :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  ?prev:Ilp.Solver.outcome ->
  input ->
  (Solution.t * Ilp.Solver.outcome) option

(** The full decreasing-budget ILPPAR sweep for one (node, class) —
    [input.budget] is ignored, the sweep starts at [total_units] — with
    cross-budget chaining; candidates in discovery order. *)
val sweep :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  total_units:int ->
  input ->
  Solution.t list
