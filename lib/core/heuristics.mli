(** Heuristic scheduling engine of the solver portfolio: AMTHA-style
    balanced list schedules refined by a small seeded genetic algorithm,
    evaluated against the {e exact} ILPPAR model ({!Formulation.par_point}
    + [Ilp.Model.feasible]) so only optimality is forgone.  Fully
    deterministic at any worker count. *)

(** Best heuristic point of one built instance: the full model point and
    its exact-model objective.  Memoized in [cache] under the
    ["heuristic"] engine fingerprint (never replayable as an exact
    answer); recorded in [stats] as a heuristic solve or cache hit. *)
val best_point :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  Formulation.input ->
  Formulation.instance ->
  (float array * float) option

(** Solve one subproblem purely heuristically ([--solver=heuristic]):
    the best schedule extracted as a candidate tagged
    {!Solution.Heuristic}, with a fabricated [Feasible] outcome so sweep
    budget chaining works unchanged. *)
val solve :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  Formulation.input ->
  Formulation.instance ->
  (Solution.t * Ilp.Solver.outcome) option
