(** The global parallelization algorithm (paper Algorithm 1).

    Bottom-up over the AHTG: children are parallelized first; then, for the
    node itself, the ILP ([Formulation.solve]) is run once per processor
    class (as the main task's class) and per decreasing processor budget,
    collecting tagged parallel solution candidates.  DOALL loops
    additionally receive iteration-splitting candidates from
    {!Loop_split}.  Candidate sets are Pareto-pruned per class; a per-class
    sequential candidate is always retained, which guarantees feasibility
    of every parent ILP (Section IV-K note in the paper). *)

type result = {
  root_set : Solution.set;
  root : Solution.t;  (** best candidate whose main class is the platform's *)
  sets : (int, Solution.set) Hashtbl.t;  (** per AHTG node id *)
  stats : Ilp.Stats.t;
  wall_time_s : float;
}

(** Sequential candidate of [node] on class [cls]: children (if any) use
    their own sequential candidates of the same class. *)
let rec seq_candidate (sets : (int, Solution.set) Hashtbl.t)
    (pf : Platform.Desc.t) (node : Htg.Node.t) cls : Solution.t =
  let child_seq =
    Array.map
      (fun (c : Htg.Node.t) ->
        match Hashtbl.find_opt sets c.Htg.Node.id with
        | Some set -> Solution.seq_of set cls
        | None -> seq_candidate sets pf c cls)
      node.Htg.Node.children
  in
  {
    Solution.node_id = node.Htg.Node.id;
    main_class = cls;
    time_us = Htg.Node.seq_time_us pf ~cls node;
    extra_units = Array.make (Platform.Desc.num_classes pf) 0;
    kind = Solution.Seq child_seq;
  }

let parallelize ?(cfg = Config.default) ?stats (pf : Platform.Desc.t)
    (root_node : Htg.Node.t) : result =
  let t0 = Sys.time () in
  let stats = match stats with Some s -> s | None -> Ilp.Stats.create () in
  let sets : (int, Solution.set) Hashtbl.t = Hashtbl.create 64 in
  let nclasses = Platform.Desc.num_classes pf in
  let total_units = Platform.Desc.total_units pf in
  let rec go (node : Htg.Node.t) : Solution.set =
    match Hashtbl.find_opt sets node.Htg.Node.id with
    | Some set -> set
    | None ->
        (* bottom-up: children first *)
        let child_sets = Array.map go node.Htg.Node.children in
        let res : Solution.t list array =
          Array.init nclasses (fun c -> [ seq_candidate sets pf node c ])
        in
        if Htg.Node.is_hierarchical node then begin
          for seq_class = 0 to nclasses - 1 do
            let seq_time = Htg.Node.seq_time_us pf ~cls:seq_class node in
            let consider (r : Solution.t) =
              if r.Solution.time_us *. cfg.Config.min_parallel_gain < seq_time
              then res.(seq_class) <- r :: res.(seq_class)
            in
            (* ILPPAR sweep over decreasing budgets (Algorithm 1 l.14-20) *)
            let i = ref total_units in
            while !i > 1 do
              match
                Formulation.solve ~stats
                  {
                    Formulation.node;
                    child_sets;
                    pf;
                    seq_class;
                    budget = !i;
                    cfg;
                  }
              with
              | Some r ->
                  consider r;
                  i := Solution.total_units r - 1
              | None -> i := 0
            done;
            (* DOALL loops: iteration-splitting candidates *)
            if Htg.Node.is_doall node && cfg.Config.enable_loop_split then begin
              let i = ref total_units in
              while !i > 1 do
                match
                  Loop_split.solve ~stats
                    { Loop_split.node; pf; seq_class; budget = !i; cfg }
                with
                | Some r ->
                    consider r;
                    i := Solution.total_units r - 1
                | None -> i := 0
              done
            end;
            (* sequential loops: pipeline-stage candidates (extension) *)
            if cfg.Config.enable_pipeline then begin
              let i = ref total_units in
              while !i > 1 do
                match
                  Pipeline.solve ~stats
                    { Pipeline.node; pf; seq_class; budget = !i; cfg }
                with
                | Some r ->
                    consider r;
                    i := Solution.total_units r - 1
                | None -> i := 0
              done
            end
          done
        end;
        let set =
          Array.map
            (fun cands ->
              Solution.prune ~max_keep:(cfg.Config.max_candidates_per_class + 1)
                cands)
            res
        in
        (* re-insert the sequential candidate if pruning dropped it *)
        let set =
          Array.mapi
            (fun c cands ->
              if List.exists Solution.is_sequential cands then cands
              else seq_candidate sets pf node c :: cands)
            set
        in
        Hashtbl.replace sets node.Htg.Node.id set;
        set
  in
  let root_set = go root_node in
  (* the application's sequential context runs on the platform's main
     class; implement the best candidate tagged with it (Algorithm 1 l.4) *)
  let main_cls = pf.Platform.Desc.main_class in
  let root =
    match root_set.(main_cls) with
    | [] -> seq_candidate sets pf root_node main_cls
    | x :: rest ->
        List.fold_left
          (fun acc s -> if s.Solution.time_us < acc.Solution.time_us then s else acc)
          x rest
  in
  { root_set; root; sets; stats; wall_time_s = Sys.time () -. t0 }
