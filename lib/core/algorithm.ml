(** The global parallelization algorithm (paper Algorithm 1).

    Bottom-up over the AHTG: children are parallelized first; then, for the
    node itself, the ILP ([Formulation.solve]) is run once per processor
    class (as the main task's class) and per decreasing processor budget,
    collecting tagged parallel solution candidates.  DOALL loops
    additionally receive iteration-splitting candidates from
    {!Loop_split}.  Candidate sets are Pareto-pruned per class; a per-class
    sequential candidate is always retained, which guarantees feasibility
    of every parent ILP (Section IV-K note in the paper).

    The fan-out is itself parallel when [Config.jobs > 1]: sibling
    subtrees and the independent (class, sweep-kind) budget sweeps of a
    node become tasks on a {!Taskpool.Pool} of domains.  Determinism is
    preserved by construction — every sweep is a self-contained job whose
    inputs (child sets, platform, config) do not depend on scheduling,
    and the driver replays the candidates in the exact order the
    sequential driver would have considered them, so chosen solutions are
    bit-identical at any [jobs] value.  Statistics are likewise
    accumulated per job and merged in that canonical order.  The solve
    cache ([Config.solve_cache]) keeps this determinism because entries
    are single-flight: a given fingerprint is solved exactly once, and a
    hit returns precisely what the solve returned. *)

type result = {
  root_set : Solution.set;
  root : Solution.t;  (** best candidate whose main class is the platform's *)
  sets : (int, Solution.set) Hashtbl.t;  (** per AHTG node id *)
  stats : Ilp.Stats.t;
  wall_time_s : float;
  disk_cache : Cache.Store.counters option;
      (** persistent-cache traffic of this run ([None] without a store) *)
  solver : Config.solver;
      (** engine the run used ([Config.solver]); {!degradation} judges
          the root's tag against this mode's acceptable tier *)
}

(** Sequential candidate of [node] on class [cls]: children (if any) use
    their own sequential candidates of the same class. *)
let rec seq_candidate (sets : (int, Solution.set) Hashtbl.t)
    (pf : Platform.Desc.t) (node : Htg.Node.t) cls : Solution.t =
  let child_seq =
    Array.map
      (fun (c : Htg.Node.t) ->
        match Hashtbl.find_opt sets c.Htg.Node.id with
        | Some set -> Solution.seq_of set cls
        | None -> seq_candidate sets pf c cls)
      node.Htg.Node.children
  in
  {
    Solution.node_id = node.Htg.Node.id;
    main_class = cls;
    time_us = Htg.Node.seq_time_us pf ~cls node;
    extra_units = Array.make (Platform.Desc.num_classes pf) 0;
    degrade = Solution.Exact;
    kind = Solution.Seq child_seq;
  }

(* the three sweep kinds of one (node, class), in the order the
   sequential driver runs them *)
type sweep_kind = Ilppar | Split | Pipe

let kind_str = function Ilppar -> "ilppar" | Split -> "split" | Pipe -> "pipe"

let parallelize ?(cfg = Config.default) ?stats ?pool ?store ?memo
    (pf : Platform.Desc.t) (root_node : Htg.Node.t) : result =
  let t0 = Ilp.Clock.now_s () in
  let stats = match stats with Some s -> s | None -> Ilp.Stats.create () in
  (* persistent tier: a caller-supplied store is shared (batch mode),
     otherwise [cfg.cache_dir] makes this run open and close its own *)
  let owned_store, store =
    match store with
    | Some s -> (None, Some s)
    | None -> (
        match cfg.Config.cache_dir with
        | Some dir when cfg.Config.solve_cache ->
            let s = Cache.Store.open_ ~max_mb:cfg.Config.cache_max_mb ~dir () in
            (Some s, Some s)
        | Some _ | None -> (None, None))
  in
  (* the salt keys entries by platform (the formulation's structural
     fingerprint does not name the machine, but its coefficients come
     from it — salting makes the separation explicit and collision-proof) *)
  let backing =
    Option.map
      (fun s ->
        Cache.Store.backing s
          ~salt:(Cache.Store.salt ~context:(Platform.Desc.show pf)))
      store
  in
  (* a caller-supplied memo keeps the in-memory tier hot across runs
     (server mode); it must have been created against the same platform
     salt, which is why the server keys memos by platform description *)
  let cache =
    match memo with
    | Some m -> Some m
    | None ->
        if cfg.Config.solve_cache then Some (Ilp.Memo.create ?backing ())
        else None
  in
  let jobs =
    if cfg.Config.jobs = 0 then Domain.recommended_domain_count ()
    else max 1 cfg.Config.jobs
  in
  (* jobs = 1 stays entirely on the calling domain (no pool); a caller
     supplied pool is reused, otherwise one is created for this run *)
  let owned_pool, pool =
    if jobs <= 1 then (None, None)
    else
      match pool with
      | Some p -> (None, Some p)
      | None ->
          let p = Taskpool.Pool.create ~domains:jobs () in
          (Some p, Some p)
  in
  let nclasses = Platform.Desc.num_classes pf in
  let total_units = Platform.Desc.total_units pf in
  let sets : (int, Solution.set) Hashtbl.t = Hashtbl.create 64 in
  (* concurrent go() calls on sibling subtrees write their results as
     they finish; every access goes through the mutex *)
  let sets_mu = Mutex.create () in
  let find_set id =
    Mutex.lock sets_mu;
    let r = Hashtbl.find_opt sets id in
    Mutex.unlock sets_mu;
    r
  in
  let store_set id s =
    Mutex.lock sets_mu;
    Hashtbl.replace sets id s;
    Mutex.unlock sets_mu
  in
  (* as {!seq_candidate}, but reading the shared table under the lock *)
  let rec seq_cand (node : Htg.Node.t) cls : Solution.t =
    let child_seq =
      Array.map
        (fun (c : Htg.Node.t) ->
          match find_set c.Htg.Node.id with
          | Some set -> Solution.seq_of set cls
          | None -> seq_cand c cls)
        node.Htg.Node.children
    in
    {
      Solution.node_id = node.Htg.Node.id;
      main_class = cls;
      time_us = Htg.Node.seq_time_us pf ~cls node;
      extra_units = Array.make nclasses 0;
      degrade = Solution.Exact;
      kind = Solution.Seq child_seq;
    }
  in
  (* one self-contained sweep job; returns the kept candidates in
     discovery order plus the job's private statistics *)
  let sweep_job (node : Htg.Node.t) child_sets seq_class kind :
      Solution.t list * Ilp.Stats.t =
    (* a sweep job never suspends (pure solving), so the span is safe on
       whichever pool domain runs it *)
    Trace.span_k ~cat:"algo"
      (fun () ->
        Printf.sprintf "sweep.node%d.c%d.%s" node.Htg.Node.id seq_class
          (kind_str kind))
    @@ fun () ->
    let st = Ilp.Stats.create () in
    let cands =
      match kind with
      | Ilppar ->
          Portfolio.sweep ~stats:st ?cache ~total_units
            {
              Formulation.node;
              child_sets;
              pf;
              seq_class;
              budget = total_units;
              cfg;
            }
      | Split ->
          Loop_split.sweep ~stats:st ?cache ~total_units
            { Loop_split.node; pf; seq_class; budget = total_units; cfg }
      | Pipe ->
          Pipeline.sweep ~stats:st ?cache ~total_units
            { Pipeline.node; pf; seq_class; budget = total_units; cfg }
    in
    (cands, st)
  in
  let await_all p futs =
    List.map
      (fun f ->
        match Taskpool.Pool.await p f with Ok r -> r | Error e -> raise e)
      futs
  in
  let rec go (node : Htg.Node.t) : Solution.set =
    match find_set node.Htg.Node.id with
    | Some set -> set
    | None ->
        (* Algorithm 1 node visit.  Without a pool the visit runs
           uninterrupted on this domain and gets a proper span; with a
           pool it awaits child futures (suspension may migrate it across
           domains), so it is bracketed with instants instead. *)
        let traced = Trace.enabled () in
        let with_pool = Option.is_some pool in
        if traced && with_pool then
          Trace.instant ~cat:"algo" "node.visit"
            ~args:[ ("node", Trace.Int node.Htg.Node.id) ];
        let visit () =
        (* bottom-up: children first — in parallel when a pool exists *)
        let child_sets =
          match pool with
          | Some p when Array.length node.Htg.Node.children > 1 ->
              let futs =
                Array.map
                  (fun (c : Htg.Node.t) ->
                    let label =
                      if traced then Printf.sprintf "go.node%d" c.Htg.Node.id
                      else "task"
                    in
                    Taskpool.Pool.spawn ~label p (fun () -> go c))
                  node.Htg.Node.children
              in
              Array.map
                (fun f ->
                  match Taskpool.Pool.await p f with
                  | Ok s -> s
                  | Error e -> raise e)
                futs
          | _ -> Array.map go node.Htg.Node.children
        in
        let res : Solution.t list array =
          Array.init nclasses (fun c -> [ seq_cand node c ])
        in
        if Htg.Node.is_hierarchical node then begin
          (* independent (class, kind) sweeps, listed in the sequential
             driver's order: classes ascending; ILPPAR, then DOALL
             splitting, then pipelining *)
          (* The auxiliary sweeps (DOALL splitting, pipelining) run small
             dedicated ILPs; under [--solver=heuristic] — whose contract
             is "no branch & bound anywhere" — they are skipped and the
             heuristic fork/join candidates stand alone. *)
          let aux_ilps = cfg.Config.solver <> Config.Heuristic in
          let kinds =
            [ Ilppar ]
            @ (if
                 Htg.Node.is_doall node && cfg.Config.enable_loop_split
                 && aux_ilps
               then [ Split ]
               else [])
            @ if cfg.Config.enable_pipeline && aux_ilps then [ Pipe ] else []
          in
          let descs =
            List.concat_map
              (fun c -> List.map (fun k -> (c, k)) kinds)
              (List.init nclasses Fun.id)
          in
          let outs =
            match pool with
            | Some p when List.length descs > 1 ->
                await_all p
                  (List.map
                     (fun (c, k) ->
                       let label =
                         if traced then
                           Printf.sprintf "sweep.node%d.c%d.%s"
                             node.Htg.Node.id c (kind_str k)
                         else "task"
                       in
                       Taskpool.Pool.spawn ~label p (fun () ->
                           sweep_job node child_sets c k))
                     descs)
            | _ -> List.map (fun (c, k) -> sweep_job node child_sets c k) descs
          in
          (* deterministic merge: replay the candidates exactly as the
             sequential driver considers them *)
          List.iter2
            (fun (seq_class, _kind) (cands, st) ->
              Ilp.Stats.merge ~into:stats st;
              let seq_time = Htg.Node.seq_time_us pf ~cls:seq_class node in
              List.iter
                (fun (r : Solution.t) ->
                  if r.Solution.time_us *. cfg.Config.min_parallel_gain < seq_time
                  then res.(seq_class) <- r :: res.(seq_class))
                cands)
            descs outs
        end;
        let set =
          Array.map
            (fun cands ->
              Solution.prune ~max_keep:(cfg.Config.max_candidates_per_class + 1)
                cands)
            res
        in
        (* re-insert the sequential candidate if pruning dropped it *)
        let set =
          Array.mapi
            (fun c cands ->
              if List.exists Solution.is_sequential cands then cands
              else seq_cand node c :: cands)
            set
        in
        store_set node.Htg.Node.id set;
        set
        in
        if with_pool then begin
          let set = visit () in
          if traced then
            Trace.instant ~cat:"algo" "node.done"
              ~args:[ ("node", Trace.Int node.Htg.Node.id) ];
          set
        end
        else
          Trace.span_k ~cat:"algo"
            (fun () -> Printf.sprintf "node%d" node.Htg.Node.id)
            visit
  in
  let root_set =
    Fun.protect
      ~finally:(fun () ->
        Option.iter Taskpool.Pool.shutdown owned_pool;
        (* closing persists the index; counters stay readable after *)
        Option.iter Cache.Store.close owned_store)
      (fun () ->
        match pool with
        | Some p -> Taskpool.Pool.run p (fun () -> go root_node)
        | None -> go root_node)
  in
  let disk_cache = Option.map Cache.Store.counters store in
  (* the application's sequential context runs on the platform's main
     class; implement the best candidate tagged with it (Algorithm 1 l.4) *)
  let main_cls = pf.Platform.Desc.main_class in
  let root =
    match root_set.(main_cls) with
    | [] -> seq_candidate sets pf root_node main_cls
    | x :: rest ->
        List.fold_left
          (fun acc s -> if s.Solution.time_us < acc.Solution.time_us then s else acc)
          x rest
  in
  {
    root_set;
    root;
    sets;
    stats;
    wall_time_s = Ilp.Clock.now_s () -. t0;
    disk_cache;
    solver = cfg.Config.solver;
  }

(** Canonical digest of everything Algorithm 1 decided: the implemented
    root solution, the root candidate set, and every node's candidate
    set in node-id order.  Two runs chose bit-identical solutions iff
    their digests match — the batch CLI prints it per target and the
    serve protocol returns it per request, so cold/warm and
    CLI-vs-server runs can be diffed directly. *)
let digest (r : result) : string =
  let sets =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.sets []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  Digest.to_hex
    (Digest.string (Marshal.to_string (r.root, r.root_set, sets) []))

(** The degraded-but-valid verdict shared by the CLI (exit 2) and the
    serve protocol (status [degraded]): [Some name] when the chosen
    solution carries a degradation tag worse than the solver mode's
    contract allows, or when the solver's degradation ladder engaged
    anywhere during the sweep (the candidate sets may then be missing
    solutions the full search would have found).

    The acceptable tier is mode-dependent: [Ilp] promises proved optima
    ([Exact]); [Heuristic] promises heuristic answers by design, so the
    [Heuristic] tag is not a degradation there; [Portfolio] promises at
    worst an incumbent-quality answer, so [Heuristic] and [Incumbent]
    tags are its normal operating regime. *)
let degradation (r : result) : string option =
  let acceptable =
    Solution.degradation_rank
      (match r.solver with
      | Config.Ilp -> Solution.Exact
      | Config.Heuristic -> Solution.Heuristic
      | Config.Portfolio -> Solution.Incumbent)
  in
  let worst = Solution.worst_degradation r.root in
  if Solution.degradation_rank worst > acceptable then
    Some (Solution.degradation_name worst)
  else if Ilp.Stats.ladder_engaged r.stats then
    Some "exact (ladder engaged during the sweep)"
  else None
