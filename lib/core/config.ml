(** Tuning knobs of the parallelization algorithm. *)

type t = {
  max_candidates_per_class : int;
      (** cap on parallel solution candidates kept per (node, class) after
          Pareto pruning; the per-class sequential candidate is always kept *)
  ilp_time_limit_s : float;  (** wall budget per generated ILP *)
  ilp_node_limit : int;  (** branch & bound node budget per ILP *)
  max_children : int;  (** AHTG coalescing bound, see {!Htg.Build} *)
  min_parallel_gain : float;
      (** a parallel candidate must beat the same-class sequential time by
          this factor to be kept (filters noise-level "improvements") *)
  max_split_tasks : int;  (** cap on tasks for DOALL iteration splitting *)
  enable_loop_split : bool;
      (** expose the "loop iterations" granularity level (DOALL splitting);
          disabling it is the E6 ablation *)
  enable_pipeline : bool;
      (** extract pipeline-parallel candidates from sequential loops — the
          paper's future-work extension; off by default so the
          reproduction of the paper's figures is unaffected *)
  ilp_gap_rel : float;
      (** relative optimality gap accepted by branch & bound; the paper's
          solvers run to proven optimality, but a sub-percent gap changes
          no mapping decision and keeps solve times in check *)
  max_steps : int;
      (** interpreted-statement budget for the profiling run (and any
          runtime execution derived from it) *)
}

let default =
  {
    max_candidates_per_class = 3;
    ilp_time_limit_s = 2.;
    ilp_node_limit = 3_000;
    max_children = 8;
    min_parallel_gain = 1.02;
    max_split_tasks = 8;
    enable_loop_split = true;
    enable_pipeline = false;
    ilp_gap_rel = 0.005;
    max_steps = 50_000_000;
  }

(** Faster, slightly less exhaustive settings for unit tests. *)
let fast =
  {
    default with
    ilp_time_limit_s = 0.5;
    ilp_node_limit = 800;
    max_candidates_per_class = 2;
    ilp_gap_rel = 0.01;
  }
