(** Tuning knobs of the parallelization algorithm. *)

(** Which solve engine maps each HTG node (the PR 10 portfolio axis).

    [Ilp] is the paper's exact Eq. 1–18 branch & bound — the historical
    behaviour, bit-identical to earlier releases.  [Heuristic] replaces
    the solver entirely with the AMTHA-style list scheduler plus the
    seeded GA refiner: milliseconds per node, near-optimal schedules,
    results tagged with the [Heuristic] tier (not degraded, exit 0).
    [Portfolio] runs the heuristic first and hands its makespan to
    branch & bound as the starting incumbent under a reduced
    deterministic work budget ([portfolio_work_limit]): the exact search
    either proves optimality quickly or returns the (possibly improved)
    incumbent — never worse than the heuristic, usually much faster than
    the full exact solve. *)
type solver = Ilp | Portfolio | Heuristic

type t = {
  max_candidates_per_class : int;
      (** cap on parallel solution candidates kept per (node, class) after
          Pareto pruning; the per-class sequential candidate is always kept *)
  ilp_time_limit_s : float;
      (** wall budget per generated ILP (monotonic clock).  A safety net
          only: when bit-reproducibility matters, make sure the
          deterministic [ilp_work_limit] is the binding limit, since wall
          time varies run to run *)
  ilp_node_limit : int;  (** branch & bound node budget per ILP *)
  ilp_work_limit : float;
      (** deterministic solve budget per generated ILP, measured in
          simplex work units (tableau cells touched).  Unlike the wall
          budget this is machine- and schedule-independent, so runs
          terminate identically anywhere and at any [jobs] value.
          [0.] disables it.  As calibration: 1e8 units is roughly 0.5 s
          of solving on a 2020s core *)
  max_children : int;  (** AHTG coalescing bound, see {!Htg.Build} *)
  min_parallel_gain : float;
      (** a parallel candidate must beat the same-class sequential time by
          this factor to be kept (filters noise-level "improvements") *)
  max_split_tasks : int;  (** cap on tasks for DOALL iteration splitting *)
  enable_loop_split : bool;
      (** expose the "loop iterations" granularity level (DOALL splitting);
          disabling it is the E6 ablation *)
  enable_pipeline : bool;
      (** extract pipeline-parallel candidates from sequential loops — the
          paper's future-work extension; off by default so the
          reproduction of the paper's figures is unaffected *)
  ilp_gap_rel : float;
      (** relative optimality gap accepted by branch & bound; the paper's
          solvers run to proven optimality, but a sub-percent gap changes
          no mapping decision and keeps solve times in check *)
  max_steps : int;
      (** interpreted-statement budget for the profiling run (and any
          runtime execution derived from it) *)
  jobs : int;
      (** worker domains for the compile-side solve engine: sibling
          subtree parallelizations and the independent (class, kind)
          budget sweeps of a node become pool tasks.  [1] (the default)
          keeps the historical fully sequential driver; [0] means
          [Domain.recommended_domain_count ()].  Chosen solutions are
          bit-identical at any value (see DESIGN.md on determinism) *)
  solve_cache : bool;
      (** memoize ILP solves on a structural fingerprint ({!Ilp.Memo}):
          isomorphic subproblems across budgets, classes and tree nodes
          are solved once.  Single-flight, so hit counts and results stay
          deterministic under parallel solving *)
  sweep_warm_start : bool;
      (** chain the solves of one decreasing-budget sweep: the previous
          budget's proven optimum becomes a [known_lb] (valid because
          shrinking the budget only shrinks the feasible set), and its
          improving-incumbent trail seeds the next solve's incumbent.
          Prunes substantially; disable to reproduce the pre-cache
          solver behaviour exactly *)
  timeout_s : float;
      (** global wall-clock deadline for executing an extracted parallel
          program ([--timeout]): past it, the runtime watchdog cancels the
          run and reports a typed timeout (or deadlock) error instead of
          hanging.  [0.] (the default) disables the watchdog *)
  trace_file : string option;
      (** write a Chrome trace-event JSON of the run here ([--trace];
          ["-"] is stdout).  Arms the {!Trace} recorder, which otherwise
          costs one atomic read per probe *)
  metrics_file : string option;
      (** write the unified metrics JSON here ([--metrics]; ["-"] is
          stdout) *)
  profile : bool;
      (** print the human per-phase/solver profile table ([--profile]) *)
  cache_dir : string option;
      (** root of the persistent cross-run solve cache ([--cache-dir]).
          [None] (the default) keeps the cache purely in-memory.  Warm
          runs answer every structural solve from disk — bit-identical
          to cold runs — and skip ILPPAR entirely *)
  cache_max_mb : int;
      (** LRU size cap of the persistent cache's data file in MiB
          ([--cache-max-mb]); least-recently-used entries are evicted by
          compaction once the cap is exceeded *)
  ilp_presolve : bool;
      (** run the {!Ilp.Presolve} reductions (bound tightening, implied
          fixing, dominated columns) before each branch & bound search
          ([--presolve]); the solution is lifted back, so results and
          cache keys are unchanged at the caller boundary *)
  ilp_symmetry : bool;
      (** add lexicographic symmetry-breaking rows to each formulation
          ([--symmetry]): used-task contiguity and no-empty-used-tasks
          complete the paper's Eq. 10 task-label canonicalization *)
  ilp_cuts : bool;
      (** separate knapsack cover cuts on the budget rows at the root
          ([--cuts]); in-dive separation exists in {!Ilp.Branch_bound}
          but measured slower on the evaluation suite, so the pipeline
          keeps it off *)
  ilp_seed_incumbent : bool;
      (** prime each solve's incumbent with the greedy list schedule
          ([--seed-incumbent]), so fathoming starts from a real bound
          instead of the first rounding success *)
  solver : solver;
      (** solve engine per HTG node ([--solver]): [Ilp] (exact,
          default), [Portfolio] (heuristic incumbent + reduced-budget
          exact), or [Heuristic] (no exact solver at all) *)
  portfolio_work_limit : float;
      (** deterministic branch & bound budget per solve under
          [Portfolio], in simplex work units; deliberately a fraction of
          [ilp_work_limit] — the heuristic incumbent keeps quality while
          the smaller budget buys the portfolio's wall-time win.  [0.]
          disables the cap (portfolio degenerates to seeded exact) *)
}

let default =
  {
    max_candidates_per_class = 3;
    ilp_time_limit_s = 2.;
    ilp_node_limit = 3_000;
    ilp_work_limit = 4e8;
    max_children = 8;
    min_parallel_gain = 1.02;
    max_split_tasks = 8;
    enable_loop_split = true;
    enable_pipeline = false;
    ilp_gap_rel = 0.005;
    max_steps = 50_000_000;
    jobs = 1;
    solve_cache = true;
    sweep_warm_start = true;
    timeout_s = 0.;
    trace_file = None;
    metrics_file = None;
    profile = false;
    cache_dir = None;
    cache_max_mb = 512;
    ilp_presolve = true;
    ilp_symmetry = true;
    ilp_cuts = true;
    ilp_seed_incumbent = true;
    solver = Ilp;
    portfolio_work_limit = 4e6;
  }

(** Faster, slightly less exhaustive settings for unit tests. *)
let fast =
  {
    default with
    ilp_time_limit_s = 0.5;
    ilp_node_limit = 800;
    ilp_work_limit = 1e8;
    max_candidates_per_class = 2;
    ilp_gap_rel = 0.01;
  }
