(** End-to-end parallelization pipeline (paper Fig. 6): source → frontend
    → profiling → AHTG → ILP parallelization → implementation for the
    MPSoC simulator. *)

type approach =
  | Heterogeneous  (** the paper's contribution *)
  | Homogeneous
      (** the baseline [Cordes et al., CODES+ISSS 2010]: identical
          machinery on the class-blind platform view, tasks placed by a
          class-oblivious mapping stage *)

val approach_name : approach -> string

type outcome = {
  approach : approach;
  platform : Platform.Desc.t;
  htg : Htg.Node.t;
  algo : Algorithm.result;
  program : Sim.Prog.node;  (** parallel program realized on the platform *)
  seq_program : Sim.Prog.node;  (** sequential baseline on the main core *)
  profile : Interp.Profile.t;
}

(** Parallelize an already-compiled (inlined) program; [profile] lets
    callers reuse one profiling run across platforms and approaches, and
    [pool]/[store] likewise share a taskpool and a persistent solve cache
    across many invocations (batch mode). *)
val run_program :
  ?cfg:Config.t ->
  ?profile:Interp.Profile.t ->
  ?pool:Taskpool.Pool.t ->
  ?store:Cache.Store.t ->
  ?memo:Ilp.Memo.t ->
  approach:approach ->
  platform:Platform.Desc.t ->
  Minic.Ast.program ->
  outcome

(** Parallelize from source text. *)
val run :
  ?cfg:Config.t ->
  ?pool:Taskpool.Pool.t ->
  ?store:Cache.Store.t ->
  ?memo:Ilp.Memo.t ->
  approach:approach ->
  platform:Platform.Desc.t ->
  string ->
  outcome

(** {2 Result-threaded pipeline}

    Same flow, but every failure — frontend errors, diverging or faulting
    profiling runs, HTG construction errors, injected faults — comes back
    as a typed {!Mpsoc_error.t} tagged with the phase that failed, instead
    of an exception. *)

val run_program_result :
  ?cfg:Config.t ->
  ?profile:Interp.Profile.t ->
  ?pool:Taskpool.Pool.t ->
  ?store:Cache.Store.t ->
  ?memo:Ilp.Memo.t ->
  approach:approach ->
  platform:Platform.Desc.t ->
  Minic.Ast.program ->
  (outcome, Mpsoc_error.t) result

val run_result :
  ?cfg:Config.t ->
  ?pool:Taskpool.Pool.t ->
  ?store:Cache.Store.t ->
  ?memo:Ilp.Memo.t ->
  approach:approach ->
  platform:Platform.Desc.t ->
  string ->
  (outcome, Mpsoc_error.t) result

(** Simulated speedup over sequential execution on the main core. *)
val speedup : outcome -> float

val metrics : outcome -> Sim.Engine.metrics
