(** Per-node solver portfolio ([Config.solver]): dispatches each ILPPAR
    subproblem to the exact engine ([Ilp] — bit-identical to
    {!Formulation.solve_ext}), the heuristic engine alone ([Heuristic]),
    or a race where the heuristic's makespan seeds branch & bound as an
    incumbent under a reduced deterministic work budget ([Portfolio]).
    Race outcomes (winning engine, quality gap) are recorded in
    {!Ilp.Stats} and as ["portfolio.race"] trace instants. *)

val solve :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  Formulation.input ->
  Solution.t option

val solve_ext :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  ?prev:Ilp.Solver.outcome ->
  Formulation.input ->
  (Solution.t * Ilp.Solver.outcome) option

(** The full decreasing-budget sweep for one (node, class) under the
    configured engine; with [Config.solver = Ilp] this is exactly
    {!Formulation.sweep}. *)
val sweep :
  ?stats:Ilp.Stats.t ->
  ?cache:Ilp.Memo.t ->
  total_units:int ->
  Formulation.input ->
  Solution.t list
