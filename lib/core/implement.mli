(** Implementation stage: turn the chosen solution candidate into an
    executable parallel program for the MPSoC simulator (the ATOMIUM/MPA
    role in the paper's tool flow). *)

type mode =
  | Pre_mapped  (** trust the solution's task-to-class mapping *)
  | Oblivious
      (** ignore it: tasks greedily take the fastest remaining physical
          units — how a class-oblivious (homogeneous) tool's output gets
          placed, and why it collapses on heterogeneous machines *)

(** Realize a candidate of the given AHTG node for execution on the
    platform (default [Pre_mapped]). *)
val realize :
  ?mode:mode -> Platform.Desc.t -> Htg.Node.t -> Solution.t -> Sim.Prog.node

(** Purely sequential realization (the measurement baseline). *)
val realize_sequential : Htg.Node.t -> Sim.Prog.node
