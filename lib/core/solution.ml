(** Parallel solution candidates (paper Section III-B).

    Each AHTG node accumulates a set of candidates, every one tagged with
    the processor class executing its {e main task} and annotated with its
    modelled execution time, the number of {e extra} processing units it
    allocates per class (beyond the unit that runs the main task — the
    paper's [USEDPROCS]), and enough structure to implement it later. *)

(** How far down the solver degradation ladder a candidate was produced.
    [Exact] and [Incumbent] come from branch & bound (proved optimum vs
    best incumbent at a limit); the later rungs are engaged only when the
    search ran out of budget with no incumbent at all (or a fault was
    injected into the solver), so a disarmed, warm-started run never
    produces them. *)
type degradation =
  | Exact  (** ILP proved optimal (or construction needs no solver) *)
  | Incumbent  (** budget ran out; best branch & bound incumbent *)
  | Lp_round  (** rounded LP relaxation, feasibility re-checked *)
  | Greedy  (** greedy list-scheduling over processor classes *)
  | Seq_fallback  (** the always-feasible sequential solution *)
  | Heuristic
      (** portfolio list-scheduler / GA schedule, feasibility-checked
          against the exact model ([--solver=heuristic]'s native tier).
          Declared last so the constructor tags of the historical levels
          — and with them the Marshal-based solution digests of pure-ILP
          runs — are unchanged; {!degradation_rank} still orders it right
          after [Exact]. *)

type t = {
  node_id : int;  (** AHTG node this candidate belongs to *)
  main_class : int;  (** the paper's candidate tag *)
  time_us : float;  (** modelled total execution time of the node *)
  extra_units : int array;  (** per class, beyond the main task's unit *)
  degrade : degradation;
  kind : kind;
}

and kind =
  | Seq of t array
      (** sequential execution on [main_class]; for hierarchical nodes the
          array holds the (sequential, same-class) choice per child *)
  | Par of par
  | Split of split
  | Pipeline of pipeline

and par = {
  assignment : int array;  (** child index -> task index *)
  task_class : int array;  (** task index -> processor class (-1 unused) *)
  child_choice : t array;  (** chosen candidate per child *)
  par_time_breakdown : breakdown;
}

and split = {
  (* DOALL loop iteration-range splitting: chunk sizes per task *)
  chunk_iters : float array;  (** iterations per entry assigned to task t *)
  split_class : int array;  (** task index -> processor class *)
}

and pipeline = {
  (* software pipelining of a sequential loop: body statements partitioned
     into contiguous stages that overlap across iterations (the paper's
     named future-work extension, off by default) *)
  stage_of : int array;  (** child index -> stage index *)
  stage_class : int array;  (** stage index -> class (-1 unused) *)
  bottleneck_us : float;  (** per-iteration time of the slowest stage *)
}

and breakdown = { exec_us : float; comm_us : float; spawn_us : float }

let no_breakdown = { exec_us = 0.; comm_us = 0.; spawn_us = 0. }

(** Total processing units consumed: the main unit plus all extras. *)
let total_units s = 1 + Array.fold_left ( + ) 0 s.extra_units

(** Number of tasks (1 for sequential candidates). *)
let num_tasks s =
  match s.kind with
  | Seq _ -> 1
  | Par p ->
      Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0
        p.task_class
  | Split sp ->
      Array.fold_left
        (fun acc n -> if n > 0. then acc + 1 else acc)
        0 sp.chunk_iters
  | Pipeline p ->
      Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0
        p.stage_class

let is_sequential s = match s.kind with Seq _ -> true | _ -> false

let degradation_rank = function
  | Exact -> 0
  | Heuristic -> 1
  | Incumbent -> 2
  | Lp_round -> 3
  | Greedy -> 4
  | Seq_fallback -> 5

let degradation_name = function
  | Exact -> "exact"
  | Heuristic -> "heuristic"
  | Incumbent -> "incumbent"
  | Lp_round -> "lp-round"
  | Greedy -> "greedy"
  | Seq_fallback -> "seq-fallback"

(** Worst degradation anywhere in the candidate's choice tree: the level
    the whole solution must be reported at. *)
let rec worst_degradation s =
  let fold = Array.fold_left (fun acc c ->
      let d = worst_degradation c in
      if degradation_rank d > degradation_rank acc then d else acc)
  in
  match s.kind with
  | Seq children -> fold s.degrade children
  | Par p -> fold s.degrade p.child_choice
  | Split _ | Pipeline _ -> s.degrade

(* ------------------------------------------------------------------ *)
(* Dense task partition (runtime-consumable form)                      *)
(* ------------------------------------------------------------------ *)

(** A fork/join partition of a hierarchical node's children over a dense
    task index space: [owner.(n)] is the task executing child [n], task 0
    is the main task (always present), [classes.(t)] the declared
    processor class of task [t] (may be [-1]: run on the caller's class).
    This is the form the implement stage and the execution runtime
    consume; it compresses away task slots the ILP left unused. *)
type partition = { owner : int array; classes : int array }

let partition_of_assignment assignment task_class : partition =
  let used =
    List.filter
      (fun t -> t = 0 || Array.exists (fun a -> a = t) assignment)
      (List.init (Array.length task_class) (fun t -> t))
  in
  let index_of = Hashtbl.create 8 in
  List.iteri (fun idx t -> Hashtbl.replace index_of t idx) used;
  {
    owner =
      Array.map
        (fun t ->
          match Hashtbl.find_opt index_of t with Some i -> i | None -> 0)
        assignment;
    classes = Array.of_list (List.map (fun t -> task_class.(t)) used);
  }

(** The dense partition of a [Par] or [Pipeline] candidate ([None] for
    sequential and split candidates, which have no per-child partition). *)
let partition s : partition option =
  match s.kind with
  | Seq _ | Split _ -> None
  | Par p -> Some (partition_of_assignment p.assignment p.task_class)
  | Pipeline p ->
      (* stages with a class, stage 0 always materialized as the main
         task; children of an unmaterialized stage fall back to task 0 *)
      let used =
        List.filter
          (fun t -> t = 0 || p.stage_class.(t) >= 0)
          (List.init (Array.length p.stage_class) (fun t -> t))
      in
      let index_of = Hashtbl.create 8 in
      List.iteri (fun idx t -> Hashtbl.replace index_of t idx) used;
      Some
        {
          owner =
            Array.map
              (fun t ->
                match Hashtbl.find_opt index_of t with Some i -> i | None -> 0)
              p.stage_of;
          classes = Array.of_list (List.map (fun t -> p.stage_class.(t)) used);
        }

let kind_str s =
  match s.kind with
  | Seq _ -> "seq"
  | Par _ -> Printf.sprintf "par(%d tasks)" (num_tasks s)
  | Split _ -> Printf.sprintf "split(%d chunks)" (num_tasks s)
  | Pipeline _ -> Printf.sprintf "pipeline(%d stages)" (num_tasks s)

let pp ppf s =
  Fmt.pf ppf "node %d: %s on class %d, %.1f us, extra units [%a]%s" s.node_id
    (kind_str s) s.main_class s.time_us
    Fmt.(array ~sep:comma int)
    s.extra_units
    (match worst_degradation s with
    | Exact -> ""
    | d -> Printf.sprintf " [degraded: %s]" (degradation_name d))

(* ------------------------------------------------------------------ *)
(* Candidate sets                                                      *)
(* ------------------------------------------------------------------ *)

(** Candidates of one node, grouped by main class: [sets.(c)] is the list
    for class [c], best time first, sequential candidate always present. *)
type set = t list array

(** Pareto-prune one class's candidates on (total units, time): a
    candidate survives only if no other is at least as good on both axes;
    then cap the survivors at [max_keep], always keeping the extremes. *)
let prune ~max_keep (cands : t list) : t list =
  let sorted =
    List.sort
      (fun a b ->
        match compare (total_units a) (total_units b) with
        | 0 -> compare a.time_us b.time_us
        | c -> c)
      cands
  in
  (* ascending units: keep iff strictly faster than everything cheaper *)
  let pareto, _ =
    List.fold_left
      (fun (keep, best_time) s ->
        if s.time_us < best_time -. 1e-9 then (s :: keep, s.time_us)
        else (keep, best_time))
      ([], infinity) sorted
  in
  let pareto = List.rev pareto in
  let n = List.length pareto in
  if n <= max_keep then pareto
  else if max_keep <= 1 then [ List.nth pareto (n - 1) ]  (* fastest *)
  else begin
    (* evenly sample, always including cheapest and fastest *)
    let arr = Array.of_list pareto in
    List.init max_keep (fun i -> arr.(i * (n - 1) / (max_keep - 1)))
  end

(** The sequential candidate of class [c] in a set (always exists). *)
let seq_of (set : set) c =
  match List.find_opt is_sequential set.(c) with
  | Some s -> s
  | None -> invalid_arg "Solution.seq_of: missing sequential candidate"

(** All candidates of a set as a flat list. *)
let all (set : set) = List.concat (Array.to_list set)

(** Best candidate overall by modelled time (used at the root). *)
let best (set : set) =
  match all set with
  | [] -> invalid_arg "Solution.best: empty set"
  | x :: rest ->
      List.fold_left (fun acc s -> if s.time_us < acc.time_us then s else acc) x rest
