(** Statement-id renumbering and structural comparison helpers. *)

(** Assign fresh consecutive ids (document order) to every statement of the
    program.  Run after transformations that duplicate statements (e.g.
    inlining) so that profile annotations are unambiguous. *)
let renumber (prog : Ast.program) : Ast.program =
  let next = ref 0 in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let rec stmt (s : Ast.stmt) : Ast.stmt =
    let sid = fresh () in
    let sdesc =
      match s.sdesc with
      | Ast.If (c, b1, b2) -> Ast.If (c, block b1, block b2)
      | Ast.For f -> Ast.For { f with fbody = block f.fbody }
      | Ast.While (c, b) -> Ast.While (c, block b)
      | Ast.Block b -> Ast.Block (block b)
      | (Ast.Assign _ | Ast.Return _ | Ast.ExprStmt _ | Ast.Decl _) as d -> d
    in
    { s with sid; sdesc }
  and block b = List.map stmt b in
  {
    prog with
    funcs = List.map (fun f -> { f with Ast.fbody = block f.Ast.fbody }) prog.funcs;
  }

(** Structural equality of programs ignoring statement ids and locations. *)
let equal_modulo_ids (a : Ast.program) (b : Ast.program) =
  let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
    let sdesc =
      match s.sdesc with
      | Ast.If (c, b1, b2) -> Ast.If (c, strip_block b1, strip_block b2)
      | Ast.For f -> Ast.For { f with fbody = strip_block f.fbody }
      | Ast.While (c, blk) -> Ast.While (c, strip_block blk)
      | Ast.Block blk -> Ast.Block (strip_block blk)
      | (Ast.Assign _ | Ast.Return _ | Ast.ExprStmt _ | Ast.Decl _) as d -> d
    in
    { sid = 0; sloc = Loc.dummy; sdesc }
  and strip_block blk = List.map strip_stmt blk in
  let strip (p : Ast.program) =
    {
      p with
      funcs =
        List.map
          (fun f -> { f with Ast.fbody = strip_block f.Ast.fbody; floc = Loc.dummy })
          p.funcs;
    }
  in
  Ast.equal_program (strip a) (strip b)
