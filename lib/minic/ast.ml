(** Abstract syntax of Mini-C, the ANSI-C subset consumed by the
    parallelizer.  The subset covers what the UTDSP-style benchmarks need:
    [int]/[float] scalars, multi-dimensional fixed-size arrays, arithmetic
    and logic expressions, [if]/[for]/[while], functions and calls.

    Every statement carries a unique id ([sid]) assigned by the parser and
    re-assigned by {!Rename.renumber} after inlining; the profiler and the
    task-graph builder key their annotations on these ids. *)

type scalar = SInt | SFloat [@@deriving show, eq]

type ty =
  | TScalar of scalar
  | TArray of scalar * int list  (** element type, dimension sizes *)
  | TVoid
[@@deriving show, eq]

type unop = Neg | Not | BitNot [@@deriving show, eq]

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr
  | Shl | Shr | BAnd | BOr | BXor
[@@deriving show, eq]

type expr =
  | IntLit of int
  | FloatLit of float
  | Var of string
  | ArrRef of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
[@@deriving show, eq]

type lhs = LVar of string | LArr of string * expr list [@@deriving show, eq]

type decl = { dname : string; dty : ty; dinit : expr option }
[@@deriving show, eq]

type stmt = { sid : int; sloc : Loc.t; sdesc : stmt_desc }

and stmt_desc =
  | Assign of lhs * expr
  | If of expr * block * block
  | For of for_loop
  | While of expr * block
  | Return of expr option
  | ExprStmt of expr
  | Decl of decl
  | Block of block  (** explicit scope; also produced by the inliner *)

and for_loop = {
  finit : (lhs * expr) option;
  fcond : expr;
  fstep : (lhs * expr) option;
  fbody : block;
}

and block = stmt list [@@deriving show, eq]

type param = { pname : string; pty : ty } [@@deriving show, eq]

type func = {
  fname : string;
  fret : ty;
  fparams : param list;
  fbody : block;
  floc : Loc.t;
}
[@@deriving show, eq]

type program = { globals : decl list; funcs : func list } [@@deriving show, eq]

(** [find_func prog name] returns the function named [name]. *)
let find_func prog name =
  List.find_opt (fun f -> String.equal f.fname name) prog.funcs

let lhs_name = function LVar n -> n | LArr (n, _) -> n

(** Fold over every statement of a block, recursing into nested blocks. *)
let rec fold_stmts f acc (b : block) =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s.sdesc with
      | If (_, b1, b2) -> fold_stmts f (fold_stmts f acc b1) b2
      | For { fbody; _ } -> fold_stmts f acc fbody
      | While (_, body) -> fold_stmts f acc body
      | Block body -> fold_stmts f acc body
      | Assign _ | Return _ | ExprStmt _ | Decl _ -> acc)
    acc b

(** Number of statements in a program (all functions, nested included). *)
let stmt_count prog =
  List.fold_left (fun acc f -> fold_stmts (fun n _ -> n + 1) acc f.fbody) 0
    prog.funcs

(** Iterate over all sub-expressions of [e], outermost first. *)
let rec iter_expr f e =
  f e;
  match e with
  | IntLit _ | FloatLit _ | Var _ -> ()
  | ArrRef (_, idxs) -> List.iter (iter_expr f) idxs
  | Unop (_, e1) -> iter_expr f e1
  | Binop (_, e1, e2) -> iter_expr f e1; iter_expr f e2
  | Call (_, args) -> List.iter (iter_expr f) args

(** All expressions appearing directly in a statement (not in nested
    statements). *)
let stmt_exprs s =
  match s.sdesc with
  | Assign (LVar _, e) -> [ e ]
  | Assign (LArr (_, idxs), e) -> e :: idxs
  | If (c, _, _) -> [ c ]
  | For { finit; fcond; fstep; _ } ->
      let of_opt = function
        | Some (LArr (_, idxs), e) -> e :: idxs
        | Some (LVar _, e) -> [ e ]
        | None -> []
      in
      (fcond :: of_opt finit) @ of_opt fstep
  | While (c, _) -> [ c ]
  | Return (Some e) -> [ e ]
  | Return None -> []
  | ExprStmt e -> [ e ]
  | Decl { dinit = Some e; _ } -> [ e ]
  | Decl { dinit = None; _ } -> []
  | Block _ -> []
