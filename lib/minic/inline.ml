(** Function inlining.

    The task-graph builder and the interpreter operate on a single [main]
    body, so user-defined function calls are inlined first — this mirrors
    the paper's handling of the "function" granularity level: each inlined
    body becomes one hierarchical node (an [Ast.Block]) in the AHTG.

    Supported call shapes (checked; everything else is rejected):
    - statement calls:      [f(a, b);]
    - whole-RHS assignment: [x = f(a, b);]

    Scalar arguments are bound by value into fresh locals; array arguments
    are passed by reference via name substitution (the argument must be an
    array variable).  A [return e] may only appear as the last statement of
    a non-void callee and becomes an assignment to the call target.
    Recursion is rejected. *)

exception Error of string * Loc.t

module SSet = Set.Make (String)

let err loc fmt = Format.kasprintf (fun s -> raise (Error (s, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Renaming                                                            *)
(* ------------------------------------------------------------------ *)

let rename_of tbl name =
  match Hashtbl.find_opt tbl name with Some n -> n | None -> name

let rec rename_expr tbl (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.IntLit _ | Ast.FloatLit _ -> e
  | Ast.Var n -> Ast.Var (rename_of tbl n)
  | Ast.ArrRef (n, idxs) ->
      Ast.ArrRef (rename_of tbl n, List.map (rename_expr tbl) idxs)
  | Ast.Unop (op, e1) -> Ast.Unop (op, rename_expr tbl e1)
  | Ast.Binop (op, e1, e2) ->
      Ast.Binop (op, rename_expr tbl e1, rename_expr tbl e2)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (rename_expr tbl) args)

let rename_lhs tbl = function
  | Ast.LVar n -> Ast.LVar (rename_of tbl n)
  | Ast.LArr (n, idxs) ->
      Ast.LArr (rename_of tbl n, List.map (rename_expr tbl) idxs)

let rec rename_stmt tbl (s : Ast.stmt) : Ast.stmt =
  let sdesc =
    match s.sdesc with
    | Ast.Assign (lhs, e) -> Ast.Assign (rename_lhs tbl lhs, rename_expr tbl e)
    | Ast.If (c, b1, b2) ->
        Ast.If (rename_expr tbl c, rename_block tbl b1, rename_block tbl b2)
    | Ast.For { finit; fcond; fstep; fbody } ->
        let ra = Option.map (fun (l, e) -> (rename_lhs tbl l, rename_expr tbl e)) in
        Ast.For
          {
            finit = ra finit;
            fcond = rename_expr tbl fcond;
            fstep = ra fstep;
            fbody = rename_block tbl fbody;
          }
    | Ast.While (c, b) -> Ast.While (rename_expr tbl c, rename_block tbl b)
    | Ast.Return e -> Ast.Return (Option.map (rename_expr tbl) e)
    | Ast.ExprStmt e -> Ast.ExprStmt (rename_expr tbl e)
    | Ast.Decl d ->
        Ast.Decl
          {
            d with
            dname = rename_of tbl d.dname;
            dinit = Option.map (rename_expr tbl) d.dinit;
          }
    | Ast.Block b -> Ast.Block (rename_block tbl b)
  in
  { s with sdesc }

and rename_block tbl b = List.map (rename_stmt tbl) b

(* ------------------------------------------------------------------ *)
(* Call-graph checks                                                   *)
(* ------------------------------------------------------------------ *)

let called_functions (f : Ast.func) : string list =
  let acc = ref [] in
  let visit_expr e =
    Ast.iter_expr
      (function
        | Ast.Call (name, _) when not (Builtins.is_builtin name) ->
            if not (List.mem name !acc) then acc := name :: !acc
        | _ -> ())
      e
  in
  ignore
    (Ast.fold_stmts
       (fun () s -> List.iter visit_expr (Ast.stmt_exprs s))
       () f.fbody);
  !acc

(** Topological order of functions, callees first.  Raises on recursion. *)
let topo_order (prog : Ast.program) : Ast.func list =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit stack (f : Ast.func) =
    if List.mem f.fname stack then
      err f.floc "recursive call cycle through %s" f.fname;
    match Hashtbl.find_opt visited f.fname with
    | Some () -> ()
    | None ->
        List.iter
          (fun callee ->
            match Ast.find_func prog callee with
            | Some g -> visit (f.fname :: stack) g
            | None -> err f.floc "call to undefined function %s" callee)
          (called_functions f);
        Hashtbl.replace visited f.fname ();
        order := f :: !order
  in
  List.iter (visit []) prog.funcs;
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Inlining proper                                                     *)
(* ------------------------------------------------------------------ *)

let site_counter = ref 0

let locals_of_block (b : Ast.block) : string list =
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match s.sdesc with Ast.Decl d -> d.dname :: acc | _ -> acc)
    [] b

(** Split a callee body into (body-without-final-return, return-expr). *)
let split_return loc (f : Ast.func) =
  match List.rev f.fbody with
  | { Ast.sdesc = Ast.Return (Some e); _ } :: rest -> (List.rev rest, Some e)
  | body_rev -> (
      (* no trailing return: ensure no return appears anywhere *)
      let has_return =
        Ast.fold_stmts
          (fun acc (s : Ast.stmt) ->
            acc || match s.sdesc with Ast.Return _ -> true | _ -> false)
          false f.fbody
      in
      if has_return then
        err loc "function %s: return must be the last statement to be inlinable"
          f.fname
      else (List.rev body_rev, None))

(** Names assigned (as l-values) anywhere in the subtree. *)
let assigned_names (b : Ast.block) : SSet.t =
  let add_lhs acc = function
    | Ast.LVar n | Ast.LArr (n, _) -> SSet.add n acc
  in
  List.fold_left
    (fun acc s ->
      Ast.fold_stmts
        (fun acc (st : Ast.stmt) ->
          match st.sdesc with
          | Ast.Assign (lhs, _) -> add_lhs acc lhs
          | Ast.For { finit; fstep; _ } ->
              let acc =
                match finit with Some (l, _) -> add_lhs acc l | None -> acc
              in
              (match fstep with Some (l, _) -> add_lhs acc l | None -> acc)
          | _ -> acc)
        acc [ s ])
    SSet.empty b

(** Expand one call to [f] with [args]; [target] receives the return value.
    Returns the replacement statements (wrapped by the caller in a Block). *)
let expand_call loc (f : Ast.func) (args : Ast.expr list)
    (target : Ast.lhs option) : Ast.stmt list =
  incr site_counter;
  let tag = Printf.sprintf "%s_%d" f.fname !site_counter in
  let tbl = Hashtbl.create 16 in
  (* fresh names for locals *)
  List.iter
    (fun n -> Hashtbl.replace tbl n (Printf.sprintf "%s_%s" tag n))
    (locals_of_block f.fbody);
  let assigned = assigned_names f.fbody in
  (* parameters: arrays by reference; scalar [Var] arguments of read-only
     parameters propagate by name (keeps e.g. induction variables visible
     to the loop analyses); other scalars bind by value into fresh
     locals *)
  let bindings =
    List.concat
      (List.map2
         (fun (p : Ast.param) arg ->
           match (p.pty, arg) with
           | Ast.TArray _, Ast.Var a ->
               Hashtbl.replace tbl p.pname a;
               []
           | Ast.TArray _, _ ->
               err loc "array argument of %s must be a variable" f.fname
           | Ast.TScalar _, Ast.Var a when not (SSet.mem p.pname assigned) ->
               Hashtbl.replace tbl p.pname a;
               []
           | Ast.TScalar _, _ ->
               let fresh = Printf.sprintf "%s_%s" tag p.pname in
               Hashtbl.replace tbl p.pname fresh;
               [
                 {
                   Ast.sid = 0;
                   sloc = loc;
                   sdesc = Ast.Decl { dname = fresh; dty = p.pty; dinit = Some arg };
                 };
               ]
           | Ast.TVoid, _ -> assert false)
         f.fparams args)
  in
  let body, ret = split_return loc f in
  let body = rename_block tbl body in
  let ret_stmt =
    match (target, ret) with
    | None, _ -> []
    | Some lhs, Some e ->
        [ { Ast.sid = 0; sloc = loc; sdesc = Ast.Assign (lhs, rename_expr tbl e) } ]
    | Some _, None ->
        err loc "function %s returns no value but its result is used" f.fname
  in
  bindings @ body @ ret_stmt

let rec has_user_call (e : Ast.expr) =
  let found = ref false in
  Ast.iter_expr
    (function
      | Ast.Call (name, _) when not (Builtins.is_builtin name) -> found := true
      | _ -> ())
    e;
  ignore has_user_call;
  !found

(** Inline all user calls in a block.  All callees must already be
    call-free (guaranteed by processing in topological order). *)
let rec inline_block funcs (b : Ast.block) : Ast.block =
  List.map (inline_stmt funcs) b

and inline_stmt funcs (s : Ast.stmt) : Ast.stmt =
  let loc = s.sloc in
  let check_no_call e =
    if has_user_call e then
      err loc
        "user-function calls may only appear as a whole statement or the \
         whole right-hand side of an assignment"
  in
  match s.sdesc with
  | Ast.ExprStmt (Ast.Call (name, args)) when not (Builtins.is_builtin name) ->
      let f =
        match Hashtbl.find_opt funcs name with
        | Some f -> f
        | None -> err loc "call to undefined function %s" name
      in
      List.iter check_no_call args;
      { s with sdesc = Ast.Block (expand_call loc f args None) }
  | Ast.Assign (lhs, Ast.Call (name, args))
    when not (Builtins.is_builtin name) ->
      let f =
        match Hashtbl.find_opt funcs name with
        | Some f -> f
        | None -> err loc "call to undefined function %s" name
      in
      List.iter check_no_call args;
      { s with sdesc = Ast.Block (expand_call loc f args (Some lhs)) }
  | Ast.Assign (lhs, e) ->
      check_no_call e;
      (match lhs with
      | Ast.LArr (_, idxs) -> List.iter check_no_call idxs
      | Ast.LVar _ -> ());
      s
  | Ast.If (c, b1, b2) ->
      check_no_call c;
      { s with sdesc = Ast.If (c, inline_block funcs b1, inline_block funcs b2) }
  | Ast.For f ->
      List.iter check_no_call (Ast.stmt_exprs s);
      { s with sdesc = Ast.For { f with fbody = inline_block funcs f.fbody } }
  | Ast.While (c, b) ->
      check_no_call c;
      { s with sdesc = Ast.While (c, inline_block funcs b) }
  | Ast.Block b -> { s with sdesc = Ast.Block (inline_block funcs b) }
  | Ast.Return (Some e) ->
      check_no_call e;
      s
  | Ast.Decl { dinit = Some e; _ } ->
      check_no_call e;
      s
  | Ast.ExprStmt e ->
      check_no_call e;
      s
  | Ast.Return None | Ast.Decl { dinit = None; _ } -> s

(** Inline every user-defined call transitively, returning a program whose
    only function is [main] with a call-free body.  Statement ids are
    renumbered. *)
let program (prog : Ast.program) : Ast.program =
  let order = topo_order prog in
  let inlined : (string, Ast.func) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      let body = inline_block inlined f.fbody in
      Hashtbl.replace inlined f.fname { f with fbody = body })
    order;
  let main =
    match Hashtbl.find_opt inlined "main" with
    | Some m -> m
    | None -> err Loc.dummy "program has no main function"
  in
  Rename.renumber { prog with funcs = [ main ] }
