(** Static semantic analysis for Mini-C: name resolution, arity and
    dimensionality checks, and scalar result typing with implicit
    int/float conversion (as in C). *)

exception Error of string * Loc.t

type env = {
  vars : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
}

let err loc fmt = Format.kasprintf (fun s -> raise (Error (s, loc))) fmt

let scalar_of_ty loc = function
  | Ast.TScalar s -> s
  | Ast.TArray _ -> err loc "array used where a scalar is expected"
  | Ast.TVoid -> err loc "void value used"

let join a b =
  match (a, b) with Ast.SFloat, _ | _, Ast.SFloat -> Ast.SFloat | _ -> Ast.SInt

let lookup_var env loc name =
  match Hashtbl.find_opt env.vars name with
  | Some ty -> ty
  | None -> err loc "undeclared variable %s" name

let rec check_expr env loc (e : Ast.expr) : Ast.scalar =
  match e with
  | Ast.IntLit _ -> Ast.SInt
  | Ast.FloatLit _ -> Ast.SFloat
  | Ast.Var name -> scalar_of_ty loc (lookup_var env loc name)
  | Ast.ArrRef (name, idxs) -> (
      match lookup_var env loc name with
      | Ast.TArray (elem, dims) ->
          if List.length idxs <> List.length dims then
            err loc "array %s has %d dimensions, %d indices given" name
              (List.length dims) (List.length idxs);
          List.iter
            (fun i ->
              match check_expr env loc i with
              | Ast.SInt -> ()
              | Ast.SFloat -> err loc "array index must be an int")
            idxs;
          elem
      | _ -> err loc "%s is not an array" name)
  | Ast.Unop (op, e1) -> (
      let t = check_expr env loc e1 in
      match op with
      | Ast.Neg -> t
      | Ast.Not -> Ast.SInt
      | Ast.BitNot ->
          if Ast.equal_scalar t Ast.SFloat then
            err loc "bitwise operator on float";
          Ast.SInt)
  | Ast.Binop (op, e1, e2) -> (
      let t1 = check_expr env loc e1 in
      let t2 = check_expr env loc e2 in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> join t1 t2
      | Ast.Mod | Ast.Shl | Ast.Shr | Ast.BAnd | Ast.BOr | Ast.BXor ->
          if Ast.equal_scalar (join t1 t2) Ast.SFloat then
            err loc "integer operator applied to float operand";
          Ast.SInt
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.LAnd
      | Ast.LOr ->
          Ast.SInt)
  | Ast.Call (name, args) -> scalar_of_ty loc (check_call env loc name args)

(** Check a call's arity and argument types; returns the return type
    (possibly [TVoid], which only statement position accepts). *)
and check_call env loc name args : Ast.ty =
  match Builtins.find name with
  | Some b ->
      if List.length args <> b.arity then
        err loc "builtin %s expects %d arguments" name b.arity;
      List.iter (fun a -> ignore (check_expr env loc a)) args;
      Ast.TScalar b.ret
  | None -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> err loc "call to undefined function %s" name
      | Some f ->
          if List.length args <> List.length f.fparams then
            err loc "function %s expects %d arguments" name
              (List.length f.fparams);
          List.iter2
            (fun (p : Ast.param) a ->
              match (p.pty, a) with
              | Ast.TArray (es, ds), Ast.Var arg_name -> (
                  match lookup_var env loc arg_name with
                  | Ast.TArray (es', ds') when Ast.equal_scalar es es' && ds = ds'
                    ->
                      ()
                  | _ ->
                      err loc
                        "argument for array parameter %s of %s must be an \
                         array of matching shape"
                        p.pname name)
              | Ast.TArray _, _ ->
                  err loc
                    "argument for array parameter %s of %s must be a variable"
                    p.pname name
              | Ast.TScalar _, a -> ignore (check_expr env loc a)
              | Ast.TVoid, _ -> assert false)
            f.fparams args;
          f.fret)

let check_lhs env loc = function
  | Ast.LVar name -> scalar_of_ty loc (lookup_var env loc name)
  | Ast.LArr (name, idxs) -> check_expr env loc (Ast.ArrRef (name, idxs))

let rec check_block env fret (b : Ast.block) =
  (* Declarations are scoped to the enclosing block; we snapshot and restore
     shadowed bindings. *)
  let shadowed = ref [] in
  let declare (d : Ast.decl) loc =
    (match d.dty with
    | Ast.TVoid -> err loc "void variable %s" d.dname
    | _ -> ());
    shadowed := (d.dname, Hashtbl.find_opt env.vars d.dname) :: !shadowed;
    Hashtbl.replace env.vars d.dname d.dty
  in
  List.iter
    (fun (s : Ast.stmt) ->
      let loc = s.sloc in
      match s.sdesc with
      | Ast.Decl d ->
          (match (d.dinit, d.dty) with
          | Some e, Ast.TScalar _ -> ignore (check_expr env loc e)
          | Some _, _ -> err loc "only scalars can have initializers"
          | None, _ -> ());
          declare d loc
      | Ast.Assign (lhs, e) ->
          ignore (check_lhs env loc lhs);
          ignore (check_expr env loc e)
      | Ast.If (c, b1, b2) ->
          ignore (check_expr env loc c);
          check_block env fret b1;
          check_block env fret b2
      | Ast.While (c, body) ->
          ignore (check_expr env loc c);
          check_block env fret body
      | Ast.For { finit; fcond; fstep; fbody } ->
          Option.iter
            (fun (lhs, e) ->
              ignore (check_lhs env loc lhs);
              ignore (check_expr env loc e))
            finit;
          ignore (check_expr env loc fcond);
          Option.iter
            (fun (lhs, e) ->
              ignore (check_lhs env loc lhs);
              ignore (check_expr env loc e))
            fstep;
          check_block env fret fbody
      | Ast.Return None ->
          if not (Ast.equal_ty fret Ast.TVoid) then
            err loc "return without a value in a non-void function"
      | Ast.Return (Some e) ->
          if Ast.equal_ty fret Ast.TVoid then
            err loc "return with a value in a void function"
          else ignore (check_expr env loc e)
      | Ast.ExprStmt (Ast.Call (name, args)) ->
          (* statement position accepts void calls *)
          ignore (check_call env loc name args)
      | Ast.ExprStmt e -> ignore (check_expr env loc e)
      | Ast.Block body -> check_block env fret body)
    b;
  List.iter
    (fun (name, old) ->
      match old with
      | Some ty -> Hashtbl.replace env.vars name ty
      | None -> Hashtbl.remove env.vars name)
    !shadowed

let check_func env (f : Ast.func) =
  let shadowed = ref [] in
  List.iter
    (fun (p : Ast.param) ->
      shadowed := (p.pname, Hashtbl.find_opt env.vars p.pname) :: !shadowed;
      Hashtbl.replace env.vars p.pname p.pty)
    f.fparams;
  check_block env f.fret f.fbody;
  List.iter
    (fun (name, old) ->
      match old with
      | Some ty -> Hashtbl.replace env.vars name ty
      | None -> Hashtbl.remove env.vars name)
    !shadowed

(** Check a whole program.  Raises {!Error} on the first violation. *)
let check (prog : Ast.program) =
  let env = { vars = Hashtbl.create 64; funcs = Hashtbl.create 16 } in
  List.iter
    (fun (f : Ast.func) ->
      if Builtins.is_builtin f.fname then
        err f.floc "function %s shadows a builtin" f.fname;
      if Hashtbl.mem env.funcs f.fname then
        err f.floc "duplicate function %s" f.fname;
      Hashtbl.replace env.funcs f.fname f)
    prog.funcs;
  List.iter
    (fun (d : Ast.decl) ->
      (match d.dinit with
      | Some e -> ignore (check_expr env Loc.dummy e)
      | None -> ());
      Hashtbl.replace env.vars d.dname d.dty)
    prog.globals;
  List.iter (check_func env) prog.funcs;
  if not (List.exists (fun (f : Ast.func) -> String.equal f.fname "main") prog.funcs)
  then err Loc.dummy "program has no main function"
