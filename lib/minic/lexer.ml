(** Hand-written lexer for Mini-C.  Produces a list of located tokens. *)

exception Error of string * Loc.t

type located = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  (if not (eof st) then
     let c = st.src.[st.pos] in
     st.pos <- st.pos + 1;
     if Char.equal c '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
  ()

let here st = Loc.make ~line:st.line ~col:st.col

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let rec skip_ws_and_comments st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_ws_and_comments st
  | '/' when Char.equal (peek2 st) '/' ->
      while (not (eof st)) && not (Char.equal (peek st) '\n') do
        advance st
      done;
      skip_ws_and_comments st
  | '/' when Char.equal (peek2 st) '*' ->
      let start = here st in
      advance st;
      advance st;
      let rec loop () =
        if eof st then raise (Error ("unterminated comment", start))
        else if Char.equal (peek st) '*' && Char.equal (peek2 st) '/' then begin
          advance st;
          advance st
        end
        else begin
          advance st;
          loop ()
        end
      in
      loop ();
      skip_ws_and_comments st
  | '#' ->
      (* Preprocessor-style lines are ignored so benchmark sources may keep
         a cosmetic [#include] or [#define]-free header. *)
      while (not (eof st)) && not (Char.equal (peek st) '\n') do
        advance st
      done;
      skip_ws_and_comments st
  | _ -> ()

let lex_number st loc =
  let buf = Buffer.create 16 in
  let consume_digits () =
    while is_digit (peek st) do
      Buffer.add_char buf (peek st);
      advance st
    done
  in
  consume_digits ();
  let is_float = ref false in
  if Char.equal (peek st) '.' && is_digit (peek2 st) then begin
    is_float := true;
    Buffer.add_char buf '.';
    advance st;
    consume_digits ()
  end;
  (match peek st with
  | 'e' | 'E' ->
      is_float := true;
      Buffer.add_char buf 'e';
      advance st;
      (match peek st with
      | '+' | '-' ->
          Buffer.add_char buf (peek st);
          advance st
      | _ -> ());
      consume_digits ()
  | _ -> ());
  let s = Buffer.contents buf in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Token.FLOAT_LIT f
    | None -> raise (Error (Printf.sprintf "bad float literal %S" s, loc))
  else
    match int_of_string_opt s with
    | Some n -> Token.INT_LIT n
    | None -> raise (Error (Printf.sprintf "bad integer literal %S" s, loc))

let lex_ident st =
  let buf = Buffer.create 16 in
  while is_alnum (peek st) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  let s = Buffer.contents buf in
  match Token.keyword_of_string s with Some kw -> kw | None -> Token.IDENT s

let next_token st : located =
  skip_ws_and_comments st;
  let loc = here st in
  let open Token in
  let simple tok = advance st; { tok; loc } in
  let two tok = advance st; advance st; { tok; loc } in
  if eof st then { tok = EOF; loc }
  else
    match peek st with
    | c when is_digit c -> { tok = lex_number st loc; loc }
    | c when is_alpha c -> { tok = lex_ident st; loc }
    | '(' -> simple LPAREN
    | ')' -> simple RPAREN
    | '{' -> simple LBRACE
    | '}' -> simple RBRACE
    | '[' -> simple LBRACKET
    | ']' -> simple RBRACKET
    | ';' -> simple SEMI
    | ',' -> simple COMMA
    | '+' -> simple PLUS
    | '-' -> simple MINUS
    | '*' -> simple STAR
    | '/' -> simple SLASH
    | '%' -> simple PERCENT
    | '~' -> simple TILDE
    | '^' -> simple CARET
    | '=' -> if Char.equal (peek2 st) '=' then two EQ else simple ASSIGN
    | '!' -> if Char.equal (peek2 st) '=' then two NE else simple BANG
    | '<' ->
        if Char.equal (peek2 st) '=' then two LE
        else if Char.equal (peek2 st) '<' then two SHL
        else simple LT
    | '>' ->
        if Char.equal (peek2 st) '=' then two GE
        else if Char.equal (peek2 st) '>' then two SHR
        else simple GT
    | '&' -> if Char.equal (peek2 st) '&' then two AMPAMP else simple AMP
    | '|' -> if Char.equal (peek2 st) '|' then two BARBAR else simple BAR
    | c -> raise (Error (Printf.sprintf "unexpected character %C" c, loc))

(** Tokenize a whole source string. *)
let tokenize src =
  let st = make src in
  let rec loop acc =
    let t = next_token st in
    match t.tok with
    | Token.EOF -> List.rev (t :: acc)
    | _ -> loop (t :: acc)
  in
  loop []
