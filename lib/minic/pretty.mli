(** Pretty-printer: renders an AST back to compilable Mini-C source.
    Parsing the output yields a program structurally equal to the input
    modulo statement ids. *)

val pp_expr : ?prec:int -> Format.formatter -> Ast.expr -> unit
val pp_lhs : Format.formatter -> Ast.lhs -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
val pp_block : int -> Format.formatter -> Ast.block -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val to_string : Ast.program -> string
