(** Function inlining: replaces user-defined calls so the analyses operate
    on a single [main] body.  Each inlined body becomes one [Ast.Block]
    (one hierarchical node in the AHTG — the paper's "function"
    granularity level).

    Supported call shapes: statement calls [f(a, b);] and whole-RHS
    assignments [x = f(a, b);].  Arrays pass by reference (name
    substitution); scalar [Var] arguments of read-only parameters
    propagate by name; other scalars bind by value.  A [return e] may only
    be the last statement of a non-void callee.  Recursion is rejected. *)

exception Error of string * Loc.t

(** Callees of a function (user functions only). *)
val called_functions : Ast.func -> string list

(** Topological order of functions, callees first; raises on recursion. *)
val topo_order : Ast.program -> Ast.func list

(** Inline every user-defined call transitively; the result's only
    function is [main], with renumbered statement ids. *)
val program : Ast.program -> Ast.program
