(** Pretty-printer: renders an AST back to compilable Mini-C source.
    [Parser.program_of_string (to_string p)] is structurally equal to [p]
    modulo statement ids — a property the test suite checks. *)

open Format

let scalar_str = function Ast.SInt -> "int" | Ast.SFloat -> "float"

let pp_dims ppf dims = List.iter (fun d -> fprintf ppf "[%d]" d) dims

let pp_ty_prefix ppf = function
  | Ast.TScalar s -> pp_print_string ppf (scalar_str s)
  | Ast.TArray (s, _) -> pp_print_string ppf (scalar_str s)
  | Ast.TVoid -> pp_print_string ppf "void"

let ty_dims = function Ast.TArray (_, dims) -> dims | _ -> []

let unop_str = function Ast.Neg -> "-" | Ast.Not -> "!" | Ast.BitNot -> "~"

let binop_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
  | Ast.Ge -> ">=" | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.LAnd -> "&&"
  | Ast.LOr -> "||" | Ast.Shl -> "<<" | Ast.Shr -> ">>" | Ast.BAnd -> "&"
  | Ast.BOr -> "|" | Ast.BXor -> "^"

let prec_of_binop = function
  | Ast.LOr -> 1 | Ast.LAnd -> 2 | Ast.BOr -> 3 | Ast.BXor -> 4 | Ast.BAnd -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let rec pp_expr ?(prec = 0) ppf (e : Ast.expr) =
  match e with
  | Ast.IntLit n ->
      if n < 0 then fprintf ppf "(%d)" n else pp_print_int ppf n
  | Ast.FloatLit f ->
      let s = sprintf "%.17g" f in
      (* guarantee re-lexing as a float literal *)
      if String.contains s '.' || String.contains s 'e' then
        pp_print_string ppf s
      else fprintf ppf "%s.0" s
  | Ast.Var name -> pp_print_string ppf name
  | Ast.ArrRef (name, idxs) ->
      pp_print_string ppf name;
      List.iter (fun i -> fprintf ppf "[%a]" (pp_expr ~prec:0) i) idxs
  | Ast.Unop (op, e1) -> fprintf ppf "%s%a" (unop_str op) (pp_expr ~prec:11) e1
  | Ast.Binop (op, e1, e2) ->
      let p = prec_of_binop op in
      let body ppf () =
        fprintf ppf "%a %s %a" (pp_expr ~prec:p) e1 (binop_str op)
          (pp_expr ~prec:(p + 1)) e2
      in
      if p < prec then fprintf ppf "(%a)" body () else body ppf ()
  | Ast.Call (name, args) ->
      fprintf ppf "%s(%a)" name
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
           (pp_expr ~prec:0))
        args

let pp_lhs ppf = function
  | Ast.LVar name -> pp_print_string ppf name
  | Ast.LArr (name, idxs) ->
      pp_print_string ppf name;
      List.iter (fun i -> fprintf ppf "[%a]" (pp_expr ~prec:0) i) idxs

let pp_decl ppf (d : Ast.decl) =
  fprintf ppf "%a %s%a" pp_ty_prefix d.dty d.dname pp_dims (ty_dims d.dty);
  match d.dinit with
  | Some e -> fprintf ppf " = %a;" (pp_expr ~prec:0) e
  | None -> fprintf ppf ";"

let rec pp_stmt ind ppf (s : Ast.stmt) =
  let pad = String.make (2 * ind) ' ' in
  match s.sdesc with
  | Ast.Decl d -> fprintf ppf "%s%a\n" pad pp_decl d
  | Ast.Assign (lhs, e) ->
      fprintf ppf "%s%a = %a;\n" pad pp_lhs lhs (pp_expr ~prec:0) e
  | Ast.If (c, b1, b2) ->
      fprintf ppf "%sif (%a) {\n%a%s}" pad (pp_expr ~prec:0) c
        (pp_block (ind + 1)) b1 pad;
      if List.length b2 > 0 then
        fprintf ppf " else {\n%a%s}\n" (pp_block (ind + 1)) b2 pad
      else fprintf ppf "\n"
  | Ast.While (c, body) ->
      fprintf ppf "%swhile (%a) {\n%a%s}\n" pad (pp_expr ~prec:0) c
        (pp_block (ind + 1)) body pad
  | Ast.For { finit; fcond; fstep; fbody } ->
      let pp_opt_assign ppf = function
        | Some (lhs, e) -> fprintf ppf "%a = %a" pp_lhs lhs (pp_expr ~prec:0) e
        | None -> ()
      in
      fprintf ppf "%sfor (%a; %a; %a) {\n%a%s}\n" pad pp_opt_assign finit
        (pp_expr ~prec:0) fcond pp_opt_assign fstep
        (pp_block (ind + 1)) fbody pad
  | Ast.Return None -> fprintf ppf "%sreturn;\n" pad
  | Ast.Return (Some e) -> fprintf ppf "%sreturn %a;\n" pad (pp_expr ~prec:0) e
  | Ast.ExprStmt e -> fprintf ppf "%s%a;\n" pad (pp_expr ~prec:0) e
  | Ast.Block body -> fprintf ppf "%s{\n%a%s}\n" pad (pp_block (ind + 1)) body pad

and pp_block ind ppf (b : Ast.block) = List.iter (pp_stmt ind ppf) b

let pp_func ppf (f : Ast.func) =
  let pp_param ppf (p : Ast.param) =
    fprintf ppf "%a %s%a" pp_ty_prefix p.pty p.pname pp_dims (ty_dims p.pty)
  in
  fprintf ppf "%a %s(%a) {\n%a}\n" pp_ty_prefix f.fret f.fname
    (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") pp_param)
    f.fparams (pp_block 1) f.fbody

let pp_program ppf (p : Ast.program) =
  List.iter (fun d -> fprintf ppf "%a\n" pp_decl d) p.globals;
  if List.length p.globals > 0 then fprintf ppf "\n";
  pp_print_list
    ~pp_sep:(fun ppf () -> pp_print_string ppf "\n")
    pp_func ppf p.funcs

let expr_to_string e = asprintf "%a" (pp_expr ~prec:0) e
let stmt_to_string s = asprintf "%a" (pp_stmt 0) s
let to_string p = asprintf "%a" pp_program p
