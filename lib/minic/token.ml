(** Lexical tokens of Mini-C. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT | KW_FLOAT | KW_VOID
  | KW_IF | KW_ELSE | KW_FOR | KW_WHILE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | BANG
  | SHL | SHR | AMP | BAR | CARET | TILDE
  | EOF
[@@deriving show, eq]

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "float" -> Some KW_FLOAT
  | "double" -> Some KW_FLOAT (* doubles are treated as floats *)
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "for" -> Some KW_FOR
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | _ -> None

let to_string t = show t
