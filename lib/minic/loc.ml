(** Source locations for error reporting. *)

type t = { line : int; col : int } [@@deriving show, eq]

let dummy = { line = 0; col = 0 }
let make ~line ~col = { line; col }
let pp_short ppf { line; col } = Fmt.pf ppf "%d:%d" line col
