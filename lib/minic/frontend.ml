(** One-call frontend: source text to an analyzed, inlined program. *)

type error =
  | Lex_error of string * Loc.t
  | Parse_error of string * Loc.t
  | Type_error of string * Loc.t
  | Inline_error of string * Loc.t

let pp_error ppf = function
  | Lex_error (m, l) -> Fmt.pf ppf "lexical error at %a: %s" Loc.pp_short l m
  | Parse_error (m, l) -> Fmt.pf ppf "parse error at %a: %s" Loc.pp_short l m
  | Type_error (m, l) -> Fmt.pf ppf "type error at %a: %s" Loc.pp_short l m
  | Inline_error (m, l) -> Fmt.pf ppf "inline error at %a: %s" Loc.pp_short l m

let error_to_string e = Fmt.str "%a" pp_error e

exception Error of error

(** Parse and type-check only (no inlining). *)
let parse_and_check src =
  Fault.point "frontend.parse";
  try
    let prog =
      Trace.span ~cat:"frontend" "parse" (fun () ->
          Parser.program_of_string src)
    in
    Trace.span ~cat:"frontend" "typecheck" (fun () -> Typecheck.check prog);
    prog
  with
  | Lexer.Error (m, l) -> raise (Error (Lex_error (m, l)))
  | Parser.Error (m, l) -> raise (Error (Parse_error (m, l)))
  | Typecheck.Error (m, l) -> raise (Error (Type_error (m, l)))

(** Full pipeline: parse, type-check, inline user calls into [main],
    type-check again (defence in depth), renumber statement ids. *)
let compile src =
  let prog = parse_and_check src in
  try
    let flat = Trace.span ~cat:"frontend" "inline" (fun () -> Inline.program prog) in
    Trace.span ~cat:"frontend" "typecheck" (fun () -> Typecheck.check flat);
    flat
  with
  | Inline.Error (m, l) -> raise (Error (Inline_error (m, l)))
  | Typecheck.Error (m, l) -> raise (Error (Type_error (m, l)))

(** [compile_result] is [compile] with a result type instead of an
    exception. *)
let compile_result src =
  match compile src with
  | prog -> Ok prog
  | exception Error e -> Error e
