(** Static semantic analysis for Mini-C: name resolution, arity and
    dimensionality checks, scalar result typing with implicit int/float
    conversion. *)

exception Error of string * Loc.t

(** Check a whole program.  Raises {!Error} on the first violation. *)
val check : Ast.program -> unit
