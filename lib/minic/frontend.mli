(** One-call frontend: source text to an analyzed, inlined program. *)

type error =
  | Lex_error of string * Loc.t
  | Parse_error of string * Loc.t
  | Type_error of string * Loc.t
  | Inline_error of string * Loc.t

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Error of error

(** Parse and type-check only (no inlining). *)
val parse_and_check : string -> Ast.program

(** Full pipeline: parse, type-check, inline user calls into [main],
    re-check, renumber statement ids. *)
val compile : string -> Ast.program

(** {!compile} with a result type instead of an exception. *)
val compile_result : string -> (Ast.program, error) result
