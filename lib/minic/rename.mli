(** Statement-id renumbering and structural comparison helpers. *)

(** Assign fresh consecutive ids (document order) to every statement. *)
val renumber : Ast.program -> Ast.program

(** Structural equality ignoring statement ids and source locations. *)
val equal_modulo_ids : Ast.program -> Ast.program -> bool
