(** Built-in functions available to Mini-C programs.

    All are pure math helpers; their evaluation cost (in abstract cycles)
    is part of the high-level timing model, mirroring how the paper's
    framework assigns per-statement costs from target simulation. *)

type t = {
  name : string;
  arity : int;
  ret : Ast.scalar;  (** result type; arguments are converted as needed *)
  float_args : bool;  (** arguments are evaluated as floats *)
  cycles : float;  (** abstract cycle cost at CPI 1 *)
}

let all =
  [
    { name = "sqrt"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 18. };
    { name = "fabs"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 2. };
    { name = "sin"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 28. };
    { name = "cos"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 28. };
    { name = "exp"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 30. };
    { name = "log"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 30. };
    { name = "pow"; arity = 2; ret = Ast.SFloat; float_args = true; cycles = 45. };
    { name = "floor"; arity = 1; ret = Ast.SFloat; float_args = true; cycles = 3. };
    { name = "abs"; arity = 1; ret = Ast.SInt; float_args = false; cycles = 2. };
    { name = "imin"; arity = 2; ret = Ast.SInt; float_args = false; cycles = 2. };
    { name = "imax"; arity = 2; ret = Ast.SInt; float_args = false; cycles = 2. };
    { name = "fmin"; arity = 2; ret = Ast.SFloat; float_args = true; cycles = 2. };
    { name = "fmax"; arity = 2; ret = Ast.SFloat; float_args = true; cycles = 2. };
  ]

let find name = List.find_opt (fun b -> String.equal b.name name) all
let is_builtin name = Option.is_some (find name)

(** Evaluate a builtin on float arguments (integers are converted by the
    interpreter beforehand when [float_args] is set). *)
let eval_float name (args : float list) : float =
  match (name, args) with
  | "sqrt", [ x ] -> sqrt x
  | "fabs", [ x ] -> Float.abs x
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "pow", [ x; y ] -> Float.pow x y
  | "floor", [ x ] -> Float.floor x
  | "fmin", [ x; y ] -> Float.min x y
  | "fmax", [ x; y ] -> Float.max x y
  | _ -> invalid_arg ("Builtins.eval_float: " ^ name)

let eval_int name (args : int list) : int =
  match (name, args) with
  | "abs", [ x ] -> Stdlib.abs x
  | "imin", [ x; y ] -> Stdlib.min x y
  | "imax", [ x; y ] -> Stdlib.max x y
  | _ -> invalid_arg ("Builtins.eval_int: " ^ name)
