(** Recursive-descent parser for Mini-C.

    Grammar (simplified):
    {v
      program   ::= (global_decl | func)*
      func      ::= type IDENT '(' params ')' block
      block     ::= '{' stmt* '}'
      stmt      ::= decl ';' | assign ';' | 'if' ... | 'for' ... | 'while' ...
                  | 'return' expr? ';' | call ';' | block
      expr      ::= precedence-climbing over || && | ^ & == != < <= > >=
                    << >> + - * / % with unary - ! ~
    v} *)

exception Error of string * Loc.t

type state = {
  toks : Lexer.located array;
  mutable cur : int;
  mutable next_sid : int;
}

let make toks = { toks = Array.of_list toks; cur = 0; next_sid = 0 }
let peek st = st.toks.(st.cur).tok
let peek_loc st = st.toks.(st.cur).loc

let peek2 st =
  if st.cur + 1 < Array.length st.toks then st.toks.(st.cur + 1).tok
  else Token.EOF

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (got %s)" msg (Token.show (peek st)), peek_loc st))

let expect st tok msg =
  if Token.equal (peek st) tok then advance st else fail st msg

let fresh_sid st =
  let n = st.next_sid in
  st.next_sid <- n + 1;
  n

let mk_stmt st loc sdesc = { Ast.sid = fresh_sid st; sloc = loc; sdesc }

let ident st =
  match peek st with
  | Token.IDENT s -> advance st; s
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_token : Token.t -> (Ast.binop * int) option = function
  (* token -> operator, precedence (higher binds tighter) *)
  | Token.BARBAR -> Some (Ast.LOr, 1)
  | Token.AMPAMP -> Some (Ast.LAnd, 2)
  | Token.BAR -> Some (Ast.BOr, 3)
  | Token.CARET -> Some (Ast.BXor, 4)
  | Token.AMP -> Some (Ast.BAnd, 5)
  | Token.EQ -> Some (Ast.Eq, 6)
  | Token.NE -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr st = parse_binop st 0

and parse_binop st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binop st (prec + 1) in
        loop (Ast.Binop (op, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Token.MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Token.BANG ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | Token.TILDE ->
      advance st;
      Ast.Unop (Ast.BitNot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT_LIT n -> advance st; Ast.IntLit n
  | Token.FLOAT_LIT f -> advance st; Ast.FloatLit f
  | Token.LPAREN ->
      advance st;
      (* Cast syntax [(int) e] / [(float) e] is accepted and erased: Mini-C
         converts implicitly, so a cast only documents intent. *)
      (match peek st with
      | Token.KW_INT | Token.KW_FLOAT ->
          advance st;
          expect st Token.RPAREN "expected ')' after cast type";
          parse_unary st
      | _ ->
          let e = parse_expr st in
          expect st Token.RPAREN "expected ')'";
          e)
  | Token.IDENT name ->
      advance st;
      (match peek st with
      | Token.LPAREN ->
          advance st;
          let args = parse_args st in
          Ast.Call (name, args)
      | Token.LBRACKET -> Ast.ArrRef (name, parse_indices st)
      | _ -> Ast.Var name)
  | _ -> fail st "expected expression"

and parse_args st =
  if Token.equal (peek st) Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | Token.COMMA ->
          advance st;
          loop (e :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | _ -> fail st "expected ',' or ')' in argument list"
    in
    loop []

and parse_indices st =
  let rec loop acc =
    if Token.equal (peek st) Token.LBRACKET then begin
      advance st;
      let e = parse_expr st in
      expect st Token.RBRACKET "expected ']'";
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Types and declarations                                              *)
(* ------------------------------------------------------------------ *)

let parse_base_type st =
  match peek st with
  | Token.KW_INT -> advance st; Some Ast.SInt
  | Token.KW_FLOAT -> advance st; Some Ast.SFloat
  | _ -> None

let parse_array_dims st =
  let rec loop acc =
    if Token.equal (peek st) Token.LBRACKET then begin
      advance st;
      (match peek st with
      | Token.INT_LIT n when n > 0 ->
          advance st;
          expect st Token.RBRACKET "expected ']'";
          loop (n :: acc)
      | _ -> fail st "array dimension must be a positive integer literal")
    end
    else List.rev acc
  in
  loop []

(** [int x = e;] or [float a[4][4];] after the base type was consumed. *)
let parse_decl_rest st scalar : Ast.decl =
  let name = ident st in
  let dims = parse_array_dims st in
  let dty =
    match dims with
    | [] -> Ast.TScalar scalar
    | _ -> Ast.TArray (scalar, dims)
  in
  let dinit =
    if Token.equal (peek st) Token.ASSIGN then begin
      advance st;
      if not (List.is_empty dims) then
        fail st "array initializers are not supported";
      Some (parse_expr st)
    end
    else None
  in
  expect st Token.SEMI "expected ';' after declaration";
  { Ast.dname = name; dty; dinit }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_lhs_from_expr st = function
  | Ast.Var n -> Ast.LVar n
  | Ast.ArrRef (n, idxs) -> Ast.LArr (n, idxs)
  | _ -> fail st "invalid assignment target"

(** Parse [lhs = expr] without the trailing ';' (used by for-headers). *)
let parse_assign_no_semi st =
  let e = parse_expr st in
  match peek st with
  | Token.ASSIGN ->
      advance st;
      let lhs = parse_lhs_from_expr st e in
      let rhs = parse_expr st in
      (lhs, rhs)
  | _ -> fail st "expected '=' in assignment"

let rec parse_stmt st : Ast.stmt =
  let loc = peek_loc st in
  match peek st with
  | Token.KW_INT | Token.KW_FLOAT ->
      let scalar =
        match parse_base_type st with Some s -> s | None -> assert false
      in
      let d = parse_decl_rest st scalar in
      mk_stmt st loc (Ast.Decl d)
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN "expected '(' after if";
      let cond = parse_expr st in
      expect st Token.RPAREN "expected ')' after if condition";
      let then_b = parse_stmt_as_block st in
      let else_b =
        if Token.equal (peek st) Token.KW_ELSE then begin
          advance st;
          parse_stmt_as_block st
        end
        else []
      in
      mk_stmt st loc (Ast.If (cond, then_b, else_b))
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN "expected '(' after while";
      let cond = parse_expr st in
      expect st Token.RPAREN "expected ')' after while condition";
      let body = parse_stmt_as_block st in
      mk_stmt st loc (Ast.While (cond, body))
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN "expected '(' after for";
      let finit =
        if Token.equal (peek st) Token.SEMI then None
        else Some (parse_assign_no_semi st)
      in
      expect st Token.SEMI "expected ';' in for header";
      let fcond =
        if Token.equal (peek st) Token.SEMI then Ast.IntLit 1
        else parse_expr st
      in
      expect st Token.SEMI "expected ';' in for header";
      let fstep =
        if Token.equal (peek st) Token.RPAREN then None
        else Some (parse_assign_no_semi st)
      in
      expect st Token.RPAREN "expected ')' after for header";
      let fbody = parse_stmt_as_block st in
      mk_stmt st loc (Ast.For { finit; fcond; fstep; fbody })
  | Token.KW_RETURN ->
      advance st;
      let e =
        if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI "expected ';' after return";
      mk_stmt st loc (Ast.Return e)
  | Token.LBRACE -> mk_stmt st loc (Ast.Block (parse_block st))
  | _ ->
      (* assignment or expression (call) statement *)
      let e = parse_expr st in
      let desc =
        match peek st with
        | Token.ASSIGN ->
            advance st;
            let lhs = parse_lhs_from_expr st e in
            let rhs = parse_expr st in
            Ast.Assign (lhs, rhs)
        | _ -> Ast.ExprStmt e
      in
      expect st Token.SEMI "expected ';' after statement";
      mk_stmt st loc desc

and parse_stmt_as_block st : Ast.block =
  if Token.equal (peek st) Token.LBRACE then parse_block st
  else [ parse_stmt st ]

and parse_block st : Ast.block =
  expect st Token.LBRACE "expected '{'";
  let rec loop acc =
    if Token.equal (peek st) Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_params st : Ast.param list =
  expect st Token.LPAREN "expected '(' in function header";
  if Token.equal (peek st) Token.RPAREN then begin
    advance st;
    []
  end
  else if Token.equal (peek st) Token.KW_VOID && Token.equal (peek2 st) Token.RPAREN
  then begin
    advance st;
    advance st;
    []
  end
  else
    let parse_one () =
      let scalar =
        match parse_base_type st with
        | Some s -> s
        | None -> fail st "expected parameter type"
      in
      let name = ident st in
      let dims = parse_array_dims st in
      let pty =
        match dims with
        | [] -> Ast.TScalar scalar
        | _ -> Ast.TArray (scalar, dims)
      in
      { Ast.pname = name; pty }
    in
    let rec loop acc =
      let p = parse_one () in
      match peek st with
      | Token.COMMA ->
          advance st;
          loop (p :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (p :: acc)
      | _ -> fail st "expected ',' or ')' in parameter list"
    in
    loop []

let parse_program st : Ast.program =
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match peek st with
    | Token.EOF -> ()
    | Token.KW_INT | Token.KW_FLOAT | Token.KW_VOID ->
        let loc = peek_loc st in
        let ret_scalar =
          match peek st with
          | Token.KW_VOID ->
              advance st;
              None
          | _ -> parse_base_type st
        in
        let name = ident st in
        if Token.equal (peek st) Token.LPAREN then begin
          let params = parse_params st in
          let body = parse_block st in
          let fret =
            match ret_scalar with
            | None -> Ast.TVoid
            | Some s -> Ast.TScalar s
          in
          funcs :=
            { Ast.fname = name; fret; fparams = params; fbody = body; floc = loc }
            :: !funcs
        end
        else begin
          (* global declaration; reuse the local-declaration tail parser *)
          match ret_scalar with
          | None -> fail st "void is not a valid variable type"
          | Some scalar ->
              let dims = parse_array_dims st in
              let dty =
                match dims with
                | [] -> Ast.TScalar scalar
                | _ -> Ast.TArray (scalar, dims)
              in
              let dinit =
                if Token.equal (peek st) Token.ASSIGN then begin
                  advance st;
                  Some (parse_expr st)
                end
                else None
              in
              expect st Token.SEMI "expected ';' after global declaration";
              globals := { Ast.dname = name; dty; dinit } :: !globals
        end;
        loop ()
    | _ -> fail st "expected declaration or function"
  in
  loop ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

(** Parse a full Mini-C source string into a program. *)
let program_of_string src =
  let toks = Lexer.tokenize src in
  let st = make toks in
  parse_program st

(** Parse a single expression (used by tests). *)
let expr_of_string src =
  let toks = Lexer.tokenize src in
  let st = make toks in
  let e = parse_expr st in
  if not (Token.equal (peek st) Token.EOF) then fail st "trailing tokens";
  e
