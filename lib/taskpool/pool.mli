(** Fixed-size domain pool with per-worker work-stealing deques and
    effects-based task suspension.

    The pool owns [domains - 1] spawned OCaml 5 domains; the caller of
    {!run} acts as worker 0, so [domains = 1] degenerates to fully
    sequential execution on the calling domain (useful for determinism
    checks).  Tasks are [unit -> unit] thunks pushed to the scheduling
    worker's own deque (front); idle workers steal from the back of other
    deques.

    A task that must wait — on a {!type:future} or a runtime channel —
    performs the {!Suspend} effect instead of blocking its domain: the
    captured continuation is parked with the event source and re-enqueued
    when the event fires, so the worker is immediately free to run other
    tasks.  This is what makes nested fork/join with blocking
    value-passing channels deadlock-free on a fixed-size pool. *)

type t

type 'a future

(** [Suspend register] parks the current task: [register] is called with
    the continuation and must arrange for {!resume} to be applied to it
    exactly once, now or later. *)
type _ Effect.t +=
  | Suspend : ((unit, unit) Effect.Deep.continuation -> unit) -> unit Effect.t

(** [create ~domains ()] starts [domains - 1] worker domains (clamped to
    at least 1 total).  Default: [Domain.recommended_domain_count ()]. *)
val create : ?domains:int -> unit -> t

val size : t -> int

(** Schedule a thunk; its result (or exception) is captured in the
    future.  Must be called from within {!run}'s dynamic extent or before
    it starts.  [label] names the task in trace output (default
    ["task"]); it costs nothing when tracing is disabled. *)
val spawn : ?label:string -> t -> (unit -> 'a) -> 'a future

(** Wait for a future.  Returns the thunk's result or the exception it
    raised.  If the future is not yet filled and the caller is a pool
    task, it suspends (the worker keeps running other tasks). *)
val await : t -> 'a future -> ('a, exn) result

(** Resume a continuation parked via {!Suspend}: re-enqueue it on the
    current worker's deque.  [tag] (captured at the suspension point)
    restores the task's {!Trace.with_tag} request tag on whichever
    worker resumes it. *)
val resume : ?tag:string -> t -> (unit, unit) Effect.Deep.continuation -> unit

(** [run pool f] executes [f] as the root task with the caller acting as
    worker 0, helping with queued tasks until the root completes.
    Re-raises whatever [f] raises.

    One external caller at a time: a second domain entering [run] while
    another is inside it would also claim worker 0's deque, so the
    overlap is detected and rejected with [Invalid_argument] instead of
    corrupting state.  Callers that need concurrent independent runs
    (e.g. the serve daemon's executor workers) own one pool each. *)
val run : t -> (unit -> 'a) -> 'a

(** Stop the workers and join their domains.  The pool must be idle
    ({!run} returned). *)
val shutdown : t -> unit

(** Total successful steals so far. *)
val steals : t -> int

(** Per-worker seconds spent executing tasks. *)
val worker_busy_s : t -> float array

(** Per-worker count of executed tasks (including resumed suspensions). *)
val worker_tasks : t -> int array

(** Per-worker count of tasks taken from another worker's deque. *)
val worker_steals : t -> int array
