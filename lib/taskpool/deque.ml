(** Lock-protected work-stealing deque (see the interface for the design
    rationale).  Ring buffer of a power-of-two capacity, growing on
    demand; [front] is the owner end, [back] the steal end. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable front : int;  (** next slot the owner pushes into *)
  mutable back : int;  (** oldest occupied slot + buffer arithmetic *)
  m : Mutex.t;
}
(* invariant: elements live in slots [back, front) modulo capacity; the
   buffer is grown before front would collide with back *)

let create () = { buf = Array.make 64 None; front = 0; back = 0; m = Mutex.create () }

let locked q f =
  Mutex.lock q.m;
  match f () with
  | v ->
      Mutex.unlock q.m;
      v
  | exception e ->
      Mutex.unlock q.m;
      raise e

let grow q =
  let cap = Array.length q.buf in
  let buf' = Array.make (2 * cap) None in
  for i = 0 to q.front - q.back - 1 do
    buf'.(i) <- q.buf.((q.back + i) land (cap - 1))
  done;
  q.front <- q.front - q.back;
  q.back <- 0;
  q.buf <- buf'

let push q x =
  locked q (fun () ->
      if q.front - q.back = Array.length q.buf then grow q;
      q.buf.(q.front land (Array.length q.buf - 1)) <- Some x;
      q.front <- q.front + 1)

let pop q =
  locked q (fun () ->
      if q.front = q.back then None
      else begin
        q.front <- q.front - 1;
        let i = q.front land (Array.length q.buf - 1) in
        let x = q.buf.(i) in
        q.buf.(i) <- None;
        x
      end)

let steal q =
  locked q (fun () ->
      if q.front = q.back then None
      else begin
        let i = q.back land (Array.length q.buf - 1) in
        let x = q.buf.(i) in
        q.buf.(i) <- None;
        q.back <- q.back + 1;
        x
      end)

let size q = locked q (fun () -> q.front - q.back)
