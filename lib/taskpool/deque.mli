(** Per-worker work-stealing deque.  The owning worker pushes and pops at
    the front (LIFO, cache-friendly for nested fork/join); thieves steal
    single tasks from the back (FIFO, taking the oldest — typically
    largest — piece of work).  A mutex protects the ring buffer: at
    task-level granularity the lock is uncontended in the common path and
    the simplicity pays for itself (the classic lock-free alternative is
    the Chase-Lev deque). *)

type 'a t

val create : unit -> 'a t

(** Owner operations (front). *)
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option

(** Thief operation (back): steal the oldest element. *)
val steal : 'a t -> 'a option

(** Snapshot size (racy, for diagnostics only). *)
val size : 'a t -> int
