type task = { run : unit -> unit; label : string }

type worker = {
  deque : task Deque.t;
  mutable busy_s : float;  (** written only by the worker's own domain *)
  mutable ran : int;
  mutable stolen : int;  (** tasks this worker took from other deques *)
}

type t = {
  workers : worker array;
  mutable handles : unit Domain.t list;
  mu : Mutex.t;
  cond : Condition.t;
  mutable avail : int;  (** queued tasks across all deques (exact) *)
  mutable live : bool;
  n_steals : int Atomic.t;
  mutable crashed : exn option;  (** scheduler-level bug escape hatch *)
  entered : bool Atomic.t;
      (** an external caller is inside {!run}; a second concurrent one
          would also claim worker 0's deque and corrupt it *)
}

type 'a state = Pending of (unit -> unit) list | Done of ('a, exn) result
type 'a future = { mutable st : 'a state; fm : Mutex.t }

type _ Effect.t +=
  | Suspend : ((unit, unit) Effect.Deep.continuation -> unit) -> unit Effect.t

(* which worker the current domain is (None outside the pool) *)
let worker_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let size p = Array.length p.workers

let signal_work p =
  Mutex.lock p.mu;
  p.avail <- p.avail + 1;
  Condition.signal p.cond;
  Mutex.unlock p.mu

let consumed p =
  Mutex.lock p.mu;
  p.avail <- p.avail - 1;
  Mutex.unlock p.mu

let enqueue p task =
  let wid = match Domain.DLS.get worker_key with Some i -> i | None -> 0 in
  Deque.push p.workers.(wid).deque task;
  signal_work p

(* [tag] restores the suspended task's request tag on whichever worker
   domain picks the continuation up (captured at the suspension point). *)
let resume ?tag p k =
  if Trace.enabled () then Trace.instant ~cat:"pool" "resume";
  let continue () = Effect.Deep.continue k () in
  let run =
    match tag with
    | None -> continue
    | Some t -> fun () -> Trace.with_tag t continue
  in
  enqueue p { run; label = "resume" }

(* Pop from our own deque, else steal round-robin from the others. *)
let try_take p wid =
  match Deque.pop p.workers.(wid).deque with
  | Some t ->
      consumed p;
      Some t
  | None ->
      let n = Array.length p.workers in
      let rec go k =
        if k >= n then None
        else
          let victim = (wid + k) mod n in
          match Deque.steal p.workers.(victim).deque with
          | Some t ->
              ignore (Atomic.fetch_and_add p.n_steals 1);
              p.workers.(wid).stolen <- p.workers.(wid).stolen + 1;
              if Trace.enabled () then
                Trace.instant ~cat:"pool" "steal"
                  ~args:[ ("victim", Trace.Int victim); ("task", Trace.Str t.label) ];
              consumed p;
              Some t
          | None -> go (k + 1)
      in
      go 1

(* Run one task under the effect handler.  Suspended tasks park their
   continuation with the event source; the handler returns, freeing the
   worker.  Task thunks are expected to catch their own exceptions
   (futures wrap them); anything escaping here is a scheduler bug and is
   recorded so [run] can re-raise it. *)
let exec p wid task =
  let w = p.workers.(wid) in
  let t0 = Unix.gettimeofday () in
  (* The span brackets one scheduling quantum: it opens and closes on
     this worker's domain even if the task suspends (the handler returns
     here), so Chrome tracks stay balanced. *)
  (try
     Trace.span_k ~cat:"task"
       (fun () -> task.label)
       (fun () ->
         Effect.Deep.try_with task.run ()
           {
             effc =
               (fun (type a) (eff : a Effect.t) ->
                 match eff with
                 | Suspend register ->
                     Some
                       (fun (k : (a, unit) Effect.Deep.continuation) ->
                         register k)
                 | _ -> None);
           })
   with e ->
     Mutex.lock p.mu;
     if p.crashed = None then p.crashed <- Some e;
     Condition.broadcast p.cond;
     Mutex.unlock p.mu);
  w.busy_s <- w.busy_s +. (Unix.gettimeofday () -. t0);
  w.ran <- w.ran + 1

let rec worker_loop p wid =
  if p.live then begin
    (match try_take p wid with
    | Some t -> exec p wid t
    | None ->
        if Trace.enabled () then Trace.instant ~cat:"pool" "park";
        Mutex.lock p.mu;
        while p.avail <= 0 && p.live do
          Condition.wait p.cond p.mu
        done;
        Mutex.unlock p.mu;
        if Trace.enabled () then Trace.instant ~cat:"pool" "unpark");
    worker_loop p wid
  end

let create ?domains () =
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let n = max 1 requested in
  let p =
    {
      workers =
        Array.init n (fun _ ->
            { deque = Deque.create (); busy_s = 0.; ran = 0; stolen = 0 });
      handles = [];
      mu = Mutex.create ();
      cond = Condition.create ();
      avail = 0;
      live = true;
      n_steals = Atomic.make 0;
      crashed = None;
      entered = Atomic.make false;
    }
  in
  p.handles <-
    List.init (n - 1) (fun i ->
        let wid = i + 1 in
        Domain.spawn (fun () ->
            Domain.DLS.set worker_key (Some wid);
            worker_loop p wid));
  p

let fill fut r p =
  Mutex.lock fut.fm;
  let waiters = match fut.st with Pending ws -> ws | Done _ -> [] in
  fut.st <- Done r;
  Mutex.unlock fut.fm;
  List.iter (fun wake -> wake ()) waiters;
  (* wake run()'s helper loop, which may be waiting for exactly this *)
  Mutex.lock p.mu;
  Condition.broadcast p.cond;
  Mutex.unlock p.mu

let spawn ?(label = "task") p f =
  Fault.point "pool.spawn";
  if Trace.enabled () then
    Trace.instant ~cat:"pool" "spawn" ~args:[ ("task", Trace.Str label) ];
  let fut = { st = Pending []; fm = Mutex.create () } in
  (* carry the spawner's request tag onto the executing worker's domain,
     so request-scoped spans survive the handoff *)
  let tag = Trace.current_tag () in
  let body () =
    let r = try Ok (f ()) with e -> Error e in
    fill fut r p
  in
  let run =
    match tag with
    | None -> body
    | Some t -> fun () -> Trace.with_tag t body
  in
  enqueue p { run; label };
  fut

let poll fut =
  Mutex.lock fut.fm;
  let r = match fut.st with Done r -> Some r | Pending _ -> None in
  Mutex.unlock fut.fm;
  r

let await p fut =
  match poll fut with
  | Some r -> r
  | None ->
      let tag = Trace.current_tag () in
      Effect.perform
        (Suspend
           (fun k ->
             let wake () = resume ?tag p k in
             Mutex.lock fut.fm;
             match fut.st with
             | Done _ ->
                 Mutex.unlock fut.fm;
                 wake ()
             | Pending ws ->
                 fut.st <- Pending (wake :: ws);
                 Mutex.unlock fut.fm));
      (match poll fut with Some r -> r | None -> assert false)

let run p f =
  if not (Atomic.compare_and_set p.entered false true) then
    invalid_arg
      "Taskpool.Pool.run: the pool already has an external caller inside \
       run (one pool serves one caller at a time; give each concurrent \
       caller its own pool)";
  Fun.protect ~finally:(fun () -> Atomic.set p.entered false) @@ fun () ->
  Domain.DLS.set worker_key (Some 0);
  let root = spawn ~label:"root" p f in
  let rec help () =
    (match p.crashed with Some e -> raise e | None -> ());
    match poll root with
    | Some r -> r
    | None ->
        (match try_take p 0 with
        | Some t -> exec p 0 t
        | None ->
            Mutex.lock p.mu;
            (* re-check the root under the pool lock: [fill] broadcasts
               under it, so a completion between our poll and this lock
               cannot be missed *)
            if poll root = None && p.avail <= 0 && p.crashed = None then
              Condition.wait p.cond p.mu;
            Mutex.unlock p.mu);
        help ()
  in
  match help () with Ok v -> v | Error e -> raise e

let shutdown p =
  Mutex.lock p.mu;
  p.live <- false;
  Condition.broadcast p.cond;
  Mutex.unlock p.mu;
  List.iter Domain.join p.handles;
  p.handles <- []

let steals p = Atomic.get p.n_steals
let worker_busy_s p = Array.map (fun w -> w.busy_s) p.workers
let worker_tasks p = Array.map (fun w -> w.ran) p.workers
let worker_steals p = Array.map (fun w -> w.stolen) p.workers
