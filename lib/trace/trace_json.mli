(** Minimal JSON emit/parse — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
