(* Minimal JSON: enough to emit trace/metrics documents and to parse
   them back in tests — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
  else Buffer.add_string b "null" (* nan/inf are not JSON *)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> add_num b f
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string ?(pretty = false) (v : t) =
  let b = Buffer.create 4096 in
  if not pretty then add b v
  else begin
    (* two-space indent, objects/lists one entry per line *)
    let rec go ind v =
      match v with
      | Null | Bool _ | Num _ | Str _ -> add b v
      | List [] -> Buffer.add_string b "[]"
      | List xs ->
          Buffer.add_string b "[\n";
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_string b ",\n";
              Buffer.add_string b (String.make (ind + 2) ' ');
              go (ind + 2) x)
            xs;
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make ind ' ');
          Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj kvs ->
          Buffer.add_string b "{\n";
          List.iteri
            (fun i (k, x) ->
              if i > 0 then Buffer.add_string b ",\n";
              Buffer.add_string b (String.make (ind + 2) ' ');
              Buffer.add_char b '"';
              escape b k;
              Buffer.add_string b "\": ";
              go (ind + 2) x)
            kvs;
          Buffer.add_char b '\n';
          Buffer.add_string b (String.make ind ' ');
          Buffer.add_char b '}'
    in
    go 0 v
  end;
  Buffer.contents b

(* ---- parser (for tests and jq-free validation) -------------------- *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "bad escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* keep it simple: BMP only, encoded as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let sub = String.sub s start (!pos - start) in
    match float_of_string_opt sub with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let xs = ref [] in
          let rec elements () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !xs)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors ---------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
