(* Chrome trace-event ("JSON Array Format" object variant) exporter —
   loadable in Perfetto and chrome://tracing.  One process (pid 1), one
   thread track per recording domain (tid = domain id). *)

let arg_json : Trace.arg -> Trace_json.t = function
  | Trace.Int i -> Trace_json.Num (float_of_int i)
  | Trace.Float f -> Trace_json.Num f
  | Trace.Str s -> Trace_json.Str s
  | Trace.Bool b -> Trace_json.Bool b

let event_json (e : Trace.event) : Trace_json.t =
  let base =
    [
      ("name", Trace_json.Str e.name);
      ("cat", Trace_json.Str e.cat);
      ("ph", Trace_json.Str (Trace.ph_name e.ph));
      ("ts", Trace_json.Num e.ts_us);
      ("pid", Trace_json.Num 1.);
      ("tid", Trace_json.Num (float_of_int e.dom));
    ]
  in
  let base = match e.ph with
    | Trace.X -> base @ [ ("dur", Trace_json.Num e.dur_us) ]
    | Trace.I -> base @ [ ("s", Trace_json.Str "t") ]  (* thread-scoped instant *)
    | _ -> base
  in
  let base =
    match e.args with
    | [] -> base
    | args ->
        base @ [ ("args", Trace_json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Trace_json.Obj base

let metadata (c : Trace.collected) : Trace_json.t list =
  let meta name tid args =
    Trace_json.Obj
      [
        ("name", Trace_json.Str name);
        ("ph", Trace_json.Str "M");
        ("pid", Trace_json.Num 1.);
        ("tid", Trace_json.Num (float_of_int tid));
        ("args", Trace_json.Obj args);
      ]
  in
  meta "process_name" 0 [ ("name", Trace_json.Str "mpsoc-par") ]
  :: List.map
       (fun dom ->
         let label = if dom = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" dom in
         meta "thread_name" dom [ ("name", Trace_json.Str label) ])
       c.domains

let document (c : Trace.collected) : Trace_json.t =
  Trace_json.Obj
    [
      ("traceEvents", Trace_json.List (metadata c @ List.map event_json c.events));
      ("displayTimeUnit", Trace_json.Str "ms");
      ( "otherData",
        Trace_json.Obj
          [
            ("schema", Trace_json.Str "mpsoc-par/chrome-trace/v1");
            ("dropped_events", Trace_json.Num (float_of_int c.dropped));
            ("capture_span_s", Trace_json.Num c.span_s);
          ] );
    ]

let to_string (c : Trace.collected) = Trace_json.to_string (document c)

(* [path = "-"] writes to stdout. *)
let write ~path (c : Trace.collected) =
  let s = to_string c in
  if path = "-" then print_string s
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc s)
  end
