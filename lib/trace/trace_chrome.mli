(** Chrome trace-event JSON exporter (Perfetto / chrome://tracing).
    One process, one thread track per recording domain. *)

val document : Trace.collected -> Trace_json.t
val to_string : Trace.collected -> string

val write : path:string -> Trace.collected -> unit
(** [path = "-"] writes to stdout. *)
