(** Low-overhead, domain-safe span/counter recorder.

    Disabled fast path is a single [Atomic.get] (same discipline as the
    disarmed {!Fault} probes).  When armed, each domain writes into its
    own ring buffer; {!stop} merges all buffers deterministically. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type ph =
  | B  (** duration begin *)
  | E  (** duration end *)
  | I  (** instant *)
  | C  (** counter sample *)
  | X  (** complete (begin + duration in one event) *)

type event = {
  name : string;
  cat : string;
  ph : ph;
  ts_us : float;  (** microseconds since the sink's epoch *)
  dur_us : float;  (** [X] events only; [0.] otherwise *)
  dom : int;  (** recording domain = Chrome track id *)
  args : (string * arg) list;
}

type collected = {
  events : event list;  (** merged, sorted by [ts_us] (stable in domain) *)
  domains : int list;  (** distinct recording domains, ascending *)
  dropped : int;  (** events lost to ring overwrite, all buffers *)
  epoch_s : float;  (** absolute wall time of {!start} *)
  span_s : float;  (** wall seconds the sink was armed *)
}

val now_s : unit -> float
(** The clock every probe stamps with.  [Ilp.Clock.now_s] aliases this so
    solver timing and trace timestamps share one time base. *)

val enabled : unit -> bool

val start : ?capacity:int -> unit -> unit
(** Arm the recorder.  [capacity] is the per-domain ring size in events
    (default 65536); overflow overwrites the oldest events and is
    reported in {!collected.dropped}. *)

val stop : unit -> collected option
(** Disarm and merge.  [None] if the recorder was not armed. *)

val with_tracing : ?capacity:int -> (unit -> 'a) -> 'a * collected
(** [with_tracing f] = {!start}; [f ()]; {!stop}.  If [f] raises, the
    recorder is still disarmed (the collection is discarded). *)

val with_tag : string -> (unit -> 'a) -> 'a
(** [with_tag tag f] sets the calling domain's request tag for the
    duration of [f]: every event emitted from this domain while the tag
    is set carries a [("req", Str tag)] argument, so request-scoped
    causal chains survive the merge without touching probe call sites.
    Tags nest (the previous tag is restored on exit) and are per-domain —
    propagate explicitly when handing work to another domain (the
    taskpool does this for spawned tasks).  Costs one DLS read and two
    ref writes even when disarmed; the disarmed probe fast path is
    untouched. *)

val current_tag : unit -> string option
(** The calling domain's current request tag, if any. *)

val span : ?args:(string * arg) list -> cat:string -> string -> (unit -> 'b) -> 'b
(** [span ~cat name f] brackets [f] with B/E events.  [f] must complete
    on the domain that called [span] — never wrap code that can suspend
    on a pool effect and resume elsewhere. *)

val span_k : cat:string -> (unit -> string) -> (unit -> 'b) -> 'b
(** As {!span}, but the name thunk is forced only when tracing is armed
    (use for [sprintf]-built labels on hot paths). *)

val instant : ?args:(string * arg) list -> cat:string -> string -> unit

val counter : cat:string -> string -> (string * float) list -> unit

val complete : ?args:(string * arg) list -> cat:string -> t0_s:float -> string -> unit
(** [complete ~t0_s name] records an X event spanning [t0_s] (absolute,
    from {!now_s}) to now, attributed to the calling domain.  Cheaper
    than {!span} for code that already measures its own elapsed time. *)

val ph_name : ph -> string
(** Chrome trace-event phase letter: ["B"], ["E"], ["i"], ["C"], ["X"]. *)

val span_totals : cat:string -> event list -> (string * float) list
(** Wall seconds per top-level span name within category [cat],
    aggregated from balanced B/E pairs (per-domain stacks) and
    top-level X events; ordered by first appearance. *)
