(** Low-overhead span/counter recorder for the whole tool flow.

    Discipline (same as the disarmed fault probes in {!Fault}): the
    disabled fast path of every probe is a single [Atomic.get] returning
    [None] — no timestamp read, no allocation, no lock — so permanent
    instrumentation of hot paths (simplex solves, pool dispatch, channel
    operations) costs nothing when tracing is off.

    When armed ({!start}), each domain records into its own fixed-capacity
    ring buffer (single writer: the owning domain; created lazily on the
    domain's first event and registered with the active sink under a
    mutex).  Buffer overflow overwrites the oldest events and counts the
    drops — flight-recorder semantics.  {!stop} disarms and merges all
    buffers deterministically: buffers in ascending domain id, events of
    one buffer in emission order, the whole stream stably sorted by
    timestamp (ties keep the domain order), so the merged stream depends
    only on the recorded data.

    Span contract: a {!span} body must complete on the domain that opened
    it — do not wrap code that can suspend on a pool effect and resume on
    another domain (use {!instant} pairs there instead).  This is what
    keeps Begin/End events balanced per track in the Chrome export. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type ph = B | E | I | C | X

type event = {
  name : string;
  cat : string;
  ph : ph;
  ts_us : float;  (** microseconds since the sink's epoch *)
  dur_us : float;  (** [X] events only; [0.] otherwise *)
  dom : int;  (** recording domain = Chrome track id *)
  args : (string * arg) list;
}

type buffer = {
  b_dom : int;
  evs : event option array;
  mutable head : int;  (** next write slot (monotonic; slot = head mod cap) *)
  mutable dropped : int;
}

type sink = {
  epoch_s : float;
  gen : int;
  capacity : int;
  mu : Mutex.t;
  mutable bufs : buffer list;
}

type collected = {
  events : event list;  (** merged, sorted by [ts_us] (stable in domain) *)
  domains : int list;  (** distinct recording domains, ascending *)
  dropped : int;  (** events lost to ring overwrite, all buffers *)
  epoch_s : float;
  span_s : float;  (** wall seconds the sink was armed *)
}

(* Monotonic-enough wall clock; the single switch point for the whole
   solver/runtime stack ({!Ilp.Clock} aliases it). *)
let now_s : unit -> float = Unix.gettimeofday

let state : sink option Atomic.t = Atomic.make None
let generation = Atomic.make 0

let enabled () = Atomic.get state <> None

(* The per-domain buffer of the *current* sink generation.  A stale DLS
   entry (from a previous start/stop cycle) is replaced, so buffers never
   leak across sinks. *)
let dls : (int * buffer) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buffer_for (s : sink) : buffer =
  let cell = Domain.DLS.get dls in
  match !cell with
  | Some (g, b) when g = s.gen -> b
  | _ ->
      let b =
        {
          b_dom = (Domain.self () :> int);
          evs = Array.make s.capacity None;
          head = 0;
          dropped = 0;
        }
      in
      Mutex.lock s.mu;
      s.bufs <- b :: s.bufs;
      Mutex.unlock s.mu;
      cell := Some (s.gen, b);
      b

(* ---- request tag context ------------------------------------------ *)

(* A per-domain mutable cell: [with_tag] costs one DLS lookup and two ref
   writes whether or not tracing is armed, and probes consult it only on
   the armed path — the disarmed fast path stays a single [Atomic.get]
   with no allocation. *)
let tag_cell : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_tag () = !(Domain.DLS.get tag_cell)

let with_tag tag f =
  let cell = Domain.DLS.get tag_cell in
  let saved = !cell in
  cell := Some tag;
  Fun.protect ~finally:(fun () -> cell := saved) f

let push (s : sink) (ev : event) =
  let b = buffer_for s in
  let cap = Array.length b.evs in
  if b.head >= cap && b.evs.(b.head mod cap) <> None then
    b.dropped <- b.dropped + 1;
  b.evs.(b.head mod cap) <- Some ev;
  b.head <- b.head + 1

let emit s ph ?(dur_us = 0.) ~cat ~args ~ts_us name =
  (* armed path only: stamp the domain's current request tag so every
     existing probe picks it up without touching its call site *)
  let args =
    match !(Domain.DLS.get tag_cell) with
    | None -> args
    | Some t -> ("req", Str t) :: args
  in
  push s { name; cat; ph; ts_us; dur_us; dom = (Domain.self () :> int); args }

let rel (s : sink) t = (t -. s.epoch_s) *. 1e6

(* ---- probes ------------------------------------------------------- *)

let span ?(args = []) ~cat name f =
  match Atomic.get state with
  | None -> f ()
  | Some s ->
      emit s B ~cat ~args ~ts_us:(rel s (now_s ())) name;
      Fun.protect
        ~finally:(fun () ->
          (* re-read: [stop] may have disarmed mid-span; the E event would
             land in a dead buffer, which the merge never sees *)
          match Atomic.get state with
          | Some s' when s'.gen = s.gen ->
              emit s' E ~cat ~args:[] ~ts_us:(rel s' (now_s ())) name
          | _ -> ())
        f

(** [span_k]: as {!span}, but the name thunk is forced only when tracing
    is armed — use when the label is built with [Printf.sprintf]. *)
let span_k ~cat name_k f =
  match Atomic.get state with
  | None -> f ()
  | Some _ -> span ~cat (name_k ()) f

let instant ?(args = []) ~cat name =
  match Atomic.get state with
  | None -> ()
  | Some s -> emit s I ~cat ~args ~ts_us:(rel s (now_s ())) name

let counter ~cat name values =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      emit s C ~cat
        ~args:(List.map (fun (k, v) -> (k, Float v)) values)
        ~ts_us:(rel s (now_s ())) name

let complete ?(args = []) ~cat ~t0_s name =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      let now = now_s () in
      emit s X ~cat ~args ~ts_us:(rel s t0_s)
        ~dur_us:(Float.max 0. ((now -. t0_s) *. 1e6))
        name

(* ---- lifecycle ---------------------------------------------------- *)

let default_capacity = 1 lsl 16

let start ?(capacity = default_capacity) () =
  let gen = 1 + Atomic.fetch_and_add generation 1 in
  Atomic.set state
    (Some
       {
         epoch_s = now_s ();
         gen;
         capacity = max 16 capacity;
         mu = Mutex.create ();
         bufs = [];
       })

let buffer_events (b : buffer) : event list =
  let cap = Array.length b.evs in
  let first = if b.head <= cap then 0 else b.head - cap in
  let acc = ref [] in
  for i = b.head - 1 downto first do
    match b.evs.(i mod cap) with Some e -> acc := e :: !acc | None -> ()
  done;
  !acc

let stop () : collected option =
  match Atomic.get state with
  | None -> None
  | Some s ->
      Atomic.set state None;
      let stopped = now_s () in
      Mutex.lock s.mu;
      let bufs = List.sort (fun a b -> compare a.b_dom b.b_dom) s.bufs in
      Mutex.unlock s.mu;
      let events = List.concat_map buffer_events bufs in
      (* stable by construction: ties keep the dom-ascending concat order *)
      let events =
        List.stable_sort (fun a b -> compare a.ts_us b.ts_us) events
      in
      Some
        {
          events;
          domains = List.map (fun b -> b.b_dom) bufs;
          dropped =
            List.fold_left (fun acc (b : buffer) -> acc + b.dropped) 0 bufs;
          epoch_s = s.epoch_s;
          span_s = stopped -. s.epoch_s;
        }

let with_tracing ?capacity f =
  start ?capacity ();
  let finish () = match stop () with Some c -> c | None -> assert false in
  match f () with
  | v -> (v, finish ())
  | exception e ->
      ignore (finish ());
      raise e

(* ---- small helpers over collected streams ------------------------- *)

let ph_name = function B -> "B" | E -> "E" | I -> "i" | C -> "C" | X -> "X"

(** Wall seconds per span name for category [cat], aggregated from
    balanced B/E pairs (per-domain stacks) plus X events; insertion
    order of first appearance. *)
let span_totals ~cat (events : event list) : (string * float) list =
  let totals : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in
  let add name dur_us =
    match Hashtbl.find_opt totals name with
    | Some r -> r := !r +. (dur_us /. 1e6)
    | None ->
        Hashtbl.add totals name (ref (dur_us /. 1e6));
        order := name :: !order
  in
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  List.iter
    (fun e ->
      if e.cat = cat then
        match e.ph with
        | B ->
            let s = stack e.dom in
            s := (e.name, e.ts_us) :: !s
        | E -> (
            let s = stack e.dom in
            match !s with
            | (n, t0) :: rest when n = e.name ->
                s := rest;
                (* only top-level spans count, so nested re-entries of a
                   phase are not double-charged *)
                if rest = [] then add n (e.ts_us -. t0)
            | _ -> () (* unbalanced (ring overwrite): skip *))
        | X -> if (stack e.dom : _ ref).contents = [] then add e.name e.dur_us
        | I | C -> ())
    events;
  List.rev_map (fun n -> (n, !(Hashtbl.find totals n))) !order
