(** Linear expressions over integer-indexed variables:
    [sum_i coef_i * x_i + const]. *)

type t = { terms : (int * float) list; const : float }

let zero = { terms = []; const = 0. }
let constant c = { terms = []; const = c }
let term ?(coef = 1.0) v = { terms = [ (v, coef) ]; const = 0. }
let of_terms ?(const = 0.) terms = { terms; const }

let add a b = { terms = a.terms @ b.terms; const = a.const +. b.const }
let sub a b =
  {
    terms = a.terms @ List.map (fun (v, c) -> (v, -.c)) b.terms;
    const = a.const -. b.const;
  }

let neg a = sub zero a
let scale k a =
  { terms = List.map (fun (v, c) -> (v, k *. c)) a.terms; const = k *. a.const }

let add_const c a = { a with const = a.const +. c }
let sum xs = List.fold_left add zero xs

(** Combine duplicate variables and drop zero coefficients.  Returns terms
    sorted by variable index. *)
let normalize a =
  let tbl = Hashtbl.create (List.length a.terms) in
  List.iter
    (fun (v, c) ->
      let cur = match Hashtbl.find_opt tbl v with Some x -> x | None -> 0. in
      Hashtbl.replace tbl v (cur +. c))
    a.terms;
  let terms =
    Hashtbl.fold (fun v c acc -> if c = 0. then acc else (v, c) :: acc) tbl []
    |> List.sort (fun (v1, _) (v2, _) -> compare v1 v2)
  in
  { terms; const = a.const }

(** Evaluate under an assignment [value : var -> float]. *)
let eval value a =
  List.fold_left (fun acc (v, c) -> acc +. (c *. value v)) a.const a.terms

let pp ?(var_name = fun v -> Printf.sprintf "x%d" v) ppf a =
  let a = normalize a in
  let first = ref true in
  List.iter
    (fun (v, c) ->
      if !first then begin
        first := false;
        if c = 1. then Fmt.pf ppf "%s" (var_name v)
        else if c = -1. then Fmt.pf ppf "-%s" (var_name v)
        else Fmt.pf ppf "%g %s" c (var_name v)
      end
      else if c >= 0. then
        if c = 1. then Fmt.pf ppf " + %s" (var_name v)
        else Fmt.pf ppf " + %g %s" c (var_name v)
      else if c = -1. then Fmt.pf ppf " - %s" (var_name v)
      else Fmt.pf ppf " - %g %s" (-.c) (var_name v))
    a.terms;
  if !first then Fmt.pf ppf "%g" a.const
  else if a.const > 0. then Fmt.pf ppf " + %g" a.const
  else if a.const < 0. then Fmt.pf ppf " - %g" (-.a.const)

(* Infix builders, locally opened as [Lin_expr.Infix] at model-building
   sites to keep the ILP formulation readable. *)
module Infix = struct
  let ( ++ ) = add
  let ( -- ) = sub
  let ( ** ) k v = term ~coef:k v
  let ( +! ) e c = add_const c e
end
