(** Facade over {!Branch_bound} adding timing and {!Stats} recording; the
    entry point the parallelizer uses. *)

type outcome = {
  status : Branch_bound.status;
  x : float array option;
  obj : float;
  nodes : int;
  time_s : float;
}

(** Solve [model]; when [stats] is given, the ILP's size, solve time and
    node count are accumulated into it.  Setting the [MPSOC_ILP_DEBUG]
    environment variable to a float prints every solve that takes at
    least that many seconds. *)
val solve :
  ?options:Branch_bound.options ->
  ?warm_start:float array ->
  ?stats:Stats.t ->
  Model.t ->
  outcome

(** Value of variable [v] in an outcome (0 if no solution). *)
val value : outcome -> Model.var -> float

(** Boolean value of a 0/1 variable. *)
val bool_value : outcome -> Model.var -> bool
