(** Facade over {!Branch_bound} adding timing, {!Stats} recording and the
    {!Memo} solve cache; the entry point the parallelizer uses. *)

type outcome = {
  status : Branch_bound.status;
  x : float array option;
  obj : float;
  nodes : int;
  time_s : float;
  incumbents : float array list;
      (** improving-incumbent trail of the underlying search (best
          first); feed to a related solve's [extra_starts] *)
}

(** Solve [model]; when [stats] is given, the ILP's size, solve time and
    node count are accumulated into it — a solve answered by [cache] is
    counted as a cache hit instead of a solved ILP.  [extra_starts] are
    additional incumbent seeds (infeasible ones are skipped).  Setting
    the [MPSOC_ILP_DEBUG] environment variable to a float prints every
    solve that takes at least that many seconds.

    Do not mutate the [x] array of the outcome when [cache] is used:
    cached solutions are shared between hits. *)
val solve :
  ?options:Branch_bound.options ->
  ?warm_start:float array ->
  ?extra_starts:float array list ->
  ?cache:Memo.t ->
  ?stats:Stats.t ->
  Model.t ->
  outcome

(** Value of variable [v] in an outcome (0 if no solution). *)
val value : outcome -> Model.var -> float

(** Boolean value of a 0/1 variable. *)
val bool_value : outcome -> Model.var -> bool
