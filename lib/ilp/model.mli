(** Mixed integer linear program builder.

    A model owns variables (continuous, integer or boolean, each with
    bounds and an optional branch priority), linear constraints, and one
    linear objective.  One model corresponds to one generated ILP of the
    paper; {!num_vars}/{!num_constraints} feed the Table I statistics. *)

type var = int
type kind = Cont | Int | Bool

type var_info = {
  vname : string;
  kind : kind;
  mutable lb : float;
  mutable ub : float;
  priority : int;
      (** branch & bound picks fractional variables of highest priority
          first; default 0 *)
}

type relop = Le | Ge | Eq
type constr = { cname : string; expr : Lin_expr.t; op : relop; bound : float }
type sense = Minimize | Maximize

type t = {
  mutable mname : string;
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : constr array;
  mutable nconstrs : int;
  mutable objective : Lin_expr.t;
  mutable obj_sense : sense;
}

(** Bounds at or beyond this magnitude are treated as infinite. *)
val infinity_bound : float

val create : ?name:string -> unit -> t
val name : t -> string

(** Create a variable.  Default bounds: [Bool] gets [0,1]; [Int]/[Cont]
    get [0, +inf) unless overridden. *)
val add_var :
  ?lb:float -> ?ub:float -> ?priority:int -> kind:kind -> t -> string -> var

val bool_var : ?priority:int -> t -> string -> var
val int_var : ?lb:float -> ?ub:float -> ?priority:int -> t -> string -> var
val cont_var : ?lb:float -> ?ub:float -> t -> string -> var
val var_info : t -> var -> var_info
val var_name : t -> var -> string
val num_vars : t -> int
val num_constraints : t -> int
val num_integer_vars : t -> int

(** Add constraint [expr op bound]; the expression is normalized and its
    constant folded into the bound. *)
val add_constr : ?name:string -> t -> Lin_expr.t -> relop -> float -> unit

(** [le t e1 e2] adds [e1 <= e2] (similarly {!ge}, {!eq}). *)
val le : ?name:string -> t -> Lin_expr.t -> Lin_expr.t -> unit

val ge : ?name:string -> t -> Lin_expr.t -> Lin_expr.t -> unit
val eq : ?name:string -> t -> Lin_expr.t -> Lin_expr.t -> unit
val set_objective : t -> sense -> Lin_expr.t -> unit

(** Boolean AND linearization (paper Eq. 7): a fresh [z] with
    [z >= x + y - 1], [z <= x], [z <= y]. *)
val and_var : ?name:string -> t -> var -> var -> var

(** Independent copy: mutating the copy never affects the original. *)
val copy : t -> t

val constr : t -> int -> constr
val iter_constrs : (constr -> unit) -> t -> unit

(** Check whether an assignment satisfies all constraints, bounds, and
    integrality requirements within tolerance [eps]. *)
val feasible : ?eps:float -> t -> (var -> float) -> bool

val objective_value : t -> (var -> float) -> float
val relop_str : relop -> string

(** Dump in an LP-like textual format for debugging. *)
val pp : Format.formatter -> t -> unit
