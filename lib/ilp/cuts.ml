(** Knapsack cover cuts for 0-1 rows.

    A row [sum_j c_j x_j <= b] over binary variables is brought to
    knapsack form [sum_j a_j z_j <= b'] with [a_j > 0] by complementing
    negative-coefficient variables ([z_j = 1 - x_j]).  A {e cover} is a
    set [C] with [sum_{C} a_j > b']: its members cannot all be 1, so
    [sum_{C} z_j <= |C| - 1] holds for {e every} feasible 0-1 point of
    the row.  Cover inequalities are therefore globally valid — they can
    be appended to the model mid-search without cutting off any integer
    solution, only fractional LP vertices.

    Separation is the classic greedy: scan covers in decreasing order of
    the fractional value [z*_j] (tie-broken on variable index, so the
    procedure is deterministic), stop as soon as the accumulated weight
    exceeds the capacity, and keep the cut only if the current LP point
    violates it. *)

type cut = {
  name : string;
  expr : Lin_expr.t;  (** x-space left-hand side *)
  bound : float;  (** cut is [expr <= bound] *)
  key : string;  (** canonical form for deduplication *)
}

let is_binary (model : Model.t) v =
  let info = Model.var_info model v in
  match info.Model.kind with
  | Model.Bool -> true
  | Model.Int -> info.Model.lb >= -1e-9 && info.Model.ub <= 1. +. 1e-9
  | Model.Cont -> false

(* knapsack view of row [i]: [Some (vars, weights, complemented, cap)]
   with all weights positive, or [None] if the row is not a 0-1 knapsack *)
let knapsack_form (model : Model.t) i =
  let c = Model.constr model i in
  let sign =
    match c.Model.op with Model.Le -> 1. | Model.Ge -> -1. | Model.Eq -> 0.
  in
  if sign = 0. then None
  else begin
    let terms = c.Model.expr.Lin_expr.terms in
    if List.exists (fun (v, _) -> not (is_binary model v)) terms then None
    else begin
      let cap = ref (sign *. c.Model.bound) in
      let items =
        List.map
          (fun (v, coef) ->
            let a = sign *. coef in
            if a >= 0. then (v, a, false)
            else begin
              (* complement: a*x = a - a*(1-x) *)
              cap := !cap -. a;
              (v, -.a, true)
            end)
          terms
      in
      let total = List.fold_left (fun s (_, a, _) -> s +. a) 0. items in
      (* a cover only exists when the items cannot all be 1 *)
      if !cap <= 1e-9 || total <= !cap +. 1e-9 then None
      else Some (items, !cap)
    end
  end

(* greedy cover of row [i] violated by LP point [x], if any *)
let separate_row (model : Model.t) i (x : float array) : cut option =
  match knapsack_form model i with
  | None -> None
  | Some (items, cap) ->
      let zstar (v, _, compl_) = if compl_ then 1. -. x.(v) else x.(v) in
      let items =
        List.sort
          (fun ((va, _, _) as a) ((vb, _, _) as b) ->
            let za = zstar a and zb = zstar b in
            if za <> zb then compare zb za else compare va vb)
          items
      in
      let weight = ref 0. in
      let cover = ref [] in
      (try
         List.iter
           (fun it ->
             let _, a, _ = it in
             cover := it :: !cover;
             weight := !weight +. a;
             if !weight > cap +. 1e-9 then raise Exit)
           items
       with Exit -> ());
      if !weight <= cap +. 1e-9 then None
      else begin
        let cover = !cover in
        let size = List.length cover in
        let lhs_star =
          List.fold_left (fun s it -> s +. zstar it) 0. cover
        in
        if lhs_star <= float_of_int (size - 1) +. 1e-6 then None
        else begin
          (* back to x-space: z = x keeps +x; z = 1-x contributes -x and
             shifts the right-hand side down by one *)
          let rhs = ref (float_of_int (size - 1)) in
          let terms =
            List.map
              (fun (v, _, compl_) ->
                if compl_ then begin
                  rhs := !rhs -. 1.;
                  Lin_expr.term ~coef:(-1.) v
                end
                else Lin_expr.term v)
              cover
          in
          let vs =
            List.sort compare
              (List.map (fun (v, _, compl_) -> (v, compl_)) cover)
          in
          let key =
            String.concat ","
              (List.map
                 (fun (v, compl_) ->
                   string_of_int v ^ if compl_ then "c" else "")
                 vs)
          in
          Some
            {
              name = Printf.sprintf "cover_%d" i;
              expr = Lin_expr.sum terms;
              bound = !rhs;
              key;
            }
        end
      end

(** Separate violated cover cuts from every eligible row of [model] at LP
    point [x]; [seen] dedupes across calls, [max_cuts] bounds the batch.
    Deterministic: rows are scanned in index order. *)
let separate (model : Model.t) (x : float array) ~(seen : (string, unit) Hashtbl.t)
    ~max_cuts : cut list =
  let out = ref [] in
  let count = ref 0 in
  let nrows = Model.num_constraints model in
  (try
     for i = 0 to nrows - 1 do
       if !count >= max_cuts then raise Exit;
       match separate_row model i x with
       | Some cut when not (Hashtbl.mem seen cut.key) ->
           Hashtbl.add seen cut.key ();
           out := cut :: !out;
           incr count
       | _ -> ()
     done
   with Exit -> ());
  List.rev !out

(** Append cuts as [<=] rows. *)
let add (model : Model.t) (cuts : cut list) =
  List.iter
    (fun c -> Model.add_constr ~name:c.name model c.expr Model.Le c.bound)
    cuts
