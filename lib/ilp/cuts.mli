(** Knapsack cover cuts for 0-1 rows.

    Cover inequalities are valid for every integer-feasible point of the
    source row (not just points near the separating LP vertex), so they
    may be appended to the model at any point of the branch & bound
    search without excluding any integer solution. *)

type cut = {
  name : string;
  expr : Lin_expr.t;  (** x-space left-hand side *)
  bound : float;  (** cut is [expr <= bound] *)
  key : string;  (** canonical form for deduplication *)
}

(** [separate model x ~seen ~max_cuts] returns violated cover cuts at LP
    point [x], at most [max_cuts], skipping (and recording into) the
    [seen] table.  Deterministic: rows scanned in index order, covers
    built greedily by decreasing fractional value with index
    tie-breaks. *)
val separate :
  Model.t ->
  float array ->
  seen:(string, unit) Hashtbl.t ->
  max_cuts:int ->
  cut list

(** Append cuts to a model as [<=] rows. *)
val add : Model.t -> cut list -> unit
