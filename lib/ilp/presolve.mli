(** Presolve: shrink a {!Model.t} before branch & bound.

    Bound tightening, implied/dominated variable fixing and
    redundant-row removal.  All reductions preserve the optimal
    objective; dominated-column fixing is restricted to strict objective
    improvement (ties stay free), so the optimal {e set} is preserved and
    downstream solution digests are unaffected.

    Lifting invariant: for any [y] feasible in [reduced], [lift y] is
    feasible in the original model (within the solver's feasibility
    tolerance) with the same objective value, and bit-identical to [y] in
    every kept coordinate.  Callers fingerprint and cache against the
    original model, so memo keys are unchanged at the caller boundary. *)

type reduction = {
  reduced : Model.t;  (** fresh model; the input model is never mutated *)
  fixed : int;  (** variables eliminated (including dominated columns) *)
  dominated : int;  (** subset of [fixed] removed by dual fixing *)
  rows_dropped : int;  (** redundant (or fully substituted) rows dropped *)
  lift : float array -> float array;
      (** reduced-space point -> original-space point *)
  project : float array -> float array option;
      (** original-space point -> reduced-space point; [None] on a length
          mismatch.  Fixed coordinates are dropped, so a point that
          disagreed with a fixing may project to an infeasible seed — the
          solver's warm-start feasibility check filters those. *)
}

type result = Unchanged | Infeasible | Reduced of reduction

val run : Model.t -> result
