(** Brute-force reference MILP solver for the test suite.

    Enumerates every assignment of the integer variables within their
    (finite) bounds; for each assignment the integer variables are fixed
    and the remaining LP is solved with {!Simplex}.  Exponential — only
    usable on tiny models, which is exactly what the qcheck cross-check
    against {!Branch_bound} needs. *)

type solution = { x : float array option; obj : float; enumerated : int }

exception Too_large

(** [solve ~limit model] raises {!Too_large} if more than [limit]
    assignments would have to be enumerated. *)
let solve ?(limit = 2_000_00) (model : Model.t) : solution =
  let n = Model.num_vars model in
  let int_vars =
    List.filter
      (fun v ->
        match (Model.var_info model v).Model.kind with
        | Model.Bool | Model.Int -> true
        | Model.Cont -> false)
      (List.init n (fun i -> i))
  in
  let domains =
    List.map
      (fun v ->
        let info = Model.var_info model v in
        let lo = int_of_float (Float.ceil (info.Model.lb -. 1e-9)) in
        let hi = int_of_float (Float.floor (info.Model.ub +. 1e-9)) in
        if float_of_int (hi - lo + 1) > 1e7 then raise Too_large;
        (v, lo, hi))
      int_vars
  in
  let total =
    List.fold_left
      (fun acc (_, lo, hi) ->
        let d = max 0 (hi - lo + 1) in
        if acc > limit then acc else acc * d)
      1 domains
  in
  if total > limit then raise Too_large;
  let base_lb = Array.init n (fun v -> (Model.var_info model v).Model.lb) in
  let base_ub = Array.init n (fun v -> (Model.var_info model v).Model.ub) in
  let sense = model.Model.obj_sense in
  let better a b =
    match sense with Model.Minimize -> a < b -. 1e-12 | Model.Maximize -> a > b +. 1e-12
  in
  let best = ref None in
  let count = ref 0 in
  let rec go assigned = function
    | [] ->
        incr count;
        let lb = Array.copy base_lb and ub = Array.copy base_ub in
        List.iter
          (fun (v, value) ->
            lb.(v) <- float_of_int value;
            ub.(v) <- float_of_int value)
          assigned;
        (match Simplex.solve ~lb ~ub model with
        | Simplex.Optimal { x; obj } -> (
            match !best with
            | None -> best := Some (x, obj)
            | Some (_, o) -> if better obj o then best := Some (x, obj))
        | Simplex.Infeasible | Simplex.Stalled -> ()
        | Simplex.Unbounded ->
            (* an unbounded fiber makes the whole MILP unbounded; represent
               with an infinite objective *)
            let inf_obj =
              match sense with
              | Model.Minimize -> neg_infinity
              | Model.Maximize -> infinity
            in
            best := Some (Array.make n nan, inf_obj))
    | (v, lo, hi) :: rest ->
        for value = lo to hi do
          go ((v, value) :: assigned) rest
        done
  in
  go [] domains;
  match !best with
  | None -> { x = None; obj = nan; enumerated = !count }
  | Some (x, obj) -> { x = Some x; obj; enumerated = !count }
