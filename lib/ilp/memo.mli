(** Structural solve cache: memoizes {!Branch_bound} results keyed on a
    canonical fingerprint of the ILP input, so identical subproblems —
    across budgets, processor classes or presets — are solved once.

    Names (model, variable, constraint) are excluded from the
    fingerprint: structurally isomorphic models share an entry.  Distinct
    cost annotations change constraint coefficients and therefore miss.
    The fingerprint also covers solver options and warm-start points,
    because those steer the search and hence the returned incumbent.

    Domain-safe, with single-flight semantics: concurrent requests for
    the same fingerprint block until the first one fills the entry, so
    each distinct subproblem is solved exactly once at any worker count
    (this keeps results and hit counts deterministic).

    Cached solutions are shared — callers must not mutate the [x] arrays
    of a returned {!Branch_bound.solution}. *)

type t

(** Optional second tier consulted on an in-memory miss (e.g. a
    persistent on-disk store).  [lookup] runs while the requester holds
    the single-flight reservation, so each key touches the tier at most
    once per run; [store] is called write-through after {!fill}
    publishes.  Both may raise — failures degrade to misses. *)
type backing = {
  lookup : string -> Branch_bound.solution option;
  store : string -> Branch_bound.solution -> unit;
}

val create : ?backing:backing -> unit -> t

(** Canonical structural fingerprint of a solve request. *)
val fingerprint :
  ?options:Branch_bound.options ->
  ?warm_start:float array ->
  ?extra_starts:float array list ->
  Model.t ->
  string

(** Look up a fingerprint.  [`Hit sol] returns the cached (or
    concurrently computed) solution; [`Reserved] means the caller now
    owns the solve and {e must} call {!fill} (or {!cancel} on failure),
    otherwise waiters block forever. *)
val find_or_reserve :
  t -> string -> [ `Hit of Branch_bound.solution | `Reserved ]

(** Publish the solution for a reserved fingerprint and wake waiters. *)
val fill : t -> string -> Branch_bound.solution -> unit

(** Drop a reserved fingerprint (the solve failed); waiters retry. *)
val cancel : t -> string -> unit

(** Lookups answered from the in-memory table (including waits on
    in-flight solves). *)
val hits : t -> int

(** Lookups answered by the {!backing} tier (counted separately from
    in-memory [hits]; also excluded from [misses]). *)
val disk_hits : t -> int

(** Lookups that had to solve. *)
val misses : t -> int

(** A single-flight reservation that has been held longer than a
    threshold — the visible face of the zombie hazard (a worker wedged
    mid-solve holds its reservation forever while peers block).  [key]
    is the hex fingerprint; [s_owner] names the reserving domain and,
    when the serve daemon tagged it, the request it was working on. *)
type stall = { key : string; s_owner : string; age_s : float }

(** [stalled c ~now] reports reservations held at least [threshold_s]
    (default 5 s) that have not been reported before — each stall is
    surfaced exactly once, counted in {!stall_count}, and (when tracing
    is armed) emitted as a ["memo.stall"] trace instant naming the
    owner.  Non-blocking for waiters; intended to be polled from a
    monitor loop. *)
val stalled : ?threshold_s:float -> t -> now:float -> stall list

(** Stalls ever reported by {!stalled}. *)
val stall_count : t -> int

(** [hits / (hits + misses)], 0 when empty. *)
val hit_rate : t -> float

(** Number of completed entries (diagnostics). *)
val length : t -> int
