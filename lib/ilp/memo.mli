(** Structural solve cache: memoizes {!Branch_bound} results keyed on a
    canonical fingerprint of the ILP input, so identical subproblems —
    across budgets, processor classes or presets — are solved once.

    Names (model, variable, constraint) are excluded from the
    fingerprint: structurally isomorphic models share an entry.  Distinct
    cost annotations change constraint coefficients and therefore miss.
    The fingerprint also covers solver options and warm-start points,
    because those steer the search and hence the returned incumbent.

    Domain-safe, with single-flight semantics: concurrent requests for
    the same fingerprint block until the first one fills the entry, so
    each distinct subproblem is solved exactly once at any worker count
    (this keeps results and hit counts deterministic).

    Cached solutions are shared — callers must not mutate the [x] arrays
    of a returned {!Branch_bound.solution}. *)

type t

(** Optional second tier consulted on an in-memory miss (e.g. a
    persistent on-disk store).  [lookup] runs while the requester holds
    the single-flight reservation, so each key touches the tier at most
    once per run; [store] is called write-through after {!fill}
    publishes.  Both may raise — failures degrade to misses.

    The [engine] label says which solve engine produced (or is asked
    for) an entry — ["ilp"] for exact branch & bound, ["heuristic"] for
    the portfolio's list-scheduler/GA answers.  The persistent tier
    stores it with each entry and refuses cross-engine replays, a second
    line of defense behind the {!fingerprint} engine salt. *)
type backing = {
  lookup : string -> engine:string -> Branch_bound.solution option;
  store : string -> engine:string -> Branch_bound.solution -> unit;
}

val create : ?backing:backing -> unit -> t

(** Canonical structural fingerprint of a solve request.  [engine]
    (when given) salts the key so a non-exact engine's answer can never
    replay as an exact one; omitting it keeps the fingerprint
    byte-identical to historical exact-solver keys. *)
val fingerprint :
  ?engine:string ->
  ?options:Branch_bound.options ->
  ?warm_start:float array ->
  ?extra_starts:float array list ->
  Model.t ->
  string

(** Look up a fingerprint.  [`Hit sol] returns the cached (or
    concurrently computed) solution; [`Reserved] means the caller now
    owns the solve and {e must} call {!fill} (or {!cancel} on failure),
    otherwise waiters block forever.  [engine] (default ["ilp"]) is
    forwarded to the backing tier. *)
val find_or_reserve :
  ?engine:string -> t -> string -> [ `Hit of Branch_bound.solution | `Reserved ]

(** Publish the solution for a reserved fingerprint and wake waiters.
    [engine] (default ["ilp"]) tags the write-through to the backing. *)
val fill : ?engine:string -> t -> string -> Branch_bound.solution -> unit

(** Drop a reserved fingerprint (the solve failed); waiters retry. *)
val cancel : t -> string -> unit

(** [cancel_owned c ~req] force-releases every single-flight reservation
    whose owner label carries request [req] — the serve daemon calls it
    when the supervisor abandons a wedged worker, so peers blocked on the
    zombie's reservations wake and re-solve instead of waiting forever.
    Returns the number of reservations released (also accumulated in
    {!cancelled_count} and emitted as a ["memo.cancel"] trace instant). *)
val cancel_owned : t -> req:string -> int

(** Reservations ever force-released by {!cancel_owned}. *)
val cancelled_count : t -> int

(** Lookups answered from the in-memory table (including waits on
    in-flight solves). *)
val hits : t -> int

(** Lookups answered by the {!backing} tier (counted separately from
    in-memory [hits]; also excluded from [misses]). *)
val disk_hits : t -> int

(** Lookups that had to solve. *)
val misses : t -> int

(** A single-flight reservation that has been held longer than a
    threshold — the visible face of the zombie hazard (a worker wedged
    mid-solve holds its reservation forever while peers block).  [key]
    is the hex fingerprint; [s_owner] names the reserving domain and,
    when the serve daemon tagged it, the request it was working on. *)
type stall = { key : string; s_owner : string; age_s : float }

(** [stalled c ~now] reports reservations held at least [threshold_s]
    (default 5 s) that have not been reported before — each stall is
    surfaced exactly once, counted in {!stall_count}, and (when tracing
    is armed) emitted as a ["memo.stall"] trace instant naming the
    owner.  Non-blocking for waiters; intended to be polled from a
    monitor loop. *)
val stalled : ?threshold_s:float -> t -> now:float -> stall list

(** Stalls ever reported by {!stalled}. *)
val stall_count : t -> int

(** [hits / (hits + misses)], 0 when empty. *)
val hit_rate : t -> float

(** Number of completed entries (diagnostics). *)
val length : t -> int
