(** Presolve: shrink a {!Model.t} before handing it to {!Branch_bound}.

    Three classic reductions, all {e feasible-set preserving} (bound
    tightening, implied fixing) or {e optimal-set preserving}
    (dominated-column removal), so the reduced model has the same optimal
    objective as the original and every optimal solution of the reduced
    model lifts to an optimal solution of the original:

    - {b bound tightening}: per-row activity bounds imply tighter variable
      bounds; integer bounds are rounded inward.  Rows whose maximal
      activity already satisfies them are dropped as redundant; rows whose
      minimal activity violates them prove infeasibility without a single
      LP solve.
    - {b variable fixing}: variables whose bounds collapse
      ([ub - lb <= eps]) are fixed and substituted out of every row and
      the objective.
    - {b dominated-column removal} (dual fixing): a variable whose every
      active-row coefficient lets it move toward one bound without hurting
      any constraint, and whose objective coefficient strictly rewards
      that direction, takes that bound in {e every} optimal solution and
      is fixed there.  Objective ties are only fixed when the column
      appears in no active row at all, so alternate optima are never cut
      off — that keeps downstream solution digests stable.

    The caller-facing contract is the {e lifting invariant}: [lift]
    re-inserts the fixed values so a solution of the reduced model becomes
    a solution of the original model, bit-for-bit in the kept coordinates.
    Callers fingerprint and cache against the {e original} model, so memo
    keys and solution digests are unchanged at the caller boundary. *)

type reduction = {
  reduced : Model.t;  (** fresh model; the input model is never mutated *)
  fixed : int;  (** variables eliminated (including dominated columns) *)
  dominated : int;  (** subset of [fixed] removed by dual fixing *)
  rows_dropped : int;  (** redundant (or fully substituted) rows dropped *)
  lift : float array -> float array;
  project : float array -> float array option;
}

type result = Unchanged | Infeasible | Reduced of reduction

let fix_eps = 1e-9
let feas_eps = 1e-6
let is_inf v = Float.abs v >= Model.infinity_bound || not (Float.is_finite v)
let is_int_kind = function Model.Bool | Model.Int -> true | Model.Cont -> false

(* activity bound of row [vs, cs] over box [lb, ub]; [dir] +1. for the
   maximal, -1. for the minimal activity.  [None] when an infinite bound
   contributes. *)
let activity ~dir (vs : int array) (cs : float array) lb ub =
  let acc = ref 0. in
  let inf = ref false in
  for i = 0 to Array.length vs - 1 do
    let v = vs.(i) and c = cs.(i) in
    let b = if c *. dir > 0. then ub.(v) else lb.(v) in
    if is_inf b then inf := true else acc := !acc +. (c *. b)
  done;
  if !inf then None else Some !acc

(* same, excluding term [skip]'s contribution *)
let activity_excl ~dir ~skip (vs : int array) (cs : float array) lb ub =
  let acc = ref 0. in
  let inf = ref false in
  for i = 0 to Array.length vs - 1 do
    if i <> skip then begin
      let v = vs.(i) and c = cs.(i) in
      let b = if c *. dir > 0. then ub.(v) else lb.(v) in
      if is_inf b then inf := true else acc := !acc +. (c *. b)
    end
  done;
  if !inf then None else Some !acc

let run (model : Model.t) : result =
  let n = Model.num_vars model in
  let nrows = Model.num_constraints model in
  let lb = Array.init n (fun v -> (Model.var_info model v).Model.lb) in
  let ub = Array.init n (fun v -> (Model.var_info model v).Model.ub) in
  let kind = Array.init n (fun v -> (Model.var_info model v).Model.kind) in
  (* integer bounds rounded inward up front *)
  for v = 0 to n - 1 do
    if is_int_kind kind.(v) then begin
      if not (is_inf lb.(v)) then lb.(v) <- Float.ceil (lb.(v) -. feas_eps);
      if not (is_inf ub.(v)) then ub.(v) <- Float.floor (ub.(v) +. feas_eps)
    end
  done;
  (* dense row views (expressions are already normalized at add time) *)
  let row_vs = Array.make nrows [||] in
  let row_cs = Array.make nrows [||] in
  let row_op = Array.make nrows Model.Le in
  let row_b = Array.make nrows 0. in
  for i = 0 to nrows - 1 do
    let c = Model.constr model i in
    let e = Lin_expr.normalize c.Model.expr in
    row_vs.(i) <- Array.of_list (List.map fst e.Lin_expr.terms);
    row_cs.(i) <- Array.of_list (List.map snd e.Lin_expr.terms);
    row_op.(i) <- c.Model.op;
    row_b.(i) <- c.Model.bound -. e.Lin_expr.const
  done;
  let redundant = Array.make nrows false in
  let dominated_mark = Array.make n false in
  let infeasible = ref false in
  let changed = ref true in
  let any_change = ref false in
  let tighten_ub v x =
    let x = if is_int_kind kind.(v) then Float.floor (x +. feas_eps) else x in
    if x < ub.(v) -. 1e-9 && not (is_inf x) then begin
      ub.(v) <- x;
      changed := true;
      any_change := true;
      true
    end
    else false
  in
  let tighten_lb v x =
    let x = if is_int_kind kind.(v) then Float.ceil (x -. feas_eps) else x in
    if x > lb.(v) +. 1e-9 && not (is_inf x) then begin
      lb.(v) <- x;
      changed := true;
      any_change := true;
      true
    end
    else false
  in
  (* one direction of a row seen as [sum cs <= b] (Ge rows pass negated
     coefficients and bound; Eq rows pass both directions) *)
  let propagate_le vs cs b =
    (match activity ~dir:(-1.) vs cs lb ub with
    | Some mn when mn > b +. feas_eps -> infeasible := true
    | _ -> ());
    for i = 0 to Array.length vs - 1 do
      let v = vs.(i) and c = cs.(i) in
      match activity_excl ~dir:(-1.) ~skip:i vs cs lb ub with
      | None -> ()
      | Some others_min ->
          let x = (b -. others_min) /. c in
          ignore (if c > 0. then tighten_ub v x else tighten_lb v x)
    done
  in
  let redundant_le vs cs b =
    match activity ~dir:1. vs cs lb ub with
    | Some mx when mx <= b +. 1e-9 -> true
    | _ -> false
  in
  let rounds = ref 0 in
  while !changed && (not !infeasible) && !rounds < 10 do
    changed := false;
    incr rounds;
    for i = 0 to nrows - 1 do
      if not redundant.(i) then begin
        let vs = row_vs.(i) and cs = row_cs.(i) and b = row_b.(i) in
        (match row_op.(i) with
        | Model.Le ->
            propagate_le vs cs b;
            if redundant_le vs cs b then redundant.(i) <- true
        | Model.Ge ->
            let neg = Array.map (fun c -> -.c) cs in
            propagate_le vs neg (-.b);
            if redundant_le vs neg (-.b) then redundant.(i) <- true
        | Model.Eq ->
            let neg = Array.map (fun c -> -.c) cs in
            propagate_le vs cs b;
            propagate_le vs neg (-.b);
            if redundant_le vs cs b && redundant_le vs neg (-.b) then
              redundant.(i) <- true);
        if redundant.(i) then any_change := true
      end
    done;
    for v = 0 to n - 1 do
      if lb.(v) > ub.(v) +. feas_eps then infeasible := true
    done;
    (* dominated columns (dual fixing), once bound propagation settles *)
    if (not !changed) && not !infeasible then begin
      let down_safe = Array.make n true and up_safe = Array.make n true in
      let in_rows = Array.make n false in
      for i = 0 to nrows - 1 do
        if not redundant.(i) then begin
          let vs = row_vs.(i) and cs = row_cs.(i) in
          for j = 0 to Array.length vs - 1 do
            let v = vs.(j) and c = cs.(j) in
            in_rows.(v) <- true;
            match row_op.(i) with
            | Model.Le ->
                if c < 0. then down_safe.(v) <- false;
                if c > 0. then up_safe.(v) <- false
            | Model.Ge ->
                if c > 0. then down_safe.(v) <- false;
                if c < 0. then up_safe.(v) <- false
            | Model.Eq ->
                down_safe.(v) <- false;
                up_safe.(v) <- false
          done
        end
      done;
      let obj = Lin_expr.normalize model.Model.objective in
      let obj_coef = Array.make n 0. in
      List.iter
        (fun (v, c) ->
          obj_coef.(v) <-
            (match model.Model.obj_sense with
            | Model.Minimize -> c
            | Model.Maximize -> -.c))
        obj.Lin_expr.terms;
      for v = 0 to n - 1 do
        if ub.(v) -. lb.(v) > fix_eps then
          if down_safe.(v) && obj_coef.(v) > 0. && not (is_inf lb.(v)) then begin
            if tighten_ub v lb.(v) then dominated_mark.(v) <- true
          end
          else if up_safe.(v) && obj_coef.(v) < 0. && not (is_inf ub.(v)) then begin
            if tighten_lb v ub.(v) then dominated_mark.(v) <- true
          end
          else if obj_coef.(v) = 0. && not in_rows.(v) then begin
            (* column absent from every active row with a zero objective
               coefficient: its value is irrelevant, park it at a bound *)
            if not (is_inf lb.(v)) then begin
              if tighten_ub v lb.(v) then dominated_mark.(v) <- true
            end
            else if not (is_inf ub.(v)) then
              if tighten_lb v ub.(v) then dominated_mark.(v) <- true
          end
      done
    end
  done;
  if !infeasible then Infeasible
  else if not !any_change then Unchanged
  else begin
    (* collapse near-equal (or eps-crossed) bounds into fixings; every
       remaining variable has a strictly positive bound range, so the
       [add_var] calls below cannot see lb > ub *)
    let fixed_at = Array.make n None in
    let nfixed = ref 0 in
    for v = 0 to n - 1 do
      if ub.(v) -. lb.(v) <= fix_eps then begin
        let x =
          if is_int_kind kind.(v) then Float.round ((lb.(v) +. ub.(v)) /. 2.)
          else if lb.(v) <= ub.(v) then lb.(v)
          else 0.5 *. (lb.(v) +. ub.(v))
        in
        fixed_at.(v) <- Some x;
        incr nfixed
      end
    done;
    let reduced = Model.create ~name:(Model.name model) () in
    let new_of = Array.make n (-1) in
    for v = 0 to n - 1 do
      if fixed_at.(v) = None then begin
        let info = Model.var_info model v in
        new_of.(v) <-
          Model.add_var ~lb:lb.(v) ~ub:ub.(v) ~priority:info.Model.priority
            ~kind:kind.(v) reduced info.Model.vname
      end
    done;
    let rows_dropped = ref 0 in
    (try
       for i = 0 to nrows - 1 do
         if redundant.(i) then incr rows_dropped
         else begin
           let vs = row_vs.(i) and cs = row_cs.(i) in
           let b = ref row_b.(i) in
           let terms = ref [] in
           for j = Array.length vs - 1 downto 0 do
             let v = vs.(j) and c = cs.(j) in
             match fixed_at.(v) with
             | Some x -> b := !b -. (c *. x)
             | None -> terms := Lin_expr.term ~coef:c new_of.(v) :: !terms
           done;
           match !terms with
           | [] ->
               (* fully substituted: drop if satisfied, else infeasible *)
               let ok =
                 match row_op.(i) with
                 | Model.Le -> 0. <= !b +. feas_eps
                 | Model.Ge -> 0. >= !b -. feas_eps
                 | Model.Eq -> Float.abs !b <= feas_eps
               in
               if ok then incr rows_dropped else raise Exit
           | ts ->
               let c = Model.constr model i in
               Model.add_constr ~name:c.Model.cname reduced (Lin_expr.sum ts)
                 row_op.(i) !b
         end
       done
     with Exit -> infeasible := true);
    if !infeasible then Infeasible
    else begin
      let obj = Lin_expr.normalize model.Model.objective in
      let oconst = ref obj.Lin_expr.const in
      let oterms = ref [] in
      List.iter
        (fun (v, c) ->
          match fixed_at.(v) with
          | Some x -> oconst := !oconst +. (c *. x)
          | None -> oterms := Lin_expr.term ~coef:c new_of.(v) :: !oterms)
        obj.Lin_expr.terms;
      Model.set_objective reduced model.Model.obj_sense
        (Lin_expr.add_const !oconst (Lin_expr.sum (List.rev !oterms)));
      let lift (y : float array) =
        Array.init n (fun v ->
            match fixed_at.(v) with Some x -> x | None -> y.(new_of.(v)))
      in
      let project (y : float array) =
        if Array.length y <> n then None
        else begin
          let z = Array.make (Model.num_vars reduced) 0. in
          for v = 0 to n - 1 do
            if new_of.(v) >= 0 then z.(new_of.(v)) <- y.(v)
          done;
          Some z
        end
      in
      let dominated = ref 0 in
      for v = 0 to n - 1 do
        if fixed_at.(v) <> None && dominated_mark.(v) then incr dominated
      done;
      Reduced
        {
          reduced;
          fixed = !nfixed;
          dominated = !dominated;
          rows_dropped = !rows_dropped;
          lift;
          project;
        }
    end
  end
