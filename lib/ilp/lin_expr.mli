(** Linear expressions over integer-indexed variables:
    [sum_i coef_i * x_i + const].  Expressions are persistent values;
    {!normalize} combines duplicate variables. *)

type t = { terms : (int * float) list; const : float }

val zero : t
val constant : float -> t

(** [term ?coef v] is [coef * x_v] (default coefficient 1). *)
val term : ?coef:float -> int -> t

val of_terms : ?const:float -> (int * float) list -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_const : float -> t -> t
val sum : t list -> t

(** Combine duplicate variables, drop zero coefficients, sort by index. *)
val normalize : t -> t

(** Evaluate under an assignment. *)
val eval : (int -> float) -> t -> float

val pp : ?var_name:(int -> string) -> Format.formatter -> t -> unit

module Infix : sig
  val ( ++ ) : t -> t -> t
  val ( -- ) : t -> t -> t
  val ( ** ) : float -> int -> t
  val ( +! ) : t -> float -> t
end
