(** Statistics collector for generated ILPs — the data behind the paper's
    Table I (#ILPs, #variables, #constraints, solve time).

    A value of this type is plain mutable state and is {e not} domain-safe
    on its own.  The concurrency discipline is per-worker accumulation:
    every parallel solve job records into its own private [t] and the
    driver combines them with {!merge} in a deterministic order, so totals
    are exact (no lost updates) and identical at any worker count. *)

type t = {
  mutable ilps : int;
  mutable vars : int;
  mutable constrs : int;
  mutable solve_time_s : float;
  mutable bb_nodes : int;
  mutable cache_hits : int;
      (** solves answered from the {!Memo} cache; these are *not* counted
          in [ilps] — that stays the number of ILPs actually solved *)
}

let create () =
  { ilps = 0; vars = 0; constrs = 0; solve_time_s = 0.; bb_nodes = 0; cache_hits = 0 }

let reset t =
  t.ilps <- 0;
  t.vars <- 0;
  t.constrs <- 0;
  t.solve_time_s <- 0.;
  t.bb_nodes <- 0;
  t.cache_hits <- 0

let record t (model : Model.t) ~nodes ~time_s =
  t.ilps <- t.ilps + 1;
  t.vars <- t.vars + Model.num_vars model;
  t.constrs <- t.constrs + Model.num_constraints model;
  t.solve_time_s <- t.solve_time_s +. time_s;
  t.bb_nodes <- t.bb_nodes + nodes

let record_cache_hit t = t.cache_hits <- t.cache_hits + 1

let merge ~into:a b =
  a.ilps <- a.ilps + b.ilps;
  a.vars <- a.vars + b.vars;
  a.constrs <- a.constrs + b.constrs;
  a.solve_time_s <- a.solve_time_s +. b.solve_time_s;
  a.bb_nodes <- a.bb_nodes + b.bb_nodes;
  a.cache_hits <- a.cache_hits + b.cache_hits

let copy t = { t with ilps = t.ilps }

let pp ppf t =
  Fmt.pf ppf "#ILPs %d, #Var %d, #Constr %d, time %.2fs, B&B nodes %d" t.ilps
    t.vars t.constrs t.solve_time_s t.bb_nodes;
  if t.cache_hits > 0 then Fmt.pf ppf ", cache hits %d" t.cache_hits
