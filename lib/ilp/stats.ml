(** Statistics collector for generated ILPs — the data behind the paper's
    Table I (#ILPs, #variables, #constraints, solve time). *)

type t = {
  mutable ilps : int;
  mutable vars : int;
  mutable constrs : int;
  mutable solve_time_s : float;
  mutable bb_nodes : int;
}

let create () =
  { ilps = 0; vars = 0; constrs = 0; solve_time_s = 0.; bb_nodes = 0 }

let reset t =
  t.ilps <- 0;
  t.vars <- 0;
  t.constrs <- 0;
  t.solve_time_s <- 0.;
  t.bb_nodes <- 0

let record t (model : Model.t) ~nodes ~time_s =
  t.ilps <- t.ilps + 1;
  t.vars <- t.vars + Model.num_vars model;
  t.constrs <- t.constrs + Model.num_constraints model;
  t.solve_time_s <- t.solve_time_s +. time_s;
  t.bb_nodes <- t.bb_nodes + nodes

let merge ~into:a b =
  a.ilps <- a.ilps + b.ilps;
  a.vars <- a.vars + b.vars;
  a.constrs <- a.constrs + b.constrs;
  a.solve_time_s <- a.solve_time_s +. b.solve_time_s;
  a.bb_nodes <- a.bb_nodes + b.bb_nodes

let copy t = { t with ilps = t.ilps }

let pp ppf t =
  Fmt.pf ppf "#ILPs %d, #Var %d, #Constr %d, time %.2fs, B&B nodes %d" t.ilps
    t.vars t.constrs t.solve_time_s t.bb_nodes
