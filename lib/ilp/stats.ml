(** Statistics collector for generated ILPs — the data behind the paper's
    Table I (#ILPs, #variables, #constraints, solve time).

    A value of this type is plain mutable state and is {e not} domain-safe
    on its own.  The concurrency discipline is per-worker accumulation:
    every parallel solve job records into its own private [t] and the
    driver combines them with {!merge} in a deterministic order, so totals
    are exact (no lost updates) and identical at any worker count. *)

type t = {
  mutable ilps : int;
  mutable vars : int;
  mutable constrs : int;
  mutable solve_time_s : float;
  mutable bb_nodes : int;
  mutable pivots : int;
      (** simplex pivots across all LP relaxations of the recorded solves
          (exact per-solve counts, deterministic at any [jobs] value) *)
  mutable presolve_fixed : int;
      (** variables eliminated by the presolve pass (implied-bound fixing
          plus dominated-column removal) across the recorded solves *)
  mutable presolve_rows : int;
      (** constraint rows dropped as redundant by the presolve pass *)
  mutable cuts : int;  (** cover cuts added by branch & bound *)
  mutable cache_hits : int;
      (** solves answered from the {!Memo} cache; these are *not* counted
          in [ilps] — that stays the number of ILPs actually solved *)
  mutable deg_incumbent : int;
      (** solves that hit a limit and delivered their best incumbent *)
  mutable deg_lp_round : int;  (** fallbacks to rounded LP relaxations *)
  mutable deg_greedy : int;  (** fallbacks to greedy list scheduling *)
  mutable deg_seq : int;
      (** solves where even the greedy fallback failed and the node kept
          only its sequential candidate *)
  mutable heuristic_solves : int;
      (** subproblems answered by the portfolio's list-scheduler/GA
          engine (no branch & bound); disjoint from [ilps] *)
  mutable heur_time_s : float;
      (** wall time spent inside the heuristic engine *)
  mutable wins_heuristic : int;
      (** portfolio races where the heuristic incumbent survived (the
          reduced-budget exact search could not improve on it) *)
  mutable wins_exact : int;
      (** portfolio races where branch & bound improved on the
          heuristic incumbent *)
  mutable quality_gap_max : float;
      (** worst observed relative gap (heur - exact) / exact across the
          portfolio races that the exact engine won; merged with [max] *)
}

let create () =
  {
    ilps = 0;
    vars = 0;
    constrs = 0;
    solve_time_s = 0.;
    bb_nodes = 0;
    pivots = 0;
    presolve_fixed = 0;
    presolve_rows = 0;
    cuts = 0;
    cache_hits = 0;
    deg_incumbent = 0;
    deg_lp_round = 0;
    deg_greedy = 0;
    deg_seq = 0;
    heuristic_solves = 0;
    heur_time_s = 0.;
    wins_heuristic = 0;
    wins_exact = 0;
    quality_gap_max = 0.;
  }

let reset t =
  t.ilps <- 0;
  t.vars <- 0;
  t.constrs <- 0;
  t.solve_time_s <- 0.;
  t.bb_nodes <- 0;
  t.pivots <- 0;
  t.presolve_fixed <- 0;
  t.presolve_rows <- 0;
  t.cuts <- 0;
  t.cache_hits <- 0;
  t.deg_incumbent <- 0;
  t.deg_lp_round <- 0;
  t.deg_greedy <- 0;
  t.deg_seq <- 0;
  t.heuristic_solves <- 0;
  t.heur_time_s <- 0.;
  t.wins_heuristic <- 0;
  t.wins_exact <- 0;
  t.quality_gap_max <- 0.

let record ?(pivots = 0) ?(presolve_fixed = 0) ?(presolve_rows = 0)
    ?(cuts = 0) t (model : Model.t) ~nodes ~time_s =
  t.ilps <- t.ilps + 1;
  t.vars <- t.vars + Model.num_vars model;
  t.constrs <- t.constrs + Model.num_constraints model;
  t.solve_time_s <- t.solve_time_s +. time_s;
  t.bb_nodes <- t.bb_nodes + nodes;
  t.pivots <- t.pivots + pivots;
  t.presolve_fixed <- t.presolve_fixed + presolve_fixed;
  t.presolve_rows <- t.presolve_rows + presolve_rows;
  t.cuts <- t.cuts + cuts

let record_cache_hit t = t.cache_hits <- t.cache_hits + 1

(** One subproblem answered by the heuristic engine (list scheduler /
    GA), outside branch & bound. *)
let record_heuristic t ~time_s =
  t.heuristic_solves <- t.heuristic_solves + 1;
  t.heur_time_s <- t.heur_time_s +. time_s

(** Outcome of one portfolio race: which engine's answer was kept, and
    (when the exact engine improved on the heuristic) the relative
    quality gap the heuristic left on the table. *)
let record_race t ~winner ~quality_gap =
  (match winner with
  | `Heuristic -> t.wins_heuristic <- t.wins_heuristic + 1
  | `Exact -> t.wins_exact <- t.wins_exact + 1);
  if quality_gap > t.quality_gap_max then t.quality_gap_max <- quality_gap

(** One solve landed on a degradation-ladder rung (see
    [Solution.degradation] in [lib/core]). *)
let record_degraded t level =
  match level with
  | `Incumbent -> t.deg_incumbent <- t.deg_incumbent + 1
  | `Lp_round -> t.deg_lp_round <- t.deg_lp_round + 1
  | `Greedy -> t.deg_greedy <- t.deg_greedy + 1
  | `Seq_fallback -> t.deg_seq <- t.deg_seq + 1

(** [true] iff any solve fell below the best-incumbent rung, i.e. the
    candidate sets may be missing solutions branch & bound would have
    found with enough budget. *)
let ladder_engaged t = t.deg_lp_round > 0 || t.deg_greedy > 0 || t.deg_seq > 0

let merge ~into:a b =
  a.ilps <- a.ilps + b.ilps;
  a.vars <- a.vars + b.vars;
  a.constrs <- a.constrs + b.constrs;
  a.solve_time_s <- a.solve_time_s +. b.solve_time_s;
  a.bb_nodes <- a.bb_nodes + b.bb_nodes;
  a.pivots <- a.pivots + b.pivots;
  a.presolve_fixed <- a.presolve_fixed + b.presolve_fixed;
  a.presolve_rows <- a.presolve_rows + b.presolve_rows;
  a.cuts <- a.cuts + b.cuts;
  a.cache_hits <- a.cache_hits + b.cache_hits;
  a.deg_incumbent <- a.deg_incumbent + b.deg_incumbent;
  a.deg_lp_round <- a.deg_lp_round + b.deg_lp_round;
  a.deg_greedy <- a.deg_greedy + b.deg_greedy;
  a.deg_seq <- a.deg_seq + b.deg_seq;
  a.heuristic_solves <- a.heuristic_solves + b.heuristic_solves;
  a.heur_time_s <- a.heur_time_s +. b.heur_time_s;
  a.wins_heuristic <- a.wins_heuristic + b.wins_heuristic;
  a.wins_exact <- a.wins_exact + b.wins_exact;
  if b.quality_gap_max > a.quality_gap_max then
    a.quality_gap_max <- b.quality_gap_max

let copy t = { t with ilps = t.ilps }

let pp ppf t =
  Fmt.pf ppf "#ILPs %d, #Var %d, #Constr %d, time %.2fs, B&B nodes %d" t.ilps
    t.vars t.constrs t.solve_time_s t.bb_nodes;
  if t.pivots > 0 then Fmt.pf ppf ", pivots %d" t.pivots;
  if t.presolve_fixed > 0 then
    Fmt.pf ppf ", presolve-fixed %d" t.presolve_fixed;
  if t.presolve_rows > 0 then
    Fmt.pf ppf ", presolve-rows %d" t.presolve_rows;
  if t.cuts > 0 then Fmt.pf ppf ", cuts %d" t.cuts;
  if t.cache_hits > 0 then Fmt.pf ppf ", cache hits %d" t.cache_hits;
  if t.deg_incumbent > 0 then Fmt.pf ppf ", incumbent-only %d" t.deg_incumbent;
  if t.deg_lp_round > 0 then Fmt.pf ppf ", lp-round %d" t.deg_lp_round;
  if t.deg_greedy > 0 then Fmt.pf ppf ", greedy %d" t.deg_greedy;
  if t.deg_seq > 0 then Fmt.pf ppf ", seq-fallback %d" t.deg_seq;
  if t.heuristic_solves > 0 then
    Fmt.pf ppf ", heuristic %d (%.2fs)" t.heuristic_solves t.heur_time_s;
  if t.wins_heuristic > 0 || t.wins_exact > 0 then
    Fmt.pf ppf ", race wins heur/exact %d/%d (worst gap %.2f%%)"
      t.wins_heuristic t.wins_exact (100. *. t.quality_gap_max)
