(** Wall-clock time for solver limits and timing reports (not process CPU
    time — see the implementation notes on why that matters under
    domain-parallel solving). *)

(** Seconds since the epoch; differences measure elapsed wall time. *)
val now_s : unit -> float
