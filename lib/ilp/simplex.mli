(** Dense two-phase primal simplex with bounded variables — the LP core
    under {!Branch_bound} (lp_solve/CPLEX's role in the paper's flow).

    Nonbasic variables rest at either bound, so finite upper bounds cost
    nothing in tableau size; equality and negative-rhs rows receive
    phase-1 artificials; Dantzig pricing with a Bland's-rule fallback
    guards against cycling. *)

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded

(** Diagnostics: pivots and solves across the process lifetime. *)
val total_iterations : int ref

val solve_count : int ref

(** Solve the LP relaxation of [model] (integrality is ignored).
    [lb]/[ub] optionally override the model's variable bounds; both must
    have length [Model.num_vars model]. *)
val solve : ?lb:float array -> ?ub:float array -> Model.t -> result
