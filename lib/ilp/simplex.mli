(** Dense two-phase primal simplex with bounded variables — the LP core
    under {!Branch_bound} (lp_solve/CPLEX's role in the paper's flow).

    Nonbasic variables rest at either bound, so finite upper bounds cost
    nothing in tableau size; equality and negative-rhs rows receive
    phase-1 artificials; Dantzig pricing with a Bland's-rule fallback
    guards against cycling. *)

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Stalled
      (** phase 1 ran out of its deterministic iteration caps (including
          the Bland's-rule finish) while artificials were still positive:
          neither a feasible vertex nor an infeasibility proof exists.
          Callers must treat feasibility as {e unknown} — branch & bound
          stops its search and reports the incumbent [Feasible] rather
          than pruning the subtree (a stall mistaken for infeasibility
          silently cuts off optimal integer points). *)

(** Diagnostics: pivots and solves across the process lifetime.  Atomic
    because solves run concurrently on OCaml 5 domains; each solve counts
    into domain-local accumulators and publishes once at the end with
    [fetch_and_add], so concurrent solves never lose updates. *)
val total_iterations : int Atomic.t

val solve_count : int Atomic.t

(** Solve the LP relaxation of [model] (integrality is ignored).
    [lb]/[ub] optionally override the model's variable bounds; both must
    have length [Model.num_vars model]. *)
val solve : ?lb:float array -> ?ub:float array -> Model.t -> result

(** Like {!solve}, but also returns the work performed, measured in
    tableau cells touched across all pivots.  Unlike wall-clock time this
    measure is deterministic — independent of machine speed, domain count
    and scheduling — so {!Branch_bound} uses it for reproducible solve
    budgets. *)
val solve_counted :
  ?lb:float array -> ?ub:float array -> Model.t -> result * float

exception Budget_exhausted
(** Raised by {!solve_stats} when [work_budget] runs out mid-solve.  The
    abort point depends only on the deterministic work measure, so a
    budgeted solve terminates identically on any machine. *)

(** Like {!solve_counted}, but additionally returns the pivot count of
    this solve alone (exact and deterministic, unlike a delta of
    {!total_iterations} under concurrent solves).  [work_budget] (default
    [infinity]) caps the work of this call: once exceeded at a pivot
    boundary the solve raises {!Budget_exhausted} instead of running the
    LP to completion — the hard-budget lever of the portfolio engine. *)
val solve_stats :
  ?lb:float array ->
  ?ub:float array ->
  ?work_budget:float ->
  Model.t ->
  result * float * int
