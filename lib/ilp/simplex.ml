(** Dense two-phase primal simplex with bounded variables.

    Solves the LP relaxation of a {!Model.t}:
    minimize/maximize [c.x] s.t. linear constraints and box bounds.
    Nonbasic variables rest at either bound ("bounded-variable simplex"),
    so finite upper bounds cost nothing in tableau size.  Equality and
    negative-rhs rows receive phase-1 artificials.  Dantzig pricing with a
    Bland's-rule fallback guards against cycling.

    This plays the role of lp_solve / CPLEX's LP core in the paper's tool
    flow; {!Branch_bound} adds integrality on top. *)

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Stalled

(* Diagnostics: total pivots / solves across all solves.  Atomics, because
   solves run concurrently on OCaml 5 domains (the parallel driver in
   Parcore.Algorithm); each solve accumulates into domain-local counters
   and publishes once with [fetch_and_add] on completion. *)
let total_iterations = Atomic.make 0
let solve_count = Atomic.make 0

let eps = 1e-7
let ratio_eps = 1e-9
let inf_bound = 1e29

type tab = {
  m : int;  (** rows *)
  ncols : int;  (** structural + slack + artificial columns *)
  a : float array array;  (** m x ncols tableau, mutated by pivots *)
  rhs : float array;  (** basic-variable values *)
  basis : int array;  (** column basic in each row *)
  upper : float array;  (** upper bound per column (shifted space) *)
  at_ub : bool array;  (** nonbasic-at-upper-bound flag per column *)
  is_basic : bool array;
  n_struct : int;
  n_artificial_start : int;  (** first artificial column *)
}

(* Gauss-Jordan pivot on the tableau matrix only.  Basic-variable values
   [t.rhs] are maintained incrementally by the caller (they are expressed
   in the *bounded* space, not as B^-1 b), so the pivot must not touch
   them.  Only columns [0, active) are updated: once phase 1 ends, the
   artificial columns are locked out and never read again, so phase 2
   passes [active = n_artificial_start] and skips them entirely (a free
   25-45% cut of phase-2 row work on equality-heavy models). *)
let pivot t r j active =
  Fault.point "simplex.pivot";
  let arow = t.a.(r) in
  let piv = arow.(j) in
  let inv = 1. /. piv in
  for k = 0 to active - 1 do
    Array.unsafe_set arow k (Array.unsafe_get arow k *. inv)
  done;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let ai = Array.unsafe_get t.a i in
      let f = Array.unsafe_get ai j in
      if f <> 0. then
        for k = 0 to active - 1 do
          Array.unsafe_set ai k
            (Array.unsafe_get ai k -. (f *. Array.unsafe_get arow k))
        done
    end
  done

exception Budget_exhausted

(** One simplex phase: minimize [cost . x] from the current basis.
    Returns [`Optimal], [`Unbounded] or [`Cap_hit] (iteration cap ran
    out before an optimality proof — the vertex reached is usable but
    its objective may overestimate the phase minimum).  [locked.(j)]
    excludes a column from entering (used to freeze artificials in phase
    2); [active] bounds the columns that are priced and maintained (see
    {!pivot}).  [force_bland] prices with Bland's rule from the first
    pivot (and doubles the cap): used to finish a capped phase 1, where
    stopping short would misreport a degenerate stall as infeasibility.
    Bland's anti-cycling argument makes termination finite in exact
    arithmetic; floating-point ties can still defeat it, so the cap
    stays as a backstop and the caller maps a second [`Cap_hit] to
    {!Stalled} (feasibility unknown) instead of guessing.  Pivot count
    is accumulated into the solve-local [iters] and the deterministic
    work measure (tableau cells touched) into [work]. *)
let run_phase ?(force_bland = false) t (cost : float array)
    (locked : bool array) ~active ~iters ~work ~budget =
  let max_iters = (if force_bland then 2 else 1) * (300 + (4 * (t.m + t.ncols))) in
  let iter = ref 0 in
  let stall = ref 0 in
  let result = ref None in
  let iter_cells = float_of_int (t.m * active) in
  (* scratch buffers reused across iterations *)
  let yrow = Array.make t.ncols 0. in
  let colj = Array.make t.m 0. in
  while Option.is_none !result do
    incr iter;
    incr iters;
    work := !work +. iter_cells;
    (* the hard budget aborts between pivots, in either phase — the
       deterministic counterpart of a wall-clock kill *)
    if !work > budget then raise Budget_exhausted;
    if !iter > max_iters then
      (* Iteration cap: with the Bland fallback this only triggers on
         heavily degenerate instances.  The current vertex is
         "optimal-so-far": its objective can overestimate the true phase
         minimum, so the caller must not treat it as a proof — in phase
         1 that would turn a stall into a false infeasibility verdict
         (see the [`Cap_hit] handling in {!solve_stats}). *)
      result := Some `Cap_hit
    else begin
      (* reduced costs d = c - c_B^T T, computed row-major for cache
         friendliness: y = sum_i cb_i * row_i *)
      Array.fill yrow 0 active 0.;
      for i = 0 to t.m - 1 do
        let cbi = Array.unsafe_get cost t.basis.(i) in
        if cbi <> 0. then begin
          let row = Array.unsafe_get t.a i in
          for j = 0 to active - 1 do
            Array.unsafe_set yrow j
              (Array.unsafe_get yrow j +. (cbi *. Array.unsafe_get row j))
          done
        end
      done;
      let bland = force_bland || !stall > t.m + 20 in
      let best_j = ref (-1) in
      let best_score = ref eps in
      let best_dir = ref 1. in
      (try
         for j = 0 to active - 1 do
           (* columns fixed at a single value (ub = lb, e.g. by branch &
              bound) can never move: entering them would only toggle the
              bound flag in zero-length steps *)
           if
             (not (Array.unsafe_get t.is_basic j))
             && (not locked.(j))
             && t.upper.(j) > ratio_eps
           then begin
             let d = Array.unsafe_get cost j -. Array.unsafe_get yrow j in
             (* entering from lb wants d < 0; from ub wants d > 0 *)
             let score, dir = if t.at_ub.(j) then (d, -1.) else (-.d, 1.) in
             if score > !best_score then begin
               best_j := j;
               best_score := score;
               best_dir := dir;
               if bland then raise Exit
             end
           end
         done
       with Exit -> ());
      if !best_j < 0 then result := Some `Optimal
      else begin
        let j = !best_j in
        let dir = !best_dir in
        (* gather column j once *)
        for i = 0 to t.m - 1 do
          Array.unsafe_set colj i (Array.unsafe_get (Array.unsafe_get t.a i) j)
        done;
        (* ratio test: entering moves by step >= 0 in direction dir *)
        let limit = ref (if t.upper.(j) >= inf_bound then infinity else t.upper.(j)) in
        let leave_row = ref (-1) in
        let leave_to_ub = ref false in
        for i = 0 to t.m - 1 do
          let coeff = Array.unsafe_get colj i *. dir in
          let bi = t.basis.(i) in
          if coeff > ratio_eps then begin
            (* basic value decreases toward 0 *)
            let ratio = t.rhs.(i) /. coeff in
            if ratio < !limit -. ratio_eps then begin
              limit := max 0. ratio;
              leave_row := i;
              leave_to_ub := false
            end
            else if bland && ratio <= !limit +. ratio_eps && !leave_row >= 0
                    && bi < t.basis.(!leave_row) then begin
              leave_row := i;
              leave_to_ub := false
            end
          end
          else if coeff < -.ratio_eps && t.upper.(bi) < inf_bound then begin
            (* basic value increases toward its upper bound *)
            let ratio = (t.upper.(bi) -. t.rhs.(i)) /. -.coeff in
            if ratio < !limit -. ratio_eps then begin
              limit := max 0. ratio;
              leave_row := i;
              leave_to_ub := true
            end
          end
        done;
        if !limit = infinity then result := Some `Unbounded
        else begin
          let step = !limit in
          if step <= ratio_eps then incr stall else stall := 0;
          if !leave_row < 0 then begin
            (* bound flip: entering runs to its other bound *)
            for i = 0 to t.m - 1 do
              t.rhs.(i) <- t.rhs.(i) -. (Array.unsafe_get colj i *. dir *. step)
            done;
            t.at_ub.(j) <- not t.at_ub.(j)
          end
          else begin
            let r = !leave_row in
            let old_basic = t.basis.(r) in
            (* update basic values for the entering step *)
            for i = 0 to t.m - 1 do
              if i <> r then
                t.rhs.(i) <- t.rhs.(i) -. (Array.unsafe_get colj i *. dir *. step)
            done;
            (* entering variable's value in shifted space *)
            let enter_val = if dir > 0. then step else t.upper.(j) -. step in
            (* leaving variable settles at lb (0) or its ub *)
            t.at_ub.(old_basic) <- !leave_to_ub;
            t.is_basic.(old_basic) <- false;
            t.rhs.(r) <- enter_val;
            t.basis.(r) <- j;
            t.is_basic.(j) <- true;
            t.at_ub.(j) <- false;
            pivot t r j active
          end
        end
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

(** Build the tableau from a model plus overriding bounds (shifted so every
    structural variable has lb 0). *)
let build (model : Model.t) (lb : float array) (ub : float array) =
  let n = Model.num_vars model in
  let m = Model.num_constraints model in
  (* row data: coefficients (dense over struct vars), op, rhs *)
  let rows = Array.make m (Array.make 0 0., Model.Le, 0.) in
  for i = 0 to m - 1 do
    let c = Model.constr model i in
    let coefs = Array.make n 0. in
    List.iter
      (fun (v, k) -> coefs.(v) <- coefs.(v) +. k)
      (Lin_expr.normalize c.Model.expr).Lin_expr.terms;
    (* shift by lb: rhs' = rhs - sum coef*lb *)
    let shift = ref 0. in
    for v = 0 to n - 1 do
      if coefs.(v) <> 0. then shift := !shift +. (coefs.(v) *. lb.(v))
    done;
    rows.(i) <- (coefs, c.Model.op, c.Model.bound -. !shift)
  done;
  (* normalize: Ge -> Le by negation; then ensure rhs >= 0 by negation,
     tracking the effective op *)
  let nslack = ref 0 in
  let prepared =
    Array.map
      (fun (coefs, op, rhs) ->
        let coefs, op, rhs =
          match op with
          | Model.Ge -> (Array.map (fun x -> -.x) coefs, Model.Le, -.rhs)
          | Model.Le | Model.Eq -> (coefs, op, rhs)
        in
        let coefs, slack_sign, rhs =
          if rhs < 0. then (Array.map (fun x -> -.x) coefs,
                            (match op with Model.Le -> -1. | _ -> 0.), -.rhs)
          else (coefs, (match op with Model.Le -> 1. | _ -> 0.), rhs)
        in
        if slack_sign <> 0. then incr nslack;
        (coefs, slack_sign, rhs))
      rows
  in
  (* artificials: rows with slack_sign <= 0 need one *)
  let nartif = ref 0 in
  Array.iter
    (fun (_, s, _) -> if s <= 0. then incr nartif)
    prepared;
  let ncols = n + !nslack + !nartif in
  let a = Array.init m (fun _ -> Array.make ncols 0.) in
  let rhs = Array.make m 0. in
  let basis = Array.make m (-1) in
  let upper = Array.make ncols inf_bound in
  for v = 0 to n - 1 do
    upper.(v) <- (if ub.(v) >= inf_bound then inf_bound else ub.(v) -. lb.(v))
  done;
  let slack_col = ref n in
  let artif_col = ref (n + !nslack) in
  let artif_start = n + !nslack in
  Array.iteri
    (fun i (coefs, slack_sign, r) ->
      Array.blit coefs 0 a.(i) 0 n;
      rhs.(i) <- r;
      if slack_sign <> 0. then begin
        a.(i).(!slack_col) <- slack_sign;
        if slack_sign > 0. then basis.(i) <- !slack_col;
        incr slack_col
      end;
      if basis.(i) < 0 then begin
        a.(i).(!artif_col) <- 1.;
        basis.(i) <- !artif_col;
        incr artif_col
      end)
    prepared;
  let is_basic = Array.make ncols false in
  Array.iter (fun b -> is_basic.(b) <- true) basis;
  {
    m;
    ncols;
    a;
    rhs;
    basis;
    upper;
    at_ub = Array.make ncols false;
    is_basic;
    n_struct = n;
    n_artificial_start = artif_start;
  }

(** Extract structural-variable values (unshifted). *)
let extract t (lb : float array) =
  let x = Array.make t.n_struct 0. in
  for v = 0 to t.n_struct - 1 do
    let shifted =
      if t.is_basic.(v) then begin
        (* find its row *)
        let value = ref 0. in
        for i = 0 to t.m - 1 do
          if t.basis.(i) = v then value := t.rhs.(i)
        done;
        !value
      end
      else if t.at_ub.(v) then t.upper.(v)
      else 0.
    in
    x.(v) <- shifted +. lb.(v)
  done;
  x

(** Solve the LP relaxation of [model].  [lb]/[ub] optionally override the
    model's variable bounds (same length as [Model.num_vars]).  Also
    returns the deterministic work measure: tableau cells touched across
    all pivots (machine- and schedule-independent, unlike wall time). *)
let solve_stats ?lb ?ub ?(work_budget = infinity) (model : Model.t) :
    result * float * int =
  Atomic.incr solve_count;
  let iters = ref 0 in
  let work = ref 0. in
  let n = Model.num_vars model in
  let lb =
    match lb with
    | Some l -> l
    | None -> Array.init n (fun v -> (Model.var_info model v).Model.lb)
  in
  let ub =
    match ub with
    | Some u -> u
    | None -> Array.init n (fun v -> (Model.var_info model v).Model.ub)
  in
  (* quick bound sanity *)
  let bad = ref false in
  for v = 0 to n - 1 do
    if lb.(v) > ub.(v) +. eps then bad := true
  done;
  let res =
  if !bad then Infeasible
  else begin
    let t = build model lb ub in
    work := !work +. float_of_int (t.m * t.ncols);
    (* Phase 1: minimize sum of artificials *)
    let locked = Array.make t.ncols false in
    let phase1_capped = ref false in
    (* any artificial still positive means the vertex is not feasible *)
    let artif_sum () =
      let s = ref 0. in
      for i = 0 to t.m - 1 do
        if t.basis.(i) >= t.n_artificial_start then s := !s +. t.rhs.(i)
      done;
      for j = t.n_artificial_start to t.ncols - 1 do
        if (not t.is_basic.(j)) && t.at_ub.(j) then s := !s +. t.upper.(j)
      done;
      !s
    in
    if t.n_artificial_start < t.ncols then begin
      let cost1 = Array.make t.ncols 0. in
      for j = t.n_artificial_start to t.ncols - 1 do
        cost1.(j) <- 1.
      done;
      match
        run_phase t cost1 locked ~active:t.ncols ~iters ~work
          ~budget:work_budget
      with
      | `Unbounded | `Optimal ->
          (* phase 1 is bounded below by 0; `Unbounded can only arise from
             numerical noise and is caught by the artificial-sum check *)
          ()
      | `Cap_hit ->
          (* The cap stopped phase 1 short of an optimality proof.  If
             artificials remain positive this vertex must NOT be read as
             an infeasibility proof — branch & bound trusts Infeasible
             and prunes the subtree, so a degenerate stall here would
             silently cut off feasible (even optimal) integer points.
             Try to finish the phase with Bland's rule; if that runs out
             of its (larger) cap too, feasibility is genuinely unknown
             and the verdict below becomes {!Stalled}. *)
          if artif_sum () > 1e-6 then
            match
              run_phase ~force_bland:true t cost1 locked ~active:t.ncols
                ~iters ~work ~budget:work_budget
            with
            | `Unbounded | `Optimal -> ()
            | `Cap_hit -> phase1_capped := true
    end;
    if !phase1_capped && artif_sum () > 1e-6 then Stalled
    else if artif_sum () > 1e-6 then Infeasible
    else begin
      (* pivot remaining zero-level artificials out of the basis *)
      for i = 0 to t.m - 1 do
        if t.basis.(i) >= t.n_artificial_start then begin
          let j = ref (-1) in
          let k = ref 0 in
          while !j < 0 && !k < t.n_artificial_start do
            (* the replacement enters at value 0, so it must currently sit
               at its lower bound *)
            if
              (not t.is_basic.(!k))
              && (not t.at_ub.(!k))
              && Float.abs t.a.(i).(!k) > 1e-6
            then j := !k;
            incr k
          done;
          if !j >= 0 then begin
            let old = t.basis.(i) in
            t.is_basic.(old) <- false;
            t.basis.(i) <- !j;
            t.is_basic.(!j) <- true;
            t.at_ub.(!j) <- false;
            (* the departing artificial sits at 0, so values are unchanged;
               artificial columns are dead from here on, so the restricted
               pivot range is already safe *)
            pivot t i !j t.n_artificial_start
          end
          (* else: redundant row; artificial stays basic at 0 and is locked *)
        end
      done;
      (* lock artificials out of phase 2 *)
      for j = t.n_artificial_start to t.ncols - 1 do
        locked.(j) <- true;
        t.upper.(j) <- 0.
      done;
      (* Phase 2 *)
      let sense = model.Model.obj_sense in
      let cost2 = Array.make t.ncols 0. in
      let obj = Lin_expr.normalize model.Model.objective in
      List.iter
        (fun (v, c) ->
          cost2.(v) <- (match sense with Model.Minimize -> c | Model.Maximize -> -.c))
        obj.Lin_expr.terms;
      match
        run_phase t cost2 locked ~active:t.n_artificial_start ~iters ~work
          ~budget:work_budget
      with
      | `Unbounded -> Unbounded
      | `Optimal | `Cap_hit ->
          (* a capped phase 2 returns the vertex reached,
             "optimal-so-far": feasible (phase 1 proved it), but the
             objective can overestimate the LP minimum, so a branch &
             bound caller may fathom slightly aggressively (bounded loss
             of solution quality, never a wrong feasibility verdict) *)
          let x = extract t lb in
          let obj_val = Model.objective_value model (fun v -> x.(v)) in
          Optimal { x; obj = obj_val }
    end
  end
  in
  ignore (Atomic.fetch_and_add total_iterations !iters);
  (res, !work, !iters)

let solve_counted ?lb ?ub model =
  let res, work, _ = solve_stats ?lb ?ub model in
  (res, work)

let solve ?lb ?ub model = fst (solve_counted ?lb ?ub model)
