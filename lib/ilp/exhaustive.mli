(** Brute-force reference MILP solver for the test suite: enumerates every
    assignment of the integer variables and solves the remaining LP with
    {!Simplex}.  Exponential — for tiny models only. *)

type solution = {
  x : float array option;
  obj : float;
  enumerated : int;  (** integer assignments visited *)
}

exception Too_large

(** [solve ~limit model] raises {!Too_large} when more than [limit]
    assignments would need enumeration (default 200,000). *)
val solve : ?limit:int -> Model.t -> solution
