(** Mixed integer linear program builder.

    A model owns variables (continuous, integer or boolean, each with
    bounds), linear constraints and one linear objective.  It corresponds
    to one generated ILP of the paper; {!num_vars}/{!num_constraints} feed
    the Table I statistics. *)

type var = int

type kind = Cont | Int | Bool

type var_info = {
  vname : string;
  kind : kind;
  mutable lb : float;
  mutable ub : float;
  priority : int;  (** branch & bound picks fractional vars of highest
                       priority first; default 0 *)
}

type relop = Le | Ge | Eq

type constr = { cname : string; expr : Lin_expr.t; op : relop; bound : float }

type sense = Minimize | Maximize

type t = {
  mutable mname : string;
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : constr array;
  mutable nconstrs : int;
  mutable objective : Lin_expr.t;
  mutable obj_sense : sense;
}

let infinity_bound = 1e30

let create ?(name = "ilp") () =
  {
    mname = name;
    vars = Array.make 16 { vname = ""; kind = Cont; lb = 0.; ub = 0.; priority = 0 };
    nvars = 0;
    constrs = Array.make 16 { cname = ""; expr = Lin_expr.zero; op = Le; bound = 0. };
    nconstrs = 0;
    objective = Lin_expr.zero;
    obj_sense = Minimize;
  }

let name t = t.mname

let grow arr n dummy =
  if n < Array.length arr then arr
  else begin
    let arr' = Array.make (2 * Array.length arr) dummy in
    Array.blit arr 0 arr' 0 n;
    arr'
  end

(** Create a variable.  Default bounds: [Bool] gets [0,1]; [Int]/[Cont]
    get [0, +inf) unless overridden. *)
let add_var ?(lb = 0.) ?ub ?(priority = 0) ~kind t vname : var =
  let ub =
    match (ub, kind) with
    | Some u, _ -> u
    | None, Bool -> 1.
    | None, (Int | Cont) -> infinity_bound
  in
  if lb > ub then invalid_arg (Printf.sprintf "Model.add_var %s: lb > ub" vname);
  let lb, ub = match kind with Bool -> (max 0. lb, min 1. ub) | _ -> (lb, ub) in
  let info = { vname; kind; lb; ub; priority } in
  t.vars <- grow t.vars t.nvars info;
  t.vars.(t.nvars) <- info;
  t.nvars <- t.nvars + 1;
  t.nvars - 1

let bool_var ?priority t vname = add_var ?priority ~kind:Bool t vname
let int_var ?lb ?ub ?priority t vname = add_var ?lb ?ub ?priority ~kind:Int t vname
let cont_var ?lb ?ub t vname = add_var ?lb ?ub ~kind:Cont t vname

let var_info t v = t.vars.(v)
let var_name t v = t.vars.(v).vname
let num_vars t = t.nvars
let num_constraints t = t.nconstrs

let num_integer_vars t =
  let n = ref 0 in
  for i = 0 to t.nvars - 1 do
    match t.vars.(i).kind with Bool | Int -> incr n | Cont -> ()
  done;
  !n

(** Add constraint [expr op bound]; the expression is normalized and its
    constant folded into the bound. *)
let add_constr ?(name = "") t expr op bound =
  let e = Lin_expr.normalize expr in
  let bound = bound -. e.Lin_expr.const in
  let expr = { e with Lin_expr.const = 0. } in
  let c = { cname = name; expr; op; bound } in
  t.constrs <- grow t.constrs t.nconstrs c;
  t.constrs.(t.nconstrs) <- c;
  t.nconstrs <- t.nconstrs + 1

(** [le t e1 e2] adds [e1 <= e2] (and similarly {!ge}, {!eq}). *)
let le ?name t e1 e2 =
  add_constr ?name t (Lin_expr.sub e1 e2) Le 0.

let ge ?name t e1 e2 = add_constr ?name t (Lin_expr.sub e1 e2) Ge 0.
let eq ?name t e1 e2 = add_constr ?name t (Lin_expr.sub e1 e2) Eq 0.

let set_objective t sense expr =
  t.obj_sense <- sense;
  t.objective <- Lin_expr.normalize expr

(** Boolean AND linearization (paper Eq. 7): returns a fresh [z] with
    [z >= x + y - 1], [z <= x], [z <= y]. *)
let and_var ?(name = "and") t x y =
  let z = bool_var t name in
  let open Lin_expr in
  ge t (term z) (add_const (-1.) (add (term x) (term y)));
  le t (term z) (term x);
  le t (term z) (term y);
  z

(** Independent copy: mutating the copy's bounds, constraints or
    objective never affects the original (variable records are mutable,
    so they are duplicated too). *)
let copy t =
  {
    t with
    vars = Array.map (fun (i : var_info) -> { i with lb = i.lb }) t.vars;
    constrs = Array.copy t.constrs;
  }

let constr t i = t.constrs.(i)

let iter_constrs f t =
  for i = 0 to t.nconstrs - 1 do
    f t.constrs.(i)
  done

(** Check whether [value] satisfies every constraint and all bounds
    within tolerance [eps]. *)
let feasible ?(eps = 1e-6) t (value : var -> float) =
  let ok = ref true in
  for v = 0 to t.nvars - 1 do
    let info = t.vars.(v) in
    let x = value v in
    if x < info.lb -. eps || x > info.ub +. eps then ok := false;
    (match info.kind with
    | Bool | Int ->
        if Float.abs (x -. Float.round x) > eps then ok := false
    | Cont -> ())
  done;
  iter_constrs
    (fun c ->
      let lhs = Lin_expr.eval value c.expr in
      match c.op with
      | Le -> if lhs > c.bound +. eps then ok := false
      | Ge -> if lhs < c.bound -. eps then ok := false
      | Eq -> if Float.abs (lhs -. c.bound) > eps then ok := false)
    t;
  !ok

let objective_value t (value : var -> float) = Lin_expr.eval value t.objective

let relop_str = function Le -> "<=" | Ge -> ">=" | Eq -> "="

(** Dump in an LP-like textual format for debugging. *)
let pp ppf t =
  let var_name v = t.vars.(v).vname in
  Fmt.pf ppf "%s %s@."
    (match t.obj_sense with Minimize -> "minimize" | Maximize -> "maximize")
    (Fmt.str "%a" (Lin_expr.pp ~var_name) t.objective);
  Fmt.pf ppf "subject to@.";
  iter_constrs
    (fun c ->
      Fmt.pf ppf "  %s: %a %s %g@." c.cname (Lin_expr.pp ~var_name) c.expr
        (relop_str c.op) c.bound)
    t;
  Fmt.pf ppf "bounds@.";
  for v = 0 to t.nvars - 1 do
    let i = t.vars.(v) in
    Fmt.pf ppf "  %g <= %s <= %g (%s)@." i.lb i.vname i.ub
      (match i.kind with Bool -> "bool" | Int -> "int" | Cont -> "cont")
  done
