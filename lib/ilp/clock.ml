(** Wall-clock time for solver limits and timing reports.

    The solver layer used to time itself with [Sys.time ()] — process CPU
    time — which over-reports wildly once solves run on several domains
    (N busy domains advance it N× faster than the wall) and under-reports
    when the process is descheduled.  All solver-side timing and
    time-limit enforcement goes through this module instead so there is a
    single switch point; [Unix.gettimeofday] is the best widely available
    approximation of a monotonic clock without extra dependencies (OCaml's
    stdlib exposes no [CLOCK_MONOTONIC] reader).

    Aliases {!Trace.now_s} so solver timing and trace timestamps share
    one time base — an ILP's [time_s] is directly comparable to the span
    durations around it. *)

let now_s : unit -> float = Trace.now_s
