(** Facade over {!Branch_bound} adding timing and {!Stats} recording; this
    is the entry point the parallelizer uses, mirroring the "state-of-the-
    art ILP solver" box of the paper's tool flow (Fig. 6). *)

type outcome = {
  status : Branch_bound.status;
  x : float array option;
  obj : float;
  nodes : int;
  time_s : float;
}

(** Solve [model]; if [stats] is given, the ILP's size, solve time and
    node count are accumulated into it. *)
let debug_slow =
  match Sys.getenv_opt "MPSOC_ILP_DEBUG" with
  | Some ("" | "0") | None -> None
  | Some s -> float_of_string_opt s

let solve ?options ?warm_start ?stats (model : Model.t) : outcome =
  let t0 = Sys.time () in
  let sol = Branch_bound.solve ?options ?warm_start model in
  let time_s = Sys.time () -. t0 in
  (match debug_slow with
  | Some threshold when time_s >= threshold ->
      Printf.eprintf "[ilp] %s: %d vars %d constrs %d nodes %.2fs status=%s\n%!"
        (Model.name model) (Model.num_vars model) (Model.num_constraints model)
        sol.Branch_bound.nodes time_s
        (match sol.Branch_bound.status with
        | Branch_bound.Optimal -> "optimal"
        | Branch_bound.Feasible -> "feasible"
        | Branch_bound.Infeasible -> "infeasible"
        | Branch_bound.Unbounded -> "unbounded")
  | _ -> ());
  (match stats with
  | Some s -> Stats.record s model ~nodes:sol.Branch_bound.nodes ~time_s
  | None -> ());
  {
    status = sol.Branch_bound.status;
    x = sol.Branch_bound.x;
    obj = sol.Branch_bound.obj;
    nodes = sol.Branch_bound.nodes;
    time_s;
  }

(** Convenience: value of variable [v] in an outcome (0 if none). *)
let value outcome v =
  match outcome.x with Some x -> x.(v) | None -> 0.

(** Convenience: boolean value of a 0/1 variable. *)
let bool_value outcome v = value outcome v > 0.5
