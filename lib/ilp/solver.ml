(** Facade over {!Branch_bound} adding timing, {!Stats} recording and the
    {!Memo} solve cache; this is the entry point the parallelizer uses,
    mirroring the "state-of-the-art ILP solver" box of the paper's tool
    flow (Fig. 6). *)

type outcome = {
  status : Branch_bound.status;
  x : float array option;
  obj : float;
  nodes : int;
  time_s : float;
  incumbents : float array list;
      (** improving-incumbent trail of the underlying search (best
          first); seeds related solves via [extra_starts] *)
}

let debug_slow =
  match Sys.getenv_opt "MPSOC_ILP_DEBUG" with
  | Some ("" | "0") | None -> None
  | Some s -> float_of_string_opt s

let status_str = function
  | Branch_bound.Optimal -> "optimal"
  | Branch_bound.Feasible -> "feasible"
  | Branch_bound.Infeasible -> "infeasible"
  | Branch_bound.Unbounded -> "unbounded"
  | Branch_bound.Limit -> "limit"

let solve ?options ?warm_start ?(extra_starts = []) ?cache ?stats
    (model : Model.t) : outcome =
  let t0 = Clock.now_s () in
  let traced = Trace.enabled () in
  let pivots0 = if traced then Atomic.get Simplex.total_iterations else 0 in
  let run () = Branch_bound.solve ?options ?warm_start ~extra_starts model in
  let sol, cached =
    match cache with
    | None -> (run (), false)
    | Some c -> (
        let key = Memo.fingerprint ?options ?warm_start ~extra_starts model in
        match Memo.find_or_reserve c key with
        | `Hit sol -> (sol, true)
        | `Reserved -> (
            match run () with
            | sol ->
                Memo.fill c key sol;
                (sol, false)
            | exception e ->
                Memo.cancel c key;
                raise e))
  in
  let time_s = Clock.now_s () -. t0 in
  if traced then
    (* one X event per solve, on the solving domain's track; pivots are
       the delta of the global simplex counter over this solve (exact at
       jobs=1; under concurrent solves it includes neighbours' pivots,
       so it is an upper bound — still the right scent for slow solves) *)
    Trace.complete ~cat:"ilp" ~t0_s:t0 (Model.name model)
      ~args:
        [
          ("vars", Trace.Int (Model.num_vars model));
          ("constrs", Trace.Int (Model.num_constraints model));
          ("nodes", Trace.Int sol.Branch_bound.nodes);
          ("status", Trace.Str (status_str sol.Branch_bound.status));
          ("cached", Trace.Bool cached);
          ("warm_start", Trace.Bool (warm_start <> None));
          ("extra_starts", Trace.Int (List.length extra_starts));
          ( "pivots",
            Trace.Int
              (if cached then 0
               else Atomic.get Simplex.total_iterations - pivots0) );
        ];
  (match debug_slow with
  | Some threshold when time_s >= threshold && not cached ->
      Printf.eprintf "[ilp] %s: %d vars %d constrs %d nodes %.2fs status=%s\n%!"
        (Model.name model) (Model.num_vars model) (Model.num_constraints model)
        sol.Branch_bound.nodes time_s
        (status_str sol.Branch_bound.status)
  | _ -> ());
  (match stats with
  | Some s ->
      if cached then Stats.record_cache_hit s
      else Stats.record s model ~nodes:sol.Branch_bound.nodes ~time_s
  | None -> ());
  {
    status = sol.Branch_bound.status;
    x = sol.Branch_bound.x;
    obj = sol.Branch_bound.obj;
    nodes = sol.Branch_bound.nodes;
    time_s;
    incumbents = sol.Branch_bound.incumbents;
  }

(** Convenience: value of variable [v] in an outcome (0 if none). *)
let value outcome v =
  match outcome.x with Some x -> x.(v) | None -> 0.

(** Convenience: boolean value of a 0/1 variable. *)
let bool_value outcome v = value outcome v > 0.5
