(** Facade over {!Branch_bound} adding timing, {!Stats} recording and the
    {!Memo} solve cache; this is the entry point the parallelizer uses,
    mirroring the "state-of-the-art ILP solver" box of the paper's tool
    flow (Fig. 6). *)

type outcome = {
  status : Branch_bound.status;
  x : float array option;
  obj : float;
  nodes : int;
  time_s : float;
  incumbents : float array list;
      (** improving-incumbent trail of the underlying search (best
          first); seeds related solves via [extra_starts] *)
}

let debug_slow =
  match Sys.getenv_opt "MPSOC_ILP_DEBUG" with
  | Some ("" | "0") | None -> None
  | Some s -> float_of_string_opt s

let status_str = function
  | Branch_bound.Optimal -> "optimal"
  | Branch_bound.Feasible -> "feasible"
  | Branch_bound.Infeasible -> "infeasible"
  | Branch_bound.Unbounded -> "unbounded"
  | Branch_bound.Limit -> "limit"

let solve ?options ?warm_start ?(extra_starts = []) ?cache ?stats
    (model : Model.t) : outcome =
  let t0 = Clock.now_s () in
  let traced = Trace.enabled () in
  let presolve_fixed = ref 0 in
  let presolve_rows = ref 0 in
  let opts =
    match options with Some o -> o | None -> Branch_bound.default_options
  in
  (* The presolve toggle is orchestrated here rather than inside
     [Branch_bound]: the memo fingerprint and the cached/returned solution
     both live in the ORIGINAL variable space, so callers (and the
     persistent cache) never observe the reduction.  The reduced solve's
     solution is lifted back and its objective re-evaluated on the
     original model, keeping the caller-visible [x]/[obj] pair exactly
     what an unreduced solve of the same optimum would report. *)
  let run () =
    if not opts.Branch_bound.presolve then
      Branch_bound.solve ?options ?warm_start ~extra_starts model
    else
      match Presolve.run model with
      | Presolve.Unchanged ->
          Branch_bound.solve ?options ?warm_start ~extra_starts model
      | Presolve.Infeasible ->
          presolve_rows := Model.num_constraints model;
          {
            Branch_bound.status = Branch_bound.Infeasible;
            x = None;
            obj = nan;
            nodes = 0;
            pivots = 0;
            cuts = 0;
            incumbents = [];
          }
      | Presolve.Reduced r ->
          presolve_fixed := r.Presolve.fixed;
          presolve_rows := r.Presolve.rows_dropped;
          let project y = r.Presolve.project y in
          let warm_start =
            match warm_start with None -> None | Some y -> project y
          in
          let extra_starts = List.filter_map project extra_starts in
          let sol =
            Branch_bound.solve ?options ?warm_start ~extra_starts
              r.Presolve.reduced
          in
          let x = Option.map r.Presolve.lift sol.Branch_bound.x in
          let obj =
            match x with
            | Some y -> Model.objective_value model (fun v -> y.(v))
            | None -> sol.Branch_bound.obj
          in
          {
            sol with
            Branch_bound.x;
            obj;
            incumbents = List.map r.Presolve.lift sol.Branch_bound.incumbents;
          }
  in
  let sol, cached =
    match cache with
    | None -> (run (), false)
    | Some c -> (
        let key = Memo.fingerprint ?options ?warm_start ~extra_starts model in
        match Memo.find_or_reserve c key with
        | `Hit sol -> (sol, true)
        | `Reserved -> (
            match run () with
            | sol ->
                Memo.fill c key sol;
                (sol, false)
            | exception e ->
                Memo.cancel c key;
                raise e))
  in
  let time_s = Clock.now_s () -. t0 in
  if traced then
    (* one X event per solve, on the solving domain's track; pivots are
       the delta of the global simplex counter over this solve (exact at
       jobs=1; under concurrent solves it includes neighbours' pivots,
       so it is an upper bound — still the right scent for slow solves) *)
    Trace.complete ~cat:"ilp" ~t0_s:t0 (Model.name model)
      ~args:
        [
          ("engine", Trace.Str "ilp");
          ("vars", Trace.Int (Model.num_vars model));
          ("constrs", Trace.Int (Model.num_constraints model));
          ("nodes", Trace.Int sol.Branch_bound.nodes);
          ("status", Trace.Str (status_str sol.Branch_bound.status));
          ("cached", Trace.Bool cached);
          ("warm_start", Trace.Bool (warm_start <> None));
          ("extra_starts", Trace.Int (List.length extra_starts));
          (* exact per-solve pivot count (deterministic at any job count,
             unlike the old global-counter delta) *)
          ("pivots", Trace.Int sol.Branch_bound.pivots);
          ("cuts", Trace.Int sol.Branch_bound.cuts);
          ("presolve_fixed", Trace.Int !presolve_fixed);
          ("presolve_rows", Trace.Int !presolve_rows);
        ];
  (match debug_slow with
  | Some threshold when time_s >= threshold && not cached ->
      Printf.eprintf "[ilp] %s: %d vars %d constrs %d nodes %.2fs status=%s\n%!"
        (Model.name model) (Model.num_vars model) (Model.num_constraints model)
        sol.Branch_bound.nodes time_s
        (status_str sol.Branch_bound.status)
  | _ -> ());
  (match stats with
  | Some s ->
      if cached then Stats.record_cache_hit s
      else
        Stats.record ~pivots:sol.Branch_bound.pivots
          ~presolve_fixed:!presolve_fixed ~presolve_rows:!presolve_rows
          ~cuts:sol.Branch_bound.cuts s model ~nodes:sol.Branch_bound.nodes
          ~time_s
  | None -> ());
  {
    status = sol.Branch_bound.status;
    x = sol.Branch_bound.x;
    obj = sol.Branch_bound.obj;
    nodes = sol.Branch_bound.nodes;
    time_s;
    incumbents = sol.Branch_bound.incumbents;
  }

(** Convenience: value of variable [v] in an outcome (0 if none). *)
let value outcome v =
  match outcome.x with Some x -> x.(v) | None -> 0.

(** Convenience: boolean value of a 0/1 variable. *)
let bool_value outcome v = value outcome v > 0.5
