(** Export a {!Model.t} in the CPLEX LP text format, readable by lp_solve,
    CPLEX, glpsol, and HiGHS — the solvers the paper's tool emitted its
    models to. *)

(** Make a name safe for the LP format (alphanumerics and [_ . #]). *)
val sanitize : string -> string

val to_string : Model.t -> string
val to_file : string -> Model.t -> unit
