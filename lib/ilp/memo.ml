(** Structural solve cache for {!Branch_bound} (see the interface for the
    contract).

    The fingerprint is an MD5 digest of a canonical binary serialization
    of everything that can influence the solve result: variable kinds,
    bounds and branch priorities; normalized constraint rows; the
    objective and its sense; the solver options; and the warm-start
    points.  Variable, constraint and model {e names} are deliberately
    excluded, so structurally isomorphic models — same math, different
    labels, as produced for different tree nodes or processor classes
    with identical cost annotations — hit the same entry.

    Concurrency: a single mutex guards the table.  A worker that finds a
    fingerprint in flight blocks on a condition variable until the owner
    fills it; the owning worker is on another domain and never depends on
    a waiter, so this cannot deadlock.  This single-flight discipline
    means each distinct subproblem is solved exactly once at any worker
    count — which also keeps hit/miss statistics deterministic. *)

(* Who holds the single-flight reservation, and since when: a worker
   wedged mid-solve keeps its reservation forever (the ROADMAP's zombie
   hazard), and this is what lets {!stalled} name the abandoned owner
   instead of leaving peers silently blocked. *)
type reservation = {
  owner : string;
  since : float;
  mutable reported : bool;  (** already surfaced by {!stalled} *)
}

type entry = Inflight of reservation | Done of Branch_bound.solution

type backing = {
  lookup : string -> engine:string -> Branch_bound.solution option;
  store : string -> engine:string -> Branch_bound.solution -> unit;
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  tbl : (string, entry) Hashtbl.t;
  backing : backing option;
  hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  stalls : int Atomic.t;  (** reservations reported stalled by {!stalled} *)
  cancelled : int Atomic.t;
      (** reservations force-released by {!cancel_owned} *)
}

let create ?backing () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 256;
    backing;
    hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    stalls = Atomic.make 0;
    cancelled = Atomic.make 0;
  }

(* ---- canonical fingerprint ---- *)

let add_int b i =
  Buffer.add_int64_le b (Int64.of_int i)

let add_float b f =
  (* bit pattern, so e.g. 0. and -0. are distinct and NaN is stable *)
  Buffer.add_int64_le b (Int64.bits_of_float f)

let add_terms b (e : Lin_expr.t) =
  let e = Lin_expr.normalize e in
  add_int b (List.length e.Lin_expr.terms);
  List.iter
    (fun (v, c) ->
      add_int b v;
      add_float b c)
    e.Lin_expr.terms;
  add_float b e.Lin_expr.const

let fingerprint ?engine ?(options = Branch_bound.default_options) ?warm_start
    ?(extra_starts = []) (model : Model.t) : string =
  let b = Buffer.create 4096 in
  (* Engine salt (the PR 10 portfolio): a non-exact engine's answer must
     never replay as an exact one, so any non-default engine prefixes the
     canonical buffer.  [None] adds nothing — exact fingerprints are
     byte-identical to every earlier release. *)
  (match engine with
  | None -> ()
  | Some e ->
      Buffer.add_string b "engine:";
      Buffer.add_string b e;
      Buffer.add_char b '\x00');
  (* variables: kind, bounds, priority — no names *)
  let n = Model.num_vars model in
  add_int b n;
  for v = 0 to n - 1 do
    let i = Model.var_info model v in
    add_int b (match i.Model.kind with Model.Cont -> 0 | Model.Int -> 1 | Model.Bool -> 2);
    add_float b i.Model.lb;
    add_float b i.Model.ub;
    add_int b i.Model.priority
  done;
  (* constraints: normalized expr, op, bound — no names *)
  add_int b (Model.num_constraints model);
  Model.iter_constrs
    (fun c ->
      add_int b (match c.Model.op with Model.Le -> 0 | Model.Ge -> 1 | Model.Eq -> 2);
      add_float b c.Model.bound;
      add_terms b c.Model.expr)
    model;
  (* objective *)
  add_int b (match model.Model.obj_sense with Model.Minimize -> 0 | Model.Maximize -> 1);
  add_terms b model.Model.objective;
  (* options that change the search result *)
  add_float b options.Branch_bound.time_limit_s;
  add_int b options.Branch_bound.node_limit;
  add_float b options.Branch_bound.work_limit;
  add_float b options.Branch_bound.known_lb;
  add_float b options.Branch_bound.gap_abs;
  add_float b options.Branch_bound.gap_rel;
  add_float b options.Branch_bound.int_tol;
  (* acceleration toggles change the search trajectory (and with it the
     incumbent a limited solve returns), so they salt the key: flipping a
     toggle can never replay a solution computed under another one *)
  add_int b (if options.Branch_bound.presolve then 1 else 0);
  add_int b options.Branch_bound.cut_rounds;
  add_int b options.Branch_bound.cut_every;
  (* starting points seed the incumbent, which steers the search *)
  let add_point y =
    add_int b (Array.length y);
    Array.iter (add_float b) y
  in
  (match warm_start with
  | None -> add_int b 0
  | Some y ->
      add_int b 1;
      add_point y);
  add_int b (List.length extra_starts);
  List.iter add_point extra_starts;
  Digest.string (Buffer.contents b)

(* ---- lookup protocol ---- *)

let publish c key sol =
  Mutex.lock c.mu;
  Hashtbl.replace c.tbl key (Done sol);
  Condition.broadcast c.cond;
  Mutex.unlock c.mu

(* Reservation owner label: the request tag when one is set (the serve
   daemon tags worker domains with the request id), else the domain. *)
let owner_label () =
  let dom = Printf.sprintf "domain-%d" (Domain.self () :> int) in
  match Trace.current_tag () with
  | Some tag -> Printf.sprintf "%s (req %s)" dom tag
  | None -> dom

let find_or_reserve ?(engine = "ilp") c key =
  Mutex.lock c.mu;
  let rec loop () =
    match Hashtbl.find_opt c.tbl key with
    | Some (Done sol) -> `Hit sol
    | Some (Inflight _) ->
        Condition.wait c.cond c.mu;
        loop ()
    | None ->
        Hashtbl.replace c.tbl key
          (Inflight
             { owner = owner_label (); since = Trace.now_s (); reported = false });
        `Reserved
  in
  let r = loop () in
  Mutex.unlock c.mu;
  (* Consult the disk tier only after winning the reservation, outside
     the lock: the Inflight marker makes concurrent requesters wait, so
     each key touches the disk at most once per run.  Any backing failure
     degrades to a miss (the caller just solves). *)
  let r =
    match (r, c.backing) with
    | `Reserved, Some bk -> (
        match (try bk.lookup key ~engine with _ -> None) with
        | Some sol ->
            publish c key sol;
            `Disk_hit sol
        | None -> `Reserved)
    | (`Hit _ | `Reserved), _ -> r
  in
  (match r with
  | `Hit _ -> Atomic.incr c.hits
  | `Disk_hit _ -> Atomic.incr c.disk_hits
  | `Reserved -> Atomic.incr c.misses);
  if Trace.enabled () then
    Trace.counter ~cat:"ilp" "memo"
      [
        ("hits", float_of_int (Atomic.get c.hits));
        ("disk_hits", float_of_int (Atomic.get c.disk_hits));
        ("misses", float_of_int (Atomic.get c.misses));
      ];
  match r with
  | `Disk_hit sol -> `Hit sol
  | (`Hit _ | `Reserved) as r -> r

let fill ?(engine = "ilp") c key sol =
  publish c key sol;
  (* Write-through after publishing, so waiters wake before disk IO. *)
  match c.backing with
  | Some bk -> ( try bk.store key ~engine sol with _ -> ())
  | None -> ()

let cancel c key =
  Mutex.lock c.mu;
  Hashtbl.remove c.tbl key;
  Condition.broadcast c.cond;
  Mutex.unlock c.mu

(* Force-release every reservation held on behalf of request [req] (the
   serve daemon's id for a supervisor-abandoned worker).  Owner labels
   are "domain-N (req RID)" — see {!owner_label} — so matching on the
   "(req RID)" suffix finds exactly that request's reservations.  Waiters
   are woken and re-run their [find_or_reserve] loop: one of them wins
   the now-free slot and re-solves.  If the zombie later wakes and fills
   anyway, it publishes the same deterministic solution — harmless. *)
let cancel_owned c ~req : int =
  let suffix = Printf.sprintf "(req %s)" req in
  let is_suffix ~suffix s =
    let n = String.length s and m = String.length suffix in
    m <= n && String.sub s (n - m) m = suffix
  in
  Mutex.lock c.mu;
  let doomed =
    Hashtbl.fold
      (fun key e acc ->
        match e with
        | Inflight r when is_suffix ~suffix r.owner -> key :: acc
        | Inflight _ | Done _ -> acc)
      c.tbl []
  in
  List.iter (Hashtbl.remove c.tbl) doomed;
  if doomed <> [] then Condition.broadcast c.cond;
  Mutex.unlock c.mu;
  let n = List.length doomed in
  if n > 0 then begin
    ignore (Atomic.fetch_and_add c.cancelled n);
    if Trace.enabled () then
      Trace.instant ~cat:"ilp" "memo.cancel"
        ~args:[ ("req", Trace.Str req); ("reservations", Trace.Int n) ]
  end;
  n

(* ---- stalled-reservation surfacing (the zombie hazard) ------------- *)

type stall = { key : string; s_owner : string; age_s : float }

let stalled ?(threshold_s = 5.) c ~now : stall list =
  Mutex.lock c.mu;
  let found =
    Hashtbl.fold
      (fun key e acc ->
        match e with
        | Done _ -> acc
        | Inflight r ->
            let age = now -. r.since in
            if age >= threshold_s && not r.reported then begin
              r.reported <- true;
              { key = Digest.to_hex key; s_owner = r.owner; age_s = age }
              :: acc
            end
            else acc)
      c.tbl []
  in
  Mutex.unlock c.mu;
  List.iter
    (fun st ->
      Atomic.incr c.stalls;
      if Trace.enabled () then
        Trace.instant ~cat:"ilp" "memo.stall"
          ~args:
            [
              ("key", Trace.Str st.key);
              ("owner", Trace.Str st.s_owner);
              ("age_s", Trace.Float st.age_s);
            ])
    found;
  List.sort (fun a b -> compare a.key b.key) found

let hits c = Atomic.get c.hits
let disk_hits c = Atomic.get c.disk_hits
let misses c = Atomic.get c.misses
let stall_count c = Atomic.get c.stalls
let cancelled_count c = Atomic.get c.cancelled

let hit_rate c =
  let h = float_of_int (hits c) and m = float_of_int (misses c) in
  if h +. m = 0. then 0. else h /. (h +. m)

let length c =
  Mutex.lock c.mu;
  let n =
    Hashtbl.fold
      (fun _ e n -> match e with Done _ -> n + 1 | Inflight _ -> n)
      c.tbl 0
  in
  Mutex.unlock c.mu;
  n
