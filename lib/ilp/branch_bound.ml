(** Branch & bound MILP solver over {!Simplex} LP relaxations.

    Best-first search on the relaxation bound, branching on the most
    fractional integer variable; a round-to-nearest primal heuristic and an
    optional caller-supplied warm start seed the incumbent so that node
    and time limits still return a feasible solution ([Feasible] status)
    instead of failing. *)

type status =
  | Optimal  (** proved optimal within tolerance *)
  | Feasible  (** limit hit; best incumbent returned *)
  | Infeasible
  | Unbounded
  | Limit
      (** a work/node/time limit ran out before any incumbent was found:
          the model may still be feasible, the search just could not tell.
          Distinct from [Infeasible] so callers can engage degradation
          fallbacks instead of discarding the subproblem. *)

type solution = {
  status : status;
  x : float array option;
  obj : float;  (** objective of [x] in the model's own sense *)
  nodes : int;  (** branch & bound nodes processed *)
  pivots : int;  (** simplex pivots across all LP relaxations *)
  cuts : int;  (** cover cuts added (root rounds plus in-dive) *)
  incumbents : float array list;
      (** trail of improving incumbents found during the search, most
          recent (= best) first, capped; used to warm-start related
          solves (e.g. the next processor budget in a sweep) *)
}

type options = {
  time_limit_s : float;
  node_limit : int;
  work_limit : float;
  known_lb : float;
  gap_abs : float;
  gap_rel : float;
  int_tol : float;
  presolve : bool;
      (** acted on by {!Solver.solve}, which runs {!Presolve} and lifts;
          carried here so the toggle salts {!Memo} fingerprints *)
  cut_rounds : int;  (** rounds of root cover-cut separation (0 = off) *)
  cut_every : int;
      (** separate cover cuts at every [cut_every]-th node during the
          dive (0 = off); cover cuts are globally valid, so in-dive cuts
          are sound to share across the whole tree *)
  hard_work_limit : bool;
      (** enforce [work_limit] {e inside} LP solves too: a relaxation
          whose pivots would overshoot the remaining budget is aborted
          mid-solve ({!Simplex.Budget_exhausted}) and the search stops
          with the current incumbent.  Off (the historical behavior, where
          a single large LP can overshoot the budget) except under the
          portfolio engine, whose reduced budget is smaller than one hard
          root LP. *)
}

let default_options =
  {
    time_limit_s = 30.;
    node_limit = 200_000;
    work_limit = infinity;
    known_lb = neg_infinity;
    gap_abs = 1e-6;
    gap_rel = 1e-9;
    int_tol = 1e-6;
    (* acceleration is off by default at this layer: direct callers (and
       existing tests) get the historical search; [Sweep] switches the
       toggles on from [Config] *)
    presolve = false;
    cut_rounds = 0;
    cut_every = 0;
    hard_work_limit = false;
  }

(* how many improving incumbents to keep for the caller *)
let max_incumbents = 4

type node = { nlb : float array; nub : float array; parent_bound : float }

(* simple pairing-heap-free priority queue: sorted insertion would be
   O(n); use a binary heap on arrays *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = Array.make 64 (0., Obj.magic 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h key v =
    if h.size = Array.length h.data then begin
      let d = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    h.data.(h.size) <- (key, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let is_int_kind = function Model.Bool | Model.Int -> true | Model.Cont -> false

(** Fractional integer variable to branch on: highest branch priority
    first, most fractional within a priority level. *)
let fractional_var model opts (x : float array) =
  let best = ref (-1) in
  let best_prio = ref min_int in
  let best_frac = ref 0. in
  for v = 0 to Model.num_vars model - 1 do
    let info = Model.var_info model v in
    if is_int_kind info.Model.kind then begin
      let f = Float.abs (x.(v) -. Float.round x.(v)) in
      if f > opts.int_tol then begin
        let prio = info.Model.priority in
        if
          prio > !best_prio || (prio = !best_prio && f > !best_frac)
        then begin
          best := v;
          best_prio := prio;
          best_frac := f
        end
      end
    end
  done;
  if !best >= 0 then Some !best else None

(** Round integer variables to nearest and re-check feasibility — a cheap
    primal heuristic run on every LP solution. *)
let rounded_candidate model opts (x : float array) =
  let n = Model.num_vars model in
  let y = Array.copy x in
  for v = 0 to n - 1 do
    if is_int_kind (Model.var_info model v).Model.kind then
      y.(v) <- Float.round y.(v)
  done;
  ignore opts;
  if Model.feasible model (fun v -> y.(v)) then Some y else None

(** Fix-and-solve: freeze the integers at their rounded values and
    re-optimize the continuous rest with one LP.  More expensive than
    {!rounded_candidate} but finds feasible completions the plain rounding
    misses (e.g. when big-M continuous variables must move). *)
let fix_and_solve model (node_lb : float array) (node_ub : float array)
    (x : float array) ~work ~pivots ~work_budget =
  let n = Model.num_vars model in
  let lb = Array.copy node_lb and ub = Array.copy node_ub in
  let ok = ref true in
  for v = 0 to n - 1 do
    if is_int_kind (Model.var_info model v).Model.kind then begin
      let r = Float.round x.(v) in
      if r < node_lb.(v) -. 1e-9 || r > node_ub.(v) +. 1e-9 then ok := false
      else begin
        lb.(v) <- r;
        ub.(v) <- r
      end
    end
  done;
  if not !ok then None
  else begin
    let res, w, p = Simplex.solve_stats ~lb ~ub ~work_budget model in
    work := !work +. w;
    pivots := !pivots + p;
    match res with
    | Simplex.Optimal { x = y; _ } ->
        let y = Array.copy y in
        for v = 0 to n - 1 do
          if is_int_kind (Model.var_info model v).Model.kind then
            y.(v) <- Float.round y.(v)
        done;
        if Model.feasible model (fun v -> y.(v)) then Some y else None
    | Simplex.Infeasible | Simplex.Unbounded | Simplex.Stalled -> None
  end

let solve ?(options = default_options) ?warm_start ?(extra_starts = [])
    (model : Model.t) : solution =
  let use_cuts = options.cut_rounds > 0 || options.cut_every > 0 in
  (* cuts are appended to a private copy so the caller's model (which
     [Solver] fingerprints for the memo cache) is never mutated *)
  let model = if use_cuts then Model.copy model else model in
  let n = Model.num_vars model in
  let sense = model.Model.obj_sense in
  (* internal objective: always minimize *)
  let key_of_obj o = match sense with Model.Minimize -> o | Model.Maximize -> -.o in
  let start = Clock.now_s () in
  let work = ref 0. in
  let pivots = ref 0 in
  let cuts_added = ref 0 in
  let seen_cuts = if use_cuts then Hashtbl.create 32 else Hashtbl.create 0 in
  let incumbent = ref None in
  let incumbent_key = ref infinity in
  let incumbents = ref [] in
  let consider_incumbent y =
    let o = Model.objective_value model (fun v -> y.(v)) in
    let k = key_of_obj o in
    if k < !incumbent_key -. 1e-12 then begin
      incumbent_key := k;
      incumbent := Some (y, o);
      incumbents :=
        y :: List.filteri (fun i _ -> i < max_incumbents - 1) !incumbents
    end
  in
  let seed y =
    if Array.length y = n && Model.feasible model (fun v -> y.(v)) then
      consider_incumbent (Array.copy y)
  in
  (match warm_start with Some y -> seed y | None -> ());
  (* additional starting points (e.g. the incumbent trail of a related
     solve); infeasible ones are filtered by [seed] *)
  List.iter seed extra_starts;
  (* [known_lb] is a caller-proven lower bound on the optimal key (the
     caller must guarantee it, e.g. the proven optimum of a relaxation of
     this model).  Once the incumbent is within the optimality gap of it,
     the search can stop with a proof. *)
  let proved_by_lb () =
    (* an infinite incumbent key would make the relative-gap term
       infinite and "prove" optimality with no incumbent at all *)
    Float.is_finite !incumbent_key
    && !incumbent_key
       <= options.known_lb
          +. max options.gap_abs (options.gap_rel *. Float.abs !incumbent_key)
  in
  let root_lb = Array.init n (fun v -> (Model.var_info model v).Model.lb) in
  let root_ub = Array.init n (fun v -> (Model.var_info model v).Model.ub) in
  (* remaining hard budget for the next LP call; [infinity] disables the
     mid-solve abort and reproduces the historical pivot sequences *)
  let lp_budget () =
    if options.hard_work_limit then Float.max 0. (options.work_limit -. !work)
    else infinity
  in
  (* a mid-LP abort charges the whole remaining budget, so the loop-head
     limit checks fire deterministically on the next iteration *)
  let charge_budget () = work := Float.max !work options.work_limit in
  (* root cutting-plane rounds: solve the root LP, separate violated
     cover cuts, append, repeat.  Work and pivots count against the same
     deterministic budgets as node LPs. *)
  if options.cut_rounds > 0 then begin
    let continue_cuts = ref true in
    let round = ref 0 in
    while !continue_cuts && !round < options.cut_rounds
          && !work < options.work_limit do
      incr round;
      match
        Simplex.solve_stats ~lb:root_lb ~ub:root_ub
          ~work_budget:(lp_budget ()) model
      with
      | exception Simplex.Budget_exhausted ->
          charge_budget ();
          continue_cuts := false
      | lp, w, p -> (
          work := !work +. w;
          pivots := !pivots + p;
          match lp with
          | Simplex.Optimal { x; _ } ->
              let cuts = Cuts.separate model x ~seen:seen_cuts ~max_cuts:16 in
              if cuts = [] then continue_cuts := false
              else begin
                Cuts.add model cuts;
                cuts_added := !cuts_added + List.length cuts
              end
          | Simplex.Infeasible | Simplex.Unbounded | Simplex.Stalled ->
              continue_cuts := false)
    done
  end;
  let heap = Heap.create () in
  Heap.push heap neg_infinity
    { nlb = root_lb; nub = root_ub; parent_bound = neg_infinity };
  let nodes = ref 0 in
  let hit_limit = ref false in
  let saw_unbounded = ref false in
  let fathom_key () =
    !incumbent_key
    -. max options.gap_abs (options.gap_rel *. Float.abs !incumbent_key)
  in
  let proved = ref false in
  let continue = ref true in
  while !continue do
    (* deterministic limits (work, nodes) are checked before the wall
       clock so that runs with a finite work budget terminate identically
       on any machine and at any domain count *)
    if proved_by_lb () then begin
      proved := true;
      continue := false
    end
    else if
      !work >= options.work_limit
      || !nodes >= options.node_limit
      || Fault.exhausted "ilp.budget"
    then begin
      hit_limit := true;
      continue := false
    end
    else if Clock.now_s () -. start > options.time_limit_s then begin
      hit_limit := true;
      continue := false
    end
    else
      match Heap.pop heap with
      | None -> continue := false
      | Some (key, nd) ->
          if key >= fathom_key () then continue := false
            (* best-first: all remaining nodes are worse *)
          else begin
            incr nodes;
            match
              Simplex.solve_stats ~lb:nd.nlb ~ub:nd.nub
                ~work_budget:(lp_budget ()) model
            with
            | exception Simplex.Budget_exhausted ->
                (* the node is unresolved; stopping the whole search (not
                   just skipping it) keeps the incumbent sound *)
                charge_budget ()
            | lp, w, p -> (
            work := !work +. w;
            pivots := !pivots + p;
            match lp with
            | Simplex.Infeasible -> ()
            | Simplex.Unbounded -> saw_unbounded := true
            | Simplex.Stalled ->
                (* the LP could neither find a feasible vertex nor prove
                   infeasibility within its deterministic pivot caps:
                   this subtree is undecided, so continuing (or pruning)
                   could silently lose the true optimum.  Stop the whole
                   search and report the incumbent [Feasible] — same
                   contract as an exhausted work budget. *)
                hit_limit := true;
                continue := false
            | Simplex.Optimal { x; obj } -> (
                let bound_key = key_of_obj obj in
                if bound_key >= fathom_key () then ()
                else begin
                  (match rounded_candidate model options x with
                  | Some y -> consider_incumbent y
                  | None ->
                      (* periodically try the LP-based completion *)
                      if !nodes land 7 = 1 then
                        match
                          fix_and_solve model nd.nlb nd.nub x ~work ~pivots
                            ~work_budget:(lp_budget ())
                        with
                        | Some y -> consider_incumbent y
                        | None -> ()
                        | exception Simplex.Budget_exhausted ->
                            charge_budget ());
                  match fractional_var model options x with
                  | None ->
                      (* integral LP solution *)
                      let y = Array.copy x in
                      for v = 0 to n - 1 do
                        if is_int_kind (Model.var_info model v).Model.kind then
                          y.(v) <- Float.round y.(v)
                      done;
                      if Model.feasible model (fun v -> y.(v)) then
                        consider_incumbent y
                  | Some v ->
                      (* in-dive separation: cover cuts are globally
                         valid, so cuts found at this node tighten every
                         open subproblem's relaxation *)
                      if
                        options.cut_every > 0
                        && !nodes mod options.cut_every = 0
                      then begin
                        let cuts =
                          Cuts.separate model x ~seen:seen_cuts ~max_cuts:8
                        in
                        if cuts <> [] then begin
                          Cuts.add model cuts;
                          cuts_added := !cuts_added + List.length cuts
                        end
                      end;
                      let xv = x.(v) in
                      let down_ub = Array.copy nd.nub in
                      down_ub.(v) <- Float.floor xv;
                      let up_lb = Array.copy nd.nlb in
                      up_lb.(v) <- Float.ceil xv;
                      Heap.push heap bound_key
                        { nlb = nd.nlb; nub = down_ub; parent_bound = bound_key };
                      Heap.push heap bound_key
                        { nlb = up_lb; nub = nd.nub; parent_bound = bound_key }
                end))
          end
  done;
  let finish status x obj incumbents =
    {
      status;
      x;
      obj;
      nodes = !nodes;
      pivots = !pivots;
      cuts = !cuts_added;
      incumbents;
    }
  in
  match !incumbent with
  | Some (y, o) ->
      finish
        (if !hit_limit && not !proved then Feasible else Optimal)
        (Some y) o !incumbents
  | None ->
      if !saw_unbounded then finish Unbounded None nan []
      else if !hit_limit then
        (* limit ran out before any incumbent was found: not a proof of
           infeasibility, so report it as such and let the caller degrade
           (LP rounding, greedy scheduling, sequential fallback).  Note a
           warm-started solve can never land here — the seed is already an
           incumbent. *)
        finish Limit None nan []
      else finish Infeasible None nan []
