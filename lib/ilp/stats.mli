(** Statistics collector for generated ILPs — the data behind the paper's
    Table I (#ILPs, #variables, #constraints, solve time).

    Not domain-safe by itself: under parallel solving, give each worker
    its own [t] and {!merge} them in a deterministic order (that is what
    [Parcore.Algorithm] does), so totals are exact at any worker count. *)

type t = {
  mutable ilps : int;
  mutable vars : int;
  mutable constrs : int;
  mutable solve_time_s : float;
  mutable bb_nodes : int;
  mutable pivots : int;
      (** simplex pivots across all LP relaxations of the recorded solves
          (exact per-solve counts, deterministic at any [jobs] value) *)
  mutable presolve_fixed : int;
      (** variables eliminated by the presolve pass across the recorded
          solves *)
  mutable presolve_rows : int;
      (** constraint rows dropped as redundant by the presolve pass *)
  mutable cuts : int;  (** cover cuts added by branch & bound *)
  mutable cache_hits : int;
      (** solves answered from the {!Memo} cache; not counted in [ilps],
          which stays the number of ILPs actually solved *)
  mutable deg_incumbent : int;
      (** solves that hit a limit and delivered their best incumbent *)
  mutable deg_lp_round : int;  (** fallbacks to rounded LP relaxations *)
  mutable deg_greedy : int;  (** fallbacks to greedy list scheduling *)
  mutable deg_seq : int;
      (** solves where even the greedy fallback failed and the node kept
          only its sequential candidate *)
  mutable heuristic_solves : int;
      (** subproblems answered by the portfolio's list-scheduler/GA
          engine (no branch & bound); disjoint from [ilps] *)
  mutable heur_time_s : float;
      (** wall time spent inside the heuristic engine *)
  mutable wins_heuristic : int;
      (** portfolio races where the heuristic incumbent survived *)
  mutable wins_exact : int;
      (** portfolio races where branch & bound improved on the incumbent *)
  mutable quality_gap_max : float;
      (** worst observed relative gap (heur - exact) / exact across
          exact-won portfolio races; merged with [max] *)
}

val create : unit -> t
val reset : t -> unit

(** Record one solved ILP (acceleration counters default to 0). *)
val record :
  ?pivots:int ->
  ?presolve_fixed:int ->
  ?presolve_rows:int ->
  ?cuts:int ->
  t ->
  Model.t ->
  nodes:int ->
  time_s:float ->
  unit

(** Record one solve answered from the {!Memo} cache. *)
val record_cache_hit : t -> unit

(** Record one subproblem answered by the heuristic engine. *)
val record_heuristic : t -> time_s:float -> unit

(** Record one portfolio race outcome: the winning engine and, when the
    exact engine won, the relative gap the heuristic left on the table
    (pass [0.] otherwise). *)
val record_race :
  t -> winner:[ `Heuristic | `Exact ] -> quality_gap:float -> unit

(** Record one solve landing on a degradation-ladder rung. *)
val record_degraded :
  t -> [ `Incumbent | `Lp_round | `Greedy | `Seq_fallback ] -> unit

(** [true] iff any solve fell below the best-incumbent rung, i.e. the
    candidate sets may be missing solutions the full search would have
    found — the whole run must then be reported as degraded. *)
val ladder_engaged : t -> bool

val merge : into:t -> t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
