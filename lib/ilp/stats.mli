(** Statistics collector for generated ILPs — the data behind the paper's
    Table I (#ILPs, #variables, #constraints, solve time).

    Not domain-safe by itself: under parallel solving, give each worker
    its own [t] and {!merge} them in a deterministic order (that is what
    [Parcore.Algorithm] does), so totals are exact at any worker count. *)

type t = {
  mutable ilps : int;
  mutable vars : int;
  mutable constrs : int;
  mutable solve_time_s : float;
  mutable bb_nodes : int;
  mutable cache_hits : int;
      (** solves answered from the {!Memo} cache; not counted in [ilps],
          which stays the number of ILPs actually solved *)
}

val create : unit -> t
val reset : t -> unit

(** Record one solved ILP. *)
val record : t -> Model.t -> nodes:int -> time_s:float -> unit

(** Record one solve answered from the {!Memo} cache. *)
val record_cache_hit : t -> unit

val merge : into:t -> t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
