(** Statistics collector for generated ILPs — the data behind the paper's
    Table I (#ILPs, #variables, #constraints, solve time). *)

type t = {
  mutable ilps : int;
  mutable vars : int;
  mutable constrs : int;
  mutable solve_time_s : float;
  mutable bb_nodes : int;
}

val create : unit -> t
val reset : t -> unit

(** Record one solved ILP. *)
val record : t -> Model.t -> nodes:int -> time_s:float -> unit

val merge : into:t -> t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
