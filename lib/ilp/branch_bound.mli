(** Branch & bound MILP solver over {!Simplex} LP relaxations.

    Best-first search on the relaxation bound, branching on the highest
    priority / most fractional integer variable; a rounding heuristic, a
    periodic fix-and-solve completion, and an optional caller-supplied
    warm start seed the incumbent so that node and time limits still
    return a feasible solution. *)

type status =
  | Optimal  (** proved optimal within tolerance *)
  | Feasible  (** limit hit; best incumbent returned *)
  | Infeasible
  | Unbounded

type solution = {
  status : status;
  x : float array option;
  obj : float;  (** objective of [x] in the model's own sense *)
  nodes : int;  (** branch & bound nodes processed *)
}

type options = {
  time_limit_s : float;
  node_limit : int;
  gap_abs : float;  (** absolute optimality gap for fathoming *)
  gap_rel : float;  (** relative optimality gap for fathoming *)
  int_tol : float;  (** integrality tolerance *)
}

val default_options : options

(** Solve the MILP.  [warm_start], when feasible, becomes the initial
    incumbent. *)
val solve : ?options:options -> ?warm_start:float array -> Model.t -> solution
