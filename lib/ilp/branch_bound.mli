(** Branch & bound MILP solver over {!Simplex} LP relaxations.

    Best-first search on the relaxation bound, branching on the highest
    priority / most fractional integer variable; a rounding heuristic, a
    periodic fix-and-solve completion, and an optional caller-supplied
    warm start seed the incumbent so that node and time limits still
    return a feasible solution. *)

type status =
  | Optimal  (** proved optimal within tolerance *)
  | Feasible  (** limit hit; best incumbent returned *)
  | Infeasible
  | Unbounded
  | Limit
      (** a work/node/time limit ran out before any incumbent was found:
          feasibility is unknown.  Callers should fall back to a degraded
          construction (LP rounding, greedy scheduling) rather than treat
          the subproblem as infeasible.  A warm-started solve never
          returns [Limit]: the seed already is an incumbent. *)

type solution = {
  status : status;
  x : float array option;
  obj : float;  (** objective of [x] in the model's own sense *)
  nodes : int;  (** branch & bound nodes processed *)
  pivots : int;
      (** simplex pivots summed over all LP relaxations of this solve —
          exact and deterministic, unlike wall-clock time *)
  cuts : int;  (** cover cuts added (root rounds plus in-dive) *)
  incumbents : float array list;
      (** trail of improving incumbents, most recent (= best) first,
          capped at a few entries; feed them to a related solve's
          [extra_starts] to seed its incumbent early *)
}

type options = {
  time_limit_s : float;  (** wall-clock limit (monotonic clock) *)
  node_limit : int;
  work_limit : float;
      (** deterministic budget in {!Simplex} work units (tableau cells
          touched); unlike [time_limit_s], identical runs hit it at the
          identical node on any machine / domain count.  [infinity]
          disables it. *)
  known_lb : float;
      (** caller-proven lower bound on the optimal objective key
          (minimize sense; negated objective for maximize models).  The
          search stops with {!Optimal} once the incumbent is within the
          optimality gap of it.  [neg_infinity] disables it. *)
  gap_abs : float;  (** absolute optimality gap for fathoming *)
  gap_rel : float;  (** relative optimality gap for fathoming *)
  int_tol : float;  (** integrality tolerance *)
  presolve : bool;
      (** run the {!Presolve} reductions before the search.  Acted on by
          {!Solver.solve} (which lifts the reduced solution back);
          carried in [options] so the toggle participates in {!Memo}
          fingerprints.  Off in {!default_options}. *)
  cut_rounds : int;
      (** rounds of root cover-cut separation; 0 (the default)
          disables cutting planes entirely *)
  cut_every : int;
      (** separate cover cuts every [cut_every]-th node during the dive;
          0 (the default) disables in-dive separation.  Cover cuts are
          globally valid, so sharing them across the tree is sound. *)
  hard_work_limit : bool;
      (** enforce [work_limit] inside LP solves too: a relaxation that
          would overshoot the remaining budget aborts mid-solve and the
          search stops with its current incumbent.  Off (the default,
          historical behavior); switched on by the portfolio engine,
          whose reduced budget is smaller than a single hard root LP. *)
}

val default_options : options

(** Solve the MILP.  [warm_start], when feasible, becomes the initial
    incumbent; [extra_starts] are further candidate starting points
    (infeasible ones are skipped). *)
val solve :
  ?options:options ->
  ?warm_start:float array ->
  ?extra_starts:float array list ->
  Model.t ->
  solution
