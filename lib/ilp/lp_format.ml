(** Export a {!Model.t} in the CPLEX LP text format, so generated ILPs can
    be inspected or cross-checked with external solvers (lp_solve, CPLEX,
    glpsol, HiGHS all read it).  The paper's tool emitted its models to
    exactly such solvers. *)

let sanitize name =
  (* LP format identifiers: letters, digits, and a few symbols; must not
     start with a digit or 'e'/'E' (to avoid number confusion) *)
  let buf = Buffer.create (String.length name + 1) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '#' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" then "v"
  else
    match s.[0] with
    | '0' .. '9' | 'e' | 'E' | '.' -> "v" ^ s
    | _ -> s

let pp_term buf first coef var_name =
  if coef >= 0. then begin
    if not first then Buffer.add_string buf " + "
  end
  else Buffer.add_string buf (if first then "-" else " - ");
  let a = Float.abs coef in
  if a <> 1. then Buffer.add_string buf (Printf.sprintf "%.12g " a);
  Buffer.add_string buf var_name

let pp_expr buf (model : Model.t) (e : Lin_expr.t) =
  let e = Lin_expr.normalize e in
  match e.Lin_expr.terms with
  | [] -> Buffer.add_string buf "0 dummy_zero"
  | terms ->
      List.iteri
        (fun i (v, c) ->
          pp_term buf (i = 0) c (sanitize (Model.var_name model v)))
        terms

(** Render the model as an LP-format string. *)
let to_string (model : Model.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "\\ %s\n" (Model.name model));
  Buffer.add_string buf
    (match model.Model.obj_sense with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  pp_expr buf model model.Model.objective;
  Buffer.add_string buf "\nSubject To\n";
  let ci = ref 0 in
  Model.iter_constrs
    (fun c ->
      incr ci;
      let name =
        if c.Model.cname = "" then Printf.sprintf "c%d" !ci
        else sanitize c.Model.cname
      in
      Buffer.add_string buf (Printf.sprintf " %s: " name);
      pp_expr buf model c.Model.expr;
      let op =
        match c.Model.op with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="
      in
      Buffer.add_string buf (Printf.sprintf " %s %.12g\n" op c.Model.bound))
    model;
  Buffer.add_string buf "Bounds\n";
  let generals = ref [] in
  let binaries = ref [] in
  for v = 0 to Model.num_vars model - 1 do
    let info = Model.var_info model v in
    let name = sanitize info.Model.vname in
    (match info.Model.kind with
    | Model.Bool -> binaries := name :: !binaries
    | Model.Int -> generals := name :: !generals
    | Model.Cont -> ());
    if info.Model.kind <> Model.Bool then begin
      let lb_str =
        if info.Model.lb <= -.Model.infinity_bound then "-inf"
        else Printf.sprintf "%.12g" info.Model.lb
      in
      if info.Model.ub >= Model.infinity_bound then
        Buffer.add_string buf (Printf.sprintf " %s <= %s\n" lb_str name)
      else
        Buffer.add_string buf
          (Printf.sprintf " %s <= %s <= %.12g\n" lb_str name info.Model.ub)
    end
  done;
  if !generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter
      (fun n -> Buffer.add_string buf (Printf.sprintf " %s\n" n))
      (List.rev !generals)
  end;
  if !binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter
      (fun n -> Buffer.add_string buf (Printf.sprintf " %s\n" n))
      (List.rev !binaries)
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let to_file path model =
  let oc = open_out path in
  output_string oc (to_string model);
  close_out oc
