(** Persistent, content-addressed solve cache.

    On-disk layout (under the cache directory): an append-only [data]
    file of {!Entry}-encoded payloads and a text [index] whose header
    pins the store schema and compiler version.  The index is rewritten
    atomically (temp file + rename) by the single writer; every read
    validates extent bounds and an MD5 checksum, and any anomaly —
    truncated file, flipped bit, unknown schema — degrades to a cache
    miss with a counter, never an error or a wrong answer.  Eviction is
    LRU under a byte cap, applied by compacting the data file. *)

val schema : string
(** ["mpsoc-par/solve-cache/v1"].  Bumping it invalidates every existing
    store on first open. *)

val default_max_mb : int

type counters = {
  hits : int;  (** lookups answered with a validated payload *)
  misses : int;  (** lookups that found nothing usable *)
  evictions : int;  (** entries dropped by the LRU size cap *)
  corrupt : int;  (** entries dropped by integrity checks *)
  stale : int;  (** whole-store invalidations (schema/compiler mismatch) *)
  entries : int;  (** live entries *)
  bytes : int;  (** size of the data file *)
}

type t

val open_ : ?max_mb:int -> dir:string -> unit -> t
(** Open (creating if needed) the store rooted at [dir].  Loads and
    validates the index; a schema or compiler mismatch drops the old
    generation (counted in [stale]).  Raises {!Mpsoc_error.Error}
    ([Cli]/[Invalid_input]) only when [dir] cannot be created — file
    corruption never raises. *)

val lookup : ?engine:string -> t -> string -> Ilp.Branch_bound.solution option
(** Checksum-validated, decode-validated read; [None] on any anomaly
    (the offending entry is dropped and counted in [corrupt]).  An entry
    written by a different [engine] (default ["ilp"]) is refused like a
    decode failure — a heuristic answer never replays as an exact one. *)

val store : ?engine:string -> t -> string -> Ilp.Branch_bound.solution -> unit
(** Append the payload and persist the index.  Idempotent per key; all
    IO failures are swallowed (the cache is an accelerator).  Triggers
    LRU compaction when the data file exceeds the cap. *)

val flush : t -> unit
val close : t -> unit

val counters : t -> counters
val hit_rate : counters -> float
val pp_counters : Format.formatter -> counters -> unit

val salt : context:string -> string
(** Derive the key salt from the store schema and a caller context
    string (canonically the platform description), so structurally
    identical models solved for different machines never share an
    entry. *)

val entry_key : salt:string -> string -> string
(** [entry_key ~salt fingerprint] — the on-disk key for an in-memory
    {!Ilp.Memo.fingerprint}. *)

val backing : t -> salt:string -> Ilp.Memo.backing
(** Adapt the store into the disk tier consulted by
    {!Ilp.Memo.create}. *)
