(** Persistent, content-addressed solve cache (schema
    [mpsoc-par/solve-cache/v1]).

    Layout under the cache directory:
    - [data]: append-only concatenation of {!Entry}-encoded payloads;
    - [index]: one header line ([schema ocaml=<compiler>]) followed by one
      line per entry: [key offset length md5(payload) last_used].

    Durability discipline: a single writer appends payloads to [data] and
    rewrites [index] atomically (temp file + [rename]) after every store,
    so a crash at any point leaves either the previous index (new payload
    bytes are unreferenced garbage, reclaimed by the next compaction) or
    the new one — never a torn index.

    Load-time and read-time validation treat {e every} anomaly as a miss,
    never an error: a header whose schema or compiler version mismatches
    invalidates the whole store (counted in [stale]); a malformed index
    line, an out-of-bounds extent, a checksum mismatch or an undecodable
    payload drops that entry (counted in [corrupt]).

    Eviction is LRU under a byte cap: when [data] outgrows [max_bytes]
    the store compacts — most-recently-used entries are rewritten into a
    fresh data file until the cap is reached, the rest are dropped
    (counted in [evictions]).

    Concurrency: one mutex serializes all operations; the store is
    domain-safe within a process.  Cross-process sharing is best-effort —
    the atomic index rename means a concurrent reader sees a consistent
    (if stale) view and degrades to misses. *)

let schema = "mpsoc-par/solve-cache/v1"

(* the index header also pins the compiler: the payload codec is
   version-stable, but keeping runs from different compilers in separate
   generations costs only a refill and removes a whole class of doubt *)
let header () = schema ^ " ocaml=" ^ Sys.ocaml_version

let default_max_mb = 512

type counters = {
  hits : int;  (** lookups answered with a validated payload *)
  misses : int;  (** lookups that found nothing usable *)
  evictions : int;  (** entries dropped by the LRU size cap *)
  corrupt : int;  (** entries dropped by integrity checks *)
  stale : int;  (** whole-store invalidations (schema/compiler mismatch) *)
  entries : int;  (** live entries *)
  bytes : int;  (** size of the data file *)
}

type ientry = {
  mutable offset : int;
  length : int;
  sum : string;  (** raw 16-byte MD5 of the payload *)
  mutable last_used : int;  (** LRU clock value of the last touch *)
}

type t = {
  dir : string;
  max_bytes : int;
  mu : Mutex.t;
  index : (string, ientry) Hashtbl.t;
  mutable data_len : int;
  mutable clock : int;
  mutable data_oc : out_channel option;  (** the single append writer *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
  mutable n_corrupt : int;
  mutable n_stale : int;
}

let index_path t = Filename.concat t.dir "index"
let data_path t = Filename.concat t.dir "data"

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---- trace probes -------------------------------------------------- *)

let probe t what =
  if Trace.enabled () then begin
    Trace.instant ~cat:"cache" what;
    Trace.counter ~cat:"cache" "solve-cache"
      [
        ("hits", float_of_int t.n_hits);
        ("misses", float_of_int t.n_misses);
        ("evictions", float_of_int t.n_evictions);
        ("corrupt", float_of_int t.n_corrupt);
      ]
  end

(* ---- index persistence --------------------------------------------- *)

(* Atomic rewrite: temp file in the same directory, then rename.  All
   persistence failures are swallowed — the cache is an accelerator, a
   full disk must never fail the solve. *)
let write_index t =
  try
    let tmp = index_path t ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ());
        output_char oc '\n';
        Hashtbl.iter
          (fun key (e : ientry) ->
            Printf.fprintf oc "%s %d %d %s %d\n" key e.offset e.length
              (Digest.to_hex e.sum) e.last_used)
          t.index);
    Sys.rename tmp (index_path t)
  with _ -> ()

let parse_line line =
  match String.split_on_char ' ' line with
  | [ key; off; len; sum; used ] -> (
      match
        ( int_of_string_opt off,
          int_of_string_opt len,
          int_of_string_opt used )
      with
      | Some offset, Some length, Some last_used
        when offset >= 0 && length > 0 && String.length sum = 32 -> (
          match Digest.from_hex sum with
          | sum -> Some (key, { offset; length; sum; last_used })
          | exception _ -> None)
      | _ -> None)
  | _ -> None

let file_size path = try (Unix.stat path).Unix.st_size with _ -> 0

let load t =
  let ipath = index_path t in
  if not (Sys.file_exists ipath) then ()
  else
    match In_channel.with_open_bin ipath In_channel.input_lines with
    | exception _ -> t.n_stale <- t.n_stale + 1
    | [] -> ()
    | hdr :: lines when String.equal hdr (header ()) ->
        let dsize = file_size (data_path t) in
        List.iter
          (fun line ->
            if String.length line > 0 then
              match parse_line line with
              | Some (key, e) when e.offset + e.length <= dsize ->
                  Hashtbl.replace t.index key e;
                  t.clock <- max t.clock e.last_used
              | Some _ | None -> t.n_corrupt <- t.n_corrupt + 1)
          lines;
        t.data_len <- dsize
    | _hdr :: _ ->
        (* schema or compiler mismatch: full invalidation.  Drop both
           files so the new generation starts clean. *)
        t.n_stale <- t.n_stale + 1;
        (try Sys.remove ipath with _ -> ());
        (try Sys.remove (data_path t) with _ -> ())

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(max_mb = default_max_mb) ~dir () =
  (try mkdir_p dir with _ -> ());
  if not (try Sys.is_directory dir with _ -> false) then
    Mpsoc_error.raise_error ~phase:Mpsoc_error.Cli
      ~kind:Mpsoc_error.Invalid_input ~location:dir
      ~advice:"pass a writable directory to --cache-dir"
      (Printf.sprintf "cannot create solve-cache directory %S" dir);
  let t =
    {
      dir;
      max_bytes = max 1 max_mb * 1024 * 1024;
      mu = Mutex.create ();
      index = Hashtbl.create 256;
      data_len = 0;
      clock = 0;
      data_oc = None;
      n_hits = 0;
      n_misses = 0;
      n_evictions = 0;
      n_corrupt = 0;
      n_stale = 0;
    }
  in
  load t;
  t

(* ---- lookup -------------------------------------------------------- *)

let read_payload t (e : ientry) : string option =
  try
    In_channel.with_open_bin (data_path t) (fun ic ->
        In_channel.seek ic (Int64.of_int e.offset);
        match In_channel.really_input_string ic e.length with
        | Some s -> Some s
        | None -> None)
  with _ -> None

let drop_corrupt t key =
  Hashtbl.remove t.index key;
  t.n_corrupt <- t.n_corrupt + 1

let lookup ?(engine = "ilp") t key : Ilp.Branch_bound.solution option =
  locked t @@ fun () ->
  let r =
    match Hashtbl.find_opt t.index key with
    | None -> None
    | Some e -> (
        match read_payload t e with
        | None ->
            drop_corrupt t key;
            None
        | Some payload ->
            if not (String.equal (Digest.string payload) e.sum) then begin
              drop_corrupt t key;
              None
            end
            else
              match Entry.decode ~engine payload with
              | None ->
                  drop_corrupt t key;
                  None
              | Some sol ->
                  t.clock <- t.clock + 1;
                  e.last_used <- t.clock;
                  Some sol)
  in
  (match r with
  | Some _ ->
      t.n_hits <- t.n_hits + 1;
      probe t "disk.hit"
  | None ->
      t.n_misses <- t.n_misses + 1;
      probe t "disk.miss");
  r

(* ---- store + eviction ---------------------------------------------- *)

let data_channel t =
  match t.data_oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (data_path t)
      in
      t.data_oc <- Some oc;
      oc

let close_data t =
  Option.iter close_out_noerr t.data_oc;
  t.data_oc <- None

(* Rewrite [data] keeping the most-recently-used entries that fit the
   cap; everything else is evicted.  Assumes the lock is held. *)
let compact t =
  close_data t;
  let entries =
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.index []
    |> List.sort (fun (_, a) (_, b) -> compare b.last_used a.last_used)
  in
  let total = List.length entries in
  let kept, _ =
    List.fold_left
      (fun (kept, bytes) (key, e) ->
        if bytes + e.length <= t.max_bytes then ((key, e) :: kept, bytes + e.length)
        else (kept, bytes))
      ([], 0) entries
  in
  let kept = List.rev kept (* most-recently-used first again *) in
  t.n_evictions <- t.n_evictions + (total - List.length kept);
  let tmp = data_path t ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     let written =
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           List.filter_map
             (fun (key, e) ->
               match read_payload t e with
               | Some payload when String.equal (Digest.string payload) e.sum ->
                   let offset = pos_out oc in
                   output_string oc payload;
                   Some (key, { e with offset })
               | Some _ | None ->
                   t.n_corrupt <- t.n_corrupt + 1;
                   None)
             kept)
     in
     Sys.rename tmp (data_path t);
     Hashtbl.reset t.index;
     List.iter (fun (key, e) -> Hashtbl.replace t.index key e) written;
     t.data_len <- file_size (data_path t)
   with _ ->
     (* compaction failed: keep the oversized store rather than lose it *)
     (try Sys.remove tmp with _ -> ()));
  probe t "evict";
  write_index t

let store ?(engine = "ilp") t key (sol : Ilp.Branch_bound.solution) =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.index key) then begin
    (try
       let payload = Entry.encode ~engine sol in
       let oc = data_channel t in
       let offset = t.data_len in
       output_string oc payload;
       flush oc;
       t.data_len <- t.data_len + String.length payload;
       t.clock <- t.clock + 1;
       Hashtbl.replace t.index key
         {
           offset;
           length = String.length payload;
           sum = Digest.string payload;
           last_used = t.clock;
         }
     with _ -> ());
    if t.data_len > t.max_bytes then compact t else write_index t;
    probe t "disk.store"
  end

let flush t = locked t @@ fun () -> write_index t

let close t =
  locked t @@ fun () ->
  if t.data_len > t.max_bytes then compact t else write_index t;
  close_data t

let counters t =
  locked t @@ fun () ->
  {
    hits = t.n_hits;
    misses = t.n_misses;
    evictions = t.n_evictions;
    corrupt = t.n_corrupt;
    stale = t.n_stale;
    entries = Hashtbl.length t.index;
    bytes = t.data_len;
  }

let hit_rate (c : counters) =
  let h = float_of_int c.hits and m = float_of_int c.misses in
  if h +. m = 0. then 0. else h /. (h +. m)

let pp_counters ppf (c : counters) =
  Fmt.pf ppf
    "disk cache: %d hits / %d misses (%.0f%%), %d entries (%d KiB), %d \
     evicted, %d corrupt, %d stale"
    c.hits c.misses
    (100. *. hit_rate c)
    c.entries (c.bytes / 1024) c.evictions c.corrupt c.stale

(* ---- keys and the Memo backing ------------------------------------- *)

(* The in-memory fingerprint already covers the formulation, the solver
   options (including the work limit) and the warm starts; the salt folds
   in the store schema and the caller's context — canonically the
   platform description — so the same structural model solved against a
   different machine never false-shares an entry. *)
let entry_key ~salt fingerprint =
  Digest.to_hex (Digest.string (salt ^ "\x00" ^ fingerprint))

let salt ~context = Digest.string (schema ^ "\x00" ^ context)

(* The engine rides per call, not per backing: one memo (and one store)
   serves both the exact and the heuristic engine, whose keys are already
   separated by the fingerprint's engine salt — the entry's own engine
   tag is the belt to that suspender. *)
let backing t ~salt : Ilp.Memo.backing =
  {
    Ilp.Memo.lookup = (fun fp ~engine -> lookup ~engine t (entry_key ~salt fp));
    store = (fun fp ~engine sol -> store ~engine t (entry_key ~salt fp) sol);
  }
