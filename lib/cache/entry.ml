(** Binary codec for one persistent solve-cache payload: a
    {!Ilp.Branch_bound.solution}.

    The format is hand-rolled (no [Marshal]) so it is stable across
    compiler versions and auditable byte by byte: little-endian 64-bit
    integers, floats as their IEEE-754 bit patterns (so [0.] and [-0.]
    survive distinctly and NaN payloads are preserved — cached solutions
    must be {e bit}-identical to freshly solved ones, since downstream
    warm-start fingerprints hash them).  {!decode} is total: any
    truncated, over-long or out-of-range input yields [None], never an
    exception — the store maps that to a cache miss. *)

(* v3 added the producing engine's tag ("ilp" / "heuristic"), so a
   heuristic answer can never be replayed as an exact one even if the
   key salting were ever wrong; v2 added [pivots] and [cuts].  Older
   entries decode to [None] and count as misses, so a store written by
   an earlier build is silently re-populated rather than misread. *)
let version = 3

let status_tag = function
  | Ilp.Branch_bound.Optimal -> 0
  | Ilp.Branch_bound.Feasible -> 1
  | Ilp.Branch_bound.Infeasible -> 2
  | Ilp.Branch_bound.Unbounded -> 3
  | Ilp.Branch_bound.Limit -> 4

let encode ?(engine = "ilp") (s : Ilp.Branch_bound.solution) : string =
  let b = Buffer.create 256 in
  Buffer.add_uint8 b version;
  Buffer.add_uint8 b (min 255 (String.length engine));
  Buffer.add_string b (String.sub engine 0 (min 255 (String.length engine)));
  Buffer.add_uint8 b (status_tag s.Ilp.Branch_bound.status);
  Buffer.add_int64_le b (Int64.bits_of_float s.Ilp.Branch_bound.obj);
  Buffer.add_int64_le b (Int64.of_int s.Ilp.Branch_bound.nodes);
  Buffer.add_int64_le b (Int64.of_int s.Ilp.Branch_bound.pivots);
  Buffer.add_int64_le b (Int64.of_int s.Ilp.Branch_bound.cuts);
  let add_arr a =
    Buffer.add_int64_le b (Int64.of_int (Array.length a));
    Array.iter (fun f -> Buffer.add_int64_le b (Int64.bits_of_float f)) a
  in
  (match s.Ilp.Branch_bound.x with
  | None -> Buffer.add_uint8 b 0
  | Some a ->
      Buffer.add_uint8 b 1;
      add_arr a);
  Buffer.add_int64_le b (Int64.of_int (List.length s.Ilp.Branch_bound.incumbents));
  List.iter add_arr s.Ilp.Branch_bound.incumbents;
  Buffer.contents b

exception Malformed

let decode ?(engine = "ilp") (s : string) : Ilp.Branch_bound.solution option =
  let pos = ref 0 in
  let len = String.length s in
  let u8 () =
    if !pos >= len then raise Malformed;
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let i64 () =
    if !pos + 8 > len then raise Malformed;
    let v = String.get_int64_le s !pos in
    pos := !pos + 8;
    v
  in
  let int_ () =
    let v = i64 () in
    (* every encoded int fits a non-negative OCaml int *)
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      raise Malformed;
    Int64.to_int v
  in
  let float_ () = Int64.float_of_bits (i64 ()) in
  let arr () =
    let n = int_ () in
    (* each element needs 8 remaining bytes: rejects absurd lengths
       before allocating *)
    if n > (len - !pos) / 8 then raise Malformed;
    let a = Array.make n 0. in
    for i = 0 to n - 1 do
      a.(i) <- float_ ()
    done;
    a
  in
  match
    (if u8 () <> version then raise Malformed;
     (* engine mismatch is treated exactly like corruption: the entry is
        not an answer to this question *)
     let elen = u8 () in
     if !pos + elen > len then raise Malformed;
     let entry_engine = String.sub s !pos elen in
     pos := !pos + elen;
     if not (String.equal entry_engine engine) then raise Malformed;
     let status =
       match u8 () with
       | 0 -> Ilp.Branch_bound.Optimal
       | 1 -> Ilp.Branch_bound.Feasible
       | 2 -> Ilp.Branch_bound.Infeasible
       | 3 -> Ilp.Branch_bound.Unbounded
       | 4 -> Ilp.Branch_bound.Limit
       | _ -> raise Malformed
     in
     let obj = float_ () in
     let nodes = int_ () in
     let pivots = int_ () in
     let cuts = int_ () in
     let x = match u8 () with 0 -> None | 1 -> Some (arr ()) | _ -> raise Malformed in
     let n = int_ () in
     let incumbents = ref [] in
     for _ = 1 to n do
       incumbents := arr () :: !incumbents
     done;
     (* trailing garbage means the entry is not what we wrote *)
     if !pos <> len then raise Malformed;
     {
       Ilp.Branch_bound.status;
       x;
       obj;
       nodes;
       pivots;
       cuts;
       incumbents = List.rev !incumbents;
     })
  with
  | sol -> Some sol
  | exception Malformed -> None

(** Bit-exact structural equality (floats compared by bit pattern, so
    NaNs and signed zeros count; used by round-trip tests and available
    to integrity checks). *)
let equal (a : Ilp.Branch_bound.solution) (b : Ilp.Branch_bound.solution) =
  let feq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  let arr_eq x y =
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (feq v y.(i)) then ok := false) x;
        !ok)
  in
  a.Ilp.Branch_bound.status = b.Ilp.Branch_bound.status
  && feq a.Ilp.Branch_bound.obj b.Ilp.Branch_bound.obj
  && a.Ilp.Branch_bound.nodes = b.Ilp.Branch_bound.nodes
  && a.Ilp.Branch_bound.pivots = b.Ilp.Branch_bound.pivots
  && a.Ilp.Branch_bound.cuts = b.Ilp.Branch_bound.cuts
  && (match (a.Ilp.Branch_bound.x, b.Ilp.Branch_bound.x) with
     | None, None -> true
     | Some x, Some y -> arr_eq x y
     | _ -> false)
  && List.length a.Ilp.Branch_bound.incumbents
     = List.length b.Ilp.Branch_bound.incumbents
  && List.for_all2 arr_eq a.Ilp.Branch_bound.incumbents
       b.Ilp.Branch_bound.incumbents
