(** Binary codec for persistent solve-cache payloads
    ({!Ilp.Branch_bound.solution}).

    Hand-rolled, compiler-version-stable format: little-endian 64-bit
    ints, floats as IEEE-754 bit patterns.  Decoding a cached entry must
    reproduce the solved value {e bit}-exactly, because downstream solves
    fingerprint the incumbent trail — a single rounded float would change
    every subsequent cache key. *)

val version : int
(** Payload format version (independent of the store schema; bumped only
    if the byte layout changes). *)

val encode : ?engine:string -> Ilp.Branch_bound.solution -> string
(** [engine] (default ["ilp"]) tags the producing solve engine; it is
    stored in the payload and checked on decode, so a heuristic answer
    can never replay as an exact one. *)

val decode : ?engine:string -> string -> Ilp.Branch_bound.solution option
(** Total: truncated, corrupted or trailing-garbage input returns [None],
    never raises.  An entry written by a different [engine] (default
    ["ilp"]) also returns [None] — cross-engine replays are refused. *)

val equal : Ilp.Branch_bound.solution -> Ilp.Branch_bound.solution -> bool
(** Bit-exact structural equality (floats by bit pattern). *)
