(** Graphviz export of the AHTG: hierarchical nodes as clusters, simple
    nodes as boxes, dependence edges (variable + volume) as arrows,
    loop-carried conflicts in red — the picture of the paper's Figure 1,
    generated from real programs. *)

val to_string : Node.t -> string
val to_file : string -> Node.t -> unit
