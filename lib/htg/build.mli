(** AST + profile → Augmented Hierarchical Task Graph (paper Fig. 1).

    Mirrors the source hierarchy; annotates nodes with profiled work and
    execution counts; computes dependence and Comm-In/Out edges between
    direct children; detects DOALL loops; records loop-carried conflicts;
    and coalesces runs of cheap simple statements so each per-node ILP
    stays tractable. *)

(** Build the AHTG of an inlined program from its profile.  The root is
    the region node of [main]'s body; [max_children] bounds the child
    count of hierarchical nodes via coalescing (default 8). *)
val build : ?max_children:int -> Minic.Ast.program -> Interp.Profile.t -> Node.t
