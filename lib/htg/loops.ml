(** Loop classification: canonical induction variables and DOALL detection.

    A DOALL loop (no loop-carried dependence) exposes the paper's
    "loop iterations" granularity level: its iteration space can be split
    into blocks that the ILP maps to tasks on different processor classes.
    Detection is conservative — any doubtful access pattern keeps the loop
    sequential. *)

open Minic
module SS = Defuse.SS

(** The canonical induction variable of a [for] loop of the shape
    [for (i = lo; i < hi; i = i + c)] with [c > 0] (also accepts [<=]). *)
let canonical_induction (f : Ast.for_loop) : string option =
  match (f.finit, f.fcond, f.fstep) with
  | ( Some (Ast.LVar i1, _),
      Ast.Binop ((Ast.Lt | Ast.Le), Ast.Var i2, _),
      Some (Ast.LVar i3, Ast.Binop (Ast.Add, Ast.Var i4, Ast.IntLit c)) )
    when String.equal i1 i2 && String.equal i1 i3 && String.equal i1 i4
         && c > 0 ->
      Some i1
  | _ -> None

type verdict = Doall | Sequential of string

(* ordered-access scan state *)
type scan = {
  mutable scalar_first : (string * [ `Def | `Use ]) list;  (** reversed *)
  arr_writes : (string, Ast.expr list) Hashtbl.t;  (** first-dim index exprs *)
  arr_reads : (string, Ast.expr list) Hashtbl.t;
  mutable has_return : bool;
  locals : SS.t;  (** names private to the body (fresh per iteration) *)
  ind : string;  (** the loop's induction variable *)
}

let record_scalar st guarded name acc_kind =
  if (not (String.equal name st.ind)) && not (SS.mem name st.locals) then
    if not (List.mem_assoc name st.scalar_first) then
      (* a def under a conditional may not execute every iteration: treat it
         as a use (pessimistic) *)
      let k = if guarded && acc_kind = `Def then `Use else acc_kind in
      st.scalar_first <- (name, k) :: st.scalar_first

let record_arr tbl name first_idx =
  let cur = match Hashtbl.find_opt tbl name with Some l -> l | None -> [] in
  Hashtbl.replace tbl name (first_idx :: cur)

let rec scan_expr_reads st guarded (e : Ast.expr) =
  match e with
  | Ast.IntLit _ | Ast.FloatLit _ -> ()
  | Ast.Var n -> record_scalar st guarded n `Use
  | Ast.ArrRef (n, idxs) ->
      List.iter (scan_expr_reads st guarded) idxs;
      (match idxs with
      | first :: _ -> record_arr st.arr_reads n first
      | [] -> ());
      (* reading the array object *)
      ()
  | Ast.Unop (_, e1) -> scan_expr_reads st guarded e1
  | Ast.Binop (_, e1, e2) ->
      scan_expr_reads st guarded e1;
      scan_expr_reads st guarded e2
  | Ast.Call (_, args) -> List.iter (scan_expr_reads st guarded) args

let scan_assign st guarded lhs rhs =
  scan_expr_reads st guarded rhs;
  match lhs with
  | Ast.LVar n -> record_scalar st guarded n `Def
  | Ast.LArr (n, idxs) ->
      List.iter (scan_expr_reads st guarded) idxs;
      (match idxs with
      | first :: _ -> record_arr st.arr_writes n first
      | [] -> ())

let rec scan_stmt st guarded (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (lhs, rhs) -> scan_assign st guarded lhs rhs
  | Ast.Decl d -> (
      (* declarations inside the body are per-iteration private and are in
         [st.locals]; still scan the initializer's reads *)
      match d.dinit with
      | Some e -> scan_expr_reads st guarded e
      | None -> ())
  | Ast.If (c, b1, b2) ->
      scan_expr_reads st guarded c;
      List.iter (scan_stmt st true) b1;
      List.iter (scan_stmt st true) b2
  | Ast.While (c, b) ->
      scan_expr_reads st guarded c;
      (* iteration count unknown: body effects are effectively guarded *)
      List.iter (scan_stmt st true) b
  | Ast.For { finit; fcond; fstep; fbody } ->
      Option.iter (fun (lhs, e) -> scan_assign st guarded lhs e) finit;
      scan_expr_reads st guarded fcond;
      List.iter (scan_stmt st guarded) fbody;
      Option.iter (fun (lhs, e) -> scan_assign st guarded lhs e) fstep
  | Ast.Return _ -> st.has_return <- true
  | Ast.ExprStmt e -> scan_expr_reads st guarded e
  | Ast.Block b -> List.iter (scan_stmt st guarded) b

let is_ind_var ind (e : Ast.expr) =
  match e with Ast.Var n -> String.equal n ind | _ -> false

(** Classify a canonical [for] loop body with induction variable [ind]. *)
let classify_body ~ind (body : Ast.block) : verdict =
  let st =
    {
      scalar_first = [];
      arr_writes = Hashtbl.create 8;
      arr_reads = Hashtbl.create 8;
      has_return = false;
      locals = Defuse.block_locals body;
      ind;
    }
  in
  List.iter (scan_stmt st false) body;
  if st.has_return then Sequential "early exit (return in body)"
  else begin
    (* scalars: the first access per iteration must be an unconditional
       definition (making the scalar privatizable) *)
    let scalar_bad =
      List.find_opt (fun (_, k) -> k = `Use) (List.rev st.scalar_first)
    in
    match scalar_bad with
    | Some (name, _) ->
        Sequential
          (Printf.sprintf "scalar %s is live across iterations" name)
    | None ->
        (* arrays: every write's leading index must be the induction
           variable; arrays both read and written additionally need all
           reads at the induction variable *)
        let bad = ref None in
        Hashtbl.iter
          (fun name widxs ->
            (* arrays declared inside the body are per-iteration private *)
            if Option.is_none !bad && not (SS.mem name st.locals) then
              if not (List.for_all (is_ind_var ind) widxs) then
                bad :=
                  Some
                    (Printf.sprintf
                       "array %s is written at a non-induction index" name)
              else
                match Hashtbl.find_opt st.arr_reads name with
                | None -> ()
                | Some ridxs ->
                    if not (List.for_all (is_ind_var ind) ridxs) then
                      bad :=
                        Some
                          (Printf.sprintf
                             "array %s is read at an index other than the \
                              written one"
                             name))
          st.arr_writes;
        (match !bad with Some r -> Sequential r | None -> Doall)
  end

(** Classify a [for] loop.  Besides the body rules, the loop bound must be
    loop-invariant: a body that writes a variable read by the condition
    changes the trip count mid-flight, which iteration splitting cannot
    honour. *)
let classify (f : Ast.for_loop) : verdict =
  match canonical_induction f with
  | None -> Sequential "non-canonical loop header"
  | Some ind -> (
      let cond_uses = SS.remove ind (Defuse.expr_uses f.fcond) in
      let body_defs = (Defuse.block_all f.fbody).Defuse.defs in
      match SS.choose_opt (SS.inter cond_uses body_defs) with
      | Some v ->
          Sequential (Printf.sprintf "loop bound %s is modified in the body" v)
      | None -> classify_body ~ind f.fbody)

let scan_of_body ~ind (body : Ast.block) =
  let st =
    {
      scalar_first = [];
      arr_writes = Hashtbl.create 8;
      arr_reads = Hashtbl.create 8;
      has_return = false;
      locals = Defuse.block_locals body;
      ind = (match ind with Some i -> i | None -> "");
      (* "" never matches a real identifier *)
    }
  in
  List.iter (scan_stmt st false) body;
  st

(** Arrays whose every access (read and write) in the body leads with the
    induction variable — distinct iterations touch distinct rows, so only
    a row-sized slice communicates per iteration. *)
let elementwise_arrays ~ind (body : Ast.block) : SS.t =
  match ind with
  | None -> SS.empty
  | Some _ ->
      let st = scan_of_body ~ind body in
      let ok tbl name =
        match Hashtbl.find_opt tbl name with
        | None -> true
        | Some idxs -> List.for_all (is_ind_var st.ind) idxs
      in
      let all = Hashtbl.create 8 in
      Hashtbl.iter (fun n _ -> Hashtbl.replace all n ()) st.arr_writes;
      Hashtbl.iter (fun n _ -> Hashtbl.replace all n ()) st.arr_reads;
      Hashtbl.fold
        (fun n () acc ->
          if ok st.arr_writes n && ok st.arr_reads n then SS.add n acc else acc)
        all SS.empty

(** Variables carrying a dependence from one iteration to the next; the
    statements touching them must stay in one task when the loop body is
    partitioned.  [ind = None] means a non-canonical loop: every variable
    both written and read is assumed carried. *)
let carried_vars ~ind (body : Ast.block) : SS.t =
  let st = scan_of_body ~ind body in
  let du = Defuse.block_all body in
  let external_rw =
    SS.diff (SS.inter du.Defuse.defs du.Defuse.uses) st.locals
  in
  let external_rw =
    match ind with Some i -> SS.remove i external_rw | None -> external_rw
  in
  match ind with
  | None -> external_rw
  | Some _ ->
      let carried_scalar name =
        match List.assoc_opt name (List.rev st.scalar_first) with
        | Some `Use -> true  (* read before (unconditional) write *)
        | Some `Def -> false  (* privatizable *)
        | None -> false
      in
      let elementwise = elementwise_arrays ~ind body in
      SS.filter
        (fun v ->
          let is_array =
            Hashtbl.mem st.arr_writes v || Hashtbl.mem st.arr_reads v
          in
          if is_array then not (SS.mem v elementwise) else carried_scalar v)
        external_rw
