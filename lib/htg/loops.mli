(** Loop classification: canonical induction variables and DOALL
    detection.  Conservative — any doubtful access pattern keeps the loop
    sequential. *)

open Minic
module SS = Defuse.SS

(** The induction variable of a loop shaped
    [for (i = lo; i < hi; i = i + c)] with [c > 0] (also accepts [<=]). *)
val canonical_induction : Ast.for_loop -> string option

type verdict = Doall | Sequential of string  (** reason *)

(** Classify a canonical loop body: DOALL iff every scalar is privatizable
    (first access per iteration is an unconditional definition), every
    written array leads with the induction variable, and arrays both read
    and written are accessed only at the induction index. *)
val classify_body : ind:string -> Ast.block -> verdict

(** Classify a [for] loop (non-canonical headers are sequential). *)
val classify : Ast.for_loop -> verdict

(** Arrays whose every access in the body leads with the induction
    variable: distinct iterations touch distinct rows, so only a row-sized
    slice communicates per iteration. *)
val elementwise_arrays : ind:string option -> Ast.block -> SS.t

(** Variables carrying a dependence between iterations; statements
    touching them must share a task when the body is partitioned.
    [ind = None] (non-canonical loop): every variable both written and
    read is assumed carried. *)
val carried_vars : ind:string option -> Ast.block -> SS.t
