(** AST + profile → Augmented Hierarchical Task Graph (paper Fig. 1).

    The builder mirrors the source hierarchy, annotates every node with its
    profiled work and execution count, computes data-flow/ordering edges
    between the direct children of each hierarchical node (including the
    Communication-In/Out endpoints), detects DOALL loops, records
    loop-carried conflicts, and coalesces long runs of cheap simple
    statements so each per-node ILP stays tractable — the "granularity
    control" the paper's cost model provides. *)

open Minic
module SS = Defuse.SS

type var_size = { bytes : int; first_dim : int (* 1 for scalars *) }

type ctx = {
  profile : Interp.Profile.t;
  sizes : (string, var_size) Hashtbl.t;
  mutable next_id : int;
  max_children : int;
}

let scalar_bytes = 4

let size_of_ty = function
  | Ast.TScalar _ -> { bytes = scalar_bytes; first_dim = 1 }
  | Ast.TArray (_, dims) ->
      {
        bytes = scalar_bytes * List.fold_left ( * ) 1 dims;
        first_dim = (match dims with d :: _ -> d | [] -> 1);
      }
  | Ast.TVoid -> { bytes = 0; first_dim = 1 }

let collect_sizes (prog : Ast.program) =
  let sizes = Hashtbl.create 64 in
  List.iter
    (fun (d : Ast.decl) -> Hashtbl.replace sizes d.dname (size_of_ty d.dty))
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      List.iter
        (fun (p : Ast.param) -> Hashtbl.replace sizes p.pname (size_of_ty p.pty))
        f.fparams;
      ignore
        (Ast.fold_stmts
           (fun () (s : Ast.stmt) ->
             match s.sdesc with
             | Ast.Decl d -> Hashtbl.replace sizes d.dname (size_of_ty d.dty)
             | _ -> ())
           () f.fbody))
    prog.funcs;
  sizes

let var_size ctx v =
  match Hashtbl.find_opt ctx.sizes v with
  | Some s -> s
  | None -> { bytes = scalar_bytes; first_dim = 1 }

let fresh ctx =
  let n = ctx.next_id in
  ctx.next_id <- n + 1;
  n

let countf ctx sid = float_of_int (Interp.Profile.count ctx.profile sid)
let workf ctx sid = Interp.Profile.work ctx.profile sid

(* ------------------------------------------------------------------ *)
(* Edge computation                                                    *)
(* ------------------------------------------------------------------ *)

(** Information about the hierarchical node whose children we connect. *)
type edge_env = {
  entries : float;  (** executions of the enclosing node *)
  elementwise : SS.t;  (** arrays accessed row-wise by the loop induction *)
  locals : SS.t;  (** names declared by direct Decl children: no Out edge *)
}

let transfers_between (a : Node.t) (b : Node.t) =
  Float.min a.Node.exec_count b.Node.exec_count

(** Total bytes moved for variable [v] on a child-to-child edge. *)
let edge_bytes ctx env ~src ~dst v =
  let s = var_size ctx v in
  if s.first_dim = 1 && s.bytes = scalar_bytes then
    (* scalar: one word per transfer, transferred each co-execution *)
    int_of_float (float_of_int scalar_bytes *. transfers_between src dst)
  else if SS.mem v env.elementwise then
    (* row slice per iteration *)
    let row = s.bytes / max 1 s.first_dim in
    int_of_float (float_of_int row *. transfers_between src dst)
  else
    (* whole array, once per entry of the enclosing node *)
    int_of_float (float_of_int s.bytes *. env.entries)

let boundary_bytes ctx env v =
  let s = var_size ctx v in
  int_of_float (float_of_int s.bytes *. env.entries)

(** Dependence edges among ordered children, plus Comm-In/Out edges.
    Last-writer-kills semantics for flow edges; anti and output
    dependences become 0-byte Order edges. *)
let compute_edges ctx env (children : Node.t array) : Node.edge list =
  let k = Array.length children in
  let edges = ref [] in
  let add e = edges := e :: !edges in
  (* flow + anti + output between pairs *)
  for j = 0 to k - 1 do
    let cj = children.(j) in
    (* for each use of cj, find the last earlier def *)
    SS.iter
      (fun v ->
        let found = ref false in
        let i = ref (j - 1) in
        while (not !found) && !i >= 0 do
          if SS.mem v children.(!i).Node.defs then begin
            found := true;
            add
              {
                Node.src = Node.EChild !i;
                dst = Node.EChild j;
                kind = Node.Flow;
                var = v;
                bytes = edge_bytes ctx env ~src:children.(!i) ~dst:cj v;
              }
          end;
          decr i
        done;
        if not !found then
          (* live-in: arrives through the Communication-In node *)
          add
            {
              Node.src = Node.EIn;
              dst = Node.EChild j;
              kind = Node.Flow;
              var = v;
              bytes = boundary_bytes ctx env v;
            })
      cj.Node.uses;
    (* anti-dependence: cj defines v, an earlier child uses v with no def
       in between *)
    SS.iter
      (fun v ->
        let blocked = ref false in
        for i = j - 1 downto 0 do
          if not !blocked then begin
            if SS.mem v children.(i).Node.defs then blocked := true
            else if SS.mem v children.(i).Node.uses then begin
              add
                {
                  Node.src = Node.EChild i;
                  dst = Node.EChild j;
                  kind = Node.Order;
                  var = v;
                  bytes = 0;
                }
            end
          end
        done;
        (* output dependence on the nearest earlier def *)
        let found = ref false in
        let i = ref (j - 1) in
        while (not !found) && !i >= 0 do
          if SS.mem v children.(!i).Node.defs then begin
            found := true;
            add
              {
                Node.src = Node.EChild !i;
                dst = Node.EChild j;
                kind = Node.Order;
                var = v;
                bytes = 0;
              }
          end;
          decr i
        done)
      cj.Node.defs
  done;
  (* live-out: last def of each externally visible variable *)
  let emitted = ref SS.empty in
  for i = k - 1 downto 0 do
    SS.iter
      (fun v ->
        if (not (SS.mem v !emitted)) && not (SS.mem v env.locals) then begin
          emitted := SS.add v !emitted;
          add
            {
              Node.src = Node.EChild i;
              dst = Node.EOut;
              kind = Node.Flow;
              var = v;
              bytes = boundary_bytes ctx env v;
            }
        end)
      children.(i).Node.defs
  done;
  List.rev !edges

(* ------------------------------------------------------------------ *)
(* Coalescing                                                          *)
(* ------------------------------------------------------------------ *)

let merge_simple ctx (a : Node.t) (b : Node.t) : Node.t =
  let sids_a = match a.Node.kind with Node.Simple l -> l | _ -> assert false in
  let sids_b = match b.Node.kind with Node.Simple l -> l | _ -> assert false in
  {
    Node.id = fresh ctx;
    kind = Node.Simple (sids_a @ sids_b);
    label = a.Node.label;
    exec_count = Float.max a.Node.exec_count b.Node.exec_count;
    total_cycles = a.Node.total_cycles +. b.Node.total_cycles;
    children = [||];
    edges = [];
    conflicts = [];
    defs = SS.union a.Node.defs b.Node.defs;
    uses = SS.union a.Node.uses b.Node.uses;
    live_in_bytes = 0;
    live_out_bytes = 0;
    stmts = a.Node.stmts @ b.Node.stmts;
  }

(** Reduce the child list below [ctx.max_children] by repeatedly merging
    the cheapest adjacent pair of Simple nodes (sequential composition is
    always semantics-preserving). *)
let coalesce ctx (children : Node.t list) : Node.t list =
  let arr = ref (Array.of_list children) in
  let progress = ref true in
  while Array.length !arr > ctx.max_children && !progress do
    let a = !arr in
    let best = ref (-1) in
    let best_cost = ref infinity in
    for i = 0 to Array.length a - 2 do
      match (a.(i).Node.kind, a.(i + 1).Node.kind) with
      | Node.Simple _, Node.Simple _ ->
          let c = a.(i).Node.total_cycles +. a.(i + 1).Node.total_cycles in
          if c < !best_cost then begin
            best_cost := c;
            best := i
          end
      | _ -> ()
    done;
    if !best < 0 then progress := false
    else begin
      let i = !best in
      let merged = merge_simple ctx a.(i) a.(i + 1) in
      arr :=
        Array.init
          (Array.length a - 1)
          (fun k -> if k < i then a.(k) else if k = i then merged else a.(k + 1))
    end
  done;
  Array.to_list !arr

(* ------------------------------------------------------------------ *)
(* Conversion                                                          *)
(* ------------------------------------------------------------------ *)

let mk_simple ctx (s : Ast.stmt) label : Node.t =
  let du = Defuse.stmt_external s in
  {
    Node.id = fresh ctx;
    kind = Node.Simple [ s.sid ];
    label;
    exec_count = countf ctx s.sid;
    total_cycles = workf ctx s.sid;
    children = [||];
    edges = [];
    conflicts = [];
    defs = du.Defuse.defs;
    uses = du.Defuse.uses;
    live_in_bytes = 0;
    live_out_bytes = 0;
    stmts = [ s ];
  }

let sum_in_out edges =
  List.fold_left
    (fun (i, o) (e : Node.edge) ->
      match (e.Node.src, e.Node.dst) with
      | Node.EIn, _ -> (i + e.Node.bytes, o)
      | _, Node.EOut -> (i, o + e.Node.bytes)
      | _ -> (i, o))
    (0, 0) edges

let region_label = function
  | [] -> "region"
  | (s : Ast.stmt) :: _ -> Printf.sprintf "region@%d" s.sloc.Loc.line

(** Child pair conflicts induced by loop-carried variables. *)
let conflicts_of_carried (children : Node.t array) (carried : SS.t) :
    (int * int) list =
  if SS.is_empty carried then []
  else begin
    let touches i v =
      SS.mem v children.(i).Node.defs || SS.mem v children.(i).Node.uses
    in
    let pairs = ref [] in
    SS.iter
      (fun v ->
        let idxs =
          List.filter (fun i -> touches i v)
            (List.init (Array.length children) (fun i -> i))
        in
        let rec all_pairs = function
          | [] | [ _ ] -> ()
          | a :: (b :: _ as rest) ->
              if not (List.mem (a, b) !pairs) then pairs := (a, b) :: !pairs;
              all_pairs rest
        in
        all_pairs idxs)
      carried;
    List.rev !pairs
  end

let rec conv_stmt ctx (s : Ast.stmt) : Node.t option =
  match s.sdesc with
  | Ast.Assign _ | Ast.Return _ | Ast.ExprStmt _ | Ast.Decl _ ->
      Some (mk_simple ctx s (Printf.sprintf "stmt@%d" s.sloc.Loc.line))
  | Ast.Block b -> (
      match conv_region ctx ~label:(region_label b) ~entries:(countf ctx s.sid) b with
      | Some n -> Some n
      | None -> None)
  | Ast.If (_, b1, b2) -> conv_branch ctx s b1 b2
  | Ast.For f -> Some (conv_loop ctx s (Loops.canonical_induction f) f.fbody)
  | Ast.While (_, body) -> Some (conv_loop ctx s None body)

(** A region (block, branch arm): coalesced children + edges.  Returns
    [None] for empty regions and collapses singleton regions. *)
and conv_region ctx ~label ~entries (b : Ast.block) : Node.t option =
  let children = List.filter_map (conv_stmt ctx) b in
  match children with
  | [] -> None
  | [ only ] -> Some only
  | _ ->
      let children = Array.of_list (coalesce ctx children) in
      let env =
        {
          entries = Float.max entries 1.;
          elementwise = SS.empty;
          locals = Defuse.block_locals b;
        }
      in
      let env = { env with locals = direct_decl_names b } in
      let edges = compute_edges ctx env children in
      let live_in, live_out = sum_in_out edges in
      let du_all =
        Array.fold_left
          (fun acc c ->
            Defuse.union acc { Defuse.defs = c.Node.defs; uses = c.Node.uses })
          Defuse.empty children
      in
      let locals = Defuse.block_locals b in
      Some
        {
          Node.id = fresh ctx;
          kind = Node.Region;
          label;
          exec_count = Float.max entries 1.;
          total_cycles =
            Array.fold_left (fun acc c -> acc +. c.Node.total_cycles) 0. children;
          children;
          edges;
          conflicts = [];
          defs = SS.diff du_all.Defuse.defs locals;
          uses = SS.diff du_all.Defuse.uses locals;
          live_in_bytes = live_in;
          live_out_bytes = live_out;
          stmts = b;
        }

(** Names declared by direct [Decl] children of the block (these never
    escape, so they get no Comm-Out edge). *)
and direct_decl_names (b : Ast.block) : SS.t =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.sdesc with Ast.Decl d -> SS.add d.Ast.dname acc | _ -> acc)
    SS.empty b

and conv_branch ctx (s : Ast.stmt) b1 b2 : Node.t option =
  let cond = mk_simple ctx s (Printf.sprintf "if@%d" s.sloc.Loc.line) in
  let arm label blk =
    conv_region ctx ~label ~entries:(countf ctx s.sid) blk
  in
  let arms =
    List.filter_map Fun.id
      [ arm (Printf.sprintf "then@%d" s.sloc.Loc.line) b1;
        arm (Printf.sprintf "else@%d" s.sloc.Loc.line) b2 ]
  in
  match arms with
  | [] -> Some cond  (* if with two empty arms: just the condition cost *)
  | _ ->
      let children = Array.of_list (cond :: arms) in
      let locals = SS.union (Defuse.block_locals b1) (Defuse.block_locals b2) in
      let env =
        {
          entries = Float.max (countf ctx s.sid) 1.;
          elementwise = SS.empty;
          locals;
        }
      in
      let edges = compute_edges ctx env children in
      (* branch arms never overlap at runtime: serialize cond -> arms *)
      let order_edges =
        List.concat
          (List.mapi
             (fun i _ ->
               let this = i + 1 in
               let prev = i in
               [
                 {
                   Node.src = Node.EChild prev;
                   dst = Node.EChild this;
                   kind = Node.Order;
                   var = "<control>";
                   bytes = 0;
                 };
               ])
             arms)
      in
      let edges = edges @ order_edges in
      let live_in, live_out = sum_in_out edges in
      let du_all =
        Array.fold_left
          (fun acc c ->
            Defuse.union acc { Defuse.defs = c.Node.defs; uses = c.Node.uses })
          Defuse.empty children
      in
      Some
        {
          Node.id = fresh ctx;
          kind = Node.Branch s.sid;
          label = Printf.sprintf "if@%d" s.sloc.Loc.line;
          exec_count = Float.max (countf ctx s.sid) 1.;
          total_cycles =
            Array.fold_left (fun acc c -> acc +. c.Node.total_cycles) 0. children;
          children;
          edges;
          conflicts = [];
          defs = SS.diff du_all.Defuse.defs locals;
          uses = SS.diff du_all.Defuse.uses locals;
          live_in_bytes = live_in;
          live_out_bytes = live_out;
          stmts = [ s ];
        }

and conv_loop ctx (s : Ast.stmt) (ind : string option) (body : Ast.block) :
    Node.t =
  let entries = Float.max (countf ctx s.sid) 1. in
  let children = List.filter_map (conv_stmt ctx) body in
  let children = Array.of_list (coalesce ctx children) in
  let iters_total =
    Array.fold_left (fun acc c -> Float.max acc c.Node.exec_count) 0. children
  in
  let iters_per_entry = if entries > 0. then iters_total /. entries else 0. in
  let doall =
    match s.sdesc with
    | Ast.For f -> (
        match Loops.classify f with Loops.Doall -> iters_per_entry >= 2. | _ -> false)
    | _ -> false
  in
  let elementwise = Loops.elementwise_arrays ~ind body in
  let carried = Loops.carried_vars ~ind body in
  let env =
    {
      entries;
      elementwise;
      locals = SS.union (direct_decl_names body) (Defuse.block_locals body);
    }
  in
  (* the loop header's own reads (condition/bounds) also arrive via In *)
  let edges = compute_edges ctx env children in
  let conflicts = conflicts_of_carried children carried in
  let live_in, live_out = sum_in_out edges in
  let du_all =
    Array.fold_left
      (fun acc c ->
        Defuse.union acc { Defuse.defs = c.Node.defs; uses = c.Node.uses })
      (Defuse.stmt_own s) children
  in
  let locals = Defuse.block_locals body in
  let header_work = workf ctx s.sid in
  {
    Node.id = fresh ctx;
    kind = Node.Loop { sid = s.sid; doall; iters_per_entry };
    label =
      Printf.sprintf "%s@%d"
        (match s.sdesc with Ast.While _ -> "while" | _ -> "for")
        s.sloc.Loc.line;
    exec_count = entries;
    total_cycles =
      header_work
      +. Array.fold_left (fun acc c -> acc +. c.Node.total_cycles) 0. children;
    children;
    edges;
    conflicts;
    defs = SS.diff du_all.Defuse.defs locals;
    uses = SS.diff du_all.Defuse.uses locals;
    live_in_bytes = live_in;
    live_out_bytes = live_out;
    stmts = [ s ];
  }

(** Build the AHTG of an inlined program from its profile.  The root is the
    region node of [main]'s body. *)
let build ?(max_children = 8) (prog : Ast.program) (profile : Interp.Profile.t)
    : Node.t =
  let main =
    match Ast.find_func prog "main" with
    | Some m -> m
    | None ->
        Mpsoc_error.raise_error ~location:"main" ~phase:Mpsoc_error.Graph
          ~kind:Mpsoc_error.Invalid_input
          ~advice:"the program must define a main() function"
          "no main function to build the task graph from"
  in
  let sizes = Trace.span ~cat:"htg" "defuse.sizes" (fun () -> collect_sizes prog) in
  let ctx = { profile; sizes; next_id = 0; max_children } in
  match Trace.span ~cat:"htg" "convert" (fun () ->
            conv_region ctx ~label:"main" ~entries:1. main.fbody)
  with
  | Some root when Node.is_hierarchical root ->
      (* the root covers main's whole body, even when singleton collapse
         picked one statement's node as the region *)
      { root with Node.stmts = main.fbody }
  | Some only ->
      (* main with a single statement: wrap so the root is hierarchical *)
      {
        Node.id = fresh ctx;
        kind = Node.Region;
        label = "main";
        exec_count = 1.;
        total_cycles = only.Node.total_cycles;
        children = [| only |];
        edges = [];
        conflicts = [];
        defs = only.Node.defs;
        uses = only.Node.uses;
        live_in_bytes = only.Node.live_in_bytes;
        live_out_bytes = only.Node.live_out_bytes;
        stmts = main.fbody;
      }
  | None ->
      {
        Node.id = fresh ctx;
        kind = Node.Region;
        label = "main";
        exec_count = 1.;
        total_cycles = 0.;
        children = [||];
        edges = [];
        conflicts = [];
        defs = SS.empty;
        uses = SS.empty;
        live_in_bytes = 0;
        live_out_bytes = 0;
        stmts = [];
      }
