(** Augmented Hierarchical Task Graph nodes (paper Section III-A): the
    hierarchy mirrors the program structure; every node carries profiled
    work, execution counts and its external def/use footprint; edges
    between the children of a hierarchical node carry the communicated
    variable and byte volume; Communication-In/Out are implicit endpoints
    of each hierarchical node. *)

module SS = Defuse.SS

type endpoint = EIn | EChild of int | EOut

type edge_kind =
  | Flow  (** true data flow: bytes move if endpoints land in different tasks *)
  | Order  (** anti/output dependence: ordering only, no payload *)

type edge = {
  src : endpoint;
  dst : endpoint;
  kind : edge_kind;
  var : string;
  bytes : int;
      (** payload bytes over the whole program run, if the endpoints land
          in different tasks *)
}

type kind =
  | Simple of int list  (** statement ids (coalesced run of statements) *)
  | Loop of { sid : int; doall : bool; iters_per_entry : float }
  | Branch of int  (** if statement id; children = [cond; then; else] *)
  | Region  (** block / inlined function body / branch arm *)

type t = {
  id : int;
  kind : kind;
  label : string;
  exec_count : float;  (** entries over the whole program run *)
  total_cycles : float;  (** subtree work, abstract cycles, whole program *)
  children : t array;  (** in program order; empty for Simple *)
  edges : edge list;  (** dependences among [children] and In/Out *)
  conflicts : (int * int) list;
      (** child pairs that must share a task (loop-carried recurrences) *)
  defs : SS.t;
  uses : SS.t;
  live_in_bytes : int;  (** total Comm-In volume over the program run *)
  live_out_bytes : int;  (** total Comm-Out volume over the program run *)
  stmts : Minic.Ast.stmt list;
      (** source statements the node covers, in program order (coalesced
          statements for Simple, the loop/if statement for Loop/Branch,
          the block's statements for Region) — what an execution runtime
          interprets when it runs the node *)
}

val is_hierarchical : t -> bool
val is_doall : t -> bool

(** Work in abstract cycles per single entry of the node. *)
val cycles_per_entry : t -> float

(** Total sequential time (us, whole program) on class [cls]. *)
val seq_time_us : Platform.Desc.t -> cls:int -> t -> float

val kind_str : t -> string
val endpoint_str : endpoint -> string

(** Nodes in the subtree. *)
val size : t -> int

(** All hierarchical nodes, bottom-up (children before parents). *)
val hierarchical_bottom_up : t -> t list

val pp : ?indent:int -> Format.formatter -> t -> unit
