(** Def/use analysis for Mini-C statements.  Arrays are treated as single
    objects (a store to [a[i]] defines [a]; reading [a[j]] uses [a]). *)

open Minic
module SS : Set.S with type elt = string

type t = { defs : SS.t; uses : SS.t }

val empty : t
val union : t -> t -> t
val expr_uses : Ast.expr -> SS.t

(** Def/use of the statement's own expressions only (no nested bodies). *)
val stmt_own : Ast.stmt -> t

(** Def/use of a whole statement subtree. *)
val stmt_all : Ast.stmt -> t

val block_all : Ast.block -> t

(** Names declared inside the subtree (invisible to siblings). *)
val stmt_locals : Ast.stmt -> SS.t

val block_locals : Ast.block -> SS.t

(** [stmt_all] minus names declared within the statement: the footprint
    visible to sibling statements. *)
val stmt_external : Ast.stmt -> t
