(** Def/use analysis for Mini-C statements.

    Arrays are treated as single objects (a store to [a\[i\]] defines [a],
    a read of [a\[j\]] uses [a]) — the standard conservative choice for
    task-level dependence analysis; element-wise refinement for DOALL loop
    classification lives in {!Loops}. *)

open Minic
module SS = Set.Make (String)

type t = { defs : SS.t; uses : SS.t }

let empty = { defs = SS.empty; uses = SS.empty }
let union a b = { defs = SS.union a.defs b.defs; uses = SS.union a.uses b.uses }

let rec expr_uses (e : Ast.expr) : SS.t =
  match e with
  | Ast.IntLit _ | Ast.FloatLit _ -> SS.empty
  | Ast.Var n -> SS.singleton n
  | Ast.ArrRef (n, idxs) ->
      List.fold_left
        (fun acc i -> SS.union acc (expr_uses i))
        (SS.singleton n) idxs
  | Ast.Unop (_, e1) -> expr_uses e1
  | Ast.Binop (_, e1, e2) -> SS.union (expr_uses e1) (expr_uses e2)
  | Ast.Call (_, args) ->
      List.fold_left (fun acc a -> SS.union acc (expr_uses a)) SS.empty args

let lhs_def = function
  | Ast.LVar n -> (SS.singleton n, SS.empty)
  | Ast.LArr (n, idxs) ->
      (* indices are read; the array is (partially) written, hence both a
         def and — conservatively for partial writes — a use *)
      ( SS.singleton n,
        List.fold_left (fun acc i -> SS.union acc (expr_uses i)) SS.empty idxs )

(** Def/use of the statement's own expressions only (no nested bodies). *)
let stmt_own (s : Ast.stmt) : t =
  match s.sdesc with
  | Ast.Assign (lhs, e) ->
      let defs, idx_uses = lhs_def lhs in
      { defs; uses = SS.union idx_uses (expr_uses e) }
  | Ast.If (c, _, _) | Ast.While (c, _) -> { defs = SS.empty; uses = expr_uses c }
  | Ast.For { finit; fcond; fstep; _ } ->
      let of_opt = function
        | None -> empty
        | Some (lhs, e) ->
            let defs, idx_uses = lhs_def lhs in
            { defs; uses = SS.union idx_uses (expr_uses e) }
      in
      union (of_opt finit)
        (union { defs = SS.empty; uses = expr_uses fcond } (of_opt fstep))
  | Ast.Return (Some e) -> { defs = SS.empty; uses = expr_uses e }
  | Ast.Return None -> empty
  | Ast.ExprStmt e -> { defs = SS.empty; uses = expr_uses e }
  | Ast.Decl d -> (
      match d.dinit with
      | Some e -> { defs = SS.singleton d.dname; uses = expr_uses e }
      | None -> { defs = SS.singleton d.dname; uses = SS.empty })
  | Ast.Block _ -> empty

(** Def/use of a whole statement subtree. *)
let rec stmt_all (s : Ast.stmt) : t =
  let own = stmt_own s in
  match s.sdesc with
  | Ast.If (_, b1, b2) -> union own (union (block_all b1) (block_all b2))
  | Ast.While (_, b) | Ast.Block b -> union own (block_all b)
  | Ast.For { fbody; _ } -> union own (block_all fbody)
  | Ast.Assign _ | Ast.Return _ | Ast.ExprStmt _ | Ast.Decl _ -> own

and block_all (b : Ast.block) : t =
  List.fold_left (fun acc s -> union acc (stmt_all s)) empty b

(** Variables declared inside the subtree (local to it, hence invisible to
    siblings). *)
let rec stmt_locals (s : Ast.stmt) : SS.t =
  match s.sdesc with
  | Ast.Decl d -> SS.singleton d.dname
  | Ast.If (_, b1, b2) -> SS.union (block_locals b1) (block_locals b2)
  | Ast.While (_, b) | Ast.Block b -> block_locals b
  | Ast.For { fbody; _ } -> block_locals fbody
  | Ast.Assign _ | Ast.Return _ | Ast.ExprStmt _ -> SS.empty

and block_locals (b : Ast.block) : SS.t =
  List.fold_left (fun acc s -> SS.union acc (stmt_locals s)) SS.empty b

(** [stmt_external s] is [stmt_all] minus names declared within [s]:
    the def/use footprint visible to sibling statements. *)
let stmt_external (s : Ast.stmt) : t =
  let all = stmt_all s in
  let locals = stmt_locals s in
  { defs = SS.diff all.defs locals; uses = SS.diff all.uses locals }
