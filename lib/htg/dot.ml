(** Graphviz export of the Augmented Hierarchical Task Graph: hierarchical
    nodes become clusters, simple nodes become boxes, and the dependence
    edges (with communicated variable and volume) become arrows — the
    picture of the paper's Figure 1, generated from real programs. *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let human_bytes n =
  if n >= 1 lsl 20 then Printf.sprintf "%.1fMB" (float_of_int n /. 1048576.)
  else if n >= 1024 then Printf.sprintf "%.1fKB" (float_of_int n /. 1024.)
  else Printf.sprintf "%dB" n

let node_color (n : Node.t) =
  match n.Node.kind with
  | Node.Simple _ -> "lightyellow"
  | Node.Loop { doall = true; _ } -> "palegreen"
  | Node.Loop _ -> "lightsalmon"
  | Node.Branch _ -> "lightblue"
  | Node.Region -> "whitesmoke"

(** Render the subtree rooted at [root] as a DOT digraph. *)
let to_string (root : Node.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph ahtg {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box, style=filled];\n";
  let anchor (n : Node.t) =
    (* representative plain node id for edges into a hierarchical node *)
    Printf.sprintf "n%d" n.Node.id
  in
  let rec emit (n : Node.t) =
    if Node.is_hierarchical n then begin
      Buffer.add_string buf
        (Printf.sprintf
           "  subgraph cluster_%d {\n    label=\"%s\\n%s ec=%.0f cyc=%.0f\";\n\
           \    style=filled; fillcolor=\"%s\";\n"
           n.Node.id (escape n.Node.label)
           (escape (Node.kind_str n))
           n.Node.exec_count n.Node.total_cycles (node_color n));
      (* communication in/out pseudo nodes *)
      Buffer.add_string buf
        (Printf.sprintf
           "    in_%d [label=\"comm-in\\n%s\", shape=ellipse, fillcolor=white];\n"
           n.Node.id
           (human_bytes n.Node.live_in_bytes));
      Buffer.add_string buf
        (Printf.sprintf
           "    out_%d [label=\"comm-out\\n%s\", shape=ellipse, fillcolor=white];\n"
           n.Node.id
           (human_bytes n.Node.live_out_bytes));
      Array.iter emit n.Node.children;
      Buffer.add_string buf "  }\n";
      (* edges among the children *)
      List.iter
        (fun (e : Node.edge) ->
          let endpoint = function
            | Node.EIn -> Printf.sprintf "in_%d" n.Node.id
            | Node.EOut -> Printf.sprintf "out_%d" n.Node.id
            | Node.EChild i -> anchor n.Node.children.(i)
          in
          let style =
            match e.Node.kind with
            | Node.Flow -> "solid"
            | Node.Order -> "dashed"
          in
          let label =
            match e.Node.kind with
            | Node.Flow ->
                Printf.sprintf "%s\\n%s" (escape e.Node.var)
                  (human_bytes e.Node.bytes)
            | Node.Order -> escape e.Node.var
          in
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s [label=\"%s\", style=%s];\n"
               (endpoint e.Node.src) (endpoint e.Node.dst) label style))
        n.Node.edges;
      (* loop-carried conflicts as red double arrows *)
      List.iter
        (fun (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %s -> %s [color=red, dir=both, style=bold, label=\"carried\"];\n"
               (anchor n.Node.children.(a))
               (anchor n.Node.children.(b))))
        n.Node.conflicts;
      (* invisible anchor so parent edges can point at the cluster *)
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [label=\"\", shape=point, style=invis];\n" n.Node.id)
    end
    else
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nec=%.0f cyc=%.0f\", fillcolor=\"%s\"];\n"
           n.Node.id (escape n.Node.label) n.Node.exec_count n.Node.total_cycles
           (node_color n))
  in
  emit root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file path root =
  let oc = open_out path in
  output_string oc (to_string root);
  close_out oc
