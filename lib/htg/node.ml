(** Augmented Hierarchical Task Graph nodes (paper Section III-A).

    The hierarchy mirrors the program structure: {e Simple Nodes} carry one
    or more coalesced statements; {e Hierarchical Nodes} (loops, branches,
    regions) contain children plus implicit Communication-In/Out endpoints.
    Every node is annotated with total execution work (abstract cycles at
    CPI 1 — per-class times are derived via the platform), execution
    counts, and its external def/use footprint; edges between the children
    of a hierarchical node carry the communicated variable and byte
    volume. *)

module SS = Defuse.SS

type endpoint = EIn | EChild of int | EOut

type edge_kind =
  | Flow  (** true data flow: bytes move if endpoints are in different tasks *)
  | Order  (** anti/output dependence: ordering only, no payload *)

type edge = {
  src : endpoint;
  dst : endpoint;
  kind : edge_kind;
  var : string;
  bytes : int;
      (** payload bytes over the whole program run, i.e. per-transfer volume
          times the number of transfers, if the endpoints land in
          different tasks *)
}

type kind =
  | Simple of int list  (** statement ids (coalesced run of statements) *)
  | Loop of { sid : int; doall : bool; iters_per_entry : float }
  | Branch of int  (** if statement id; children = [then; else] regions *)
  | Region  (** block / inlined function body / branch arm *)

type t = {
  id : int;
  kind : kind;
  label : string;
  exec_count : float;  (** entries over the whole program run *)
  total_cycles : float;  (** subtree work, abstract cycles, whole program *)
  children : t array;  (** in program order; empty for Simple *)
  edges : edge list;  (** dependences among [children] and In/Out *)
  conflicts : (int * int) list;
      (** child pairs that must share a task (loop-carried recurrences) *)
  defs : SS.t;  (** external defs of the subtree *)
  uses : SS.t;  (** external uses of the subtree *)
  live_in_bytes : int;  (** total Comm-In volume over the program run *)
  live_out_bytes : int;  (** total Comm-Out volume over the program run *)
  stmts : Minic.Ast.stmt list;
      (** the source statements the node covers, in program order: the
          coalesced statements of a Simple node, the loop/if statement of a
          Loop/Branch node, the block's statements for a Region — what an
          execution runtime interprets when it runs the node *)
}

let is_hierarchical n = Array.length n.children > 0

let is_doall n = match n.kind with Loop l -> l.doall | _ -> false

(** Work in abstract cycles per single entry of the node. *)
let cycles_per_entry n =
  if n.exec_count <= 0. then 0. else n.total_cycles /. n.exec_count

(** Total sequential time (microseconds, whole program) on class [cls] of
    platform [pf]. *)
let seq_time_us pf ~cls n = Platform.Desc.time_us pf ~cls n.total_cycles

let kind_str n =
  match n.kind with
  | Simple sids -> Printf.sprintf "simple[%s]" (String.concat "," (List.map string_of_int sids))
  | Loop { doall; iters_per_entry; _ } ->
      Printf.sprintf "loop(%s, %.1f iters)" (if doall then "doall" else "seq")
        iters_per_entry
  | Branch _ -> "branch"
  | Region -> "region"

let endpoint_str = function
  | EIn -> "in"
  | EOut -> "out"
  | EChild i -> string_of_int i

(** Count of nodes in the subtree. *)
let rec size n = Array.fold_left (fun acc c -> acc + size c) 1 n.children

(** All hierarchical nodes of the subtree, bottom-up (children first). *)
let rec hierarchical_bottom_up n : t list =
  let inner =
    Array.fold_left (fun acc c -> acc @ hierarchical_bottom_up c) [] n.children
  in
  if is_hierarchical n then inner @ [ n ] else inner

let rec pp ?(indent = 0) ppf n =
  let pad = String.make (2 * indent) ' ' in
  Fmt.pf ppf "%s#%d %s %s ec=%.0f cyc=%.0f in=%dB out=%dB@." pad n.id
    (kind_str n) n.label n.exec_count n.total_cycles n.live_in_bytes
    n.live_out_bytes;
  List.iter
    (fun e ->
      Fmt.pf ppf "%s  edge %s->%s %s %s %dB@." pad (endpoint_str e.src)
        (endpoint_str e.dst)
        (match e.kind with Flow -> "flow" | Order -> "order")
        e.var e.bytes)
    n.edges;
  List.iter
    (fun (a, b) -> Fmt.pf ppf "%s  conflict %d<->%d@." pad a b)
    n.conflicts;
  Array.iter (pp ~indent:(indent + 1) ppf) n.children
