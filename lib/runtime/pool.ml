(** Re-export of {!Taskpool.Pool}.

    The work-stealing domain pool started life in this library but is now
    shared with the compile-side parallelizer ({!Parcore.Algorithm}), which
    sits below [runtime] in the dependency order.  The implementation lives
    in the bottom-layer [taskpool] library; this module keeps the historical
    [Runtime.Pool] path (and the [Suspend] effect constructor, which the
    include re-exports as the {e same} extension constructor) working for
    the executor, channels and tests. *)

include Taskpool.Pool
