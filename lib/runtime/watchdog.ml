(** Runtime watchdog: a tiny monitor domain that turns hangs into typed
    verdicts.

    Two failure modes of a mis-implemented (or fault-injected) task graph
    are covered:

    - {b deadlock}: every task is either finished or parked on a def-use
      channel receive, and no producer is left to fill the cells.  The
      executor registers every parked receive here; the interpreter and
      the fork/join machinery bump {!beat} whenever real work happens.
      If parked receives exist and the pulse stays still for a grace
      period, the watchdog declares [Deadlocked] with the waiting tasks'
      labels and expires the parked receives so they wake with an error
      instead of sleeping forever.

    - {b timeout}: a global wall-clock deadline.  Past it the watchdog
      sets the cooperative {!cancel} flag (checked by the interpreter's
      step counter, so compute loops terminate too) and likewise expires
      all parked receives.

    After a verdict the monitor keeps expiring any receive that parks
    late, so the run always drains. *)

type verdict = Running | Timed_out | Deadlocked of string list

type t = {
  cancel : bool Atomic.t;
  pulse : int Atomic.t;
  mutable verdict : verdict;  (* written by the monitor under [mu] *)
  mu : Mutex.t;
  waiters : (int, string * (unit -> unit)) Hashtbl.t;
  mutable next_id : int;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  timeout_s : float;
  grace_s : float;
}

let poll_interval_s = 0.02

let beat t = Atomic.incr t.pulse

let cancel_token t = t.cancel
let pulse_counter t = t.pulse

let register t ~label ~expire =
  Mutex.lock t.mu;
  let id = t.next_id in
  t.next_id <- id + 1;
  let fired = t.verdict <> Running in
  if not fired then Hashtbl.replace t.waiters id (label, expire);
  Mutex.unlock t.mu;
  (* parking after the verdict: expire immediately so the task drains *)
  if fired then expire ();
  id

let unregister t id =
  Mutex.lock t.mu;
  Hashtbl.remove t.waiters id;
  Mutex.unlock t.mu

let verdict t =
  Mutex.lock t.mu;
  let v = t.verdict in
  Mutex.unlock t.mu;
  v

(* Declare [v], expiring all currently parked receives.  The expire
   closures are called outside the lock — they take channel locks and may
   resume pool tasks. *)
let declare t v =
  if Trace.enabled () then
    Trace.instant ~cat:"watchdog" "watchdog.verdict"
      ~args:
        [
          ( "verdict",
            Trace.Str
              (match v with
              | Running -> "running"
              | Timed_out -> "timed_out"
              | Deadlocked _ -> "deadlocked") );
        ];
  Mutex.lock t.mu;
  let already = t.verdict <> Running in
  if not already then t.verdict <- v;
  let expires =
    Hashtbl.fold (fun _ (_, e) acc -> e :: acc) t.waiters []
  in
  Hashtbl.reset t.waiters;
  Mutex.unlock t.mu;
  Atomic.set t.cancel true;
  List.iter (fun e -> e ()) expires

let monitor t =
  let start = Unix.gettimeofday () in
  let last_pulse = ref (Atomic.get t.pulse) in
  let last_change = ref start in
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf poll_interval_s;
    if not (Atomic.get t.stop_flag) then begin
      let now = Unix.gettimeofday () in
      if Trace.enabled () then
        Trace.instant ~cat:"watchdog" "watchdog.check"
          ~args:[ ("pulse", Trace.Int (Atomic.get t.pulse)) ];
      if t.timeout_s > 0. && now -. start > t.timeout_s then
        declare t Timed_out
      else begin
        let p = Atomic.get t.pulse in
        if p <> !last_pulse then begin
          last_pulse := p;
          last_change := now
        end;
        if t.grace_s > 0. && now -. !last_change > t.grace_s then begin
          Mutex.lock t.mu;
          let labels =
            Hashtbl.fold (fun _ (l, _) acc -> l :: acc) t.waiters []
            |> List.sort String.compare
          in
          Mutex.unlock t.mu;
          if labels <> [] then declare t (Deadlocked labels)
        end
      end
    end
  done

let create ?(grace_s = 0.5) ~timeout_s () =
  let t =
    {
      cancel = Atomic.make false;
      pulse = Atomic.make 0;
      verdict = Running;
      mu = Mutex.create ();
      waiters = Hashtbl.create 16;
      next_id = 0;
      stop_flag = Atomic.make false;
      domain = None;
      timeout_s;
      grace_s;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> monitor t));
  t

let stop t =
  Atomic.set t.stop_flag true;
  match t.domain with
  | Some d ->
      Domain.join d;
      t.domain <- None
  | None -> ()
