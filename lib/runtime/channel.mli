(** Write-once value-passing channels along HTG def-use edges.

    Each fork instance creates one cell per (producer child, variable)
    pair whose value crosses a task boundary.  The producing task fills
    the cell right after executing the child; consuming tasks read it
    before executing theirs.  A read of an empty cell suspends the task
    via {!Pool.Suspend} — the worker moves on to other work and the task
    resumes when the send lands.

    The payload is [Value.t option]: [None] marks a variable that was
    never bound (or a cell poisoned because its producer failed), which
    consumers treat as "no update".

    A cell can also be {e expired} (by the {!Watchdog} on a timeout or
    deadlock verdict): pending and future receives then return
    [Error `Expired] instead of blocking forever — the fix for the
    receive-blocks-forever hazard of a never-written channel. *)

type t

val create : unit -> t

(** Fill the cell.  First write wins; later writes (including expiry) are
    ignored, which makes the error-path poisoning idempotent. *)
val send : Pool.t -> t -> Interp.Value.t option -> unit

(** Read the cell, suspending the calling task until it is filled or
    expired.  When [watch] is given, the park is registered with the
    watchdog under [label] so a verdict wakes it with [Error `Expired]. *)
val recv :
  ?watch:Watchdog.t ->
  ?label:string ->
  Pool.t ->
  t ->
  (Interp.Value.t option, [ `Expired ]) result

(** [poison pool c] = [send pool c None]; used to release consumers when
    the producing task dies. *)
val poison : Pool.t -> t -> unit

(** Expire the cell: pending and future receives return [Error `Expired].
    A no-op if the cell is already full.  Idempotent. *)
val expire : Pool.t -> t -> unit
