(** Write-once value-passing channels along HTG def-use edges.

    Each fork instance creates one cell per (producer child, variable)
    pair whose value crosses a task boundary.  The producing task fills
    the cell right after executing the child; consuming tasks read it
    before executing theirs.  A read of an empty cell suspends the task
    via {!Pool.Suspend} — the worker moves on to other work and the task
    resumes when the send lands.

    The payload is [Value.t option]: [None] marks a variable that was
    never bound (or a cell poisoned because its producer failed), which
    consumers treat as "no update". *)

type t

val create : unit -> t

(** Fill the cell.  First write wins; later writes are ignored, which
    makes the error-path poisoning idempotent. *)
val send : Pool.t -> t -> Interp.Value.t option -> unit

(** Read the cell, suspending the calling task until it is filled. *)
val recv : Pool.t -> t -> Interp.Value.t option

(** [poison pool c] = [send pool c None]; used to release consumers when
    the producing task dies. *)
val poison : Pool.t -> t -> unit
