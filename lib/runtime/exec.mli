(** Task-parallel execution of a partitioned Mini-C program — the
    runtime counterpart of the paper's MPA backend: take the AHTG and the
    hierarchical solution the ILP chose and actually run the program
    concurrently on OCaml 5 domains.

    Execution mirrors the solution tree:

    - [Seq] nodes interpret their statements on the calling task's store.
    - [Par] regions fork their child partition: one isolated store per
      task, values crossing task boundaries through write-once channels
      placed along the HTG def-use chain, a join merge writing each
      variable's last definition back to the parent store.
    - [Par]/[Pipeline] loops run the loop control on the calling task and
      fork the body partition once per iteration (join per iteration).
    - [Par] branches evaluate the condition inline and execute only the
      taken arm (the HTG cond child covers the whole [if] and is never
      executed as a node).
    - [Split] DOALL loops chunk the iteration space over the solution's
      tasks by the ILP's iteration shares; arrays are shared (disjoint
      writes by DOALL construction), scalars privatized and merged from
      the last chunk.

    Any shape the runtime cannot honor safely is demoted to sequential
    interpretation of the node's statements (counted in the metrics), so
    execution is always faithful to sequential semantics. *)

type result = {
  ret : Interp.Value.t option;  (** value returned by [main] *)
  steps : int;  (** interpreter steps over all tasks *)
  metrics : Metrics.snapshot;
}

(** Execute [prog] under solution [sol] for AHTG root [root] on a fresh
    domain pool.  [domains] defaults to the machine's recommended domain
    count; [1] executes fully sequentially on the calling domain.
    [timeout_s > 0.] arms a {!Watchdog} (wall-clock deadline plus parked
    receive deadlock detection with no-progress window [grace_s],
    default 0.5 s); on a verdict, raises {!Mpsoc_error.Error} with kind
    [Timeout] or [Deadlock].  Re-raises interpreter errors
    ({!Interp.Eval.Runtime_error}, {!Interp.Eval.Step_limit_exceeded}). *)
val run :
  ?domains:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  ?grace_s:float ->
  Minic.Ast.program ->
  Htg.Node.t ->
  Parcore.Solution.t ->
  result

(** Like {!run}, but every failure comes back as a typed
    {!Mpsoc_error.t} (watchdog verdicts take precedence over the raw
    exception they caused). *)
val run_result :
  ?domains:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  ?grace_s:float ->
  Minic.Ast.program ->
  Htg.Node.t ->
  Parcore.Solution.t ->
  (result, Mpsoc_error.t) Stdlib.result

(** Return-value equality (the differential-validation criterion). *)
val ret_equal : Interp.Value.t option -> Interp.Value.t option -> bool

(** Run both the sequential reference interpreter and the parallel
    runtime; returns [(parallel, sequential, rets_agree)].  The watchdog
    options cover only the parallel run. *)
val validate :
  ?domains:int ->
  ?max_steps:int ->
  ?timeout_s:float ->
  ?grace_s:float ->
  Minic.Ast.program ->
  Htg.Node.t ->
  Parcore.Solution.t ->
  result * Interp.Eval.result * bool
