type state =
  | Empty of (unit -> unit) list  (** parked consumer wake-ups *)
  | Full of Interp.Value.t option

type t = { m : Mutex.t; mutable st : state }

let create () = { m = Mutex.create (); st = Empty [] }

let send pool c v =
  Mutex.lock c.m;
  match c.st with
  | Full _ -> Mutex.unlock c.m (* first write wins *)
  | Empty waiters ->
      c.st <- Full v;
      Mutex.unlock c.m;
      List.iter (fun wake -> wake ()) waiters;
      ignore pool

let poison pool c = send pool c None

let recv pool c =
  Mutex.lock c.m;
  match c.st with
  | Full v ->
      Mutex.unlock c.m;
      v
  | Empty _ ->
      Mutex.unlock c.m;
      Effect.perform
        (Pool.Suspend
           (fun k ->
             let wake () = Pool.resume pool k in
             Mutex.lock c.m;
             match c.st with
             | Full _ ->
                 (* the send raced us between unlock and here *)
                 Mutex.unlock c.m;
                 wake ()
             | Empty ws ->
                 c.st <- Empty (wake :: ws);
                 Mutex.unlock c.m));
      (* resumed: the cell is necessarily full now *)
      Mutex.lock c.m;
      let v = match c.st with Full v -> v | Empty _ -> assert false in
      Mutex.unlock c.m;
      v
