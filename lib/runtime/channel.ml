type content = Value of Interp.Value.t option | Expired

type state =
  | Empty of (unit -> unit) list  (** parked consumer wake-ups *)
  | Full of content

type t = { m : Mutex.t; mutable st : state }

let create () = { m = Mutex.create (); st = Empty [] }

let fill pool c content =
  Mutex.lock c.m;
  match c.st with
  | Full _ -> Mutex.unlock c.m (* first write wins *)
  | Empty waiters ->
      c.st <- Full content;
      Mutex.unlock c.m;
      List.iter (fun wake -> wake ()) waiters;
      ignore pool

let send pool c v =
  if Trace.enabled () then Trace.instant ~cat:"chan" "chan.send";
  fill pool c (Value v)
let poison pool c = send pool c None
let expire pool c = fill pool c Expired

let recv ?watch ?(label = "recv") pool c =
  Fault.point "channel.recv";
  let read_full () =
    Mutex.lock c.m;
    let r =
      match c.st with
      | Full (Value v) -> Ok v
      | Full Expired -> Error `Expired
      | Empty _ -> assert false
    in
    Mutex.unlock c.m;
    r
  in
  Mutex.lock c.m;
  match c.st with
  | Full (Value v) ->
      Mutex.unlock c.m;
      Ok v
  | Full Expired ->
      Mutex.unlock c.m;
      Error `Expired
  | Empty _ ->
      Mutex.unlock c.m;
      (* the wait brackets an effect suspension — the continuation may
         resume on another domain, so instants, not a span *)
      if Trace.enabled () then
        Trace.instant ~cat:"chan" "chan.wait" ~args:[ ("recv", Trace.Str label) ];
      (* announce the park so the watchdog can expire us on a verdict *)
      let ticket =
        match watch with
        | None -> None
        | Some w ->
            Some (w, Watchdog.register w ~label ~expire:(fun () -> expire pool c))
      in
      let tag = Trace.current_tag () in
      Effect.perform
        (Pool.Suspend
           (fun k ->
             let wake () = Pool.resume ?tag pool k in
             Mutex.lock c.m;
             match c.st with
             | Full _ ->
                 (* the send raced us between unlock and here *)
                 Mutex.unlock c.m;
                 wake ()
             | Empty ws ->
                 c.st <- Empty (wake :: ws);
                 Mutex.unlock c.m));
      (* resumed: the cell is necessarily full now *)
      if Trace.enabled () then
        Trace.instant ~cat:"chan" "chan.ready" ~args:[ ("recv", Trace.Str label) ];
      (match ticket with
      | Some (w, id) -> Watchdog.unregister w id
      | None -> ());
      read_full ()
