(** Re-export of {!Taskpool.Deque} (see {!Pool} for why it moved). *)

include Taskpool.Deque
