(** Shared execution counters, updated from every worker domain. *)

type t = {
  forks : int Atomic.t;
  inline_forks : int Atomic.t;
  tasks_spawned : int Atomic.t;
  sends : int Atomic.t;
  recvs : int Atomic.t;
  bytes_sent : int Atomic.t;
  merges : int Atomic.t;
  splits : int Atomic.t;
  seq_fallbacks : int Atomic.t;
  steps : int Atomic.t;
}

let create () =
  {
    forks = Atomic.make 0;
    inline_forks = Atomic.make 0;
    tasks_spawned = Atomic.make 0;
    sends = Atomic.make 0;
    recvs = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    merges = Atomic.make 0;
    splits = Atomic.make 0;
    seq_fallbacks = Atomic.make 0;
    steps = Atomic.make 0;
  }

let add a n = ignore (Atomic.fetch_and_add a n)
let incr a = add a 1

type snapshot = {
  domains : int;
  wall_s : float;
  n_forks : int;
  n_inline_forks : int;
  n_tasks_spawned : int;
  n_steals : int;
  n_sends : int;
  n_recvs : int;
  n_bytes_sent : int;
  n_merges : int;
  n_splits : int;
  n_seq_fallbacks : int;
  n_steps : int;
  worker_busy_s : float array;
  worker_tasks : int array;
  worker_steals : int array;
}

let snapshot m ~domains ~wall_s ~steals ~worker_busy_s ~worker_tasks
    ~worker_steals =
  {
    domains;
    wall_s;
    n_forks = Atomic.get m.forks;
    n_inline_forks = Atomic.get m.inline_forks;
    n_tasks_spawned = Atomic.get m.tasks_spawned;
    n_steals = steals;
    n_sends = Atomic.get m.sends;
    n_recvs = Atomic.get m.recvs;
    n_bytes_sent = Atomic.get m.bytes_sent;
    n_merges = Atomic.get m.merges;
    n_splits = Atomic.get m.splits;
    n_seq_fallbacks = Atomic.get m.seq_fallbacks;
    n_steps = Atomic.get m.steps;
    worker_busy_s;
    worker_tasks;
    worker_steals;
  }

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "domains:        %d@," s.domains;
  Format.fprintf ppf "wall clock:     %.6f s@," s.wall_s;
  Format.fprintf ppf "interp steps:   %d@," s.n_steps;
  Format.fprintf ppf "forks:          %d (+ %d run inline)@," s.n_forks s.n_inline_forks;
  Format.fprintf ppf "tasks spawned:  %d@," s.n_tasks_spawned;
  Format.fprintf ppf "steals:         %d@," s.n_steals;
  Format.fprintf ppf "channel sends:  %d (%d recvs, %d bytes moved)@," s.n_sends s.n_recvs
    s.n_bytes_sent;
  Format.fprintf ppf "joins merged:   %d values@," s.n_merges;
  Format.fprintf ppf "doall splits:   %d@," s.n_splits;
  Format.fprintf ppf "seq fallbacks:  %d@]" s.n_seq_fallbacks

let pp_workers ppf s =
  Format.fprintf ppf "@[<v 2>workers (busy s / tasks run / stolen):";
  Array.iteri
    (fun i b ->
      Format.pp_print_cut ppf ();
      Format.fprintf ppf "w%-2d %.6f / %d / %d" i b s.worker_tasks.(i)
        (if i < Array.length s.worker_steals then s.worker_steals.(i) else 0))
    s.worker_busy_s;
  Format.fprintf ppf "@]"
