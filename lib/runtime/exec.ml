open Minic
module Node = Htg.Node
module Defuse = Htg.Defuse
module SS = Defuse.SS
module Solution = Parcore.Solution
module Eval = Interp.Eval
module Value = Interp.Value

type ctx = {
  pool : Pool.t;
  metrics : Metrics.t;
  max_steps : int;
  slots : int;  (** profile slots for scratch environments *)
  watch : Watchdog.t option;
}

exception Expired_receive of string
(** A def-use receive was expired by the watchdog (timeout/deadlock
    verdict); carries the receive's label.  Internal — mapped to a typed
    error at the top level. *)

let truthy v = Value.to_int v <> 0
let beat ctx = match ctx.watch with Some w -> Watchdog.beat w | None -> ()

let scratch_env ctx store =
  let supervision =
    Option.map
      (fun w ->
        { Eval.cancel = Watchdog.cancel_token w; pulse = Watchdog.pulse_counter w })
      ctx.watch
  in
  Eval.make_env ?supervision ~max_steps:ctx.max_steps
    ~profile:(Interp.Profile.create ctx.slots) store

(* Does a block survive HTG conversion as a node?  Mirrors the builder's
   conversion, which drops blocks that are empty all the way down; used to
   map a taken branch arm to its child index (children = cond :: present
   arms). *)
let rec stmt_present s =
  match s.Ast.sdesc with Ast.Block b -> List.exists stmt_present b | _ -> true

let region_present b = List.exists stmt_present b

(* ------------------------------------------------------------------ *)
(* Fork/join dataflow analysis                                         *)
(* ------------------------------------------------------------------ *)

type src = Parent | Child of int

type cover = {
  imports : (string * src) list array;
      (** per child: variables to bind before executing it, and where the
          freshest value lives *)
  merges : (string * int) list;
      (** variables live after the node, with the last child defining them *)
}

(* Names declared at the top level of a statement list — visible to the
   node's later children (sibling scope).  [Node.defs] misses these: the
   builder's external footprint excludes a [Decl]'s own name, so sourcing
   decisions must not rely on the node's edge list alone. *)
let direct_decls stmts =
  List.fold_left
    (fun acc s -> match s.Ast.sdesc with Ast.Decl d -> SS.add d.Ast.dname acc | _ -> acc)
    SS.empty stmts

let cover_of (node : Node.t) : cover =
  let k = Array.length node.Node.children in
  let provides =
    Array.init k (fun i ->
        let c = node.Node.children.(i) in
        SS.union c.Node.defs (direct_decls c.Node.stmts))
  in
  let imports =
    Array.init k (fun j ->
        let c = node.Node.children.(j) in
        (* defs are imported too: a conditional (may-)definition left
           unwritten must merge back as the chained value, so the child
           starts from it *)
        let needed =
          SS.diff (SS.union c.Node.uses c.Node.defs) (direct_decls c.Node.stmts)
        in
        SS.fold
          (fun v acc ->
            let rec source i =
              if i < 0 then Parent
              else if SS.mem v provides.(i) then Child i
              else source (i - 1)
            in
            (v, source (j - 1)) :: acc)
          needed []
        |> List.rev)
  in
  let locals =
    List.fold_left (fun acc s -> SS.union acc (Defuse.stmt_locals s)) SS.empty node.Node.stmts
  in
  let all_provided = Array.fold_left SS.union SS.empty provides in
  let merges =
    SS.fold
      (fun v acc ->
        let rec last i =
          if i < 0 then None else if SS.mem v provides.(i) then Some i else last (i - 1)
        in
        match last (k - 1) with Some i -> (v, i) :: acc | None -> acc)
      (SS.diff all_provided locals) []
    |> List.rev
  in
  { imports; merges }

(* Largest-remainder apportionment of [n] iterations over float weights;
   deterministic (remainder goes to the largest fractional part, ties to
   the earlier task). *)
let apportion n weights =
  let m = Array.length weights in
  let total = Array.fold_left ( +. ) 0. weights in
  let q = Array.make m 0 in
  if total <= 0. then q.(0) <- n
  else begin
    let raw = Array.map (fun w -> float_of_int n *. w /. total) weights in
    Array.iteri (fun i r -> q.(i) <- int_of_float (Float.floor r)) raw;
    let rem = n - Array.fold_left ( + ) 0 q in
    let idx = Array.init m (fun i -> i) in
    Array.sort
      (fun a b ->
        let fa = raw.(a) -. float_of_int q.(a) and fb = raw.(b) -. float_of_int q.(b) in
        if fa = fb then compare a b else compare fb fa)
      idx;
    for i = 0 to rem - 1 do
      q.(idx.(i mod m)) <- q.(idx.(i mod m)) + 1
    done
  end;
  q

(* ------------------------------------------------------------------ *)
(* Node execution                                                      *)
(* ------------------------------------------------------------------ *)

let rec exec_node ctx env (node : Node.t) (sol : Solution.t) : unit =
  if sol.Solution.node_id <> node.Node.id then fallback ctx env node
  else
    match sol.Solution.kind with
    | Solution.Seq _ -> Eval.exec_block_env env node.Node.stmts
    | Solution.Split sp -> exec_split ctx env node sp
    | Solution.Par p -> (
        let child_sol j =
          if j < Array.length p.Solution.child_choice then Some p.Solution.child_choice.(j)
          else None
        in
        match (node.Node.kind, Solution.partition sol) with
        | Node.Region, Some part -> fork ctx env node (cover_of node) part child_sol
        | Node.Loop _, Some part -> loop_fork ctx env node part child_sol
        | Node.Branch _, _ -> exec_branch ctx env node child_sol
        | _ -> fallback ctx env node)
    | Solution.Pipeline _ -> (
        (* conservative pipeline execution: the stage partition forks per
           iteration (loop) or once (region), with a join barrier instead
           of streaming overlap — same values, same task structure *)
        match (node.Node.kind, Solution.partition sol) with
        | Node.Loop _, Some part -> loop_fork ctx env node part (fun _ -> None)
        | Node.Region, Some part -> fork ctx env node (cover_of node) part (fun _ -> None)
        | _ -> fallback ctx env node)

and fallback ctx env (node : Node.t) =
  Metrics.incr ctx.metrics.Metrics.seq_fallbacks;
  Eval.exec_block_env env node.Node.stmts

and exec_child ctx env (child : Node.t) = function
  | Some sol -> exec_node ctx env child sol
  | None -> Eval.exec_block_env env child.Node.stmts

(* A Branch node's children are [cond; present arms]; the cond child
   covers the whole [if] statement, so it is never executed as a node —
   the condition is evaluated inline and only the taken arm runs. *)
and exec_branch ctx env (node : Node.t) child_sol =
  match node.Node.stmts with
  | [ { Ast.sdesc = Ast.If (cond, b1, b2); _ } ] -> (
      Eval.tick_env env;
      let taken = truthy (Eval.eval_expr env cond) in
      let b1p = region_present b1 and b2p = region_present b2 in
      let arm =
        if taken then if b1p then Some 1 else None
        else if b2p then Some (if b1p then 2 else 1)
        else None
      in
      match arm with
      | Some i when i < Array.length node.Node.children ->
          exec_child ctx env node.Node.children.(i) (child_sol i)
      | _ -> ())
  | _ -> fallback ctx env node

(* A parallelized loop: run the loop control on the caller's store and
   fork the body partition once per iteration (join per iteration keeps
   loop-carried values flowing through the parent store). *)
and loop_fork ctx env (node : Node.t) part child_sol =
  let cov = cover_of node in
  let fork_body () = fork ctx env node cov part child_sol in
  match node.Node.stmts with
  | [ { Ast.sdesc = Ast.For { finit; fcond; fstep; _ }; _ } ] ->
      Eval.tick_env env;
      (match finit with
      | Some (lhs, e) -> Eval.exec_assign env lhs (Eval.eval_expr env e)
      | None -> ());
      let rec loop () =
        Eval.tick_env env;
        if truthy (Eval.eval_expr env fcond) then begin
          fork_body ();
          (match fstep with
          | Some (lhs, e) -> Eval.exec_assign env lhs (Eval.eval_expr env e)
          | None -> ());
          loop ()
        end
      in
      loop ()
  | [ { Ast.sdesc = Ast.While (cond, _); _ } ] ->
      Eval.tick_env env;
      let rec loop () =
        Eval.tick_env env;
        if truthy (Eval.eval_expr env cond) then begin
          fork_body ();
          loop ()
        end
      in
      loop ()
  | _ -> fallback ctx env node

(* Fork/join over the children of a hierarchical node.  Each task gets an
   isolated store; values cross task boundaries only through write-once
   channels (producer child, variable) and the final join merge. *)
and fork ctx env (node : Node.t) (cov : cover) (part : Solution.partition) child_sol =
  let owner = part.Solution.owner in
  let m = Array.length part.Solution.classes in
  let k = Array.length node.Node.children in
  if Array.length owner <> k then fallback ctx env node
  else if m <= 1 then begin
    Metrics.incr ctx.metrics.Metrics.inline_forks;
    Array.iteri (fun j c -> exec_child ctx env c (child_sol j)) node.Node.children
  end
  else begin
    Metrics.incr ctx.metrics.Metrics.forks;
    Metrics.add ctx.metrics.Metrics.tasks_spawned (m - 1);
    let parent_store = Eval.env_store env in
    (* one write-once cell per (producer child, var) crossing tasks *)
    let cells : (int * string, Channel.t) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun j imps ->
        List.iter
          (fun (v, src) ->
            match src with
            | Child i when owner.(i) <> owner.(j) ->
                if not (Hashtbl.mem cells (i, v)) then Hashtbl.add cells (i, v) (Channel.create ())
            | _ -> ())
          imps)
      cov.imports;
    let out_cells = Array.make k [] in
    Hashtbl.iter (fun (i, v) c -> out_cells.(i) <- (v, c) :: out_cells.(i)) cells;
    let children_of t =
      let acc = ref [] in
      Array.iteri (fun j o -> if o = t then acc := j :: !acc) owner;
      List.rev !acc
    in
    let run_task t =
      let store : Eval.store = Hashtbl.create 32 in
      let tenv = scratch_env ctx store in
      let err = ref None in
      let publish j =
        List.iter
          (fun (v, cell) ->
            let payload =
              match Hashtbl.find_opt store v with
              | Some r -> Some (Value.copy !r)
              | None -> None
            in
            (match payload with
            | Some p -> Metrics.add ctx.metrics.Metrics.bytes_sent (Value.size_bytes p)
            | None -> ());
            Metrics.incr ctx.metrics.Metrics.sends;
            Channel.send ctx.pool cell payload)
          out_cells.(j)
      in
      let import j =
        List.iter
          (fun (v, src) ->
            match src with
            | Parent ->
                if not (Hashtbl.mem store v) then (
                  match Hashtbl.find_opt parent_store v with
                  | Some r -> Hashtbl.replace store v (ref (Value.copy !r))
                  | None -> ())
            | Child i when owner.(i) = t -> ()
            | Child i -> (
                match Hashtbl.find_opt cells (i, v) with
                | None -> ()
                | Some cell -> (
                    Metrics.incr ctx.metrics.Metrics.recvs;
                    let label = Printf.sprintf "task%d:%s<-child%d" t v i in
                    match Channel.recv ?watch:ctx.watch ~label ctx.pool cell with
                    | Ok (Some value) -> Hashtbl.replace store v (ref (Value.copy value))
                    | Ok None -> () (* producer failed or never bound it *)
                    | Error `Expired -> raise (Expired_receive label))))
          cov.imports.(j)
      in
      let rec go = function
        | [] -> ()
        | j :: rest -> (
            match
              import j;
              beat ctx;
              exec_child ctx tenv node.Node.children.(j) (child_sol j);
              publish j;
              beat ctx
            with
            | () -> go rest
            | exception e ->
                err := Some (j, e);
                (* release all consumers still waiting on this task *)
                List.iter
                  (fun j' -> List.iter (fun (_, cell) -> Channel.poison ctx.pool cell) out_cells.(j'))
                  (children_of t))
      in
      go (children_of t);
      (!err, store, Eval.env_steps tenv)
    in
    let task_label t =
      if Trace.enabled () then Printf.sprintf "node%d.task%d" node.Node.id t
      else "task"
    in
    let futs =
      List.init (m - 1) (fun i ->
          Pool.spawn ~label:(task_label (i + 1)) ctx.pool (fun () -> run_task (i + 1)))
    in
    let r0 = run_task 0 in
    let results =
      Array.of_list
        (r0
        :: List.map
             (fun f ->
               match Pool.await ctx.pool f with
               | Ok r -> r
               | Error e -> (Some (max_int, e), (Hashtbl.create 1 : Eval.store), 0))
             futs)
    in
    Array.iter (fun (_, _, steps) -> Metrics.add ctx.metrics.Metrics.steps steps) results;
    (* re-raise the earliest failure in program order (Return_exn from the
       earliest child is exactly what sequential execution would do) *)
    let first_err =
      Array.fold_left
        (fun acc (e, _, _) ->
          match (e, acc) with
          | Some (j, ex), Some (j', _) when j < j' -> Some (j, ex)
          | Some (j, ex), None -> Some (j, ex)
          | _, acc -> acc)
        None results
    in
    match first_err with
    | Some (_, ex) -> raise ex
    | None ->
        List.iter
          (fun (v, i) ->
            let _, st, _ = results.(owner.(i)) in
            match Hashtbl.find_opt st v with
            | None -> ()
            | Some r -> (
                Metrics.incr ctx.metrics.Metrics.merges;
                let value = Value.copy !r in
                match Hashtbl.find_opt parent_store v with
                | Some pr -> pr := value
                | None -> Hashtbl.replace parent_store v (ref value)))
          cov.merges
  end

(* DOALL loop chunking.  Every chunk task replays the full loop control
   (cheap by DOALL construction: the body cannot affect it) but executes
   the body only for its own iteration range.  Arrays are shared between
   chunk stores — DOALL guarantees disjoint writes — while scalars are
   privatized and the last chunk's final values merge back. *)
and exec_split ctx env (node : Node.t) (sp : Solution.split) =
  match (node.Node.kind, node.Node.stmts) with
  | Node.Loop { doall = true; _ }, [ ({ Ast.sdesc = Ast.For ({ Ast.fbody; _ } as f); _ } as s) ]
    -> (
      match Htg.Loops.canonical_induction f with
      | None -> fallback ctx env node
      | Some ind when SS.mem ind (Defuse.block_all fbody).Defuse.defs ->
          (* the classifier tolerates a body writing its own induction
             variable; chunked control replay would diverge, so demote *)
          fallback ctx env node
      | Some _ -> run_split ctx env s f sp)
  | _ -> fallback ctx env node

and count_iters ctx parent_store (f : Ast.for_loop) =
  (* control-only replay on a store with privatized scalars (arrays are
     read-only for canonical control, share the payloads) *)
  let store : Eval.store = Hashtbl.create (Hashtbl.length parent_store) in
  Hashtbl.iter
    (fun k r ->
      match !r with
      | (Value.VInt _ | Value.VFloat _) as sv -> Hashtbl.replace store k (ref sv)
      | arr -> Hashtbl.replace store k (ref arr))
    parent_store;
  let cenv = scratch_env ctx store in
  (match f.Ast.finit with
  | Some (lhs, e) -> Eval.exec_assign cenv lhs (Eval.eval_expr cenv e)
  | None -> ());
  let n = ref 0 in
  let rec go () =
    if truthy (Eval.eval_expr cenv f.Ast.fcond) then begin
      Eval.tick_env cenv;
      incr n;
      (match f.Ast.fstep with
      | Some (lhs, e) -> Eval.exec_assign cenv lhs (Eval.eval_expr cenv e)
      | None -> ());
      go ()
    end
  in
  go ();
  !n

and run_split ctx env (s : Ast.stmt) (f : Ast.for_loop) (sp : Solution.split) =
  let parent_store = Eval.env_store env in
  Eval.tick_env env;
  let n = count_iters ctx parent_store f in
  if n = 0 then Eval.exec_block_env env [ s ] (* header effects only *)
  else begin
    Metrics.incr ctx.metrics.Metrics.splits;
    (* task 0 always participates (it hosts the join), plus every task the
       ILP gave iterations to — mirrors the simulator's realization *)
    let used =
      0
      :: List.filter
           (fun t -> t > 0 && sp.Solution.chunk_iters.(t) > 0.)
           (List.init (Array.length sp.Solution.chunk_iters) (fun t -> t))
    in
    let weights = Array.of_list (List.map (fun t -> sp.Solution.chunk_iters.(t)) used) in
    let m = Array.length weights in
    let quota = apportion n weights in
    let lo = Array.make m 0 and hi = Array.make m 0 in
    let acc = ref 0 in
    for t = 0 to m - 1 do
      lo.(t) <- !acc;
      acc := !acc + quota.(t);
      hi.(t) <- !acc
    done;
    Metrics.incr ctx.metrics.Metrics.forks;
    Metrics.add ctx.metrics.Metrics.tasks_spawned (m - 1);
    let run_chunk t =
      let store : Eval.store = Hashtbl.create (Hashtbl.length parent_store) in
      Hashtbl.iter
        (fun k r ->
          match !r with
          | (Value.VInt _ | Value.VFloat _) as sv -> Hashtbl.replace store k (ref sv)
          | arr -> Hashtbl.replace store k (ref arr) (* share the payload *))
        parent_store;
      let cenv = scratch_env ctx store in
      let err = ref None in
      (try
         (match f.Ast.finit with
         | Some (lhs, e) -> Eval.exec_assign cenv lhs (Eval.eval_expr cenv e)
         | None -> ());
         let i = ref 0 in
         let rec go () =
           if truthy (Eval.eval_expr cenv f.Ast.fcond) then begin
             if !i >= lo.(t) && !i < hi.(t) then Eval.exec_block_env cenv f.Ast.fbody;
             incr i;
             (match f.Ast.fstep with
             | Some (lhs, e) -> Eval.exec_assign cenv lhs (Eval.eval_expr cenv e)
             | None -> ());
             go ()
           end
         in
         go ()
       with e -> err := Some e);
      (!err, store, Eval.env_steps cenv)
    in
    let chunk_label t =
      if Trace.enabled () then Printf.sprintf "chunk%d" t else "chunk"
    in
    let futs =
      List.init (m - 1) (fun i ->
          Pool.spawn ~label:(chunk_label (i + 1)) ctx.pool (fun () -> run_chunk (i + 1)))
    in
    let r0 = run_chunk 0 in
    let results =
      Array.of_list
        (r0
        :: List.map
             (fun fu ->
               match Pool.await ctx.pool fu with
               | Ok r -> r
               | Error e -> (Some e, (Hashtbl.create 1 : Eval.store), 0))
             futs)
    in
    Array.iter (fun (_, _, steps) -> Metrics.add ctx.metrics.Metrics.steps steps) results;
    (match
       Array.fold_left (fun acc (e, _, _) -> match acc with Some _ -> acc | None -> e) None results
     with
    | Some e -> raise e
    | None -> ());
    (* scalars after a DOALL loop carry the last iteration's values: take
       them from the task that ran the last chunk (arrays updated in place) *)
    let last_t = ref 0 in
    for t = 0 to m - 1 do
      if quota.(t) > 0 then last_t := t
    done;
    let _, lstore, _ = results.(!last_t) in
    let merge_set = SS.diff (Defuse.stmt_all s).Defuse.defs (Defuse.stmt_locals s) in
    SS.iter
      (fun v ->
        match Hashtbl.find_opt lstore v with
        | None -> ()
        | Some r -> (
            match !r with
            | (Value.VInt _ | Value.VFloat _) as sv -> (
                Metrics.incr ctx.metrics.Metrics.merges;
                match Hashtbl.find_opt parent_store v with
                | Some pr -> pr := sv
                | None -> Hashtbl.replace parent_store v (ref sv))
            | _ -> ()))
      merge_set
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

type result = { ret : Value.t option; steps : int; metrics : Metrics.snapshot }

(* Shared driver: run the program under an optional watchdog and report
   the raw outcome together with the watchdog's verdict.  The verdict is
   read *before* the watchdog is stopped so a timeout/deadlock that fired
   during the run is never lost. *)
let run_watched ?domains ?(max_steps = Eval.default_max_steps) ?(timeout_s = 0.)
    ?(grace_s = 0.5) (prog : Ast.program) (root : Node.t) (sol : Solution.t) =
  let watch =
    if timeout_s > 0. then Some (Watchdog.create ~grace_s ~timeout_s ()) else None
  in
  let pool = Pool.create ?domains () in
  let metrics = Metrics.create () in
  let ctx = { pool; metrics; max_steps; slots = Eval.profile_slots prog; watch } in
  let t0 = Unix.gettimeofday () in
  let outcome =
    try
      Ok
        (Pool.run pool (fun () ->
             let store : Eval.store = Hashtbl.create 64 in
             let env = scratch_env ctx store in
             let ret =
               try
                 Eval.init_globals env prog;
                 exec_node ctx env root sol;
                 None
               with Eval.Return_exn v -> v
             in
             Metrics.add metrics.Metrics.steps (Eval.env_steps env);
             ret))
    with e -> Error e
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let verdict =
    match watch with None -> Watchdog.Running | Some w -> Watchdog.verdict w
  in
  Option.iter Watchdog.stop watch;
  let snap =
    Metrics.snapshot metrics ~domains:(Pool.size pool) ~wall_s ~steals:(Pool.steals pool)
      ~worker_busy_s:(Pool.worker_busy_s pool) ~worker_tasks:(Pool.worker_tasks pool)
      ~worker_steals:(Pool.worker_steals pool)
  in
  Pool.shutdown pool;
  let outcome =
    Result.map (fun ret -> { ret; steps = snap.Metrics.n_steps; metrics = snap }) outcome
  in
  (outcome, verdict)

let verdict_error = function
  | Watchdog.Running -> None
  | Watchdog.Timed_out ->
      Some
        (Mpsoc_error.make ~phase:Execute ~kind:Timeout
           ~advice:"raise --timeout or reduce the input size"
           "execution exceeded the wall-clock deadline")
  | Watchdog.Deadlocked waiting_tasks ->
      Some
        (Mpsoc_error.make ~phase:Execute
           ~kind:(Deadlock { waiting_tasks })
           ~advice:
             "the task graph has a receive with no reachable producer; report the \
              solution tree and fault plan"
           (Printf.sprintf "deadlock: %d receive(s) parked with no progress"
              (List.length waiting_tasks)))

let error_of_exn verdict e =
  match verdict_error verdict with
  | Some err -> err
  | None -> (
      match e with
      | Mpsoc_error.Error err -> err
      | Eval.Step_limit_exceeded n ->
          Mpsoc_error.make ~phase:Execute ~kind:Resource_limit
            ~advice:"raise --max-steps"
            (Printf.sprintf "interpreted-statement budget exceeded (%d steps)" n)
      | Eval.Runtime_error msg ->
          Mpsoc_error.make ~phase:Execute ~kind:Invalid_input msg
      | Fault.Injected { point; hit } ->
          Mpsoc_error.make ~phase:Execute ~kind:(Fault_injected point)
            (Printf.sprintf "armed fault plan fired on hit %d" hit)
      | Eval.Cancelled | Expired_receive _ ->
          (* cancellation implies a verdict; if the race hid it, report a
             plain timeout rather than an internal error *)
          Mpsoc_error.make ~phase:Execute ~kind:Timeout
            "execution cancelled by the watchdog"
      | e ->
          Mpsoc_error.make ~phase:Execute ~kind:Internal (Printexc.to_string e))

let run ?domains ?max_steps ?timeout_s ?grace_s prog root sol : result =
  let outcome, verdict =
    run_watched ?domains ?max_steps ?timeout_s ?grace_s prog root sol
  in
  match outcome with
  | Ok r -> r
  | Error e -> (
      match verdict_error verdict with
      | Some err -> raise (Mpsoc_error.Error err)
      | None -> raise e)

let run_result ?domains ?max_steps ?timeout_s ?grace_s prog root sol :
    (result, Mpsoc_error.t) Stdlib.result =
  let outcome, verdict =
    run_watched ?domains ?max_steps ?timeout_s ?grace_s prog root sol
  in
  match outcome with Ok r -> Ok r | Error e -> Error (error_of_exn verdict e)

let ret_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Value.equal x y
  | _ -> false

let validate ?domains ?max_steps ?timeout_s ?grace_s prog root sol =
  let seq = Eval.run ?max_steps prog in
  let par = run ?domains ?max_steps ?timeout_s ?grace_s prog root sol in
  (par, seq, ret_equal par.ret seq.Eval.ret)
