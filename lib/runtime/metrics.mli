(** Shared execution counters for the task-parallel runtime, plus the
    immutable snapshot reported back to the caller. *)

type t = {
  forks : int Atomic.t;  (** fork/join regions that actually spawned *)
  inline_forks : int Atomic.t;  (** single-task partitions run inline *)
  tasks_spawned : int Atomic.t;
  sends : int Atomic.t;  (** channel cells filled *)
  recvs : int Atomic.t;  (** channel reads (incl. non-blocking hits) *)
  bytes_sent : int Atomic.t;  (** payload bytes moved through channels *)
  merges : int Atomic.t;  (** values merged back at joins *)
  splits : int Atomic.t;  (** DOALL loop entries executed chunked *)
  seq_fallbacks : int Atomic.t;  (** nodes demoted to sequential execution *)
  steps : int Atomic.t;  (** interpreter steps summed over all tasks *)
}

val create : unit -> t
val add : int Atomic.t -> int -> unit
val incr : int Atomic.t -> unit

type snapshot = {
  domains : int;
  wall_s : float;
  n_forks : int;
  n_inline_forks : int;
  n_tasks_spawned : int;
  n_steals : int;
  n_sends : int;
  n_recvs : int;
  n_bytes_sent : int;
  n_merges : int;
  n_splits : int;
  n_seq_fallbacks : int;
  n_steps : int;
  worker_busy_s : float array;  (** per worker, time spent running tasks *)
  worker_tasks : int array;  (** per worker, tasks executed *)
  worker_steals : int array;  (** per worker, tasks stolen from others *)
}

val snapshot :
  t ->
  domains:int ->
  wall_s:float ->
  steals:int ->
  worker_busy_s:float array ->
  worker_tasks:int array ->
  worker_steals:int array ->
  snapshot

val pp : Format.formatter -> snapshot -> unit
(** Aggregate counters only; see {!pp_workers} for the per-worker lines. *)

val pp_workers : Format.formatter -> snapshot -> unit
(** Per-worker busy-seconds / tasks-run / steals breakdown. *)
