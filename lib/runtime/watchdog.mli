(** Runtime watchdog: a monitor domain that turns hangs of the execution
    runtime into typed verdicts — [Deadlocked] when parked def-use
    receives stop the pulse for a grace period, [Timed_out] past a global
    wall-clock deadline.  On a verdict it sets the cooperative cancel flag
    (observed by the interpreter's step counter) and expires every parked
    receive, so the run always drains. *)

type t

type verdict = Running | Timed_out | Deadlocked of string list

val create : ?grace_s:float -> timeout_s:float -> unit -> t
(** Spawn the monitor domain.  [timeout_s] is the absolute deadline from
    now ([0.] = none); [grace_s] (default 0.5) is the no-progress window
    after which parked receives are declared deadlocked ([0.] disables
    deadlock detection).  Call {!stop} when the run is over. *)

val stop : t -> unit
(** Stop and join the monitor domain (idempotent). *)

val beat : t -> unit
(** Signal progress (fork/join transitions, channel traffic).  The
    interpreter signals through {!pulse_counter} directly. *)

val cancel_token : t -> bool Atomic.t
(** Cooperative cancel flag, set on any verdict; wire it into
    [Interp.Eval]'s supervision so compute loops terminate. *)

val pulse_counter : t -> int Atomic.t
(** The progress pulse; bump it from interpreter supervision. *)

val register : t -> label:string -> expire:(unit -> unit) -> int
(** Announce a parked receive.  [expire] must be idempotent and safe to
    call concurrently with the receive being satisfied; it is invoked on
    a verdict (immediately, if one was already declared).  Returns a
    ticket for {!unregister}. *)

val unregister : t -> int -> unit
(** Withdraw a parked receive (after it woke up). *)

val verdict : t -> verdict
