(** Per-statement dynamic profile: execution counts and abstract work
    (cycles at CPI 1), keyed by statement id.  This plays the role of the
    cost annotation the paper obtains from target-platform simulation. *)

type t = {
  counts : int array;  (** times each statement was executed *)
  work : float array;  (** total abstract cycles attributed to it *)
  mutable total_work : float;  (** whole-program cycles *)
}

let create n = { counts = Array.make n 0; work = Array.make n 0.; total_work = 0. }

let record t sid cycles =
  t.counts.(sid) <- t.counts.(sid) + 1;
  t.work.(sid) <- t.work.(sid) +. cycles;
  t.total_work <- t.total_work +. cycles

(** Add extra cycles to a statement without bumping its count (used for
    per-iteration loop-control overhead attributed to the loop head). *)
let add_work t sid cycles =
  t.work.(sid) <- t.work.(sid) +. cycles;
  t.total_work <- t.total_work +. cycles

let count t sid = t.counts.(sid)
let work t sid = t.work.(sid)

(** Average cycles per execution (0 if never executed). *)
let work_per_exec t sid =
  if t.counts.(sid) = 0 then 0. else t.work.(sid) /. float_of_int t.counts.(sid)

let pp ppf t =
  Array.iteri
    (fun sid c ->
      if c > 0 then
        Fmt.pf ppf "sid %3d: count %8d  work %12.1f@." sid c t.work.(sid))
    t.counts
