(** Profiling interpreter for inlined Mini-C programs.

    Executes [main] on concrete (in-source, deterministic) data and records
    per-statement execution counts and abstract work into a {!Profile.t}.
    Expression evaluation returns both the value and its cycle cost so
    cost attribution is exact. *)

open Minic

exception Runtime_error = Value.Runtime_error

type result = {
  ret : Value.t option;  (** value of [return] in main, if any *)
  profile : Profile.t;
  steps : int;  (** statements executed *)
}

exception Step_limit_exceeded of int

(** Cooperative supervision for runtime execution: a watchdog sets
    [cancel]; the interpreter bumps [pulse] and checks [cancel] every
    1024 steps, raising {!Cancelled} — so even pure compute loops
    terminate on a timeout verdict. *)
type supervision = { cancel : bool Atomic.t; pulse : int Atomic.t }

exception Cancelled

type store = (string, Value.t ref) Hashtbl.t

type env = {
  vars : store;
  profile : Profile.t;
  mutable steps : int;
  max_steps : int;
  supervision : supervision option;
}

exception Return_exn of Value.t option

let default_max_steps = 50_000_000

(** Slots a profile needs to cover every statement id of [prog]. *)
let profile_slots (prog : Ast.program) : int =
  let max_sid =
    List.fold_left
      (fun acc (f : Ast.func) ->
        Ast.fold_stmts (fun m (s : Ast.stmt) -> max m s.sid) acc f.fbody)
      0 prog.funcs
  in
  max (max_sid + 1) (Ast.stmt_count prog)

let make_env ?(max_steps = default_max_steps) ?supervision ~profile
    (vars : store) : env =
  { vars; profile; steps = 0; max_steps; supervision }

let env_store env = env.vars
let env_steps env = env.steps

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.max_steps then raise (Step_limit_exceeded env.steps);
  match env.supervision with
  | Some s when env.steps land 1023 = 0 ->
      Atomic.incr s.pulse;
      if Atomic.get s.cancel then raise Cancelled
  | _ -> ()

let tick_env = tick

let lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some r -> r
  | None -> Value.error "unbound variable %s" name

(* ------------------------------------------------------------------ *)
(* Expressions: evaluate to (value, cycles)                            *)
(* ------------------------------------------------------------------ *)

let eval_int_binop op a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div -> if b = 0 then Value.error "integer division by zero" else a / b
  | Ast.Mod -> if b = 0 then Value.error "integer modulo by zero" else a mod b
  | Ast.Lt -> if a < b then 1 else 0
  | Ast.Le -> if a <= b then 1 else 0
  | Ast.Gt -> if a > b then 1 else 0
  | Ast.Ge -> if a >= b then 1 else 0
  | Ast.Eq -> if a = b then 1 else 0
  | Ast.Ne -> if a <> b then 1 else 0
  | Ast.LAnd -> if a <> 0 && b <> 0 then 1 else 0
  | Ast.LOr -> if a <> 0 || b <> 0 then 1 else 0
  | Ast.Shl -> a lsl b
  | Ast.Shr -> a asr b
  | Ast.BAnd -> a land b
  | Ast.BOr -> a lor b
  | Ast.BXor -> a lxor b

let eval_float_binop op a b =
  match op with
  | Ast.Add -> Value.VFloat (a +. b)
  | Ast.Sub -> Value.VFloat (a -. b)
  | Ast.Mul -> Value.VFloat (a *. b)
  | Ast.Div -> Value.VFloat (a /. b)
  | Ast.Lt -> Value.VInt (if a < b then 1 else 0)
  | Ast.Le -> Value.VInt (if a <= b then 1 else 0)
  | Ast.Gt -> Value.VInt (if a > b then 1 else 0)
  | Ast.Ge -> Value.VInt (if a >= b then 1 else 0)
  | Ast.Eq -> Value.VInt (if a = b then 1 else 0)
  | Ast.Ne -> Value.VInt (if a <> b then 1 else 0)
  | Ast.Mod | Ast.LAnd | Ast.LOr | Ast.Shl | Ast.Shr | Ast.BAnd | Ast.BOr
  | Ast.BXor ->
      Value.error "integer operator applied to float operands"

let rec eval env (e : Ast.expr) : Value.t * float =
  match e with
  | Ast.IntLit n -> (Value.VInt n, Costmodel.literal)
  | Ast.FloatLit f -> (Value.VFloat f, Costmodel.literal)
  | Ast.Var name -> (!(lookup env name), Costmodel.var_read)
  | Ast.ArrRef (name, idxs) -> (
      let idx_vals, idx_cost = eval_list env idxs in
      let idxs' = List.map Value.to_int idx_vals in
      match !(lookup env name) with
      | Value.VArrI { data; dims } ->
          let k = Value.flat_index ~dims ~idxs:idxs' in
          (Value.VInt data.(k), idx_cost +. Costmodel.array_access)
      | Value.VArrF { data; dims } ->
          let k = Value.flat_index ~dims ~idxs:idxs' in
          (Value.VFloat data.(k), idx_cost +. Costmodel.array_access)
      | Value.VInt _ | Value.VFloat _ ->
          Value.error "%s is not an array" name)
  | Ast.Unop (op, e1) -> (
      let v, c = eval env e1 in
      let c = c +. Costmodel.unop op in
      match (op, v) with
      | Ast.Neg, Value.VInt n -> (Value.VInt (-n), c)
      | Ast.Neg, Value.VFloat f -> (Value.VFloat (-.f), c)
      | Ast.Not, v -> (Value.VInt (if Value.to_int v = 0 then 1 else 0), c)
      | Ast.BitNot, v -> (Value.VInt (lnot (Value.to_int v)), c)
      | _, (Value.VArrI _ | Value.VArrF _) ->
          Value.error "array used as a scalar")
  | Ast.Binop (op, e1, e2) ->
      let v1, c1 = eval env e1 in
      let v2, c2 = eval env e2 in
      let float_op = Value.is_float v1 || Value.is_float v2 in
      let c = c1 +. c2 +. Costmodel.binop ~float_op op in
      if float_op then
        (eval_float_binop op (Value.to_float v1) (Value.to_float v2), c)
      else (Value.VInt (eval_int_binop op (Value.to_int v1) (Value.to_int v2)), c)
  | Ast.Call (name, args) -> (
      match Builtins.find name with
      | None ->
          Value.error "call to %s: interpreter requires an inlined program"
            name
      | Some b ->
          let vals, cost = eval_list env args in
          let cost = cost +. b.Builtins.cycles in
          if b.Builtins.float_args then
            ( Value.VFloat (Builtins.eval_float name (List.map Value.to_float vals)),
              cost )
          else
            ( Value.VInt (Builtins.eval_int name (List.map Value.to_int vals)),
              cost ))

and eval_list env es =
  List.fold_left
    (fun (vs, c) e ->
      let v, c' = eval env e in
      (vs @ [ v ], c +. c'))
    ([], 0.) es

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let assign env lhs value : float =
  match lhs with
  | Ast.LVar name ->
      let r = lookup env name in
      (* preserve the declared scalar type *)
      (match !r with
      | Value.VInt _ -> r := Value.VInt (Value.to_int value)
      | Value.VFloat _ -> r := Value.VFloat (Value.to_float value)
      | Value.VArrI _ | Value.VArrF _ ->
          Value.error "cannot assign a scalar to array %s" name);
      Costmodel.store_scalar
  | Ast.LArr (name, idxs) ->
      let idx_vals, idx_cost =
        List.fold_left
          (fun (vs, c) e ->
            let v, c' = eval env e in
            (vs @ [ Value.to_int v ], c +. c'))
          ([], 0.) idxs
      in
      (match !(lookup env name) with
      | Value.VArrI { data; dims } ->
          data.(Value.flat_index ~dims ~idxs:idx_vals) <- Value.to_int value
      | Value.VArrF { data; dims } ->
          data.(Value.flat_index ~dims ~idxs:idx_vals) <- Value.to_float value
      | Value.VInt _ | Value.VFloat _ -> Value.error "%s is not an array" name);
      idx_cost +. Costmodel.store_array

let truthy v = Value.to_int v <> 0

let rec exec_stmt env (s : Ast.stmt) : unit =
  tick env;
  match s.sdesc with
  | Ast.Decl d ->
      let init_cost, value =
        match d.dinit with
        | Some e ->
            let v, c = eval env e in
            let v =
              match d.dty with
              | Ast.TScalar Ast.SInt -> Value.VInt (Value.to_int v)
              | Ast.TScalar Ast.SFloat -> Value.VFloat (Value.to_float v)
              | _ -> v
            in
            (c +. Costmodel.store_scalar, v)
        | None -> (Costmodel.store_scalar, Value.zero_of_ty d.dty)
      in
      Hashtbl.replace env.vars d.dname (ref value);
      Profile.record env.profile s.sid init_cost
  | Ast.Assign (lhs, e) ->
      let v, c = eval env e in
      let c' = assign env lhs v in
      Profile.record env.profile s.sid (c +. c')
  | Ast.If (cond, b1, b2) ->
      let v, c = eval env cond in
      Profile.record env.profile s.sid (c +. Costmodel.branch);
      if truthy v then exec_block env b1 else exec_block env b2
  | Ast.While (cond, body) ->
      Profile.record env.profile s.sid 0.;
      (* each condition test counts as a step so that an empty loop body
         still makes progress towards the step limit *)
      let rec loop () =
        tick env;
        let v, c = eval env cond in
        Profile.add_work env.profile s.sid (c +. Costmodel.branch);
        if truthy v then begin
          exec_block env body;
          loop ()
        end
      in
      loop ()
  | Ast.For { finit; fcond; fstep; fbody } ->
      Profile.record env.profile s.sid 0.;
      (match finit with
      | Some (lhs, e) ->
          let v, c = eval env e in
          let c' = assign env lhs v in
          Profile.add_work env.profile s.sid (c +. c')
      | None -> ());
      let rec loop () =
        tick env;
        let v, c = eval env fcond in
        Profile.add_work env.profile s.sid (c +. Costmodel.branch);
        if truthy v then begin
          exec_block env fbody;
          (match fstep with
          | Some (lhs, e) ->
              let v, c = eval env e in
              let c' = assign env lhs v in
              Profile.add_work env.profile s.sid (c +. c')
          | None -> ());
          loop ()
        end
      in
      loop ()
  | Ast.Return e_opt ->
      let v, c =
        match e_opt with
        | Some e ->
            let v, c = eval env e in
            (Some v, c)
        | None -> (None, 0.)
      in
      Profile.record env.profile s.sid c;
      raise (Return_exn v)
  | Ast.ExprStmt e ->
      let _, c = eval env e in
      Profile.record env.profile s.sid c
  | Ast.Block body ->
      Profile.record env.profile s.sid 0.;
      exec_block env body

and exec_block env (b : Ast.block) = List.iter (exec_stmt env) b

(* ------------------------------------------------------------------ *)
(* Re-entrant entry points (used by the execution runtime)             *)
(* ------------------------------------------------------------------ *)

(** Evaluate an expression for its value (cost is recorded by the caller
    if needed). *)
let eval_expr env e : Value.t = fst (eval env e)

(** Assign [value] to [lhs] in the environment's store. *)
let exec_assign env lhs value : unit = ignore (assign env lhs value : float)

(** Execute a statement list against the environment's store.  May raise
    {!Return_exn}, {!Runtime_error} or {!Step_limit_exceeded}. *)
let exec_block_env = exec_block

(** Bind the program's globals (evaluating initializers) in the store. *)
let init_globals env (prog : Ast.program) : unit =
  List.iter
    (fun (d : Ast.decl) ->
      let value =
        match d.dinit with
        | Some e -> fst (eval env e)
        | None -> Value.zero_of_ty d.dty
      in
      Hashtbl.replace env.vars d.dname (ref value))
    prog.globals

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Run the inlined program's [main].  [max_steps] bounds interpreted
    statements (default 50 million). *)
let run ?(max_steps = default_max_steps) (prog : Ast.program) : result =
  let main =
    match Ast.find_func prog "main" with
    | Some m -> m
    | None -> Value.error "program has no main function"
  in
  if List.length main.fparams > 0 then
    Value.error "main must take no parameters";
  let env =
    make_env ~max_steps
      ~profile:(Profile.create (profile_slots prog))
      (Hashtbl.create 64)
  in
  init_globals env prog;
  let ret = try exec_block env main.fbody; None with Return_exn v -> v in
  { ret; profile = env.profile; steps = env.steps }
