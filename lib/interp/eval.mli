(** Profiling interpreter for inlined Mini-C programs.  Executes [main] on
    the program's own (deterministic, in-source) data and records, per
    statement, execution counts and abstract work — the role of the
    paper's target-platform simulation for cost extraction. *)

open Minic

exception Runtime_error of string

type result = {
  ret : Value.t option;  (** value of [return] in main, if any *)
  profile : Profile.t;
  steps : int;  (** statements executed *)
}

exception Step_limit_exceeded of int

(** Run the inlined program's [main].  [max_steps] bounds interpreted
    statements (default 50 million). *)
val run : ?max_steps:int -> Ast.program -> result

val default_max_steps : int

(** {2 Re-entrant interface}

    The execution runtime ({!module:Runtime}, [lib/runtime]) runs tasks of
    a partitioned program concurrently, each against an isolated store.
    These entry points expose the interpreter's machinery over an explicit
    store so a statement subrange can be executed in isolation. *)

(** A mutable variable store (name -> value cell).  Stores are not
    thread-safe: each task owns its store exclusively. *)
type store = (string, Value.t ref) Hashtbl.t

type env
(** Interpreter state over a store: profile, step counter, step budget. *)

(** Cooperative supervision for runtime execution: a watchdog sets
    [cancel]; the interpreter bumps [pulse] and checks [cancel] every
    1024 steps, raising {!Cancelled} — so even pure compute loops
    terminate on a timeout verdict. *)
type supervision = { cancel : bool Atomic.t; pulse : int Atomic.t }

exception Cancelled

exception Return_exn of Value.t option
(** Raised by [return]; carries the returned value. *)

(** Slots a {!Profile.t} needs to cover every statement id of the
    program. *)
val profile_slots : Ast.program -> int

val make_env :
  ?max_steps:int -> ?supervision:supervision -> profile:Profile.t -> store -> env
val env_store : env -> store
val env_steps : env -> int

(** Count one interpreted statement against the step budget. *)
val tick_env : env -> unit

(** Evaluate an expression for its value. *)
val eval_expr : env -> Ast.expr -> Value.t

(** Assign a value to an lvalue in the environment's store. *)
val exec_assign : env -> Ast.lhs -> Value.t -> unit

(** Execute a statement list.  May raise {!Return_exn}, {!Runtime_error}
    or {!Step_limit_exceeded}. *)
val exec_block_env : env -> Ast.block -> unit

(** Bind the program's globals (evaluating initializers) in the store. *)
val init_globals : env -> Ast.program -> unit
