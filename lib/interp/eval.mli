(** Profiling interpreter for inlined Mini-C programs.  Executes [main] on
    the program's own (deterministic, in-source) data and records, per
    statement, execution counts and abstract work — the role of the
    paper's target-platform simulation for cost extraction. *)

open Minic

exception Runtime_error of string

type result = {
  ret : Value.t option;  (** value of [return] in main, if any *)
  profile : Profile.t;
  steps : int;  (** statements executed *)
}

exception Step_limit_exceeded of int

(** Run the inlined program's [main].  [max_steps] bounds interpreted
    statements (default 50 million). *)
val run : ?max_steps:int -> Ast.program -> result
