(** High-level timing model: abstract cycle weights per operation at CPI 1
    (the substitute for the paper's cycle-accurate cost extraction).
    Only relative magnitudes matter to the parallelizer. *)

open Minic

val int_binop : Ast.binop -> float
val float_binop : Ast.binop -> float
val binop : float_op:bool -> Ast.binop -> float
val unop : Ast.unop -> float
val var_read : float
val array_access : float
val store_scalar : float
val store_array : float
val literal : float
val branch : float

(** Cycle cost of a builtin by name (raises on unknown names). *)
val builtin : string -> float
