(** Per-statement dynamic profile: execution counts and abstract work
    (cycles at CPI 1), keyed by statement id. *)

type t = {
  counts : int array;  (** times each statement was executed *)
  work : float array;  (** total abstract cycles attributed to it *)
  mutable total_work : float;  (** whole-program cycles *)
}

val create : int -> t

(** Record one execution of statement [sid] costing [cycles]. *)
val record : t -> int -> float -> unit

(** Add cycles without bumping the count (per-iteration loop-control
    overhead attributed to the loop head). *)
val add_work : t -> int -> float -> unit

val count : t -> int -> int
val work : t -> int -> float

(** Average cycles per execution (0 if never executed). *)
val work_per_exec : t -> int -> float

val pp : Format.formatter -> t -> unit
