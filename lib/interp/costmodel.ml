(** High-level timing model: abstract cycle weights per operation at CPI 1.

    The paper extracts per-statement execution costs by cycle-accurate
    target simulation (CoMET); this table is our substitute.  Only the
    *relative* magnitudes matter to the parallelizer — absolute per-class
    times are derived later by scaling with a processor class's clock
    frequency and CPI (see {!Platform.Proc_class.time_us}). *)

open Minic

let int_binop : Ast.binop -> float = function
  | Ast.Add | Ast.Sub -> 1.
  | Ast.Mul -> 3.
  | Ast.Div | Ast.Mod -> 12.
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> 1.
  | Ast.LAnd | Ast.LOr -> 1.
  | Ast.Shl | Ast.Shr | Ast.BAnd | Ast.BOr | Ast.BXor -> 1.

let float_binop : Ast.binop -> float = function
  | Ast.Add | Ast.Sub -> 4.
  | Ast.Mul -> 6.
  | Ast.Div -> 28.
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> 2.
  | Ast.Mod | Ast.LAnd | Ast.LOr | Ast.Shl | Ast.Shr | Ast.BAnd | Ast.BOr
  | Ast.BXor ->
      2.

let binop ~float_op op = if float_op then float_binop op else int_binop op

let unop : Ast.unop -> float = function
  | Ast.Neg -> 1.
  | Ast.Not -> 1.
  | Ast.BitNot -> 1.

(** Reading a scalar variable (register or L1 hit). *)
let var_read = 1.

(** Address computation + memory access for an array element. *)
let array_access = 3.

(** Storing to a scalar / to an array element. *)
let store_scalar = 1.

let store_array = 3.

(** Literal materialization. *)
let literal = 0.5

(** Branch evaluation overhead of an [if]/[while]/[for] iteration. *)
let branch = 2.

let builtin name =
  match Builtins.find name with
  | Some b -> b.Builtins.cycles
  | None -> invalid_arg ("Costmodel.builtin: " ^ name)
