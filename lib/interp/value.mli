(** Runtime values of the Mini-C interpreter.  Arrays are stored flattened
    with their dimension vector. *)

open Minic

type t =
  | VInt of int
  | VFloat of float
  | VArrI of { data : int array; dims : int list }
  | VArrF of { data : float array; dims : int list }

exception Runtime_error of string

(** Raise {!Runtime_error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val zero_of_ty : Ast.ty -> t
val to_int : t -> int
val to_float : t -> float
val is_float : t -> bool

(** Flattened offset with per-dimension bounds checks. *)
val flat_index : dims:int list -> idxs:int list -> int

(** Deep copy: array payloads are duplicated so the copy can be mutated
    (or sent to another domain) without aliasing the original. *)
val copy : t -> t

(** Structural equality; floats compare with {!Float.equal} (NaN = NaN). *)
val equal : t -> t -> bool

val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
