(** Runtime values of the Mini-C interpreter.  Arrays are stored flattened
    with their dimension vector for index computation. *)

open Minic

type t =
  | VInt of int
  | VFloat of float
  | VArrI of { data : int array; dims : int list }
  | VArrF of { data : float array; dims : int list }

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let zero_of_ty = function
  | Ast.TScalar Ast.SInt -> VInt 0
  | Ast.TScalar Ast.SFloat -> VFloat 0.
  | Ast.TArray (Ast.SInt, dims) ->
      VArrI { data = Array.make (List.fold_left ( * ) 1 dims) 0; dims }
  | Ast.TArray (Ast.SFloat, dims) ->
      VArrF { data = Array.make (List.fold_left ( * ) 1 dims) 0.; dims }
  | Ast.TVoid -> error "cannot create a void value"

let to_int = function
  | VInt n -> n
  | VFloat f -> int_of_float f
  | VArrI _ | VArrF _ -> error "array used as a scalar"

let to_float = function
  | VInt n -> float_of_int n
  | VFloat f -> f
  | VArrI _ | VArrF _ -> error "array used as a scalar"

let is_float = function VFloat _ -> true | _ -> false

(** Flattened offset for [idxs] in an array of shape [dims]; bounds are
    checked per dimension. *)
let flat_index ~dims ~idxs =
  let rec go dims idxs acc =
    match (dims, idxs) with
    | [], [] -> acc
    | d :: dims', i :: idxs' ->
        if i < 0 || i >= d then
          error "array index %d out of bounds for dimension of size %d" i d
        else go dims' idxs' ((acc * d) + i)
    | _ -> error "wrong number of array indices"
  in
  go dims idxs 0

(** Deep copy: array payloads are duplicated so the copy can be mutated
    (or sent to another domain) without aliasing the original. *)
let copy = function
  | (VInt _ | VFloat _) as v -> v
  | VArrI { data; dims } -> VArrI { data = Array.copy data; dims }
  | VArrF { data; dims } -> VArrF { data = Array.copy data; dims }

(** Structural equality (exact, including float bit-for-bit via [=]). *)
let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> Float.equal x y
  | VArrI x, VArrI y -> x.dims = y.dims && x.data = y.data
  | VArrF x, VArrF y ->
      x.dims = y.dims
      && Array.length x.data = Array.length y.data
      && Array.for_all2 Float.equal x.data y.data
  | _ -> false

let size_bytes = function
  | VInt _ | VFloat _ -> 4
  | VArrI { data; _ } -> 4 * Array.length data
  | VArrF { data; _ } -> 4 * Array.length data

let pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VFloat f -> Fmt.float ppf f
  | VArrI { data; dims } ->
      Fmt.pf ppf "int[%a]{%a%s}"
        Fmt.(list ~sep:(any "][") int)
        dims
        Fmt.(array ~sep:comma int)
        (Array.sub data 0 (min 8 (Array.length data)))
        (if Array.length data > 8 then ", ..." else "")
  | VArrF { data; dims } ->
      Fmt.pf ppf "float[%a]{%a%s}"
        Fmt.(list ~sep:(any "][") int)
        dims
        Fmt.(array ~sep:comma float)
        (Array.sub data 0 (min 8 (Array.length data)))
        (if Array.length data > 8 then ", ..." else "")
