(** [mpsoc-par] — command-line driver for the parallelization tool flow.

    Subcommands:
    - [parallelize FILE]: run the full flow on a Mini-C source file and
      print the parallel specification, pre-mapping and simulated speedup;
    - [analyze FILE]: print the profiled AHTG;
    - [bench NAME]: run one suite benchmark through both approaches;
    - [experiments]: regenerate the paper's figures and Table I;
    - [list]: list suite benchmarks and platform presets. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(** Print a typed error and exit with its contract code (3 invalid input /
    resource limit, 4 timeout or deadlock, 1 injected fault or internal). *)
let exit_with (e : Mpsoc_error.t) =
  Fmt.epr "%a@." Mpsoc_error.pp e;
  exit (Mpsoc_error.exit_code e)

let platform_arg =
  Arg.(
    value
    & opt string "platform-a-accel"
    & info [ "p"; "platform" ] ~docv:"PLATFORM"
        ~doc:
          "Target platform: a preset name (see $(b,list)) or a platform \
           description file.")

(* Resolved inside each subcommand (not an [Arg.conv]) so a malformed
   platform file honours the typed exit-code contract (exit 3) instead of
   cmdliner's generic CLI-error code. *)
let resolve_platform s : Platform.Desc.t =
  match Platform.Presets.find s with
  | Some p -> p
  | None ->
      if Sys.file_exists s then
        match Platform.Parse.of_file_result s with
        | Ok p -> p
        | Error e -> exit_with e
      else
        exit_with
          (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:s
             ~advice:"see `mpsoc-par list` for preset names"
             (Printf.sprintf
                "unknown platform %S (preset names: %s; or a description file)" s
                (String.concat ", " (List.map fst Platform.Presets.all))))

let approach_arg =
  Arg.(
    value
    & opt (enum [ ("hetero", Parcore.Parallelize.Heterogeneous);
                  ("homo", Parcore.Parallelize.Homogeneous) ])
        Parcore.Parallelize.Heterogeneous
    & info [ "a"; "approach" ] ~docv:"APPROACH"
        ~doc:"Parallelization approach: $(b,hetero) (the paper's) or \
              $(b,homo) (the baseline [6]).")

let time_limit_arg =
  Arg.(
    value
    & opt float Parcore.Config.default.Parcore.Config.ilp_time_limit_s
    & info [ "ilp-time-limit" ] ~docv:"SECONDS"
        ~doc:"Time budget per generated ILP.")

let max_steps_arg =
  Arg.(
    value
    & opt int Parcore.Config.default.Parcore.Config.max_steps
    & info [ "max-steps" ] ~docv:"N"
        ~doc:"Interpreted-statement budget for profiling and execution runs.")

let jobs_arg =
  Arg.(
    value
    & opt int Parcore.Config.default.Parcore.Config.jobs
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallelization itself: sibling subtrees \
           and independent per-class ILP sweeps are solved concurrently. \
           $(b,1) (the default) runs sequentially on the calling domain; \
           $(b,0) uses the machine's recommended domain count.  Chosen \
           solutions are bit-identical at any value.")

let timeout_arg =
  Arg.(
    value
    & opt float Parcore.Config.default.Parcore.Config.timeout_s
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock deadline for the execution runtime.  Past it the \
           watchdog cancels the run and the tool exits 4 with a \
           $(b,timeout) (or $(b,deadlock)) error.  0 disables the \
           watchdog.")

let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"SPEC"
        ~doc:
          "Arm the deterministic fault-injection harness for this run: a \
           comma list of $(i,point@hit=action) rules (action: \
           $(b,raise), $(b,exhaust), or $(b,delay:SECONDS)) or \
           $(b,seed:N) for a generated plan.  Probe points: \
           frontend.parse, platform.io, simplex.pivot, ilp.budget, \
           pool.spawn, channel.recv.")

(** Arm the requested fault plan (if any) around [f]. *)
let with_fault_plan spec f =
  match spec with
  | None -> f ()
  | Some s -> (
      match Fault.of_spec s with
      | Ok plan -> Fault.with_plan plan f
      | Error msg ->
          exit_with
            (Mpsoc_error.make ~phase:Cli ~kind:Invalid_input ~location:s
               ~advice:"spec: point@hit=raise|exhaust|delay:S[,...] or seed:N"
               ("bad --fault-plan: " ^ msg)))

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist solved ILP subproblems under $(docv) and answer \
           structurally identical solves from disk on later runs.  Warm \
           runs are bit-identical to cold ones; corrupt or stale cache \
           files silently degrade to misses.  Created if missing.")

let cache_max_mb_arg =
  Arg.(
    value
    & opt int Parcore.Config.default.Parcore.Config.cache_max_mb
    & info [ "cache-max-mb" ] ~docv:"MB"
        ~doc:
          "Size cap of the persistent solve cache; least-recently-used \
           entries are evicted once the data file exceeds it.")

(* The four ILP acceleration toggles ship as one bundle: every solving
   subcommand takes all of them or none, and the solver treats them as a
   single configuration (they salt the memo/persistent cache keys
   together). *)
type accel = {
  presolve : bool;
  symmetry : bool;
  cuts : bool;
  seed_incumbent : bool;
}

let accel_default =
  {
    presolve = Parcore.Config.default.Parcore.Config.ilp_presolve;
    symmetry = Parcore.Config.default.Parcore.Config.ilp_symmetry;
    cuts = Parcore.Config.default.Parcore.Config.ilp_cuts;
    seed_incumbent = Parcore.Config.default.Parcore.Config.ilp_seed_incumbent;
  }

let accel_term =
  let toggle name default doc =
    Arg.(value & opt bool default & info [ name ] ~docv:"BOOL" ~doc)
  in
  let presolve =
    toggle "presolve" accel_default.presolve
      "Run the ILP presolve reductions (bound tightening, implied \
       fixings, dominated columns) before each branch & bound search; \
       solutions are lifted back so results are unchanged."
  in
  let symmetry =
    toggle "symmetry" accel_default.symmetry
      "Add lexicographic symmetry-breaking rows (used-task contiguity \
       and interchangeable-class ordering) to each formulation."
  in
  let cuts =
    toggle "cuts" accel_default.cuts
      "Separate knapsack cover cuts on the budget rows at the root node \
       and periodically during the dive."
  in
  let seed =
    toggle "seed-incumbent" accel_default.seed_incumbent
      "Prime each top-level solve's incumbent with the greedy list \
       schedule so fathoming starts from a real bound."
  in
  Term.(
    const (fun presolve symmetry cuts seed_incumbent ->
        { presolve; symmetry; cuts; seed_incumbent })
    $ presolve $ symmetry $ cuts $ seed)

let solver_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("ilp", Parcore.Config.Ilp);
             ("portfolio", Parcore.Config.Portfolio);
             ("heuristic", Parcore.Config.Heuristic);
           ])
        Parcore.Config.default.Parcore.Config.solver
    & info [ "solver" ] ~docv:"ENGINE"
        ~doc:
          "Per-node solve engine: $(b,ilp) (exact branch & bound, the \
           default), $(b,heuristic) (list scheduler + seeded GA refiner, \
           no branch & bound anywhere), or $(b,portfolio) (heuristic \
           first, its makespan seeds an exact solve under a reduced \
           deterministic work budget; the better answer wins).  All three \
           are deterministic at any $(b,--jobs).")

let portfolio_work_limit_arg =
  Arg.(
    value
    & opt float Parcore.Config.default.Parcore.Config.portfolio_work_limit
    & info [ "portfolio-work-limit" ] ~docv:"UNITS"
        ~doc:
          "Deterministic simplex-work budget for the exact side of each \
           $(b,--solver=portfolio) race (work units, not wall clock; \
           $(b,0) = the full $(b,ilp)-mode budget).")

let cfg_of ?(jobs = Parcore.Config.default.Parcore.Config.jobs)
    ?(timeout_s = Parcore.Config.default.Parcore.Config.timeout_s)
    ?(trace = None) ?(metrics = None) ?(profile = false) ?(cache_dir = None)
    ?(cache_max_mb = Parcore.Config.default.Parcore.Config.cache_max_mb)
    ?(accel = accel_default)
    ?(solver = Parcore.Config.default.Parcore.Config.solver)
    ?(portfolio_work_limit =
      Parcore.Config.default.Parcore.Config.portfolio_work_limit) time_limit
    max_steps =
  {
    Parcore.Config.default with
    Parcore.Config.ilp_time_limit_s = time_limit;
    max_steps;
    jobs;
    timeout_s;
    trace_file = trace;
    metrics_file = metrics;
    profile;
    cache_dir;
    cache_max_mb;
    ilp_presolve = accel.presolve;
    ilp_symmetry = accel.symmetry;
    ilp_cuts = accel.cuts;
    ilp_seed_incumbent = accel.seed_incumbent;
    solver;
    portfolio_work_limit;
  }

(* ---------------- observability ---------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it as Chrome \
           trace-event JSON to $(docv) (loadable in Perfetto or \
           chrome://tracing; one track per domain).  $(b,-) writes to \
           stdout.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the unified metrics JSON (solver totals, runtime \
           counters, per-phase wall times) to $(docv).  $(b,-) writes to \
           stdout.")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a profiling summary to stderr: per-phase wall times, \
           solver totals in the paper's Table I shape, and the slowest \
           individual ILP solves.")

(** Arm the trace recorder when any observability output was requested
    and hand [f] a report function: call it once the run's outcome is
    known (after normal output, before any [exit]) to stop the recorder
    and write the trace/metrics/profile exports. *)
let with_observability (cfg : Parcore.Config.t) ~generated_by f =
  let armed =
    cfg.Parcore.Config.trace_file <> None
    || cfg.Parcore.Config.metrics_file <> None
    || cfg.Parcore.Config.profile
  in
  if armed then Trace.start ();
  let t0 = Trace.now_s () in
  let report ?runtime ?cache ~stats () =
    if armed then begin
      let wall_s = Trace.now_s () -. t0 in
      match Trace.stop () with
      | None -> ()
      | Some c ->
          Option.iter
            (fun path -> Trace_chrome.write ~path c)
            cfg.Parcore.Config.trace_file;
          Option.iter
            (fun path ->
              Observe.write_json ~path
                (Observe.metrics_doc ~generated_by
                   ~phases:(Observe.phases_of_events c.Trace.events)
                   ?runtime ?cache ~trace:c ~wall_s stats))
            cfg.Parcore.Config.metrics_file;
          if cfg.Parcore.Config.profile then
            Fmt.epr "%t@." (fun ppf ->
                Observe.profile_table ppf ?runtime ~wall_s
                  ~dropped:c.Trace.dropped ~events:c.Trace.events stats)
    end
  in
  f report

(** Resolve a positional TARGET: a Mini-C source file, or a suite
    benchmark name.  The error path lists the available benchmark names
    (shared with batch and the serve daemon via {!Benchsuite.Suite.resolve}). *)
let resolve_target target : string * string =
  match Benchsuite.Suite.resolve target with
  | Ok r -> r
  | Error e -> exit_with e

let exit_err fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

(** Run [f], mapping the library's runtime failures (diverging or faulting
    input programs) to the typed exit-code contract. *)
let guard_runtime file f =
  match f () with
  | v -> v
  | exception Mpsoc_error.Error e -> exit_with e
  | exception Interp.Eval.Step_limit_exceeded n ->
      exit_with
        (Mpsoc_error.make ~phase:Profile ~kind:Resource_limit ~location:file
           ~advice:"raise --max-steps"
           (Printf.sprintf
              "the program did not terminate within %d interpreted statements" n))
  | exception Interp.Eval.Runtime_error m ->
      exit_with
        (Mpsoc_error.make ~phase:Profile ~kind:Invalid_input ~location:file
           ("runtime error during profiling: " ^ m))

(** The degraded-but-valid exit decision (exit 2); shared with the serve
    daemon's [degraded] response status. *)
let degradation_status = Parcore.Algorithm.degradation

let exit_degraded (algo : Parcore.Algorithm.result) =
  match degradation_status algo with
  | None -> ()
  | Some name ->
      (* diagnostic, not output: stderr keeps stdout machine-readable
         when --trace/--metrics write to - *)
      Fmt.epr "degradation: %s — solver budget ran out; the solution is valid \
               but possibly sub-optimal@."
        name;
      exit 2

(** Canonical solution digest (what the cold-vs-warm CI step diffs, and
    what serve responses report per request). *)
let solution_digest = Parcore.Algorithm.digest

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write the hierarchical task graph in Graphviz format to $(docv).")

let gantt_arg =
  Arg.(
    value & flag
    & info [ "gantt" ]
        ~doc:"Print an ASCII Gantt chart of the simulated parallel schedule.")

(* ---------------- parallelize ---------------- *)

let parallelize_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"A Mini-C source file or a suite benchmark name.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Also print the ILP statistics summary (solve time, branch \
                & bound nodes) to stderr.")
  in
  let run target platform approach time_limit max_steps jobs dot gantt verbose
      fault_spec trace metrics profile cache_dir cache_max_mb accel solver
      portfolio_work_limit =
    let platform = resolve_platform platform in
    let _name, src = resolve_target target in
    let cfg =
      cfg_of ~jobs ~trace ~metrics ~profile ~cache_dir ~cache_max_mb ~accel
        ~solver ~portfolio_work_limit time_limit max_steps
    in
    with_observability cfg ~generated_by:"mpsoc-par parallelize"
    @@ fun report ->
    match
      with_fault_plan fault_spec (fun () ->
          Parcore.Parallelize.run_result ~cfg ~approach ~platform src)
    with
    | Error e -> exit_with e
    | Ok out ->
        let algo = out.Parcore.Parallelize.algo in
        (* the reporting phase simulates the program; span it so the
           profile's phase times cover the whole run *)
        Trace.span ~cat:"phase" "report" (fun () ->
            Fmt.pr "platform: %a@." Platform.Desc.pp_summary platform;
            Fmt.pr "approach: %s@.@."
              (Parcore.Parallelize.approach_name approach);
            print_string
              (Parcore.Annotate.specification platform
                 out.Parcore.Parallelize.htg algo.Parcore.Algorithm.root);
            Fmt.pr "@.pre-mapping specification:@.";
            List.iter
              (fun (task, cls) -> Fmt.pr "  %s -> %s@." task cls)
              (Parcore.Annotate.pre_mapping platform
                 out.Parcore.Parallelize.htg algo.Parcore.Algorithm.root);
            let m = Parcore.Parallelize.metrics out in
            Fmt.pr
              "@.parallelization: %.2f s, %d ILPs, %d variables, %d \
               constraints@."
              algo.Parcore.Algorithm.wall_time_s
              algo.Parcore.Algorithm.stats.Ilp.Stats.ilps
              algo.Parcore.Algorithm.stats.Ilp.Stats.vars
              algo.Parcore.Algorithm.stats.Ilp.Stats.constrs;
            if verbose then begin
              Fmt.epr "ilp statistics: %a@." Ilp.Stats.pp
                algo.Parcore.Algorithm.stats;
              Option.iter
                (Fmt.epr "%a@." Cache.Store.pp_counters)
                algo.Parcore.Algorithm.disk_cache
            end;
            Fmt.pr "simulated makespan: %.1f us (sequential %.1f us)@."
              m.Sim.Engine.makespan_us
              (Sim.Engine.run platform out.Parcore.Parallelize.seq_program);
            Fmt.pr
              "speedup over sequential on the main core: %.2fx (theoretical \
               max %.2fx)@."
              (Parcore.Parallelize.speedup out)
              (Platform.Desc.theoretical_speedup platform);
            (match dot with
            | Some path ->
                Htg.Dot.to_file path out.Parcore.Parallelize.htg;
                Fmt.pr "task graph written to %s@." path
            | None -> ());
            if gantt then begin
              Fmt.pr "@.simulated schedule (first entry of each region):@.";
              print_string
                (Sim.Engine.gantt platform
                   (Sim.Engine.trace platform out.Parcore.Parallelize.program))
            end);
        report ?cache:algo.Parcore.Algorithm.disk_cache
          ~stats:algo.Parcore.Algorithm.stats ();
        exit_degraded algo
  in
  Cmd.v
    (Cmd.info "parallelize" ~doc:"Parallelize a Mini-C source file")
    Term.(
      const run $ target $ platform_arg $ approach_arg $ time_limit_arg
      $ max_steps_arg $ jobs_arg $ dot_arg $ gantt_arg $ verbose
      $ fault_plan_arg $ trace_arg $ metrics_arg $ profile_flag
      $ cache_dir_arg $ cache_max_mb_arg $ accel_term $ solver_arg
      $ portfolio_work_limit_arg)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file max_steps dot =
    let src = read_file file in
    match Minic.Frontend.compile src with
    | exception Minic.Frontend.Error e ->
        exit_with
          (Mpsoc_error.make ~phase:Frontend ~kind:Invalid_input ~location:file
             (Minic.Frontend.error_to_string e))
    | prog ->
        let r =
          guard_runtime file (fun () -> Interp.Eval.run ~max_steps prog)
        in
        (match r.Interp.Eval.ret with
        | Some v -> Fmt.pr "program result: %a@." Interp.Value.pp v
        | None -> ());
        Fmt.pr "interpreted %d statements, %.0f abstract cycles@.@."
          r.Interp.Eval.steps r.Interp.Eval.profile.Interp.Profile.total_work;
        let htg = Htg.Build.build prog r.Interp.Eval.profile in
        Fmt.pr "%a" (Htg.Node.pp ~indent:0) htg;
        match dot with
        | Some path ->
            Htg.Dot.to_file path htg;
            Fmt.pr "task graph written to %s@." path
        | None -> ()
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the profiled hierarchical task graph")
    Term.(const run $ file $ max_steps_arg $ dot_arg)

(* ---------------- bench ---------------- *)

let bench_cmd =
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let run name platform time_limit max_steps jobs accel solver
      portfolio_work_limit =
    let platform = resolve_platform platform in
    match Benchsuite.Suite.find name with
    | None ->
        exit_err "unknown benchmark %S (try: %s)" name
          (String.concat ", " Benchsuite.Suite.names)
    | Some b ->
        let ctx =
          Report.Experiments.create
            ~cfg:
              (cfg_of ~jobs ~accel ~solver ~portfolio_work_limit time_limit
                 max_steps)
            ()
        in
        let homo =
          Report.Experiments.run ctx b platform Parcore.Parallelize.Homogeneous
        in
        let het =
          Report.Experiments.run ctx b platform Parcore.Parallelize.Heterogeneous
        in
        Fmt.pr "%s on %s: homogeneous %.2fx, heterogeneous %.2fx (max %.2fx)@."
          name platform.Platform.Desc.name homo.Report.Experiments.speedup
          het.Report.Experiments.speedup
          (Platform.Desc.theoretical_speedup platform)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run one suite benchmark through both approaches")
    Term.(
      const run $ bench_name $ platform_arg $ time_limit_arg $ max_steps_arg
      $ jobs_arg $ accel_term $ solver_arg $ portfolio_work_limit_arg)

(* ---------------- batch ---------------- *)

let batch_cmd =
  let targets =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TARGETS"
          ~doc:"Mini-C source files and/or suite benchmark names.")
  in
  let run targets platform approach time_limit max_steps jobs fault_spec trace
      metrics profile cache_dir cache_max_mb accel solver portfolio_work_limit
      =
    let platform = resolve_platform platform in
    (* resolve everything up front so a typo fails before any solving *)
    let sources = List.map resolve_target targets in
    let cfg =
      cfg_of ~jobs ~trace ~metrics ~profile ~cache_dir ~cache_max_mb ~accel
        ~solver ~portfolio_work_limit time_limit max_steps
    in
    with_observability cfg ~generated_by:"mpsoc-par batch" @@ fun report ->
    with_fault_plan fault_spec @@ fun () ->
    (* one taskpool, one platform parse, one persistent store — shared by
       every target in the batch *)
    let jobs_n =
      if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs
    in
    let pool =
      if jobs_n > 1 then Some (Taskpool.Pool.create ~domains:jobs_n ())
      else None
    in
    let store =
      match cache_dir with
      | None -> None
      | Some dir -> (
          match Cache.Store.open_ ~max_mb:cache_max_mb ~dir () with
          | s -> Some s
          | exception Mpsoc_error.Error e -> exit_with e)
    in
    let total = Ilp.Stats.create () in
    let hard_error = ref None in
    let degraded = ref false in
    let t0 = Ilp.Clock.now_s () in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Taskpool.Pool.shutdown pool;
        Option.iter Cache.Store.close store)
      (fun () ->
        List.iter
          (fun (name, src) ->
            match
              Parcore.Parallelize.run_result ~cfg ?pool ?store ~approach
                ~platform src
            with
            | Error e ->
                (* diagnose and move on: one bad target must not cost the
                   batch the others' results *)
                Fmt.epr "%s: %a@." name Mpsoc_error.pp e;
                if !hard_error = None then
                  hard_error := Some (Mpsoc_error.exit_code e)
            | Ok out ->
                let algo = out.Parcore.Parallelize.algo in
                Ilp.Stats.merge ~into:total algo.Parcore.Algorithm.stats;
                (* one deterministic line per target on stdout (cold and
                   warm runs diff clean); counts and timings on stderr *)
                let deg = degradation_status algo in
                Fmt.pr "%s %.4fx %s%s@." name
                  (Parcore.Parallelize.speedup out)
                  (solution_digest algo)
                  (match deg with
                  | Some d -> " degraded:" ^ String.concat "-"
                                (String.split_on_char ' ' d)
                  | None -> "");
                (* land the line now: batch runs are long, and killing
                   one mid-run must keep the finished targets readable
                   even when stdout is a pipe *)
                flush stdout;
                Fmt.epr "%s: %d ILPs, %.2f s solve, %.2f s wall@." name
                  algo.Parcore.Algorithm.stats.Ilp.Stats.ilps
                  algo.Parcore.Algorithm.stats.Ilp.Stats.solve_time_s
                  algo.Parcore.Algorithm.wall_time_s;
                if deg <> None then degraded := true)
          sources);
    let cache = Option.map Cache.Store.counters store in
    Fmt.epr "batch: %d targets, %d ILPs, %.2f s solve, %.2f s wall@."
      (List.length sources) total.Ilp.Stats.ilps total.Ilp.Stats.solve_time_s
      (Ilp.Clock.now_s () -. t0);
    Option.iter (Fmt.epr "%a@." Cache.Store.pp_counters) cache;
    report ?cache ~stats:total ();
    match !hard_error with
    | Some code -> exit code
    | None -> if !degraded then exit 2
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Parallelize many sources in one process, sharing the taskpool, \
          the platform parse and the persistent solve cache across \
          targets; prints one deterministic result line per target")
    Term.(
      const run $ targets $ platform_arg $ approach_arg $ time_limit_arg
      $ max_steps_arg $ jobs_arg $ fault_plan_arg $ trace_arg $ metrics_arg
      $ profile_flag $ cache_dir_arg $ cache_max_mb_arg $ accel_term
      $ solver_arg $ portfolio_work_limit_arg)

(* ---------------- execute ---------------- *)

let execute_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"A Mini-C source file or a suite benchmark name.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "d"; "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the execution runtime (default: the \
             machine's recommended domain count; 1 runs sequentially on \
             the calling domain).")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Also run the sequential reference interpreter and check that \
             the parallel execution computes the same result; exits \
             non-zero on a mismatch.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Also print the per-worker busy-time / task / steal \
                breakdown to stderr.")
  in
  let run target platform approach time_limit max_steps jobs domains validate
      timeout_s fault_spec verbose trace metrics profile =
    let platform = resolve_platform platform in
    let name, src = resolve_target target in
    let cfg =
      cfg_of ~jobs ~timeout_s ~trace ~metrics ~profile time_limit max_steps
    in
    with_observability cfg ~generated_by:"mpsoc-par execute" @@ fun report ->
    with_fault_plan fault_spec @@ fun () ->
    match
      Trace.span ~cat:"phase" "frontend" (fun () -> Minic.Frontend.compile src)
    with
    | exception Minic.Frontend.Error e ->
        exit_with
          (Mpsoc_error.make ~phase:Frontend ~kind:Invalid_input ~location:name
             (Minic.Frontend.error_to_string e))
    | prog -> (
        let out =
          match
            Parcore.Parallelize.run_program_result ~cfg ~approach ~platform
              prog
          with
          | Ok out -> out
          | Error e -> exit_with e
        in
        let algo = out.Parcore.Parallelize.algo in
        let root_sol = algo.Parcore.Algorithm.root in
        Fmt.pr "platform: %a@." Platform.Desc.pp_summary platform;
        Fmt.pr "approach: %s@." (Parcore.Parallelize.approach_name approach);
        match
          Trace.span ~cat:"phase" "execute" (fun () ->
              Runtime.Exec.run_result ?domains ~max_steps ~timeout_s prog
                out.Parcore.Parallelize.htg root_sol)
        with
        | Error e -> exit_with e
        | Ok r ->
            (match r.Runtime.Exec.ret with
            | Some v -> Fmt.pr "result: %a@." Interp.Value.pp v
            | None -> Fmt.pr "result: (none)@.");
            Fmt.pr "%a@." Runtime.Metrics.pp r.Runtime.Exec.metrics;
            if verbose then
              Fmt.epr "%a@." Runtime.Metrics.pp_workers r.Runtime.Exec.metrics;
            if validate then begin
              let seq =
                guard_runtime name (fun () -> Interp.Eval.run ~max_steps prog)
              in
              let ok =
                Runtime.Exec.ret_equal r.Runtime.Exec.ret seq.Interp.Eval.ret
              in
              let pp_ret ppf = function
                | Some v -> Interp.Value.pp ppf v
                | None -> Fmt.string ppf "(none)"
              in
              if ok then
                Fmt.pr "validation: OK (sequential result %a)@." pp_ret
                  seq.Interp.Eval.ret
              else
                exit_err "validation: MISMATCH (parallel %s, sequential %s)"
                  (Fmt.str "%a" pp_ret r.Runtime.Exec.ret)
                  (Fmt.str "%a" pp_ret seq.Interp.Eval.ret)
            end;
            report ~runtime:r.Runtime.Exec.metrics
              ~stats:algo.Parcore.Algorithm.stats ();
            exit_degraded algo)
  in
  Cmd.v
    (Cmd.info "execute"
       ~doc:
         "Really run the parallelized program on OCaml 5 domains and \
          report wall-clock time, task and steal counts")
    Term.(
      const run $ target $ platform_arg $ approach_arg $ time_limit_arg
      $ max_steps_arg $ jobs_arg $ domains_arg $ validate_arg $ timeout_arg
      $ fault_plan_arg $ verbose $ trace_arg $ metrics_arg $ profile_flag)

(* ---------------- experiments ---------------- *)

let experiments_cmd =
  let which =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Subset to run: fig7a fig7b fig8a fig8b table1 ablation \
                energy micro-free subset (default: all).")
  in
  let run which time_limit jobs =
    let ctx =
      Report.Experiments.create
        ~cfg:
          (cfg_of ~jobs time_limit
             Parcore.Config.default.Parcore.Config.max_steps)
        ()
    in
    let all = [ "fig7a"; "fig7b"; "fig8a"; "fig8b"; "table1" ] in
    let which = if which = [] then all else which in
    List.iter
      (fun id ->
        match id with
        | "fig7a" -> print_string (Report.Experiments.(render_figure (fig7a ctx)))
        | "fig7b" -> print_string (Report.Experiments.(render_figure (fig7b ctx)))
        | "fig8a" -> print_string (Report.Experiments.(render_figure (fig8a ctx)))
        | "fig8b" -> print_string (Report.Experiments.(render_figure (fig8b ctx)))
        | "table1" ->
            print_string
              (Report.Experiments.(render_table1 (table1 ctx)))
        | "ablation" ->
            print_string
              (Report.Experiments.(
                 render_ablation (ablation ctx Platform.Presets.platform_a_accel)))
        | "energy" ->
            print_string
              (Report.Experiments.(
                 render_energy (energy_table ctx Platform.Presets.platform_a_accel)))
        | other -> exit_err "unknown experiment %S" other)
      which
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's figures and tables")
    Term.(const run $ which $ time_limit_arg $ jobs_arg)

(* ---------------- serve / loadgen ---------------- *)

let socket_arg =
  Arg.(
    value
    & opt string Serve.Daemon.default_config.Serve.Daemon.socket_path
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on (loadgen: connects to).")

let serve_cmd =
  let tcp_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp-port" ] ~docv:"PORT"
          ~doc:"Also listen on 127.0.0.1:$(docv).")
  in
  let queue_max_arg =
    Arg.(
      value
      & opt int Serve.Daemon.default_config.Serve.Daemon.queue_max
      & info [ "queue-max" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: past $(docv) queued jobs, new requests \
             are rejected with the typed $(b,overloaded) status.")
  in
  let default_deadline_arg =
    Arg.(
      value
      & opt float Serve.Daemon.default_config.Serve.Daemon.default_deadline_s
      & info [ "default-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog deadline applied to requests that carry none \
             ($(b,0) = unlimited).")
  in
  let drain_grace_arg =
    Arg.(
      value
      & opt float Serve.Daemon.default_config.Serve.Daemon.drain_grace_s
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM (or a $(b,drain) request), finish in-flight jobs \
             for up to $(docv) seconds before force-stopping with exit 4.")
  in
  let executors_arg =
    Arg.(
      value
      & opt int Serve.Daemon.default_config.Serve.Daemon.executors
      & info [ "executors" ] ~docv:"N"
          ~doc:
            "Supervised executor workers solving requests concurrently \
             (each with its own taskpool of $(b,--jobs) domains).")
  in
  let restart_budget_arg =
    Arg.(
      value
      & opt int Serve.Daemon.default_config.Serve.Daemon.restart_budget
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "Total executor restarts (after crashes or wedges) before the \
             daemon gives up and drains with exit 1.")
  in
  let wedge_grace_arg =
    Arg.(
      value
      & opt float Serve.Daemon.default_config.Serve.Daemon.wedge_grace_s
      & info [ "wedge-grace" ] ~docv:"SECONDS"
          ~doc:
            "Slack past a request's deadline before its executor worker is \
             declared wedged, the request answered $(b,timeout), and the \
             worker abandoned and replaced.")
  in
  let flight_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Flight-recorder dump file, written as JSONL on an executor \
             crash/wedge/restart, restart-budget exhaustion, or a \
             $(b,dump) request (default: $(i,SOCKET).flight.jsonl).")
  in
  let memo_stall_arg =
    Arg.(
      value
      & opt float Serve.Daemon.default_config.Serve.Daemon.memo_stall_s
      & info [ "memo-stall" ] ~docv:"SECONDS"
          ~doc:
            "Age past which a held single-flight solve-memo reservation \
             is reported as stalled (a wedged worker holding one blocks \
             peers solving the same subproblem).")
  in
  let run socket tcp_port queue_max default_deadline_s drain_grace_s executors
      restart_budget wedge_grace_s flight_path memo_stall_s time_limit
      max_steps jobs trace metrics profile cache_dir cache_max_mb accel solver
      portfolio_work_limit =
    let cfg =
      cfg_of ~jobs ~trace ~metrics ~profile ~cache_dir ~cache_max_mb ~accel
        ~solver ~portfolio_work_limit time_limit max_steps
    in
    match
      Serve.Daemon.run
        {
          Serve.Daemon.socket_path = socket;
          tcp_port;
          queue_max;
          default_deadline_s;
          drain_grace_s;
          executors;
          restart_budget;
          wedge_grace_s;
          flight_path;
          memo_stall_s;
          cfg;
        }
    with
    | code -> exit code
    | exception Mpsoc_error.Error e -> exit_with e
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident parallelization server: a Unix-domain (and \
          optionally TCP) daemon multiplexing concurrent clients onto a \
          supervised pool of executor workers (crash-only restart with a \
          bounded budget) over a shared in-memory solve memo and persistent \
          cache, with bounded fair admission, per-request deadlines, \
          liveness/readiness health checks and graceful drain on SIGTERM")
    Term.(
      const run $ socket_arg $ tcp_port_arg $ queue_max_arg
      $ default_deadline_arg $ drain_grace_arg $ executors_arg
      $ restart_budget_arg $ wedge_grace_arg $ flight_arg $ memo_stall_arg
      $ time_limit_arg $ max_steps_arg $ jobs_arg $ trace_arg $ metrics_arg
      $ profile_flag $ cache_dir_arg $ cache_max_mb_arg $ accel_term
      $ solver_arg $ portfolio_work_limit_arg)

let loadgen_cmd =
  let targets =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TARGETS"
          ~doc:"Suite benchmark names (or server-side source paths) to replay.")
  in
  let op_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("parallelize", Serve.Protocol.Parallelize);
               ("execute", Serve.Protocol.Execute);
             ])
          Serve.Protocol.Parallelize
      & info [ "op" ] ~docv:"OP"
          ~doc:"Request kind: $(b,parallelize) (default) or $(b,execute).")
  in
  let qps_arg =
    Arg.(
      value
      & opt float Serve.Loadgen.default_config.Serve.Loadgen.qps
      & info [ "qps" ] ~docv:"RATE"
          ~doc:
            "Offered request rate (open-loop pacing across all \
             connections); $(b,0) sends as fast as possible.")
  in
  let concurrency_arg =
    Arg.(
      value
      & opt int Serve.Loadgen.default_config.Serve.Loadgen.concurrency
      & info [ "c"; "concurrency" ] ~docv:"N"
          ~doc:"Concurrent client connections (one domain each).")
  in
  let requests_arg =
    Arg.(
      value
      & opt int Serve.Loadgen.default_config.Serve.Loadgen.requests
      & info [ "n"; "requests" ] ~docv:"N"
          ~doc:"Total requests across all connections.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt float 0.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request watchdog deadline sent to the server \
             ($(b,0) = server default).")
  in
  let report_arg =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the latency-percentile report JSON \
             (p50/p90/p99, throughput, rejection rate, retry counts, \
             per-target solution digests) to $(docv); $(b,-) writes to \
             stdout.")
  in
  let retry_max_arg =
    Arg.(
      value
      & opt int Serve.Loadgen.default_config.Serve.Loadgen.retry_max
      & info [ "retry-max" ] ~docv:"N"
          ~doc:
            "Retries per request on a typed $(b,overloaded) rejection or a \
             transport failure (reconnecting), with capped exponential \
             backoff and full jitter; $(b,0) disables retries.")
  in
  let fault_spec_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "fault-spec" ] ~docv:"SPEC"
          ~doc:
            "Fault-plan spec (point\\@hit=action, see $(b,chaos)) armed on \
             the executor worker for selected requests; repeatable — specs \
             are cycled across the faulted requests.")
  in
  let fault_every_arg =
    Arg.(
      value
      & opt int 3
      & info [ "fault-every" ] ~docv:"N"
          ~doc:
            "With $(b,--fault-spec), arm a fault plan on every $(docv)-th \
             request (the rest stay clean for the digest-consistency \
             check).")
  in
  let run targets socket platform approach op qps concurrency requests
      deadline_s retry_max fault_specs fault_every report =
    match
      Serve.Loadgen.run
        {
          Serve.Loadgen.socket_path = socket;
          targets;
          platform;
          approach = Parcore.Parallelize.approach_name approach;
          op;
          qps;
          concurrency;
          requests;
          deadline_s;
          retry_max;
          retry_base_s =
            Serve.Loadgen.default_config.Serve.Loadgen.retry_base_s;
          retry_cap_s = Serve.Loadgen.default_config.Serve.Loadgen.retry_cap_s;
          fault_specs;
          fault_every = (if fault_specs = [] then 0 else fault_every);
          report_path = Some report;
        }
    with
    | code -> exit code
    | exception Mpsoc_error.Error e -> exit_with e
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay benchmarks against a running $(b,serve) daemon at a \
          configured QPS and concurrency — optionally arming per-request \
          fault plans (chaos mode) and retrying rejections with jittered \
          backoff — and write a latency-percentile report with a per-target \
          solution-digest consistency check")
    Term.(
      const run $ targets $ socket_arg $ platform_arg $ approach_arg $ op_arg
      $ qps_arg $ concurrency_arg $ requests_arg $ deadline_arg
      $ retry_max_arg $ fault_spec_arg $ fault_every_arg $ report_arg)

let observe_cmd =
  let interval_arg =
    Arg.(
      value
      & opt float Serve.Monitor.default_config.Serve.Monitor.interval_s
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Sleep between polls.")
  in
  let count_arg =
    Arg.(
      value
      & opt int Serve.Monitor.default_config.Serve.Monitor.count
      & info [ "count" ] ~docv:"N"
          ~doc:"Polls before exiting; $(b,0) polls forever.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the raw stats body (one JSON object per poll, schema \
             $(b,mpsoc-par/stats/v1)) instead of the table.")
  in
  let run socket interval_s count json =
    match
      Serve.Monitor.run { Serve.Monitor.socket_path = socket; interval_s; count; json }
    with
    | code -> exit code
    | exception Mpsoc_error.Error e -> exit_with e
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Poll a running $(b,serve) daemon's $(b,stats) op and print live \
          telemetry: sliding latency windows (1m/5m/total, per op and \
          outcome), queue depth, memo/cache hit rates, per-worker \
          utilization and restart counters, flight-recorder occupancy")
    Term.(const run $ socket_arg $ interval_arg $ count_arg $ json_flag)

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    Fmt.pr "benchmarks:@.";
    List.iter
      (fun (b : Benchsuite.Suite.t) ->
        Fmt.pr "  %-16s %s@." b.Benchsuite.Suite.name
          b.Benchsuite.Suite.description)
      Benchsuite.Suite.all;
    Fmt.pr "@.platform presets:@.";
    List.iter
      (fun (name, p) -> Fmt.pr "  %-18s %a@." name Platform.Desc.pp_summary p)
      Platform.Presets.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks and platform presets")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "mpsoc-par" ~version:"1.0.0"
       ~doc:
         "ILP-based extraction of task-level parallelism for heterogeneous \
          MPSoCs (reproduction of Cordes et al., ICPP 2013)")
    [
      parallelize_cmd;
      analyze_cmd;
      execute_cmd;
      batch_cmd;
      serve_cmd;
      loadgen_cmd;
      observe_cmd;
      bench_cmd;
      experiments_cmd;
      list_cmd;
    ]

let () = exit (Cmd.eval main)
