# Convenience targets around dune.

.PHONY: all build test test-quick chaos bench bench-runtime bench-perf perf-smoke perf-gate execute serve-smoke serve-chaos clean fmt

all: build

build:
	dune build

# Tier-1: the full test suite (slow differential-validation and
# determinism tests included).
test:
	dune build && dune runtest

# Quick tests only (skips the Slow alcotest cases).
test-quick:
	dune exec test/test_main.exe -- -q

# Chaos suite: every benchmark x platform x fault plan through the full
# flow; asserts each run ends in a validated solution or a typed error.
# CHAOS_SUBSET=n keeps every n-th case for a quicker smoke run.
chaos:
	dune build @chaos

# Paper evaluation artifacts (figures + Table I).
bench:
	dune exec bench/main.exe

# Measured host execution of the partitioned benchmarks on OCaml 5
# domains (E8).
bench-runtime:
	dune exec bench/main.exe -- runtime

# Compile-side perf of the parallelizer itself (E10): baseline vs. the
# memoized, warm-started, domain-parallel solve engine; writes
# BENCH_parallelize.json.
bench-perf:
	dune exec bench/main.exe -- perf

# Quick CI subset of bench-perf.
perf-smoke:
	dune exec bench/main.exe -- perf-smoke

# Perf-regression gate: rerun the smoke subset and compare it against
# the committed baseline (±25%, override with BENCH_TOLERANCE_PCT).
# After an intentional perf change: make perf-smoke &&
# cp BENCH_parallelize.json ci/bench_baseline.json and commit.
# Also asserts every ILP acceleration toggle builds and runs: one smoke
# benchmark per toggle-off configuration through the CLI.
perf-gate: perf-smoke
	./ci/check_bench.sh ci/bench_baseline.json BENCH_parallelize.json
	@for t in presolve symmetry cuts seed-incumbent; do \
	  ./_build/default/bin/mpsoc_par.exe bench mult_10 \
	    -p platform-a-accel --ilp-time-limit 0.5 --$$t false >/dev/null \
	    && echo "toggle-smoke: --$$t false ok" \
	    || { echo "toggle-smoke: --$$t false FAILED"; exit 1; }; \
	done

# Server-mode smoke: start the serve daemon, replay 3 benchmarks via
# loadgen (report in serve-load.json), then SIGTERM and require a
# clean drain (exit 0).
serve-smoke: build
	@rm -f serve-smoke.sock; \
	./_build/default/bin/mpsoc_par.exe serve --socket serve-smoke.sock \
	  --jobs 2 --ilp-time-limit 0.5 & pid=$$!; \
	for i in $$(seq 1 100); do test -S serve-smoke.sock && break; sleep 0.1; done; \
	./_build/default/bin/mpsoc_par.exe loadgen mult_10 compress boundary_value \
	  --socket serve-smoke.sock --qps 1 -c 2 -n 9 --report serve-load.json \
	  || { kill $$pid; exit 1; }; \
	./_build/default/bin/mpsoc_par.exe observe --socket serve-smoke.sock \
	  --json --count 1 > serve-stats.json || { kill $$pid; exit 1; }; \
	jq -e '.stats_schema == "mpsoc-par/stats/v1" and .counters.completed >= 9 and .latency.all.total.count >= 9 and ((.statuses.internal // 0) == 0)' \
	  serve-stats.json >/dev/null || { kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid \
	  && echo "serve-smoke: clean drain, live stats probed" \
	  || { echo "serve-smoke: drain failed"; exit 1; }

# Server-level chaos: the daemon under a mixed clean/faulted load.
# Every 3rd request arms a fault plan on the executor worker (a worker
# crash at the serve.exec probe, plus solver- and runtime-level raises);
# the supervised pool must answer every request with a typed response,
# restart crashed workers (>= 1 restart observed in the server metrics),
# keep the clean requests' digests consistent, and still drain cleanly
# on SIGTERM (exit 0).  SERVE_CHAOS_N=n scales the request count.
serve-chaos: build
	@rm -f serve-chaos.sock; n=$${SERVE_CHAOS_N:-45}; \
	./_build/default/bin/mpsoc_par.exe serve --socket serve-chaos.sock \
	  --jobs 1 --executors 2 --restart-budget 64 --ilp-time-limit 0.5 \
	  --flight serve-chaos.flight.jsonl \
	  --metrics serve-chaos-metrics.json & pid=$$!; \
	for i in $$(seq 1 100); do test -S serve-chaos.sock && break; sleep 0.1; done; \
	./_build/default/bin/mpsoc_par.exe loadgen mult_10 \
	  --socket serve-chaos.sock --qps 0 -c 3 -n $$n \
	  --fault-spec serve.exec@1=raise --fault-spec simplex.pivot@1=raise \
	  --fault-spec pool.spawn@1=raise --fault-every 3 \
	  --report serve-chaos-load.json \
	  || { kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid \
	  || { echo "serve-chaos: drain failed"; exit 1; }; \
	jq -e '.transport_errors == 0 and .digests_consistent == true' \
	  serve-chaos-load.json >/dev/null; \
	jq -e '.server.executor_restarts >= 1' serve-chaos-metrics.json >/dev/null; \
	jq -s -e '[.[].kind] | contains(["executor.crash"]) and contains(["executor.restart"])' \
	  serve-chaos.flight.jsonl >/dev/null \
	  || { echo "serve-chaos: flight recorder dump missing crash/restart"; exit 1; }; \
	echo "serve-chaos: $$n requests ($$(jq .faulted_requests serve-chaos-load.json) faulted), >=1 restart, flight dump ok, clean drain"

# Differential validation of every suite benchmark on two presets via
# the CLI (the acceptance check of the execution runtime).
execute: build
	@for b in $$(./_build/default/bin/mpsoc_par.exe list | awk '/^benchmarks:/{f=1;next} /^$$/{f=0} f{print $$1}'); do \
	  for p in platform-a-accel platform-b-accel; do \
	    ./_build/default/bin/mpsoc_par.exe execute $$b -p $$p --validate \
	      | grep -q 'validation: OK' \
	      && echo "ok   $$b $$p" || { echo "FAIL $$b $$p"; exit 1; }; \
	  done; \
	done

clean:
	dune clean

fmt:
	dune fmt
