#!/usr/bin/env bash
# Perf-regression gate for the compile-side solve engine.
#
# Usage: ci/check_bench.sh BASELINE.json FRESH.json
#
# Compares every baseline benchmark's jobs1_ms (single-worker wall time,
# the schedule-independent number) and ilps_optimized (solve count — a
# drift here means the search changed, not just the machine) in FRESH
# against BASELINE, within a relative tolerance (default +/-25%,
# override with BENCH_TOLERANCE_PCT).  Schema v3 baselines additionally
# carry the deterministic solver-effort counters bb_nodes and pivots;
# those are gated upward-only (more search effort than the baseline is a
# regression; less is an improvement) with the same tolerance.  Also
# requires every run to stay bit-identical across jobs values.  Exits 1
# on any regression, with a per-benchmark table either way.
#
# Wall times on shared CI runners are noisy; the tolerance is deliberately
# wide and only the regression direction fails the job for jobs1_ms
# (getting faster is not an error).  ilps_optimized is checked both ways:
# solving more OR fewer ILPs than the baseline means the search behaves
# differently and the baseline should be regenerated deliberately
# (make perf-smoke; commit the fresh JSON).
#
# Schema v4 documents additionally carry a per-benchmark "solvers"
# section; on those the gate is two-sided:
#   - speed (above): the exact engine must not regress against the
#     committed baseline;
#   - quality: the portfolio engine's simulated makespan must stay within
#     QUALITY_TOLERANCE_PCT (default 5%) of the COMMITTED exact makespan,
#     so a faster-but-sloppier heuristic cannot ride in under the wall
#     tolerance.  Compared against the baseline's exact makespan, not the
#     fresh run's, so quality drift and speed drift cannot mask each
#     other.
set -euo pipefail

baseline=${1:?usage: check_bench.sh BASELINE.json FRESH.json}
fresh=${2:?usage: check_bench.sh BASELINE.json FRESH.json}
tol_pct=${BENCH_TOLERANCE_PCT:-25}
quality_pct=${QUALITY_TOLERANCE_PCT:-5}

for f in "$baseline" "$fresh"; do
  [ -r "$f" ] || { echo "check_bench: cannot read $f" >&2; exit 1; }
  jq -e '.schema | startswith("mpsoc-par/parallelize-perf/")' "$f" >/dev/null \
    || { echo "check_bench: $f is not a parallelize-perf document" >&2; exit 1; }
done

echo "perf gate: $fresh vs $baseline (tolerance +/-${tol_pct}%)"
printf '  %-16s %12s %12s %8s  %6s %6s  %6s %6s  %8s %8s  %s\n' \
  benchmark base_ms fresh_ms delta ilp_b ilp_f node_b node_f piv_b piv_f verdict

fail=0
while IFS=$'\t' read -r name base_ms base_ilps base_nodes base_pivots; do
  row=$(jq -r --arg n "$name" \
    '.benchmarks[] | select(.name == $n)
     | [.jobs1_ms, .ilps_optimized, (.bb_nodes // "-"), (.pivots // "-"), .identical]
     | @tsv' \
    "$fresh")
  if [ -z "$row" ]; then
    printf '  %-16s %12s %12s %8s  %6s %6s  %6s %6s  %8s %8s  %s\n' \
      "$name" "$base_ms" - - "$base_ilps" - "$base_nodes" - "$base_pivots" - \
      "FAIL (missing from fresh run)"
    fail=1
    continue
  fi
  IFS=$'\t' read -r fresh_ms fresh_ilps fresh_nodes fresh_pivots identical <<<"$row"
  verdict=$(awk -v b="$base_ms" -v f="$fresh_ms" -v bi="$base_ilps" \
    -v fi="$fresh_ilps" -v bn="$base_nodes" -v fn="$fresh_nodes" \
    -v bp="$base_pivots" -v fp="$fresh_pivots" -v id="$identical" \
    -v tol="$tol_pct" 'BEGIN {
      delta = (f - b) * 100.0 / b
      if (id != "true")                    { print "FAIL (not bit-identical across jobs)"; exit }
      if (delta > tol)                     { printf "FAIL (jobs1_ms +%.1f%% > +%s%%)\n", delta, tol; exit }
      if (fi > bi * (1 + tol/100.0) ||
          fi < bi * (1 - tol/100.0))       { printf "FAIL (ilps %d vs baseline %d, beyond %s%%)\n", fi, bi, tol; exit }
      # solver-effort counters are deterministic: upward drift beyond the
      # tolerance is a search regression.  "-" means the document predates
      # schema v3 and the counter is skipped.
      if (bn != "-" && fn != "-" &&
          fn > bn * (1 + tol/100.0))       { printf "FAIL (bb_nodes %d vs baseline %d, beyond +%s%%)\n", fn, bn, tol; exit }
      if (bp != "-" && fp != "-" &&
          fp > bp * (1 + tol/100.0))       { printf "FAIL (pivots %d vs baseline %d, beyond +%s%%)\n", fp, bp, tol; exit }
      print "ok"
    }')
  delta=$(awk -v b="$base_ms" -v f="$fresh_ms" 'BEGIN { printf "%+.1f%%", (f-b)*100.0/b }')
  printf '  %-16s %12s %12s %8s  %6s %6s  %6s %6s  %8s %8s  %s\n' \
    "$name" "$base_ms" "$fresh_ms" "$delta" "$base_ilps" "$fresh_ilps" \
    "$base_nodes" "$fresh_nodes" "$base_pivots" "$fresh_pivots" "$verdict"
  [ "$verdict" = ok ] || fail=1
done < <(jq -r '.benchmarks[]
  | [.name, .jobs1_ms, .ilps_optimized, (.bb_nodes // "-"), (.pivots // "-")]
  | @tsv' "$baseline")

jq -e '.total.identical == true' "$fresh" >/dev/null \
  || { echo "  total: FAIL (fresh run not bit-identical across jobs)"; fail=1; }

# ---- quality gate (schema v4: per-solver sections) -------------------
# Portfolio makespans in FRESH vs the exact makespans committed in
# BASELINE.  Skipped per-benchmark when either document predates v4.
if jq -e '.benchmarks[0].solvers' "$baseline" >/dev/null 2>&1 \
   && jq -e '.benchmarks[0].solvers' "$fresh" >/dev/null 2>&1; then
  echo
  echo "quality gate: portfolio makespan vs committed exact (tolerance +${quality_pct}%)"
  printf '  %-16s %14s %14s %8s  %9s  %s\n' \
    benchmark exact_mk port_mk ratio wins_h/e verdict
  while IFS=$'\t' read -r name base_exact_mk; do
    row=$(jq -r --arg n "$name" \
      '.benchmarks[] | select(.name == $n) | .solvers
       | [.portfolio.makespan_us, .portfolio.engine_wins.heuristic,
          .portfolio.engine_wins.exact] | @tsv' "$fresh")
    if [ -z "$row" ]; then
      printf '  %-16s %14s %14s %8s  %9s  %s\n' \
        "$name" "$base_exact_mk" - - - "FAIL (missing from fresh run)"
      fail=1
      continue
    fi
    IFS=$'\t' read -r port_mk wins_h wins_e <<<"$row"
    verdict=$(awk -v e="$base_exact_mk" -v p="$port_mk" -v tol="$quality_pct" \
      'BEGIN {
        if (e <= 0)                   { print "FAIL (bad exact makespan)"; exit }
        ratio = p / e
        if (ratio > 1 + tol/100.0)    { printf "FAIL (makespan ratio %.4f > 1+%s%%)\n", ratio, tol; exit }
        print "ok"
      }')
    ratio=$(awk -v e="$base_exact_mk" -v p="$port_mk" 'BEGIN { printf "%.4f", p/e }')
    printf '  %-16s %14s %14s %8s  %6s/%-3s  %s\n' \
      "$name" "$base_exact_mk" "$port_mk" "$ratio" "$wins_h" "$wins_e" "$verdict"
    [ "$verdict" = ok ] || fail=1
  done < <(jq -r '.benchmarks[]
    | [.name, .solvers.ilp.makespan_us] | @tsv' "$baseline")
else
  echo "quality gate: skipped (baseline or fresh run predates schema v4)"
fi

if [ "$fail" -ne 0 ]; then
  echo "perf gate: FAILED — if the change is intentional, regenerate the" \
       "baseline with 'make perf-smoke' and commit it as ci/bench_baseline.json"
  exit 1
fi
echo "perf gate: ok"
