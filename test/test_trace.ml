(** Tracing layer tests: golden traced-pipeline Chrome-JSON validity
    (balanced B/E, per-domain monotonic timestamps, parseable export)
    and the disabled-recorder fast path (no per-call allocation). *)

let src =
  {|
int acc[4];
int work(int seed) {
  int i;
  int s = seed;
  for (i = 0; i < 2000; i = i + 1) { s = (s * 31 + i) % 65536; }
  return s;
}
int main() {
  acc[0] = work(1);
  acc[1] = work(2);
  acc[2] = work(3);
  return acc[0] + acc[1] + acc[2];
}
|}

let traced_run () =
  Trace.with_tracing (fun () ->
      Parcore.Parallelize.run
        ~cfg:{ Parcore.Config.fast with Parcore.Config.jobs = 2 }
        ~approach:Parcore.Parallelize.Heterogeneous
        ~platform:Platform.Presets.platform_a_accel src)

(* ---- recorder invariants on a real pipeline run -------------------- *)

let test_balanced_and_monotonic () =
  let _out, c = traced_run () in
  Alcotest.(check bool) "captured events" true (c.Trace.events <> []);
  (* per-domain: timestamps monotonic, B/E properly nested by name *)
  List.iter
    (fun dom ->
      let evs =
        List.filter (fun (e : Trace.event) -> e.Trace.dom = dom) c.Trace.events
      in
      let last = ref neg_infinity in
      let stack = ref [] in
      List.iter
        (fun (e : Trace.event) ->
          Alcotest.(check bool)
            (Printf.sprintf "monotonic ts on domain %d" dom)
            true
            (e.Trace.ts_us >= !last);
          last := e.Trace.ts_us;
          match e.Trace.ph with
          | Trace.B -> stack := e.Trace.name :: !stack
          | Trace.E -> (
              match !stack with
              | top :: rest ->
                  Alcotest.(check string)
                    (Printf.sprintf "E matches B on domain %d" dom)
                    top e.Trace.name;
                  stack := rest
              | [] -> Alcotest.fail "E without matching B")
          | _ -> ())
        evs;
      Alcotest.(check (list string))
        (Printf.sprintf "balanced spans on domain %d" dom)
        [] !stack)
    c.Trace.domains;
  (* the pipeline phases were captured as top-level spans *)
  let phases = List.map fst (Trace.span_totals ~cat:"phase" c.Trace.events) in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " phase present") true (List.mem p phases))
    [ "frontend"; "profile"; "htg"; "parallelize"; "implement" ]

let test_solver_events_present () =
  let out, c = traced_run () in
  let ilp_x =
    List.filter
      (fun (e : Trace.event) -> e.Trace.cat = "ilp" && e.Trace.ph = Trace.X)
      c.Trace.events
  in
  let stats = out.Parcore.Parallelize.algo.Parcore.Algorithm.stats in
  (* every solve (exact or cache-answered) leaves one X event *)
  Alcotest.(check int) "one X event per solve"
    (stats.Ilp.Stats.ilps + stats.Ilp.Stats.cache_hits)
    (List.length ilp_x)

(* ---- Chrome export ------------------------------------------------- *)

let test_chrome_json_valid () =
  let _out, c = traced_run () in
  let doc = Trace_chrome.document c in
  let json = Trace_json.parse (Trace_json.to_string doc) in
  let get what = function
    | Some v -> v
    | None -> Alcotest.fail ("missing " ^ what)
  in
  let evs =
    get "traceEvents"
      (Option.bind (Trace_json.member "traceEvents" json) Trace_json.to_list)
  in
  Alcotest.(check bool) "has events" true (evs <> []);
  List.iter
    (fun e ->
      let field name = get name (Trace_json.member name e) in
      let ph = get "ph string" (Trace_json.to_str (field "ph")) in
      Alcotest.(check bool) "known phase" true
        (List.mem ph [ "B"; "E"; "i"; "C"; "X"; "M" ]);
      ignore (get "pid" (Trace_json.to_num (field "pid")));
      ignore (get "tid" (Trace_json.to_num (field "tid")));
      if ph <> "M" then ignore (get "ts" (Trace_json.to_num (field "ts"))))
    evs;
  (* one thread_name metadata record per recording domain *)
  let thread_names =
    List.filter
      (fun e ->
        match Trace_json.member "name" e with
        | Some (Trace_json.Str "thread_name") -> true
        | _ -> false)
      evs
  in
  Alcotest.(check int) "one track per domain"
    (List.length c.Trace.domains)
    (List.length thread_names)

(* ---- ring overwrite ------------------------------------------------ *)

let test_ring_overflow_reported () =
  Trace.start ~capacity:16 ();
  for i = 0 to 99 do
    Trace.instant ~cat:"t" (string_of_int i)
  done;
  match Trace.stop () with
  | None -> Alcotest.fail "recorder was armed"
  | Some c ->
      Alcotest.(check int) "ring keeps capacity" 16 (List.length c.Trace.events);
      Alcotest.(check int) "dropped reported" 84 c.Trace.dropped;
      (* oldest events were the ones overwritten *)
      (match c.Trace.events with
      | e :: _ -> Alcotest.(check string) "oldest kept" "84" e.Trace.name
      | [] -> Alcotest.fail "empty collection")

let test_metrics_reports_dropped () =
  Trace.start ~capacity:16 ();
  for i = 0 to 99 do
    Trace.instant ~cat:"t" (string_of_int i)
  done;
  match Trace.stop () with
  | None -> Alcotest.fail "recorder was armed"
  | Some c -> (
      let doc =
        Observe.metrics_doc ~generated_by:"test" ~trace:c ~wall_s:0.1
          (Ilp.Stats.create ())
      in
      match
        Option.bind (Trace_json.member "trace" doc)
          (Trace_json.member "dropped_spans")
      with
      | Some (Trace_json.Num n) ->
          Alcotest.(check int) "dropped_spans in metrics" 84 (int_of_float n)
      | _ -> Alcotest.fail "metrics doc has no trace.dropped_spans")

(* ---- request tags --------------------------------------------------- *)

let req_arg (e : Trace.event) =
  match List.assoc_opt "req" e.Trace.args with
  | Some (Trace.Str t) -> Some t
  | _ -> None

let test_tag_attached_and_restored () =
  Alcotest.(check (option string)) "no tag by default" None (Trace.current_tag ());
  let _, c =
    Trace.with_tracing (fun () ->
        Trace.instant ~cat:"t" "before";
        Trace.with_tag "r1" (fun () ->
            Trace.instant ~cat:"t" "tagged";
            Trace.with_tag "r2" (fun () -> Trace.instant ~cat:"t" "nested");
            Trace.instant ~cat:"t" "tagged-again");
        Trace.instant ~cat:"t" "after")
  in
  Alcotest.(check (option string)) "tag restored" None (Trace.current_tag ());
  let tag_of name =
    match
      List.find_opt (fun (e : Trace.event) -> e.Trace.name = name) c.Trace.events
    with
    | Some e -> req_arg e
    | None -> Alcotest.fail ("missing event " ^ name)
  in
  Alcotest.(check (option string)) "untagged before" None (tag_of "before");
  Alcotest.(check (option string)) "tagged" (Some "r1") (tag_of "tagged");
  Alcotest.(check (option string)) "nested tag wins" (Some "r2") (tag_of "nested");
  Alcotest.(check (option string))
    "outer tag restored" (Some "r1") (tag_of "tagged-again");
  Alcotest.(check (option string)) "untagged after" None (tag_of "after")

let test_tag_crosses_taskpool () =
  (* the pool captures the spawner's tag and restores it on whichever
     worker domain runs (or resumes) the task *)
  let pool = Taskpool.Pool.create ~domains:2 () in
  let _, c =
    Trace.with_tracing (fun () ->
        Taskpool.Pool.run pool (fun () ->
            Trace.with_tag "job-7" (fun () ->
                let ts =
                  List.init 8 (fun i ->
                      Taskpool.Pool.spawn pool (fun () ->
                          Trace.instant ~cat:"t" (Printf.sprintf "task-%d" i);
                          i))
                in
                List.iter
                  (fun t -> ignore (Taskpool.Pool.await pool t))
                  ts)))
  in
  Taskpool.Pool.shutdown pool;
  let tasks =
    List.filter
      (fun (e : Trace.event) ->
        String.length e.Trace.name >= 5
        && String.sub e.Trace.name 0 5 = "task-")
      c.Trace.events
  in
  Alcotest.(check int) "all tasks traced" 8 (List.length tasks);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check (option string))
        (e.Trace.name ^ " carries the spawner's tag")
        (Some "job-7") (req_arg e))
    tasks

(* ---- disabled fast path -------------------------------------------- *)

let test_disabled_no_allocation () =
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let name_k () = "never-forced" in
  let body () = () in
  let iters = 100_000 in
  let run () =
    for _ = 1 to iters do
      Trace.instant ~cat:"t" "x";
      Trace.counter ~cat:"t" "c" [];
      Trace.span_k ~cat:"t" name_k body
    done
  in
  run ();
  (* warmed up *)
  let w0 = Gc.minor_words () in
  run ();
  let w1 = Gc.minor_words () in
  (* allow a few words for the Gc.minor_words boxing itself; anything
     per-call would show up as >= 2 * iters words *)
  Alcotest.(check bool) "no per-call allocation" true (w1 -. w0 < 256.)

let test_disabled_span_value () =
  Alcotest.(check int) "span passes result through" 42
    (Trace.span ~cat:"t" "x" (fun () -> 42))

let suite =
  [
    Alcotest.test_case "balanced B/E + monotonic per domain" `Quick
      test_balanced_and_monotonic;
    Alcotest.test_case "one ILP X event per solve" `Quick
      test_solver_events_present;
    Alcotest.test_case "chrome export parses and is well-formed" `Quick
      test_chrome_json_valid;
    Alcotest.test_case "ring overwrite keeps newest, reports dropped" `Quick
      test_ring_overflow_reported;
    Alcotest.test_case "metrics doc reports dropped_spans" `Quick
      test_metrics_reports_dropped;
    Alcotest.test_case "request tag attached, nested, restored" `Quick
      test_tag_attached_and_restored;
    Alcotest.test_case "request tag crosses taskpool workers" `Quick
      test_tag_crosses_taskpool;
    Alcotest.test_case "disabled recorder allocates nothing" `Quick
      test_disabled_no_allocation;
    Alcotest.test_case "disabled span is transparent" `Quick
      test_disabled_span_value;
  ]
