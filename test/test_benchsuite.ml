(* Tests for the benchmark suite: every program compiles, type-checks,
   runs deterministically to a stable checksum, and exposes the dependence
   structure (DOALL loops) its UTDSP counterpart has. *)

(* golden checksums: computed once, pinned to detect accidental changes to
   benchmark sources or interpreter semantics *)
let golden_checksums = Test_benchsuite_golden.checksums

let run_bench (b : Benchsuite.Suite.t) =
  let prog = Benchsuite.Suite.compile b in
  Interp.Eval.run prog

let test_all_compile () =
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      match Minic.Frontend.compile_result b.Benchsuite.Suite.source with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s: %s" b.Benchsuite.Suite.name
            (Minic.Frontend.error_to_string e))
    Benchsuite.Suite.all

let test_names_unique () =
  let names = Benchsuite.Suite.names in
  Alcotest.(check int) "10 benchmarks" 10 (List.length names);
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_find () =
  Alcotest.(check bool) "find existing" true
    (Option.is_some (Benchsuite.Suite.find "fir_256"));
  Alcotest.(check bool) "find missing" true
    (Option.is_none (Benchsuite.Suite.find "nope"))

let test_checksums () =
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      let r = run_bench b in
      let chk =
        match r.Interp.Eval.ret with
        | Some v -> Interp.Value.to_int v
        | None -> Alcotest.failf "%s returned nothing" b.Benchsuite.Suite.name
      in
      match List.assoc_opt b.Benchsuite.Suite.name golden_checksums with
      | Some expected ->
          Alcotest.(check int)
            (b.Benchsuite.Suite.name ^ " checksum")
            expected chk
      | None -> Alcotest.failf "no golden checksum for %s" b.Benchsuite.Suite.name)
    Benchsuite.Suite.all

let test_determinism () =
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      let r1 = run_bench b and r2 = run_bench b in
      Alcotest.(check bool)
        (b.Benchsuite.Suite.name ^ " deterministic work")
        true
        (r1.Interp.Eval.profile.Interp.Profile.total_work
        = r2.Interp.Eval.profile.Interp.Profile.total_work))
    Benchsuite.Suite.all

let doall_count (b : Benchsuite.Suite.t) =
  let prog = Benchsuite.Suite.compile b in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  let root = Htg.Build.build prog profile in
  let n = ref 0 in
  let rec go (node : Htg.Node.t) =
    if Htg.Node.is_doall node then incr n;
    Array.iter go node.Htg.Node.children
  in
  go root;
  !n

let test_doall_structure () =
  (* every benchmark exposes at least one DOALL loop (even latnrm has its
     windowing/normalization stages) *)
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      Alcotest.(check bool)
        (b.Benchsuite.Suite.name ^ " has doall loops")
        true
        (doall_count b >= 1))
    Benchsuite.Suite.all

let test_work_magnitude () =
  (* each benchmark must be heavy enough that task overheads don't dominate
     (>= 1M abstract cycles) but small enough to keep runs fast *)
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      let r = run_bench b in
      let w = r.Interp.Eval.profile.Interp.Profile.total_work in
      Alcotest.(check bool)
        (Printf.sprintf "%s work %.0f in range" b.Benchsuite.Suite.name w)
        true
        (w >= 1e6 && w <= 1e9))
    Benchsuite.Suite.all

let test_adpcm_channel_loop_doall () =
  (* the channel loop must be DOALL despite the sequential inner encoder *)
  let b = Option.get (Benchsuite.Suite.find "adpcm_enc") in
  Alcotest.(check bool) "adpcm has >= 2 doall loops" true (doall_count b >= 2)

let test_latnrm_lattice_sequential () =
  (* the lattice sample loop must NOT be doall *)
  let b = Option.get (Benchsuite.Suite.find "latnrm_32") in
  let prog = Benchsuite.Suite.compile b in
  let profile = (Interp.Eval.run prog).Interp.Eval.profile in
  let root = Htg.Build.build prog profile in
  let seq_loops = ref 0 in
  let rec go (node : Htg.Node.t) =
    (match node.Htg.Node.kind with
    | Htg.Node.Loop l ->
        if (not l.doall) && l.iters_per_entry > 1000. then
          incr seq_loops
    | _ -> ());
    Array.iter go node.Htg.Node.children
  in
  go root;
  Alcotest.(check bool) "large sequential loop exists" true (!seq_loops >= 1)

let suite =
  [
    Alcotest.test_case "all compile" `Quick test_all_compile;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "golden checksums" `Quick test_checksums;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "doall structure" `Quick test_doall_structure;
    Alcotest.test_case "work magnitude" `Quick test_work_magnitude;
    Alcotest.test_case "adpcm channel loop doall" `Quick
      test_adpcm_channel_loop_doall;
    Alcotest.test_case "latnrm lattice sequential" `Quick
      test_latnrm_lattice_sequential;
  ]
