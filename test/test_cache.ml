(* Tests for the persistent cross-run solve cache: the entry codec
   (round-trip, totality on garbage), the on-disk store (integrity
   degradation, schema invalidation, LRU eviction), key salting, the
   Memo backing hook, and the end-to-end contract — a warm run answers
   every solve from disk and its chosen solutions are byte-identical to
   the cold run's. *)

let sol ?(status = Ilp.Branch_bound.Optimal) ?x ?(obj = 7.5) ?(nodes = 42)
    ?(pivots = 99) ?(cuts = 3) ?(incumbents = []) () :
    Ilp.Branch_bound.solution =
  { Ilp.Branch_bound.status; x; obj; nodes; pivots; cuts; incumbents }

(* ------------------------------------------------------------------ *)
(* Entry codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_entry_roundtrip_hand () =
  let cases =
    [
      sol ();
      sol ~status:Ilp.Branch_bound.Infeasible ~obj:infinity ~nodes:0 ();
      sol ~x:[||] ~obj:(-0.) ();
      sol
        ~x:[| 1.; 0.; 0.5; -3.25 |]
        ~incumbents:[ [| 1.; 1.; 0.; 0. |]; [| 1.; 0.; 0.5; -3.25 |] ]
        ~status:Ilp.Branch_bound.Limit ();
      sol ~obj:nan ~x:[| nan; neg_infinity |] ();
    ]
  in
  List.iter
    (fun s ->
      match Cache.Entry.decode (Cache.Entry.encode s) with
      | None -> Alcotest.fail "decode of a fresh encode returned None"
      | Some s' ->
          Alcotest.(check bool)
            "round-trip is bit-exact" true (Cache.Entry.equal s s'))
    cases

let test_entry_roundtrip_qcheck () =
  let open QCheck in
  let float_bits =
    (* spans normals, subnormals, infinities, NaNs, signed zeros *)
    Gen.map Int64.float_of_bits Gen.int64
  in
  let gen_sol =
    Gen.(
      let* status = oneofl Ilp.Branch_bound.[ Optimal; Feasible; Infeasible; Unbounded; Limit ] in
      let* obj = float_bits in
      let* nodes = int_bound 1_000_000 in
      let* x = option (array_size (int_bound 12) float_bits) in
      let* incumbents = list_size (int_bound 4) (array_size (int_bound 12) float_bits) in
      return (sol ~status ?x ~obj ~nodes ~incumbents ()))
  in
  let arb = make gen_sol in
  let prop s =
    match Cache.Entry.decode (Cache.Entry.encode s) with
    | None -> false
    | Some s' -> Cache.Entry.equal s s'
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"entry codec round-trips bit-exactly"
       arb prop)

let test_entry_decode_total () =
  let payload = Cache.Entry.encode (sol ~x:[| 1.; 2.; 3. |] ()) in
  (* every truncation is a miss, never an exception *)
  for n = 0 to String.length payload - 1 do
    match Cache.Entry.decode (String.sub payload 0 n) with
    | Some _ -> Alcotest.failf "truncation to %d bytes decoded" n
    | None -> ()
  done;
  (* trailing garbage is rejected too (the entry is not what we wrote) *)
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (Cache.Entry.decode (payload ^ "x") = None);
  (* a flipped version byte is rejected *)
  let b = Bytes.of_string payload in
  Bytes.set b 0 '\xff';
  Alcotest.(check bool)
    "bad version rejected" true
    (Cache.Entry.decode (Bytes.to_string b) = None);
  (* absurd array length claims must not allocate or crash *)
  let huge = Bytes.make 18 '\xff' in
  Bytes.set huge 0 '\001' (* version *);
  Bytes.set huge 1 '\000' (* status Optimal *);
  Alcotest.(check bool)
    "absurd lengths rejected" true
    (Cache.Entry.decode (Bytes.to_string huge) = None)

let test_entry_engine_tag () =
  let s = sol ~x:[| 1.; 2. |] () in
  (* default engine round-trips *)
  Alcotest.(check bool)
    "ilp entry decodes as ilp" true
    (Cache.Entry.decode (Cache.Entry.encode s) <> None);
  (* a heuristic answer never replays as an exact one, and vice versa *)
  Alcotest.(check bool)
    "heuristic entry refused by exact decode" true
    (Cache.Entry.decode (Cache.Entry.encode ~engine:"heuristic" s) = None);
  Alcotest.(check bool)
    "exact entry refused by heuristic decode" true
    (Cache.Entry.decode ~engine:"heuristic" (Cache.Entry.encode s) = None);
  (* same engine on both sides round-trips bit-exactly *)
  match
    Cache.Entry.decode ~engine:"heuristic"
      (Cache.Entry.encode ~engine:"heuristic" s)
  with
  | None -> Alcotest.fail "heuristic round-trip failed"
  | Some s' ->
      Alcotest.(check bool) "bit-exact" true (Cache.Entry.equal s s')

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let with_tmp_dir f =
  let dir = Filename.temp_dir "mpsoc-cache-test" "" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with _ -> ()
      end)
    (fun () -> f dir)

let test_store_roundtrip_across_open () =
  with_tmp_dir @@ fun dir ->
  let s = sol ~x:[| 1.; 0.; 1. |] ~incumbents:[ [| 1.; 0.; 0. |] ] () in
  let st = Cache.Store.open_ ~dir () in
  Cache.Store.store st "key-a" s;
  Cache.Store.close st;
  let st = Cache.Store.open_ ~dir () in
  (match Cache.Store.lookup st "key-a" with
  | None -> Alcotest.fail "persisted entry not found after reopen"
  | Some s' ->
      Alcotest.(check bool) "persisted bit-exactly" true (Cache.Entry.equal s s'));
  Alcotest.(check bool)
    "unknown key misses" true
    (Cache.Store.lookup st "key-b" = None);
  let c = Cache.Store.counters st in
  Alcotest.(check int) "one hit" 1 c.Cache.Store.hits;
  Alcotest.(check int) "one miss" 1 c.Cache.Store.misses;
  Cache.Store.close st

let test_store_corruption_degrades () =
  with_tmp_dir @@ fun dir ->
  let st = Cache.Store.open_ ~dir () in
  Cache.Store.store st "k" (sol ~x:[| 2.; 3.; 4. |] ());
  Cache.Store.close st;
  (* flip bits in the middle of the data file *)
  let data = Filename.concat dir "data" in
  let fd = Unix.openfile data [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 12 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 4 '\xff') 0 4);
  Unix.close fd;
  let st = Cache.Store.open_ ~dir () in
  Alcotest.(check bool)
    "bit-flipped entry is a miss" true
    (Cache.Store.lookup st "k" = None);
  let c = Cache.Store.counters st in
  Alcotest.(check int) "corruption counted" 1 c.Cache.Store.corrupt;
  Alcotest.(check int) "no hit" 0 c.Cache.Store.hits;
  Cache.Store.close st;
  (* truncation likewise: the extent check drops the entry at load *)
  let st = Cache.Store.open_ ~dir () in
  Cache.Store.store st "k2" (sol ~x:(Array.make 64 1.5) ());
  Cache.Store.close st;
  let fd = Unix.openfile data [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd 10;
  Unix.close fd;
  let st = Cache.Store.open_ ~dir () in
  Alcotest.(check bool)
    "truncated entry is a miss" true
    (Cache.Store.lookup st "k2" = None);
  Cache.Store.close st

let test_store_schema_invalidation () =
  with_tmp_dir @@ fun dir ->
  let st = Cache.Store.open_ ~dir () in
  Cache.Store.store st "k" (sol ());
  Cache.Store.close st;
  (* bump the schema in the index header: the whole generation is stale *)
  let index = Filename.concat dir "index" in
  let lines = In_channel.with_open_bin index In_channel.input_lines in
  let patched =
    match lines with
    | _hdr :: rest ->
        String.concat "\n"
          (("mpsoc-par/solve-cache/v0 ocaml=" ^ Sys.ocaml_version) :: rest)
        ^ "\n"
    | [] -> Alcotest.fail "empty index"
  in
  Out_channel.with_open_bin index (fun oc -> Out_channel.output_string oc patched);
  let st = Cache.Store.open_ ~dir () in
  let c = Cache.Store.counters st in
  Alcotest.(check int) "stale counted" 1 c.Cache.Store.stale;
  Alcotest.(check int) "no entries survive" 0 c.Cache.Store.entries;
  Alcotest.(check bool) "old key misses" true (Cache.Store.lookup st "k" = None);
  Cache.Store.close st

let test_store_eviction_cap () =
  with_tmp_dir @@ fun dir ->
  (* ~176 KiB per entry; 10 of them overflow a 1 MiB cap *)
  let big i = sol ~x:(Array.make 22_000 (float_of_int i)) () in
  let st = Cache.Store.open_ ~max_mb:1 ~dir () in
  for i = 1 to 10 do
    Cache.Store.store st (Printf.sprintf "k%02d" i) (big i)
  done;
  Cache.Store.close st;
  let st = Cache.Store.open_ ~dir () in
  let c = Cache.Store.counters st in
  Alcotest.(check bool)
    (Printf.sprintf "data file under the cap (%d bytes)" c.Cache.Store.bytes)
    true
    (c.Cache.Store.bytes <= 1024 * 1024);
  Alcotest.(check bool)
    "some entries survive" true
    (c.Cache.Store.entries > 0);
  Alcotest.(check bool)
    "some entries were evicted" true
    (c.Cache.Store.entries < 10);
  (* LRU: the most recently stored entry survives, the first is gone *)
  (match Cache.Store.lookup st "k10" with
  | Some s -> Alcotest.(check bool) "MRU intact" true (Cache.Entry.equal s (big 10))
  | None -> Alcotest.fail "most-recently-used entry was evicted");
  Alcotest.(check bool)
    "LRU entry evicted" true
    (Cache.Store.lookup st "k01" = None);
  Cache.Store.close st

let test_key_salting () =
  (* same fingerprint, different platform context -> different disk keys *)
  let fp = String.make 16 'f' in
  let salt_a =
    Cache.Store.salt
      ~context:(Platform.Desc.show Platform.Presets.platform_a_accel)
  in
  let salt_b =
    Cache.Store.salt
      ~context:(Platform.Desc.show Platform.Presets.platform_b_slow)
  in
  Alcotest.(check bool)
    "platforms separate the keyspace" false
    (String.equal
       (Cache.Store.entry_key ~salt:salt_a fp)
       (Cache.Store.entry_key ~salt:salt_b fp));
  Alcotest.(check bool)
    "same context derives the same key" true
    (String.equal
       (Cache.Store.entry_key ~salt:salt_a fp)
       (Cache.Store.entry_key
          ~salt:
            (Cache.Store.salt
               ~context:(Platform.Desc.show Platform.Presets.platform_a_accel))
          fp))

(* ------------------------------------------------------------------ *)
(* Memo backing                                                        *)
(* ------------------------------------------------------------------ *)

let test_memo_backing () =
  let disk : (string, Ilp.Branch_bound.solution) Hashtbl.t =
    Hashtbl.create 8
  in
  let backing =
    {
      Ilp.Memo.lookup = (fun key ~engine:_ -> Hashtbl.find_opt disk key);
      store = (fun key ~engine:_ s -> Hashtbl.replace disk key s);
    }
  in
  let m = Ilp.Memo.create ~backing () in
  let s = sol ~x:[| 1. |] () in
  (* miss everywhere -> reserved; fill writes through to the backing *)
  (match Ilp.Memo.find_or_reserve m "fp1" with
  | `Hit _ -> Alcotest.fail "empty tiers produced a hit"
  | `Reserved -> Ilp.Memo.fill m "fp1" s);
  Alcotest.(check bool) "write-through" true (Hashtbl.mem disk "fp1");
  (* a fresh memo over the same backing answers from disk *)
  let m2 = Ilp.Memo.create ~backing () in
  (match Ilp.Memo.find_or_reserve m2 "fp1" with
  | `Hit s' ->
      Alcotest.(check bool) "disk tier answers" true (Cache.Entry.equal s s')
  | `Reserved -> Alcotest.fail "backing was not consulted");
  Alcotest.(check int) "counted as disk hit" 1 (Ilp.Memo.disk_hits m2);
  Alcotest.(check int) "not counted as memory hit" 0 (Ilp.Memo.hits m2);
  Alcotest.(check int) "not counted as miss" 0 (Ilp.Memo.misses m2);
  (* and the second lookup of the same key hits in memory *)
  (match Ilp.Memo.find_or_reserve m2 "fp1" with
  | `Hit _ -> ()
  | `Reserved -> Alcotest.fail "published disk hit did not stick");
  Alcotest.(check int) "memory hit after publish" 1 (Ilp.Memo.hits m2);
  (* a raising backing degrades to a plain miss *)
  let m3 =
    Ilp.Memo.create
      ~backing:
        {
          Ilp.Memo.lookup = (fun _ ~engine:_ -> failwith "io");
          store = (fun _ ~engine:_ _ -> ());
        }
      ()
  in
  (match Ilp.Memo.find_or_reserve m3 "fp1" with
  | `Hit _ -> Alcotest.fail "raising backing produced a hit"
  | `Reserved -> Ilp.Memo.cancel m3 "fp1");
  Alcotest.(check int) "raising backing is a miss" 1 (Ilp.Memo.misses m3)

(* ------------------------------------------------------------------ *)
(* End-to-end: warm runs are byte-identical and solve nothing          *)
(* ------------------------------------------------------------------ *)

(* chaos-suite-sized budgets keep a full pipeline run quick *)
let quick_cfg dir =
  {
    Parcore.Config.fast with
    Parcore.Config.jobs = 1;
    ilp_work_limit = 2e5;
    ilp_node_limit = 2_000;
    cache_dir = Some dir;
  }

let algo_bytes (algo : Parcore.Algorithm.result) =
  let sets =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) algo.Parcore.Algorithm.sets []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  Marshal.to_string
    (algo.Parcore.Algorithm.root, algo.Parcore.Algorithm.root_set, sets)
    []

let source name =
  match Benchsuite.Suite.find name with
  | Some b -> b.Benchsuite.Suite.source
  | None -> Alcotest.failf "unknown suite benchmark %s" name

let run_once cfg pf src =
  Parcore.Parallelize.run ~cfg ~approach:Parcore.Parallelize.Heterogeneous
    ~platform:pf src

let check_warm_cold name pf =
  with_tmp_dir @@ fun dir ->
  let cfg = quick_cfg dir in
  let src = source name in
  let cold = run_once cfg pf src in
  let warm = run_once cfg pf src in
  Alcotest.(check string)
    (name ^ ": warm solutions byte-identical to cold")
    (Digest.to_hex (Digest.string (algo_bytes cold.Parcore.Parallelize.algo)))
    (Digest.to_hex (Digest.string (algo_bytes warm.Parcore.Parallelize.algo)));
  let warm_stats = warm.Parcore.Parallelize.algo.Parcore.Algorithm.stats in
  Alcotest.(check int)
    (name ^ ": warm run solves no fresh ILPs")
    0 warm_stats.Ilp.Stats.ilps;
  match warm.Parcore.Parallelize.algo.Parcore.Algorithm.disk_cache with
  | None -> Alcotest.fail "no disk-cache counters on a cached run"
  | Some c ->
      Alcotest.(check int) (name ^ ": warm run all hits") 0 c.Cache.Store.misses;
      Alcotest.(check bool)
        (name ^ ": warm run hit something") true (c.Cache.Store.hits > 0)

let test_warm_cold_quick () =
  check_warm_cold "mult_10" Platform.Presets.platform_a_accel

let test_warm_cold_matrix () =
  List.iter
    (fun name ->
      List.iter
        (fun pf -> check_warm_cold name pf)
        [ Platform.Presets.platform_a_accel; Platform.Presets.platform_b_slow ])
    [ "mult_10"; "compress"; "boundary_value" ]

let suite =
  [
    Alcotest.test_case "entry: hand-picked round-trips" `Quick
      test_entry_roundtrip_hand;
    Alcotest.test_case "entry: qcheck round-trip" `Quick
      test_entry_roundtrip_qcheck;
    Alcotest.test_case "entry: decode is total" `Quick test_entry_decode_total;
    Alcotest.test_case "entry: engine tag refuses cross-replay" `Quick
      test_entry_engine_tag;
    Alcotest.test_case "store: round-trip across open" `Quick
      test_store_roundtrip_across_open;
    Alcotest.test_case "store: corruption degrades to miss" `Quick
      test_store_corruption_degrades;
    Alcotest.test_case "store: schema bump invalidates" `Quick
      test_store_schema_invalidation;
    Alcotest.test_case "store: eviction respects the cap" `Quick
      test_store_eviction_cap;
    Alcotest.test_case "keys: platform salting" `Quick test_key_salting;
    Alcotest.test_case "memo: disk backing tier" `Quick test_memo_backing;
    Alcotest.test_case "warm run = cold run (quick)" `Quick
      test_warm_cold_quick;
    Alcotest.test_case "warm run = cold run (3 benchmarks x 2 platforms)"
      `Slow test_warm_cold_matrix;
  ]
