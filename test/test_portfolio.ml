(* Tests for the solver portfolio: the heuristic engine's schedules must
   always be feasible points of the *exact* ILPPAR model (Eq. 14-16 et
   al. are checked by [Ilp.Model.feasible], not re-derived here) and can
   never beat a proved exact optimum; portfolio work-limit exhaustion
   lands on the Incumbent rung, which is the portfolio contract's
   acceptable tier (exit 0, not 2); and a memo reservation owned by an
   abandoned request is force-released and counted. *)

let platform = Platform.Presets.platform_a_accel

let bench name =
  match Benchsuite.Suite.find name with
  | Some b -> Benchsuite.Suite.compile b
  | None -> Alcotest.fail ("unknown benchmark " ^ name)

let parallelize ~cfg prog =
  match
    Parcore.Parallelize.run_program_result ~cfg
      ~approach:Parcore.Parallelize.Heterogeneous ~platform prog
  with
  | Ok out -> out
  | Error e -> Alcotest.fail ("pipeline failed: " ^ Mpsoc_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Property: heuristic schedules are feasible and never super-optimal  *)
(* ------------------------------------------------------------------ *)

(* Real ILPPAR instances are harvested from a benchmark run: every
   hierarchical node with >= 2 children, together with its children's
   final candidate sets, parameterizes a [Formulation.input].  The
   qcheck generator then picks (node, seq_class, budget) triples. *)
type harvested = {
  h_node : Htg.Node.t;
  h_sets : (int, Parcore.Solution.set) Hashtbl.t;
}

let harvest =
  lazy
    (let prog = bench "mult_10" in
     let out = parallelize ~cfg:Parcore.Config.fast prog in
     let sets = out.Parcore.Parallelize.algo.Parcore.Algorithm.sets in
     let nodes = ref [] in
     let rec walk (n : Htg.Node.t) =
       if Array.length n.Htg.Node.children >= 2 then
         nodes := { h_node = n; h_sets = sets } :: !nodes;
       Array.iter walk n.Htg.Node.children
     in
     walk out.Parcore.Parallelize.htg;
     !nodes)

let input_of h ~seq_class ~budget =
  {
    Parcore.Formulation.node = h.h_node;
    child_sets =
      Array.map
        (fun (c : Htg.Node.t) -> Hashtbl.find h.h_sets c.Htg.Node.id)
        h.h_node.Htg.Node.children;
    pf = platform;
    seq_class;
    budget;
    cfg = Parcore.Config.fast;
  }

let test_heuristic_feasible_never_beats_exact =
  QCheck.Test.make ~count:40
    ~name:"heuristic point feasible, never beats exact optimum"
    QCheck.(
      triple (int_bound 1000) (int_bound 1000) (int_bound 1000))
    (fun (ni, ci, bi) ->
      let nodes = Lazy.force harvest in
      if nodes = [] then QCheck.Test.fail_report "no hierarchical nodes";
      let h = List.nth nodes (ni mod List.length nodes) in
      let seq_class = ci mod Platform.Desc.num_classes platform in
      let budget = 2 + (bi mod (Platform.Desc.total_units platform - 1)) in
      let input = input_of h ~seq_class ~budget in
      match Parcore.Formulation.build input with
      | None -> true (* degenerate (node, budget): nothing to check *)
      | Some inst -> (
          match Parcore.Heuristics.best_point input inst with
          | None -> true (* heuristic found nothing: allowed, never wrong *)
          | Some (pt, obj) ->
              let model = inst.Parcore.Formulation.model in
              if not (Ilp.Model.feasible model (fun v -> pt.(v))) then
                QCheck.Test.fail_report
                  "heuristic point violates the exact model";
              let obj' = Ilp.Model.objective_value model (fun v -> pt.(v)) in
              if Float.abs (obj -. obj') > 1e-6 *. (1. +. Float.abs obj) then
                QCheck.Test.fail_reportf
                  "reported objective %.9g <> model objective %.9g" obj obj';
              (* exact optimum of the same instance; only a *proved*
                 optimum bounds the heuristic from below *)
              let out =
                Ilp.Solver.solve
                  ~warm_start:
                    (Parcore.Formulation.hierarchical_warm_start input inst)
                  model
              in
              (match out.Ilp.Solver.status with
              | Ilp.Branch_bound.Optimal ->
                  if obj < out.Ilp.Solver.obj -. 1e-6 then
                    QCheck.Test.fail_reportf
                      "heuristic %.9g beats proved optimum %.9g" obj
                      out.Ilp.Solver.obj
              | _ -> ());
              true))

(* ------------------------------------------------------------------ *)
(* Degradation-ladder interaction                                      *)
(* ------------------------------------------------------------------ *)

(* Exhausting the portfolio's reduced work budget must return the
   heuristic incumbent (Incumbent or better tag), which is within the
   portfolio contract: [Algorithm.degradation] = None, i.e. exit 0. *)
let test_portfolio_exhaustion_within_contract () =
  let cfg =
    {
      Parcore.Config.fast with
      Parcore.Config.solver = Parcore.Config.Portfolio;
      portfolio_work_limit = 1.;
      (* so small every branch & bound aborts immediately *)
    }
  in
  let out = parallelize ~cfg (bench "fir_256") in
  let algo = out.Parcore.Parallelize.algo in
  let worst =
    Parcore.Solution.worst_degradation algo.Parcore.Algorithm.root
  in
  Alcotest.(check bool)
    "root tag at Incumbent tier or better" true
    (Parcore.Solution.degradation_rank worst
    <= Parcore.Solution.degradation_rank Parcore.Solution.Incumbent);
  Alcotest.(check (option string))
    "portfolio contract met (exit 0)" None
    (Parcore.Algorithm.degradation algo)

(* In heuristic mode the Heuristic tag itself is the contract: no branch
   & bound runs at all, and the result is not reported degraded. *)
let test_heuristic_mode_contract () =
  let cfg =
    {
      Parcore.Config.fast with
      Parcore.Config.solver = Parcore.Config.Heuristic;
    }
  in
  let out = parallelize ~cfg (bench "mult_10") in
  let algo = out.Parcore.Parallelize.algo in
  Alcotest.(check int)
    "no exact solves in heuristic mode" 0
    algo.Parcore.Algorithm.stats.Ilp.Stats.ilps;
  Alcotest.(check bool)
    "heuristic engine ran" true
    (algo.Parcore.Algorithm.stats.Ilp.Stats.heuristic_solves > 0);
  Alcotest.(check (option string))
    "heuristic contract met (exit 0)" None
    (Parcore.Algorithm.degradation algo)

(* ------------------------------------------------------------------ *)
(* Memo reservation cancellation (abandoned request)                   *)
(* ------------------------------------------------------------------ *)

let test_cancel_owned_releases_reservation () =
  let m = Ilp.Memo.create () in
  let key = String.make 16 'k' in
  (* reserve under a request tag, as a serve worker would *)
  (match Trace.with_tag "req-77" (fun () -> Ilp.Memo.find_or_reserve m key) with
  | `Reserved -> ()
  | `Hit _ -> Alcotest.fail "fresh key cannot hit");
  (* a different request's reservations are left alone *)
  Alcotest.(check int)
    "other request cancels nothing" 0
    (Ilp.Memo.cancel_owned m ~req:"req-42");
  Alcotest.(check int)
    "abandoned request's reservation released" 1
    (Ilp.Memo.cancel_owned m ~req:"req-77");
  Alcotest.(check int) "cancellation counted" 1 (Ilp.Memo.cancelled_count m);
  (* the key is solvable again: the next requester re-reserves *)
  (match Ilp.Memo.find_or_reserve m key with
  | `Reserved -> ()
  | `Hit _ -> Alcotest.fail "cancelled reservation must not replay");
  Ilp.Memo.cancel m key

let suite =
  [
    QCheck_alcotest.to_alcotest test_heuristic_feasible_never_beats_exact;
    Alcotest.test_case "portfolio work-limit exhaustion stays exit 0" `Slow
      test_portfolio_exhaustion_within_contract;
    Alcotest.test_case "heuristic mode runs zero ILPs, exit 0" `Slow
      test_heuristic_mode_contract;
    Alcotest.test_case "cancel_owned releases an abandoned reservation" `Quick
      test_cancel_owned_releases_reservation;
  ]
