(* Tests for the AHTG library: def/use analysis, DOALL classification,
   graph construction invariants, coalescing, and cost annotation. *)

open Minic
open Htg
module SS = Defuse.SS

let compile_and_profile src =
  let prog = Frontend.compile src in
  let r = Interp.Eval.run prog in
  (prog, r.Interp.Eval.profile)

let build ?max_children src =
  let prog, profile = compile_and_profile src in
  Build.build ?max_children prog profile

(* ------------------------------------------------------------------ *)
(* Def/use                                                             *)
(* ------------------------------------------------------------------ *)

let test_defuse_assign () =
  let prog =
    Frontend.compile
      "float a[4];\nint main() { int i; i = 2; a[i] = a[i - 1] + 1.0; return 0; }"
  in
  let main = List.hd prog.Ast.funcs in
  let stmt =
    List.find
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Assign (Ast.LArr ("a", _), _) -> true
        | _ -> false)
      main.Ast.fbody
  in
  let du = Defuse.stmt_own stmt in
  Alcotest.(check bool) "defines a" true (SS.mem "a" du.Defuse.defs);
  Alcotest.(check bool) "uses a (read + partial write)" true
    (SS.mem "a" du.Defuse.uses);
  Alcotest.(check bool) "uses i" true (SS.mem "i" du.Defuse.uses)

let test_defuse_locals_hidden () =
  let prog =
    Frontend.compile
      "int g;\nint main() { if (1) { int t; t = 5; g = t; } return g; }"
  in
  let main = List.hd prog.Ast.funcs in
  let if_stmt =
    List.find
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with Ast.If _ -> true | _ -> false)
      main.Ast.fbody
  in
  let du = Defuse.stmt_external if_stmt in
  Alcotest.(check bool) "local t hidden" false (SS.mem "t" du.Defuse.defs);
  Alcotest.(check bool) "global g visible" true (SS.mem "g" du.Defuse.defs)

(* ------------------------------------------------------------------ *)
(* DOALL classification                                                *)
(* ------------------------------------------------------------------ *)

let classify_first_loop src =
  let prog = Frontend.compile src in
  let main = List.hd prog.Ast.funcs in
  let found = ref None in
  ignore
    (Ast.fold_stmts
       (fun () (s : Ast.stmt) ->
         match (s.Ast.sdesc, !found) with
         | Ast.For f, None -> found := Some (Loops.classify f)
         | _ -> ())
       () main.Ast.fbody);
  Option.get !found

let is_doall = function Loops.Doall -> true | Loops.Sequential _ -> false

let test_doall_elementwise () =
  let v =
    classify_first_loop
      "float a[64]; float b[64];\nint main() { int i; for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; } return 0; }"
  in
  Alcotest.(check bool) "elementwise is doall" true (is_doall v)

let test_doall_private_scalar () =
  let v =
    classify_first_loop
      {|float a[64]; float b[64];
int main() { int i; for (i = 0; i < 64; i = i + 1) { float t; t = a[i] * 2.0; b[i] = t + 1.0; } return 0; }|}
  in
  Alcotest.(check bool) "private temp is doall" true (is_doall v)

let test_seq_accumulator () =
  let v =
    classify_first_loop
      "float a[64];\nint main() { int i; float s; s = 0.0; for (i = 0; i < 64; i = i + 1) { s = s + a[i]; } return (int) s; }"
  in
  Alcotest.(check bool) "reduction is sequential" false (is_doall v)

let test_seq_inplace_stencil () =
  let v =
    classify_first_loop
      "float a[64];\nint main() { int i; for (i = 1; i < 63; i = i + 1) { a[i] = a[i - 1] + a[i + 1]; } return 0; }"
  in
  Alcotest.(check bool) "in-place stencil is sequential" false (is_doall v)

let test_doall_readonly_stencil () =
  let v =
    classify_first_loop
      "float a[64]; float b[64];\nint main() { int i; for (i = 1; i < 63; i = i + 1) { b[i] = a[i - 1] + a[i + 1]; } return 0; }"
  in
  Alcotest.(check bool) "out-of-place stencil is doall" true (is_doall v)

let test_seq_guarded_def () =
  let v =
    classify_first_loop
      {|float a[64];
int main() { int i; float t; t = 0.0;
  for (i = 0; i < 64; i = i + 1) { if (a[i] > 0.0) { t = a[i]; } a[i] = t; } return 0; }|}
  in
  Alcotest.(check bool) "conditionally-defined scalar is carried" false
    (is_doall v)

let test_seq_noncanonical () =
  let v =
    classify_first_loop
      "int main() { int i; for (i = 64; i > 0; i = i - 1) { int t; t = i; } return 0; }"
  in
  Alcotest.(check bool) "downward loop is not canonical" false (is_doall v)

let test_seq_indirect_write () =
  let v =
    classify_first_loop
      "int h[8]; int x[64];\nint main() { int i; for (i = 0; i < 64; i = i + 1) { h[x[i] % 8] = h[x[i] % 8] + 1; } return 0; }"
  in
  Alcotest.(check bool) "indirect write is sequential" false (is_doall v)

let test_carried_vars () =
  let src =
    "float a[64];\nint main() { int i; float s; s = 0.0; for (i = 0; i < 64; i = i + 1) { s = s + a[i]; a[i] = s; } return 0; }"
  in
  let prog = Frontend.compile src in
  let main = List.hd prog.Ast.funcs in
  let body = ref [] in
  ignore
    (Ast.fold_stmts
       (fun () (s : Ast.stmt) ->
         match s.Ast.sdesc with
         | Ast.For f when !body = [] -> body := f.Ast.fbody
         | _ -> ())
       () main.Ast.fbody);
  let carried = Loops.carried_vars ~ind:(Some "i") !body in
  Alcotest.(check bool) "s carried" true (SS.mem "s" carried);
  Alcotest.(check bool) "a not carried (elementwise)" false (SS.mem "a" carried)

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let pipeline_src =
  {|
float a[128]; float b[128]; float c[128];
int main() {
  int i;
  for (i = 0; i < 128; i = i + 1) { a[i] = i * 0.5; }
  for (i = 0; i < 128; i = i + 1) { b[i] = a[i] + 1.0; }
  for (i = 0; i < 128; i = i + 1) { c[i] = b[i] * b[i]; }
  return 0;
}
|}

let test_build_structure () =
  let root = build pipeline_src in
  Alcotest.(check bool) "root is hierarchical" true (Node.is_hierarchical root);
  let loops =
    Array.to_list root.Node.children
    |> List.filter (fun (c : Node.t) ->
           match c.Node.kind with Node.Loop _ -> true | _ -> false)
  in
  Alcotest.(check int) "three loop children" 3 (List.length loops);
  List.iter
    (fun (l : Node.t) ->
      Alcotest.(check bool) "loop is doall" true (Node.is_doall l))
    loops

let test_build_flow_edges () =
  let root = build pipeline_src in
  (* find indices of the three loops among children *)
  let idx_of var =
    let found = ref (-1) in
    Array.iteri
      (fun i (c : Node.t) -> if SS.mem var c.Node.defs then found := i)
      root.Node.children;
    !found
  in
  let ia = idx_of "a" and ib = idx_of "b" and ic = idx_of "c" in
  let has_flow src dst var =
    List.exists
      (fun (e : Node.edge) ->
        e.Node.src = Node.EChild src && e.Node.dst = Node.EChild dst
        && String.equal e.Node.var var
        && e.Node.kind = Node.Flow)
      root.Node.edges
  in
  Alcotest.(check bool) "a flows loop1->loop2" true (has_flow ia ib "a");
  Alcotest.(check bool) "b flows loop2->loop3" true (has_flow ib ic "b");
  Alcotest.(check bool) "no direct a edge to loop3" false (has_flow ia ic "a")

let test_build_edges_forward () =
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      let prog = Benchsuite.Suite.compile b in
      let profile = (Interp.Eval.run prog).Interp.Eval.profile in
      let root = Build.build prog profile in
      let rec check (n : Node.t) =
        List.iter
          (fun (e : Node.edge) ->
            match (e.Node.src, e.Node.dst) with
            | Node.EChild i, Node.EChild j ->
                if i >= j then
                  Alcotest.failf "%s: backward edge %d->%d in node %s"
                    b.Benchsuite.Suite.name i j n.Node.label
            | _ -> ())
          n.Node.edges;
        List.iter
          (fun (x, y) ->
            if x < 0 || y < 0 || x >= Array.length n.Node.children
               || y >= Array.length n.Node.children then
              Alcotest.failf "%s: bad conflict pair" b.Benchsuite.Suite.name)
          n.Node.conflicts;
        Array.iter check n.Node.children
      in
      check root)
    Benchsuite.Suite.all

let test_build_cycles_conserved () =
  (* the root's total cycles must equal the profiled total work *)
  let prog, profile = compile_and_profile pipeline_src in
  let root = Build.build prog profile in
  let diff =
    Float.abs (root.Node.total_cycles -. profile.Interp.Profile.total_work)
  in
  Alcotest.(check bool) "cycles conserved" true
    (diff <= 1e-6 *. profile.Interp.Profile.total_work +. 1e-6)

let test_build_iteration_counts () =
  let root = build pipeline_src in
  Array.iter
    (fun (c : Node.t) ->
      match c.Node.kind with
      | Node.Loop l ->
          Alcotest.(check bool) "iters 128"
            true
            (Float.abs (l.iters_per_entry -. 128.) < 1e-9)
      | _ -> ())
    root.Node.children

let test_coalescing_bound () =
  (* 20 straight-line statements must coalesce below the bound *)
  let stmts =
    String.concat "\n"
      (List.init 20 (fun i -> Printf.sprintf "  g%d = %d;" i i))
  in
  let decls =
    String.concat "\n" (List.init 20 (fun i -> Printf.sprintf "int g%d;" i))
  in
  let src = Printf.sprintf "%s\nint main() {\n%s\n  return g0;\n}" decls stmts in
  let root = build ~max_children:6 src in
  Alcotest.(check bool) "children within bound" true
    (Array.length root.Node.children <= 6)

let test_conflicts_for_recurrence () =
  let src =
    {|
float a[64]; float b[64];
int main() {
  int i;
  float s;
  s = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    s = s + a[i];
    b[i] = s * 2.0;
  }
  return (int) s;
}
|}
  in
  let root = build src in
  let loop =
    Array.to_list root.Node.children
    |> List.find (fun (c : Node.t) ->
           match c.Node.kind with Node.Loop _ -> true | _ -> false)
  in
  Alcotest.(check bool) "recurrence creates conflicts" true
    (List.length loop.Node.conflicts > 0
    || Array.length loop.Node.children < 2)

let test_branch_structure () =
  let src =
    {|
int g;
int main() {
  int x;
  x = 3;
  if (x > 1) {
    g = x * 2;
  } else {
    g = x - 1;
  }
  return g;
}
|}
  in
  let root = build src in
  let branch =
    Array.to_list root.Node.children
    |> List.find_opt (fun (c : Node.t) ->
           match c.Node.kind with Node.Branch _ -> true | _ -> false)
  in
  match branch with
  | None -> Alcotest.fail "no branch node"
  | Some b ->
      Alcotest.(check bool) "branch has cond + arms" true
        (Array.length b.Node.children >= 2)

let test_live_in_out_bytes () =
  let root = build pipeline_src in
  (* c (512 bytes) leaves main through Comm-Out *)
  Alcotest.(check bool) "live-out bytes include arrays" true
    (root.Node.live_out_bytes >= 512)

let suite =
  [
    Alcotest.test_case "defuse assign" `Quick test_defuse_assign;
    Alcotest.test_case "defuse locals hidden" `Quick test_defuse_locals_hidden;
    Alcotest.test_case "doall elementwise" `Quick test_doall_elementwise;
    Alcotest.test_case "doall private scalar" `Quick test_doall_private_scalar;
    Alcotest.test_case "seq accumulator" `Quick test_seq_accumulator;
    Alcotest.test_case "seq in-place stencil" `Quick test_seq_inplace_stencil;
    Alcotest.test_case "doall read-only stencil" `Quick test_doall_readonly_stencil;
    Alcotest.test_case "seq guarded def" `Quick test_seq_guarded_def;
    Alcotest.test_case "seq non-canonical" `Quick test_seq_noncanonical;
    Alcotest.test_case "seq indirect write" `Quick test_seq_indirect_write;
    Alcotest.test_case "carried vars" `Quick test_carried_vars;
    Alcotest.test_case "build structure" `Quick test_build_structure;
    Alcotest.test_case "build flow edges" `Quick test_build_flow_edges;
    Alcotest.test_case "edges forward (all benchmarks)" `Quick test_build_edges_forward;
    Alcotest.test_case "cycles conserved" `Quick test_build_cycles_conserved;
    Alcotest.test_case "iteration counts" `Quick test_build_iteration_counts;
    Alcotest.test_case "coalescing bound" `Quick test_coalescing_bound;
    Alcotest.test_case "conflicts for recurrence" `Quick test_conflicts_for_recurrence;
    Alcotest.test_case "branch structure" `Quick test_branch_structure;
    Alcotest.test_case "live in/out bytes" `Quick test_live_in_out_bytes;
  ]

(* ------------------------------------------------------------------ *)
(* DOT export                                                          *)
(* ------------------------------------------------------------------ *)

let dot_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_dot_export () =
  let root = build pipeline_src in
  let s = Dot.to_string root in
  Alcotest.(check bool) "digraph wrapper" true
    (dot_contains s "digraph ahtg" && dot_contains s "}");
  Alcotest.(check bool) "clusters for hierarchy" true
    (dot_contains s "subgraph cluster_");
  Alcotest.(check bool) "comm nodes" true
    (dot_contains s "comm-in" && dot_contains s "comm-out");
  (* balanced braces *)
  let opens = String.fold_left (fun n c -> if c = '{' then n + 1 else n) 0 s in
  let closes = String.fold_left (fun n c -> if c = '}' then n + 1 else n) 0 s in
  Alcotest.(check int) "balanced braces" opens closes

let test_dot_carried_marks () =
  let src =
    "float a[64];\nint main() { int i; float s; s = 0.0; for (i = 0; i < 64; i = i + 1) { s = s + a[i]; a[i] = s * 0.5; } return (int) s; }"
  in
  let root = build src in
  let s = Dot.to_string root in
  (* the recurrence should render either as a carried mark or the loop has
     a single (coalesced) child *)
  Alcotest.(check bool) "renders" true (String.length s > 0);
  ignore s

let suite =
  suite
  @ [
      Alcotest.test_case "dot export" `Quick test_dot_export;
      Alcotest.test_case "dot carried marks" `Quick test_dot_carried_marks;
    ]

let test_seq_mutated_bound () =
  let v =
    classify_first_loop
      "int n;\nfloat a[64];\nint main() { int i; n = 64; for (i = 0; i < n; i = i + 1) { a[i] = 1.0; n = 32; } return n; }"
  in
  Alcotest.(check bool) "mutated bound is sequential" false (is_doall v)

let test_doall_invariant_bound () =
  let v =
    classify_first_loop
      "int n;\nfloat a[64];\nint main() { int i; n = 64; for (i = 0; i < n; i = i + 1) { a[i] = 1.0; } return n; }"
  in
  Alcotest.(check bool) "invariant bound stays doall" true (is_doall v)

let suite =
  suite
  @ [
      Alcotest.test_case "seq mutated bound" `Quick test_seq_mutated_bound;
      Alcotest.test_case "doall invariant bound" `Quick
        test_doall_invariant_bound;
    ]
