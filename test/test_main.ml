let () =
  Alcotest.run "mpsoc-par"
    [
      ("minic", Test_minic.suite);
      ("interp", Test_interp.suite);
      ("platform", Test_platform.suite);
      ("ilp", Test_ilp.suite);
      ("accel", Test_accel.suite);
      ("memo", Test_memo.suite);
      ("cache", Test_cache.suite);
      ("htg", Test_htg.suite);
      ("sim", Test_sim.suite);
      ("benchsuite", Test_benchsuite.suite);
      ("parcore", Test_parcore.suite);
      ("report", Test_report.suite);
      ("runtime", Test_runtime.suite);
      ("fault", Test_fault.suite);
      ("degrade", Test_degrade.suite);
      ("watchdog", Test_watchdog.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("server", Test_server.suite);
      ("fuzz-inputs", Test_fuzz_inputs.suite);
      ("pipeline-properties", Test_pipeline_prop.suite);
      ("portfolio", Test_portfolio.suite);
      ("determinism", Test_determinism.suite);
    ]
