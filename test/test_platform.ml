(* Tests for platform descriptions: presets, theoretical speedups, the
   homogeneous view, and the textual parser round-trip. *)

open Platform

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_theoretical_a () =
  (* (1*100 + 1*250 + 2*500)/100 = 13.5 and /500 = 2.7, as in the paper *)
  Alcotest.(check bool) "13.5x" true
    (feq (Desc.theoretical_speedup Presets.platform_a_accel) 13.5);
  Alcotest.(check bool) "2.7x" true
    (feq (Desc.theoretical_speedup Presets.platform_a_slow) 2.7)

let test_theoretical_b () =
  Alcotest.(check bool) "7x" true
    (feq (Desc.theoretical_speedup Presets.platform_b_accel) 7.0);
  Alcotest.(check bool) "2.8x" true
    (feq (Desc.theoretical_speedup Presets.platform_b_slow) 2.8)

let test_time_us () =
  let p = Presets.platform_a_accel in
  (* 1000 cycles at 100 MHz = 10 us; at 500 MHz = 2 us *)
  Alcotest.(check bool) "100MHz" true (feq (Desc.time_us p ~cls:0 1000.) 10.);
  Alcotest.(check bool) "500MHz" true (feq (Desc.time_us p ~cls:2 1000.) 2.)

let test_homogeneous_view () =
  let h = Desc.homogeneous_view Presets.platform_a_accel in
  Alcotest.(check int) "one class" 1 (Desc.num_classes h);
  Alcotest.(check int) "all units merged" 4 (Desc.total_units h);
  (* homogeneous view runs at the main class's speed *)
  Alcotest.(check bool) "main speed" true
    (feq (Proc_class.speed (Desc.main h)) 100.)

let test_total_units () =
  Alcotest.(check int) "platform A units" 4
    (Desc.total_units Presets.platform_a_accel);
  Alcotest.(check int) "biglittle units" 8 (Desc.total_units Presets.biglittle)

let test_comm_cost () =
  let c = Comm.make ~startup_us:2.0 ~per_byte_us:0.01 in
  Alcotest.(check bool) "transfer" true (feq (Comm.transfer_us c 100) 3.0)

let test_class_index () =
  let p = Presets.platform_a_accel in
  Alcotest.(check (option int)) "arm250" (Some 1) (Desc.class_index p "arm250");
  Alcotest.(check (option int)) "missing" None (Desc.class_index p "nope")

let test_invalid_platform () =
  (match
     Desc.make ~name:"bad" ~classes:[] ~main_class:0 ()
   with
  | exception Mpsoc_error.Error { phase = Platform; kind = Invalid_input; _ } ->
      ()
  | _ -> Alcotest.fail "expected typed error on empty classes");
  match
    Desc.make ~name:"bad"
      ~classes:[ Proc_class.make ~name:"c" ~freq_mhz:100. ~count:1 () ]
      ~main_class:3 ()
  with
  | exception Mpsoc_error.Error { phase = Platform; kind = Invalid_input; _ } ->
      ()
  | _ -> Alcotest.fail "expected typed error on bad main_class"

let test_parse_roundtrip () =
  let p = Presets.platform_b_accel in
  let p2 = Parse.of_string (Parse.to_string p) in
  Alcotest.(check int) "classes" (Desc.num_classes p) (Desc.num_classes p2);
  Alcotest.(check bool) "theoretical speedup" true
    (feq (Desc.theoretical_speedup p) (Desc.theoretical_speedup p2));
  Alcotest.(check int) "main class" p.Desc.main_class p2.Desc.main_class

let test_parse_basic () =
  let p =
    Parse.of_string
      "platform t\n# comment\nclass little freq 1000 cpi 1.6 count 4\nclass big freq 1800 count 4 main\nbus startup 2.0 per_byte 0.005\ntco 1.5\n"
  in
  Alcotest.(check int) "classes" 2 (Desc.num_classes p);
  Alcotest.(check int) "main" 1 p.Desc.main_class;
  Alcotest.(check bool) "tco" true (feq p.Desc.tco_us 1.5);
  Alcotest.(check bool) "cpi" true (feq (Desc.proc_class p 0).Proc_class.cpi 1.6)

let test_parse_errors () =
  let bad s =
    match Parse.of_string s with
    | exception Parse.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "class a freq 100 count 1\n";
  (* no main *)
  bad "class a freq 100 main\nclass b freq 200 main\n";
  (* two mains *)
  bad "clazz a\n";
  bad "class a count 1 main\n" (* missing freq *)

let suite =
  [
    Alcotest.test_case "theoretical speedup A" `Quick test_theoretical_a;
    Alcotest.test_case "theoretical speedup B" `Quick test_theoretical_b;
    Alcotest.test_case "time scaling" `Quick test_time_us;
    Alcotest.test_case "homogeneous view" `Quick test_homogeneous_view;
    Alcotest.test_case "total units" `Quick test_total_units;
    Alcotest.test_case "comm cost" `Quick test_comm_cost;
    Alcotest.test_case "class index" `Quick test_class_index;
    Alcotest.test_case "invalid platforms" `Quick test_invalid_platform;
    Alcotest.test_case "parse round trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
  ]

(* ------------------------------------------------------------------ *)
(* Energy model                                                        *)
(* ------------------------------------------------------------------ *)

let test_power_defaults () =
  (* default power follows the DVFS-style curve *)
  let c100 = Proc_class.make ~name:"c" ~freq_mhz:100. ~count:1 () in
  let c400 = Proc_class.make ~name:"d" ~freq_mhz:400. ~count:1 () in
  Alcotest.(check bool) "100 MHz = 20 mW" true (feq c100.Proc_class.power_mw 20.);
  Alcotest.(check bool) "superlinear in frequency" true
    (c400.Proc_class.power_mw > 4. *. c100.Proc_class.power_mw)

let test_power_override () =
  let c = Proc_class.make ~name:"c" ~freq_mhz:100. ~count:1 ~power_mw:55. () in
  Alcotest.(check bool) "explicit power" true (feq c.Proc_class.power_mw 55.);
  Alcotest.(check bool) "energy" true (feq (Proc_class.energy_uj c 2000.) 110.)

let test_parse_power_roundtrip () =
  let p =
    Parse.of_string
      "platform t\nclass a freq 100 count 1 power 42 main\nclass b freq 500 count 3\n"
  in
  Alcotest.(check bool) "power parsed" true
    (feq (Desc.proc_class p 0).Proc_class.power_mw 42.);
  let p2 = Parse.of_string (Parse.to_string p) in
  Alcotest.(check bool) "power survives round trip" true
    (feq (Desc.proc_class p2 0).Proc_class.power_mw 42.)

let suite =
  suite
  @ [
      Alcotest.test_case "power defaults" `Quick test_power_defaults;
      Alcotest.test_case "power override" `Quick test_power_override;
      Alcotest.test_case "power parse round trip" `Quick
        test_parse_power_roundtrip;
    ]
