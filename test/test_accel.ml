(* Equivalence tests for the ILP acceleration layer (PR 7): presolve,
   cover cuts, symmetry rows and incumbent seeding are all pure search
   accelerations — they must never change WHAT is found, only how fast.

   The ILP-level properties cross-check against the brute-force
   [Exhaustive] reference on the same random model family the core
   branch & bound suite uses; the formulation-level toggles (symmetry,
   seeding) are checked end-to-end: the extracted speedup of a small
   program must be identical under every toggle combination. *)

open Ilp

let feq ?(eps = 1e-4) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

(* options exercising the in-solver accelerations (the sweep driver
   enables these when the corresponding Config toggles are on) *)
let cut_options =
  { Branch_bound.default_options with Branch_bound.cut_rounds = 4; cut_every = 4 }

let accel_options = { cut_options with Branch_bound.presolve = true }

(* ------------------------------------------------------------------ *)
(* Presolve: reduced solve + lift matches exhaustive, and the lifted   *)
(* point satisfies every ORIGINAL constraint (the lifting invariant)   *)
(* ------------------------------------------------------------------ *)

let test_presolve_vs_exhaustive =
  QCheck.Test.make ~count:300 ~name:"presolve+lift matches exhaustive"
    Test_ilp.model_arb (fun m ->
      let ex = Exhaustive.solve m in
      match Presolve.run m with
      | Presolve.Infeasible -> ex.Exhaustive.x = None
      | Presolve.Unchanged -> true
      | Presolve.Reduced r -> (
          let sol = Branch_bound.solve r.Presolve.reduced in
          match (sol.Branch_bound.status, ex.Exhaustive.x) with
          | Branch_bound.Infeasible, None -> true
          | Branch_bound.Optimal, Some _ ->
              let lifted = r.Presolve.lift (Option.get sol.Branch_bound.x) in
              Model.feasible m (fun v -> lifted.(v))
              && feq
                   (Model.objective_value m (fun v -> lifted.(v)))
                   ex.Exhaustive.obj
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Cover cuts: cutting never cuts off the optimum                      *)
(* ------------------------------------------------------------------ *)

let test_cuts_vs_exhaustive =
  QCheck.Test.make ~count:300 ~name:"cover cuts preserve the optimum"
    Test_ilp.model_arb (fun m ->
      let bb = Branch_bound.solve ~options:cut_options m in
      let ex = Exhaustive.solve m in
      match (bb.Branch_bound.status, ex.Exhaustive.x) with
      | Branch_bound.Infeasible, None -> true
      | Branch_bound.Optimal, Some _ ->
          (* the cut solve's point must also be feasible in the caller's
             model: cuts are added to an internal copy only *)
          let y = Option.get bb.Branch_bound.x in
          Model.feasible m (fun v -> y.(v))
          && feq bb.Branch_bound.obj ex.Exhaustive.obj
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The full accelerated path (Solver: presolve + cuts + lifting)       *)
(* ------------------------------------------------------------------ *)

let test_solver_accel_vs_exhaustive =
  QCheck.Test.make ~count:300 ~name:"accelerated solver matches exhaustive"
    Test_ilp.model_arb (fun m ->
      let out = Solver.solve ~options:accel_options m in
      let ex = Exhaustive.solve m in
      match (out.Solver.status, ex.Exhaustive.x) with
      | Branch_bound.Infeasible, None -> true
      | Branch_bound.Optimal, Some _ ->
          let y = Option.get out.Solver.x in
          Model.feasible m (fun v -> y.(v))
          && feq out.Solver.obj ex.Exhaustive.obj
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Formulation-level toggles: identical extracted speedup              *)
(* ------------------------------------------------------------------ *)

(* two independent heavy loops — enough structure for the formulation
   to have real symmetry (several identical worker tasks) while staying
   small enough that every solve reaches proven optimality *)
let src =
  {|
float a[512]; float b[512];
int main() {
  int i;
  for (i = 0; i < 512; i = i + 1) { a[i] = sin(i * 0.01) * 2.0; }
  for (i = 0; i < 512; i = i + 1) { b[i] = cos(i * 0.02) + 1.0; }
  return (int) (a[5] + b[7]);
}
|}

let toggle_cfg ~presolve ~symmetry ~cuts ~seed =
  {
    Parcore.Config.fast with
    Parcore.Config.ilp_presolve = presolve;
    ilp_symmetry = symmetry;
    ilp_cuts = cuts;
    ilp_seed_incumbent = seed;
  }

let speedup_with cfg =
  let out =
    Parcore.Parallelize.run ~cfg ~approach:Parcore.Parallelize.Heterogeneous
      ~platform:Platform.Presets.platform_a_accel src
  in
  Parcore.Parallelize.speedup out

let test_toggles_preserve_speedup () =
  let base = speedup_with (toggle_cfg ~presolve:false ~symmetry:false ~cuts:false ~seed:false) in
  List.iter
    (fun (name, cfg) ->
      let s = speedup_with cfg in
      Alcotest.(check bool)
        (Printf.sprintf "%s: speedup %.6f matches baseline %.6f" name s base)
        true
        (Float.abs (s -. base) <= 1e-9 *. (1. +. Float.abs base)))
    [
      ("all-on", toggle_cfg ~presolve:true ~symmetry:true ~cuts:true ~seed:true);
      ("presolve", toggle_cfg ~presolve:true ~symmetry:false ~cuts:false ~seed:false);
      ("symmetry", toggle_cfg ~presolve:false ~symmetry:true ~cuts:false ~seed:false);
      ("cuts", toggle_cfg ~presolve:false ~symmetry:false ~cuts:true ~seed:false);
      ("seed", toggle_cfg ~presolve:false ~symmetry:false ~cuts:false ~seed:true);
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest test_presolve_vs_exhaustive;
    QCheck_alcotest.to_alcotest test_cuts_vs_exhaustive;
    QCheck_alcotest.to_alcotest test_solver_accel_vs_exhaustive;
    Alcotest.test_case "toggles preserve extracted speedup" `Slow
      test_toggles_preserve_speedup;
  ]
