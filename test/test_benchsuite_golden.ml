(* Golden checksums of the benchmark programs, as computed by the
   profiling interpreter.  Regenerate with
   [dune exec bin/mpsoc_par.exe -- analyze <file>] if a benchmark source
   is intentionally changed. *)

let checksums =
  [
    ("adpcm_enc", 3476);
    ("boundary_value", -51);
    ("compress", 164);
    ("edge_detect", 3023);
    ("filterbank", 3009);
    ("fir_256", -433);
    ("iir_4", 0);
    ("latnrm_32", 5537);
    ("mult_10", 779);
    ("spectral", 130770);
  ]
