(* Chaos harness: every suite benchmark x two platform scenarios x a pool
   of seeded fault plans, run through the full flow — parallelize under
   the armed plan, execute under a watchdog, then differentially validate
   (disarmed) against the sequential interpreter.

   The contract under test is the robustness tentpole: the flow ALWAYS
   terminates, and every run ends in either a solution whose parallel
   execution matches the sequential result, or a typed {!Mpsoc_error.t}.
   An escaping exception, a hang, or a value mismatch fails the harness.

   Not part of the default test runner (it is chaos, not a unit): run it
   via [dune build @chaos] or [make chaos].  [CHAOS_SUBSET=n] keeps every
   n-th (benchmark, platform, plan) case for a quicker smoke run. *)

let cfg =
  {
    Parcore.Config.fast with
    Parcore.Config.jobs = 1;
    ilp_work_limit = 2e5;
    ilp_node_limit = 2_000;
  }

let platforms =
  [
    ("A/accel", Platform.Presets.platform_a_accel);
    ("B/slow", Platform.Presets.platform_b_slow);
  ]

(* ~20 plans: every probe point hit early, budget exhaustion, a late hit,
   a short injected delay, and a dozen generated pseudo-random plans. *)
let plans =
  let r point at_hit action = { Fault.point; at_hit; action } in
  let handcrafted =
    [
      { Fault.label = "parse-raise"; rules = [ r "frontend.parse" 1 Fault.Raise ] };
      { Fault.label = "io-raise"; rules = [ r "platform.io" 1 Fault.Raise ] };
      { Fault.label = "pivot-raise"; rules = [ r "simplex.pivot" 1 Fault.Raise ] };
      { Fault.label = "pivot-late"; rules = [ r "simplex.pivot" 500 Fault.Raise ] };
      { Fault.label = "budget-out"; rules = [ r "ilp.budget" 1 Fault.Exhaust ] };
      { Fault.label = "budget-late"; rules = [ r "ilp.budget" 40 Fault.Exhaust ] };
      { Fault.label = "spawn-raise"; rules = [ r "pool.spawn" 1 Fault.Raise ] };
      { Fault.label = "recv-raise"; rules = [ r "channel.recv" 1 Fault.Raise ] };
      {
        Fault.label = "recv-delay";
        rules = [ r "channel.recv" 1 (Fault.Delay_s 0.05) ];
      };
      {
        Fault.label = "pivot+budget";
        rules = [ r "simplex.pivot" 100 Fault.Raise; r "ilp.budget" 10 Fault.Exhaust ];
      };
    ]
  in
  handcrafted @ List.init 12 (fun i -> Fault.generate ~seed:(i + 1))

let failures = ref 0
let cases = ref 0

let fail_case name fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s: %s\n%!" name msg)
    fmt

let run_case ~name prog profile seq_ret platform plan =
  incr cases;
  let outcome =
    try
      Ok
        (Fault.with_plan plan (fun () ->
             match
               Parcore.Parallelize.run_program_result ~cfg ~profile
                 ~approach:Parcore.Parallelize.Heterogeneous ~platform prog
             with
             | Error e -> `Typed e
             | Ok out -> (
                 let algo = out.Parcore.Parallelize.algo in
                 match
                   Runtime.Exec.run_result ~domains:2 ~timeout_s:20.
                     ~max_steps:cfg.Parcore.Config.max_steps prog
                     out.Parcore.Parallelize.htg algo.Parcore.Algorithm.root
                 with
                 | Error e -> `Typed e
                 | Ok r -> `Ran (out, r))))
    with e -> Error e
  in
  match outcome with
  | Error e ->
      fail_case name "exception escaped the Result APIs: %s" (Printexc.to_string e)
  | Ok (`Typed e) ->
      (* typed errors are an accepted terminal state, but must honour the
         exit-code contract *)
      let code = Mpsoc_error.exit_code e in
      if not (List.mem code [ 1; 3; 4 ]) then
        fail_case name "typed error with bad exit code %d: %s" code
          (Mpsoc_error.to_string e)
  | Ok (`Ran (out, r)) ->
      (* the armed run produced a value: it must match the sequential
         reference (computed once, disarmed) *)
      if not (Runtime.Exec.ret_equal r.Runtime.Exec.ret seq_ret) then
        fail_case name "differential validation mismatch"
      else
        (* and re-executing disarmed must match too *)
        let r2 =
          Runtime.Exec.run ~domains:2 ~max_steps:cfg.Parcore.Config.max_steps
            prog out.Parcore.Parallelize.htg
            out.Parcore.Parallelize.algo.Parcore.Algorithm.root
        in
        if not (Runtime.Exec.ret_equal r2.Runtime.Exec.ret seq_ret) then
          fail_case name "disarmed re-execution mismatch"

let () =
  let subset =
    match Sys.getenv_opt "CHAOS_SUBSET" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 1 -> n | _ -> 1)
    | None -> 1
  in
  let t0 = Unix.gettimeofday () in
  let k = ref 0 in
  List.iter
    (fun (b : Benchsuite.Suite.t) ->
      let prog = Benchsuite.Suite.compile b in
      let seq =
        Interp.Eval.run ~max_steps:cfg.Parcore.Config.max_steps prog
      in
      List.iter
        (fun (pname, platform) ->
          List.iter
            (fun plan ->
              incr k;
              if !k mod subset = 0 then
                let name =
                  Printf.sprintf "%s/%s/%s" b.Benchsuite.Suite.name pname
                    plan.Fault.label
                in
                run_case ~name prog seq.Interp.Eval.profile
                  seq.Interp.Eval.ret platform plan)
            plans)
        platforms)
    Benchsuite.Suite.all;
  Printf.printf "chaos: %d cases, %d failures (%.1f s)\n%!" !cases !failures
    (Unix.gettimeofday () -. t0);
  exit (if !failures = 0 then 0 else 1)
