(* Tests for the deterministic fault-injection harness: disarmed probes
   are no-ops, armed rules fire at exactly their hit count, budget
   exhaustion is sticky, plan specs round-trip, and generated plans are
   deterministic in their seed. *)

open Fault

let test_disarmed_noop () =
  disarm ();
  (* any point name is accepted and does nothing *)
  for _ = 1 to 100 do
    point "channel.recv";
    point "no.such.probe"
  done;
  Alcotest.(check bool) "exhausted false" false (exhausted "ilp.budget");
  Alcotest.(check bool) "nothing armed" true (armed () = None)

let test_raise_at_exact_hit () =
  let plan =
    { label = "t"; rules = [ { point = "pool.spawn"; at_hit = 3; action = Raise } ] }
  in
  with_plan plan (fun () ->
      point "pool.spawn";
      point "pool.spawn";
      (match point "pool.spawn" with
      | () -> Alcotest.fail "expected Injected on hit 3"
      | exception Injected { point = p; hit } ->
          Alcotest.(check string) "point" "pool.spawn" p;
          Alcotest.(check int) "hit" 3 hit);
      (* fires only at the exact hit: later hits pass *)
      point "pool.spawn";
      (* other points are unaffected *)
      point "channel.recv");
  Alcotest.(check bool) "disarmed after with_plan" true (armed () = None)

let test_exhaust_sticky () =
  let plan =
    { label = "t"; rules = [ { point = "ilp.budget"; at_hit = 2; action = Exhaust } ] }
  in
  with_plan plan (fun () ->
      Alcotest.(check bool) "hit 1 not yet" false (exhausted "ilp.budget");
      Alcotest.(check bool) "hit 2 exhausted" true (exhausted "ilp.budget");
      Alcotest.(check bool) "hit 3 sticky" true (exhausted "ilp.budget");
      (* Exhaust rules are ignored by [point] *)
      point "ilp.budget")

let test_with_plan_disarms_on_raise () =
  let plan =
    { label = "t"; rules = [ { point = "pool.spawn"; at_hit = 1; action = Raise } ] }
  in
  (match with_plan plan (fun () -> point "pool.spawn") with
  | () -> Alcotest.fail "expected Injected"
  | exception Injected _ -> ());
  Alcotest.(check bool) "disarmed after raise" true (armed () = None)

let test_spec_roundtrip () =
  let spec = "channel.recv@3=raise,ilp.budget@5=exhaust,pool.spawn@2=delay:0.05" in
  match of_spec spec with
  | Error m -> Alcotest.fail ("parse failed: " ^ m)
  | Ok plan -> (
      Alcotest.(check int) "three rules" 3 (List.length plan.rules);
      match of_spec (to_spec plan) with
      | Error m -> Alcotest.fail ("re-parse failed: " ^ m)
      | Ok plan2 ->
          Alcotest.(check bool) "rules stable" true (plan.rules = plan2.rules))

let test_spec_rejects_garbage () =
  let bad =
    [
      "";
      "no.such.probe@1=raise";
      "channel.recv@0=raise";
      "channel.recv@x=raise";
      "channel.recv@1=explode";
      "channel.recv@1=delay:none";
      "channel.recv=raise";
    ]
  in
  List.iter
    (fun s ->
      match of_spec s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted bad spec %S" s)
      | Error _ -> ())
    bad

let test_local_plan_domain_scoped () =
  disarm ();
  let plan =
    { label = "l"; rules = [ { point = "serve.exec"; at_hit = 1; action = Raise } ] }
  in
  with_plan_local plan (fun () ->
      (* another domain must not see this domain's local plan *)
      let other =
        Domain.spawn (fun () ->
            match point "serve.exec" with
            | () -> true
            | exception Injected _ -> false)
      in
      Alcotest.(check bool) "other domain unaffected" true (Domain.join other);
      (* ...while this domain's probe fires *)
      match point "serve.exec" with
      | () -> Alcotest.fail "local plan did not fire on its own domain"
      | exception Injected { point = p; _ } ->
          Alcotest.(check string) "point" "serve.exec" p);
  (* scope ended: the probe is a no-op again *)
  point "serve.exec"

let test_local_plan_shadows_global () =
  let global =
    { label = "g"; rules = [ { point = "pool.spawn"; at_hit = 1; action = Raise } ] }
  in
  let local =
    { label = "l"; rules = [ { point = "channel.recv"; at_hit = 1; action = Raise } ] }
  in
  with_plan global (fun () ->
      with_plan_local local (fun () ->
          (* the local plan shadows the global one entirely: the global
             rule's point does not fire inside the local scope *)
          point "pool.spawn";
          match point "channel.recv" with
          | () -> Alcotest.fail "local rule did not fire"
          | exception Injected _ -> ());
      (* local scope ended: the global plan is visible again *)
      match point "pool.spawn" with
      | () -> Alcotest.fail "global rule did not fire after local scope"
      | exception Injected _ -> ())

let test_local_plan_nesting_restores () =
  let mk pt = { label = pt; rules = [ { point = pt; at_hit = 1; action = Raise } ] } in
  with_plan_local (mk "pool.spawn") (fun () ->
      with_plan_local (mk "channel.recv") (fun () ->
          point "pool.spawn";
          match point "channel.recv" with
          | () -> Alcotest.fail "inner local rule did not fire"
          | exception Injected _ -> ());
      (* inner scope popped: the outer local plan is restored, with its
         hit counts intact *)
      point "channel.recv";
      match point "pool.spawn" with
      | () -> Alcotest.fail "outer local rule did not fire after inner scope"
      | exception Injected _ -> ())

let test_serve_probe_known_not_generated () =
  (* [serve.exec] is addressable from specs but excluded from seeded
     chaos generation, so the frozen seed corpus stays stable *)
  Alcotest.(check bool) "known" true (List.mem "serve.exec" known_points);
  Alcotest.(check bool) "not generated" false
    (List.mem "serve.exec" generated_points);
  match of_spec "serve.exec@2=raise" with
  | Ok p -> Alcotest.(check int) "one rule" 1 (List.length p.rules)
  | Error m -> Alcotest.fail ("serve.exec spec rejected: " ^ m)

let test_generate_deterministic () =
  let p1 = generate ~seed:7 and p2 = generate ~seed:7 in
  Alcotest.(check bool) "same seed, same plan" true (p1.rules = p2.rules);
  let n = List.length p1.rules in
  Alcotest.(check bool) "1-3 rules" true (n >= 1 && n <= 3);
  List.iter
    (fun r ->
      Alcotest.(check bool) "known point" true (List.mem r.point known_points);
      Alcotest.(check bool) "hit in range" true (r.at_hit >= 1 && r.at_hit <= 40))
    p1.rules;
  (* seed:N specs expand to the generated plan *)
  match of_spec "seed:7" with
  | Ok p -> Alcotest.(check bool) "seed spec matches" true (p.rules = p1.rules)
  | Error m -> Alcotest.fail ("seed spec failed: " ^ m)

let suite =
  [
    Alcotest.test_case "disarmed probes are no-ops" `Quick test_disarmed_noop;
    Alcotest.test_case "raise fires at the exact hit" `Quick test_raise_at_exact_hit;
    Alcotest.test_case "exhaust is sticky from its hit" `Quick test_exhaust_sticky;
    Alcotest.test_case "with_plan disarms on raise" `Quick
      test_with_plan_disarms_on_raise;
    Alcotest.test_case "spec round-trips" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec rejects garbage" `Quick test_spec_rejects_garbage;
    Alcotest.test_case "generated plans are seed-deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "local plans are domain-scoped" `Quick
      test_local_plan_domain_scoped;
    Alcotest.test_case "local plans shadow the global plan" `Quick
      test_local_plan_shadows_global;
    Alcotest.test_case "nested local plans restore the outer one" `Quick
      test_local_plan_nesting_restores;
    Alcotest.test_case "serve.exec is known but never generated" `Quick
      test_serve_probe_known_not_generated;
  ]
